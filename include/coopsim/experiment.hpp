/**
 * @file
 * Umbrella header for the coopsim experiment API — the single public
 * entry point for describing, running and rendering experiments:
 *
 *   #include <coopsim/experiment.hpp>
 *
 *   coopsim::api::ExperimentSpec spec;
 *   spec.title = "Figure 5: weighted speedup";
 *   spec.schemes = {"unmanaged", "fairshare", "cpe", "ucp", "coop"};
 *   spec.groups = {"G2-*"};
 *   coopsim::api::printExperiment(spec);
 *
 * Pieces (all in namespace coopsim::api):
 *  - registry.hpp    string-keyed registries: schemes, replacement
 *                    policies, gating/threshold modes, scales,
 *                    workload groups; registerScheme() for extensions
 *  - spec.hpp        ExperimentSpec, expandSpec()/shardKeys(), the
 *                    canonical parse/format round-trip for specs and
 *                    RunKeys
 *  - experiment.hpp  ExperimentResults, named metrics, table printers
 *  - cli.hpp         the shared command-line parser (CliOptions),
 *                    attachCliStore() for --store=DIR sessions
 *  - result_store.hpp (coopsim::store) the disk-backed,
 *                    RunKey-addressed result store behind --store /
 *                    --shard / --merge
 */

#ifndef COOPSIM_EXPERIMENT_HPP
#define COOPSIM_EXPERIMENT_HPP

#include "api/cli.hpp"
#include "api/experiment.hpp"
#include "api/registry.hpp"
#include "api/spec.hpp"
#include "store/result_store.hpp"

#endif // COOPSIM_EXPERIMENT_HPP
