/**
 * @file
 * Command-line driver over the experiment API.
 *
 * Two modes:
 *
 *  - `--spec=FILE` runs a full declarative experiment from a spec
 *    file (see specs/ for the paper's figures) and renders its table;
 *    `--scale=`/`--threads=`/`--seed=` override the file. Any figure
 *    bench is reproducible this way, bit-identically:
 *        coopsim_cli --spec=specs/fig05.spec --scale=test
 *  - otherwise, one (scheme x group) cell with configurable
 *    threshold/seed/scale, printed as a full stat dump or a CSV row.
 *
 * Schemes/groups/scales are registry names: `unmanaged fairshare ucp
 * cpe coop`, `G2-1`..`G4-14`, `test bench paper`.
 */

#include <cstdio>

#include <coopsim/experiment.hpp>

#include "sim/report.hpp"

using namespace coopsim;

namespace
{

constexpr const char *kUsage =
    "usage: coopsim_cli [--spec=FILE] [--scheme=coop] [--group=G2-3]\n"
    "                   [--threshold=0.05] [--seed=N] [--csv]\n"
    "                   [--scale=test|bench|paper] [--full] "
    "[--threads=N]\n"
    "with --spec, only --scale/--threads/--seed may also be given\n"
    "(they override the spec file).\n";

} // namespace

int
main(int argc, char **argv)
{
    api::CliOptions cli =
        api::parseCli(argc, argv, api::kAllFlags, kUsage);

    if (!cli.spec_path.empty()) {
        // Re-parse against the spec-mode flag set so a flag the spec
        // run would silently drop (--scheme, --group, --threshold,
        // --csv) is rejected instead.
        cli = api::parseCli(argc, argv,
                            api::kFlagSpec | api::kFlagScale |
                                api::kFlagThreads | api::kFlagSeed,
                            kUsage);
    }
    const unsigned threads = api::applyCliThreads(cli);

    if (!cli.spec_path.empty()) {
        api::ExperimentSpec spec = api::parseSpecFile(cli.spec_path);
        if (cli.scale_set) {
            spec.scale = cli.scale_name;
        }
        if (cli.seed.has_value()) {
            spec.seeds = {*cli.seed};
        }
        // Reprint the bench preamble at the spec's effective scale so
        // the output is bit-identical to the fig binary's.
        api::CliOptions effective = cli;
        effective.scale = api::scaleRegistry().get(spec.scale);
        api::printPreamble(effective, threads);
        api::printExperiment(spec);
        return 0;
    }

    // Single-cell mode: one spec with one value per axis.
    api::ExperimentSpec spec;
    spec.name = "cli";
    spec.layout = "none";
    spec.schemes = {cli.scheme};
    spec.groups = {cli.group};
    spec.thresholds = {cli.threshold.value_or(0.05)};
    spec.seeds = {cli.seed.value_or(42)};
    spec.scale = cli.scale_name;
    const api::ExperimentResults results = api::runExperiment(spec);

    api::Cell cell;
    cell.group = cli.group;
    const sim::RunResult &result = results.result(cell);
    const double ws = results.weightedSpeedup(cell);

    if (cli.csv) {
        std::printf("%s\n%s\n", sim::csvHeader().c_str(),
                    sim::csvRow(api::schemeLabel(cli.scheme),
                                cli.group, result, ws)
                        .c_str());
        return 0;
    }

    std::printf("# %s on %s (T=%.2f, seed=%llu)\n",
                api::schemeLabel(cli.scheme).c_str(),
                cli.group.c_str(), spec.thresholds[0],
                static_cast<unsigned long long>(spec.seeds[0]));
    std::printf("weighted_speedup %f\n%s", ws,
                sim::formatRunResult(result, "run").c_str());
    return 0;
}
