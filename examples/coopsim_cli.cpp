/**
 * @file
 * Command-line driver: run any scheme on any Table 4 workload group
 * with configurable threshold/seed/scale, and print either a full
 * stat dump or a CSV row — the entry point for scripting custom
 * experiments on top of the library.
 *
 * Usage:
 *   coopsim_cli [--scheme=NAME] [--group=G2-3] [--threshold=0.05]
 *               [--seed=N] [--csv] [--full|--scale=test]
 *
 * Schemes: unmanaged fairshare cpe ucp coop (default coop).
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "sim/report.hpp"
#include "sim/runner.hpp"

using namespace coopsim;

namespace
{

llc::Scheme
parseScheme(const std::string &name)
{
    if (name == "unmanaged") {
        return llc::Scheme::Unmanaged;
    }
    if (name == "fairshare") {
        return llc::Scheme::FairShare;
    }
    if (name == "cpe") {
        return llc::Scheme::DynamicCpe;
    }
    if (name == "ucp") {
        return llc::Scheme::Ucp;
    }
    if (name == "coop") {
        return llc::Scheme::Cooperative;
    }
    std::fprintf(stderr, "unknown scheme '%s' (use unmanaged, "
                         "fairshare, cpe, ucp or coop)\n",
                 name.c_str());
    std::exit(1);
}

bool
takeValue(const char *arg, const char *key, std::string &out)
{
    const std::size_t len = std::strlen(key);
    if (std::strncmp(arg, key, len) == 0) {
        out = arg + len;
        return true;
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string scheme_name = "coop";
    std::string group_name = "G2-3";
    std::string value;
    bool csv = false;

    sim::RunOptions options;
    options.scale = sim::scaleFromArgs(argc, argv);
    sim::applyThreadArgs(argc, argv);
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (takeValue(arg, "--scheme=", value)) {
            scheme_name = value;
        } else if (takeValue(arg, "--group=", value)) {
            group_name = value;
        } else if (takeValue(arg, "--threshold=", value)) {
            options.threshold = std::stod(value);
        } else if (takeValue(arg, "--seed=", value)) {
            options.seed = std::stoull(value);
        } else if (std::strcmp(arg, "--csv") == 0) {
            csv = true;
        } else if (std::strcmp(arg, "--help") == 0) {
            std::printf("usage: coopsim_cli [--scheme=coop] "
                        "[--group=G2-3] [--threshold=0.05] [--seed=N] "
                        "[--csv] [--full] [--threads=N]\n");
            return 0;
        }
    }

    const llc::Scheme scheme = parseScheme(scheme_name);
    const trace::WorkloadGroup &group = trace::groupByName(group_name);
    const sim::RunResult &result =
        sim::runGroup(scheme, group, options);
    const double ws =
        sim::groupWeightedSpeedup(scheme, group, options);

    if (csv) {
        std::printf("%s\n%s\n", sim::csvHeader().c_str(),
                    sim::csvRow(llc::schemeName(scheme), group.name,
                                result, ws)
                        .c_str());
        return 0;
    }

    std::printf("# %s on %s (T=%.2f, seed=%llu)\n",
                llc::schemeName(scheme), group.name.c_str(),
                options.threshold,
                static_cast<unsigned long long>(options.seed));
    std::printf("weighted_speedup %f\n%s", ws,
                sim::formatRunResult(result, "run").c_str());
    return 0;
}
