/**
 * @file
 * Command-line driver over the experiment API.
 *
 * Modes:
 *
 *  - `--spec=FILE` runs a full declarative experiment from a spec
 *    file (see specs/ for the paper's figures) and renders its table;
 *    `--scale=`/`--threads=`/`--seed=` override the file. Any figure
 *    bench is reproducible this way, bit-identically:
 *        coopsim_cli --spec=specs/fig05.spec --scale=test
 *  - `--spec=FILE --store=DIR` additionally serves every run already
 *    in DIR's result store from disk (zero simulations when warm —
 *    see the stderr run-count stat) and persists new results to
 *    DIR/results.coopstore on exit.
 *  - `--spec=FILE --shard=I/N --store=DIR` runs only the i-th
 *    round-robin slice of the expanded RunKey list and saves it to
 *    DIR/shard-IofN.coopstore; no table is rendered. Run all N
 *    shards (on as many hosts as you like), collect the shard files
 *    into one directory, then:
 *  - `--spec=FILE --merge --store=DIR` folds every store file in DIR
 *    into DIR/results.coopstore and renders the table — bit-identical
 *    to the unsharded run.
 *  - otherwise, one (scheme x group) cell with configurable
 *    threshold/seed/scale, printed as a full stat dump or a CSV row.
 *
 * Schemes/groups/scales are registry names: `unmanaged fairshare ucp
 * cpe coop`, `G2-1`..`G4-14`, `test bench paper`.
 */

#include <cstdio>

#include <coopsim/experiment.hpp>

#include "common/logging.hpp"
#include "sim/report.hpp"

using namespace coopsim;

namespace
{

constexpr const char *kUsage =
    "usage: coopsim_cli [--spec=FILE] [--scheme=coop] [--group=G2-3]\n"
    "                   [--threshold=0.05] [--seed=N] [--csv]\n"
    "                   [--scale=test|bench|paper] [--full] "
    "[--threads=N]\n"
    "                   [--store=DIR] [--shard=I/N] [--merge]\n"
    "with --spec, only --scale/--threads/--seed/--store/--shard/"
    "--merge\nmay also be given (the first three override the spec "
    "file).\n--shard and --merge require --spec and --store.\n";

} // namespace

int
main(int argc, char **argv)
{
    api::CliOptions cli =
        api::parseCli(argc, argv, api::kAllFlags, kUsage);

    if (!cli.spec_path.empty()) {
        // Re-parse against the spec-mode flag set so a flag the spec
        // run would silently drop (--scheme, --group, --threshold,
        // --csv) is rejected instead.
        cli = api::parseCli(argc, argv,
                            api::kFlagSpec | api::kFlagScale |
                                api::kFlagThreads | api::kFlagSeed |
                                api::kFlagStore | api::kFlagShard |
                                api::kFlagMerge,
                            kUsage);
    } else if (cli.shard_set || cli.merge) {
        COOPSIM_FATAL("--shard and --merge require --spec=FILE");
    }
    const unsigned threads = api::applyCliThreads(cli);

    if (!cli.spec_path.empty()) {
        if (cli.shard_set && cli.merge) {
            COOPSIM_FATAL("--shard and --merge are mutually exclusive");
        }
        if ((cli.shard_set || cli.merge) && cli.store_dir.empty()) {
            COOPSIM_FATAL("--shard and --merge require --store=DIR");
        }

        api::ExperimentSpec spec = api::parseSpecFile(cli.spec_path);
        if (cli.scale_set) {
            spec.scale = cli.scale_name;
        }
        if (cli.seed.has_value()) {
            spec.seeds = {*cli.seed};
        }
        // Reprint the bench preamble at the spec's effective scale so
        // the output is bit-identical to the fig binary's.
        api::CliOptions effective = cli;
        effective.scale = api::scaleRegistry().get(spec.scale);

        if (cli.shard_set) {
            // Shard mode: compute (and persist) this slice only; the
            // table needs every cell, so none is rendered here.
            auto result_store = std::make_shared<store::ResultStore>();
            result_store->loadDir(cli.store_dir);
            sim::RunExecutor &executor = sim::RunExecutor::instance();
            executor.attachStore(result_store);

            const std::vector<sim::RunKey> keys = api::expandSpec(spec);
            const std::vector<sim::RunKey> slice = api::shardKeys(
                keys, cli.shard_index, cli.shard_count);
            api::printPreamble(effective, threads);
            std::printf("# shard %u/%u: %zu of %zu runs\n",
                        cli.shard_index, cli.shard_count, slice.size(),
                        keys.size());

            executor.prefetch(slice);
            store::ResultStore shard_results;
            for (const sim::RunKey &key : slice) {
                shard_results.put(key, executor.run(key));
            }
            const std::string path =
                cli.store_dir + "/" +
                store::shardFileName(cli.shard_index, cli.shard_count);
            shard_results.save(path);
            api::printRunStats();
            std::fprintf(stderr, "# store: saved %zu results to %s\n",
                         shard_results.size(), path.c_str());
            return 0;
        }

        // Unsharded run, optionally store-backed; --merge is the same
        // path with the store mandatory: loading folds every shard
        // file in the directory (last-writer-wins), the table renders
        // from the folded results, and the at-exit save persists the
        // merged store to results.coopstore.
        api::attachCliStore(cli);
        api::printPreamble(effective, threads);
        api::printExperiment(spec);
        return 0;
    }

    // Single-cell mode: one spec with one value per axis.
    api::attachCliStore(cli);
    api::ExperimentSpec spec;
    spec.name = "cli";
    spec.layout = "none";
    spec.schemes = {cli.scheme};
    spec.groups = {cli.group};
    spec.thresholds = {cli.threshold.value_or(0.05)};
    spec.seeds = {cli.seed.value_or(42)};
    spec.scale = cli.scale_name;
    const api::ExperimentResults results = api::runExperiment(spec);

    api::Cell cell;
    cell.group = cli.group;
    const sim::RunResult &result = results.result(cell);
    const double ws = results.weightedSpeedup(cell);

    if (cli.csv) {
        std::printf("%s\n%s\n", sim::csvHeader().c_str(),
                    sim::csvRow(api::schemeLabel(cli.scheme),
                                cli.group, result, ws)
                        .c_str());
        return 0;
    }

    std::printf("# %s on %s (T=%.2f, seed=%llu)\n",
                api::schemeLabel(cli.scheme).c_str(),
                cli.group.c_str(), spec.thresholds[0],
                static_cast<unsigned long long>(spec.seeds[0]));
    std::printf("weighted_speedup %f\n%s", ws,
                sim::formatRunResult(result, "run").c_str());
    return 0;
}
