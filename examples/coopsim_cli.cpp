/**
 * @file
 * Command-line driver over the experiment API.
 *
 * Modes:
 *
 *  - `--spec=FILE` runs a full declarative experiment from a spec
 *    file (see specs/ for the paper's figures) and renders its table;
 *    `--scale=`/`--threads=`/`--seed=` override the file. Any figure
 *    bench is reproducible this way, bit-identically:
 *        coopsim_cli --spec=specs/fig05.spec --scale=test
 *  - `--spec=FILE --store=DIR` additionally serves every run already
 *    in DIR's result store from disk (zero simulations when warm —
 *    see the stderr run-count stat) and persists new results to
 *    DIR/results.coopstore on exit.
 *  - `--spec=FILE --shard=I/N --store=DIR` runs only the i-th
 *    round-robin slice of the expanded RunKey list and saves it to
 *    DIR/shard-IofN.coopstore; no table is rendered. Run all N
 *    shards (on as many hosts as you like), collect the shard files
 *    into one directory, then:
 *  - `--spec=FILE --merge --store=DIR` folds every store file in DIR
 *    into DIR/results.coopstore and renders the table — bit-identical
 *    to the unsharded run.
 *  - `--spec=FILE --supervise --shards=N --store=DIR` runs the whole
 *    sharded flow under the fault-tolerant supervisor: one forked
 *    worker per shard (this same binary with `--shard=I/N`), per-shard
 *    wall-clock timeouts (`--shard-timeout=S`), capped-exponential
 *    retry of crashed/hung/invalid shards (`--shard-retries=K`), then
 *    the merge. When every shard succeeds, stdout is bit-identical to
 *    the unsharded run and the supervision report goes to stderr;
 *    when retries are exhausted the merge degrades to a missing-keys
 *    summary and a non-zero exit. Worker output is appended to
 *    DIR/shard-IofN.log. `COOPSIM_FAULT=<kind>:<shard>:<attempt>`
 *    (src/supervise/fault.hpp) injects deterministic worker faults
 *    for testing.
 *  - otherwise, one (scheme x group) cell with configurable
 *    threshold/seed/scale, printed as a full stat dump or a CSV row.
 *
 * Schemes/groups/scales are registry names: `unmanaged fairshare ucp
 * cpe coop`, `G2-1`..`G4-14`, `test bench paper`.
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <system_error>

#include <coopsim/experiment.hpp>

#include "api/parse_util.hpp"
#include "common/logging.hpp"
#include "sim/executor.hpp"
#include "sim/report.hpp"
#include "supervise/fault.hpp"
#include "supervise/supervisor.hpp"
#include "tracefile/record.hpp"
#include "tracefile/trace_workloads.hpp"

using namespace coopsim;

namespace
{

constexpr const char *kUsage =
    "usage: coopsim_cli [--spec=FILE] [--scheme=coop] [--group=G2-3]\n"
    "                   [--threshold=0.05] [--seed=N] [--csv]\n"
    "                   [--scale=test|bench|paper] [--full] "
    "[--threads=N]\n"
    "                   [--store=DIR] [--shard=I/N] [--merge]\n"
    "                   [--supervise --shards=N [--shard-timeout=S]\n"
    "                    [--shard-retries=K]]\n"
    "                   [--record=DIR] [--trace-dir=DIR]\n"
    "                   [--sampling=exact|set|op|setop] [--ci]\n"
    "                   [--no-stream-memo] [--stream-cache-mb=N]\n"
    "                   [--trace-cache=DIR]\n"
    "with --spec, only --scale/--threads/--seed/--store/--shard/"
    "--merge/\n--supervise/--shards/--shard-timeout/--shard-retries/"
    "--record/\n--trace-dir/--sampling/--ci/--no-stream-memo/"
    "--stream-cache-mb/\n--trace-cache may also be given (the "
    "first three and\n--sampling override the spec file).\n"
    "--shard, --merge and --supervise require --spec and --store.\n"
    "--record=DIR captures the spec's workloads as .cooptrace files\n"
    "into DIR instead of running the experiment; --trace-dir=DIR (or\n"
    "COOPSIM_TRACE_DIR) registers DIR's recordings as trace:<name>\n"
    "workloads for replay.\n"
    "Sweeps memoize op streams process-wide (generate once, replay\n"
    "everywhere); --no-stream-memo regenerates per run,\n"
    "--stream-cache-mb=N bounds the memo, --trace-cache=DIR persists\n"
    "it across processes (e.g. supervised shard workers).\n";

/** 1-based attempt number of this worker process (COOPSIM_ATTEMPT,
 *  exported by the supervisor; 1 when run by hand). */
unsigned
workerAttempt()
{
    const char *env = std::getenv(supervise::kAttemptEnv);
    if (env == nullptr || *env == '\0') {
        return 1;
    }
    const std::uint64_t n =
        api::detail::parseUint(env, supervise::kAttemptEnv);
    if (n < 1) {
        COOPSIM_FATAL("invalid ", supervise::kAttemptEnv, " value '",
                      env, "' (attempts are 1-based)");
    }
    return static_cast<unsigned>(n);
}

/**
 * The supervised flow: fork one worker per shard, validate each
 * shard's store after a clean exit, retry with backoff, then either
 * render the merged table (bit-identical to unsharded) or report the
 * missing keys and fail.
 */
int
runSupervised(const char *binary, const api::CliOptions &cli,
              const api::ExperimentSpec &spec,
              const api::CliOptions &effective, unsigned threads)
{
    if (cli.shards == 0) {
        COOPSIM_FATAL("--supervise requires --shards=N");
    }
    api::warmAllRegistries();
    // The store directory must exist before the first worker forks:
    // its log file lives there, and a failed log open would leak
    // worker output into the parent's (bit-identical) stdout.
    std::error_code ec;
    std::filesystem::create_directories(cli.store_dir, ec);
    if (ec) {
        COOPSIM_FATAL("cannot create store directory '", cli.store_dir,
                      "': ", ec.message());
    }
    const std::vector<sim::RunKey> keys = api::expandSpec(spec);

    supervise::RetryPolicy policy;
    policy.max_attempts = cli.shard_retries;
    policy.shard_timeout_s = cli.shard_timeout_s;

    const auto launch = [&](unsigned shard,
                            unsigned attempt) -> supervise::ProcessResult {
        std::vector<std::string> args = {
            binary,
            "--spec=" + cli.spec_path,
            "--shard=" + std::to_string(shard) + "/" +
                std::to_string(cli.shards),
            "--store=" + cli.store_dir,
        };
        if (cli.scale_set) {
            args.push_back("--scale=" + cli.scale_name);
        }
        if (cli.threads > 0) {
            args.push_back("--threads=" + std::to_string(cli.threads));
        }
        if (cli.seed.has_value()) {
            args.push_back("--seed=" + std::to_string(*cli.seed));
        }
        if (!cli.trace_dir.empty()) {
            // Workers must resolve trace: workloads exactly like the
            // parent that sharded the key list for them.
            args.push_back("--trace-dir=" + cli.trace_dir);
        }
        if (cli.sampling_set) {
            // Same rule: workers must expand the same sampled key
            // list the parent validates shard stores against.
            args.push_back("--sampling=" + cli.sampling_name);
        }
        if (cli.no_stream_memo) {
            args.push_back("--no-stream-memo");
        }
        if (cli.stream_cache_mb > 0) {
            args.push_back("--stream-cache-mb=" +
                           std::to_string(cli.stream_cache_mb));
        }
        if (!cli.trace_cache_dir.empty()) {
            // Each worker warm-starts shared streams from the cache
            // directory instead of regenerating them per process; the
            // first worker to finish a stream spills it for the rest.
            args.push_back("--trace-cache=" + cli.trace_cache_dir);
        }
        const std::vector<std::string> env = {
            std::string(supervise::kAttemptEnv) + "=" +
            std::to_string(attempt)};
        // Workers write to a per-shard log, never to the parent's
        // stdout — a successful supervised run must be bit-identical
        // to the unsharded table.
        const std::string log =
            cli.store_dir + "/shard-" + std::to_string(shard) + "of" +
            std::to_string(cli.shards) + ".log";
        return supervise::runProcess(args, env, cli.shard_timeout_s,
                                     log);
    };
    // A worker that exits 0 must also have persisted every key of its
    // slice: a torn or corrupted shard store (crash inside save, disk
    // fault) consumes an attempt exactly like a crash.
    const auto validate = [&](unsigned shard, std::string &why) {
        const std::string path =
            cli.store_dir + "/" +
            store::shardFileName(shard, cli.shards);
        store::ResultStore shard_store;
        shard_store.loadFile(path);
        const std::vector<sim::RunKey> slice =
            api::shardKeys(keys, shard, cli.shards);
        std::size_t missing = 0;
        for (const sim::RunKey &key : slice) {
            if (!shard_store.contains(key)) {
                ++missing;
            }
        }
        if (missing > 0) {
            why = std::to_string(missing) + " of " +
                  std::to_string(slice.size()) +
                  " slice keys missing from " + path;
            return false;
        }
        return true;
    };

    const supervise::SuperviseReport report = supervise::superviseShards(
        cli.shards, policy, launch, validate);
    supervise::printSuperviseReport(report, stderr);

    if (!report.allSucceeded()) {
        // Degraded merge: fold what the surviving shards produced and
        // name exactly what is missing — never die silently, never
        // recompute behind the caller's back.
        store::ResultStore merged;
        merged.loadDir(cli.store_dir);
        std::size_t missing = 0;
        for (const sim::RunKey &key : keys) {
            if (!merged.find(key).has_value()) {
                if (missing < 5) {
                    std::fprintf(stderr, "# supervise: missing %s\n",
                                 api::formatRunKey(key).c_str());
                }
                ++missing;
            }
        }
        std::string failed;
        for (const unsigned shard : report.failedShards()) {
            failed += failed.empty() ? "" : ", ";
            failed += std::to_string(shard);
        }
        std::fprintf(stderr,
                     "# supervise: DEGRADED: %zu of %zu keys missing "
                     "after retries exhausted on shard(s) %s\n",
                     missing, keys.size(), failed.c_str());
        // Keep what the surviving shards did produce: the partial
        // merge is still a valid warm store for a later retry.
        std::string error;
        const std::string merged_path =
            cli.store_dir + "/" + store::kMergedFileName;
        if (merged.trySave(merged_path, error)) {
            std::fprintf(stderr,
                         "# store: saved %zu partial results to %s\n",
                         merged.size(), merged_path.c_str());
        } else {
            std::fprintf(stderr,
                         "error: partial merge save failed: %s\n",
                         error.c_str());
        }
        return 2;
    }

    // Every shard landed: merge and render exactly like `--merge` —
    // all keys are warm, so the table is served with zero simulations
    // and stdout is bit-identical to the unsharded run.
    api::attachCliStore(cli);
    api::printPreamble(effective, threads);
    api::printExperiment(spec, cli.show_ci);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    api::CliOptions cli =
        api::parseCli(argc, argv, api::kAllFlags, kUsage);

    if (!cli.spec_path.empty()) {
        // Re-parse against the spec-mode flag set so a flag the spec
        // run would silently drop (--scheme, --group, --threshold,
        // --csv) is rejected instead.
        cli = api::parseCli(argc, argv,
                            api::kFlagSpec | api::kFlagScale |
                                api::kFlagThreads | api::kFlagSeed |
                                api::kFlagStore | api::kFlagShard |
                                api::kFlagMerge | api::kFlagSupervise |
                                api::kFlagRecord | api::kFlagTraceDir |
                                api::kFlagSampling | api::kFlagCi |
                                api::kFlagStreamMemo,
                            kUsage);
    } else if (cli.shard_set || cli.merge || cli.supervise ||
               cli.shards > 0) {
        COOPSIM_FATAL(
            "--shard, --merge and --supervise require --spec=FILE");
    } else if (!cli.record_dir.empty()) {
        COOPSIM_FATAL("--record requires --spec=FILE (it records the "
                      "spec's workloads)");
    }
    api::applyCliStreamMemo(cli);
    const unsigned threads = api::applyCliThreads(cli);
    if (!cli.trace_dir.empty()) {
        tracefile::registerTraceDir(cli.trace_dir);
    }

    if (!cli.spec_path.empty()) {
        if (cli.shard_set && cli.merge) {
            COOPSIM_FATAL("--shard and --merge are mutually exclusive");
        }
        if (cli.supervise && (cli.shard_set || cli.merge)) {
            COOPSIM_FATAL("--supervise is mutually exclusive with "
                          "--shard and --merge");
        }
        if (!cli.supervise && cli.shards > 0) {
            COOPSIM_FATAL("--shards=N requires --supervise");
        }
        if ((cli.shard_set || cli.merge || cli.supervise) &&
            cli.store_dir.empty()) {
            COOPSIM_FATAL(
                "--shard, --merge and --supervise require --store=DIR");
        }
        if (!cli.record_dir.empty()) {
            // Recording is a serial capture pass over the generators;
            // none of the sweep-distribution machinery applies to it.
            if (cli.shard_set) {
                COOPSIM_FATAL("--record is mutually exclusive with "
                              "--shard: record once, then shard the "
                              "replay sweep");
            }
            if (cli.merge) {
                COOPSIM_FATAL("--record is mutually exclusive with "
                              "--merge: recording writes trace files, "
                              "not result stores");
            }
            if (cli.supervise) {
                COOPSIM_FATAL("--record is mutually exclusive with "
                              "--supervise: recording runs serially in "
                              "this process");
            }
            if (!cli.store_dir.empty()) {
                COOPSIM_FATAL("--record does not take --store: it "
                              "writes .cooptrace files to the --record "
                              "directory, not simulation results");
            }
        }

        api::ExperimentSpec spec = api::parseSpecFile(cli.spec_path);
        if (cli.scale_set) {
            spec.scale = cli.scale_name;
        }
        if (cli.seed.has_value()) {
            spec.seeds = {*cli.seed};
        }
        if (cli.sampling_set) {
            spec.sampling = {cli.sampling_name};
        }
        if (!cli.trace_dir.empty()) {
            bool any_trace = false;
            for (const std::string &group : spec.groups) {
                any_trace =
                    any_trace || tracefile::isTraceWorkload(group);
            }
            if (!any_trace) {
                COOPSIM_WARN("--trace-dir given, but spec '", spec.name,
                             "' names no trace: workloads — the "
                             "registered traces will go unused");
            }
        }
        if (!cli.record_dir.empty()) {
            const std::size_t files =
                tracefile::recordSpec(spec, cli.record_dir);
            std::fprintf(stderr,
                         "# record: wrote %zu trace file(s) to %s\n",
                         files, cli.record_dir.c_str());
            return 0;
        }
        // Reprint the bench preamble at the spec's effective scale so
        // the output is bit-identical to the fig binary's.
        api::CliOptions effective = cli;
        effective.scale = api::scaleRegistry().get(spec.scale);

        if (cli.supervise) {
            return runSupervised(argv[0], cli, spec, effective,
                                 threads);
        }

        if (cli.shard_set) {
            // Shard mode: compute (and persist) this slice only; the
            // table needs every cell, so none is rendered here.
            // Fault injection (COOPSIM_FAULT) is armed here — and only
            // here — so supervised workers misbehave deterministically
            // while the parent and unsharded runs never do.
            supervise::armFaultsFromEnv(cli.shard_index,
                                        workerAttempt());
            auto result_store = std::make_shared<store::ResultStore>();
            result_store->loadDir(cli.store_dir);
            sim::RunExecutor &executor = sim::RunExecutor::instance();
            executor.attachStore(result_store);

            const std::vector<sim::RunKey> keys = api::expandSpec(spec);
            const std::vector<sim::RunKey> slice = api::shardKeys(
                keys, cli.shard_index, cli.shard_count);
            api::printPreamble(effective, threads);
            std::printf("# shard %u/%u: %zu of %zu runs\n",
                        cli.shard_index, cli.shard_count, slice.size(),
                        keys.size());

            executor.prefetch(slice);
            store::ResultStore shard_results;
            for (const sim::RunKey &key : slice) {
                try {
                    shard_results.put(key, executor.run(key));
                } catch (const sim::RunFailure &failure) {
                    std::fprintf(stderr, "error: %s\n", failure.what());
                    return 1;
                }
            }
            // The crash/hang checkpoint sits between compute and save:
            // a crashed attempt leaves no shard file at all, which is
            // exactly the torn state the supervisor must recover from.
            supervise::workerCheckpoint();
            const std::string path =
                cli.store_dir + "/" +
                store::shardFileName(cli.shard_index, cli.shard_count);
            shard_results.save(path);
            api::printRunStats();
            std::fprintf(stderr, "# store: saved %zu results to %s\n",
                         shard_results.size(), path.c_str());
            return 0;
        }

        // Unsharded run, optionally store-backed; --merge is the same
        // path with the store mandatory: loading folds every shard
        // file in the directory (last-writer-wins), the table renders
        // from the folded results, and the at-exit save persists the
        // merged store to results.coopstore.
        api::attachCliStore(cli);
        api::printPreamble(effective, threads);
        api::printExperiment(spec, cli.show_ci);
        return 0;
    }

    // Single-cell mode: one spec with one value per axis.
    api::attachCliStore(cli);
    api::ExperimentSpec spec;
    spec.name = "cli";
    spec.layout = "none";
    spec.schemes = {cli.scheme};
    spec.groups = {cli.group};
    spec.thresholds = {cli.threshold.value_or(0.05)};
    spec.seeds = {cli.seed.value_or(42)};
    spec.scale = cli.scale_name;
    if (cli.sampling_set) {
        spec.sampling = {cli.sampling_name};
    }
    const api::ExperimentResults results = api::runExperiment(spec);

    api::Cell cell;
    cell.group = cli.group;
    const sim::RunResult &result = results.result(cell);
    const double ws = results.weightedSpeedup(cell);

    if (cli.csv) {
        std::printf("%s\n%s\n", sim::csvHeader().c_str(),
                    sim::csvRow(api::schemeLabel(cli.scheme),
                                cli.group, result, ws)
                        .c_str());
        return 0;
    }

    std::printf("# %s on %s (T=%.2f, seed=%llu)\n",
                api::schemeLabel(cli.scheme).c_str(),
                cli.group.c_str(), spec.thresholds[0],
                static_cast<unsigned long long>(spec.seeds[0]));
    std::printf("weighted_speedup %f\n", ws);
    if (cli.show_ci) {
        std::printf("weighted_speedup_ci %f\n",
                    results.weightedSpeedupCi(cell));
    }
    std::printf("%s", sim::formatRunResult(result, "run").c_str());
    return 0;
}
