/**
 * @file
 * Demonstrates extending the library with a custom partitioning
 * scheme: a QoS-style way-aligned policy giving a fixed priority core
 * a fixed large share (cf. the CQoS/virtual-private-cache line of work
 * the paper cites), with the unused remainder power-gated.
 *
 * The example subclasses llc::BaseLlc — the same interface the five
 * built-in schemes implement — and then simply REGISTERS it under the
 * name "priority". From that point it is a first-class scheme: it
 * runs on the executor through the normal System event loop, is
 * memoised by RunKey, and could be named in any ExperimentSpec or
 * spec file, next to "fairshare" and "coop".
 */

#include <bit>
#include <cstdio>

#include <coopsim/experiment.hpp>

#include "llc/schemes.hpp"

using namespace coopsim;

namespace
{

/**
 * Fixed-priority way-aligned partitioning: core 0 owns
 * `priority_ways`; the other cores split half the remainder; the rest
 * of the cache is power-gated.
 */
class PriorityLlc final : public llc::BaseLlc
{
  public:
    PriorityLlc(const llc::LlcConfig &config, mem::DramModel &dram,
                std::uint32_t priority_ways)
        : BaseLlc(config, dram, /*has_partition_hw=*/true),
          masks_(config.num_cores, 0)
    {
        // Core 0 gets its guaranteed share.
        for (WayId w = 0; w < priority_ways; ++w) {
            masks_[0] |= cache::WayMask{1} << w;
        }
        // Others round-robin over half of what is left; the rest stays
        // dark for static-energy savings.
        const std::uint32_t rest = config.geometry.ways - priority_ways;
        const std::uint32_t lit = rest / 2;
        for (std::uint32_t i = 0; i < lit; ++i) {
            const WayId w = priority_ways + i;
            const CoreId owner = 1 + (i % (config.num_cores - 1));
            masks_[owner] |= cache::WayMask{1} << w;
        }
        powered_ = priority_ways + lit;
    }

    llc::LlcAccess access(CoreId core, Addr addr, AccessType type,
                          Cycle now) override
    {
        integrateStatic(now);
        const cache::WayMask mask = masks_[core];
        const Addr aligned = array_.slicer().blockAlign(addr);
        const SetId set = array_.slicer().set(aligned);
        const auto probed =
            static_cast<std::uint32_t>(std::popcount(mask));

        const auto found = array_.lookup(aligned, mask);
        if (found.hit) {
            array_.touch(set, found.way);
            if (isWrite(type)) {
                array_.setDirty(set, found.way, true);
            }
            chargeAccess(core, probed, true, !isWrite(type),
                         isWrite(type), true);
            return {true, false, now + config_.hit_latency, probed};
        }
        const WayId victim = array_.victim(set, mask);
        const auto &old = array_.block(set, victim);
        if (old.valid && old.dirty) {
            dram_.writeback(array_.blockAddr(set, victim), now);
            core_stats_[core].writebacks.inc();
        }
        const Cycle done = dram_.access(aligned, type, now);
        array_.insert(aligned, set, victim, core, isWrite(type));
        chargeAccess(core, probed, false, false, true, true);
        return {false, false, done + config_.hit_latency, probed};
    }

    std::vector<std::uint32_t> allocation() const override
    {
        std::vector<std::uint32_t> alloc;
        for (const cache::WayMask m : masks_) {
            alloc.push_back(
                static_cast<std::uint32_t>(std::popcount(m)));
        }
        return alloc;
    }

    double poweredWays() const override
    {
        return static_cast<double>(powered_);
    }

    // Reuse an existing tag for simplicity; the registry name is the
    // real identity now.
    llc::Scheme scheme() const override
    {
        return llc::Scheme::FairShare;
    }

  private:
    std::vector<cache::WayMask> masks_;
    std::uint32_t powered_ = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    const api::CliOptions cli =
        api::parseCli(argc, argv, api::kExampleFlags,
                      "usage: custom_policy [group] [--scale=...] "
                      "[--full] [--threads=N]\n");
    api::applyCliThreads(cli);
    const std::string group_name =
        cli.positional.empty() ? "G2-5" : cli.positional.front();

    // The whole extension: one registration call. Everything below
    // runs "priority" through the same executor/memoisation path as
    // the built-in schemes.
    api::registerScheme(
        "priority", "Priority(5w)",
        [](const llc::LlcConfig &config, mem::DramModel &dram) {
            return std::make_unique<PriorityLlc>(config, dram,
                                                 /*priority_ways=*/5);
        });

    api::ExperimentSpec spec;
    spec.name = "custom_policy";
    spec.layout = "none";
    spec.with_solo = false;
    spec.schemes = {"fairshare", "priority"};
    spec.groups = {group_name};
    spec.scale = cli.scale_name;
    const api::ExperimentResults results = api::runExperiment(spec);

    const trace::WorkloadGroup &group = results.groups().front();
    std::printf("custom QoS policy on %s (%s prioritised)\n\n",
                group.name.c_str(), group.apps[0].c_str());
    std::printf("%-22s %10s %10s %12s %10s\n", "policy", "ipc[0]",
                "ipc[1]", "dyn(mJ)", "ways/acc");

    for (const std::string &scheme : results.spec().schemes) {
        api::Cell cell;
        cell.group = group.name;
        cell.scheme = scheme;
        const sim::RunResult &r = results.result(cell);
        std::printf("%-22s %10.3f %10.3f %12.4f %10.2f\n",
                    api::schemeLabel(scheme).c_str(), r.apps[0].ipc,
                    r.apps[1].ipc, r.dynamic_energy_nj * 1e-6,
                    r.avg_ways_probed);
    }

    std::printf("\nThe custom policy trades the background core's "
                "performance for the\npriority core's, and gates the "
                "leftover capacity — all through the\nsame BaseLlc + "
                "registry interface the paper's schemes use.\n");
    return 0;
}
