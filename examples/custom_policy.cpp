/**
 * @file
 * Demonstrates extending the library with a custom partitioning
 * scheme: a QoS-style way-aligned policy giving a fixed priority core
 * a fixed large share (cf. the CQoS/virtual-private-cache line of work
 * the paper cites), with the unused remainder power-gated.
 *
 * The example subclasses llc::BaseLlc — the same interface the five
 * built-in schemes implement — and runs it against FairShare on one
 * workload.
 */

#include <cstdio>
#include <memory>

#include "core/trace_core.hpp"
#include "llc/schemes.hpp"
#include "sim/system.hpp"
#include "trace/workloads.hpp"

using namespace coopsim;

namespace
{

/**
 * Fixed-priority way-aligned partitioning: core 0 owns
 * `priority_ways`; the other cores split half the remainder; the rest
 * of the cache is power-gated.
 */
class PriorityLlc final : public llc::BaseLlc
{
  public:
    PriorityLlc(const llc::LlcConfig &config, mem::DramModel &dram,
                std::uint32_t priority_ways)
        : BaseLlc(config, dram, /*has_partition_hw=*/true),
          masks_(config.num_cores, 0)
    {
        // Core 0 gets its guaranteed share.
        for (WayId w = 0; w < priority_ways; ++w) {
            masks_[0] |= cache::WayMask{1} << w;
        }
        // Others round-robin over half of what is left; the rest stays
        // dark for static-energy savings.
        const std::uint32_t rest = config.geometry.ways - priority_ways;
        const std::uint32_t lit = rest / 2;
        for (std::uint32_t i = 0; i < lit; ++i) {
            const WayId w = priority_ways + i;
            const CoreId owner = 1 + (i % (config.num_cores - 1));
            masks_[owner] |= cache::WayMask{1} << w;
        }
        powered_ = priority_ways + lit;
    }

    llc::LlcAccess access(CoreId core, Addr addr, AccessType type,
                          Cycle now) override
    {
        integrateStatic(now);
        const cache::WayMask mask = masks_[core];
        const Addr aligned = array_.slicer().blockAlign(addr);
        const SetId set = array_.slicer().set(aligned);
        const auto probed =
            static_cast<std::uint32_t>(std::popcount(mask));

        const auto found = array_.lookup(aligned, mask);
        if (found.hit) {
            array_.touch(set, found.way);
            if (isWrite(type)) {
                array_.blockMutable(set, found.way).dirty = true;
            }
            chargeAccess(core, probed, true, !isWrite(type),
                         isWrite(type), true);
            return {true, false, now + config_.hit_latency, probed};
        }
        const WayId victim = array_.victim(set, mask);
        const auto &old = array_.block(set, victim);
        if (old.valid && old.dirty) {
            dram_.writeback(array_.blockAddr(set, victim), now);
            core_stats_[core].writebacks.inc();
        }
        const Cycle done = dram_.access(aligned, type, now);
        array_.insert(aligned, set, victim, core, isWrite(type));
        chargeAccess(core, probed, false, false, true, true);
        return {false, false, done + config_.hit_latency, probed};
    }

    std::vector<std::uint32_t> allocation() const override
    {
        std::vector<std::uint32_t> alloc;
        for (const cache::WayMask m : masks_) {
            alloc.push_back(
                static_cast<std::uint32_t>(std::popcount(m)));
        }
        return alloc;
    }

    double poweredWays() const override
    {
        return static_cast<double>(powered_);
    }

    // Reuse an existing tag for simplicity; a real extension would
    // grow the enum.
    llc::Scheme scheme() const override
    {
        return llc::Scheme::FairShare;
    }

  private:
    std::vector<cache::WayMask> masks_;
    std::uint32_t powered_ = 0;
};

/** Runs @p llc under the group's traffic; returns per-core IPC. */
std::vector<double>
drive(llc::BaseLlc &llc, const trace::WorkloadGroup &group,
      const sim::SystemConfig &config)
{
    trace::StreamGeometry sg;
    sg.llc_sets = config.llc.geometry.numSets();
    sg.block_bytes = config.llc.geometry.block_bytes;

    std::vector<std::unique_ptr<trace::SyntheticStream>> streams;
    std::vector<std::unique_ptr<core::TraceCore>> cores;
    const auto n = static_cast<std::uint32_t>(group.apps.size());
    for (std::uint32_t c = 0; c < n; ++c) {
        streams.push_back(std::make_unique<trace::SyntheticStream>(
            trace::specProfile(group.apps[c]), sg, c, 7 + c));
        cores.push_back(std::make_unique<core::TraceCore>(
            c, config.core, llc, *streams[c]));
    }

    const InstCount quota = config.insts_per_app / 2;
    bool done = false;
    while (!done) {
        std::uint32_t min = 0;
        for (std::uint32_t c = 1; c < n; ++c) {
            if (cores[c]->cycle() < cores[min]->cycle()) {
                min = c;
            }
        }
        cores[min]->step();
        done = true;
        for (std::uint32_t c = 0; c < n; ++c) {
            done = done && cores[c]->retired() >= quota;
        }
    }
    std::vector<double> ipcs;
    for (std::uint32_t c = 0; c < n; ++c) {
        ipcs.push_back(static_cast<double>(cores[c]->retired()) /
                       static_cast<double>(cores[c]->cycle()));
    }
    return ipcs;
}

} // namespace

int
main(int argc, char **argv)
{
    const trace::WorkloadGroup &group =
        trace::groupByName(argc > 1 ? argv[1] : "G2-5");
    const sim::SystemConfig config = sim::makeTwoCoreConfig(
        llc::Scheme::FairShare, sim::RunScale::Bench);

    std::printf("custom QoS policy on %s (%s prioritised)\n\n",
                group.name.c_str(), group.apps[0].c_str());
    std::printf("%-22s %10s %10s %12s %10s\n", "policy", "ipc[0]",
                "ipc[1]", "dyn(mJ)", "powered");

    {
        mem::DramModel dram(config.dram);
        llc::FairShareLlc fair(config.llc, dram);
        const auto ipcs = drive(fair, group, config);
        std::printf("%-22s %10.3f %10.3f %12.4f %10.1f\n",
                    "FairShare", ipcs[0], ipcs[1],
                    fair.energy().totals().dynamicPaper() * 1e-6,
                    fair.poweredWays());
    }
    {
        mem::DramModel dram(config.dram);
        PriorityLlc qos(config.llc, dram, /*priority_ways=*/5);
        const auto ipcs = drive(qos, group, config);
        std::printf("%-22s %10.3f %10.3f %12.4f %10.1f\n",
                    "Priority(5 ways)", ipcs[0], ipcs[1],
                    qos.energy().totals().dynamicPaper() * 1e-6,
                    qos.poweredWays());
    }

    std::printf("\nThe custom policy trades the background core's "
                "performance for the\npriority core's, and gates the "
                "leftover capacity — all through the\nsame BaseLlc "
                "interface the paper's schemes use.\n");
    return 0;
}
