/**
 * @file
 * Explores the paper's central trade-off for one workload: sweep the
 * turn-off threshold T and print performance against dynamic/static
 * energy, so the "knee" at T = 0.05 (the paper's default) is visible.
 *
 * Usage: energy_explorer [group] [--full]   (default G2-2)
 */

#include <cstdio>
#include <string>

#include "sim/runner.hpp"

using namespace coopsim;

int
main(int argc, char **argv)
{
    std::string group_name = "G2-2";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (!arg.empty() && arg[0] != '-') {
            group_name = arg;
        }
    }
    const trace::WorkloadGroup &group = trace::groupByName(group_name);

    // One list drives both the prefetch below and the print loop — a
    // sweep value added here is automatically prefetched too.
    const std::vector<double> sweep = {0.0,  0.01, 0.02, 0.05,
                                       0.08, 0.1,  0.15, 0.2};

    sim::RunOptions base;
    base.scale = sim::scaleFromArgs(argc, argv);
    sim::applyThreadArgs(argc, argv);

    // Enqueue the whole threshold sweep plus the Fair Share reference
    // and solo baselines up front.
    {
        std::vector<sim::RunKey> keys;
        keys.push_back(sim::groupKey(llc::Scheme::FairShare, group, base));
        for (const double t : sweep) {
            sim::RunOptions options = base;
            options.threshold = t;
            keys.push_back(
                sim::groupKey(llc::Scheme::Cooperative, group, options));
        }
        for (const std::string &app : group.apps) {
            keys.push_back(sim::soloKey(
                app, static_cast<std::uint32_t>(group.apps.size()),
                base));
        }
        sim::prefetch(keys);
    }

    // Fair Share reference for the energy normalisation.
    const sim::RunResult &fair =
        sim::runGroup(llc::Scheme::FairShare, group, base);
    const double fair_ws = sim::groupWeightedSpeedup(
        llc::Scheme::FairShare, group, base);

    // LLC associativity of the system this group runs on (8 for the
    // two-core geometry, 16 for four-core).
    const double llc_ways = static_cast<double>(
        (group.apps.size() <= 2
             ? sim::makeTwoCoreConfig(llc::Scheme::Cooperative,
                                      base.scale)
             : sim::makeFourCoreConfig(llc::Scheme::Cooperative,
                                       base.scale))
            .llc.geometry.ways);

    std::printf("threshold sweep for %s (values normalised to "
                "Fair Share)\n\n",
                group.name.c_str());
    std::printf("%8s %12s %12s %12s %10s %8s\n", "T", "w.speedup",
                "dynamic", "static", "ways/acc", "offways");

    for (const double t : sweep) {
        sim::RunOptions options = base;
        options.threshold = t;
        const sim::RunResult &r =
            sim::runGroup(llc::Scheme::Cooperative, group, options);
        const double ws = sim::groupWeightedSpeedup(
            llc::Scheme::Cooperative, group, options);

        // Average powered ways back-computed from the leakage ratio.
        const double powered_ratio =
            (r.static_energy_nj / static_cast<double>(r.total_cycles)) /
            (fair.static_energy_nj /
             static_cast<double>(fair.total_cycles));
        std::printf("%8.2f %12.3f %12.3f %12.3f %10.2f %8.1f\n", t,
                    ws / fair_ws,
                    r.dynamic_energy_nj / fair.dynamic_energy_nj,
                    r.static_energy_nj / fair.static_energy_nj,
                    r.avg_ways_probed,
                    llc_ways * (1.0 - powered_ratio));
    }

    std::printf("\nThe paper selects T = 0.05: the largest threshold "
                "with (near) zero\nperformance loss. Larger T values "
                "buy energy with real slowdowns\n(Figures 11-13).\n");
    return 0;
}
