/**
 * @file
 * Explores the paper's central trade-off for one workload: sweep the
 * turn-off threshold T and print performance against dynamic/static
 * energy, so the "knee" at T = 0.05 (the paper's default) is visible.
 *
 * Usage: energy_explorer [group] [--full]   (default G2-2)
 */

#include <cstdio>
#include <string>

#include <coopsim/experiment.hpp>

using namespace coopsim;

int
main(int argc, char **argv)
{
    const api::CliOptions cli =
        api::parseCli(argc, argv, api::kExampleFlags,
                      "usage: energy_explorer [group] [--scale=...] "
                      "[--full] [--threads=N]\n");
    api::applyCliThreads(cli);
    const std::string group_name =
        cli.positional.empty() ? "G2-2" : cli.positional.front();

    // The Cooperative threshold sweep: one axis carries the whole
    // experiment; a value added here is automatically prefetched too.
    api::ExperimentSpec sweep_spec;
    sweep_spec.name = "energy_explorer";
    sweep_spec.layout = "none";
    sweep_spec.schemes = {"coop"};
    sweep_spec.groups = {group_name};
    sweep_spec.thresholds = {0.0,  0.01, 0.02, 0.05,
                             0.08, 0.1,  0.15, 0.2};
    sweep_spec.scale = cli.scale_name;
    const api::ExperimentResults sweep = api::runExperiment(sweep_spec);

    // Fair Share reference for the normalisation, prefetched in
    // parallel with the sweep above.
    api::ExperimentSpec ref_spec = sweep_spec;
    ref_spec.schemes = {"fairshare"};
    ref_spec.thresholds = {0.0};
    const api::ExperimentResults ref = api::runExperiment(ref_spec);

    const trace::WorkloadGroup &group = sweep.groups().front();
    api::Cell fair_cell;
    fair_cell.group = group.name;
    const sim::RunResult &fair = ref.result(fair_cell);
    const double fair_ws = ref.weightedSpeedup(fair_cell);

    // LLC associativity of the system this group runs on (8 for the
    // two-core topology, 16 for four-core, ...).
    const double llc_ways = static_cast<double>(
        sim::makeSystemConfig(
            static_cast<std::uint32_t>(group.apps.size()), "coop",
            cli.scale)
            .llc.geometry.ways);

    std::printf("threshold sweep for %s (values normalised to "
                "Fair Share)\n\n",
                group.name.c_str());
    std::printf("%8s %12s %12s %12s %10s %8s\n", "T", "w.speedup",
                "dynamic", "static", "ways/acc", "offways");

    for (const double t : sweep.spec().thresholds) {
        api::Cell cell;
        cell.group = group.name;
        cell.threshold = t;
        const sim::RunResult &r = sweep.result(cell);
        const double ws = sweep.weightedSpeedup(cell);

        // Average powered ways back-computed from the leakage ratio.
        const double powered_ratio =
            (r.static_energy_nj / static_cast<double>(r.total_cycles)) /
            (fair.static_energy_nj /
             static_cast<double>(fair.total_cycles));
        std::printf("%8.2f %12.3f %12.3f %12.3f %10.2f %8.1f\n", t,
                    ws / fair_ws,
                    r.dynamic_energy_nj / fair.dynamic_energy_nj,
                    r.static_energy_nj / fair.static_energy_nj,
                    r.avg_ways_probed,
                    llc_ways * (1.0 - powered_ratio));
    }

    std::printf("\nThe paper selects T = 0.05: the largest threshold "
                "with (near) zero\nperformance loss. Larger T values "
                "buy energy with real slowdowns\n(Figures 11-13).\n");
    return 0;
}
