/**
 * @file
 * Quickstart: build the paper's two-core system, run one workload
 * group under every partitioning scheme, and print the headline
 * numbers (weighted speedup, energy, ways probed).
 *
 * Usage: quickstart [group] [--full]
 *   group  a Table 4 name such as G2-3 (default) or G4-8.
 */

#include <cstdio>
#include <string>

#include "sim/runner.hpp"

using namespace coopsim;

int
main(int argc, char **argv)
{
    std::string group_name = "G2-3";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (!arg.empty() && arg[0] != '-') {
            group_name = arg;
        }
    }

    sim::RunOptions options;
    options.scale = sim::scaleFromArgs(argc, argv);
    sim::applyThreadArgs(argc, argv);

    const trace::WorkloadGroup &group = trace::groupByName(group_name);

    // Enqueue the whole sweep (every scheme + solo baselines) before
    // collecting anything; the executor runs them concurrently.
    sim::prefetchGroups(
        {llc::Scheme::Unmanaged, llc::Scheme::FairShare,
         llc::Scheme::DynamicCpe, llc::Scheme::Ucp,
         llc::Scheme::Cooperative},
        {group}, options);

    std::printf("workload %s:", group.name.c_str());
    for (const auto &app : group.apps) {
        std::printf(" %s", app.c_str());
    }
    std::printf("\n\n%-14s %9s %12s %12s %10s %8s\n", "scheme",
                "w.speedup", "dyn(mJ)", "stat(mJ)", "ways/acc",
                "LLCmiss%");

    const llc::Scheme schemes[] = {
        llc::Scheme::Unmanaged,   llc::Scheme::FairShare,
        llc::Scheme::DynamicCpe,  llc::Scheme::Ucp,
        llc::Scheme::Cooperative,
    };

    for (const llc::Scheme scheme : schemes) {
        const sim::RunResult &r = sim::runGroup(scheme, group, options);
        const double ws = sim::groupWeightedSpeedup(scheme, group,
                                                    options);
        std::uint64_t acc = 0;
        std::uint64_t miss = 0;
        for (const auto &app : r.apps) {
            acc += app.llc_accesses;
            miss += app.llc_misses;
        }
        std::printf("%-14s %9.3f %12.3f %12.3f %10.2f %8.2f\n",
                    llc::schemeName(scheme), ws,
                    r.dynamic_energy_nj * 1e-6,
                    r.static_energy_nj * 1e-6, r.avg_ways_probed,
                    acc > 0 ? 100.0 * static_cast<double>(miss) /
                                  static_cast<double>(acc)
                            : 0.0);
    }

    std::printf("\nPer-app IPC under Cooperative vs alone:\n");
    const sim::RunResult &coop =
        sim::runGroup(llc::Scheme::Cooperative, group, options);
    for (std::size_t i = 0; i < group.apps.size(); ++i) {
        const double alone = sim::soloIpc(
            group.apps[i],
            static_cast<std::uint32_t>(group.apps.size()), options);
        std::printf("  %-12s ipc=%.3f alone=%.3f (%.2fx)\n",
                    group.apps[i].c_str(), coop.apps[i].ipc, alone,
                    coop.apps[i].ipc / alone);
    }
    return 0;
}
