/**
 * @file
 * Quickstart: one ExperimentSpec runs one workload group under every
 * partitioning scheme, and the results view prints the headline
 * numbers (weighted speedup, energy, ways probed).
 *
 * Usage: quickstart [group] [--full]
 *   group  a Table 4 name such as G2-3 (default) or G4-8.
 */

#include <cstdio>
#include <string>

#include <coopsim/experiment.hpp>

using namespace coopsim;

int
main(int argc, char **argv)
{
    const api::CliOptions cli =
        api::parseCli(argc, argv, api::kExampleFlags,
                      "usage: quickstart [group] [--scale=...] "
                      "[--full] [--threads=N]\n");
    api::applyCliThreads(cli);

    api::ExperimentSpec spec;
    spec.name = "quickstart";
    spec.layout = "none";
    spec.schemes = {"unmanaged", "fairshare", "cpe", "ucp", "coop"};
    spec.groups = {cli.positional.empty() ? "G2-3"
                                          : cli.positional.front()};
    spec.scale = cli.scale_name;
    const api::ExperimentResults results = api::runExperiment(spec);

    const trace::WorkloadGroup &group = results.groups().front();
    std::printf("workload %s:", group.name.c_str());
    for (const auto &app : group.apps) {
        std::printf(" %s", app.c_str());
    }
    std::printf("\n\n%-14s %9s %12s %12s %10s %8s\n", "scheme",
                "w.speedup", "dyn(mJ)", "stat(mJ)", "ways/acc",
                "LLCmiss%");

    for (const std::string &scheme : results.spec().schemes) {
        api::Cell cell;
        cell.group = group.name;
        cell.scheme = scheme;
        const sim::RunResult &r = results.result(cell);
        const double ws = results.weightedSpeedup(cell);
        std::uint64_t acc = 0;
        std::uint64_t miss = 0;
        for (const auto &app : r.apps) {
            acc += app.llc_accesses;
            miss += app.llc_misses;
        }
        std::printf("%-14s %9.3f %12.3f %12.3f %10.2f %8.2f\n",
                    api::schemeLabel(scheme).c_str(), ws,
                    r.dynamic_energy_nj * 1e-6,
                    r.static_energy_nj * 1e-6, r.avg_ways_probed,
                    acc > 0 ? 100.0 * static_cast<double>(miss) /
                                  static_cast<double>(acc)
                            : 0.0);
    }

    std::printf("\nPer-app IPC under Cooperative vs alone:\n");
    api::Cell coop_cell;
    coop_cell.group = group.name;
    coop_cell.scheme = "coop";
    const sim::RunResult &coop = results.result(coop_cell);
    const auto cores = static_cast<std::uint32_t>(group.apps.size());
    for (std::size_t i = 0; i < group.apps.size(); ++i) {
        const double alone = results.soloIpc(group.apps[i], cores);
        std::printf("  %-12s ipc=%.3f alone=%.3f (%.2fx)\n",
                    group.apps[i].c_str(), coop.apps[i].ipc, alone,
                    coop.apps[i].ipc / alone);
    }
    return 0;
}
