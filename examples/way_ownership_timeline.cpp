/**
 * @file
 * Visualises Cooperative Partitioning at work, composing the library's
 * lower-level pieces directly (cores, streams, LLC) instead of using
 * sim::System: runs two applications on the two-core system and
 * prints, at every partitioning epoch, the RAP/WAP state of each LLC
 * way — who owns it, which ways are in transition or draining, and
 * which are power-gated.
 *
 * Usage: way_ownership_timeline [group]   (default G2-12: soplex+gcc,
 * whose phase behaviour forces genuine way migration)
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/trace_core.hpp"
#include "llc/schemes.hpp"
#include "sim/system.hpp"
#include "trace/workloads.hpp"

using namespace coopsim;

namespace
{

char
wayGlyph(const llc::PermissionFile &perms, WayId way)
{
    switch (perms.state(way)) {
      case llc::WayState::Off:
        return '.';
      case llc::WayState::Draining:
        return 'v';
      case llc::WayState::Transition:
        return '>';
      case llc::WayState::Steady:
        return static_cast<char>('0' + perms.writerOf(way));
    }
    return '?';
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string group_name = argc > 1 ? argv[1] : "G2-12";
    const trace::WorkloadGroup &group = trace::groupByName(group_name);
    const auto n = static_cast<std::uint32_t>(group.apps.size());

    // Borrow the paper configuration (bench miniature) and build the
    // pieces by hand.
    const sim::SystemConfig config =
        sim::makeSystemConfig(n, "coop", sim::RunScale::Bench);

    mem::DramModel dram(config.dram);
    llc::CooperativeLlc coop(config.llc, dram);

    trace::StreamGeometry sg;
    sg.llc_sets = config.llc.geometry.numSets();
    sg.block_bytes = config.llc.geometry.block_bytes;

    std::vector<std::unique_ptr<trace::SyntheticStream>> streams;
    std::vector<std::unique_ptr<core::TraceCore>> cores;
    for (std::uint32_t c = 0; c < n; ++c) {
        streams.push_back(std::make_unique<trace::SyntheticStream>(
            trace::specProfile(group.apps[c]), sg, c, 42 + c));
        cores.push_back(std::make_unique<core::TraceCore>(
            c, config.core, coop, *streams[c]));
    }

    std::printf("way ownership timeline for %s (", group.name.c_str());
    for (std::uint32_t c = 0; c < n; ++c) {
        std::printf("%s%u=%s", c ? ", " : "", c,
                    group.apps[c].c_str());
    }
    std::printf(")\nlegend: digit = steady owner, > = in transition, "
                "v = draining, . = powered off\n\n");
    std::printf("%-14s %-*s %s\n", "epoch(cycles)",
                static_cast<int>(config.llc.geometry.ways) + 2, "ways",
                "allocation / powered");

    const InstCount quota = config.insts_per_app / 2;
    Cycle next_epoch = config.epoch_cycles;
    bool done = false;
    while (!done) {
        // Advance the globally earliest core (the driver invariant).
        std::uint32_t min = 0;
        for (std::uint32_t c = 1; c < n; ++c) {
            if (cores[c]->cycle() < cores[min]->cycle()) {
                min = c;
            }
        }
        if (cores[min]->cycle() >= next_epoch) {
            coop.epoch(next_epoch);

            std::printf("%-14llu ",
                        static_cast<unsigned long long>(next_epoch));
            for (WayId w = 0; w < config.llc.geometry.ways; ++w) {
                std::printf("%c", wayGlyph(coop.permissions(), w));
            }
            const auto alloc = coop.allocation();
            std::printf("   [");
            for (std::uint32_t c = 0; c < n; ++c) {
                std::printf("%s%u", c ? " " : "", alloc[c]);
            }
            std::printf("] / %.0f\n", coop.poweredWays());
            next_epoch += config.epoch_cycles;
            continue;
        }
        cores[min]->step();

        done = true;
        for (std::uint32_t c = 0; c < n; ++c) {
            done = done && cores[c]->retired() >= quota;
        }
    }

    std::printf("\nrun summary:\n");
    std::printf("  repartitions           %llu\n",
                static_cast<unsigned long long>(coop.repartitions()));
    std::printf("  completed transfers    %zu\n",
                coop.transferDurations().size());
    std::printf("  lines flushed          %llu\n",
                static_cast<unsigned long long>(coop.flushedLines()));
    std::printf("  forced completions     %llu\n",
                static_cast<unsigned long long>(
                    coop.forcedCompletions()));
    std::printf("  avg ways probed        %.2f\n",
                coop.energy().avgWaysProbed());
    return 0;
}
