/**
 * @file
 * Tests for the batched intra-run hot path:
 *
 *  - MinClockTree::secondBest() agrees with a linear scan that skips
 *    the winner, across 1..17 cores under randomised clock sequences
 *    (including ties — the quantum bound depends on the runner-up's
 *    index as well as its clock);
 *  - TraceCore::stepQuantum() is bit-identical to a step() loop with
 *    the same post-step exit checks;
 *  - the batched System driver produces bit-identical results to the
 *    per-op reference driver (store::formatResult compares every
 *    RunResult field exactly) over 1..16 cores x all three
 *    partitioners x test-scale workloads, including the warmup-free
 *    edge case — and actually batches (avgQuantumOps > 1);
 *  - COOPSIM_THREADS gets the --threads=N treatment: garbage or 0 is
 *    a descriptive fatal, not a silent fallback.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include <coopsim/experiment.hpp>

#include "common/rng.hpp"
#include "core/trace_core.hpp"
#include "llc/schemes.hpp"
#include "sim/min_clock_tree.hpp"
#include "store/result_store.hpp"
#include "trace/spec_profiles.hpp"
#include "trace/workloads.hpp"

using namespace coopsim;
using namespace coopsim::sim;

// ---------------------------------------------------------------------------
// secondBest

namespace
{

/** Reference: minimum over every index except @p skip, lowest index
 *  on ties — the semantics the quantum bound needs. */
MinClockTree::Second
refSecond(const std::vector<Cycle> &clock, std::uint32_t skip)
{
    MinClockTree::Second best{MinClockTree::kNoSecond, kCycleMax};
    for (std::uint32_t c = 0; c < clock.size(); ++c) {
        if (c == skip) {
            continue;
        }
        if (clock[c] < best.clock ||
            (clock[c] == best.clock && c < best.index)) {
            best = {c, clock[c]};
        }
    }
    return best;
}

std::uint32_t
refMin(const std::vector<Cycle> &clock)
{
    std::uint32_t best = 0;
    for (std::uint32_t c = 1; c < clock.size(); ++c) {
        if (clock[c] < clock[best]) {
            best = c;
        }
    }
    return best;
}

} // namespace

TEST(MinClockTreeSecond, MatchesSkippingScanAcrossCoreCounts)
{
    Rng rng(20260730);
    for (std::uint32_t n = 1; n <= 17; ++n) {
        // Small value range so ties (including winner == runner-up)
        // are common.
        std::vector<Cycle> clock(n);
        for (Cycle &c : clock) {
            c = rng.nextBelow(6);
        }
        MinClockTree tree(clock);
        for (int step = 0; step < 2000; ++step) {
            const auto idx =
                static_cast<std::uint32_t>(rng.nextBelow(n));
            const Cycle value = rng.nextBelow(4) == 0
                                    ? rng.nextBelow(6)
                                    : clock[idx] + rng.nextBelow(3);
            clock[idx] = value;
            tree.update(idx, value);
            const MinClockTree::Second expected =
                refSecond(clock, refMin(clock));
            const MinClockTree::Second got = tree.secondBest();
            ASSERT_EQ(got.index, expected.index)
                << "n=" << n << " step=" << step;
            ASSERT_EQ(got.clock, expected.clock)
                << "n=" << n << " step=" << step;
        }
    }
}

TEST(MinClockTreeSecond, SingleCoreHasNoRunnerUp)
{
    MinClockTree tree(std::vector<Cycle>{7});
    EXPECT_EQ(tree.secondBest().index, MinClockTree::kNoSecond);
    EXPECT_EQ(tree.secondBest().clock, kCycleMax);
}

// ---------------------------------------------------------------------------
// stepQuantum vs step

namespace
{

llc::LlcConfig
tinyLlc()
{
    llc::LlcConfig config;
    config.geometry = {64ull * 4 * 64, 4, 64};
    config.num_cores = 1;
    return config;
}

} // namespace

TEST(StepQuantum, MatchesPerOpLoopWithPostStepChecks)
{
    const trace::AppProfile profile =
        trace::specProfile(trace::allSpecApps().front());
    trace::StreamGeometry sg;
    sg.llc_sets = 64;

    // Reference: step() with the driver's post-step exit checks.
    mem::DramModel dram_a;
    llc::UnmanagedLlc llc_a(tinyLlc(), dram_a);
    trace::SyntheticStream stream_a(profile, sg, 0, 99);
    core::TraceCore ref(0, core::CoreConfig{}, llc_a, stream_a);

    mem::DramModel dram_b;
    llc::UnmanagedLlc llc_b(tinyLlc(), dram_b);
    trace::SyntheticStream stream_b(profile, sg, 0, 99);
    core::TraceCore batched(0, core::CoreConfig{}, llc_b, stream_b);

    Rng rng(5);
    for (int round = 0; round < 200; ++round) {
        const Cycle cycle_bound = ref.cycle() + 1 + rng.nextBelow(400);
        const InstCount inst_bound =
            rng.nextBelow(3) == 0
                ? ref.retired() + 1 + rng.nextBelow(300)
                : std::numeric_limits<InstCount>::max();

        std::uint64_t ref_ops = 0;
        do {
            ref.step();
            ++ref_ops;
        } while (ref.cycle() < cycle_bound &&
                 ref.retired() < inst_bound);

        const std::uint64_t ops =
            batched.stepQuantum(cycle_bound, inst_bound);
        ASSERT_EQ(ops, ref_ops) << "round " << round;
        ASSERT_EQ(batched.cycle(), ref.cycle()) << "round " << round;
        ASSERT_EQ(batched.retired(), ref.retired()) << "round " << round;
    }
    EXPECT_EQ(llc_a.hitsTotal(), llc_b.hitsTotal());
    EXPECT_EQ(llc_a.missesTotal(), llc_b.missesTotal());
}

// ---------------------------------------------------------------------------
// Batched driver vs per-op driver, whole runs

namespace
{

/**
 * A shrunk run (the property holds at any scale) that still crosses
 * several epoch boundaries, the warmup handoff and every core's quota
 * mark — the points where the batched driver must cut its quanta
 * exactly where the per-op loop re-arbitrated.
 */
SystemConfig
propertyConfig(std::uint32_t n, partition::Partitioner partitioner,
               InstCount warmup)
{
    SystemConfig config = makeSystemConfig(n, "coop", RunScale::Test);
    config.insts_per_app = 60'000;
    config.warmup_insts = warmup;
    config.epoch_cycles = 20'000;
    config.llc.partitioner = partitioner;
    return config;
}

std::vector<trace::AppProfile>
profilesFor(std::uint32_t n)
{
    const std::vector<std::string> &apps = trace::allSpecApps();
    std::vector<trace::AppProfile> profiles;
    for (std::uint32_t c = 0; c < n; ++c) {
        profiles.push_back(trace::specProfile(apps[c % apps.size()]));
    }
    return profiles;
}

/** formatResult line of a run under the given driver mode. */
std::string
runLine(SystemConfig config, std::uint32_t n, DriverMode mode,
        double *avg_quantum = nullptr)
{
    config.driver = mode;
    System system(config, profilesFor(n));
    const RunResult result = system.run();
    if (avg_quantum != nullptr) {
        *avg_quantum = system.driverStats().avgQuantumOps();
    }
    // The store line encodes every RunResult field bit-exactly, so
    // equal lines mean bit-identical results.
    return store::formatResult(result);
}

} // namespace

TEST(BatchedDriver, BitIdenticalAcrossCoreCountsAndPartitioners)
{
    const partition::Partitioner partitioners[] = {
        partition::Partitioner::Lookahead,
        partition::Partitioner::EqualShare,
        partition::Partitioner::GreedyUtility,
    };
    for (std::uint32_t n = 1; n <= 16; ++n) {
        for (const partition::Partitioner p : partitioners) {
            const SystemConfig config = propertyConfig(n, p, 25'000);
            double avg_quantum = 0.0;
            const std::string batched =
                runLine(config, n, DriverMode::Batched, &avg_quantum);
            const std::string perop =
                runLine(config, n, DriverMode::PerOp);
            ASSERT_EQ(batched, perop)
                << "n=" << n << " partitioner="
                << api::partitionerKeyOf(p);
            EXPECT_GT(avg_quantum, 1.0)
                << "n=" << n << ": the batched driver never batched";
        }
    }
}

TEST(BatchedDriver, BitIdenticalAtFullTestScale)
{
    // Full Test-scale two- and four-core runs (the paper's
    // configurations), including a zero-warmup edge case where the
    // measurement loop starts immediately.
    for (const std::uint32_t n : {2u, 4u}) {
        SystemConfig config =
            makeSystemConfig(n, "coop", RunScale::Test);
        EXPECT_EQ(runLine(config, n, DriverMode::Batched),
                  runLine(config, n, DriverMode::PerOp))
            << "n=" << n;
        config.warmup_insts = 0;
        EXPECT_EQ(runLine(config, n, DriverMode::Batched),
                  runLine(config, n, DriverMode::PerOp))
            << "n=" << n << " (no warmup)";
    }
}

TEST(BatchedDriver, GroupRunsMatchAcrossSchemes)
{
    // Real Table 4 / generated-mix groups under every scheme: the
    // driver equivalence must hold for schemes with epoch-time state
    // machines (coop transfers, CPE bulk flushes), not just coop.
    struct Case
    {
        const char *group;
        const char *scheme;
    };
    const Case cases[] = {
        {"G2-3", "unmanaged"}, {"G2-3", "fairshare"}, {"G2-3", "ucp"},
        {"G2-3", "cpe"},       {"G2-3", "coop"},      {"G4-1", "coop"},
        {"G8-mix1", "ucp"},    {"G16-cpu1", "coop"},
    };
    for (const Case &c : cases) {
        const trace::WorkloadGroup &group = trace::groupByName(c.group);
        const auto n = static_cast<std::uint32_t>(group.apps.size());
        SystemConfig config =
            makeSystemConfig(n, c.scheme, RunScale::Test);

        config.driver = DriverMode::Batched;
        System batched(config, trace::groupProfiles(group));
        const std::string batched_line =
            store::formatResult(batched.run());

        config.driver = DriverMode::PerOp;
        System perop(config, trace::groupProfiles(group));
        const std::string perop_line =
            store::formatResult(perop.run());

        EXPECT_EQ(batched_line, perop_line)
            << c.group << " / " << c.scheme;
        EXPECT_GT(batched.driverStats().avgQuantumOps(), 1.0)
            << c.group << " / " << c.scheme;
        // Per-op mode accounts one op per quantum by definition.
        EXPECT_EQ(perop.driverStats().quanta,
                  perop.driverStats().steps);
    }
}

// ---------------------------------------------------------------------------
// COOPSIM_THREADS validation

TEST(CoopsimThreadsEnv, GarbageOrZeroIsDescriptivelyFatal)
{
    setThrowOnFatal(true);
    for (const char *bad : {"garbage", "0", "12abc", "", "9999999"}) {
        ASSERT_EQ(setenv("COOPSIM_THREADS", bad, 1), 0);
        try {
            // Thread count 0 resolves the default chain, which must
            // reject the variable instead of silently falling back.
            RunExecutor executor(0);
            FAIL() << "expected a fatal error for COOPSIM_THREADS='"
                   << bad << "'";
        } catch (const FatalError &e) {
            const std::string message = e.what();
            EXPECT_NE(message.find("COOPSIM_THREADS"),
                      std::string::npos)
                << message;
            EXPECT_NE(message.find(bad), std::string::npos) << message;
        }
    }
    ASSERT_EQ(unsetenv("COOPSIM_THREADS"), 0);
    setThrowOnFatal(false);

    // A valid value still resolves.
    ASSERT_EQ(setenv("COOPSIM_THREADS", "3", 1), 0);
    RunExecutor executor(0);
    EXPECT_EQ(executor.threads(), 3u);
    ASSERT_EQ(unsetenv("COOPSIM_THREADS"), 0);
}
