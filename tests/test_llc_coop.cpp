/**
 * @file
 * Tests for the paper's core contribution: RAP/WAP permission
 * registers, takeover bit vectors and the CooperativeLlc scheme with
 * its cooperative-takeover protocol.
 */

#include <gtest/gtest.h>

#include "llc/permissions.hpp"
#include "llc/schemes.hpp"
#include "llc/takeover.hpp"

using namespace coopsim;
using namespace coopsim::llc;

// ---------------------------------------------------------------------------
// PermissionFile

TEST(Permissions, SteadyOwnershipState)
{
    PermissionFile perms(4, 2);
    perms.setOwner(0, 0);
    EXPECT_EQ(perms.state(0), WayState::Steady);
    EXPECT_TRUE(perms.canRead(0, 0));
    EXPECT_TRUE(perms.canWrite(0, 0));
    EXPECT_FALSE(perms.canRead(0, 1));
    EXPECT_EQ(perms.writerOf(0), 0u);
    EXPECT_EQ(perms.donorOf(0), kNoCore);
    perms.checkInvariants();
}

TEST(Permissions, TransferFollowsThePaperFigure3)
{
    // The paper's Figure 3: way 2 moves from core 1 to core 0.
    PermissionFile perms(4, 2);
    perms.setOwner(0, 0);
    perms.setOwner(1, 0);
    perms.setOwner(2, 1);
    perms.setOwner(3, 1);

    perms.beginTransfer(2, 1, 0);
    EXPECT_EQ(perms.state(2), WayState::Transition);
    // Core 0 has full access; core 1 read-only.
    EXPECT_TRUE(perms.canRead(2, 0));
    EXPECT_TRUE(perms.canWrite(2, 0));
    EXPECT_TRUE(perms.canRead(2, 1));
    EXPECT_FALSE(perms.canWrite(2, 1));
    EXPECT_EQ(perms.donorOf(2), 1u);
    EXPECT_EQ(perms.writerOf(2), 0u);
    perms.checkInvariants();

    // After the transition the donor's read permission is withdrawn.
    perms.clearRead(2, 1);
    EXPECT_EQ(perms.state(2), WayState::Steady);
    EXPECT_FALSE(perms.canRead(2, 1));
    perms.checkInvariants();
}

TEST(Permissions, DrainThenPowerOff)
{
    PermissionFile perms(4, 2);
    perms.setOwner(0, 0);
    perms.beginDrain(0, 0);
    EXPECT_EQ(perms.state(0), WayState::Draining);
    EXPECT_TRUE(perms.canRead(0, 0));
    EXPECT_FALSE(perms.canWrite(0, 0));

    perms.clearRead(0, 0);
    perms.powerOff(0);
    EXPECT_EQ(perms.state(0), WayState::Off);
    EXPECT_FALSE(perms.powered(0));
    EXPECT_EQ(perms.poweredCount(), 0u);
    // Ways 1-3 were never powered on, so the whole file reads off.
    EXPECT_EQ(perms.offMask(), 0xFu);
    perms.checkInvariants();
}

TEST(Permissions, MasksReflectRoles)
{
    PermissionFile perms(4, 2);
    perms.setOwner(0, 0);
    perms.setOwner(1, 0);
    perms.setOwner(2, 1);
    perms.setOwner(3, 1);
    perms.beginTransfer(2, 1, 0);

    EXPECT_EQ(perms.readMask(0), 0b0111u);
    EXPECT_EQ(perms.writeMask(0), 0b0111u);
    EXPECT_EQ(perms.readMask(1), 0b1100u);
    EXPECT_EQ(perms.writeMask(1), 0b1000u);
    EXPECT_EQ(perms.donatingMask(1), 0b0100u);
    EXPECT_EQ(perms.receivingMask(0), 0b0100u);
    EXPECT_EQ(perms.donatingMask(0), 0u);
    EXPECT_EQ(perms.receivingMask(1), 0u);
}

// ---------------------------------------------------------------------------
// TakeoverDirectory

TEST(Takeover, FillsAndReports)
{
    TakeoverDirectory dir(2, 4);
    EXPECT_FALSE(dir.full(0));
    EXPECT_TRUE(dir.mark(0, 0));
    EXPECT_FALSE(dir.mark(0, 0)); // already set
    EXPECT_TRUE(dir.mark(0, 1));
    EXPECT_TRUE(dir.mark(0, 2));
    EXPECT_FALSE(dir.full(0));
    EXPECT_TRUE(dir.mark(0, 3));
    EXPECT_TRUE(dir.full(0));
    EXPECT_EQ(dir.popcount(0), 4u);
    // The other core's vector is untouched.
    EXPECT_EQ(dir.popcount(1), 0u);
}

TEST(Takeover, ResetClearsOneCoreOnly)
{
    TakeoverDirectory dir(2, 4);
    for (SetId s = 0; s < 4; ++s) {
        dir.mark(0, s);
        dir.mark(1, s);
    }
    dir.reset(0);
    EXPECT_EQ(dir.popcount(0), 0u);
    EXPECT_TRUE(dir.full(1));
}

TEST(Takeover, StorageBitsMatchTable1)
{
    // Table 1: takeover vectors cost sets x cores bits.
    TakeoverDirectory two(2, 2048);
    EXPECT_EQ(two.storageBits(), 4096u);
    TakeoverDirectory four(4, 2048);
    EXPECT_EQ(four.storageBits(), 8192u);
}

// ---------------------------------------------------------------------------
// CooperativeLlc protocol

namespace
{

/** 8 sets x 4 ways x 64 B shared by 2 cores — small enough to drive
 *  complete takeovers by hand. */
LlcConfig
microConfig()
{
    LlcConfig config;
    config.geometry = {8 * 4 * 64, 4, 64};
    config.num_cores = 2;
    config.hit_latency = 10;
    config.umon_sample_period = 1;
    config.confirm_epochs = 1;
    config.threshold = 0.05;
    config.stale_transition_cycles = 1'000'000'000;
    return config;
}

Addr
makeAddr(CoreId core, Addr tag, SetId set)
{
    return (static_cast<Addr>(core + 1) << 40) | (tag << (6 + 3)) |
           (static_cast<Addr>(set) << 6);
}

/**
 * Drives traffic that makes core 0 want 3 ways (3-deep reuse) and
 * core 1 want 1 (single hot block per set).
 */
void
skewedTraffic(CooperativeLlc &llc, Cycle &now, int rounds = 300)
{
    for (int round = 0; round < rounds; ++round) {
        for (SetId s = 0; s < 8; ++s) {
            for (Addr t = 0; t < 3; ++t) {
                llc.access(0, makeAddr(0, t, s), AccessType::Read, ++now);
            }
            llc.access(1, makeAddr(1, 0, s), AccessType::Write, ++now);
        }
    }
}

} // namespace

TEST(CooperativeLlc, StartsWithFairAlignedSplit)
{
    mem::DramModel dram;
    CooperativeLlc llc(microConfig(), dram);
    EXPECT_EQ(llc.allocation(), (std::vector<std::uint32_t>{2, 2}));
    EXPECT_DOUBLE_EQ(llc.poweredWays(), 4.0);
    llc.checkInvariants();
}

TEST(CooperativeLlc, ProbesOnlyReadableWays)
{
    mem::DramModel dram;
    CooperativeLlc llc(microConfig(), dram);
    const LlcAccess res =
        llc.access(0, makeAddr(0, 0, 0), AccessType::Read, 0);
    EXPECT_EQ(res.ways_probed, 2u);
}

TEST(CooperativeLlc, EpochMovesWaysAndStartsTransition)
{
    mem::DramModel dram;
    CooperativeLlc llc(microConfig(), dram);
    Cycle now = 0;
    skewedTraffic(llc, now);
    llc.epoch(++now);

    // Core 1 must be donating (it holds 2 ways, wants 1); core 0
    // receives or a way drains off. Either way somebody donates.
    bool transitioning = false;
    for (WayId w = 0; w < 4; ++w) {
        const WayState state = llc.permissions().state(w);
        transitioning = transitioning ||
                        state == WayState::Transition ||
                        state == WayState::Draining;
    }
    EXPECT_TRUE(transitioning);
    EXPECT_EQ(llc.repartitions(), 1u);
    llc.checkInvariants();
}

TEST(CooperativeLlc, TakeoverCompletesAfterAllSetsTouched)
{
    mem::DramModel dram;
    CooperativeLlc llc(microConfig(), dram);
    Cycle now = 0;
    skewedTraffic(llc, now);
    llc.epoch(++now);

    // Keep running: both cores touch every set, setting takeover bits;
    // the transition must complete without force.
    skewedTraffic(llc, now, 50);

    for (WayId w = 0; w < 4; ++w) {
        const WayState state = llc.permissions().state(w);
        EXPECT_TRUE(state == WayState::Steady || state == WayState::Off)
            << "way " << w << " still transitioning";
    }
    EXPECT_EQ(llc.forcedCompletions(), 0u);
    EXPECT_GT(llc.takeoverEvents().total(), 0u);
    llc.checkInvariants();
}

TEST(CooperativeLlc, DonorDirtyLinesAreFlushedNotLost)
{
    mem::DramModel dram;
    CooperativeLlc llc(microConfig(), dram);
    Cycle now = 0;
    // Core 1 dirties its lines (writes) while core 0 builds demand.
    skewedTraffic(llc, now);
    const std::uint64_t flushes_before = dram.stats().flushes.value();
    llc.epoch(++now);
    skewedTraffic(llc, now, 50);
    // The donor's dirty blocks in moved ways went back to memory.
    EXPECT_GT(dram.stats().flushes.value(), flushes_before);
    EXPECT_GT(llc.flushedLines(), 0u);
}

TEST(CooperativeLlc, UnallocatedWaysPowerOff)
{
    mem::DramModel dram;
    CooperativeLlc llc(microConfig(), dram);
    Cycle now = 0;
    // Both cores keep a single hot block per set: each wants 1 way.
    for (int round = 0; round < 400; ++round) {
        for (SetId s = 0; s < 8; ++s) {
            llc.access(0, makeAddr(0, 0, s), AccessType::Read, ++now);
            llc.access(1, makeAddr(1, 0, s), AccessType::Read, ++now);
        }
    }
    llc.epoch(++now);
    // Drains need the donors to touch all sets again.
    for (int round = 0; round < 100; ++round) {
        for (SetId s = 0; s < 8; ++s) {
            llc.access(0, makeAddr(0, 0, s), AccessType::Read, ++now);
            llc.access(1, makeAddr(1, 0, s), AccessType::Read, ++now);
        }
    }
    EXPECT_LT(llc.poweredWays(), 4.0);
    EXPECT_EQ(llc.allocation(), (std::vector<std::uint32_t>{1, 1}));
    llc.checkInvariants();
}

TEST(CooperativeLlc, TransferDurationsRecorded)
{
    mem::DramModel dram;
    LlcConfig config = microConfig();
    CooperativeLlc llc(config, dram);
    Cycle now = 0;
    skewedTraffic(llc, now);
    llc.epoch(++now);
    skewedTraffic(llc, now, 50);

    // Whether the move was a transfer or a drain depends on the
    // allocator's exact choice; when a transfer happened its duration
    // must be positive and bounded by the elapsed time.
    for (const double d : llc.transferDurations()) {
        EXPECT_GT(d, 0.0);
        EXPECT_LE(d, static_cast<double>(now));
    }
}

TEST(CooperativeLlc, TakeoverEventsClassifyRoles)
{
    mem::DramModel dram;
    CooperativeLlc llc(microConfig(), dram);
    Cycle now = 0;
    skewedTraffic(llc, now);
    llc.epoch(++now);
    skewedTraffic(llc, now, 50);

    const TakeoverEventStats &ev = llc.takeoverEvents();
    // Bits can only be set once per (donor, set): bounded by sets.
    EXPECT_LE(ev.total(), 2u * 8u);
    EXPECT_GT(ev.total(), 0u);
}

TEST(CooperativeLlc, WriteHitOnDonatedWayReallocates)
{
    mem::DramModel dram;
    LlcConfig config = microConfig();
    config.num_cores = 2;
    CooperativeLlc llc(config, dram);
    Cycle now = 0;

    // Make core 1 a donor with a dirty line, then have it WRITE to the
    // same block: the write may not land in the donated way.
    skewedTraffic(llc, now);
    llc.epoch(++now);

    const cache::WayMask donating = llc.permissions().donatingMask(1);
    if (donating == 0) {
        GTEST_SKIP() << "allocator chose a drain-only plan";
    }
    // Write to its hot block in every set: must succeed and stay
    // consistent (the line moves into a way core 1 can write).
    for (SetId s = 0; s < 8; ++s) {
        llc.access(1, makeAddr(1, 0, s), AccessType::Write, ++now);
    }
    llc.checkInvariants();
    // The block is still readable by core 1 afterwards.
    EXPECT_TRUE(
        llc.access(1, makeAddr(1, 0, 0), AccessType::Read, ++now).hit);
}

TEST(CooperativeLlc, StaleTransitionIsForced)
{
    mem::DramModel dram;
    LlcConfig config = microConfig();
    config.stale_transition_cycles = 10; // force almost immediately
    CooperativeLlc llc(config, dram);
    Cycle now = 0;
    skewedTraffic(llc, now);
    llc.epoch(++now);

    bool had_transition = false;
    for (WayId w = 0; w < 4; ++w) {
        const WayState s = llc.permissions().state(w);
        had_transition = had_transition || s == WayState::Transition ||
                         s == WayState::Draining;
    }
    // Next epoch arrives long after the staleness bound.
    llc.epoch(now + 1'000'000);
    if (had_transition) {
        EXPECT_GT(llc.forcedCompletions(), 0u);
    }
    for (WayId w = 0; w < 4; ++w) {
        const WayState s = llc.permissions().state(w);
        EXPECT_TRUE(s == WayState::Steady || s == WayState::Off);
    }
    llc.checkInvariants();
}

TEST(CooperativeLlc, ConfirmationDampsOneEpochBlips)
{
    mem::DramModel dram;
    LlcConfig config = microConfig();
    config.confirm_epochs = 2;
    CooperativeLlc llc(config, dram);
    Cycle now = 0;
    // Balanced traffic, one epoch of skew, balanced again: with
    // two-epoch confirmation the blip must not repartition.
    auto balanced = [&](int rounds) {
        for (int round = 0; round < rounds; ++round) {
            for (SetId s = 0; s < 8; ++s) {
                llc.access(0, makeAddr(0, round % 2, s),
                           AccessType::Read, ++now);
                llc.access(1, makeAddr(1, round % 2, s),
                           AccessType::Read, ++now);
            }
        }
    };
    balanced(200);
    llc.epoch(++now);
    EXPECT_EQ(llc.repartitions(), 0u);
    skewedTraffic(llc, now, 100); // single skewed epoch
    llc.epoch(++now);
    EXPECT_EQ(llc.repartitions(), 0u); // pending, not adopted
    balanced(300);
    llc.epoch(++now);
    EXPECT_EQ(llc.repartitions(), 0u);
}
