/**
 * @file
 * Unit tests for the common kernel: RNG, statistics, geometry, logging.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/geometry.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

using namespace coopsim;

// ---------------------------------------------------------------------------
// Rng

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        same += a.next() == b.next() ? 1 : 0;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowStaysInRange)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 4096ull}) {
        for (int i = 0; i < 200; ++i) {
            EXPECT_LT(rng.nextBelow(bound), bound);
        }
    }
}

TEST(Rng, NextBelowIsRoughlyUniform)
{
    Rng rng(11);
    constexpr int kBuckets = 8;
    constexpr int kDraws = 80000;
    int counts[kBuckets] = {};
    for (int i = 0; i < kDraws; ++i) {
        ++counts[rng.nextBelow(kBuckets)];
    }
    for (int c : counts) {
        EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
    }
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(3);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.nextDouble();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng rng(5);
    int trues = 0;
    for (int i = 0; i < 20000; ++i) {
        trues += rng.nextBool(0.3) ? 1 : 0;
    }
    EXPECT_NEAR(trues / 20000.0, 0.3, 0.02);
}

TEST(Rng, CdfDrawsMatchDistribution)
{
    Rng rng(9);
    const double cdf[3] = {0.2, 0.5, 1.0};
    int counts[3] = {};
    for (int i = 0; i < 30000; ++i) {
        ++counts[rng.nextFromCdf(cdf, 3)];
    }
    EXPECT_NEAR(counts[0] / 30000.0, 0.2, 0.02);
    EXPECT_NEAR(counts[1] / 30000.0, 0.3, 0.02);
    EXPECT_NEAR(counts[2] / 30000.0, 0.5, 0.02);
}

TEST(Rng, GeometricHasExpectedMean)
{
    Rng rng(13);
    const double p = 0.1;
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        sum += static_cast<double>(rng.nextGeometric(p));
    }
    // Mean of failures-before-success = (1-p)/p = 9.
    EXPECT_NEAR(sum / 20000.0, 9.0, 0.5);
}

TEST(Rng, GeometricWithCertaintyIsZero)
{
    Rng rng(17);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(rng.nextGeometric(1.0), 0u);
    }
}

// ---------------------------------------------------------------------------
// stats

TEST(Stats, CounterAccumulatesAndResets)
{
    stats::Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, AverageIsWeighted)
{
    stats::Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(1.0, 1.0);
    a.sample(3.0, 3.0);
    EXPECT_DOUBLE_EQ(a.mean(), 10.0 / 4.0);
    a.reset();
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Stats, HistogramCountsAndClamps)
{
    stats::Histogram h(4);
    h.sample(0);
    h.sample(3, 2);
    h.sample(99); // clamps into the last bucket
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(3), 3u);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_NEAR(h.mean(), (0.0 + 3.0 * 3) / 4.0, 1e-12);
}

TEST(Stats, TimeSeriesBinsByOffset)
{
    stats::TimeSeries ts(100, 5);
    ts.record(0);
    ts.record(99);
    ts.record(100);
    ts.record(450, 3);
    ts.record(10'000); // clamps into the last bin
    EXPECT_EQ(ts.bin(0), 2u);
    EXPECT_EQ(ts.bin(1), 1u);
    EXPECT_EQ(ts.bin(4), 4u);
    EXPECT_EQ(ts.total(), 7u);
    ts.reset();
    EXPECT_EQ(ts.total(), 0u);
}

TEST(Stats, StatGroupFormatsEntries)
{
    stats::StatGroup g("llc");
    g.add("misses", std::uint64_t{10});
    g.add("ipc", 1.5);
    const std::string out = g.format();
    EXPECT_NE(out.find("llc.misses 10"), std::string::npos);
    EXPECT_NE(out.find("llc.ipc 1.5"), std::string::npos);
}

TEST(Stats, GeomeanMatchesHandComputation)
{
    EXPECT_DOUBLE_EQ(stats::geomean({4.0, 1.0}), 2.0);
    EXPECT_NEAR(stats::geomean({1.0, 2.0, 4.0}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(stats::geomean({}), 0.0);
}

TEST(Stats, MeanMatchesHandComputation)
{
    EXPECT_DOUBLE_EQ(stats::mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(stats::mean({}), 0.0);
}

// ---------------------------------------------------------------------------
// geometry

TEST(Geometry, PowerOfTwoChecks)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(6));
}

TEST(Geometry, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(4096), 12u);
    EXPECT_EQ(floorLog2(4097), 12u);
}

/** Address slicing round-trips for a sweep of geometries. */
class SlicerTest
    : public ::testing::TestWithParam<std::pair<std::uint32_t,
                                                std::uint32_t>>
{
};

TEST_P(SlicerTest, SliceAndComposeRoundTrip)
{
    const auto [sets, block] = GetParam();
    AddrSlicer slicer(sets, block);
    Rng rng(99);
    for (int i = 0; i < 2000; ++i) {
        const Addr addr = rng.next();
        const Addr aligned = slicer.blockAlign(addr);
        const SetId set = slicer.set(addr);
        const Addr tag = slicer.tag(addr);
        EXPECT_LT(set, sets);
        EXPECT_EQ(slicer.compose(tag, set), aligned);
        EXPECT_EQ(slicer.set(aligned), set);
        EXPECT_EQ(slicer.tag(aligned), tag);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SlicerTest,
    ::testing::Values(std::make_pair(64u, 64u), std::make_pair(512u, 64u),
                      std::make_pair(4096u, 64u),
                      std::make_pair(2048u, 128u),
                      std::make_pair(1u, 32u)));

TEST(Geometry, DistinctSetsForSequentialBlocks)
{
    AddrSlicer slicer(256, 64);
    std::set<SetId> seen;
    for (Addr block = 0; block < 256; ++block) {
        seen.insert(slicer.set(block * 64));
    }
    EXPECT_EQ(seen.size(), 256u);
}

// ---------------------------------------------------------------------------
// logging

TEST(Logging, FatalThrowsWhenHooked)
{
    setThrowOnFatal(true);
    EXPECT_THROW(COOPSIM_FATAL("boom ", 42), FatalError);
    setThrowOnFatal(false);
}

TEST(Logging, ConcatFormatsMixedTypes)
{
    EXPECT_EQ(detail::concat("a=", 1, " b=", 2.5), "a=1 b=2.5");
}
