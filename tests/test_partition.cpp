/**
 * @file
 * Unit and property tests for the allocation algorithms: look-ahead
 * (plain and thresholded, Algorithm 1) and the transition planner
 * (Algorithm 2).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "common/rng.hpp"
#include "partition/lookahead.hpp"
#include "partition/transition_plan.hpp"

using namespace coopsim;
using namespace coopsim::partition;

namespace
{

/** Miss curve that saves @p per_way misses for each of the first
 *  @p useful ways, then flattens. */
AppDemand
kneeDemand(double total, double per_way, std::uint32_t useful,
           std::uint32_t ways)
{
    AppDemand d;
    d.accesses = total;
    d.miss_curve.resize(ways + 1);
    double misses = total;
    for (std::uint32_t w = 0; w <= ways; ++w) {
        d.miss_curve[w] = misses;
        if (w < useful) {
            misses -= per_way;
        }
    }
    return d;
}

std::uint32_t
sum(const std::vector<std::uint32_t> &v)
{
    return std::accumulate(v.begin(), v.end(), 0u);
}

} // namespace

// ---------------------------------------------------------------------------
// maxMarginalUtility

TEST(MaxMu, PicksBestAveragePerWay)
{
    // Curve: 100, 90, 50, 49 -> from 0, the best is 2 ways at
    // (100-50)/2 = 25/way (way 1 alone is only 10).
    AppDemand d;
    d.miss_curve = {100, 90, 50, 49};
    std::uint32_t req = 0;
    const double mu = maxMarginalUtility(d.miss_curve, 0, 3, req);
    EXPECT_DOUBLE_EQ(mu, 25.0);
    EXPECT_EQ(req, 2u);
}

TEST(MaxMu, RespectsBalanceBound)
{
    AppDemand d;
    d.miss_curve = {100, 90, 50, 49};
    std::uint32_t req = 0;
    const double mu = maxMarginalUtility(d.miss_curve, 0, 1, req);
    EXPECT_DOUBLE_EQ(mu, 10.0);
    EXPECT_EQ(req, 1u);
}

TEST(MaxMu, ZeroWhenFlat)
{
    AppDemand d;
    d.miss_curve = {10, 10, 10};
    std::uint32_t req = 7;
    EXPECT_DOUBLE_EQ(maxMarginalUtility(d.miss_curve, 0, 2, req), 0.0);
    EXPECT_EQ(req, 0u);
}

// ---------------------------------------------------------------------------
// lookaheadPartition

TEST(Lookahead, ZeroThresholdAllocatesEverythingUseful)
{
    // Two apps both wanting 4 ways on an 8-way cache: UCP splits 4/4.
    std::vector<AppDemand> demands = {kneeDemand(1000, 100, 4, 8),
                                      kneeDemand(1000, 100, 4, 8)};
    LookaheadConfig config;
    config.threshold = 0.0;
    const Allocation alloc = lookaheadPartition(demands, 8, config);
    EXPECT_EQ(alloc.ways[0], 4u);
    EXPECT_EQ(alloc.ways[1], 4u);
    EXPECT_EQ(alloc.unallocated, 0u);
}

TEST(Lookahead, GreedyFavoursTheHungrierApp)
{
    // App 0 saves 200/way for 6 ways; app 1 saves 50/way for 6 ways.
    std::vector<AppDemand> demands = {kneeDemand(2000, 200, 6, 8),
                                      kneeDemand(2000, 50, 6, 8)};
    LookaheadConfig config;
    const Allocation alloc = lookaheadPartition(demands, 8, config);
    EXPECT_EQ(alloc.ways[0], 6u);
    EXPECT_EQ(alloc.ways[1], 2u);
}

TEST(Lookahead, ThresholdLeavesTailWaysUnallocated)
{
    // Per-way utility = 30/1000 = 3% of accesses: below T = 0.05.
    std::vector<AppDemand> demands = {kneeDemand(1000, 30, 6, 8),
                                      kneeDemand(1000, 30, 6, 8)};
    LookaheadConfig config;
    config.threshold = 0.05;
    const Allocation alloc = lookaheadPartition(demands, 8, config);
    EXPECT_EQ(alloc.ways[0], 1u); // the floor only
    EXPECT_EQ(alloc.ways[1], 1u);
    EXPECT_EQ(alloc.unallocated, 6u);
}

TEST(Lookahead, ThresholdPassesHighUtilityWays)
{
    // 80/1000 = 8% per way clears T = 0.05 for 3 extra ways.
    std::vector<AppDemand> demands = {kneeDemand(1000, 80, 4, 8),
                                      kneeDemand(1000, 10, 4, 8)};
    LookaheadConfig config;
    config.threshold = 0.05;
    const Allocation alloc = lookaheadPartition(demands, 8, config);
    EXPECT_EQ(alloc.ways[0], 4u);
    EXPECT_EQ(alloc.ways[1], 1u);
    EXPECT_EQ(alloc.unallocated, 3u);
}

TEST(Lookahead, ThresholdOneAllocatesOnlyTheFloor)
{
    std::vector<AppDemand> demands = {kneeDemand(1000, 400, 2, 8),
                                      kneeDemand(1000, 400, 2, 8)};
    LookaheadConfig config;
    config.threshold = 1.0;
    const Allocation alloc = lookaheadPartition(demands, 8, config);
    EXPECT_EQ(alloc.ways[0], config.min_ways_per_app);
    EXPECT_EQ(alloc.ways[1], config.min_ways_per_app);
    EXPECT_EQ(alloc.unallocated, 6u);
}

TEST(Lookahead, MinWaysZeroAllowsStarvation)
{
    std::vector<AppDemand> demands = {kneeDemand(1000, 0, 0, 8),
                                      kneeDemand(1000, 100, 4, 8)};
    LookaheadConfig config;
    config.threshold = 0.05;
    config.min_ways_per_app = 0;
    const Allocation alloc = lookaheadPartition(demands, 8, config);
    EXPECT_EQ(alloc.ways[0], 0u);
    EXPECT_EQ(alloc.ways[1], 4u);
}

TEST(Lookahead, PaperLiteralModeTerminatesAndAllocates)
{
    std::vector<AppDemand> demands = {kneeDemand(1000, 100, 4, 8),
                                      kneeDemand(1000, 100, 4, 8)};
    LookaheadConfig config;
    config.mode = ThresholdMode::PaperLiteral;
    config.threshold = 0.0;
    const Allocation alloc = lookaheadPartition(demands, 8, config);
    // The literal rule self-unblocks one iteration late but must still
    // hand out every useful way.
    EXPECT_EQ(sum(alloc.ways), 8u);
}

/** Properties over a sweep of thresholds. */
class LookaheadThresholdTest : public ::testing::TestWithParam<double>
{
};

TEST_P(LookaheadThresholdTest, AllocationsAreFeasible)
{
    Rng rng(31);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<AppDemand> demands;
        const auto napps = 2 + rng.nextBelow(3);
        for (std::uint64_t a = 0; a < napps; ++a) {
            // Random monotone curve.
            AppDemand d;
            d.accesses = 1000.0;
            double misses = 1000.0;
            d.miss_curve.push_back(misses);
            for (int w = 0; w < 16; ++w) {
                misses -= static_cast<double>(rng.nextBelow(80));
                misses = std::max(misses, 0.0);
                d.miss_curve.push_back(misses);
            }
            demands.push_back(std::move(d));
        }
        LookaheadConfig config;
        config.threshold = GetParam();
        const Allocation alloc = lookaheadPartition(demands, 16, config);
        EXPECT_EQ(alloc.ways.size(), napps);
        EXPECT_EQ(sum(alloc.ways) + alloc.unallocated, 16u);
        for (const std::uint32_t w : alloc.ways) {
            EXPECT_GE(w, config.min_ways_per_app);
        }
    }
}

TEST_P(LookaheadThresholdTest, HigherThresholdNeverAllocatesMore)
{
    // Uncontended appetites (4+4+4 of 16 ways) so total allocation
    // is monotone in T (under contention it need not be).
    std::vector<AppDemand> demands = {kneeDemand(1000, 120, 4, 16),
                                      kneeDemand(1000, 60, 4, 16),
                                      kneeDemand(1000, 20, 4, 16)};
    LookaheadConfig low;
    low.threshold = 0.0;
    LookaheadConfig high;
    high.threshold = GetParam();
    const Allocation a_low = lookaheadPartition(demands, 16, low);
    const Allocation a_high = lookaheadPartition(demands, 16, high);
    EXPECT_LE(sum(a_high.ways), sum(a_low.ways));
}

INSTANTIATE_TEST_SUITE_P(Thresholds, LookaheadThresholdTest,
                         ::testing::Values(0.0, 0.01, 0.05, 0.1, 0.2));

// ---------------------------------------------------------------------------
// planTransition (Algorithm 2)

namespace
{

/** Validates basic conservation for a plan. */
void
checkPlanWellFormed(const TransitionPlan &plan,
                    const std::vector<std::vector<WayId>> &owned,
                    const std::vector<WayId> &off,
                    const std::vector<std::uint32_t> &target)
{
    // No way appears twice across the whole plan.
    std::set<WayId> used;
    for (const auto &t : plan.transfers) {
        EXPECT_TRUE(used.insert(t.way).second);
    }
    for (const auto &d : plan.drains) {
        EXPECT_TRUE(used.insert(d.way).second);
    }
    for (const auto &p : plan.power_ons) {
        EXPECT_TRUE(used.insert(p.way).second);
    }

    // Transfers and drains come from the donor's pool; power-ons from
    // the off pool.
    auto in = [](const std::vector<WayId> &pool, WayId w) {
        return std::find(pool.begin(), pool.end(), w) != pool.end();
    };
    for (const auto &t : plan.transfers) {
        EXPECT_TRUE(in(owned[t.donor], t.way));
        EXPECT_NE(t.donor, t.recipient);
    }
    for (const auto &d : plan.drains) {
        EXPECT_TRUE(in(owned[d.donor], d.way));
    }
    for (const auto &p : plan.power_ons) {
        EXPECT_TRUE(in(off, p.way));
    }

    // Net effect realises the target.
    std::vector<std::int64_t> counts(owned.size());
    for (std::size_t c = 0; c < owned.size(); ++c) {
        counts[c] = static_cast<std::int64_t>(owned[c].size());
    }
    for (const auto &t : plan.transfers) {
        --counts[t.donor];
        ++counts[t.recipient];
    }
    for (const auto &d : plan.drains) {
        --counts[d.donor];
    }
    for (const auto &p : plan.power_ons) {
        ++counts[p.recipient];
    }
    for (std::size_t c = 0; c < target.size(); ++c) {
        EXPECT_EQ(counts[c], static_cast<std::int64_t>(target[c]));
    }
}

} // namespace

TEST(TransitionPlan, NoChangeYieldsEmptyPlan)
{
    Rng rng(1);
    const std::vector<std::vector<WayId>> owned = {{0, 1}, {2, 3}};
    const TransitionPlan plan =
        planTransition(owned, {}, {2, 2}, rng);
    EXPECT_TRUE(plan.empty());
}

TEST(TransitionPlan, SimpleTransferBetweenCores)
{
    Rng rng(2);
    const std::vector<std::vector<WayId>> owned = {{0, 1, 2}, {3}};
    const TransitionPlan plan =
        planTransition(owned, {}, {2, 2}, rng);
    ASSERT_EQ(plan.transfers.size(), 1u);
    EXPECT_EQ(plan.transfers[0].donor, 0u);
    EXPECT_EQ(plan.transfers[0].recipient, 1u);
    EXPECT_TRUE(plan.drains.empty());
    EXPECT_TRUE(plan.power_ons.empty());
    checkPlanWellFormed(plan, owned, {}, {2, 2});
}

TEST(TransitionPlan, SurplusDrainsToOff)
{
    Rng rng(3);
    const std::vector<std::vector<WayId>> owned = {{0, 1, 2, 3}, {4, 5}};
    const TransitionPlan plan =
        planTransition(owned, {}, {2, 2}, rng);
    EXPECT_TRUE(plan.transfers.empty());
    EXPECT_EQ(plan.drains.size(), 2u);
    checkPlanWellFormed(plan, owned, {}, {2, 2});
}

TEST(TransitionPlan, DemandServedFromOffPool)
{
    Rng rng(4);
    const std::vector<std::vector<WayId>> owned = {{0}, {1}};
    const std::vector<WayId> off = {2, 3};
    const TransitionPlan plan =
        planTransition(owned, off, {2, 2}, rng);
    EXPECT_TRUE(plan.transfers.empty());
    EXPECT_EQ(plan.power_ons.size(), 2u);
    checkPlanWellFormed(plan, owned, off, {2, 2});
}

TEST(TransitionPlan, DonorsPreferredOverOffPool)
{
    Rng rng(5);
    // Core 0 sheds 1, core 1 gains 1: Algorithm 2 pairs them even
    // though an off way exists.
    const std::vector<std::vector<WayId>> owned = {{0, 1, 2}, {3}};
    const std::vector<WayId> off = {4};
    const TransitionPlan plan =
        planTransition(owned, off, {2, 2}, rng);
    EXPECT_EQ(plan.transfers.size(), 1u);
    EXPECT_TRUE(plan.power_ons.empty());
    checkPlanWellFormed(plan, owned, off, {2, 2});
}

TEST(TransitionPlan, RandomisedPlansAreAlwaysWellFormed)
{
    Rng rng(2025);
    for (int trial = 0; trial < 200; ++trial) {
        const std::uint32_t cores =
            2 + static_cast<std::uint32_t>(rng.nextBelow(3));
        const std::uint32_t ways =
            cores + static_cast<std::uint32_t>(rng.nextBelow(13));

        // Random current ownership.
        std::vector<std::vector<WayId>> owned(cores);
        std::vector<WayId> off;
        for (WayId w = 0; w < ways; ++w) {
            const auto pick = rng.nextBelow(cores + 1);
            if (pick == cores) {
                off.push_back(w);
            } else {
                owned[pick].push_back(w);
            }
        }

        // Random feasible target with the same or smaller total.
        std::vector<std::uint32_t> target(cores, 0);
        std::uint32_t budget = ways;
        for (std::uint32_t c = 0; c < cores; ++c) {
            target[c] =
                static_cast<std::uint32_t>(rng.nextBelow(budget / 2 + 1));
            budget -= target[c];
        }

        const TransitionPlan plan =
            planTransition(owned, off, target, rng);
        checkPlanWellFormed(plan, owned, off, target);
    }
}
