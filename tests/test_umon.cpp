/**
 * @file
 * Unit tests for the utility monitors (UMON).
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "umon/umon.hpp"

using namespace coopsim;
using umon::UmonConfig;
using umon::UtilityMonitor;

namespace
{

UmonConfig
fullSampling()
{
    UmonConfig config;
    config.llc_sets = 16;
    config.llc_ways = 4;
    config.block_bytes = 64;
    config.sample_period = 1;
    return config;
}

Addr
makeAddr(Addr tag, SetId set)
{
    return (tag << (6 + 4)) | (static_cast<Addr>(set) << 6);
}

} // namespace

TEST(Umon, FirstTouchesAreMisses)
{
    UtilityMonitor umon(fullSampling());
    for (int i = 0; i < 4; ++i) {
        umon.access(makeAddr(i, 0));
    }
    EXPECT_EQ(umon.missCount(), 4u);
    EXPECT_EQ(umon.accessCount(), 4u);
}

TEST(Umon, RecencyPositionsAreExact)
{
    UtilityMonitor umon(fullSampling());
    // Touch A, B, C then re-touch A: A is at stack position 2.
    umon.access(makeAddr(1, 0));
    umon.access(makeAddr(2, 0));
    umon.access(makeAddr(3, 0));
    umon.access(makeAddr(1, 0));
    const auto &hits = umon.positionHits();
    EXPECT_EQ(hits[2], 1u);
    EXPECT_EQ(hits[0], 0u);
    EXPECT_EQ(hits[1], 0u);

    // Re-touch A immediately: now position 0.
    umon.access(makeAddr(1, 0));
    EXPECT_EQ(umon.positionHits()[0], 1u);
}

TEST(Umon, MissCurveEndpoints)
{
    UtilityMonitor umon(fullSampling());
    umon.access(makeAddr(1, 0));
    umon.access(makeAddr(1, 0)); // position-0 hit
    umon.access(makeAddr(2, 0));

    const std::vector<double> curve = umon.missCurve();
    ASSERT_EQ(curve.size(), 5u);
    // With zero ways every reference misses.
    EXPECT_DOUBLE_EQ(curve[0], 3.0);
    // With full associativity only the true misses remain.
    EXPECT_DOUBLE_EQ(curve[4], 2.0);
}

TEST(Umon, MissCurveIsMonotoneNonIncreasing)
{
    UtilityMonitor umon(fullSampling());
    Rng rng(5);
    for (int i = 0; i < 5000; ++i) {
        umon.access(makeAddr(rng.nextBelow(12), rng.nextBelow(16)));
    }
    const auto curve = umon.missCurve();
    for (std::size_t w = 1; w < curve.size(); ++w) {
        EXPECT_LE(curve[w], curve[w - 1]);
    }
}

TEST(Umon, CurveMatchesIdealLruSimulation)
{
    // Replay a stream through the monitor and through explicit LRU
    // caches of each associativity: the curve must match exactly when
    // sampling is 1:1 (the LRU stack property, Mattson et al.).
    UtilityMonitor umon(fullSampling());
    Rng rng(7);
    std::vector<Addr> stream;
    for (int i = 0; i < 8000; ++i) {
        stream.push_back(makeAddr(rng.nextBelow(10), rng.nextBelow(16)));
    }
    for (const Addr a : stream) {
        umon.access(a);
    }

    for (std::uint32_t ways = 1; ways <= 4; ++ways) {
        // Simple explicit per-set LRU model.
        std::vector<std::vector<Addr>> sets(16);
        std::uint64_t misses = 0;
        for (const Addr a : stream) {
            auto &list = sets[(a >> 6) & 15];
            bool hit = false;
            for (std::size_t i = 0; i < list.size(); ++i) {
                if (list[i] == a) {
                    list.erase(list.begin() +
                               static_cast<std::ptrdiff_t>(i));
                    hit = true;
                    break;
                }
            }
            if (!hit) {
                ++misses;
            }
            list.insert(list.begin(), a);
            if (list.size() > ways) {
                list.pop_back();
            }
        }
        EXPECT_DOUBLE_EQ(umon.missCurve()[ways],
                         static_cast<double>(misses))
            << "ways=" << ways;
    }
}

TEST(Umon, SamplingScalesCurveBack)
{
    UmonConfig config = fullSampling();
    config.llc_sets = 64;
    config.sample_period = 4;
    UtilityMonitor umon(config);

    // Uniform traffic over all sets: the scaled miss estimate should
    // be close to the true count.
    Rng rng(11);
    std::uint64_t true_misses_proxy = 0;
    for (int i = 0; i < 40000; ++i) {
        const Addr a = makeAddr(rng.nextBelow(200), rng.nextBelow(64));
        umon.access(a);
        ++true_misses_proxy;
    }
    // Nearly every access misses (200 tags over 64x4 frames per set).
    const double estimated = umon.missCurve()[4];
    EXPECT_NEAR(estimated, static_cast<double>(true_misses_proxy),
                0.15 * static_cast<double>(true_misses_proxy));
}

TEST(Umon, OnlySampledSetsUpdateAtd)
{
    UmonConfig config = fullSampling();
    config.llc_sets = 16;
    config.sample_period = 4;
    UtilityMonitor umon(config);
    EXPECT_TRUE(umon.sampled(0));
    EXPECT_FALSE(umon.sampled(1));
    EXPECT_TRUE(umon.sampled(4));

    umon.access(makeAddr(1, 1)); // unsampled
    EXPECT_EQ(umon.missCount(), 0u);
    EXPECT_EQ(umon.accessCount(), 1u);
    umon.access(makeAddr(1, 4)); // sampled
    EXPECT_EQ(umon.missCount(), 1u);
}

TEST(Umon, DecayHalvesCounters)
{
    UtilityMonitor umon(fullSampling());
    for (int i = 0; i < 8; ++i) {
        umon.access(makeAddr(1, 0));
    }
    EXPECT_EQ(umon.missCount(), 1u);
    EXPECT_EQ(umon.positionHits()[0], 7u);
    umon.decay();
    EXPECT_EQ(umon.positionHits()[0], 3u);
    EXPECT_EQ(umon.missCount(), 0u);
}

TEST(Umon, ResetClearsEverything)
{
    UtilityMonitor umon(fullSampling());
    umon.access(makeAddr(1, 0));
    umon.access(makeAddr(1, 0));
    umon.reset();
    EXPECT_EQ(umon.missCount(), 0u);
    EXPECT_EQ(umon.accessCount(), 0u);
    // The ATD forgot the block: next access misses again.
    umon.access(makeAddr(1, 0));
    EXPECT_EQ(umon.missCount(), 1u);
}
