/**
 * @file
 * Unit tests for the banked DRAM timing model.
 */

#include <gtest/gtest.h>

#include "mem/dram.hpp"

using namespace coopsim;
using mem::DramConfig;
using mem::DramModel;

namespace
{

DramConfig
smallConfig()
{
    DramConfig config;
    config.banks = 4;
    config.access_latency = 400;
    config.bank_occupancy = 40;
    config.max_outstanding = 8;
    return config;
}

/** Block addresses mapping to bank b: block index ≡ b (mod banks). */
Addr
addrForBank(std::uint32_t bank, std::uint32_t banks, std::uint32_t round)
{
    return static_cast<Addr>(bank + round * banks) * 64;
}

} // namespace

TEST(Dram, UnloadedAccessTakesBaseLatency)
{
    DramModel dram(smallConfig());
    EXPECT_EQ(dram.access(0, AccessType::Read, 100), 100 + 400);
}

TEST(Dram, SameBankBackToBackSerialises)
{
    DramModel dram(smallConfig());
    const Addr a = addrForBank(0, 4, 0);
    const Addr b = addrForBank(0, 4, 1);
    const Cycle first = dram.access(a, AccessType::Read, 0);
    const Cycle second = dram.access(b, AccessType::Read, 0);
    EXPECT_EQ(first, 400u);
    // Second waits for the 40-cycle bank occupancy.
    EXPECT_EQ(second, 40u + 400u);
}

TEST(Dram, DifferentBanksProceedInParallel)
{
    DramModel dram(smallConfig());
    const Cycle first = dram.access(addrForBank(0, 4, 0),
                                    AccessType::Read, 0);
    const Cycle second = dram.access(addrForBank(1, 4, 0),
                                     AccessType::Read, 0);
    EXPECT_EQ(first, second);
}

TEST(Dram, OutstandingWindowBoundsOverlap)
{
    DramConfig config = smallConfig();
    config.max_outstanding = 2;
    DramModel dram(config);
    // Two requests to different banks fill the window.
    const Cycle a = dram.access(addrForBank(0, 4, 0), AccessType::Read, 0);
    dram.access(addrForBank(1, 4, 0), AccessType::Read, 0);
    // The third cannot start before the first completes.
    const Cycle c = dram.access(addrForBank(2, 4, 0), AccessType::Read, 0);
    EXPECT_GE(c, a + 400);
}

TEST(Dram, StatsCountRequestKinds)
{
    DramModel dram(smallConfig());
    dram.access(0, AccessType::Read, 0);
    dram.access(64, AccessType::Write, 0);
    dram.writeback(128, 0);
    dram.flush(192, 0);
    dram.flush(256, 0);
    EXPECT_EQ(dram.stats().reads.value(), 1u);
    EXPECT_EQ(dram.stats().writes.value(), 1u);
    EXPECT_EQ(dram.stats().writebacks.value(), 1u);
    EXPECT_EQ(dram.stats().flushes.value(), 2u);
}

TEST(Dram, ResetStatsClearsCounters)
{
    DramModel dram(smallConfig());
    dram.access(0, AccessType::Read, 0);
    dram.resetStats();
    EXPECT_EQ(dram.stats().reads.value(), 0u);
}

TEST(Dram, QueueDelayRecordedUnderContention)
{
    DramModel dram(smallConfig());
    for (int i = 0; i < 16; ++i) {
        dram.access(addrForBank(0, 4, i), AccessType::Read, 0);
    }
    EXPECT_GT(dram.stats().queue_delay.mean(), 0.0);
}

TEST(Dram, FlushTrafficDelaysDemand)
{
    DramModel dram(smallConfig());
    // Saturate one bank with flushes.
    for (int i = 0; i < 10; ++i) {
        dram.flush(addrForBank(3, 4, i), 0);
    }
    const Cycle demand = dram.access(addrForBank(3, 4, 100),
                                     AccessType::Read, 0);
    EXPECT_GT(demand, 400u);
}

/** Completion times are monotone when issue times are monotone. */
class DramMonotoneTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(DramMonotoneTest, SameBankCompletionsMonotone)
{
    DramConfig config = smallConfig();
    config.banks = GetParam();
    DramModel dram(config);
    Cycle prev = 0;
    Cycle now = 0;
    for (int i = 0; i < 200; ++i) {
        now += static_cast<Cycle>(i % 7) * 10;
        // Always bank 0: completions must be strictly ordered by the
        // bank occupancy chain.
        const Cycle done = dram.access(
            addrForBank(0, config.banks, i), AccessType::Read, now);
        EXPECT_GE(done, prev);
        prev = done;
    }
}

INSTANTIATE_TEST_SUITE_P(BankCounts, DramMonotoneTest,
                         ::testing::Values(1u, 2u, 8u, 16u));
