/**
 * @file
 * Property tests for the slice-selection hash stage
 * (llc/slice_hash.hpp):
 *
 *  - every address maps to exactly one bank, below the bank count,
 *    for both hash kinds and every power-of-two bank count;
 *  - the XOR-fold masks partition the address space evenly: a
 *    chi-square bound over 1M addresses holds for random addresses
 *    and for sequential block strides (where the Mod hash is the
 *    striping reference);
 *  - the hash is a pure function of the address — identical across
 *    instances, repeated calls and unrelated RNG seeds;
 *  - non-power-of-two bank counts are rejected with a descriptive
 *    fatal.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include <coopsim/experiment.hpp>

#include "common/geometry.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "llc/slice_hash.hpp"

using namespace coopsim;
using namespace coopsim::llc;

namespace
{

constexpr std::uint32_t kBlockBytes = 64;
constexpr std::uint64_t kBankSets = 512;

/**
 * Chi-square statistic of @p counts against a uniform expectation.
 * For k banks the statistic has k-1 degrees of freedom; the bound
 * used below (3 * k + 24, see chiBound) sits far beyond the 99.99th
 * percentile for every k in [2, 64] — the constant keeps the small-k
 * bounds meaningful (df=1 has heavy tails) — so a pass means
 * genuinely even spreading while a systematic bias (e.g. a dead
 * address bit or a dead bank) fails by orders of magnitude.
 */
double
chiSquare(const std::vector<std::uint64_t> &counts, std::uint64_t total)
{
    const double expected =
        static_cast<double>(total) / static_cast<double>(counts.size());
    double chi = 0.0;
    for (const std::uint64_t count : counts) {
        const double diff = static_cast<double>(count) - expected;
        chi += diff * diff / expected;
    }
    return chi;
}

/** The pass bound for chiSquare over @p banks banks (see above). */
double
chiBound(std::uint32_t banks)
{
    return 3.0 * banks + 24.0;
}

} // namespace

TEST(SliceHash, EveryAddressMapsToExactlyOneBankBelowTheCount)
{
    Rng rng(20260808);
    for (const std::uint32_t banks : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
        for (const SliceHashKind kind :
             {SliceHashKind::Mod, SliceHashKind::Xor}) {
            const SliceHash hash(kind, banks, kBlockBytes, kBankSets);
            // Random addresses.
            for (int i = 0; i < 10'000; ++i) {
                const Addr addr = rng.next();
                EXPECT_LT(hash.bank(addr), banks);
            }
            // Sequential blocks: the full routing function is total
            // and single-valued by construction (it returns one
            // bank); check the range over a dense stride too.
            for (Addr addr = 0; addr < Addr{10'000} * kBlockBytes;
                 addr += kBlockBytes) {
                EXPECT_LT(hash.bank(addr), banks);
            }
            // All offsets within one block land in that block's bank.
            const Addr block = rng.next() & ~Addr{kBlockBytes - 1};
            const std::uint32_t home = hash.bank(block);
            for (std::uint32_t offset = 0; offset < kBlockBytes;
                 ++offset) {
                EXPECT_EQ(hash.bank(block + offset), home);
            }
        }
    }
}

TEST(SliceHash, XorFoldSpreadsRandomAddressesEvenly)
{
    constexpr std::uint64_t kAddresses = 1'000'000;
    for (const std::uint32_t banks : {2u, 4u, 8u, 16u, 32u, 64u}) {
        const SliceHash hash(SliceHashKind::Xor, banks, kBlockBytes,
                             kBankSets);
        Rng rng(7 + banks);
        std::vector<std::uint64_t> counts(banks, 0);
        for (std::uint64_t i = 0; i < kAddresses; ++i) {
            ++counts[hash.bank(rng.next())];
        }
        EXPECT_LT(chiSquare(counts, kAddresses), chiBound(banks))
            << "banks=" << banks;
    }
}

TEST(SliceHash, XorFoldSpreadsSequentialBlocksEvenly)
{
    // Sequential block addresses are the common best case: the lowest
    // fold positions cycle through every bank. The XOR hash must not
    // lose that striping (each window of `banks` consecutive blocks
    // still touches every bank's fold-bit pattern evenly overall).
    constexpr std::uint64_t kBlocks = 1'000'000;
    for (const std::uint32_t banks : {2u, 4u, 8u, 16u, 32u, 64u}) {
        const SliceHash hash(SliceHashKind::Xor, banks, kBlockBytes,
                             kBankSets);
        std::vector<std::uint64_t> counts(banks, 0);
        for (std::uint64_t i = 0; i < kBlocks; ++i) {
            ++counts[hash.bank(i * kBlockBytes)];
        }
        EXPECT_LT(chiSquare(counts, kBlocks), chiBound(banks))
            << "banks=" << banks;
    }
}

TEST(SliceHash, XorFoldBreaksPowerOfTwoStridesTheModHashAliases)
{
    // A stride of (banks * bank_sets * block) keeps the Mod hash's
    // bank bits constant — every access aliases onto one bank. The
    // XOR fold keeps using the higher address bits and must spread
    // the same stream over all banks.
    constexpr std::uint32_t kBanks = 4;
    constexpr std::uint64_t kAccesses = 100'000;
    const Addr stride = Addr{kBanks} * kBankSets * kBlockBytes;
    const SliceHash mod(SliceHashKind::Mod, kBanks, kBlockBytes,
                        kBankSets);
    const SliceHash fold(SliceHashKind::Xor, kBanks, kBlockBytes,
                         kBankSets);
    std::vector<std::uint64_t> mod_counts(kBanks, 0);
    std::vector<std::uint64_t> fold_counts(kBanks, 0);
    for (std::uint64_t i = 0; i < kAccesses; ++i) {
        mod_counts[mod.bank(i * stride)] += 1;
        fold_counts[fold.bank(i * stride)] += 1;
    }
    EXPECT_EQ(mod_counts[0], kAccesses); // the pathology
    EXPECT_LT(chiSquare(fold_counts, kAccesses), chiBound(kBanks));
}

TEST(SliceHash, HashIsStableAcrossInstancesRunsAndSeeds)
{
    // The bank choice is a pure function of (address, geometry): two
    // instances agree on every address, repeated calls agree with
    // themselves, and no RNG seed is consulted anywhere (the
    // constructor takes none). Also pin a few concrete values so a
    // future "improvement" that silently remaps every address —
    // invalidating stored banked results — fails this test.
    for (const SliceHashKind kind :
         {SliceHashKind::Mod, SliceHashKind::Xor}) {
        const SliceHash a(kind, 8, kBlockBytes, kBankSets);
        const SliceHash b(kind, 8, kBlockBytes, kBankSets);
        Rng rng(1234);
        for (int i = 0; i < 100'000; ++i) {
            const Addr addr = rng.next();
            const std::uint32_t bank = a.bank(addr);
            EXPECT_EQ(bank, b.bank(addr));
            EXPECT_EQ(bank, a.bank(addr));
        }
    }
    const SliceHash fold(SliceHashKind::Xor, 4, 64, 512);
    EXPECT_EQ(fold.bank(0x0000000000000000ull), 0u);
    EXPECT_EQ(fold.bank(0x0000000000000040ull), 1u);
    EXPECT_EQ(fold.bank(0x0000000000000080ull), 2u);
    EXPECT_EQ(fold.bank(0x00000000000000c0ull), 3u);
    const SliceHash mod(SliceHashKind::Mod, 4, 64, 512);
    EXPECT_EQ(mod.bank(0x0000000000000000ull), 0u);
    EXPECT_EQ(mod.bank(Addr{512} * 64), 1u); // first bank bit
}

TEST(SliceHash, FoldMasksCoverEveryBlockAddressBitExactlyOnce)
{
    for (const std::uint32_t banks : {2u, 4u, 8u, 64u}) {
        const SliceHash hash(SliceHashKind::Xor, banks, kBlockBytes,
                             kBankSets);
        const std::uint32_t bank_bits =
            floorLog2(banks);
        std::uint64_t covered = 0;
        for (std::uint32_t bit = 0; bit < bank_bits; ++bit) {
            const std::uint64_t mask = hash.foldMask(bit);
            EXPECT_EQ(covered & mask, 0u); // disjoint
            covered |= mask;
        }
        // Exactly the bits above the block offset.
        EXPECT_EQ(covered, ~Addr{kBlockBytes - 1});
    }
}

TEST(SliceHash, NonPowerOfTwoBankCountsAreFatalWithDiagnostics)
{
    setThrowOnFatal(true);
    for (const std::uint32_t banks : {0u, 3u, 6u, 12u}) {
        try {
            const SliceHash hash(SliceHashKind::Xor, banks, kBlockBytes,
                                 kBankSets);
            FAIL() << "expected a fatal error for banks=" << banks;
        } catch (const FatalError &e) {
            const std::string message = e.what();
            EXPECT_NE(message.find("power of two"), std::string::npos)
                << message;
            EXPECT_NE(message.find(std::to_string(banks)),
                      std::string::npos)
                << message;
        }
    }
    setThrowOnFatal(false);
}
