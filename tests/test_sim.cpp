/**
 * @file
 * Tests for the simulation driver: configurations, metrics, runner.
 */

#include <gtest/gtest.h>

#include "api/cli.hpp"
#include "sim/runner.hpp"

using namespace coopsim;
using namespace coopsim::sim;

TEST(SystemConfigs, TwoCoreMatchesPaperTable2)
{
    const SystemConfig c =
        makeSystemConfig(2, "coop", RunScale::Paper);
    EXPECT_EQ(c.num_cores, 2u);
    EXPECT_EQ(c.llc.geometry.size_bytes, 2ull << 20);
    EXPECT_EQ(c.llc.geometry.ways, 8u);
    EXPECT_EQ(c.llc.geometry.block_bytes, 64u);
    EXPECT_EQ(c.llc.hit_latency, 15u);
    EXPECT_EQ(c.epoch_cycles, 5'000'000u);
    EXPECT_EQ(c.insts_per_app, 1'000'000'000u);
    EXPECT_EQ(c.core.width, 4u);
    EXPECT_EQ(c.core.rob, 128u);
    EXPECT_EQ(c.core.l1.size_bytes, 32ull << 10);
    EXPECT_EQ(c.core.l1.ways, 4u);
    EXPECT_EQ(c.dram.banks, 8u);
    EXPECT_EQ(c.dram.access_latency, 400u);
    EXPECT_EQ(c.dram.max_outstanding, 64u);
}

TEST(SystemConfigs, FourCoreMatchesPaperTable2)
{
    const SystemConfig c =
        makeSystemConfig(4, "ucp", RunScale::Paper);
    EXPECT_EQ(c.num_cores, 4u);
    EXPECT_EQ(c.llc.geometry.size_bytes, 4ull << 20);
    EXPECT_EQ(c.llc.geometry.ways, 16u);
    EXPECT_EQ(c.llc.hit_latency, 20u);
}

TEST(SystemConfigs, ReducedScalesShrinkSetsNotWays)
{
    const SystemConfig paper =
        makeSystemConfig(2, "coop", RunScale::Paper);
    const SystemConfig bench =
        makeSystemConfig(2, "coop", RunScale::Bench);
    EXPECT_EQ(bench.llc.geometry.ways, paper.llc.geometry.ways);
    EXPECT_LT(bench.llc.geometry.size_bytes,
              paper.llc.geometry.size_bytes);
    EXPECT_LT(bench.insts_per_app, paper.insts_per_app);
    EXPECT_LT(bench.epoch_cycles, paper.epoch_cycles);
    // The epoch:instruction ratio stays within the same order.
    const double paper_ratio =
        static_cast<double>(paper.epoch_cycles) /
        static_cast<double>(paper.insts_per_app);
    const double bench_ratio =
        static_cast<double>(bench.epoch_cycles) /
        static_cast<double>(bench.insts_per_app);
    EXPECT_LT(bench_ratio / paper_ratio, 10.0);
    EXPECT_GT(bench_ratio / paper_ratio, 0.1);
}

TEST(Metrics, WeightedSpeedupIsEquationOne)
{
    RunResult shared;
    AppResult a;
    a.ipc = 0.5;
    AppResult b;
    b.ipc = 1.0;
    shared.apps = {a, b};
    EXPECT_DOUBLE_EQ(weightedSpeedup(shared, {1.0, 2.0}), 1.0);
    EXPECT_DOUBLE_EQ(weightedSpeedup(shared, {0.5, 1.0}), 2.0);
}

TEST(Metrics, Normalisation)
{
    EXPECT_DOUBLE_EQ(normalizeTo(3.0, 2.0), 1.5);
    const auto out = normalizeSeries({2.0, 6.0}, {4.0, 3.0});
    EXPECT_DOUBLE_EQ(out[0], 0.5);
    EXPECT_DOUBLE_EQ(out[1], 2.0);
}

TEST(Runner, ParseCliScaleFlags)
{
    const char *full[] = {"bench", "--full"};
    EXPECT_EQ(api::parseCli(2, const_cast<char **>(full),
                            api::kBenchFlags, nullptr)
                  .scale,
              RunScale::Paper);
    const char *test_scale[] = {"bench", "--scale=test"};
    EXPECT_EQ(api::parseCli(2, const_cast<char **>(test_scale),
                            api::kBenchFlags, nullptr)
                  .scale,
              RunScale::Test);
    const char *none[] = {"bench"};
    EXPECT_EQ(api::parseCli(1, const_cast<char **>(none),
                            api::kBenchFlags, nullptr)
                  .scale,
              RunScale::Bench);
}

TEST(Runner, MemoisesIdenticalRuns)
{
    clearRunCache();
    RunOptions options;
    options.scale = RunScale::Test;
    const auto &group = trace::groupByName("G2-10");
    const RunResult &a = runGroup("fairshare", group, options);
    const RunResult &b = runGroup("fairshare", group, options);
    EXPECT_EQ(&a, &b); // same cached object
}

TEST(Runner, DistinctOptionsAreDistinctRuns)
{
    clearRunCache();
    RunOptions a;
    a.scale = RunScale::Test;
    RunOptions b = a;
    b.threshold = 0.2;
    const auto &group = trace::groupByName("G2-10");
    const RunResult &ra = runGroup("coop", group, a);
    const RunResult &rb = runGroup("coop", group, b);
    EXPECT_NE(&ra, &rb);
}

TEST(Runner, SoloIpcIsPositiveAndCached)
{
    RunOptions options;
    options.scale = RunScale::Test;
    const double ipc = soloIpc("h264ref", 2, options);
    EXPECT_GT(ipc, 0.0);
    EXPECT_LE(ipc, 4.0); // bounded by the issue width
    EXPECT_DOUBLE_EQ(soloIpc("h264ref", 2, options), ipc);
}

TEST(System, RunProducesConsistentResults)
{
    SystemConfig config =
        makeSystemConfig(2, "coop", RunScale::Test);
    System system(config, trace::groupProfiles(
                              trace::groupByName("G2-10")));
    const RunResult result = system.run();

    ASSERT_EQ(result.apps.size(), 2u);
    for (const AppResult &app : result.apps) {
        EXPECT_GE(app.insts, config.insts_per_app);
        EXPECT_GT(app.ipc, 0.0);
        EXPECT_LE(app.ipc, 4.0);
        EXPECT_EQ(app.llc_hits + app.llc_misses, app.llc_accesses);
        EXPECT_GT(app.llc_accesses, 0u);
    }
    EXPECT_GT(result.total_cycles, 0u);
    EXPECT_GT(result.dynamic_energy_nj, 0.0);
    EXPECT_GT(result.static_energy_nj, 0.0);
    EXPECT_GT(result.avg_ways_probed, 0.0);
    EXPECT_LE(result.avg_ways_probed, 8.0);
    EXPECT_GT(result.epochs, 0u);
}

TEST(System, DeterministicAcrossIdenticalRuns)
{
    SystemConfig config =
        makeSystemConfig(2, "ucp", RunScale::Test);
    const auto profiles =
        trace::groupProfiles(trace::groupByName("G2-11"));
    System a(config, profiles);
    System b(config, profiles);
    const RunResult ra = a.run();
    const RunResult rb = b.run();
    EXPECT_EQ(ra.total_cycles, rb.total_cycles);
    for (std::size_t i = 0; i < ra.apps.size(); ++i) {
        EXPECT_DOUBLE_EQ(ra.apps[i].ipc, rb.apps[i].ipc);
        EXPECT_EQ(ra.apps[i].llc_misses, rb.apps[i].llc_misses);
    }
    EXPECT_DOUBLE_EQ(ra.dynamic_energy_nj, rb.dynamic_energy_nj);
}

TEST(System, SeedChangesTheRun)
{
    SystemConfig config =
        makeSystemConfig(2, "fairshare", RunScale::Test);
    const auto profiles =
        trace::groupProfiles(trace::groupByName("G2-11"));
    System a(config, profiles);
    config.seed = 777;
    System b(config, profiles);
    EXPECT_NE(a.run().total_cycles, b.run().total_cycles);
}

TEST(System, MismatchedAppCountIsFatal)
{
    setThrowOnFatal(true);
    SystemConfig config =
        makeSystemConfig(2, "fairshare", RunScale::Test);
    EXPECT_THROW(System(config, {trace::specProfile("lbm")}),
                 FatalError);
    setThrowOnFatal(false);
}

TEST(System, FourCoreRunsToCompletion)
{
    SystemConfig config =
        makeSystemConfig(4, "coop", RunScale::Test);
    System system(config, trace::groupProfiles(
                              trace::groupByName("G4-3")));
    const RunResult result = system.run();
    EXPECT_EQ(result.apps.size(), 4u);
    EXPECT_LE(result.avg_ways_probed, 16.0);
}
