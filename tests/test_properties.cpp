/**
 * @file
 * Property-based tests: randomised sweeps (TEST_P) over the system's
 * key invariants (DESIGN.md Section 6).
 */

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "llc/schemes.hpp"
#include "partition/lookahead.hpp"

using namespace coopsim;
using namespace coopsim::llc;

namespace
{

LlcConfig
fuzzConfig(std::uint32_t sets, std::uint32_t ways, std::uint32_t cores)
{
    LlcConfig config;
    config.geometry = {static_cast<std::uint64_t>(sets) * ways * 64,
                       ways, 64};
    config.num_cores = cores;
    config.hit_latency = 12;
    config.umon_sample_period = 1;
    config.confirm_epochs = 1;
    config.stale_transition_cycles = 50'000;
    return config;
}

Addr
fuzzAddr(CoreId core, Addr tag, SetId set, std::uint32_t set_bits)
{
    return (static_cast<Addr>(core + 1) << 40) |
           (tag << (6 + set_bits)) | (static_cast<Addr>(set) << 6);
}

} // namespace

// ---------------------------------------------------------------------------
// Invariant fuzzing: random traffic + random epochs never violates the
// way-alignment and permission invariants.

struct FuzzParams
{
    std::uint64_t seed;
    std::uint32_t cores;
    std::uint32_t ways;
};

class CoopFuzzTest : public ::testing::TestWithParam<FuzzParams>
{
};

TEST_P(CoopFuzzTest, InvariantsSurviveRandomTraffic)
{
    const FuzzParams params = GetParam();
    constexpr std::uint32_t kSets = 16;
    mem::DramModel dram;
    CooperativeLlc llc(fuzzConfig(kSets, params.ways, params.cores),
                       dram);
    Rng rng(params.seed);

    Cycle now = 0;
    for (int step = 0; step < 30000; ++step) {
        const auto core =
            static_cast<CoreId>(rng.nextBelow(params.cores));
        // Skewed footprints: core c reuses (c + 1) tags per set.
        const Addr tag = rng.nextBelow(2 * (core + 1) + 1);
        const auto set = static_cast<SetId>(rng.nextBelow(kSets));
        const AccessType type =
            rng.nextBool(0.3) ? AccessType::Write : AccessType::Read;
        now += 1 + rng.nextBelow(5);
        llc.access(core, fuzzAddr(core, tag, set, 4), type, now);

        if (step % 2500 == 2499) {
            llc.epoch(now);
            llc.checkInvariants();
        }
    }
    llc.checkInvariants();

    // Allocation bookkeeping is conserved.
    const auto alloc = llc.allocation();
    const std::uint32_t total =
        std::accumulate(alloc.begin(), alloc.end(), 0u);
    EXPECT_LE(total, params.ways);
    EXPECT_GE(llc.poweredWays(), static_cast<double>(total));
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, CoopFuzzTest,
    ::testing::Values(FuzzParams{1, 2, 4}, FuzzParams{2, 2, 8},
                      FuzzParams{3, 4, 8}, FuzzParams{4, 4, 16},
                      FuzzParams{5, 3, 6}, FuzzParams{6, 2, 8},
                      FuzzParams{7, 4, 16}, FuzzParams{8, 2, 4}));

// ---------------------------------------------------------------------------
// Probe-set property: dynamic-energy accounting equals the RAP popcount.

TEST(CoopProperties, ProbeCountEqualsReadableWays)
{
    constexpr std::uint32_t kSets = 8;
    mem::DramModel dram;
    CooperativeLlc llc(fuzzConfig(kSets, 8, 2), dram);
    Rng rng(42);
    Cycle now = 0;
    for (int step = 0; step < 5000; ++step) {
        const auto core = static_cast<CoreId>(rng.nextBelow(2));
        const Addr tag = rng.nextBelow(6);
        const auto set = static_cast<SetId>(rng.nextBelow(kSets));
        now += 2;
        // Capture the probe set BEFORE the access: participation can
        // complete a takeover mid-access, shrinking the mask after
        // the tags were already probed.
        const auto expected = static_cast<std::uint32_t>(
            std::popcount(llc.permissions().readMask(core)));
        const LlcAccess res = llc.access(
            core, fuzzAddr(core, tag, set, 3), AccessType::Read, now);
        ASSERT_EQ(res.ways_probed, expected);
        if (step % 1000 == 999) {
            llc.epoch(now);
        }
    }
}

// ---------------------------------------------------------------------------
// Takeover termination: driving every set completes all transitions.

TEST(CoopProperties, TouchingEverySetTerminatesTransitions)
{
    constexpr std::uint32_t kSets = 16;
    mem::DramModel dram;
    LlcConfig config = fuzzConfig(kSets, 8, 2);
    config.stale_transition_cycles = 1'000'000'000; // never force
    CooperativeLlc llc(config, dram);
    Rng rng(77);
    Cycle now = 0;

    // Build skew, decide, then sweep both cores over every set.
    for (int r = 0; r < 600; ++r) {
        for (SetId s = 0; s < kSets; ++s) {
            for (Addr t = 0; t < 4; ++t) {
                llc.access(0, fuzzAddr(0, t, s, 4), AccessType::Write,
                           ++now);
            }
            llc.access(1, fuzzAddr(1, 0, s, 4), AccessType::Read, ++now);
        }
    }
    llc.epoch(++now);
    for (SetId s = 0; s < kSets; ++s) {
        llc.access(0, fuzzAddr(0, 0, s, 4), AccessType::Read, ++now);
        llc.access(1, fuzzAddr(1, 0, s, 4), AccessType::Read, ++now);
    }

    for (WayId w = 0; w < 8; ++w) {
        const WayState state = llc.permissions().state(w);
        EXPECT_TRUE(state == WayState::Steady || state == WayState::Off)
            << "way " << w;
    }
    EXPECT_EQ(llc.forcedCompletions(), 0u);
}

// ---------------------------------------------------------------------------
// Look-ahead properties over random curves and thresholds.

class LookaheadFuzzTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(LookaheadFuzzTest, FeasibleAndThresholdMonotone)
{
    Rng rng(GetParam());
    for (int trial = 0; trial < 60; ++trial) {
        const std::uint32_t ways =
            4 + static_cast<std::uint32_t>(rng.nextBelow(13));
        const std::uint32_t apps =
            2 + static_cast<std::uint32_t>(rng.nextBelow(3));
        if (apps > ways) {
            continue;
        }
        std::vector<partition::AppDemand> demands;
        for (std::uint32_t a = 0; a < apps; ++a) {
            partition::AppDemand d;
            d.accesses = 500.0 + static_cast<double>(rng.nextBelow(2000));
            double misses = d.accesses;
            d.miss_curve.push_back(misses);
            for (std::uint32_t w = 0; w < ways; ++w) {
                misses -= rng.nextDouble() * d.accesses * 0.15;
                misses = std::max(misses, 0.0);
                d.miss_curve.push_back(misses);
            }
            demands.push_back(std::move(d));
        }

        // Total allocation is monotone in T only when the cache is not
        // fully contended: excluding a big app frees balance others can
        // claim. Check monotonicity on the uncontended cases, plain
        // feasibility always.
        partition::LookaheadConfig zero;
        zero.threshold = 0.0;
        const partition::Allocation base =
            partition::lookaheadPartition(demands, ways, zero);
        const bool contended = base.unallocated == 0;

        std::uint32_t prev_total = ways + 1;
        for (const double t : {0.0, 0.02, 0.05, 0.1, 0.3, 1.0}) {
            partition::LookaheadConfig config;
            config.threshold = t;
            const partition::Allocation alloc =
                partition::lookaheadPartition(demands, ways, config);
            const std::uint32_t total = std::accumulate(
                alloc.ways.begin(), alloc.ways.end(), 0u);
            ASSERT_EQ(total + alloc.unallocated, ways);
            for (const std::uint32_t w : alloc.ways) {
                ASSERT_GE(w, 1u);
            }
            if (!contended) {
                ASSERT_LE(total, prev_total);
                prev_total = total;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LookaheadFuzzTest,
                         ::testing::Values(11ull, 22ull, 33ull, 44ull,
                                           55ull));

// ---------------------------------------------------------------------------
// Miss-count monotonicity: more ways never hurt a single app (LRU).

class WaysMonotoneTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(WaysMonotoneTest, FairShareMissesDropWithMoreWays)
{
    // One core under FairShare with varying total ways gets 1..N ways;
    // replaying identical traffic must give monotone misses.
    Rng seed_rng(GetParam());
    constexpr std::uint32_t kSets = 8;

    std::vector<std::pair<Addr, AccessType>> stream;
    Rng rng(seed_rng.next());
    for (int i = 0; i < 15000; ++i) {
        const Addr tag = rng.nextBelow(10);
        const auto set = static_cast<SetId>(rng.nextBelow(kSets));
        stream.emplace_back(fuzzAddr(0, tag, set, 3),
                            rng.nextBool(0.3) ? AccessType::Write
                                              : AccessType::Read);
    }

    std::uint64_t prev_misses = ~0ull;
    for (const std::uint32_t ways : {1u, 2u, 4u, 8u}) {
        mem::DramModel dram;
        LlcConfig config = fuzzConfig(kSets, ways, 1);
        FairShareLlc llc(config, dram);
        Cycle now = 0;
        for (const auto &[addr, type] : stream) {
            llc.access(0, addr, type, ++now);
        }
        EXPECT_LE(llc.missesTotal(), prev_misses) << "ways=" << ways;
        prev_misses = llc.missesTotal();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WaysMonotoneTest,
                         ::testing::Values(101ull, 202ull, 303ull));
