/**
 * @file
 * Tests for the N-core generalisation:
 *
 *  - the tournament-tree min_core() agrees with a linear scan across
 *    1..17 cores under randomised clock sequences (including ties);
 *  - makeSystemConfig() reproduces the paper's Table 2 rows, rounds
 *    odd core counts up to the next topology row, asserts
 *    ways >= cores, and rejects counts beyond the table;
 *  - the ways-vs-cores geometry check fails loudly, naming the
 *    offending configuration;
 *  - the generated G8/G16 heterogeneous mixes are well-formed,
 *    deterministic, registered, and ordered by tier (mem > cpu MPKI);
 *  - the partitioner algorithms: equal-share counts, greedy threshold
 *    and floor behaviour, and look-ahead dispatch equivalence;
 *  - an 8-core spec sweep through the partitioner axis is bit-identical
 *    serial vs parallel, and warm-store vs cold (store round-trip).
 */

#include <gtest/gtest.h>

#include <coopsim/experiment.hpp>

#include "common/rng.hpp"
#include "sim/min_clock_tree.hpp"
#include "sim/runner.hpp"

using namespace coopsim;
using namespace coopsim::sim;

// ---------------------------------------------------------------------------
// Tournament tree

namespace
{

/** The pre-tree semantics: first index holding the minimum clock. */
std::uint32_t
refMinCore(const std::vector<Cycle> &clock)
{
    std::uint32_t best = 0;
    for (std::uint32_t c = 1; c < clock.size(); ++c) {
        if (clock[c] < clock[best]) {
            best = c;
        }
    }
    return best;
}

} // namespace

TEST(MinClockTree, MatchesLinearScanAcrossCoreCounts)
{
    Rng rng(20260730);
    for (std::uint32_t n = 1; n <= 17; ++n) {
        // Small value range so ties are common (the scan breaks them
        // toward the lowest index; the tree must agree exactly).
        std::vector<Cycle> clock(n);
        for (Cycle &c : clock) {
            c = rng.nextBelow(8);
        }
        MinClockTree tree(clock);
        ASSERT_EQ(tree.minIndex(), refMinCore(clock)) << "n=" << n;

        for (int step = 0; step < 2000; ++step) {
            const auto idx =
                static_cast<std::uint32_t>(rng.nextBelow(n));
            // Mostly forward steps (the event-loop pattern), some ties
            // and occasional large jumps.
            const Cycle value = rng.nextBelow(4) == 0
                                    ? rng.nextBelow(8)
                                    : clock[idx] + rng.nextBelow(3);
            clock[idx] = value;
            tree.update(idx, value);
            ASSERT_EQ(tree.minIndex(), refMinCore(clock))
                << "n=" << n << " step=" << step;
            ASSERT_EQ(tree.clock(idx), value);
        }
    }
}

TEST(MinClockTree, MonotoneEventLoopSequence)
{
    // The exact access pattern System::run() generates: always step
    // the minimum, which then advances by a bounded amount.
    Rng rng(99);
    for (const std::uint32_t n : {3u, 5u, 8u, 16u}) {
        std::vector<Cycle> clock(n, 0);
        MinClockTree tree(clock);
        for (int step = 0; step < 5000; ++step) {
            const std::uint32_t c = tree.minIndex();
            ASSERT_EQ(c, refMinCore(clock));
            clock[c] += 1 + rng.nextBelow(20);
            tree.update(c, clock[c]);
        }
    }
}

// ---------------------------------------------------------------------------
// Topology table

TEST(Topology, TwoAndFourCoreRowsMatchPaperTable2)
{
    const SystemConfig two = makeSystemConfig(2, "coop", RunScale::Paper);
    EXPECT_EQ(two.num_cores, 2u);
    EXPECT_EQ(two.llc.geometry.size_bytes, 2ull << 20);
    EXPECT_EQ(two.llc.geometry.ways, 8u);
    EXPECT_EQ(two.llc.hit_latency, 15u);

    const SystemConfig four = makeSystemConfig(4, "ucp", RunScale::Paper);
    EXPECT_EQ(four.num_cores, 4u);
    EXPECT_EQ(four.llc.geometry.size_bytes, 4ull << 20);
    EXPECT_EQ(four.llc.geometry.ways, 16u);
    EXPECT_EQ(four.llc.hit_latency, 20u);
}

TEST(Topology, LargeRowsKeepPerCoreScalingRule)
{
    for (const std::uint32_t n : {8u, 16u}) {
        const SystemConfig c =
            makeSystemConfig(n, "coop", RunScale::Paper);
        EXPECT_EQ(c.num_cores, n);
        // 1 MB and 4 ways of LLC per core, as in the paper's rows.
        EXPECT_EQ(c.llc.geometry.size_bytes, std::uint64_t{n} << 20);
        EXPECT_EQ(c.llc.geometry.ways, 4u * n);
        EXPECT_GE(c.llc.geometry.ways, n);
    }
    // Latency grows monotonically with the topology.
    EXPECT_LT(makeSystemConfig(4, "coop", RunScale::Paper).llc.hit_latency,
              makeSystemConfig(8, "coop", RunScale::Paper).llc.hit_latency);
    EXPECT_LT(makeSystemConfig(8, "coop", RunScale::Paper).llc.hit_latency,
              makeSystemConfig(16, "coop", RunScale::Paper).llc.hit_latency);
}

TEST(Topology, OddCoreCountsRoundUpToTheNextRow)
{
    EXPECT_EQ(makeSystemConfig(1, "coop", RunScale::Test)
                  .llc.geometry.ways,
              8u);
    EXPECT_EQ(makeSystemConfig(3, "coop", RunScale::Test)
                  .llc.geometry.ways,
              16u);
    EXPECT_EQ(makeSystemConfig(9, "coop", RunScale::Test)
                  .llc.geometry.ways,
              64u);
}

TEST(Topology, OutOfTableCoreCountsAreFatal)
{
    setThrowOnFatal(true);
    EXPECT_THROW(makeSystemConfig(0, "coop", RunScale::Test),
                 FatalError);
    EXPECT_THROW(makeSystemConfig(65, "coop", RunScale::Test),
                 FatalError);
    setThrowOnFatal(false);
}

TEST(Topology, FewerWaysThanCoresIsFatalWithDiagnostics)
{
    setThrowOnFatal(true);
    llc::LlcConfig config;
    config.geometry = {512ull * 4 * 64, 4, 64}; // 4 ways
    config.num_cores = 8;
    mem::DramModel dram{mem::DramConfig{}};
    try {
        api::makeLlcByName("unmanaged", config, dram);
        FAIL() << "expected a fatal error";
    } catch (const FatalError &e) {
        const std::string message = e.what();
        EXPECT_NE(message.find("4-way"), std::string::npos) << message;
        EXPECT_NE(message.find("8 cores"), std::string::npos) << message;
    }
    setThrowOnFatal(false);
}

// ---------------------------------------------------------------------------
// Generated heterogeneous mixes

TEST(Workloads, GeneratedMixesAreWellFormedAndRegistered)
{
    for (const auto &[groups, size] :
         {std::pair<const std::vector<trace::WorkloadGroup> &,
                    std::uint32_t>{trace::eightCoreGroups(), 8u},
          {trace::sixteenCoreGroups(), 16u}}) {
        ASSERT_EQ(groups.size(), 6u);
        for (const trace::WorkloadGroup &group : groups) {
            EXPECT_EQ(group.apps.size(), size) << group.name;
            for (const std::string &app : group.apps) {
                trace::specProfile(app); // fatal on unknown names
            }
            // Registered and reachable by name.
            EXPECT_EQ(api::workloadRegistry().get(group.name).name,
                      group.name);
            EXPECT_EQ(trace::groupByName(group.name).name, group.name);
        }
    }
    EXPECT_EQ(api::resolveWorkloads("G8-*").size(), 6u);
    EXPECT_EQ(api::resolveWorkloads("G16-*").size(), 6u);
    // The paper's globs must not pick up the generated groups.
    EXPECT_EQ(api::resolveWorkloads("G2-*").size(), 14u);
    EXPECT_EQ(api::resolveWorkloads("G4-*").size(), 14u);
}

TEST(Workloads, MixTiersAreOrderedByMemoryIntensity)
{
    auto avg_mpki = [](const trace::WorkloadGroup &group) {
        double sum = 0.0;
        for (const std::string &app : group.apps) {
            sum += trace::specProfile(app).table3_mpki;
        }
        return sum / static_cast<double>(group.apps.size());
    };
    for (const char *cores : {"G8", "G16"}) {
        const std::string prefix = cores;
        const double mem =
            avg_mpki(trace::groupByName(prefix + "-mem1"));
        const double mix =
            avg_mpki(trace::groupByName(prefix + "-mix1"));
        const double cpu =
            avg_mpki(trace::groupByName(prefix + "-cpu1"));
        EXPECT_GT(mem, mix);
        EXPECT_GT(mix, cpu);
    }
}

TEST(Workloads, MixGenerationIsDeterministic)
{
    const auto a = trace::heterogeneousMixes(8);
    const auto b = trace::heterogeneousMixes(8);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].apps, b[i].apps);
    }
    // Variants are distinct mixes, not copies.
    EXPECT_NE(a[0].apps, a[1].apps);
}

// ---------------------------------------------------------------------------
// Partitioner algorithms

namespace
{

partition::AppDemand
demandOf(std::vector<double> curve, double accesses)
{
    partition::AppDemand d;
    d.miss_curve = std::move(curve);
    d.accesses = accesses;
    return d;
}

} // namespace

TEST(Partitioner, EqualShareSplitsWithRemainderToLowestIndices)
{
    const partition::LookaheadConfig config;
    const partition::Allocation even =
        partition::equalSharePartition(8, 16, config);
    EXPECT_EQ(even.ways,
              std::vector<std::uint32_t>(8, 2u));
    EXPECT_EQ(even.unallocated, 0u);

    const partition::Allocation odd =
        partition::equalSharePartition(3, 8, config);
    EXPECT_EQ(odd.ways, (std::vector<std::uint32_t>{3, 3, 2}));
    EXPECT_EQ(odd.unallocated, 0u);

    // The even split clears any satisfiable floor by construction.
    partition::LookaheadConfig floor2;
    floor2.min_ways_per_app = 2;
    const partition::Allocation floored =
        partition::equalSharePartition(3, 8, floor2);
    EXPECT_EQ(floored.ways, (std::vector<std::uint32_t>{3, 3, 2}));
}

TEST(Partitioner, GreedyGrantsByMarginalUtilityAndGatesTheRest)
{
    // App 0 saves 100 misses/way over 4 ways; app 1 saves 10 misses on
    // its second way only. 1000 accesses each; threshold 0.05 demands
    // >= 50 misses/way, so app 1 never qualifies and the cache keeps
    // unallocated (gateable) ways.
    const std::vector<partition::AppDemand> demands = {
        demandOf({500, 400, 300, 200, 100, 100, 100, 100, 100}, 1000),
        demandOf({500, 500, 490, 490, 490, 490, 490, 490, 490}, 1000),
    };
    partition::LookaheadConfig config;
    config.threshold = 0.05;
    const partition::Allocation alloc =
        partition::greedyUtilityPartition(demands, 8, config);
    EXPECT_EQ(alloc.ways[0], 4u); // 1 floor + 3 granted (curve knee)
    EXPECT_EQ(alloc.ways[1], 1u); // floor only
    EXPECT_EQ(alloc.unallocated, 8u - alloc.ways[0] - alloc.ways[1]);

    // Threshold 0 allocates every way that saves anything.
    config.threshold = 0.0;
    const partition::Allocation eager =
        partition::greedyUtilityPartition(demands, 8, config);
    EXPECT_EQ(eager.ways[0], 4u);
    EXPECT_EQ(eager.ways[1], 2u); // the 10-miss second way now passes
    EXPECT_EQ(eager.unallocated, 2u);

    // PaperLiteral mode terminates (it self-unblocks, like the
    // look-ahead implementation) and, being relative rather than
    // access-normalised, grants the below-ratio second way too.
    config.threshold = 0.05;
    config.mode = partition::ThresholdMode::PaperLiteral;
    const partition::Allocation literal =
        partition::greedyUtilityPartition(demands, 8, config);
    EXPECT_EQ(literal.ways[0] + literal.ways[1] + literal.unallocated,
              8u);
    EXPECT_EQ(literal.ways[1], 2u);
}

TEST(Partitioner, DispatchRunsTheSelectedAlgorithm)
{
    const std::vector<partition::AppDemand> demands = {
        demandOf({300, 200, 120, 60, 30, 20, 15, 12, 10}, 800),
        demandOf({400, 350, 310, 280, 255, 235, 220, 210, 205}, 900),
    };
    partition::LookaheadConfig config;
    config.threshold = 0.05;

    const partition::Allocation lookahead = partition::decidePartition(
        partition::Partitioner::Lookahead, demands, 8, config);
    const partition::Allocation direct =
        partition::lookaheadPartition(demands, 8, config);
    EXPECT_EQ(lookahead.ways, direct.ways);
    EXPECT_EQ(lookahead.unallocated, direct.unallocated);

    const partition::Allocation equal = partition::decidePartition(
        partition::Partitioner::EqualShare, demands, 8, config);
    EXPECT_EQ(equal.ways, (std::vector<std::uint32_t>{4, 4}));

    const partition::Allocation greedy = partition::decidePartition(
        partition::Partitioner::GreedyUtility, demands, 8, config);
    const partition::Allocation greedy_direct =
        partition::greedyUtilityPartition(demands, 8, config);
    EXPECT_EQ(greedy.ways, greedy_direct.ways);
}

TEST(Partitioner, RegistryNamesRoundTrip)
{
    EXPECT_EQ(api::partitionerRegistry().get("lookahead"),
              partition::Partitioner::Lookahead);
    EXPECT_EQ(api::partitionerRegistry().get("equalshare"),
              partition::Partitioner::EqualShare);
    EXPECT_EQ(api::partitionerRegistry().get("greedy"),
              partition::Partitioner::GreedyUtility);
    EXPECT_EQ(api::partitionerKeyOf(partition::Partitioner::EqualShare),
              "equalshare");
    setThrowOnFatal(true);
    EXPECT_THROW(api::partitionerRegistry().get("roundrobin"),
                 FatalError);
    setThrowOnFatal(false);
}

// ---------------------------------------------------------------------------
// Spec axes

TEST(SpecAxes, CoresAndPartitionersRoundTripAndExpand)
{
    api::ExperimentSpec spec;
    spec.name = "axes";
    spec.layout = "none";
    spec.with_solo = false;
    spec.schemes = {"coop"};
    spec.groups = {"G2-10", "G8-cpu1"};
    spec.cores = {8};
    spec.partitioners = {"lookahead", "equalshare"};
    spec.scale = "test";
    EXPECT_EQ(api::parseSpec(api::formatSpec(spec)), spec);

    // The cores filter drops G2-10; the partitioner axis doubles the
    // remaining group's keys.
    const std::vector<RunKey> keys = api::expandSpec(spec);
    ASSERT_EQ(keys.size(), 2u);
    for (const RunKey &key : keys) {
        EXPECT_EQ(key.name, "G8-cpu1");
        EXPECT_EQ(key.num_cores, 8u);
    }
    EXPECT_EQ(keys[0].partitioner, partition::Partitioner::Lookahead);
    EXPECT_EQ(keys[1].partitioner, partition::Partitioner::EqualShare);

    // RunKey text encoding carries the partitioner.
    const std::string line = api::formatRunKey(keys[1]);
    EXPECT_NE(line.find("partitioner=equalshare"), std::string::npos)
        << line;
    EXPECT_EQ(api::parseRunKey(line), keys[1]);
}

TEST(SpecAxes, ValidationCatchesBadCoresAndPartitioners)
{
    setThrowOnFatal(true);
    {
        api::ExperimentSpec spec;
        spec.layout = "none";
        spec.groups = {"G2-10"};
        spec.cores = {8}; // filters out the only group
        EXPECT_THROW(api::validateSpec(spec), FatalError);
    }
    {
        api::ExperimentSpec spec;
        spec.layout = "none";
        spec.groups = {"G2-10"};
        spec.partitioners = {"roundrobin"};
        EXPECT_THROW(api::validateSpec(spec), FatalError);
    }
    {
        api::ExperimentSpec spec;
        spec.layout = "partitioners";
        spec.groups = {"G2-10"};
        spec.partitioners = {"lookahead"};
        spec.baseline = "equalshare"; // not on the axis
        EXPECT_THROW(api::validateSpec(spec), FatalError);
    }
    setThrowOnFatal(false);
}

TEST(SpecAxes, SoloKeysNormaliseThePartitioner)
{
    RunOptions a;
    a.scale = RunScale::Test;
    RunOptions b = a;
    b.partitioner = partition::Partitioner::EqualShare;
    // A partitioner sweep must reuse one solo run per app.
    EXPECT_EQ(soloKey("h264ref", 8, a), soloKey("h264ref", 8, b));
    EXPECT_NE(groupKey("coop", trace::groupByName("G8-cpu1"), a),
              groupKey("coop", trace::groupByName("G8-cpu1"), b));
}

// ---------------------------------------------------------------------------
// 8-core determinism: serial vs parallel, warm store vs cold

namespace
{

/** The 8-core partitioner sweep the determinism checks run. */
std::vector<RunKey>
eightCoreSweep()
{
    api::ExperimentSpec spec;
    spec.name = "det8";
    spec.layout = "none";
    spec.with_solo = false;
    spec.schemes = {"coop", "ucp"};
    spec.groups = {"G8-cpu1"};
    spec.partitioners = {"lookahead", "equalshare", "greedy"};
    spec.scale = "test";
    return api::expandSpec(spec);
}

} // namespace

TEST(EightCore, SpecSweepIsBitIdenticalSerialVsParallel)
{
    const std::vector<RunKey> keys = eightCoreSweep();
    ASSERT_EQ(keys.size(), 6u);

    RunExecutor serial(1);
    std::vector<std::string> serial_lines;
    for (const RunKey &key : keys) {
        serial_lines.push_back(
            store::formatResult(serial.run(key)));
    }

    RunExecutor parallel(4);
    parallel.prefetch(keys);
    for (std::size_t i = 0; i < keys.size(); ++i) {
        // The store line encodes every RunResult field bit-exactly, so
        // equal lines mean bit-identical results.
        EXPECT_EQ(serial_lines[i],
                  store::formatResult(parallel.run(keys[i])));
    }
}

TEST(EightCore, WarmStoreRerunIsBitIdenticalAndRunsNothing)
{
    const std::vector<RunKey> keys = eightCoreSweep();

    // Cold pass records into the store.
    auto result_store = std::make_shared<store::ResultStore>();
    std::vector<std::string> cold_lines;
    {
        RunExecutor cold(2);
        cold.attachStore(result_store);
        cold.prefetch(keys);
        for (const RunKey &key : keys) {
            cold_lines.push_back(store::formatResult(cold.run(key)));
        }
        EXPECT_EQ(cold.stats().simulations, keys.size());
    }
    EXPECT_EQ(result_store->size(), keys.size());

    // Warm pass: served entirely from the store, bit-identically.
    RunExecutor warm(2);
    warm.attachStore(result_store);
    warm.prefetch(keys);
    for (std::size_t i = 0; i < keys.size(); ++i) {
        EXPECT_EQ(cold_lines[i],
                  store::formatResult(warm.run(keys[i])));
    }
    EXPECT_EQ(warm.stats().simulations, 0u);
    EXPECT_EQ(warm.stats().store_hits, keys.size());
    EXPECT_EQ(warm.activeWorkers(), 0u);
}
