/**
 * @file
 * Tests for the process-wide op-stream memo (sim::StreamCache):
 *
 *  - memoized runs are bit-identical (store::formatResult) to
 *    --no-stream-memo runs over a {group} x {scheme} x {partitioner}
 *    x {sampling} matrix that spans 2..32 cores, the banked 32-core
 *    topology row and set+op sampling;
 *  - a fresh cache generates exactly one stream per distinct
 *    (workload, slot, seed, scale, num_cores) key, replays the rest,
 *    and serves a solo run from its group's slot-0 stream;
 *  - a tiny budget forces whole-stream LRU eviction without changing
 *    any result;
 *  - serial executeRun() and a multi-threaded RunExecutor produce
 *    bit-identical results through the shared memo;
 *  - --trace-cache spill/warm-start round-trips: a second "process"
 *    (cleared cache) loads every stream from disk, generates none,
 *    and reproduces the results bit-identically.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "sim/executor.hpp"
#include "sim/stream_cache.hpp"
#include "store/result_store.hpp"
#include "trace/workloads.hpp"

using namespace coopsim;
using sim::RunKey;
using sim::StreamCache;

namespace
{

/** Restores the process-wide cache to pristine default state on both
 *  entry and exit, so tests neither see nor leak memo state. */
class CacheGuard
{
  public:
    CacheGuard()
    {
        reset();
    }
    ~CacheGuard()
    {
        reset();
    }

  private:
    static void
    reset()
    {
        StreamCache::instance().configure(StreamCache::Config{});
        StreamCache::instance().clear();
        StreamCache::instance().resetStats();
    }
};

RunKey
groupKey(const std::string &name, const std::string &scheme,
         partition::Partitioner partitioner, sampling::Mode sampling)
{
    RunKey key;
    key.kind = RunKey::Kind::Group;
    key.scheme = scheme;
    key.name = name;
    key.num_cores =
        static_cast<std::uint32_t>(trace::groupByName(name).apps.size());
    key.scale = sim::RunScale::Test;
    key.partitioner = partitioner;
    key.sampling = sampling;
    return key;
}

RunKey
soloKey(const std::string &app, std::uint32_t num_cores)
{
    RunKey key;
    key.kind = RunKey::Kind::Solo;
    key.scheme = "unmanaged";
    key.name = app;
    key.num_cores = num_cores;
    key.scale = sim::RunScale::Test;
    return key;
}

std::string
runFormatted(const RunKey &key)
{
    return store::formatResult(sim::executeRun(key));
}

} // namespace

// ---------------------------------------------------------------------------
// Differential bit-identity: memoized vs --no-stream-memo

TEST(StreamMemo, MemoizedRunsAreBitIdenticalAcrossMatrix)
{
    CacheGuard guard;
    const std::vector<std::string> groups = {"G2-1", "G4-1", "G8-mem1",
                                             "G32-mix1"};
    const std::vector<std::string> schemes = {"coop", "ucp"};
    const std::vector<partition::Partitioner> partitioners = {
        partition::Partitioner::Lookahead,
        partition::Partitioner::GreedyUtility};
    const std::vector<sampling::Mode> samplings = {sampling::Mode::Exact,
                                                   sampling::Mode::SetOp};

    for (const std::string &group : groups) {
        for (const std::string &scheme : schemes) {
            for (const auto partitioner : partitioners) {
                for (const auto sampling : samplings) {
                    const RunKey key =
                        groupKey(group, scheme, partitioner, sampling);

                    StreamCache::instance().configure({false, 0, ""});
                    const std::string plain = runFormatted(key);

                    StreamCache::instance().configure({true, 0, ""});
                    const std::string memoized = runFormatted(key);
                    // And again, replaying the now-warm streams.
                    const std::string replayed = runFormatted(key);

                    EXPECT_EQ(plain, memoized)
                        << group << " " << scheme << " (cold memo)";
                    EXPECT_EQ(plain, replayed)
                        << group << " " << scheme << " (warm memo)";
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Stream accounting: generated == distinct streams, solos share

TEST(StreamMemo, GeneratesOncePerDistinctStreamAndSharesWithSolos)
{
    CacheGuard guard;
    StreamCache &cache = StreamCache::instance();

    // 4 runs of G2-1 (2 streams) + 4 runs of G4-1 (4 streams), all
    // sharing one seed/scale: 6 distinct streams, everything else a
    // replay.
    std::vector<RunKey> keys;
    for (const char *group : {"G2-1", "G4-1"}) {
        for (const char *scheme : {"coop", "ucp"}) {
            for (const auto partitioner :
                 {partition::Partitioner::Lookahead,
                  partition::Partitioner::GreedyUtility}) {
                keys.push_back(groupKey(group, scheme, partitioner,
                                        sampling::Mode::Exact));
            }
        }
    }
    for (const RunKey &key : keys) {
        sim::executeRun(key);
    }

    StreamCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.streams_generated, 6u);
    // 4 runs x 2 cores + 4 runs x 4 cores = 24 stream openings.
    EXPECT_EQ(stats.streams_generated + stats.streams_replayed, 24u);
    EXPECT_EQ(stats.streams_evicted, 0u);
    EXPECT_EQ(cache.residentStreams(), 6u);

    // A solo on the 2-core topology replays its group's slot-0
    // stream: same app, slot 0, seed, scale and topology row mean the
    // same op sequence, so nothing new is generated.
    const std::string app = trace::groupByName("G2-1").apps[0];
    sim::executeRun(soloKey(app, 2));
    stats = cache.stats();
    EXPECT_EQ(stats.streams_generated, 6u);
    EXPECT_EQ(cache.residentStreams(), 6u);
}

// ---------------------------------------------------------------------------
// Eviction under a tiny budget

TEST(StreamMemo, TinyBudgetEvictsWithoutChangingResults)
{
    CacheGuard guard;
    StreamCache &cache = StreamCache::instance();

    const std::vector<RunKey> keys = {
        groupKey("G4-1", "coop", partition::Partitioner::Lookahead,
                 sampling::Mode::Exact),
        groupKey("G2-1", "ucp", partition::Partitioner::Lookahead,
                 sampling::Mode::Exact),
    };

    cache.configure({false, 0, ""});
    std::vector<std::string> plain;
    for (const RunKey &key : keys) {
        plain.push_back(runFormatted(key));
    }

    // 64 KiB holds no single test-scale stream (one lazily generated
    // segment is ~200 KiB), so every new stream evicts an older one;
    // streams already handed to a running System keep replaying
    // through their shared_ptr regardless.
    cache.configure({true, 64 * 1024, ""});
    for (std::size_t i = 0; i < keys.size(); ++i) {
        EXPECT_EQ(plain[i], runFormatted(keys[i])) << keys[i].name;
    }

    const StreamCache::Stats stats = cache.stats();
    EXPECT_GT(stats.streams_evicted, 0u);
    // Eviction never touches the stream currently being extended, so
    // up to one stream may sit over budget once the last run ends —
    // but the other five must have been dropped along the way.
    EXPECT_LT(cache.residentStreams(), 6u);
}

// ---------------------------------------------------------------------------
// Serial vs parallel determinism through the shared memo

TEST(StreamMemo, SerialAndParallelExecutionMatch)
{
    CacheGuard guard;

    std::vector<RunKey> keys;
    for (const char *scheme : {"coop", "ucp", "unmanaged"}) {
        for (const auto sampling :
             {sampling::Mode::Exact, sampling::Mode::SetOp}) {
            keys.push_back(groupKey("G4-1", scheme,
                                    partition::Partitioner::Lookahead,
                                    sampling));
        }
    }

    std::vector<std::string> serial;
    for (const RunKey &key : keys) {
        serial.push_back(runFormatted(key));
    }

    // Fresh memo for the parallel pass: the 4 workers race to create
    // the shared entries (future-dedup), then replay concurrently.
    StreamCache::instance().clear();
    sim::RunExecutor executor(4);
    executor.prefetch(keys);
    for (std::size_t i = 0; i < keys.size(); ++i) {
        EXPECT_EQ(serial[i], store::formatResult(executor.run(keys[i])))
            << keys[i].scheme;
    }
}

// ---------------------------------------------------------------------------
// --trace-cache spill / warm-start round trip

TEST(StreamMemo, TraceCacheSpillsAndWarmStarts)
{
    CacheGuard guard;
    StreamCache &cache = StreamCache::instance();
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "coopsim_memo_spill_test";
    std::filesystem::remove_all(dir);

    const std::vector<RunKey> keys = {
        groupKey("G2-1", "coop", partition::Partitioner::Lookahead,
                 sampling::Mode::Exact),
        groupKey("G2-1", "ucp", partition::Partitioner::Lookahead,
                 sampling::Mode::Exact),
    };

    // "Process" 1: generate, then spill at (simulated) exit.
    cache.configure({true, 0, dir.string()});
    std::vector<std::string> first;
    for (const RunKey &key : keys) {
        first.push_back(runFormatted(key));
    }
    StreamCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.streams_generated, 2u);
    cache.spillNow();
    EXPECT_EQ(std::distance(std::filesystem::directory_iterator(dir),
                            std::filesystem::directory_iterator()),
              2);

    // "Process" 2: a cold cache warm-starts every stream from disk
    // and generates nothing.
    cache.clear();
    cache.resetStats();
    for (std::size_t i = 0; i < keys.size(); ++i) {
        EXPECT_EQ(first[i], runFormatted(keys[i])) << keys[i].scheme;
    }
    stats = cache.stats();
    EXPECT_EQ(stats.streams_generated, 0u);
    EXPECT_EQ(stats.streams_loaded, 2u);

    std::filesystem::remove_all(dir);
}
