/**
 * @file
 * Tests for the disk-backed result store (src/store/):
 *
 *  - the RunResult line encoding round-trips every field bit-exactly
 *    (including non-representable decimals) and strictly rejects
 *    corrupt, reordered, truncated and trailing content;
 *  - ResultStore save -> load identity through the atomic file
 *    format, last-writer-wins merge semantics, corrupt-line skipping
 *    on load, and lexical-order directory folding;
 *  - shardKeys(): the round-robin shards partition the expanded
 *    sweep (disjoint, union == full key list);
 *  - the executor store hook: stored keys are served without
 *    starting the pool or running a simulation (run-count stats),
 *    and completed simulations are recorded back into the store.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <vector>

#include <coopsim/experiment.hpp>

#include "sim/runner.hpp"

using namespace coopsim;
using namespace coopsim::store;

namespace fs = std::filesystem;

namespace
{

/** A RunResult exercising every field, including doubles with no
 *  exact decimal representation. */
sim::RunResult
sampleResult(double salt = 0.0)
{
    sim::RunResult r;
    sim::AppResult a;
    a.name = "h264ref";
    a.ipc = 1.0 / 3.0 + salt;
    a.insts = 123456789ull;
    a.cycles = 987654321ull;
    a.llc_accesses = 4242;
    a.llc_hits = 4000;
    a.llc_misses = 242;
    a.mpki = 0.1;
    sim::AppResult b;
    b.name = "mcf";
    b.ipc = 0.7071067811865476;
    b.insts = 1;
    b.cycles = 18446744073709551615ull;
    b.llc_accesses = 0;
    b.llc_hits = 0;
    b.llc_misses = 0;
    b.mpki = 0.0;
    r.apps = {a, b};
    r.total_cycles = 1312996;
    r.dynamic_energy_nj = 752.9368000000804;
    r.data_energy_nj = 4922.343000000199;
    r.static_energy_nj = 1.0 / 7.0;
    r.avg_ways_probed = 3.4786465693201443;
    r.donor_hits = 108;
    r.donor_misses = 16;
    r.recipient_hits = 3;
    r.recipient_misses = 5;
    r.avg_transfer_cycles = 17.25;
    r.completed_transfers = 9;
    r.flushed_lines = 131;
    r.repartitions = 2;
    r.epochs = 17;
    r.flush_series = {62, 32, 15, 8, 8};
    r.flush_series_bin = 10000;
    r.dram_reads = 555;
    r.dram_writebacks = 44;
    r.dram_flushes = 3;
    return r;
}

void
expectIdentical(const sim::RunResult &a, const sim::RunResult &b)
{
    // Field-by-field bit equality; the encoding comparison below is
    // the cheap proxy, this is the authoritative check.
    ASSERT_EQ(a.apps.size(), b.apps.size());
    for (std::size_t i = 0; i < a.apps.size(); ++i) {
        EXPECT_EQ(a.apps[i].name, b.apps[i].name);
        EXPECT_EQ(a.apps[i].ipc, b.apps[i].ipc);
        EXPECT_EQ(a.apps[i].insts, b.apps[i].insts);
        EXPECT_EQ(a.apps[i].cycles, b.apps[i].cycles);
        EXPECT_EQ(a.apps[i].llc_accesses, b.apps[i].llc_accesses);
        EXPECT_EQ(a.apps[i].llc_hits, b.apps[i].llc_hits);
        EXPECT_EQ(a.apps[i].llc_misses, b.apps[i].llc_misses);
        EXPECT_EQ(a.apps[i].mpki, b.apps[i].mpki);
    }
    EXPECT_EQ(a.total_cycles, b.total_cycles);
    EXPECT_EQ(a.dynamic_energy_nj, b.dynamic_energy_nj);
    EXPECT_EQ(a.data_energy_nj, b.data_energy_nj);
    EXPECT_EQ(a.static_energy_nj, b.static_energy_nj);
    EXPECT_EQ(a.avg_ways_probed, b.avg_ways_probed);
    EXPECT_EQ(a.donor_hits, b.donor_hits);
    EXPECT_EQ(a.donor_misses, b.donor_misses);
    EXPECT_EQ(a.recipient_hits, b.recipient_hits);
    EXPECT_EQ(a.recipient_misses, b.recipient_misses);
    EXPECT_EQ(a.avg_transfer_cycles, b.avg_transfer_cycles);
    EXPECT_EQ(a.completed_transfers, b.completed_transfers);
    EXPECT_EQ(a.flushed_lines, b.flushed_lines);
    EXPECT_EQ(a.repartitions, b.repartitions);
    EXPECT_EQ(a.epochs, b.epochs);
    EXPECT_EQ(a.flush_series, b.flush_series);
    EXPECT_EQ(a.flush_series_bin, b.flush_series_bin);
    EXPECT_EQ(a.dram_reads, b.dram_reads);
    EXPECT_EQ(a.dram_writebacks, b.dram_writebacks);
    EXPECT_EQ(a.dram_flushes, b.dram_flushes);
}

/** A distinct RunKey per @p n. */
sim::RunKey
sampleKey(unsigned n)
{
    sim::RunKey key;
    key.kind = sim::RunKey::Kind::Group;
    key.scheme = "coop";
    key.name = "G2-" + std::to_string(1 + n % 14);
    key.num_cores = 2;
    key.scale = sim::RunScale::Test;
    key.threshold = 0.05;
    key.seed = 42 + n;
    return key;
}

/** Fresh scratch directory under the gtest temp dir. */
std::string
scratchDir(const std::string &name)
{
    const fs::path dir =
        fs::path(testing::TempDir()) / ("coopsim_store_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

} // namespace

// ---------------------------------------------------------------------------
// Line encoding

TEST(StoreEncoding, ResultRoundTripsEveryFieldBitExactly)
{
    const sim::RunResult original = sampleResult();
    const std::string text = formatResult(original);

    sim::RunResult parsed;
    ASSERT_TRUE(tryParseResult(text, parsed));
    expectIdentical(original, parsed);
    EXPECT_EQ(formatResult(parsed), text);

    // Degenerate shapes round-trip too: no apps, empty flush series.
    const sim::RunResult empty;
    ASSERT_TRUE(tryParseResult(formatResult(empty), parsed));
    expectIdentical(empty, parsed);
}

TEST(StoreEncoding, StoreLineRoundTripsKeyAndResult)
{
    const sim::RunKey key = sampleKey(3);
    const sim::RunResult result = sampleResult();
    const std::string line = formatStoreLine(key, result);

    sim::RunKey parsed_key;
    sim::RunResult parsed_result;
    ASSERT_TRUE(tryParseStoreLine(line, parsed_key, parsed_result));
    EXPECT_EQ(parsed_key, key);
    expectIdentical(result, parsed_result);
}

TEST(StoreEncoding, RejectsCorruptAndTruncatedText)
{
    const std::string good = formatResult(sampleResult());
    sim::RunResult out;

    // Truncation anywhere must fail, never parse as a plausible
    // partial result.
    for (const std::size_t len :
         {std::size_t{0}, good.size() / 4, good.size() / 2,
          good.size() - 1}) {
        EXPECT_FALSE(tryParseResult(good.substr(0, len), out))
            << "truncated at " << len;
    }
    // Trailing garbage, bad numbers, reordered/unknown fields.
    EXPECT_FALSE(tryParseResult(good + " extra=1", out));
    EXPECT_FALSE(tryParseResult("cycles=banana" + good.substr(12), out));
    EXPECT_FALSE(tryParseResult("bogus=1 " + good, out));
    // Numbers strtoull/strtod would silently mangle: a negative count
    // (wraps to 2^64-1) and an overflowing double (becomes inf) must
    // be rejected, not loaded as plausible results.
    EXPECT_FALSE(
        tryParseResult("cycles=-1" + good.substr(good.find(' ')), out));
    const std::size_t dyn = good.find("dyn_nj=");
    const std::size_t dyn_end = good.find(' ', dyn);
    EXPECT_FALSE(tryParseResult(good.substr(0, dyn) + "dyn_nj=1e999" +
                                    good.substr(dyn_end),
                                out));

    setThrowOnFatal(true);
    EXPECT_THROW(parseResult("not a result"), FatalError);
    setThrowOnFatal(false);

    // A store line without a tab or with a bad key fails.
    sim::RunKey key;
    EXPECT_FALSE(tryParseStoreLine(good, key, out));
    EXPECT_FALSE(
        tryParseStoreLine("group scheme=warp\t" + good, key, out));
}

TEST(StoreEncoding, TryParseRunKeyRejectsWithoutFatal)
{
    sim::RunKey key;
    EXPECT_FALSE(api::tryParseRunKey("run scheme=coop", key));
    EXPECT_FALSE(api::tryParseRunKey("group scheme=warp", key));
    EXPECT_FALSE(api::tryParseRunKey("group bogus", key));
    EXPECT_FALSE(api::tryParseRunKey("group color=red", key));
    EXPECT_FALSE(api::tryParseRunKey("group seed=banana", key));
    ASSERT_TRUE(
        api::tryParseRunKey(api::formatRunKey(sampleKey(1)), key));
    EXPECT_EQ(key, sampleKey(1));
}

// ---------------------------------------------------------------------------
// ResultStore

TEST(ResultStore, PutFindAndMergeAreLastWriterWins)
{
    ResultStore a;
    ResultStore b;
    const sim::RunKey key = sampleKey(0);
    a.put(key, sampleResult(0.0));
    a.put(sampleKey(1), sampleResult(1.0));
    b.put(key, sampleResult(9.0)); // same key, different result

    EXPECT_EQ(a.size(), 2u);
    ASSERT_TRUE(a.find(key).has_value());
    EXPECT_EQ(a.find(key)->apps[0].ipc, sampleResult(0.0).apps[0].ipc);
    EXPECT_FALSE(a.find(sampleKey(7)).has_value());

    // Replacement in place...
    a.put(key, sampleResult(5.0));
    EXPECT_EQ(a.size(), 2u);
    EXPECT_EQ(a.find(key)->apps[0].ipc, sampleResult(5.0).apps[0].ipc);

    // ...and on merge the incoming store wins shared keys.
    a.merge(b);
    EXPECT_EQ(a.size(), 2u);
    EXPECT_EQ(a.find(key)->apps[0].ipc, sampleResult(9.0).apps[0].ipc);
}

TEST(ResultStore, SaveLoadRoundTripsAtomically)
{
    const std::string dir = scratchDir("roundtrip");
    const std::string path = dir + "/a" + kStoreExtension;

    ResultStore original;
    for (unsigned n = 0; n < 5; ++n) {
        original.put(sampleKey(n), sampleResult(n));
    }
    original.save(path);
    EXPECT_FALSE(fs::exists(path + ".tmp")); // temp file renamed away

    ResultStore loaded;
    EXPECT_EQ(loaded.loadFile(path), 5u);
    EXPECT_EQ(loaded.size(), original.size());
    for (unsigned n = 0; n < 5; ++n) {
        const auto hit = loaded.find(sampleKey(n));
        ASSERT_TRUE(hit.has_value());
        expectIdentical(*original.find(sampleKey(n)), *hit);
    }

    // save() creates missing parent directories.
    const std::string nested =
        dir + "/deep/nested/b" + kStoreExtension;
    original.save(nested);
    ResultStore reloaded;
    EXPECT_EQ(reloaded.loadFile(nested), 5u);
}

TEST(ResultStore, LoadSkipsCorruptAndTruncatedLines)
{
    const std::string dir = scratchDir("corrupt");
    const std::string path = dir + "/bad" + kStoreExtension;

    const std::string good0 =
        formatStoreLine(sampleKey(0), sampleResult(0));
    const std::string good1 =
        formatStoreLine(sampleKey(1), sampleResult(1));
    {
        std::ofstream out(path);
        out << kStoreMagic << "\n";
        out << "# comments and blank lines are fine\n\n";
        out << good0 << "\n";
        out << "group scheme=warp name=G2-1\tcycles=1\n"; // bad key
        out << good1.substr(0, good1.size() / 2) << "\n"; // truncated
        out << "complete garbage\n";
        out << good1 << "\n";
    }

    setQuiet(true);
    ResultStore loaded;
    EXPECT_EQ(loaded.loadFile(path), 2u);
    EXPECT_EQ(loaded.size(), 2u);
    EXPECT_TRUE(loaded.find(sampleKey(0)).has_value());
    EXPECT_TRUE(loaded.find(sampleKey(1)).has_value());

    // A file without the magic header loads nothing.
    const std::string bogus = dir + "/not-a-store" + kStoreExtension;
    {
        std::ofstream out(bogus);
        out << good0 << "\n";
    }
    ResultStore none;
    EXPECT_EQ(none.loadFile(bogus), 0u);
    EXPECT_EQ(none.loadFile(dir + "/absent.coopstore"), 0u);
    setQuiet(false);
}

// ---------------------------------------------------------------------------
// CRC hardening and the corruption matrix

TEST(StoreCrc, ChecksumMatchesKnownVectorsAndSuffixRoundTrips)
{
    // CRC-32/IEEE known-answer vectors (zlib's crc32()).
    EXPECT_EQ(crc32(""), 0x00000000u);
    EXPECT_EQ(crc32("123456789"), 0xcbf43926u);

    const std::string body = "group scheme=coop\tcycles=1";
    const std::string line = withCrcSuffix(body);
    EXPECT_EQ(line.substr(0, body.size()), body);

    std::string split;
    EXPECT_EQ(splitCrcSuffix(line, split), LineCheck::Ok);
    EXPECT_EQ(split, body);
    // No trailer -> legacy, whole line is the body.
    EXPECT_EQ(splitCrcSuffix(body, split), LineCheck::Legacy);
    EXPECT_EQ(split, body);
    // Any flipped digit -> mismatch.
    std::string bad = line;
    bad.back() = bad.back() == '0' ? '1' : '0';
    EXPECT_EQ(splitCrcSuffix(bad, split), LineCheck::Mismatch);
}

TEST(StoreCrc, SaveEmitsCrcLinesAndRoundTripsByteIdentically)
{
    const std::string dir = scratchDir("crc");
    const std::string path = dir + "/a" + kStoreExtension;

    ResultStore original;
    for (unsigned n = 0; n < 4; ++n) {
        original.put(sampleKey(n), sampleResult(n));
    }
    original.save(path);

    // Every entry line carries a valid CRC trailer.
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, kStoreMagic);
    std::size_t entries = 0;
    std::string body;
    while (std::getline(in, line)) {
        EXPECT_EQ(splitCrcSuffix(line, body), LineCheck::Ok) << line;
        ++entries;
    }
    EXPECT_EQ(entries, 4u);

    // save -> load -> save is byte-identical (CRC suffixes included).
    ResultStore loaded;
    EXPECT_EQ(loaded.loadFile(path), 4u);
    const ResultStore::Stats stats = loaded.stats();
    EXPECT_EQ(stats.lines_loaded, 4u);
    EXPECT_EQ(stats.lines_skipped, 0u);
    EXPECT_EQ(stats.lines_legacy, 0u);
    const std::string copy = dir + "/b" + kStoreExtension;
    loaded.save(copy);
    std::ifstream f1(path), f2(copy);
    std::stringstream s1, s2;
    s1 << f1.rdbuf();
    s2 << f2.rdbuf();
    EXPECT_EQ(s1.str(), s2.str());
}

TEST(StoreCrc, CorruptionMatrixSkipsExactlyTheDamagedLines)
{
    setQuiet(true);
    const std::string dir = scratchDir("matrix");
    const std::string path = dir + "/m" + kStoreExtension;

    // Five good CRC'd lines, then damage three of them in place:
    // flip a CRC digit of line 1, interleave garbage after line 2,
    // truncate the last line mid-body.
    std::vector<std::string> lines;
    ResultStore source;
    for (unsigned n = 0; n < 5; ++n) {
        source.put(sampleKey(n), sampleResult(n));
        lines.push_back(withCrcSuffix(
            formatStoreLine(sampleKey(n), sampleResult(n))));
    }
    lines[1].back() = lines[1].back() == 'a' ? 'b' : 'a';
    lines.insert(lines.begin() + 3, "interleaved garbage");
    lines.back() = lines.back().substr(0, lines.back().size() / 2);
    {
        std::ofstream out(path);
        out << kStoreMagic << "\n";
        for (const std::string &line : lines) {
            out << line << "\n";
        }
    }

    ResultStore loaded;
    // Lines 0, 2, 3 survive; the flipped-CRC, garbage and truncated
    // lines are skipped with exact counts.
    EXPECT_EQ(loaded.loadFile(path), 3u);
    const ResultStore::Stats stats = loaded.stats();
    EXPECT_EQ(stats.lines_loaded, 3u);
    EXPECT_EQ(stats.lines_skipped, 3u);
    EXPECT_EQ(stats.lines_legacy, 0u);

    // The surviving entries equal the uncorrupted subset bit-exactly.
    for (const unsigned n : {0u, 2u, 3u}) {
        const auto hit = loaded.find(sampleKey(n));
        ASSERT_TRUE(hit.has_value()) << n;
        expectIdentical(sampleResult(n), *hit);
    }
    EXPECT_FALSE(loaded.find(sampleKey(1)).has_value());
    EXPECT_FALSE(loaded.find(sampleKey(4)).has_value());
    setQuiet(false);
}

TEST(StoreCrc, LegacyLinesWithoutCrcLoadWithWarningCount)
{
    setQuiet(true);
    const std::string dir = scratchDir("legacy");
    const std::string path = dir + "/old" + kStoreExtension;
    {
        // A pre-CRC store: plain lines, no trailers.
        std::ofstream out(path);
        out << kStoreMagic << "\n";
        out << formatStoreLine(sampleKey(0), sampleResult(0)) << "\n";
        out << formatStoreLine(sampleKey(1), sampleResult(1)) << "\n";
    }
    ResultStore loaded;
    EXPECT_EQ(loaded.loadFile(path), 2u);
    EXPECT_EQ(loaded.stats().lines_legacy, 2u);
    EXPECT_EQ(loaded.stats().lines_skipped, 0u);
    expectIdentical(sampleResult(0), *loaded.find(sampleKey(0)));

    // Saving rewrites the store in the CRC'd format.
    const std::string upgraded = dir + "/new" + kStoreExtension;
    loaded.save(upgraded);
    ResultStore reloaded;
    EXPECT_EQ(reloaded.loadFile(upgraded), 2u);
    EXPECT_EQ(reloaded.stats().lines_legacy, 0u);
    setQuiet(false);
}

TEST(StoreCrc, LoadDirQuarantinesZeroValidLineFiles)
{
    setQuiet(true);
    const std::string dir = scratchDir("quarantine");

    // One healthy shard file...
    ResultStore good;
    good.put(sampleKey(0), sampleResult(0));
    good.save(dir + "/shard-0of2" + kStoreExtension);
    // ...one file whose every line is corrupt...
    const std::string poisoned = dir + "/shard-1of2" + kStoreExtension;
    {
        std::ofstream out(poisoned);
        out << kStoreMagic << "\n";
        out << "garbage line one\n";
        out << "garbage line two\n";
    }
    // ...and one that is not a store at all.
    const std::string bogus = dir + "/zz-bogus" + kStoreExtension;
    {
        std::ofstream out(bogus);
        out << "not a coopsim store\n";
    }

    ResultStore merged;
    EXPECT_EQ(merged.loadDir(dir), 1u);
    EXPECT_EQ(merged.stats().files_quarantined, 2u);
    EXPECT_TRUE(merged.find(sampleKey(0)).has_value());

    // Quarantined files are renamed out of the store glob, so a
    // second fold no longer sees them.
    EXPECT_FALSE(fs::exists(poisoned));
    EXPECT_TRUE(fs::exists(poisoned + ".quarantined"));
    EXPECT_TRUE(fs::exists(bogus + ".quarantined"));
    ResultStore again;
    EXPECT_EQ(again.loadDir(dir), 1u);
    EXPECT_EQ(again.stats().files_quarantined, 0u);

    // An empty (header-only) store file is fine: zero candidates is
    // not corruption.
    ResultStore empty;
    empty.save(dir + "/shard-2of3" + kStoreExtension);
    ResultStore third;
    EXPECT_EQ(third.loadDir(dir), 1u);
    EXPECT_EQ(third.stats().files_quarantined, 0u);
    setQuiet(false);
}

TEST(StoreCrc, TrySaveReportsFailureAndPreservesResults)
{
    const std::string dir = scratchDir("trysave");
    ResultStore results;
    results.put(sampleKey(0), sampleResult(0));

    // Happy path returns true and leaves no temp file.
    std::string error;
    const std::string path = dir + "/ok" + kStoreExtension;
    EXPECT_TRUE(results.trySave(path, error)) << error;
    EXPECT_FALSE(fs::exists(path + ".tmp"));

    // A target whose parent cannot be created fails with a
    // description instead of dying (a regular file blocks the
    // directory path).
    const std::string blocked =
        dir + "/ok" + kStoreExtension + "/nested" + kStoreExtension;
    EXPECT_FALSE(results.trySave(blocked, error));
    EXPECT_FALSE(error.empty());

    // save() on the same target is the fatal variant.
    setThrowOnFatal(true);
    EXPECT_THROW(results.save(blocked), FatalError);
    setThrowOnFatal(false);
}

TEST(ResultStore, LoadDirFoldsFilesInLexicalOrder)
{
    const std::string dir = scratchDir("dirload");
    const sim::RunKey shared = sampleKey(0);

    ResultStore first;
    first.put(shared, sampleResult(1.0));
    first.put(sampleKey(1), sampleResult(0.0));
    first.save(dir + "/shard-0of2" + kStoreExtension);

    ResultStore second;
    second.put(shared, sampleResult(2.0)); // later file wins
    second.save(dir + "/shard-1of2" + kStoreExtension);

    ResultStore merged;
    EXPECT_EQ(merged.loadDir(dir), 3u);
    EXPECT_EQ(merged.size(), 2u);
    EXPECT_EQ(merged.find(shared)->apps[0].ipc,
              sampleResult(2.0).apps[0].ipc);

    // A missing directory folds nothing.
    ResultStore empty;
    EXPECT_EQ(empty.loadDir(dir + "/nowhere"), 0u);
    EXPECT_EQ(shardFileName(0, 2), "shard-0of2.coopstore");
}

// ---------------------------------------------------------------------------
// Sharding

TEST(Shard, UnionOfShardsEqualsFullSweepExactly)
{
    api::ExperimentSpec spec;
    spec.layout = "none";
    spec.schemes = {"fairshare", "coop"};
    spec.groups = {"G2-10", "G2-11", "G4-3"};
    spec.thresholds = {0.0, 0.05};
    spec.seeds = {1, 2};
    spec.scale = "test";
    const std::vector<sim::RunKey> keys = api::expandSpec(spec);
    ASSERT_FALSE(keys.empty());

    for (const unsigned count : {1u, 2u, 3u, 7u}) {
        std::multiset<std::string> expected;
        for (const sim::RunKey &key : keys) {
            expected.insert(api::formatRunKey(key));
        }
        std::multiset<std::string> covered;
        std::size_t total = 0;
        for (unsigned index = 0; index < count; ++index) {
            const std::vector<sim::RunKey> slice =
                api::shardKeys(keys, index, count);
            total += slice.size();
            for (const sim::RunKey &key : slice) {
                covered.insert(api::formatRunKey(key));
            }
        }
        // Disjoint (total matches) and complete (multisets match).
        EXPECT_EQ(total, keys.size()) << count << " shards";
        EXPECT_EQ(covered, expected) << count << " shards";
    }

    EXPECT_EQ(api::shardKeys(keys, 0, 1), keys);
    setThrowOnFatal(true);
    EXPECT_THROW(api::shardKeys(keys, 2, 2), FatalError);
    EXPECT_THROW(api::shardKeys(keys, 0, 0), FatalError);
    setThrowOnFatal(false);
}

// ---------------------------------------------------------------------------
// Executor store hook

TEST(ExecutorStore, StoredKeysAreServedWithoutStartingThePool)
{
    sim::RunOptions options;
    options.scale = sim::RunScale::Test;
    const sim::RunKey key = sim::groupKey(
        "fairshare", trace::groupByName("G2-10"), options);

    // Precompute the result serially and plant it in a store.
    const sim::RunResult direct = sim::executeRun(key);
    auto planted = std::make_shared<ResultStore>();
    planted->put(key, direct);

    sim::RunExecutor executor(2);
    EXPECT_EQ(executor.threads(), 2u);
    executor.attachStore(planted);

    // Store hit: no pool thread spawns, no simulation runs.
    executor.prefetch({key});
    EXPECT_EQ(executor.activeWorkers(), 0u);
    expectIdentical(direct, executor.run(key));
    EXPECT_EQ(executor.activeWorkers(), 0u);
    EXPECT_EQ(executor.stats().simulations, 0u);
    EXPECT_EQ(executor.stats().store_hits, 1u);

    // A key the store lacks still simulates (lazily starting the
    // pool) and is recorded back into the store.
    sim::RunKey missing = key;
    missing.seed = 7;
    const sim::RunResult &fresh = executor.run(missing);
    EXPECT_FALSE(fresh.apps.empty());
    EXPECT_EQ(executor.activeWorkers(), 2u);
    EXPECT_EQ(executor.stats().simulations, 1u);
    const auto recorded = planted->find(missing);
    ASSERT_TRUE(recorded.has_value());
    expectIdentical(fresh, *recorded);
}

TEST(ExecutorStore, WarmStoreReplaysAWholeSweepWithZeroSimulations)
{
    api::ExperimentSpec spec;
    spec.layout = "none";
    spec.with_solo = false;
    spec.schemes = {"fairshare", "coop"};
    spec.groups = {"G2-10"};
    spec.scale = "test";
    const std::vector<sim::RunKey> keys = api::expandSpec(spec);

    // First executor computes the sweep into an attached store.
    auto computed = std::make_shared<ResultStore>();
    sim::RunExecutor cold(2);
    cold.attachStore(computed);
    cold.prefetch(keys);
    for (const sim::RunKey &key : keys) {
        cold.run(key);
    }
    EXPECT_EQ(cold.stats().simulations, keys.size());
    EXPECT_EQ(computed->size(), keys.size());

    // Round-trip the store through disk, then replay on a fresh
    // executor: identical results, zero simulations, no pool.
    const std::string dir = scratchDir("replay");
    computed->save(dir + "/" + kMergedFileName);
    auto reloaded = std::make_shared<ResultStore>();
    EXPECT_EQ(reloaded->loadDir(dir), keys.size());

    sim::RunExecutor warm(2);
    warm.attachStore(reloaded);
    warm.prefetch(keys);
    for (const sim::RunKey &key : keys) {
        expectIdentical(cold.run(key), warm.run(key));
    }
    EXPECT_EQ(warm.stats().simulations, 0u);
    EXPECT_EQ(warm.stats().store_hits, keys.size());
    EXPECT_EQ(warm.activeWorkers(), 0u);
}
