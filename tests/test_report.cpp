/**
 * @file
 * Tests for the reporting module and the drowsy-gating extension.
 */

#include <gtest/gtest.h>

#include "llc/schemes.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

using namespace coopsim;
using namespace coopsim::sim;

namespace
{

RunResult
sampleResult()
{
    RunResult r;
    AppResult a;
    a.name = "lbm";
    a.ipc = 0.5;
    a.insts = 1000;
    a.cycles = 2000;
    a.llc_accesses = 100;
    a.llc_hits = 40;
    a.llc_misses = 60;
    a.mpki = 60.0;
    r.apps.push_back(a);
    r.total_cycles = 2000;
    r.dynamic_energy_nj = 12.5;
    r.static_energy_nj = 7.25;
    r.avg_ways_probed = 3.0;
    r.repartitions = 2;
    r.flushed_lines = 17;
    return r;
}

} // namespace

TEST(Report, StatGroupContainsHeadlineMetrics)
{
    const auto group = toStatGroup(sampleResult(), "run");
    const std::string dump = group.format();
    EXPECT_NE(dump.find("run.dynamic_energy_nj 12.5"),
              std::string::npos);
    EXPECT_NE(dump.find("run.static_energy_nj 7.25"),
              std::string::npos);
    EXPECT_NE(dump.find("run.core0.lbm.ipc 0.5"), std::string::npos);
    EXPECT_NE(dump.find("run.core0.lbm.mpki 60"), std::string::npos);
    EXPECT_NE(dump.find("run.flushed_lines 17"), std::string::npos);
}

TEST(Report, FormatMatchesStatGroup)
{
    const RunResult r = sampleResult();
    EXPECT_EQ(formatRunResult(r, "x"), toStatGroup(r, "x").format());
}

TEST(Report, CsvRowMatchesHeaderArity)
{
    const std::string header = csvHeader();
    const std::string row = csvRow("Cooperative", "G2-1",
                                   sampleResult(), 1.5);
    const auto count = [](const std::string &s) {
        return std::count(s.begin(), s.end(), ',');
    };
    EXPECT_EQ(count(header), count(row));
    EXPECT_NE(row.find("Cooperative,G2-1,1.5"), std::string::npos);
}

TEST(Report, EndToEndDumpFromRealRun)
{
    RunOptions options;
    options.scale = RunScale::Test;
    const auto &group = trace::groupByName("G2-10");
    const RunResult &r =
        runGroup("coop", group, options);
    const std::string dump = formatRunResult(r, "coop");
    EXPECT_NE(dump.find("coop.core0.sjeng.ipc"), std::string::npos);
    EXPECT_NE(dump.find("coop.core1.calculix.mpki"),
              std::string::npos);
}

// ---------------------------------------------------------------------------
// Drowsy gating extension

namespace
{

llc::LlcConfig
drowsyConfig()
{
    llc::LlcConfig config;
    config.geometry = {8 * 4 * 64, 4, 64};
    config.num_cores = 2;
    config.hit_latency = 10;
    config.umon_sample_period = 1;
    config.confirm_epochs = 1;
    config.gating = llc::GatingMode::Drowsy;
    config.drowsy_leak_fraction = 0.25;
    config.stale_transition_cycles = 1'000'000'000;
    return config;
}

Addr
makeAddr(CoreId core, Addr tag, SetId set)
{
    return (static_cast<Addr>(core + 1) << 40) | (tag << (6 + 3)) |
           (static_cast<Addr>(set) << 6);
}

/** Both cores keep one hot block per set: each wants only 1 way. */
void
narrowTraffic(llc::CooperativeLlc &llc, Cycle &now, int rounds)
{
    for (int round = 0; round < rounds; ++round) {
        for (SetId s = 0; s < 8; ++s) {
            llc.access(0, makeAddr(0, 0, s), AccessType::Read, ++now);
            llc.access(1, makeAddr(1, 0, s), AccessType::Read, ++now);
        }
    }
}

} // namespace

TEST(DrowsyGating, DarkWaysStillLeakFractionally)
{
    mem::DramModel dram;
    llc::CooperativeLlc coop(drowsyConfig(), dram);
    Cycle now = 0;
    narrowTraffic(coop, now, 400);
    coop.epoch(++now);
    narrowTraffic(coop, now, 100); // complete the drains

    const double powered = coop.poweredWays();
    // 2 ways on + 2 drowsy at 25%: 2.5 effective ways.
    EXPECT_LT(powered, 4.0);
    EXPECT_GT(powered, 2.0);
    coop.checkInvariants();
}

TEST(DrowsyGating, GatedVddLeaksLess)
{
    auto run = [](llc::GatingMode mode) {
        llc::LlcConfig config = drowsyConfig();
        config.gating = mode;
        mem::DramModel dram;
        llc::CooperativeLlc coop(config, dram);
        Cycle now = 0;
        narrowTraffic(coop, now, 400);
        coop.epoch(++now);
        narrowTraffic(coop, now, 100);
        return coop.poweredWays();
    };
    EXPECT_LT(run(llc::GatingMode::GatedVdd),
              run(llc::GatingMode::Drowsy));
}

TEST(DrowsyGating, CleanLinesSurviveADrain)
{
    mem::DramModel dram;
    llc::CooperativeLlc coop(drowsyConfig(), dram);
    Cycle now = 0;

    // Core 0 builds a 3-deep working set, then narrows to 1 block so
    // its extra ways drain off with clean lines still inside.
    for (int round = 0; round < 400; ++round) {
        for (SetId s = 0; s < 8; ++s) {
            for (Addr t = 0; t < 3; ++t) {
                coop.access(0, makeAddr(0, t, s), AccessType::Read,
                            ++now);
            }
            coop.access(1, makeAddr(1, 0, s), AccessType::Read, ++now);
        }
    }
    // Several narrow epochs let the decayed utility curves converge on
    // the 1-way demand and the drains complete.
    for (int e = 0; e < 6; ++e) {
        coop.epoch(++now);
        narrowTraffic(coop, now, 300);
    }

    // Some way must be dark by now; drowsy mode may keep valid
    // (clean) lines inside it — the invariant checker accepts them.
    coop.checkInvariants();
    EXPECT_LT(coop.permissions().poweredCount(), 4u);
    // No dirty orphans anywhere.
    for (WayId w = 0; w < 4; ++w) {
        for (SetId s = 0; s < 8; ++s) {
            const auto &blk = coop.array().block(s, w);
            if (blk.valid && !coop.permissions().powered(w)) {
                EXPECT_FALSE(blk.dirty);
            }
        }
    }
}
