/**
 * @file
 * Tests for the non-cooperative LLC schemes: Unmanaged, FairShare,
 * UCP and DynamicCPE.
 */

#include <gtest/gtest.h>

#include "llc/schemes.hpp"

using namespace coopsim;
using namespace coopsim::llc;

namespace
{

/** 16 sets x 4 ways x 64 B shared by 2 cores. */
LlcConfig
tinyConfig()
{
    LlcConfig config;
    config.geometry = {16 * 4 * 64, 4, 64};
    config.num_cores = 2;
    config.hit_latency = 10;
    config.umon_sample_period = 1;
    config.confirm_epochs = 1;
    return config;
}

/** Address in @p core's disjoint space hitting @p set with @p tag. */
Addr
makeAddr(CoreId core, Addr tag, SetId set)
{
    return (static_cast<Addr>(core + 1) << 40) | (tag << (6 + 4)) |
           (static_cast<Addr>(set) << 6);
}

} // namespace

// ---------------------------------------------------------------------------
// Unmanaged

TEST(UnmanagedLlc, ProbesEveryWay)
{
    mem::DramModel dram;
    UnmanagedLlc llc(tinyConfig(), dram);
    const LlcAccess res =
        llc.access(0, makeAddr(0, 1, 0), AccessType::Read, 0);
    EXPECT_FALSE(res.hit);
    EXPECT_EQ(res.ways_probed, 4u);
}

TEST(UnmanagedLlc, HitTimingUsesHitLatency)
{
    mem::DramModel dram;
    UnmanagedLlc llc(tinyConfig(), dram);
    llc.access(0, makeAddr(0, 1, 0), AccessType::Read, 0);
    const LlcAccess hit =
        llc.access(0, makeAddr(0, 1, 0), AccessType::Read, 1000);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.ready_at, 1010u);
}

TEST(UnmanagedLlc, MissWaitsForDram)
{
    mem::DramModel dram;
    UnmanagedLlc llc(tinyConfig(), dram);
    const LlcAccess miss =
        llc.access(0, makeAddr(0, 1, 0), AccessType::Read, 0);
    EXPECT_GE(miss.ready_at, dram.config().access_latency);
}

TEST(UnmanagedLlc, CoresEvictEachOther)
{
    mem::DramModel dram;
    UnmanagedLlc llc(tinyConfig(), dram);
    // Core 0 fills a whole set, then core 1 floods it.
    for (Addr t = 0; t < 4; ++t) {
        llc.access(0, makeAddr(0, t, 3), AccessType::Read, t);
    }
    for (Addr t = 0; t < 4; ++t) {
        llc.access(1, makeAddr(1, t, 3), AccessType::Read, 100 + t);
    }
    // Core 0's data is gone.
    const LlcAccess res =
        llc.access(0, makeAddr(0, 0, 3), AccessType::Read, 200);
    EXPECT_FALSE(res.hit);
}

TEST(UnmanagedLlc, DirtyEvictionWritesBack)
{
    mem::DramModel dram;
    UnmanagedLlc llc(tinyConfig(), dram);
    llc.access(0, makeAddr(0, 0, 3), AccessType::Write, 0);
    for (Addr t = 1; t <= 4; ++t) {
        llc.access(0, makeAddr(0, t, 3), AccessType::Read, t);
    }
    EXPECT_EQ(dram.stats().writebacks.value(), 1u);
    EXPECT_EQ(llc.coreStats(0).writebacks.value(), 1u);
}

// ---------------------------------------------------------------------------
// FairShare

TEST(FairShareLlc, EqualDisjointMasks)
{
    mem::DramModel dram;
    FairShareLlc llc(tinyConfig(), dram);
    EXPECT_EQ(llc.maskOf(0) & llc.maskOf(1), 0u);
    EXPECT_EQ(llc.maskOf(0) | llc.maskOf(1), 0xFu);
    EXPECT_EQ(llc.allocation(), (std::vector<std::uint32_t>{2, 2}));
}

TEST(FairShareLlc, ProbesOnlyOwnWays)
{
    mem::DramModel dram;
    FairShareLlc llc(tinyConfig(), dram);
    const LlcAccess res =
        llc.access(0, makeAddr(0, 1, 0), AccessType::Read, 0);
    EXPECT_EQ(res.ways_probed, 2u);
}

TEST(FairShareLlc, CoresAreIsolated)
{
    mem::DramModel dram;
    FairShareLlc llc(tinyConfig(), dram);
    llc.access(0, makeAddr(0, 7, 3), AccessType::Read, 0);
    // Core 1 floods the same set far beyond its share.
    for (Addr t = 0; t < 16; ++t) {
        llc.access(1, makeAddr(1, t, 3), AccessType::Read, 10 + t);
    }
    EXPECT_TRUE(
        llc.access(0, makeAddr(0, 7, 3), AccessType::Read, 100).hit);
}

TEST(FairShareLlc, NeverPowersDown)
{
    mem::DramModel dram;
    FairShareLlc llc(tinyConfig(), dram);
    llc.epoch(1000);
    EXPECT_DOUBLE_EQ(llc.poweredWays(), 4.0);
}

// ---------------------------------------------------------------------------
// UCP

TEST(UcpLlc, ProbesAllWaysDespitePartitioning)
{
    mem::DramModel dram;
    UcpLlc llc(tinyConfig(), dram);
    const LlcAccess res =
        llc.access(0, makeAddr(0, 1, 0), AccessType::Read, 0);
    EXPECT_EQ(res.ways_probed, 4u);
    EXPECT_DOUBLE_EQ(llc.poweredWays(), 4.0);
}

TEST(UcpLlc, RepartitionsTowardTheReuseHeavyCore)
{
    mem::DramModel dram;
    LlcConfig config = tinyConfig();
    UcpLlc llc(config, dram);

    // Core 0 re-uses a 3-deep working set per set (wants 3+ ways);
    // core 1 streams (wants 1).
    Cycle now = 0;
    for (int round = 0; round < 400; ++round) {
        for (SetId s = 0; s < 16; ++s) {
            for (Addr t = 0; t < 3; ++t) {
                llc.access(0, makeAddr(0, t, s), AccessType::Read, ++now);
            }
            ++now;
            llc.access(1, makeAddr(1, 1000 + now, s), AccessType::Read,
                       now);
        }
    }
    llc.epoch(++now);
    const auto alloc = llc.allocation();
    EXPECT_GE(alloc[0], 3u);
    EXPECT_LE(alloc[1], 1u);
}

TEST(UcpLlc, EnforcementIsLazyViaReplacement)
{
    mem::DramModel dram;
    UcpLlc llc(tinyConfig(), dram);
    // Same traffic as above to move the partition to (3, 1).
    Cycle now = 0;
    for (int round = 0; round < 400; ++round) {
        for (SetId s = 0; s < 16; ++s) {
            for (Addr t = 0; t < 3; ++t) {
                llc.access(0, makeAddr(0, t, s), AccessType::Read, ++now);
            }
            ++now;
            llc.access(1, makeAddr(1, 5000 + now, s), AccessType::Read,
                       now);
        }
    }
    llc.epoch(++now);

    // After the decision, core 0's misses take blocks from core 1
    // (over quota), not from core 0 itself.
    const auto &set_array = llc.array();
    for (int round = 0; round < 50; ++round) {
        for (Addr t = 0; t < 3; ++t) {
            llc.access(0, makeAddr(0, 100 + t, 2), AccessType::Read,
                       ++now);
        }
    }
    EXPECT_GE(set_array.ownedCount(2, cache::fullMask(4), 0), 3u);
}

// ---------------------------------------------------------------------------
// DynamicCPE

TEST(DynamicCpeLlc, ProbesOwnWaysOnly)
{
    mem::DramModel dram;
    DynamicCpeLlc llc(tinyConfig(), dram);
    const LlcAccess res =
        llc.access(0, makeAddr(0, 1, 0), AccessType::Read, 0);
    EXPECT_EQ(res.ways_probed, 2u);
}

TEST(DynamicCpeLlc, RepartitionFlushesAndStalls)
{
    mem::DramModel dram;
    LlcConfig config = tinyConfig();
    config.cpe_gate_threshold = 0.0;
    DynamicCpeLlc llc(config, dram);

    // Make core 0 want 3 ways; core 1 streams and WRITES so the way
    // it donates holds dirty lines for the flush to move.
    Cycle now = 0;
    for (int round = 0; round < 300; ++round) {
        for (SetId s = 0; s < 16; ++s) {
            for (Addr t = 0; t < 3; ++t) {
                llc.access(0, makeAddr(0, t, s), AccessType::Write,
                           ++now);
            }
            ++now;
            llc.access(1, makeAddr(1, 900 + now, s), AccessType::Write,
                       now);
        }
    }
    const Cycle decision = ++now;
    llc.epoch(decision);
    if (llc.allocation() != std::vector<std::uint32_t>({2, 2})) {
        // A repartition happened: ways moved, lines were flushed and
        // the LLC reports itself busy.
        EXPECT_GT(llc.flushedLines(), 0u);
        EXPECT_GT(llc.busyUntil(), decision);
        EXPECT_GT(dram.stats().flushes.value(), 0u);

        // A demand access during the stall is delayed past busyUntil.
        const LlcAccess res = llc.access(
            0, makeAddr(0, 0, 0), AccessType::Read, decision + 1);
        EXPECT_GE(res.ready_at, llc.busyUntil());
    } else {
        GTEST_SKIP() << "allocator kept the even split";
    }
}

TEST(DynamicCpeLlc, GatesUnallocatedWays)
{
    mem::DramModel dram;
    LlcConfig config = tinyConfig();
    config.cpe_gate_threshold = 0.5; // gate everything non-essential
    DynamicCpeLlc llc(config, dram);

    Cycle now = 0;
    for (int round = 0; round < 200; ++round) {
        for (SetId s = 0; s < 16; ++s) {
            llc.access(0, makeAddr(0, 0, s), AccessType::Read, ++now);
            llc.access(1, makeAddr(1, 0, s), AccessType::Read, ++now);
        }
    }
    llc.epoch(++now);
    // With a huge gate threshold both cores keep only the floor way.
    EXPECT_DOUBLE_EQ(llc.poweredWays(), 2.0);
    EXPECT_EQ(llc.allocation(), (std::vector<std::uint32_t>{1, 1}));
}

TEST(DynamicCpeLlc, StableDemandMeansNoReflush)
{
    mem::DramModel dram;
    DynamicCpeLlc llc(tinyConfig(), dram);
    Cycle now = 0;
    auto traffic = [&]() {
        for (int round = 0; round < 100; ++round) {
            for (SetId s = 0; s < 16; ++s) {
                llc.access(0, makeAddr(0, 0, s), AccessType::Read, ++now);
                llc.access(1, makeAddr(1, 0, s), AccessType::Read, ++now);
            }
        }
    };
    traffic();
    llc.epoch(++now);
    const std::uint64_t flushed_once = llc.flushedLines();
    traffic();
    llc.epoch(++now);
    traffic();
    llc.epoch(++now);
    EXPECT_EQ(llc.flushedLines(), flushed_once);
}

// ---------------------------------------------------------------------------
// Factory

TEST(LlcFactory, BuildsEveryScheme)
{
    mem::DramModel dram;
    for (const Scheme s :
         {Scheme::Unmanaged, Scheme::FairShare, Scheme::Ucp,
          Scheme::DynamicCpe, Scheme::Cooperative}) {
        const auto llc = makeLlc(s, tinyConfig(), dram);
        ASSERT_NE(llc, nullptr);
        EXPECT_EQ(llc->scheme(), s);
        EXPECT_STREQ(schemeName(llc->scheme()), schemeName(s));
    }
}

TEST(LlcFactory, SchemeNamesMatchPaperLegends)
{
    EXPECT_STREQ(schemeName(Scheme::Unmanaged), "Unmanaged");
    EXPECT_STREQ(schemeName(Scheme::FairShare), "FairShare");
    EXPECT_STREQ(schemeName(Scheme::Ucp), "UCP");
    EXPECT_STREQ(schemeName(Scheme::DynamicCpe), "DynamicCPE");
    EXPECT_STREQ(schemeName(Scheme::Cooperative), "Cooperative");
}
