/**
 * @file
 * Tests for the approximate out-of-order core model.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/trace_core.hpp"
#include "llc/schemes.hpp"

using namespace coopsim;
using core::CoreConfig;
using core::MemOp;
using core::OpStream;
using core::TraceCore;

namespace
{

/** Replays a scripted list of ops, then repeats the last one. */
class ScriptedStream final : public OpStream
{
  public:
    explicit ScriptedStream(std::vector<MemOp> ops)
        : ops_(std::move(ops))
    {
    }

    MemOp next() override
    {
        if (index_ < ops_.size()) {
            return ops_[index_++];
        }
        return ops_.back();
    }

  private:
    std::vector<MemOp> ops_;
    std::size_t index_ = 0;
};

llc::LlcConfig
tinyLlc()
{
    llc::LlcConfig config;
    config.geometry = {16 * 4 * 64, 4, 64};
    config.num_cores = 1;
    config.hit_latency = 10;
    return config;
}

MemOp
llcOp(InstCount gap, Addr addr, AccessType type = AccessType::Read)
{
    MemOp op;
    op.gap_insts = gap;
    op.addr = addr;
    op.type = type;
    op.llc_level = true;
    return op;
}

} // namespace

TEST(TraceCore, WidthLimitsRetirement)
{
    mem::DramModel dram;
    llc::UnmanagedLlc llc(tinyLlc(), dram);
    // Two bundles of 99 gap + 1 memory op = 200 instructions.
    ScriptedStream stream({llcOp(99, 0x40), llcOp(99, 0x40)});
    CoreConfig config;
    config.width = 4;
    TraceCore core(0, config, llc, stream);

    core.step();
    core.step();
    EXPECT_EQ(core.retired(), 200u);
    // 200 insts at width 4 = 50 cycles minimum.
    EXPECT_GE(core.cycle(), 50u);
}

TEST(TraceCore, FractionalWidthCarryIsExact)
{
    mem::DramModel dram;
    llc::UnmanagedLlc llc(tinyLlc(), dram);
    // 1-inst bundles: 8 bundles = 8 insts = exactly 2 cycles at w=4.
    std::vector<MemOp> ops;
    for (int i = 0; i < 8; ++i) {
        ops.push_back(llcOp(0, 0x40)); // gap 0 + the mem op = 1 inst
    }
    ScriptedStream stream(ops);
    TraceCore core(0, CoreConfig{}, llc, stream);
    for (int i = 0; i < 8; ++i) {
        core.step();
    }
    EXPECT_EQ(core.retired(), 8u);
    EXPECT_EQ(core.cycle(), 2u);
}

TEST(TraceCore, MissesOverlapUpToRob)
{
    mem::DramModel dram;
    llc::UnmanagedLlc llc(tinyLlc(), dram);

    // Distinct blocks: all miss, ~400-cycle fills. Gaps of 10 insts
    // keep them inside one 128-entry ROB window, so they overlap.
    std::vector<MemOp> ops;
    for (int i = 0; i < 8; ++i) {
        ops.push_back(llcOp(10, 0x10000 + 0x40 * i));
    }
    ScriptedStream stream(ops);
    TraceCore core(0, CoreConfig{}, llc, stream);
    for (int i = 0; i < 8; ++i) {
        core.step();
    }
    // Serialised, 8 misses would cost > 3200 cycles; with MLP the core
    // is far ahead of that.
    EXPECT_LT(core.cycle(), 1000u);
}

TEST(TraceCore, RobOccupancyStallsFarApartMisses)
{
    mem::DramModel dram;
    llc::UnmanagedLlc llc(tinyLlc(), dram);

    // Misses more than a ROB apart cannot overlap: each must complete
    // before the window slides past it.
    std::vector<MemOp> ops;
    for (int i = 0; i < 4; ++i) {
        ops.push_back(llcOp(500, 0x20000 + 0x40 * i)); // 500 >> ROB=128
    }
    ScriptedStream stream(ops);
    CoreConfig config;
    config.rob = 128;
    TraceCore core(0, config, llc, stream);
    for (int i = 0; i < 4; ++i) {
        core.step();
    }
    // Each miss costs its full DRAM latency serially.
    EXPECT_GT(core.cycle(), 3u * 400u);
}

TEST(TraceCore, MshrLimitCausesStructuralStalls)
{
    mem::DramModel dram;
    llc::UnmanagedLlc llc(tinyLlc(), dram);

    std::vector<MemOp> ops;
    for (int i = 0; i < 12; ++i) {
        ops.push_back(llcOp(0, 0x30000 + 0x40 * i));
    }
    ScriptedStream a_ops(ops);
    CoreConfig narrow;
    narrow.mshr_entries = 1; // no overlap allowed
    TraceCore serial(0, narrow, llc, a_ops);
    for (int i = 0; i < 12; ++i) {
        serial.step();
    }

    mem::DramModel dram2;
    llc::UnmanagedLlc llc2(tinyLlc(), dram2);
    ScriptedStream b_ops(ops);
    CoreConfig wide;
    wide.mshr_entries = 16;
    TraceCore parallel(0, wide, llc2, b_ops);
    for (int i = 0; i < 12; ++i) {
        parallel.step();
    }
    EXPECT_GT(serial.cycle(), parallel.cycle());
}

TEST(TraceCore, L1FiltersLlcTraffic)
{
    mem::DramModel dram;
    llc::UnmanagedLlc llc(tinyLlc(), dram);

    // Raw (non-L1-filtered) stream hammering one block: one L1 miss,
    // then all hits; the LLC sees a single access.
    std::vector<MemOp> ops;
    for (int i = 0; i < 50; ++i) {
        MemOp op;
        op.gap_insts = 1;
        op.addr = 0x5000;
        op.type = AccessType::Read;
        op.llc_level = false;
        ops.push_back(op);
    }
    ScriptedStream stream(ops);
    TraceCore core(0, CoreConfig{}, llc, stream);
    for (int i = 0; i < 50; ++i) {
        core.step();
    }
    EXPECT_EQ(core.stats().l1_misses.value(), 1u);
    EXPECT_EQ(core.stats().l1_hits.value(), 49u);
    EXPECT_EQ(llc.coreStats(0).accesses.value(), 1u);
}

TEST(TraceCore, DirtyL1VictimWritesBackToLlc)
{
    mem::DramModel dram;
    llc::UnmanagedLlc llc(tinyLlc(), dram);

    // Write a block, then evict it from a 1-set x 2-way L1 by reading
    // two more blocks in the same L1 set.
    CoreConfig config;
    config.l1 = cache::CacheGeometry{2 * 64, 2, 64};
    std::vector<MemOp> ops;
    MemOp w;
    w.gap_insts = 0;
    w.addr = 0x0000;
    w.type = AccessType::Write;
    ops.push_back(w);
    for (Addr a : {0x1000, 0x2000}) {
        MemOp r;
        r.gap_insts = 0;
        r.addr = a;
        ops.push_back(r);
    }
    ScriptedStream stream(ops);
    TraceCore core(0, config, llc, stream);
    core.step();
    core.step();
    core.step();
    // LLC saw: write-miss 0x0000, read 0x1000, writeback 0x0000 +
    // read 0x2000 -> at least one LLC write from the victim.
    EXPECT_GE(core.stats().llc_writes.value(), 2u);
}

TEST(TraceCore, MeasurementWindowIpc)
{
    mem::DramModel dram;
    llc::UnmanagedLlc llc(tinyLlc(), dram);
    ScriptedStream stream({llcOp(399, 0x40)}); // repeats: 400 insts/op
    TraceCore core(0, CoreConfig{}, llc, stream);

    core.step(); // warm-up
    core.startMeasurement();
    const Cycle c0 = core.cycle();
    const InstCount i0 = core.retired();
    for (int i = 0; i < 10; ++i) {
        core.step();
    }
    core.markQuotaReached();
    EXPECT_EQ(core.measuredInsts(), core.retired() - i0);
    EXPECT_GT(core.measuredCycles(), 0u);
    const double expected =
        static_cast<double>(core.retired() - i0) /
        static_cast<double>(core.cycle() - c0);
    EXPECT_DOUBLE_EQ(core.ipc(), expected);

    // Steps after the quota don't change the reported IPC.
    const double at_quota = core.ipc();
    core.step();
    EXPECT_DOUBLE_EQ(core.ipc(), at_quota);
}
