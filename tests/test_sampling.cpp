/**
 * @file
 * Tests for the statistical sampling estimators (src/sampling/):
 *
 *  - exact-mode identity: an explicit `sampling exact` axis expands to
 *    the same canonical keys as a spec with no sampling axis at all,
 *    and the executor produces byte-equal result lines over the
 *    fig05-representative sweep — sampling must be invisible until
 *    asked for;
 *  - differential accuracy: setop-sampled weighted speedups fall
 *    inside their own reported confidence interval against the exact
 *    reference over {G2-1, G4-1, G8-mem1, G32-mix1} x {coop, ucp} x
 *    {lookahead, greedy} at test scale;
 *  - the samp_windows/samp_ci result-line fields round-trip through
 *    store::formatResult/tryParseResult, legacy (pre-sampling) lines
 *    still load, and malformed CI lists are rejected;
 *  - sampled RunKeys round-trip through formatRunKey/parseRunKey and
 *    pre-sampling key lines still parse as exact;
 *  - stats::Average's Welford variance/stdError match a two-pass
 *    reference, including the frequency-weighted path.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include <coopsim/experiment.hpp>

#include "sampling/sampling.hpp"
#include "sim/runner.hpp"

using namespace coopsim;
using namespace coopsim::sim;

// ---------------------------------------------------------------------------
// Exact mode is the pre-sampling simulator

namespace
{

/** The fig05-representative sweep (same shape as test_banked's). */
api::ExperimentSpec
fig05Spec()
{
    api::ExperimentSpec spec;
    spec.name = "sampling-exact-diff";
    spec.layout = "none";
    spec.with_solo = false;
    spec.schemes = {"coop", "ucp"};
    spec.groups = {"G2-10"};
    spec.partitioners = {"lookahead", "equalshare", "greedy"};
    spec.scale = "test";
    return spec;
}

} // namespace

TEST(Sampling, ExactAxisIsByteIdenticalOverFig05Sweep)
{
    // A spec that never mentions sampling and one that pins the axis
    // to "exact" must expand to identical canonical key lines (the
    // exact default adds no key fields), and those keys must execute
    // to byte-equal result lines with no samp_ trailer.
    const std::vector<RunKey> plain = api::expandSpec(fig05Spec());
    api::ExperimentSpec explicit_spec = fig05Spec();
    explicit_spec.sampling = {"exact"};
    const std::vector<RunKey> exact = api::expandSpec(explicit_spec);

    ASSERT_EQ(plain.size(), exact.size());
    RunExecutor executor(4);
    for (std::size_t i = 0; i < plain.size(); ++i) {
        const std::string plain_key = api::formatRunKey(plain[i]);
        EXPECT_EQ(plain_key, api::formatRunKey(exact[i]));
        EXPECT_EQ(plain_key.find("sampling="), std::string::npos)
            << plain_key;
        const std::string line =
            store::formatResult(executor.run(plain[i]));
        EXPECT_EQ(line, store::formatResult(executor.run(exact[i])));
        EXPECT_EQ(line.find("samp_windows"), std::string::npos) << line;
    }
}

TEST(Sampling, ResolveFillsEstimatorDefaults)
{
    using sampling::Mode;
    const sampling::Resolved exact = sampling::resolve({Mode::Exact});
    EXPECT_EQ(exact.set_period, 1u);
    EXPECT_EQ(exact.windows, 0u);
    EXPECT_FALSE(exact.fast_forward);

    const sampling::Resolved set = sampling::resolve({Mode::Set});
    EXPECT_EQ(set.set_period, sampling::kDefaultSetPeriod);
    EXPECT_EQ(set.windows, sampling::kDefaultOpWindows);
    EXPECT_FALSE(set.fast_forward);

    const sampling::Resolved op = sampling::resolve({Mode::Op});
    EXPECT_EQ(op.set_period, 1u);
    EXPECT_EQ(op.windows, sampling::kDefaultOpWindows);
    EXPECT_TRUE(op.fast_forward);

    sampling::Params custom{Mode::SetOp};
    custom.set_period = 8;
    custom.op_windows = 5;
    const sampling::Resolved setop = sampling::resolve(custom);
    EXPECT_EQ(setop.set_period, 8u);
    EXPECT_EQ(setop.windows, 5u);
    EXPECT_TRUE(setop.fast_forward);
}

// ---------------------------------------------------------------------------
// Differential: sampled estimates land inside their own reported CI

TEST(Sampling, SampledSpeedupsFallInsideTheirReportedCi)
{
    // The estimators may be biased (that is the price of 10-100x), but
    // they must KNOW how biased: every sampled weighted speedup has to
    // cover the exact reference within the CI the run itself reports.
    // setop composes both estimators, so its CI covers both biases.
    api::ExperimentSpec spec;
    spec.name = "sampling-ci-diff";
    spec.layout = "none";
    spec.schemes = {"coop", "ucp"};
    spec.groups = {"G2-1", "G4-1", "G8-mem1", "G32-mix1"};
    spec.cores = {2, 4, 8, 32};
    spec.partitioners = {"lookahead", "greedy"};
    spec.sampling = {"exact", "setop"};
    spec.scale = "test";
    const api::ExperimentResults results = api::runExperiment(spec);

    for (const trace::WorkloadGroup &group : results.groups()) {
        for (const std::string &scheme : spec.schemes) {
            for (const std::string &part : spec.partitioners) {
                api::Cell cell;
                cell.group = group.name;
                cell.scheme = scheme;
                cell.partitioner = part;
                cell.sampling = "exact";
                const double exact_ws = results.weightedSpeedup(cell);
                EXPECT_EQ(results.weightedSpeedupCi(cell), 0.0);

                cell.sampling = "setop";
                const double sampled_ws = results.weightedSpeedup(cell);
                const double ci = results.weightedSpeedupCi(cell);
                EXPECT_GT(ci, 0.0);
                EXPECT_LE(std::abs(sampled_ws - exact_ws), ci)
                    << group.name << " " << scheme << " " << part
                    << ": exact=" << exact_ws
                    << " sampled=" << sampled_ws << " ci=" << ci;
            }
        }
    }
}

TEST(Sampling, SampledRunsCarryWindowsAndPerAppCis)
{
    RunKey key;
    key.scheme = "coop";
    key.name = "G2-1";
    key.num_cores = 2;
    key.scale = RunScale::Test;
    key.sampling = sampling::Mode::SetOp;

    const RunResult result = executeRun(key);
    EXPECT_GT(result.sample_windows, 0u);
    ASSERT_EQ(result.apps.size(), 2u);
    for (const AppResult &app : result.apps) {
        EXPECT_GT(app.ipc, 0.0) << app.name;
        EXPECT_GT(app.ipc_ci, 0.0) << app.name;
    }
    const std::string line = store::formatResult(result);
    EXPECT_NE(line.find("samp_windows"), std::string::npos);
    EXPECT_NE(line.find("samp_ci"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Store round-trip

TEST(Sampling, ResultLineCiFieldsRoundTrip)
{
    RunKey key;
    key.scheme = "ucp";
    key.name = "G2-3";
    key.num_cores = 2;
    key.scale = RunScale::Test;
    key.sampling = sampling::Mode::Set;
    const RunResult result = executeRun(key);
    ASSERT_GT(result.sample_windows, 0u);

    const std::string line = store::formatResult(result);
    RunResult parsed;
    ASSERT_TRUE(store::tryParseResult(line, parsed)) << line;
    EXPECT_EQ(parsed.sample_windows, result.sample_windows);
    ASSERT_EQ(parsed.apps.size(), result.apps.size());
    for (std::size_t i = 0; i < result.apps.size(); ++i) {
        EXPECT_EQ(parsed.apps[i].ipc_ci, result.apps[i].ipc_ci);
    }
    // The re-encoding is byte-stable too.
    EXPECT_EQ(line, store::formatResult(parsed));
}

TEST(Sampling, LegacyResultLinesLoadWithZeroCi)
{
    // A pre-sampling line (no samp_ trailer) must parse, reporting no
    // windows and exact (zero) CIs.
    RunKey key;
    key.scheme = "coop";
    key.name = "G2-1";
    key.num_cores = 2;
    key.scale = RunScale::Test;
    const std::string line = store::formatResult(executeRun(key));
    ASSERT_EQ(line.find("samp_windows"), std::string::npos);

    RunResult parsed;
    ASSERT_TRUE(store::tryParseResult(line, parsed));
    EXPECT_EQ(parsed.sample_windows, 0u);
    for (const AppResult &app : parsed.apps) {
        EXPECT_EQ(app.ipc_ci, 0.0);
    }
}

TEST(Sampling, MalformedCiListsAreRejected)
{
    RunKey key;
    key.scheme = "coop";
    key.name = "G2-1";
    key.num_cores = 2;
    key.scale = RunScale::Test;
    key.sampling = sampling::Mode::Set;
    const std::string line = store::formatResult(executeRun(key));

    RunResult parsed;
    // One CI entry per app is mandatory: drop the second app's entry.
    const std::size_t pos = line.rfind(';');
    ASSERT_NE(pos, std::string::npos);
    EXPECT_FALSE(
        store::tryParseResult(line.substr(0, pos), parsed));
    // Trailing garbage after the samp trailer is rejected.
    EXPECT_FALSE(store::tryParseResult(line + " extra=1", parsed));
}

// ---------------------------------------------------------------------------
// RunKey round-trip

TEST(Sampling, SampledRunKeysRoundTrip)
{
    using sampling::Mode;
    for (const Mode mode : {Mode::Set, Mode::Op, Mode::SetOp}) {
        RunKey key;
        key.scheme = "coop";
        key.name = "G4-2";
        key.num_cores = 4;
        key.sampling = mode;
        key.set_sample_period = sampling::setSampled(mode) ? 8 : 0;
        key.op_sample_windows = 16;
        const std::string line = api::formatRunKey(key);
        EXPECT_NE(line.find("sampling="), std::string::npos) << line;
        EXPECT_EQ(api::parseRunKey(line), key) << line;
    }
}

TEST(Sampling, PreSamplingKeyLinesParseAsExact)
{
    RunKey key;
    key.scheme = "coop";
    key.name = "G2-1";
    key.num_cores = 2;
    const std::string line = api::formatRunKey(key);
    ASSERT_EQ(line.find("sampling="), std::string::npos) << line;

    RunKey parsed;
    ASSERT_TRUE(api::tryParseRunKey(line, parsed));
    EXPECT_EQ(parsed.sampling, sampling::Mode::Exact);
    EXPECT_EQ(parsed.set_sample_period, 0u);
    EXPECT_EQ(parsed.op_sample_windows, 0u);
    EXPECT_EQ(parsed, key);
}

TEST(Sampling, SpecAxisRoundTripsThroughFormatParse)
{
    api::ExperimentSpec spec = fig05Spec();
    spec.sampling = {"exact", "setop"};
    spec.set_sample_period = 8;
    spec.op_sample_windows = 16;
    const api::ExperimentSpec parsed =
        api::parseSpec(api::formatSpec(spec));
    EXPECT_EQ(parsed.sampling, spec.sampling);
    EXPECT_EQ(parsed.set_sample_period, spec.set_sample_period);
    EXPECT_EQ(parsed.op_sample_windows, spec.op_sample_windows);
}

// ---------------------------------------------------------------------------
// Welford variance in stats::Average

TEST(Sampling, WelfordVarianceMatchesTwoPassReference)
{
    const std::vector<double> values = {0.31, 1.7, 0.92, 2.4,
                                        0.55, 1.1, 0.08, 3.2};
    stats::Average avg;
    double sum = 0.0;
    for (const double v : values) {
        avg.sample(v);
        sum += v;
    }
    const double mean = sum / static_cast<double>(values.size());
    double ss = 0.0;
    for (const double v : values) {
        ss += (v - mean) * (v - mean);
    }
    const double population = ss / static_cast<double>(values.size());
    const double unbiased =
        ss / static_cast<double>(values.size() - 1);

    EXPECT_NEAR(avg.mean(), mean, 1e-12);
    EXPECT_NEAR(avg.variance(), population, 1e-12);
    EXPECT_NEAR(avg.sampleVariance(), unbiased, 1e-12);
    EXPECT_NEAR(
        avg.stdError(),
        std::sqrt(unbiased / static_cast<double>(values.size())),
        1e-12);
}

TEST(Sampling, WeightedWelfordMatchesRepetition)
{
    // Frequency weights: sample(v, 3) must equal sampling v three
    // times (the West extension treats the weight as a repeat count).
    stats::Average weighted;
    weighted.sample(1.5, 3.0);
    weighted.sample(4.0, 2.0);

    stats::Average repeated;
    for (int i = 0; i < 3; ++i) {
        repeated.sample(1.5);
    }
    for (int i = 0; i < 2; ++i) {
        repeated.sample(4.0);
    }

    EXPECT_NEAR(weighted.mean(), repeated.mean(), 1e-12);
    EXPECT_NEAR(weighted.variance(), repeated.variance(), 1e-12);

    stats::Average reset_check;
    reset_check.sample(7.0);
    reset_check.reset();
    EXPECT_EQ(reset_check.count(), 0u);
    EXPECT_EQ(reset_check.variance(), 0.0);
    EXPECT_EQ(reset_check.stdError(), 0.0);
}
