/**
 * @file
 * Tests for the trace record/replay subsystem (src/tracefile/):
 *
 *  - the varint and zigzag codec primitives round-trip edge values
 *    and random draws, and reject truncated input;
 *  - header and frame encode/decode are exact inverses, and the
 *    malformed-trace matrix (bad magic, wrong version, flipped CRC,
 *    truncation, trailing bytes) is rejected with the right severity:
 *    registration-time scanning warns and skips, replay-time streams
 *    fail fast with a descriptive fatal (mirroring the result store's
 *    load-versus-save contract);
 *  - TraceWriter -> TraceFileStream round-trips an op sequence
 *    bit-exactly through the on-disk format, including the
 *    atomic tmp + rename protocol;
 *  - registerTraceDir() turns a directory of `.cooptrace` sets into
 *    `trace:<name>` workload registrations, skipping incomplete or
 *    inconsistent sets;
 *  - record -> replay produces byte-identical store::formatResult
 *    lines over {2, 4, 8}-core groups x {coop, ucp} x two
 *    partitioners (the subsystem's reason to exist).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "api/spec.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "sim/executor.hpp"
#include "sim/runner.hpp"
#include "store/result_store.hpp"
#include "trace/workloads.hpp"
#include "tracefile/record.hpp"
#include "tracefile/trace_format.hpp"
#include "tracefile/trace_stream.hpp"
#include "tracefile/trace_workloads.hpp"
#include "tracefile/trace_writer.hpp"

using namespace coopsim;
using namespace coopsim::tracefile;

namespace fs = std::filesystem;

namespace
{

std::string
scratchDir(const std::string &name)
{
    const fs::path dir =
        fs::path(testing::TempDir()) / ("coopsim_trace_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

/** A deterministic op sequence shaped like the synthetic streams:
 *  small strides with occasional far jumps, geometric-ish gaps. */
std::vector<core::MemOp>
sampleOps(std::size_t count, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<core::MemOp> ops;
    ops.reserve(count);
    Addr addr = 0x10000;
    for (std::size_t i = 0; i < count; ++i) {
        core::MemOp op;
        if (rng.nextBool(0.1)) {
            addr = rng.next() & ((1ull << 40) - 1); // far jump
        } else {
            addr += 64 * (1 + rng.nextBelow(8));    // local stride
        }
        op.addr = addr;
        op.gap_insts = rng.nextBelow(32);
        op.type = rng.nextBool(0.3) ? AccessType::Write
                                    : AccessType::Read;
        op.llc_level = rng.nextBool(0.5);
        ops.push_back(op);
    }
    return ops;
}

void
expectOpsEqual(const core::MemOp &a, const core::MemOp &b,
               std::size_t index)
{
    EXPECT_EQ(a.addr, b.addr) << "op " << index;
    EXPECT_EQ(a.gap_insts, b.gap_insts) << "op " << index;
    EXPECT_EQ(a.type, b.type) << "op " << index;
    EXPECT_EQ(a.llc_level, b.llc_level) << "op " << index;
}

TraceHeader
sampleHeader()
{
    TraceHeader header;
    header.core = 1;
    header.num_cores = 2;
    header.seed = 42;
    header.llc_sets = 128;
    header.block_bytes = 64;
    header.workload = "G2-3";
    header.app = "h264ref";
    header.scale = "test";
    return header;
}

/** Writes @p ops as a complete trace file at @p path. */
void
writeTrace(const std::string &path, const TraceHeader &header,
           const std::vector<core::MemOp> &ops)
{
    TraceWriter writer(path, header);
    for (const core::MemOp &op : ops) {
        writer.append(op);
    }
    writer.finish();
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

void
spit(const std::string &path, const std::string &data)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(),
              static_cast<std::streamsize>(data.size()));
}

} // namespace

// ---------------------------------------------------------------------------
// Codec primitives

TEST(TraceCodec, VarintRoundTripsEdgeAndRandomValues)
{
    std::vector<std::uint64_t> values = {
        0,       1,          0x7f,      0x80,       0x3fff,
        0x4000,  0x1fffff,   0x200000,  0xffffffff, 1ull << 56,
        (1ull << 63) - 1,    1ull << 63, UINT64_MAX};
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        values.push_back(rng.next() >> rng.nextBelow(64));
    }

    std::string buffer;
    for (const std::uint64_t v : values) {
        appendVarint(buffer, v);
    }
    std::size_t pos = 0;
    for (const std::uint64_t v : values) {
        std::uint64_t decoded = 0;
        ASSERT_TRUE(readVarint(buffer, pos, decoded));
        EXPECT_EQ(decoded, v);
    }
    EXPECT_EQ(pos, buffer.size());

    // A single-byte value uses one byte; UINT64_MAX uses the 10-byte
    // ceiling the reader enforces.
    std::string one;
    appendVarint(one, 0x7f);
    EXPECT_EQ(one.size(), 1u);
    std::string ten;
    appendVarint(ten, UINT64_MAX);
    EXPECT_EQ(ten.size(), 10u);
}

TEST(TraceCodec, VarintRejectsTruncationAndOverlongRuns)
{
    std::string buffer;
    appendVarint(buffer, UINT64_MAX);
    for (std::size_t cut = 0; cut < buffer.size(); ++cut) {
        const std::string prefix = buffer.substr(0, cut);
        std::size_t pos = 0;
        std::uint64_t value = 0;
        EXPECT_FALSE(readVarint(prefix, pos, value)) << cut;
    }
    // 11 continuation bytes: longer than any valid u64 encoding.
    const std::string overlong(11, '\xff');
    std::size_t pos = 0;
    std::uint64_t value = 0;
    EXPECT_FALSE(readVarint(overlong, pos, value));
}

TEST(TraceCodec, ZigzagRoundTripsAndOrdersSmallMagnitudes)
{
    const std::int64_t values[] = {0,  -1, 1,  -2, 2,
                                   64, -64, INT64_MAX, INT64_MIN};
    for (const std::int64_t v : values) {
        EXPECT_EQ(zigzagDecode(zigzagEncode(v)), v);
    }
    // Small magnitudes map to small codes (the property the delta
    // compression relies on).
    EXPECT_EQ(zigzagEncode(0), 0u);
    EXPECT_EQ(zigzagEncode(-1), 1u);
    EXPECT_EQ(zigzagEncode(1), 2u);
    EXPECT_EQ(zigzagEncode(-2), 3u);

    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const auto v = static_cast<std::int64_t>(rng.next());
        EXPECT_EQ(zigzagDecode(zigzagEncode(v)), v);
    }
}

TEST(TraceCodec, DeltaLenMatchesByteWidth)
{
    EXPECT_EQ(deltaLen(0), 0u);
    EXPECT_EQ(deltaLen(1), 1u);
    EXPECT_EQ(deltaLen(0xff), 1u);
    EXPECT_EQ(deltaLen(0x100), 2u);
    EXPECT_EQ(deltaLen(0xffffff), 3u);
    EXPECT_EQ(deltaLen(1ull << 32), 5u);
    EXPECT_EQ(deltaLen(UINT64_MAX), 8u);
    for (std::size_t len = 1; len <= 8; ++len) {
        EXPECT_EQ(deltaLen(kLenMask[len]), len);
    }
}

// ---------------------------------------------------------------------------
// Header and frame round-trips

TEST(TraceFormat, HeaderRoundTripsExactly)
{
    const TraceHeader header = sampleHeader();
    std::string data = encodeHeader(header);
    data.append(kDecodeSlack, '\0');

    std::size_t pos = 0;
    TraceHeader decoded;
    std::string error;
    ASSERT_TRUE(decodeHeader(data, pos, decoded, error)) << error;
    EXPECT_EQ(decoded, header);
    EXPECT_EQ(pos, data.size() - kDecodeSlack);
}

TEST(TraceFormat, HeaderRejectsMalformedInput)
{
    const std::string good = encodeHeader(sampleHeader());
    TraceHeader decoded;
    std::string error;
    std::size_t pos = 0;

    // Bad magic.
    std::string bad = good;
    bad[0] = 'X';
    bad.append(kDecodeSlack, '\0');
    EXPECT_FALSE(decodeHeader(bad, pos, decoded, error));
    EXPECT_NE(error.find("magic"), std::string::npos) << error;

    // Unsupported version (field after the 8-byte magic).
    bad = good;
    bad[8] = '\x7f';
    bad.append(kDecodeSlack, '\0');
    pos = 0;
    EXPECT_FALSE(decodeHeader(bad, pos, decoded, error));
    EXPECT_NE(error.find("version"), std::string::npos) << error;

    // Flipped payload byte -> CRC mismatch.
    bad = good;
    bad[20] ^= 0x01;
    bad.append(kDecodeSlack, '\0');
    pos = 0;
    EXPECT_FALSE(decodeHeader(bad, pos, decoded, error));
    EXPECT_NE(error.find("CRC"), std::string::npos) << error;

    // Every truncation point fails cleanly.
    for (std::size_t cut = 0; cut < good.size(); cut += 3) {
        std::string prefix = good.substr(0, cut);
        prefix.append(kDecodeSlack, '\0');
        pos = 0;
        EXPECT_FALSE(decodeHeader(prefix, pos, decoded, error)) << cut;
    }
}

TEST(TraceFormat, FrameRoundTripsRandomOps)
{
    for (const std::size_t count : {1ul, 7ul, 1000ul, kFrameOps}) {
        const std::vector<core::MemOp> ops = sampleOps(count, count);
        std::string data = encodeFrame(ops.data(), ops.size());
        data.append(kDecodeSlack, '\0');

        std::size_t pos = 0;
        std::vector<core::MemOp> decoded;
        std::string error;
        ASSERT_EQ(decodeFrame(data, pos, decoded, error),
                  FrameStatus::Ok)
            << error;
        ASSERT_EQ(decoded.size(), ops.size());
        for (std::size_t i = 0; i < ops.size(); ++i) {
            expectOpsEqual(decoded[i], ops[i], i);
        }
        EXPECT_EQ(pos, data.size() - kDecodeSlack);
    }
}

TEST(TraceFormat, FramesDecodeIndependently)
{
    // prev_addr resets per frame: decoding the second frame without
    // the first yields the same ops.
    const std::vector<core::MemOp> a = sampleOps(100, 1);
    const std::vector<core::MemOp> b = sampleOps(100, 2);
    const std::string fa = encodeFrame(a.data(), a.size());
    const std::string fb = encodeFrame(b.data(), b.size());

    std::string only_b = fb;
    only_b.append(kDecodeSlack, '\0');
    std::size_t pos = 0;
    std::vector<core::MemOp> decoded;
    std::string error;
    ASSERT_EQ(decodeFrame(only_b, pos, decoded, error), FrameStatus::Ok);
    ASSERT_EQ(decoded.size(), b.size());
    for (std::size_t i = 0; i < b.size(); ++i) {
        expectOpsEqual(decoded[i], b[i], i);
    }

    std::string both = fa + fb;
    both.append(kDecodeSlack, '\0');
    pos = 0;
    ASSERT_EQ(decodeFrame(both, pos, decoded, error), FrameStatus::Ok);
    ASSERT_EQ(decodeFrame(both, pos, decoded, error), FrameStatus::Ok);
    for (std::size_t i = 0; i < b.size(); ++i) {
        expectOpsEqual(decoded[i], b[i], i);
    }
    EXPECT_EQ(decodeFrame(both, pos, decoded, error), FrameStatus::End);
}

TEST(TraceFormat, FrameRejectsCorruptionTruncationAndTrailingBytes)
{
    const std::vector<core::MemOp> ops = sampleOps(200, 3);
    const std::string good = encodeFrame(ops.data(), ops.size());
    std::vector<core::MemOp> decoded;
    std::string error;
    std::size_t pos;

    // Flipped payload byte -> CRC mismatch.
    std::string bad = good;
    bad[bad.size() / 2] ^= 0x10;
    bad.append(kDecodeSlack, '\0');
    pos = 0;
    EXPECT_EQ(decodeFrame(bad, pos, decoded, error),
              FrameStatus::Corrupt);
    EXPECT_NE(error.find("CRC"), std::string::npos) << error;

    // Truncation anywhere -> Corrupt (never Ok, never a crash).
    for (std::size_t cut = 1; cut < good.size(); cut += 7) {
        std::string prefix = good.substr(0, cut);
        prefix.append(kDecodeSlack, '\0');
        pos = 0;
        EXPECT_EQ(decodeFrame(prefix, pos, decoded, error),
                  FrameStatus::Corrupt)
            << cut;
    }
}

// ---------------------------------------------------------------------------
// Writer -> stream round-trip

TEST(TraceWriter, StreamReadsBackExactlyWhatWasWritten)
{
    const std::string dir = scratchDir("roundtrip");
    const std::string path = dir + "/G2-3.1.cooptrace";
    // Deliberately not a multiple of kFrameOps: exercises the short
    // tail frame.
    const std::vector<core::MemOp> ops = sampleOps(3 * kFrameOps + 917, 5);
    writeTrace(path, sampleHeader(), ops);

    // The atomic-write protocol left no tmp orphan.
    EXPECT_FALSE(fs::exists(path + ".tmp"));
    EXPECT_TRUE(fs::exists(path));

    TraceFileStream stream(path);
    EXPECT_EQ(stream.header(), sampleHeader());

    // Drain through odd-sized batches so reads cross frame boundaries.
    std::vector<core::MemOp> got;
    core::MemOp buffer[61];
    while (got.size() < ops.size()) {
        const std::size_t max =
            std::min<std::size_t>(61, ops.size() - got.size());
        const std::size_t n = stream.nextBatch(buffer, max);
        ASSERT_GT(n, 0u);
        ASSERT_LE(n, max);
        got.insert(got.end(), buffer, buffer + n);
    }
    ASSERT_EQ(got.size(), ops.size());
    for (std::size_t i = 0; i < ops.size(); ++i) {
        expectOpsEqual(got[i], ops[i], i);
    }
    EXPECT_EQ(stream.deliveredOps(), ops.size());
}

TEST(TraceWriter, AbandonedWriterLeavesNoFile)
{
    const std::string dir = scratchDir("abandon");
    const std::string path = dir + "/G2-3.0.cooptrace";
    {
        TraceWriter writer(path, sampleHeader());
        writer.append(sampleOps(10, 1)[0]);
        // No finish(): simulated crash.
    }
    EXPECT_FALSE(fs::exists(path));
    EXPECT_FALSE(fs::exists(path + ".tmp"));
}

// ---------------------------------------------------------------------------
// Malformed traces at replay time: descriptive fatals

TEST(TraceStream, MalformedFilesAreFatalWithReasons)
{
    const std::string dir = scratchDir("malformed");
    const std::string path = dir + "/G2-3.1.cooptrace";
    writeTrace(path, sampleHeader(), sampleOps(kFrameOps + 100, 9));
    const std::string good = slurp(path);

    setThrowOnFatal(true);

    // Bad magic: rejected at construction.
    std::string bad = good;
    bad[3] = 'X';
    spit(path, bad);
    EXPECT_THROW(TraceFileStream{path}, FatalError);

    // Wrong version: rejected at construction.
    bad = good;
    bad[8] = '\x09';
    spit(path, bad);
    EXPECT_THROW(TraceFileStream{path}, FatalError);

    // A flipped byte inside the second frame: every frame's CRC is
    // checked when the stream opens, so the corruption is fatal at
    // construction — before a single op reaches a simulation.
    bad = good;
    bad[bad.size() - 20] ^= 0x40;
    spit(path, bad);
    EXPECT_THROW(TraceFileStream{path}, FatalError);

    // Truncation mid-frame is equally fatal at construction.
    spit(path, good.substr(0, good.size() - 10));
    EXPECT_THROW(TraceFileStream{path}, FatalError);

    // Exhaustion: a clean file that simply ends is fatal once the
    // simulation asks for more than was recorded.
    spit(path, good);
    {
        TraceFileStream stream(path);
        core::MemOp buffer[64];
        std::size_t drained = 0;
        EXPECT_THROW(
            {
                for (;;) {
                    drained += stream.nextBatch(buffer, 64);
                }
            },
            FatalError);
        EXPECT_EQ(drained, kFrameOps + 100);
    }

    setThrowOnFatal(false);
}

// ---------------------------------------------------------------------------
// Directory scanning: warn-and-skip like the result store's loadDir

TEST(TraceWorkloads, RegisterTraceDirAcceptsCompleteSets)
{
    const std::string dir = scratchDir("register");
    for (std::uint32_t c = 0; c < 2; ++c) {
        TraceHeader header = sampleHeader();
        header.core = c;
        header.workload = "regtest";
        header.app = c == 0 ? "sjeng" : "calculix";
        writeTrace(dir + "/" + traceFileName("regtest", c), header,
                   sampleOps(100, c));
    }
    EXPECT_EQ(registerTraceDir(dir), 1u);
    // Idempotent: a second scan of the same directory is a no-op.
    EXPECT_EQ(registerTraceDir(dir), 0u);

    ASSERT_TRUE(api::workloadRegistry().contains("trace:regtest"));
    const trace::WorkloadGroup &group =
        api::workloadRegistry().get("trace:regtest");
    ASSERT_EQ(group.apps.size(), 2u);
    EXPECT_EQ(group.apps[0], "sjeng");
    EXPECT_EQ(group.apps[1], "calculix");
    EXPECT_EQ(traceHeaderOf("trace:regtest", 1).app, "calculix");
    EXPECT_NE(traceFilePath("trace:regtest", 0).find("regtest.0"),
              std::string::npos);

    // Glob resolution covers trace: names like any other workload.
    const auto resolved = api::resolveWorkloads("trace:regtest");
    ASSERT_EQ(resolved.size(), 1u);
    EXPECT_EQ(resolved[0].name, "trace:regtest");
}

TEST(TraceWorkloads, IncompleteAndInconsistentSetsAreSkipped)
{
    setQuiet(true);

    // Missing core file: headers say 2 cores, only core 0 present.
    {
        const std::string dir = scratchDir("incomplete");
        TraceHeader header = sampleHeader();
        header.core = 0;
        header.workload = "halfset";
        writeTrace(dir + "/" + traceFileName("halfset", 0), header,
                   sampleOps(50, 1));
        EXPECT_EQ(registerTraceDir(dir), 0u);
        EXPECT_FALSE(api::workloadRegistry().contains("trace:halfset"));
    }

    // Cross-core seed mismatch.
    {
        const std::string dir = scratchDir("mixedseed");
        for (std::uint32_t c = 0; c < 2; ++c) {
            TraceHeader header = sampleHeader();
            header.core = c;
            header.workload = "mixedseed";
            header.seed = 42 + c; // inconsistent
            writeTrace(dir + "/" + traceFileName("mixedseed", c),
                       header, sampleOps(50, c));
        }
        EXPECT_EQ(registerTraceDir(dir), 0u);
        EXPECT_FALSE(
            api::workloadRegistry().contains("trace:mixedseed"));
    }

    // Header core disagreeing with the filename suffix.
    {
        const std::string dir = scratchDir("renamed");
        TraceHeader header = sampleHeader();
        header.core = 0;
        header.num_cores = 1;
        header.workload = "renamed";
        writeTrace(dir + "/" + traceFileName("renamed", 1), header,
                   sampleOps(50, 1));
        EXPECT_EQ(registerTraceDir(dir), 0u);
        EXPECT_FALSE(api::workloadRegistry().contains("trace:renamed"));
    }

    // A corrupt header (flipped byte) in one file poisons only its
    // own set.
    {
        const std::string dir = scratchDir("poison");
        for (std::uint32_t c = 0; c < 2; ++c) {
            TraceHeader header = sampleHeader();
            header.core = c;
            header.workload = "poisoned";
            writeTrace(dir + "/" + traceFileName("poisoned", c),
                       header, sampleOps(50, c));
        }
        TraceHeader header = sampleHeader();
        header.core = 0;
        header.num_cores = 1;
        header.workload = "clean";
        header.app = "sjeng";
        writeTrace(dir + "/" + traceFileName("clean", 0), header,
                   sampleOps(50, 7));

        const std::string victim =
            dir + "/" + traceFileName("poisoned", 0);
        std::string data = slurp(victim);
        data[16] ^= 0x01;
        spit(victim, data);

        EXPECT_EQ(registerTraceDir(dir), 1u);
        EXPECT_FALSE(api::workloadRegistry().contains("trace:poisoned"));
        EXPECT_TRUE(api::workloadRegistry().contains("trace:clean"));
    }

    setQuiet(false);
}

// ---------------------------------------------------------------------------
// The tentpole: record -> replay bit-identity

TEST(TraceReplay, ReplayedResultsAreByteIdenticalAcrossTopologies)
{
    const std::string dir = scratchDir("replay");

    // 2-, 4- and 8-core groups; two schemes; two partitioners.
    api::ExperimentSpec spec;
    spec.name = "replay_identity";
    spec.groups = {"G2-1", "G4-1", "G8-mem1"};
    spec.schemes = {"coop", "ucp"};
    spec.baseline = "coop";
    spec.partitioners = {"lookahead", "greedy"};
    spec.with_solo = false;
    spec.scale = "test";

    ASSERT_GT(recordSpec(spec, dir), 0u);
    ASSERT_GT(registerTraceDir(dir), 0u);

    const std::vector<sim::RunKey> keys = api::expandSpec(spec);
    ASSERT_EQ(keys.size(), 3u * 2u * 2u);
    for (const sim::RunKey &generated_key : keys) {
        const sim::RunResult generated = sim::executeRun(generated_key);

        sim::RunKey replay_key = generated_key;
        replay_key.name = std::string(kTracePrefix) + generated_key.name;
        const sim::RunResult replayed = sim::executeRun(replay_key);

        EXPECT_EQ(store::formatResult(generated),
                  store::formatResult(replayed))
            << api::formatRunKey(generated_key);
    }
}

TEST(TraceReplay, SeedAndScaleMismatchesAreFatal)
{
    const std::string dir = scratchDir("mismatch");

    api::ExperimentSpec spec;
    spec.name = "mismatch";
    spec.groups = {"G2-2"};
    spec.schemes = {"coop"};
    spec.baseline = "coop";
    spec.with_solo = false;
    spec.scale = "test";

    ASSERT_GT(recordSpec(spec, dir), 0u);
    ASSERT_GT(registerTraceDir(dir), 0u);

    sim::RunKey key = api::expandSpec(spec).front();
    key.name = "trace:G2-2";

    setThrowOnFatal(true);
    sim::RunKey wrong_seed = key;
    wrong_seed.seed = 43;
    EXPECT_THROW(sim::executeRun(wrong_seed), FatalError);

    sim::RunKey wrong_scale = key;
    wrong_scale.scale = sim::RunScale::Bench;
    EXPECT_THROW(sim::executeRun(wrong_scale), FatalError);

    // Re-recording a replay is refused.
    api::ExperimentSpec rerecord = spec;
    rerecord.groups = {"trace:G2-2"};
    EXPECT_THROW(recordSpec(rerecord, scratchDir("rerecord")),
                 FatalError);

    // Recording a multi-seed sweep is refused (a trace pins one seed).
    api::ExperimentSpec multiseed = spec;
    multiseed.seeds = {42, 43};
    EXPECT_THROW(recordSpec(multiseed, scratchDir("multiseed")),
                 FatalError);
    setThrowOnFatal(false);
}
