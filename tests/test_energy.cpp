/**
 * @file
 * Unit tests for the CACTI-like energy model and the accounting layer.
 */

#include <gtest/gtest.h>

#include "energy/accounting.hpp"
#include "energy/cacti_model.hpp"

using namespace coopsim;
using namespace coopsim::energy;

namespace
{

CacheOrg
twoMb()
{
    return CacheOrg{2ull << 20, 8, 64, false};
}

} // namespace

TEST(CactiModel, ProfilesArePositive)
{
    const CacheEnergyProfile p = deriveProfile(twoMb());
    EXPECT_GT(p.tag_probe_nj, 0.0);
    EXPECT_GT(p.data_read_nj, 0.0);
    EXPECT_GT(p.data_write_nj, p.data_read_nj);
    EXPECT_GT(p.way_leak_nj_per_cycle, 0.0);
    EXPECT_DOUBLE_EQ(p.monitor_access_nj, 0.0);
    EXPECT_DOUBLE_EQ(p.monitor_leak_nj_per_cycle, 0.0);
}

TEST(CactiModel, PartitionHardwareAddsOverheads)
{
    CacheOrg org = twoMb();
    org.has_partition_hw = true;
    const CacheEnergyProfile p = deriveProfile(org);
    EXPECT_GT(p.monitor_access_nj, 0.0);
    EXPECT_GT(p.monitor_leak_nj_per_cycle, 0.0);
    // Overheads are small relative to the array itself.
    EXPECT_LT(p.monitor_access_nj, p.tag_probe_nj);
    EXPECT_LT(p.monitor_leak_nj_per_cycle, p.way_leak_nj_per_cycle);
}

TEST(CactiModel, LeakageScalesWithWaySize)
{
    const CacheEnergyProfile small = deriveProfile(twoMb());
    CacheOrg big = twoMb();
    big.size_bytes = 4ull << 20;
    big.ways = 16;
    // Same bytes per way (sets halve x ways double keeps way size)?
    // 4MB/16way = 256kB per way vs 2MB/8way = 256kB per way: equal.
    const CacheEnergyProfile same_way = deriveProfile(big);
    EXPECT_NEAR(same_way.way_leak_nj_per_cycle,
                small.way_leak_nj_per_cycle,
                0.01 * small.way_leak_nj_per_cycle);

    CacheOrg bigger_way = twoMb();
    bigger_way.size_bytes = 4ull << 20; // 8 ways of 512kB
    const CacheEnergyProfile p2 = deriveProfile(bigger_way);
    EXPECT_GT(p2.way_leak_nj_per_cycle, small.way_leak_nj_per_cycle);
}

TEST(CactiModel, TagEnergyGrowsWithSets)
{
    const CacheEnergyProfile small = deriveProfile(twoMb());
    CacheOrg big = twoMb();
    big.size_bytes = 8ull << 20; // 4x the sets
    const CacheEnergyProfile p = deriveProfile(big);
    EXPECT_GT(p.tag_probe_nj, small.tag_probe_nj);
}

TEST(CactiModel, DataEnergyScalesWithLineSize)
{
    CacheOrg wide = twoMb();
    wide.block_bytes = 128;
    EXPECT_NEAR(deriveProfile(wide).data_read_nj,
                2.0 * deriveProfile(twoMb()).data_read_nj, 1e-9);
}

// ---------------------------------------------------------------------------
// EnergyAccounting

namespace
{

CacheEnergyProfile
unitProfile()
{
    CacheEnergyProfile p;
    p.tag_probe_nj = 1.0;
    p.data_read_nj = 10.0;
    p.data_write_nj = 20.0;
    p.way_leak_nj_per_cycle = 0.5;
    p.monitor_access_nj = 0.25;
    p.monitor_leak_nj_per_cycle = 0.125;
    return p;
}

} // namespace

TEST(Accounting, SplitsComponents)
{
    EnergyAccounting meter(unitProfile(), 8);
    meter.onAccess(4, true, false, true);  // read hit
    meter.onAccess(2, false, true, false); // fill
    const EnergyTotals &t = meter.totals();
    EXPECT_DOUBLE_EQ(t.tag_nj, 6.0);
    EXPECT_DOUBLE_EQ(t.data_nj, 30.0);
    EXPECT_DOUBLE_EQ(t.monitor_nj, 0.25);
    EXPECT_DOUBLE_EQ(t.drain_nj, 0.0);
    EXPECT_DOUBLE_EQ(t.dynamicPaper(), 6.25);
    EXPECT_DOUBLE_EQ(t.dynamicTotal(), 36.25);
}

TEST(Accounting, DrainChargesDataMovement)
{
    EnergyAccounting meter(unitProfile(), 8);
    meter.onBlockDrain();
    meter.onBlockDrain();
    EXPECT_DOUBLE_EQ(meter.totals().drain_nj, 20.0);
    EXPECT_DOUBLE_EQ(meter.totals().dynamicPaper(), 20.0);
}

TEST(Accounting, LeakageIntegratesPoweredWays)
{
    EnergyAccounting meter(unitProfile(), 8);
    meter.integrate(100, 8.0);
    // 100 cycles * (8 * 0.5 + 0.125).
    EXPECT_DOUBLE_EQ(meter.totals().static_nj, 100 * 4.125);
    meter.integrate(200, 4.0);
    EXPECT_DOUBLE_EQ(meter.totals().static_nj,
                     100 * 4.125 + 100 * 2.125);
}

TEST(Accounting, IntegrateIsIdempotentAtSameTime)
{
    EnergyAccounting meter(unitProfile(), 8);
    meter.integrate(100, 8.0);
    const double once = meter.totals().static_nj;
    meter.integrate(100, 8.0);
    EXPECT_DOUBLE_EQ(meter.totals().static_nj, once);
}

TEST(Accounting, FewerPoweredWaysLeakLess)
{
    EnergyAccounting a(unitProfile(), 8);
    EnergyAccounting b(unitProfile(), 8);
    a.integrate(1000, 8.0);
    b.integrate(1000, 5.0);
    EXPECT_LT(b.totals().static_nj, a.totals().static_nj);
}

TEST(Accounting, AvgWaysProbedTracksAccesses)
{
    EnergyAccounting meter(unitProfile(), 8);
    meter.onAccess(8, true, false, false);
    meter.onAccess(2, true, false, false);
    meter.onAccess(2, true, false, false);
    EXPECT_DOUBLE_EQ(meter.avgWaysProbed(), 4.0);
    EXPECT_EQ(meter.accesses(), 3u);
}

TEST(Accounting, ResetTotalsRestartsFromNow)
{
    EnergyAccounting meter(unitProfile(), 8);
    meter.onAccess(8, true, false, false);
    meter.integrate(100, 8.0);
    meter.resetTotals(100);
    EXPECT_DOUBLE_EQ(meter.totals().dynamicTotal(), 0.0);
    EXPECT_DOUBLE_EQ(meter.totals().static_nj, 0.0);
    meter.integrate(200, 8.0);
    EXPECT_DOUBLE_EQ(meter.totals().static_nj, 100 * 4.125);
}

TEST(Accounting, MoreWaysProbedCostsMoreDynamic)
{
    EnergyAccounting a(unitProfile(), 8);
    EnergyAccounting b(unitProfile(), 8);
    for (int i = 0; i < 100; ++i) {
        a.onAccess(8, true, false, false);
        b.onAccess(3, true, false, false);
    }
    EXPECT_GT(a.totals().dynamicPaper(), b.totals().dynamicPaper());
}
