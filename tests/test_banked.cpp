/**
 * @file
 * Tests for the banked LLC organisation:
 *
 *  - differential bit-identity: forcing one bank through the
 *    BankedLlc wrapper (banks=1, xor hash) reproduces the monolithic
 *    store::formatResult() line byte-for-byte over the
 *    fig05-representative sweep (groups x {coop, ucp} x partitioners);
 *  - the 32/64-core topology rows carry the banked geometry (2/4
 *    slices, 64 ways, 1 MB/core) and reject invalid shapes loudly;
 *  - a many-core banked sweep is bit-identical serial vs parallel and
 *    warm-store vs cold, mirroring the 8-core determinism checks;
 *  - the banks / slice-hash spec axes round-trip through
 *    formatSpec/parseSpec and formatRunKey/parseRunKey, and
 *    pre-banking key and result lines still load;
 *  - bank-conflict counters surface in RunResult and its store line.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <coopsim/experiment.hpp>

#include "sim/runner.hpp"

using namespace coopsim;
using namespace coopsim::sim;

// ---------------------------------------------------------------------------
// Differential: one forced bank vs the monolithic scheme

namespace
{

/** The fig05-representative sweep: a Table 4 group under both managed
 *  schemes across every partitioner. */
std::vector<RunKey>
fig05Sweep()
{
    api::ExperimentSpec spec;
    spec.name = "banked-diff";
    spec.layout = "none";
    spec.with_solo = false;
    spec.schemes = {"coop", "ucp"};
    spec.groups = {"G2-10"};
    spec.partitioners = {"lookahead", "equalshare", "greedy"};
    spec.scale = "test";
    return api::expandSpec(spec);
}

/** The 32/64-core smoke sweep over the banked topology rows. */
std::vector<RunKey>
manyCoreSweep()
{
    api::ExperimentSpec spec;
    spec.name = "banked-many";
    spec.layout = "none";
    spec.with_solo = false;
    spec.schemes = {"coop"};
    spec.groups = {"G32-cpu1", "G64-cpu1"};
    spec.cores = {32, 64};
    spec.partitioners = {"lookahead", "equalshare"};
    spec.scale = "test";
    return api::expandSpec(spec);
}

} // namespace

TEST(Banked, ForcedSingleBankIsBitIdenticalToMonolithic)
{
    // banks=0 + mod routes around the wrapper entirely (the exact
    // pre-banking code path); banks=1 + xor builds a BankedLlc whose
    // single bank owns the full geometry, forwards `now` unchanged and
    // keeps the conflict model off. The two must produce byte-equal
    // result lines — the wrapper adds bookkeeping, not behaviour.
    const std::vector<RunKey> keys = fig05Sweep();
    ASSERT_EQ(keys.size(), 6u);

    RunExecutor executor(4);
    for (RunKey key : keys) {
        const std::string monolithic =
            store::formatResult(executor.run(key));
        key.banks = 1;
        key.slice_hash = llc::SliceHashKind::Xor;
        EXPECT_EQ(monolithic, store::formatResult(executor.run(key)))
            << api::formatRunKey(key);
    }
}

// ---------------------------------------------------------------------------
// Topology rows and geometry validation

TEST(Banked, ManyCoreRowsCarryTheBankedGeometry)
{
    const SystemConfig c32 =
        makeSystemConfig(32, "coop", RunScale::Paper);
    EXPECT_EQ(c32.num_cores, 32u);
    EXPECT_EQ(c32.llc.geometry.size_bytes, 32ull << 20);
    EXPECT_EQ(c32.llc.geometry.ways, 64u);
    EXPECT_EQ(c32.llc.hit_latency, 35u);
    EXPECT_EQ(c32.llc.banks, 2u);

    const SystemConfig c64 =
        makeSystemConfig(64, "coop", RunScale::Paper);
    EXPECT_EQ(c64.num_cores, 64u);
    EXPECT_EQ(c64.llc.geometry.size_bytes, 64ull << 20);
    EXPECT_EQ(c64.llc.geometry.ways, 64u);
    EXPECT_EQ(c64.llc.hit_latency, 40u);
    EXPECT_EQ(c64.llc.banks, 4u);

    // Rows through 16 cores stay monolithic, so every stored
    // pre-banking result keeps describing the same machine.
    EXPECT_EQ(makeSystemConfig(16, "coop", RunScale::Paper).llc.banks,
              1u);
}

TEST(Banked, NonPowerOfTwoBankCountsAreFatalWithDiagnostics)
{
    setThrowOnFatal(true);
    llc::LlcConfig config;
    config.geometry = {2ull << 20, 8, 64};
    config.num_cores = 2;
    config.banks = 3;
    mem::DramModel dram{mem::DramConfig{}};
    try {
        api::makeLlcByName("unmanaged", config, dram);
        FAIL() << "expected a fatal error";
    } catch (const FatalError &e) {
        const std::string message = e.what();
        EXPECT_NE(message.find("3 banks"), std::string::npos)
            << message;
        EXPECT_NE(message.find("power of two"), std::string::npos)
            << message;
    }
    setThrowOnFatal(false);
}

TEST(Banked, PerSliceWaysStillCoverTheSharingCores)
{
    // The ways >= cores guard is per slice: every row in the table,
    // banked or not, must let way partitioning give each core a way in
    // every slice it can reach.
    for (const std::uint32_t n : {2u, 4u, 8u, 16u, 32u, 64u}) {
        const SystemConfig c =
            makeSystemConfig(n, "coop", RunScale::Paper);
        EXPECT_GE(c.llc.geometry.ways, n) << n << " cores";
    }
}

// ---------------------------------------------------------------------------
// Many-core determinism: serial vs parallel, warm store vs cold

TEST(Banked, ManyCoreSweepIsBitIdenticalSerialVsParallel)
{
    const std::vector<RunKey> keys = manyCoreSweep();
    ASSERT_EQ(keys.size(), 4u);

    RunExecutor serial(1);
    std::vector<std::string> serial_lines;
    for (const RunKey &key : keys) {
        serial_lines.push_back(store::formatResult(serial.run(key)));
    }

    RunExecutor parallel(4);
    parallel.prefetch(keys);
    for (std::size_t i = 0; i < keys.size(); ++i) {
        EXPECT_EQ(serial_lines[i],
                  store::formatResult(parallel.run(keys[i])));
    }
}

TEST(Banked, ManyCoreWarmStoreRerunIsBitIdenticalAndRunsNothing)
{
    const std::vector<RunKey> keys = manyCoreSweep();

    auto result_store = std::make_shared<store::ResultStore>();
    std::vector<std::string> cold_lines;
    {
        RunExecutor cold(2);
        cold.attachStore(result_store);
        cold.prefetch(keys);
        for (const RunKey &key : keys) {
            cold_lines.push_back(store::formatResult(cold.run(key)));
        }
        EXPECT_EQ(cold.stats().simulations, keys.size());
    }
    EXPECT_EQ(result_store->size(), keys.size());

    RunExecutor warm(2);
    warm.attachStore(result_store);
    warm.prefetch(keys);
    for (std::size_t i = 0; i < keys.size(); ++i) {
        EXPECT_EQ(cold_lines[i],
                  store::formatResult(warm.run(keys[i])));
    }
    EXPECT_EQ(warm.stats().simulations, 0u);
    EXPECT_EQ(warm.stats().store_hits, keys.size());
    EXPECT_EQ(warm.activeWorkers(), 0u);
}

// ---------------------------------------------------------------------------
// Spec axes and encodings

TEST(Banked, SpecAxesRoundTripAndExpand)
{
    api::ExperimentSpec spec;
    spec.name = "bank-axes";
    spec.layout = "none";
    spec.with_solo = false;
    spec.schemes = {"coop"};
    spec.groups = {"G8-cpu1"};
    spec.partitioners = {"lookahead"};
    spec.banks = {1, 2};
    spec.slice_hashes = {"mod", "xor"};
    spec.scale = "test";
    EXPECT_EQ(api::parseSpec(api::formatSpec(spec)), spec);

    const std::vector<RunKey> keys = api::expandSpec(spec);
    ASSERT_EQ(keys.size(), 4u);
    EXPECT_EQ(keys[0].banks, 1u);
    EXPECT_EQ(keys[0].slice_hash, llc::SliceHashKind::Mod);
    EXPECT_EQ(keys[1].slice_hash, llc::SliceHashKind::Xor);
    EXPECT_EQ(keys[2].banks, 2u);
    EXPECT_EQ(keys[3].banks, 2u);
    EXPECT_EQ(keys[3].slice_hash, llc::SliceHashKind::Xor);
}

TEST(Banked, RunKeyEncodingCarriesBankFieldsOnlyWhenNonDefault)
{
    std::vector<RunKey> keys = fig05Sweep();
    RunKey key = keys.front();

    // Default banking: the key line is byte-identical to the
    // pre-banking encoding (no banks / slice-hash fields), so every
    // existing store keeps addressing the same runs.
    const std::string default_line = api::formatRunKey(key);
    EXPECT_EQ(default_line.find("banks="), std::string::npos)
        << default_line;
    EXPECT_EQ(default_line.find("slice-hash="), std::string::npos)
        << default_line;
    EXPECT_EQ(api::parseRunKey(default_line), key);

    key.banks = 2;
    key.slice_hash = llc::SliceHashKind::Xor;
    const std::string banked_line = api::formatRunKey(key);
    EXPECT_NE(banked_line.find("banks=2"), std::string::npos)
        << banked_line;
    EXPECT_NE(banked_line.find("slice-hash=xor"), std::string::npos)
        << banked_line;
    EXPECT_EQ(api::parseRunKey(banked_line), key);
}

TEST(Banked, PreBankingResultLinesStillParse)
{
    // Result lines written before the bank counters existed end at the
    // per-app block; they must load with zeroed conflict counters.
    RunExecutor executor(2);
    const RunKey key = fig05Sweep().front();
    const RunResult &result = executor.run(key);
    std::string line = store::formatResult(result);

    const std::string suffix = " bank_conflicts=0 bank_conflict_cycles=0";
    ASSERT_NE(line.find(suffix), std::string::npos) << line;
    const std::string old_line =
        line.substr(0, line.size() - suffix.size());

    RunResult reparsed;
    ASSERT_TRUE(store::tryParseResult(old_line, reparsed)) << old_line;
    EXPECT_EQ(store::formatResult(reparsed), line);

    // A truncated counter pair (one field without the other) is
    // corrupt, not legacy.
    RunResult rejected;
    EXPECT_FALSE(store::tryParseResult(old_line + " bank_conflicts=5",
                                       rejected));
}

TEST(Banked, ConflictCountersSurfaceInResultsAndStoreLines)
{
    // 32 cores hammering 2 slices through a 2-cycle occupancy window
    // must collide; the counters flow RunResult -> store line.
    RunExecutor executor(2);
    RunKey key = manyCoreSweep().front();
    ASSERT_EQ(key.num_cores, 32u);
    const RunResult &banked = executor.run(key);
    EXPECT_GT(banked.bank_conflicts, 0u);
    EXPECT_GE(banked.bank_conflict_cycles, banked.bank_conflicts);
    const std::string line = store::formatResult(banked);
    EXPECT_NE(line.find("bank_conflicts="), std::string::npos) << line;

    // The monolithic path never reports conflicts.
    const RunResult &mono = executor.run(fig05Sweep().front());
    EXPECT_EQ(mono.bank_conflicts, 0u);
    EXPECT_EQ(mono.bank_conflict_cycles, 0u);
}
