/**
 * @file
 * Cross-module integration tests: whole-system runs under every scheme
 * must reproduce the paper's qualitative relationships.
 */

#include <gtest/gtest.h>

#include "sim/runner.hpp"

using namespace coopsim;
using namespace coopsim::sim;

namespace
{

RunOptions
testOptions()
{
    RunOptions options;
    options.scale = RunScale::Test;
    return options;
}

} // namespace

TEST(Integration, WaysProbedOrderingAcrossSchemes)
{
    // Paper Section 4: Unmanaged and UCP probe every way; FairShare
    // probes its share; Cooperative probes fewer than FairShare on
    // average (2.9 vs 4 at two cores).
    const auto &group = trace::groupByName("G2-2");
    const RunOptions options = testOptions();

    const double unmanaged =
        runGroup("unmanaged", group, options).avg_ways_probed;
    const double fair =
        runGroup("fairshare", group, options).avg_ways_probed;
    const double ucp =
        runGroup("ucp", group, options).avg_ways_probed;
    const double coop =
        runGroup("coop", group, options)
            .avg_ways_probed;

    EXPECT_DOUBLE_EQ(unmanaged, 8.0);
    EXPECT_DOUBLE_EQ(ucp, 8.0);
    EXPECT_DOUBLE_EQ(fair, 4.0);
    EXPECT_LT(coop, fair);
}

TEST(Integration, DynamicEnergyShapeMatchesFigure6)
{
    const auto &group = trace::groupByName("G2-2");
    const RunOptions options = testOptions();

    const double fair =
        runGroup("fairshare", group, options)
            .dynamic_energy_nj;
    const double unmanaged =
        runGroup("unmanaged", group, options)
            .dynamic_energy_nj;
    const double ucp =
        runGroup("ucp", group, options).dynamic_energy_nj;
    const double coop =
        runGroup("coop", group, options)
            .dynamic_energy_nj;

    // Unmanaged ~2x FairShare; UCP slightly above Unmanaged (monitor
    // hardware); Cooperative below FairShare.
    EXPECT_NEAR(unmanaged / fair, 2.0, 0.25);
    EXPECT_GT(ucp, unmanaged);
    EXPECT_LT(coop, fair);
}

TEST(Integration, StaticEnergyOnlyGatingSchemesSave)
{
    const auto &group = trace::groupByName("G2-2");
    const RunOptions options = testOptions();

    const RunResult &fair =
        runGroup("fairshare", group, options);
    const RunResult &coop =
        runGroup("coop", group, options);
    const RunResult &cpe =
        runGroup("cpe", group, options);

    // Static energy is proportional to powered ways x time; compare
    // per cycle so runtime differences don't blur the comparison.
    const double fair_rate =
        fair.static_energy_nj / static_cast<double>(fair.total_cycles);
    const double coop_rate =
        coop.static_energy_nj / static_cast<double>(coop.total_cycles);
    const double cpe_rate =
        cpe.static_energy_nj / static_cast<double>(cpe.total_cycles);
    EXPECT_LT(coop_rate, fair_rate);
    EXPECT_LT(cpe_rate, fair_rate);
}

TEST(Integration, CooperativePerformanceIsCompetitive)
{
    // Paper: Cooperative within ~1% of UCP and never much below
    // FairShare. At the tiny Test scale we allow a wider band but the
    // ordering must hold loosely.
    const auto &group = trace::groupByName("G2-8");
    const RunOptions options = testOptions();

    const double fair =
        groupWeightedSpeedup("fairshare", group, options);
    const double ucp =
        groupWeightedSpeedup("ucp", group, options);
    const double coop =
        groupWeightedSpeedup("coop", group, options);

    EXPECT_GT(coop, 0.85 * fair);
    EXPECT_GT(coop, 0.85 * ucp);
    EXPECT_GT(fair, 0.0);
}

TEST(Integration, TakeoverMachineryOnlyActiveUnderCooperative)
{
    const auto &group = trace::groupByName("G2-12");
    const RunOptions options = testOptions();

    const RunResult &fair =
        runGroup("fairshare", group, options);
    EXPECT_EQ(fair.donor_hits + fair.donor_misses +
                  fair.recipient_hits + fair.recipient_misses,
              0u);
    EXPECT_EQ(fair.flushed_lines, 0u);
    EXPECT_EQ(fair.repartitions, 0u);
}

TEST(Integration, FlushSeriesAccountsForAllFlushes)
{
    const auto &group = trace::groupByName("G2-12");
    const RunOptions options = testOptions();
    const RunResult &coop =
        runGroup("coop", group, options);

    std::uint64_t series_total = 0;
    for (const std::uint64_t bin : coop.flush_series) {
        series_total += bin;
    }
    EXPECT_EQ(series_total, coop.flushed_lines);
}

TEST(Integration, EveryTwoCoreGroupRunsUnderEveryScheme)
{
    const RunOptions options = testOptions();
    for (const auto &group : trace::twoCoreGroups()) {
        for (const char *scheme :
             {"unmanaged", "fairshare", "cpe", "ucp", "coop"}) {
            const RunResult &r = runGroup(scheme, group, options);
            ASSERT_EQ(r.apps.size(), 2u) << group.name;
            EXPECT_GT(r.apps[0].ipc, 0.0)
                << group.name << " " << scheme;
        }
    }
}

TEST(Integration, FourCoreGroupsRunUnderCooperative)
{
    const RunOptions options = testOptions();
    for (const char *name : {"G4-1", "G4-5", "G4-11"}) {
        const auto &group = trace::groupByName(name);
        const RunResult &r =
            runGroup("coop", group, options);
        ASSERT_EQ(r.apps.size(), 4u);
        EXPECT_LE(r.avg_ways_probed, 16.0);
        EXPECT_GT(r.avg_ways_probed, 0.0);
    }
}

TEST(Integration, HighMpkiAppsMeasureHigherMpki)
{
    // lbm (Table 3: 20.1) must measure far above povray (0.1) in the
    // same run.
    const auto &group = trace::groupByName("G2-4");
    const RunResult &r =
        runGroup("fairshare", group, testOptions());
    EXPECT_GT(r.apps[0].mpki, 5.0);  // lbm
    EXPECT_LT(r.apps[1].mpki, 2.0);  // povray
    EXPECT_GT(r.apps[0].mpki, 10.0 * r.apps[1].mpki);
}

TEST(Integration, DramTrafficConsistent)
{
    const auto &group = trace::groupByName("G2-8");
    const RunResult &r =
        runGroup("coop", group, testOptions());
    // Every LLC miss becomes a DRAM access (reads + writes >= misses
    // modulo warm-up reset boundary effects).
    std::uint64_t misses = 0;
    for (const auto &app : r.apps) {
        misses += app.llc_misses;
    }
    EXPECT_GT(r.dram_reads, 0u);
    EXPECT_EQ(r.dram_flushes, r.flushed_lines);
}
