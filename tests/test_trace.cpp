/**
 * @file
 * Tests for the synthetic workload generators and benchmark profiles.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "trace/generator.hpp"
#include "trace/spec_profiles.hpp"
#include "trace/workloads.hpp"

using namespace coopsim;
using namespace coopsim::trace;

namespace
{

StreamGeometry
smallGeometry()
{
    return StreamGeometry{128, 64};
}

} // namespace

// ---------------------------------------------------------------------------
// Class CDF construction

TEST(ClassCdf, RemainderGoesToRankZero)
{
    RankPmf pmf;
    pmf.miss_prob = 0.2;
    pmf.rank[3] = 0.1;
    const auto cdf = buildClassCdf(pmf);
    // Class 0 (new block) = 0.2; rank 0 gets the 0.7 remainder.
    EXPECT_DOUBLE_EQ(cdf[0], 0.2);
    EXPECT_DOUBLE_EQ(cdf[1], 0.9);
    EXPECT_DOUBLE_EQ(cdf[4], 1.0);
    EXPECT_DOUBLE_EQ(cdf[kMaxRank], 1.0);
}

TEST(ClassCdf, IsMonotone)
{
    RankPmf pmf;
    pmf.miss_prob = 0.1;
    for (std::uint32_t r = 0; r < kMaxRank; ++r) {
        pmf.rank[r] = 0.8 / kMaxRank;
    }
    const auto cdf = buildClassCdf(pmf);
    for (std::size_t i = 1; i < cdf.size(); ++i) {
        EXPECT_GE(cdf[i], cdf[i - 1]);
    }
}

// ---------------------------------------------------------------------------
// AppProfile analytics

TEST(AppProfile, MissRatioIsMonotoneInWays)
{
    for (const std::string &name : allSpecApps()) {
        const AppProfile &p = specProfile(name);
        for (std::uint32_t w = 1; w <= 16; ++w) {
            EXPECT_LE(p.expectedMissRatio(w), p.expectedMissRatio(w - 1))
                << name << " at " << w << " ways";
        }
    }
}

TEST(AppProfile, CalibrationTargetsTable3)
{
    // apki was derived so MPKI(solo, 8 ways) = apki * missRatio(8)
    // equals the paper's Table 3 figure.
    for (const std::string &name : allSpecApps()) {
        const AppProfile &p = specProfile(name);
        EXPECT_NEAR(p.primary.apki * p.expectedMissRatio(8),
                    p.table3_mpki, 1e-9)
            << name;
    }
}

// ---------------------------------------------------------------------------
// SyntheticStream behaviour

TEST(SyntheticStream, DeterministicForSameSeed)
{
    const AppProfile &p = specProfile("soplex");
    SyntheticStream a(p, smallGeometry(), 0, 42);
    SyntheticStream b(p, smallGeometry(), 0, 42);
    for (int i = 0; i < 2000; ++i) {
        const core::MemOp oa = a.next();
        const core::MemOp ob = b.next();
        EXPECT_EQ(oa.addr, ob.addr);
        EXPECT_EQ(oa.gap_insts, ob.gap_insts);
        EXPECT_EQ(oa.type, ob.type);
    }
}

TEST(SyntheticStream, AddressSpacesAreDisjoint)
{
    const AppProfile &p = specProfile("gobmk");
    SyntheticStream a(p, smallGeometry(), 0, 1);
    SyntheticStream b(p, smallGeometry(), 1, 1);
    std::map<Addr, int> seen;
    for (int i = 0; i < 3000; ++i) {
        seen[a.next().addr] |= 1;
        seen[b.next().addr] |= 2;
    }
    for (const auto &[addr, mask] : seen) {
        EXPECT_NE(mask, 3) << "address shared across cores: " << addr;
    }
}

TEST(SyntheticStream, WriteFractionMatchesProfile)
{
    const AppProfile &p = specProfile("lbm"); // write_fraction 0.45
    SyntheticStream s(p, smallGeometry(), 0, 7);
    int writes = 0;
    constexpr int kOps = 20000;
    for (int i = 0; i < kOps; ++i) {
        writes += s.next().type == AccessType::Write ? 1 : 0;
    }
    EXPECT_NEAR(writes / static_cast<double>(kOps), p.write_fraction,
                0.02);
}

TEST(SyntheticStream, GapMatchesApki)
{
    const AppProfile &p = specProfile("soplex");
    SyntheticStream s(p, smallGeometry(), 0, 3);
    InstCount insts = 0;
    constexpr int kOps = 30000;
    for (int i = 0; i < kOps; ++i) {
        insts += s.next().gap_insts + 1;
    }
    const double apki =
        1000.0 * kOps / static_cast<double>(insts);
    EXPECT_NEAR(apki, p.primary.apki, 0.05 * p.primary.apki);
}

TEST(SyntheticStream, OpsAreLlcLevelAndBlockMapped)
{
    const AppProfile &p = specProfile("milc");
    SyntheticStream s(p, smallGeometry(), 0, 5);
    AddrSlicer slicer(128, 64);
    for (int i = 0; i < 1000; ++i) {
        const core::MemOp op = s.next();
        EXPECT_TRUE(op.llc_level);
        EXPECT_LT(slicer.set(op.addr), 128u);
    }
}

TEST(SyntheticStream, RealizedMissRatioMatchesAnalytic)
{
    // Replay each stream against an ideal per-set LRU of w ways: the
    // measured miss ratio must track expectedMissRatio(w). This is the
    // calibration contract the whole evaluation rests on.
    for (const char *name :
         {"soplex", "gobmk", "lbm", "h264ref", "perlbench"}) {
        const AppProfile &p = specProfile(name);
        AppProfile single = p;
        single.phase_insts = 0; // isolate the primary phase
        for (const std::uint32_t ways : {2u, 4u, 8u}) {
            SyntheticStream s(single, smallGeometry(), 0, 11);
            std::vector<std::vector<Addr>> sets(128);
            std::uint64_t misses = 0;
            constexpr int kOps = 60000;
            for (int i = 0; i < kOps; ++i) {
                const Addr a = s.next().addr;
                auto &list = sets[(a >> 6) & 127];
                bool hit = false;
                for (std::size_t j = 0; j < list.size(); ++j) {
                    if (list[j] == a) {
                        list.erase(list.begin() +
                                   static_cast<std::ptrdiff_t>(j));
                        hit = true;
                        break;
                    }
                }
                if (!hit) {
                    ++misses;
                }
                list.insert(list.begin(), a);
                if (list.size() > ways) {
                    list.pop_back();
                }
            }
            const double measured =
                misses / static_cast<double>(kOps);
            const double expected =
                single.primary.pmf.miss_prob +
                [&] {
                    double tail = 0.0;
                    for (std::uint32_t r = ways; r < kMaxRank; ++r) {
                        tail += single.primary.pmf.rank[r];
                    }
                    return tail;
                }();
            EXPECT_NEAR(measured, expected, 0.03)
                << name << " at " << ways << " ways";
        }
    }
}

TEST(SyntheticStream, PhasesAlternate)
{
    AppProfile p = specProfile("gcc");
    ASSERT_TRUE(p.hasPhases());
    p.phase_insts = 5000; // quick phases for the test

    SyntheticStream s(p, smallGeometry(), 0, 9);
    // Miss floors differ (0.15 vs 0.18): measure new-block rate per
    // window and check it moves.
    std::vector<double> floors;
    std::map<Addr, bool> seen;
    for (int window = 0; window < 8; ++window) {
        int news = 0;
        int ops = 0;
        const InstCount until = (window + 1) * 5000;
        while (s.generatedInsts() < until) {
            const Addr a = s.next().addr;
            ++ops;
            if (!seen.count(a)) {
                seen[a] = true;
                ++news;
            }
        }
        floors.push_back(news / static_cast<double>(ops));
    }
    // Later windows (footprint warmed) alternate between the phases'
    // new-block rates; just require visible variation.
    double lo = 1.0;
    double hi = 0.0;
    for (std::size_t i = 2; i < floors.size(); ++i) {
        lo = std::min(lo, floors[i]);
        hi = std::max(hi, floors[i]);
    }
    EXPECT_GT(hi - lo, 0.01);
}

// ---------------------------------------------------------------------------
// Table 3 / Table 4 data

TEST(SpecProfiles, AllNineteenBenchmarksExist)
{
    EXPECT_EQ(allSpecApps().size(), 19u);
    for (const std::string &name : allSpecApps()) {
        EXPECT_EQ(specProfile(name).name, name);
    }
}

TEST(SpecProfiles, Table3Classification)
{
    // Spot-check the paper's Table 3 classes.
    EXPECT_EQ(mpkiClassOf("gobmk"), MpkiClass::High);
    EXPECT_EQ(mpkiClassOf("lbm"), MpkiClass::High);
    EXPECT_EQ(mpkiClassOf("sjeng"), MpkiClass::High);
    EXPECT_EQ(mpkiClassOf("soplex"), MpkiClass::High);
    EXPECT_EQ(mpkiClassOf("astar"), MpkiClass::Medium);
    EXPECT_EQ(mpkiClassOf("gcc"), MpkiClass::Medium);
    EXPECT_EQ(mpkiClassOf("mcf"), MpkiClass::Medium);
    EXPECT_EQ(mpkiClassOf("povray"), MpkiClass::Low);
    EXPECT_EQ(mpkiClassOf("namd"), MpkiClass::Low);
    EXPECT_EQ(mpkiClassOf("perlbench"), MpkiClass::Low);
}

TEST(SpecProfiles, ClassifierBoundaries)
{
    EXPECT_EQ(classifyMpki(5.01), MpkiClass::High);
    EXPECT_EQ(classifyMpki(5.0), MpkiClass::Medium);
    EXPECT_EQ(classifyMpki(1.01), MpkiClass::Medium);
    EXPECT_EQ(classifyMpki(1.0), MpkiClass::Low);
    EXPECT_STREQ(mpkiClassName(MpkiClass::High), "High");
}

TEST(Workloads, Table4GroupsAreComplete)
{
    EXPECT_EQ(twoCoreGroups().size(), 14u);
    EXPECT_EQ(fourCoreGroups().size(), 14u);
    for (const auto &g : twoCoreGroups()) {
        EXPECT_EQ(g.apps.size(), 2u) << g.name;
        for (const auto &app : g.apps) {
            specProfile(app); // fatal() would throw on a bad name
        }
    }
    for (const auto &g : fourCoreGroups()) {
        EXPECT_EQ(g.apps.size(), 4u) << g.name;
    }
}

TEST(Workloads, EveryTwoCoreGroupHasAHighMpkiApp)
{
    // Table 4's construction rule: at least one app with MPKI > 5.
    for (const auto &g : twoCoreGroups()) {
        bool high = false;
        for (const auto &app : g.apps) {
            high = high || mpkiClassOf(app) == MpkiClass::High;
        }
        EXPECT_TRUE(high) << g.name;
    }
}

TEST(Workloads, SpotCheckTable4Rows)
{
    EXPECT_EQ(groupByName("G2-3").apps,
              (std::vector<std::string>{"gobmk", "h264ref"}));
    EXPECT_EQ(groupByName("G2-12").apps,
              (std::vector<std::string>{"soplex", "gcc"}));
    EXPECT_EQ(groupByName("G4-13").apps,
              (std::vector<std::string>{"soplex", "gcc", "libquantum",
                                        "xalan"}));
    EXPECT_EQ(groupProfiles(groupByName("G2-1")).at(1).name, "namd");
}
