/**
 * @file
 * Tests for the parallel run executor and the bit-scan hot paths:
 *
 *  - the mask bit-scan implementations of SetAssocCache
 *    lookup/victim/validCount/ownedCount/lruValidWay agree with a
 *    straightforward linear-scan reference on random cache states and
 *    random masks;
 *  - a multi-dimensional sweep produces bit-identical RunResults on a
 *    1-thread and an N-thread executor (determinism under
 *    parallelism);
 *  - RunKey identity, memoisation, and the argument parsers.
 */

#include <gtest/gtest.h>

#include "api/cli.hpp"
#include "cache/cache.hpp"
#include "common/rng.hpp"
#include "sim/runner.hpp"

using namespace coopsim;
using namespace coopsim::sim;

namespace
{

// --------------------------------------------------------------------------
// Linear-scan reference implementations (the pre-bit-scan semantics).

cache::LookupResult
refLookup(const cache::SetAssocCache &c, Addr addr, cache::WayMask mask)
{
    const SetId set = c.slicer().set(addr);
    const Addr tag = c.slicer().tag(addr);
    for (std::uint32_t w = 0; w < c.ways(); ++w) {
        if (!((mask >> w) & 1)) {
            continue;
        }
        const cache::CacheBlock &blk = c.block(set, w);
        if (blk.valid && blk.tag == tag) {
            return {true, w};
        }
    }
    return {false, kNoWay};
}

std::uint32_t
refValidCount(const cache::SetAssocCache &c, SetId set,
              cache::WayMask mask)
{
    std::uint32_t count = 0;
    for (std::uint32_t w = 0; w < c.ways(); ++w) {
        if (((mask >> w) & 1) && c.block(set, w).valid) {
            ++count;
        }
    }
    return count;
}

std::uint32_t
refOwnedCount(const cache::SetAssocCache &c, SetId set,
              cache::WayMask mask, CoreId core)
{
    std::uint32_t count = 0;
    for (std::uint32_t w = 0; w < c.ways(); ++w) {
        const cache::CacheBlock &blk = c.block(set, w);
        if (((mask >> w) & 1) && blk.valid && blk.owner == core) {
            ++count;
        }
    }
    return count;
}

WayId
refLruValidWay(const cache::SetAssocCache &c, SetId set,
               cache::WayMask mask)
{
    WayId best = kNoWay;
    std::uint64_t best_lru = 0;
    for (std::uint32_t w = 0; w < c.ways(); ++w) {
        const cache::CacheBlock &blk = c.block(set, w);
        if (!((mask >> w) & 1) || !blk.valid) {
            continue;
        }
        if (best == kNoWay || blk.lru < best_lru) {
            best = w;
            best_lru = blk.lru;
        }
    }
    return best;
}

/** Victim under LRU policy: first invalid way, else the LRU way. */
WayId
refLruVictim(const cache::SetAssocCache &c, SetId set,
             cache::WayMask mask)
{
    for (std::uint32_t w = 0; w < c.ways(); ++w) {
        if (((mask >> w) & 1) && !c.block(set, w).valid) {
            return w;
        }
    }
    return refLruValidWay(c, set, mask);
}

} // namespace

TEST(BitScan, LowestWayMatchesLinearScan)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const auto mask = static_cast<cache::WayMask>(rng.next());
        if (mask == 0) {
            continue;
        }
        std::uint32_t linear = 0;
        while (!((mask >> linear) & 1)) {
            ++linear;
        }
        EXPECT_EQ(cache::lowestWay(mask), linear);
    }
}

TEST(BitScan, MaskedOpsMatchLinearReferenceOnRandomStates)
{
    constexpr std::uint32_t kWays = 16;
    constexpr std::uint32_t kSets = 64;
    cache::SetAssocCache c({kSets * kWays * 64ull, kWays, 64},
                           cache::ReplPolicy::Lru);
    const cache::WayMask full = cache::fullMask(kWays);
    Rng rng(12345);

    for (int step = 0; step < 5000; ++step) {
        // Mutate: insert a random tag (with random owner/dirty) or
        // invalidate, keeping plenty of both valid and invalid blocks.
        const auto set = static_cast<SetId>(rng.nextBelow(kSets));
        const auto way = static_cast<WayId>(rng.nextBelow(kWays));
        if (rng.nextBelow(10) < 7) {
            const Addr addr = c.slicer().compose(rng.nextBelow(512), set);
            c.insert(addr, set, way,
                     static_cast<CoreId>(rng.nextBelow(4)),
                     rng.nextBelow(2) == 0);
        } else {
            c.invalidate(set, way);
        }
        if (rng.nextBelow(4) == 0) {
            c.touch(set, static_cast<WayId>(rng.nextBelow(kWays)));
        }

        // Verify every masked operation against the reference.
        cache::WayMask mask = rng.next() & full;
        if (mask == 0) {
            mask = full;
        }
        const SetId qset = static_cast<SetId>(rng.nextBelow(kSets));
        const Addr qaddr =
            c.slicer().compose(rng.nextBelow(512), qset);

        const auto got = c.lookup(qaddr, mask);
        const auto want = refLookup(c, qaddr, mask);
        EXPECT_EQ(got.hit, want.hit);
        EXPECT_EQ(got.way, want.way);

        EXPECT_EQ(c.validCount(qset, mask), refValidCount(c, qset, mask));
        const auto core = static_cast<CoreId>(rng.nextBelow(4));
        EXPECT_EQ(c.ownedCount(qset, mask, core),
                  refOwnedCount(c, qset, mask, core));
        EXPECT_EQ(c.lruValidWay(qset, mask),
                  refLruValidWay(c, qset, mask));
        if (c.validCount(qset, mask) > 0 || mask != 0) {
            EXPECT_EQ(c.victim(qset, mask), refLruVictim(c, qset, mask));
        }
    }
}

namespace
{

void
expectIdentical(const RunResult &a, const RunResult &b)
{
    ASSERT_EQ(a.apps.size(), b.apps.size());
    for (std::size_t i = 0; i < a.apps.size(); ++i) {
        EXPECT_EQ(a.apps[i].name, b.apps[i].name);
        EXPECT_EQ(a.apps[i].ipc, b.apps[i].ipc);
        EXPECT_EQ(a.apps[i].insts, b.apps[i].insts);
        EXPECT_EQ(a.apps[i].cycles, b.apps[i].cycles);
        EXPECT_EQ(a.apps[i].llc_accesses, b.apps[i].llc_accesses);
        EXPECT_EQ(a.apps[i].llc_hits, b.apps[i].llc_hits);
        EXPECT_EQ(a.apps[i].llc_misses, b.apps[i].llc_misses);
        EXPECT_EQ(a.apps[i].mpki, b.apps[i].mpki);
    }
    EXPECT_EQ(a.total_cycles, b.total_cycles);
    EXPECT_EQ(a.dynamic_energy_nj, b.dynamic_energy_nj);
    EXPECT_EQ(a.data_energy_nj, b.data_energy_nj);
    EXPECT_EQ(a.static_energy_nj, b.static_energy_nj);
    EXPECT_EQ(a.avg_ways_probed, b.avg_ways_probed);
    EXPECT_EQ(a.donor_hits, b.donor_hits);
    EXPECT_EQ(a.donor_misses, b.donor_misses);
    EXPECT_EQ(a.recipient_hits, b.recipient_hits);
    EXPECT_EQ(a.recipient_misses, b.recipient_misses);
    EXPECT_EQ(a.avg_transfer_cycles, b.avg_transfer_cycles);
    EXPECT_EQ(a.completed_transfers, b.completed_transfers);
    EXPECT_EQ(a.flushed_lines, b.flushed_lines);
    EXPECT_EQ(a.repartitions, b.repartitions);
    EXPECT_EQ(a.epochs, b.epochs);
    EXPECT_EQ(a.flush_series, b.flush_series);
    EXPECT_EQ(a.flush_series_bin, b.flush_series_bin);
    EXPECT_EQ(a.dram_reads, b.dram_reads);
    EXPECT_EQ(a.dram_writebacks, b.dram_writebacks);
    EXPECT_EQ(a.dram_flushes, b.dram_flushes);
}

/** The 4-dimensional sweep the determinism test runs: scheme x group
 *  x threshold x seed, plus each group's solo baselines. */
std::vector<RunKey>
sweepKeys()
{
    RunOptions options;
    options.scale = RunScale::Test;

    std::vector<RunKey> keys;
    for (const char *group_name : {"G2-10", "G2-11", "G4-3"}) {
        const trace::WorkloadGroup &group =
            trace::groupByName(group_name);
        for (const char *scheme :
             {"fairshare", "ucp", "cpe", "coop"}) {
            for (const double threshold : {0.0, 0.05}) {
                for (const std::uint64_t seed : {42ull, 777ull}) {
                    RunOptions opts = options;
                    opts.threshold = threshold;
                    opts.seed = seed;
                    keys.push_back(groupKey(scheme, group, opts));
                }
            }
        }
        for (const std::string &app : group.apps) {
            keys.push_back(soloKey(
                app, static_cast<std::uint32_t>(group.apps.size()),
                options));
        }
    }
    return keys;
}

} // namespace

TEST(Executor, ParallelSweepIsBitIdenticalToSerial)
{
    const std::vector<RunKey> keys = sweepKeys();

    // Serial: a dedicated 1-worker executor, results collected in
    // submission order.
    RunExecutor serial(1);
    std::vector<RunResult> serial_results;
    serial_results.reserve(keys.size());
    for (const RunKey &key : keys) {
        serial_results.push_back(serial.run(key));
    }

    // Parallel: 4 workers, the whole sweep enqueued up front and
    // collected afterwards (the bench pattern).
    RunExecutor parallel(4);
    parallel.prefetch(keys);
    for (std::size_t i = 0; i < keys.size(); ++i) {
        expectIdentical(serial_results[i], parallel.run(keys[i]));
    }
}

TEST(Executor, MemoisesByKeyIdentity)
{
    RunExecutor executor(2);
    RunOptions options;
    options.scale = RunScale::Test;
    const auto &group = trace::groupByName("G2-10");
    const RunKey key = groupKey("fairshare", group, options);
    const RunResult &a = executor.run(key);
    const RunResult &b = executor.run(key);
    EXPECT_EQ(&a, &b); // same cached object

    RunOptions other = options;
    other.seed = 7;
    const RunResult &c =
        executor.run(groupKey("fairshare", group, other));
    EXPECT_NE(&a, &c);
}

TEST(Executor, SetThreadsKeepsPendingWork)
{
    RunExecutor executor(1);
    const std::vector<RunKey> keys = sweepKeys();
    executor.prefetch({keys.begin(), keys.begin() + 4});
    executor.setThreads(3);
    EXPECT_EQ(executor.threads(), 3u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_FALSE(executor.run(keys[i]).apps.empty());
    }
}

TEST(Executor, RunKeyHashSpreadsAndEqualityHolds)
{
    RunOptions options;
    options.scale = RunScale::Test;
    const auto &group = trace::groupByName("G2-10");
    const RunKey a = groupKey("fairshare", group, options);
    RunKey b = a;
    EXPECT_EQ(a, b);
    EXPECT_EQ(RunKeyHash{}(a), RunKeyHash{}(b));
    b.seed ^= 1;
    EXPECT_NE(a, b);
    EXPECT_NE(RunKeyHash{}(a), RunKeyHash{}(b));
}

TEST(Executor, SoloKeyNormalisesSchemeOnlyFields)
{
    RunOptions a;
    a.scale = RunScale::Test;
    RunOptions b = a;
    b.threshold = 0.2;
    b.threshold_mode = partition::ThresholdMode::PaperLiteral;
    b.gating = llc::GatingMode::Drowsy;
    // A threshold sweep must reuse one solo run per app.
    EXPECT_EQ(soloKey("h264ref", 2, a), soloKey("h264ref", 2, b));
}

TEST(Runner, ParseCliAcceptsBenchScaleAndRejectsUnknown)
{
    const char *bench[] = {"bench", "--scale=bench"};
    EXPECT_EQ(api::parseCli(2, const_cast<char **>(bench),
                            api::kBenchFlags, nullptr)
                  .scale,
              RunScale::Bench);

    setThrowOnFatal(true);
    const char *bad[] = {"bench", "--scale=warp9"};
    EXPECT_THROW(api::parseCli(2, const_cast<char **>(bad),
                               api::kBenchFlags, nullptr),
                 FatalError);
    setThrowOnFatal(false);
}

TEST(Runner, ParseCliThreadsParsesAndValidates)
{
    const char *none[] = {"bench"};
    EXPECT_EQ(api::parseCli(1, const_cast<char **>(none),
                            api::kBenchFlags, nullptr)
                  .threads,
              0u);
    const char *eight[] = {"bench", "--threads=8"};
    EXPECT_EQ(api::parseCli(2, const_cast<char **>(eight),
                            api::kBenchFlags, nullptr)
                  .threads,
              8u);

    setThrowOnFatal(true);
    const char *bad[] = {"bench", "--threads=banana"};
    EXPECT_THROW(api::parseCli(2, const_cast<char **>(bad),
                               api::kBenchFlags, nullptr),
                 FatalError);
    const char *zero[] = {"bench", "--threads=0"};
    EXPECT_THROW(api::parseCli(2, const_cast<char **>(zero),
                               api::kBenchFlags, nullptr),
                 FatalError);
    setThrowOnFatal(false);
}

TEST(Runner, GroupKeyRejectsUnknownSchemeName)
{
    RunOptions options;
    options.scale = RunScale::Test;
    const auto &group = trace::groupByName("G2-10");
    setThrowOnFatal(true);
    EXPECT_THROW(groupKey("warpdrive", group, options), FatalError);
    setThrowOnFatal(false);
}
