/**
 * @file
 * Unit tests for the set-associative cache substrate: storage, masked
 * lookup/victim selection, replacement policies, MSHRs and the L1.
 */

#include <gtest/gtest.h>

#include <bit>
#include <map>
#include <vector>

#include "cache/cache.hpp"
#include "cache/mshr.hpp"
#include "common/rng.hpp"

using namespace coopsim;
using namespace coopsim::cache;

namespace
{

CacheGeometry
tinyGeometry()
{
    // 16 sets x 4 ways x 64 B.
    return CacheGeometry{16 * 4 * 64, 4, 64};
}

Addr
makeAddr(Addr tag, SetId set)
{
    return (tag << (6 + 4)) | (static_cast<Addr>(set) << 6);
}

} // namespace

TEST(SetAssocCache, MissThenHitAfterInsert)
{
    SetAssocCache cache(tinyGeometry());
    const Addr addr = makeAddr(5, 3);
    const WayMask all = fullMask(4);

    EXPECT_FALSE(cache.lookup(addr, all).hit);
    const WayId way = cache.victim(3, all);
    cache.insert(addr, 3, way, 0, false);
    const auto found = cache.lookup(addr, all);
    EXPECT_TRUE(found.hit);
    EXPECT_EQ(found.way, way);
}

TEST(SetAssocCache, MaskedLookupIgnoresOtherWays)
{
    SetAssocCache cache(tinyGeometry());
    const Addr addr = makeAddr(7, 1);
    cache.insert(addr, 1, 2, 0, false);
    EXPECT_TRUE(cache.lookup(addr, WayMask{1} << 2).hit);
    EXPECT_FALSE(cache.lookup(addr, WayMask{1} << 1).hit);
    EXPECT_FALSE(cache.lookup(addr, 0b0011).hit);
}

TEST(SetAssocCache, VictimPrefersInvalidWays)
{
    SetAssocCache cache(tinyGeometry());
    cache.insert(makeAddr(1, 0), 0, 0, 0, false);
    cache.insert(makeAddr(2, 0), 0, 1, 0, false);
    const WayId victim = cache.victim(0, fullMask(4));
    EXPECT_TRUE(victim == 2 || victim == 3);
}

TEST(SetAssocCache, LruVictimIsOldest)
{
    SetAssocCache cache(tinyGeometry());
    for (WayId w = 0; w < 4; ++w) {
        cache.insert(makeAddr(w + 1, 0), 0, w, 0, false);
    }
    // Touch everything except way 2.
    cache.touch(0, 0);
    cache.touch(0, 1);
    cache.touch(0, 3);
    EXPECT_EQ(cache.victim(0, fullMask(4)), 2u);
}

TEST(SetAssocCache, VictimStaysInsideMask)
{
    SetAssocCache cache(tinyGeometry());
    for (WayId w = 0; w < 4; ++w) {
        cache.insert(makeAddr(w + 1, 5), 5, w, 0, false);
    }
    Rng rng(1);
    for (int i = 0; i < 100; ++i) {
        const WayMask mask = (rng.next() & 0xF) | 0x1; // non-empty
        const WayId victim = cache.victim(5, mask);
        EXPECT_TRUE((mask >> victim) & 1);
    }
}

TEST(SetAssocCache, InvalidateReturnsPriorState)
{
    SetAssocCache cache(tinyGeometry());
    cache.insert(makeAddr(9, 2), 2, 1, 3, true);
    const CacheBlock old = cache.invalidate(2, 1);
    EXPECT_TRUE(old.valid);
    EXPECT_TRUE(old.dirty);
    EXPECT_EQ(old.owner, 3u);
    EXPECT_FALSE(cache.block(2, 1).valid);
}

TEST(SetAssocCache, BlockAddrReconstructs)
{
    SetAssocCache cache(tinyGeometry());
    const Addr addr = makeAddr(11, 6) + 17; // unaligned input
    const Addr aligned = cache.slicer().blockAlign(addr);
    cache.insert(aligned, 6, 0, 0, false);
    EXPECT_EQ(cache.blockAddr(6, 0), aligned);
}

TEST(SetAssocCache, OwnedAndValidCounts)
{
    SetAssocCache cache(tinyGeometry());
    cache.insert(makeAddr(1, 4), 4, 0, 0, false);
    cache.insert(makeAddr(2, 4), 4, 1, 1, false);
    cache.insert(makeAddr(3, 4), 4, 2, 1, false);
    const WayMask all = fullMask(4);
    EXPECT_EQ(cache.validCount(4, all), 3u);
    EXPECT_EQ(cache.ownedCount(4, all, 1), 2u);
    EXPECT_EQ(cache.ownedCount(4, all, 0), 1u);
    EXPECT_EQ(cache.ownedCount(4, 0b0110, 1), 2u);
    EXPECT_EQ(cache.ownedCount(4, 0b0010, 1), 1u);
}

TEST(SetAssocCache, LruValidWayRespectsMaskAndValidity)
{
    SetAssocCache cache(tinyGeometry());
    EXPECT_EQ(cache.lruValidWay(0, fullMask(4)), kNoWay);
    cache.insert(makeAddr(1, 0), 0, 1, 0, false);
    cache.insert(makeAddr(2, 0), 0, 3, 0, false);
    EXPECT_EQ(cache.lruValidWay(0, fullMask(4)), 1u);
    EXPECT_EQ(cache.lruValidWay(0, WayMask{1} << 3), 3u);
}

// ---------------------------------------------------------------------------
// Replacement policies

TEST(Replacement, RandomVictimUniformOverMask)
{
    SetAssocCache cache(tinyGeometry(), ReplPolicy::Random, 42);
    for (WayId w = 0; w < 4; ++w) {
        cache.insert(makeAddr(w + 1, 0), 0, w, 0, false);
    }
    std::map<WayId, int> counts;
    for (int i = 0; i < 4000; ++i) {
        ++counts[cache.victim(0, 0b1011)];
    }
    EXPECT_EQ(counts.count(2), 0u); // way 2 excluded by mask
    for (const WayId w : {0u, 1u, 3u}) {
        EXPECT_NEAR(counts[w], 4000 / 3, 150);
    }
}

TEST(Replacement, MruVictimIsNewest)
{
    SetAssocCache cache(tinyGeometry(), ReplPolicy::Mru, 1);
    for (WayId w = 0; w < 4; ++w) {
        cache.insert(makeAddr(w + 1, 0), 0, w, 0, false);
    }
    cache.touch(0, 1);
    EXPECT_EQ(cache.victim(0, fullMask(4)), 1u);
}

// ---------------------------------------------------------------------------
// LRU stack property (the foundation of utility monitoring)

TEST(SetAssocCache, LruStackPropertyHolds)
{
    // Replay one random reference stream against caches of increasing
    // associativity; hits must be monotone non-decreasing in ways.
    Rng rng(2024);
    std::vector<Addr> stream;
    for (int i = 0; i < 20000; ++i) {
        stream.push_back(makeAddr(rng.nextBelow(64), 0));
    }

    std::uint64_t prev_hits = 0;
    for (std::uint32_t ways = 1; ways <= 16; ways *= 2) {
        SetAssocCache cache(CacheGeometry{ways * 64ull, ways, 64});
        const WayMask all = fullMask(ways);
        std::uint64_t hits = 0;
        for (const Addr addr : stream) {
            const auto found = cache.lookup(addr, all);
            if (found.hit) {
                ++hits;
                cache.touch(0, found.way);
            } else {
                cache.insert(addr, 0, cache.victim(0, all), 0, false);
            }
        }
        EXPECT_GE(hits, prev_hits) << "ways=" << ways;
        prev_hits = hits;
    }
}

// ---------------------------------------------------------------------------
// MSHR

TEST(Mshr, CoalescesSameBlock)
{
    MshrFile mshr(4);
    const auto first = mshr.allocate(0x100, 0, 500);
    EXPECT_FALSE(first.coalesced);
    EXPECT_EQ(first.ready_at, 500u);
    const auto second = mshr.allocate(0x100, 10, 999);
    EXPECT_TRUE(second.coalesced);
    EXPECT_EQ(second.ready_at, 500u);
}

TEST(Mshr, FullFileReportsEarliestFree)
{
    MshrFile mshr(2);
    mshr.allocate(0x100, 0, 300);
    mshr.allocate(0x200, 0, 500);
    const auto third = mshr.allocate(0x300, 0, 700);
    EXPECT_TRUE(third.full);
    EXPECT_EQ(third.ready_at, 300u);
}

TEST(Mshr, EntriesRetireWithTime)
{
    MshrFile mshr(2);
    mshr.allocate(0x100, 0, 300);
    mshr.allocate(0x200, 0, 500);
    EXPECT_EQ(mshr.occupancy(0), 2u);
    EXPECT_EQ(mshr.occupancy(300), 1u);
    const auto third = mshr.allocate(0x300, 301, 900);
    EXPECT_FALSE(third.full);
    EXPECT_EQ(mshr.occupancy(301), 2u);
    EXPECT_EQ(mshr.occupancy(1000), 0u);
    EXPECT_EQ(mshr.earliestReady(1000), kCycleMax);
}

// ---------------------------------------------------------------------------
// L1

TEST(L1Cache, HitAfterFill)
{
    L1Cache l1(CacheGeometry{4096, 4, 64});
    EXPECT_FALSE(l1.access(0x1000, AccessType::Read).hit);
    EXPECT_TRUE(l1.access(0x1000, AccessType::Read).hit);
    EXPECT_EQ(l1.hits(), 1u);
    EXPECT_EQ(l1.misses(), 1u);
}

TEST(L1Cache, DirtyEvictionReportsWriteback)
{
    // Direct-mapped single-set L1: 1 set x 2 ways.
    L1Cache l1(CacheGeometry{2 * 64, 2, 64});
    l1.access(0x0000, AccessType::Write);
    l1.access(0x1000, AccessType::Read);
    const L1Result third = l1.access(0x2000, AccessType::Read);
    EXPECT_TRUE(third.writeback);
    EXPECT_EQ(third.writeback_addr, 0x0000u);
}

TEST(L1Cache, CleanEvictionHasNoWriteback)
{
    L1Cache l1(CacheGeometry{2 * 64, 2, 64});
    l1.access(0x0000, AccessType::Read);
    l1.access(0x1000, AccessType::Read);
    EXPECT_FALSE(l1.access(0x2000, AccessType::Read).writeback);
}
