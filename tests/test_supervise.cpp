/**
 * @file
 * Tests for the fault-tolerant shard supervisor (src/supervise/):
 *
 *  - the COOPSIM_FAULT spec parser accepts the four kinds and rejects
 *    malformed specs with a descriptive error, and arming respects the
 *    (shard, attempt) identity match;
 *  - backoffDelayMs() is zero for the first attempt, deterministic,
 *    grows exponentially and never exceeds the cap;
 *  - superviseShards() drives the injected launch/validate/sleep hooks
 *    through every recovery path: first-try success, crash-then-
 *    recover, invalid-store retry, timeout retry, retries exhausted —
 *    with exact attempt accounting and without aborting sibling
 *    shards;
 *  - runProcess() reports real exit codes, signal deaths and
 *    SIGKILL-on-timeout for /bin/sh children, and captures their
 *    output in the log file.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>

#include "common/logging.hpp"
#include "supervise/fault.hpp"
#include "supervise/supervisor.hpp"

using namespace coopsim;
using namespace coopsim::supervise;

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Fault spec parsing and arming

TEST(FaultSpec, ParsesEveryKindAndRoundTripsNames)
{
    FaultSpec spec;
    std::string error;
    ASSERT_TRUE(tryParseFaultSpec("crash:1:2", spec, error)) << error;
    EXPECT_EQ(spec.kind, FaultKind::Crash);
    EXPECT_EQ(spec.shard, 1u);
    EXPECT_EQ(spec.attempt, 2u);

    for (const FaultKind kind :
         {FaultKind::Crash, FaultKind::Hang, FaultKind::CorruptStore,
          FaultKind::PartialWrite}) {
        const std::string text =
            std::string(faultKindName(kind)) + ":0:1";
        ASSERT_TRUE(tryParseFaultSpec(text, spec, error)) << text;
        EXPECT_EQ(spec.kind, kind);
    }
    EXPECT_STREQ(faultKindName(FaultKind::None), "none");
}

TEST(FaultSpec, RejectsMalformedSpecsWithDescriptiveErrors)
{
    FaultSpec spec;
    std::string error;
    // Wrong shape.
    EXPECT_FALSE(tryParseFaultSpec("", spec, error));
    EXPECT_FALSE(tryParseFaultSpec("crash", spec, error));
    EXPECT_FALSE(tryParseFaultSpec("crash:1", spec, error));
    EXPECT_FALSE(tryParseFaultSpec("crash:1:2:3", spec, error));
    // Unknown kind names the known ones.
    EXPECT_FALSE(tryParseFaultSpec("krash:1:1", spec, error));
    EXPECT_NE(error.find("corrupt-store"), std::string::npos);
    // Non-numeric / out-of-range pieces.
    EXPECT_FALSE(tryParseFaultSpec("crash:x:1", spec, error));
    EXPECT_FALSE(tryParseFaultSpec("crash:1:y", spec, error));
    EXPECT_FALSE(tryParseFaultSpec("crash:-1:1", spec, error));
    // Attempts are 1-based.
    EXPECT_FALSE(tryParseFaultSpec("crash:1:0", spec, error));
    EXPECT_NE(error.find("1-based"), std::string::npos);
}

TEST(FaultSpec, ArmsOnlyOnIdentityMatchAndConsumesOnce)
{
    setQuiet(true);
    disarmFaults();
    ::setenv(kFaultEnv, "corrupt-store:2:3", 1);

    armFaultsFromEnv(1, 3); // wrong shard
    EXPECT_EQ(armedFault(), FaultKind::None);
    armFaultsFromEnv(2, 1); // wrong attempt
    EXPECT_EQ(armedFault(), FaultKind::None);
    armFaultsFromEnv(2, 3); // match
    EXPECT_EQ(armedFault(), FaultKind::CorruptStore);

    // consumeFault fires exactly once, and only for the armed kind.
    EXPECT_FALSE(consumeFault(FaultKind::PartialWrite));
    EXPECT_TRUE(consumeFault(FaultKind::CorruptStore));
    EXPECT_FALSE(consumeFault(FaultKind::CorruptStore));
    EXPECT_EQ(armedFault(), FaultKind::None);

    // A malformed value must not silently run fault-free.
    ::setenv(kFaultEnv, "nonsense", 1);
    setThrowOnFatal(true);
    EXPECT_THROW(armFaultsFromEnv(0, 1), FatalError);
    setThrowOnFatal(false);

    ::unsetenv(kFaultEnv);
    disarmFaults();
    setQuiet(false);
}

// ---------------------------------------------------------------------------
// Backoff

TEST(Backoff, FirstAttemptIsImmediateThenExponentialAndCapped)
{
    RetryPolicy policy;
    policy.base_delay_ms = 100;
    policy.max_delay_ms = 1000;

    EXPECT_EQ(backoffDelayMs(policy, 0, 1), 0u);

    // Deterministic: same (shard, attempt) -> same delay.
    EXPECT_EQ(backoffDelayMs(policy, 3, 2), backoffDelayMs(policy, 3, 2));
    // Jittered: different shards decorrelate (attempt 3's span is
    // wide enough that at least one of these differs).
    const unsigned a = backoffDelayMs(policy, 0, 3);
    const unsigned b = backoffDelayMs(policy, 1, 3);
    const unsigned c = backoffDelayMs(policy, 2, 3);
    EXPECT_TRUE(a != b || b != c);

    // Base window and growth: attempt 2 in [base, base*1.25],
    // attempt 3 in [2*base, 2.5*base].
    const unsigned second = backoffDelayMs(policy, 5, 2);
    EXPECT_GE(second, 100u);
    EXPECT_LE(second, 125u);
    const unsigned third = backoffDelayMs(policy, 5, 3);
    EXPECT_GE(third, 200u);
    EXPECT_LE(third, 250u);

    // Never exceeds the cap, even deep into the retry schedule.
    for (unsigned attempt = 2; attempt < 40; ++attempt) {
        EXPECT_LE(backoffDelayMs(policy, 7, attempt), 1000u)
            << "attempt " << attempt;
    }
}

// ---------------------------------------------------------------------------
// Supervision state machine (injected outcomes, no processes)

namespace
{

ProcessResult
exitWith(int code)
{
    ProcessResult r;
    r.exit_code = code;
    r.wall_s = 0.01;
    return r;
}

RetryPolicy
fastPolicy(unsigned attempts)
{
    RetryPolicy policy;
    policy.max_attempts = attempts;
    policy.base_delay_ms = 10;
    policy.max_delay_ms = 50;
    return policy;
}

} // namespace

TEST(Supervise, AllShardsSucceedFirstTry)
{
    const SuperviseReport report = superviseShards(
        4, fastPolicy(3),
        [](unsigned, unsigned) { return exitWith(0); }, {},
        [](unsigned) {});
    EXPECT_TRUE(report.allSucceeded());
    EXPECT_EQ(report.totalAttempts(), 4u);
    EXPECT_TRUE(report.failedShards().empty());
    for (const ShardReport &shard : report.shards) {
        ASSERT_EQ(shard.attempts.size(), 1u);
        EXPECT_EQ(shard.attempts[0].exit_code, 0);
    }
}

TEST(Supervise, CrashedShardIsRetriedWithBackoffOthersUnaffected)
{
    std::atomic<unsigned> shard1_attempts{0};
    std::vector<unsigned> slept;
    std::mutex slept_mutex;
    const SuperviseReport report = superviseShards(
        3, fastPolicy(3),
        [&](unsigned shard, unsigned) {
            if (shard == 1 && ++shard1_attempts == 1) {
                return exitWith(kCrashExitCode);
            }
            return exitWith(0);
        },
        {},
        [&](unsigned delay) {
            const std::lock_guard<std::mutex> lock(slept_mutex);
            slept.push_back(delay);
        });
    EXPECT_TRUE(report.allSucceeded());
    EXPECT_EQ(report.totalAttempts(), 4u);
    EXPECT_EQ(report.shards[1].attempts.size(), 2u);
    EXPECT_EQ(report.shards[1].attempts[0].exit_code, kCrashExitCode);
    EXPECT_EQ(report.shards[1].attempts[1].exit_code, 0);
    // Exactly one backoff sleep, of the deterministic delay.
    ASSERT_EQ(slept.size(), 1u);
    EXPECT_EQ(slept[0], backoffDelayMs(fastPolicy(3), 1, 2));
}

TEST(Supervise, InvalidStoreAndTimeoutConsumeAttempts)
{
    setQuiet(true);
    // Shard 0: exits 0 but fails validation once (torn store), then
    // passes. Shard 1: times out once, then succeeds.
    std::atomic<unsigned> validations{0};
    std::atomic<unsigned> shard1_attempts{0};
    const SuperviseReport report = superviseShards(
        2, fastPolicy(3),
        [&](unsigned shard, unsigned) {
            if (shard == 1 && ++shard1_attempts == 1) {
                ProcessResult r = exitWith(128 + 9);
                r.timed_out = true;
                return r;
            }
            return exitWith(0);
        },
        [&](unsigned shard, std::string &why) {
            if (shard == 0 && validations++ == 0) {
                why = "half the slice missing";
                return false;
            }
            return true;
        },
        [](unsigned) {});
    setQuiet(false);
    EXPECT_TRUE(report.allSucceeded());
    ASSERT_EQ(report.shards[0].attempts.size(), 2u);
    EXPECT_TRUE(report.shards[0].attempts[0].invalid_store);
    EXPECT_FALSE(report.shards[0].attempts[1].invalid_store);
    ASSERT_EQ(report.shards[1].attempts.size(), 2u);
    EXPECT_TRUE(report.shards[1].attempts[0].timed_out);
}

TEST(Supervise, ExhaustedRetriesReportFailureWithoutAbortingSweep)
{
    const SuperviseReport report = superviseShards(
        3, fastPolicy(2),
        [](unsigned shard, unsigned) {
            return exitWith(shard == 2 ? 1 : 0);
        },
        {}, [](unsigned) {});
    EXPECT_FALSE(report.allSucceeded());
    EXPECT_EQ(report.failedShards(), std::vector<unsigned>{2u});
    // The failed shard burned every attempt; the others one each.
    EXPECT_EQ(report.shards[2].attempts.size(), 2u);
    EXPECT_EQ(report.totalAttempts(), 4u);
    EXPECT_TRUE(report.shards[0].succeeded);
    EXPECT_TRUE(report.shards[1].succeeded);
}

TEST(Supervise, ReportNamesEveryAttemptAndOutcome)
{
    SuperviseReport report;
    report.shards.resize(2);
    report.shards[0].shard = 0;
    report.shards[0].succeeded = true;
    report.shards[0].attempts = {{1, 0, false, false, 0.5}};
    report.shards[1].shard = 1;
    report.shards[1].attempts = {{1, 43, false, false, 0.1},
                                 {2, 137, true, false, 3.0}};

    char *buffer = nullptr;
    std::size_t size = 0;
    std::FILE *out = ::open_memstream(&buffer, &size);
    ASSERT_NE(out, nullptr);
    printSuperviseReport(report, out);
    std::fclose(out);
    const std::string text(buffer, size);
    std::free(buffer);

    EXPECT_NE(text.find("2 shards, 3 attempts, 1 ok, 1 failed"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("shard 0: ok after 1 attempt(s)"),
              std::string::npos);
    EXPECT_NE(text.find("shard 1: FAILED after 2 attempt(s)"),
              std::string::npos);
    EXPECT_NE(text.find("attempt 1: exit=43"), std::string::npos);
    EXPECT_NE(text.find("attempt 2: timeout=137"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Real processes

TEST(RunProcess, ReportsExitCodesSignalsAndTimeout)
{
    const ProcessResult ok =
        runProcess({"/bin/sh", "-c", "exit 0"}, {}, 10.0);
    EXPECT_EQ(ok.exit_code, 0);
    EXPECT_FALSE(ok.timed_out);

    const ProcessResult seven =
        runProcess({"/bin/sh", "-c", "exit 7"}, {}, 10.0);
    EXPECT_EQ(seven.exit_code, 7);

    // Signal death is reported as 128+sig.
    const ProcessResult killed =
        runProcess({"/bin/sh", "-c", "kill -TERM $$"}, {}, 10.0);
    EXPECT_EQ(killed.exit_code, 128 + 15);

    // A hung child is SIGKILLed at the deadline.
    const ProcessResult hung =
        runProcess({"/bin/sh", "-c", "sleep 30"}, {}, 0.2);
    EXPECT_TRUE(hung.timed_out);
    EXPECT_GE(hung.wall_s, 0.2);
    EXPECT_LT(hung.wall_s, 5.0);
}

TEST(RunProcess, PassesEnvAndCapturesOutputInLogFile)
{
    const fs::path dir =
        fs::path(testing::TempDir()) / "coopsim_supervise_log";
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string log = (dir / "worker.log").string();

    const ProcessResult r = runProcess(
        {"/bin/sh", "-c", "echo marker-$COOPSIM_ATTEMPT; echo err >&2"},
        {std::string(kAttemptEnv) + "=5"}, 10.0, log);
    EXPECT_EQ(r.exit_code, 0);

    std::ifstream in(log);
    std::stringstream contents;
    contents << in.rdbuf();
    // Both streams land in the log; the supervisor's own stdout stays
    // clean.
    EXPECT_NE(contents.str().find("marker-5"), std::string::npos);
    EXPECT_NE(contents.str().find("err"), std::string::npos);
}
