/**
 * @file
 * Tests for the declarative experiment API (src/api/):
 *
 *  - string-keyed registry lookup, unknown-name diagnostics and
 *    duplicate rejection;
 *  - ExperimentSpec -> RunKey cross-product expansion (counts, solo
 *    deduplication, solos axis);
 *  - canonical text encoding round-trips for specs and RunKeys
 *    (parse(format(x)) == x, including non-representable decimals);
 *  - the unified CLI parser (uniform unknown-flag rejection);
 *  - drained-executor clearRunCache();
 *  - a custom scheme registered by name running end-to-end through
 *    the executor.
 */

#include <gtest/gtest.h>

#include <coopsim/experiment.hpp>

#include "llc/schemes.hpp"
#include "sim/runner.hpp"

using namespace coopsim;
using namespace coopsim::api;

namespace
{

/** A spec that resolves quickly at test scale. */
ExperimentSpec
tinySpec()
{
    ExperimentSpec spec;
    spec.name = "tiny";
    spec.layout = "none";
    spec.with_solo = false;
    spec.schemes = {"fairshare"};
    spec.groups = {"G2-10"};
    spec.scale = "test";
    return spec;
}

} // namespace

// ---------------------------------------------------------------------------
// Registries

TEST(Registry, BuiltinSchemesAreRegisteredInLegendOrder)
{
    const std::vector<std::string> names = schemeRegistry().names();
    ASSERT_GE(names.size(), 5u);
    EXPECT_EQ(names[0], "unmanaged");
    EXPECT_EQ(names[1], "fairshare");
    EXPECT_EQ(names[2], "ucp");
    EXPECT_EQ(names[3], "cpe");
    EXPECT_EQ(names[4], "coop");
    EXPECT_EQ(schemeLabel("coop"), "Cooperative");
    EXPECT_EQ(schemeLabel("cpe"), "DynamicCPE");
}

TEST(Registry, UnknownNamesAreFatalWithDiagnostics)
{
    setThrowOnFatal(true);
    EXPECT_THROW(schemeRegistry().get("co-op"), FatalError);
    EXPECT_THROW(replPolicyRegistry().get("plru"), FatalError);
    EXPECT_THROW(gatingModeRegistry().get("clockgate"), FatalError);
    EXPECT_THROW(thresholdModeRegistry().get("exact"), FatalError);
    EXPECT_THROW(scaleRegistry().get("huge"), FatalError);
    EXPECT_THROW(workloadRegistry().get("G3-1"), FatalError);
    EXPECT_THROW(metricRegistry().get("latency"), FatalError);
    setThrowOnFatal(false);
    EXPECT_EQ(schemeRegistry().find("co-op"), nullptr);
    EXPECT_TRUE(schemeRegistry().contains("ucp"));
}

TEST(Registry, DuplicateRegistrationIsFatal)
{
    setThrowOnFatal(true);
    EXPECT_THROW(registerScheme("coop", "Duplicate",
                                [](const llc::LlcConfig &config,
                                   mem::DramModel &dram) {
                                    return llc::makeLlc(
                                        llc::Scheme::Cooperative,
                                        config, dram);
                                }),
                 FatalError);
    setThrowOnFatal(false);
}

TEST(Registry, EnumKeysRoundTrip)
{
    EXPECT_EQ(replPolicyKeyOf(cache::ReplPolicy::Random), "random");
    EXPECT_EQ(gatingModeKeyOf(llc::GatingMode::Drowsy), "drowsy");
    EXPECT_EQ(thresholdModeKeyOf(
                  partition::ThresholdMode::PaperLiteral),
              "paperliteral");
    EXPECT_EQ(scaleKeyOf(sim::RunScale::Paper), "paper");
    EXPECT_EQ(replPolicyRegistry().get("mru"), cache::ReplPolicy::Mru);
}

TEST(Registry, WorkloadGlobsResolve)
{
    EXPECT_EQ(resolveWorkloads("G2-*").size(), 14u);
    EXPECT_EQ(resolveWorkloads("G4-*").size(), 14u);
    const auto exact = resolveWorkloads("G4-7");
    ASSERT_EQ(exact.size(), 1u);
    EXPECT_EQ(exact[0].name, "G4-7");
    setThrowOnFatal(true);
    EXPECT_THROW(resolveWorkloads("G9-*"), FatalError);
    setThrowOnFatal(false);
}

// ---------------------------------------------------------------------------
// Spec expansion

TEST(Spec, ExpandsTheCrossProductAndDedupesSolos)
{
    ExperimentSpec spec;
    spec.layout = "none";
    spec.schemes = {"fairshare", "coop"};
    // G2-10 = {sjeng, calculix}, G2-11 = {sjeng, xalan}: three
    // distinct apps, one shared.
    spec.groups = {"G2-10", "G2-11"};
    spec.thresholds = {0.0, 0.05};
    spec.seeds = {1, 2};
    spec.scale = "test";

    const std::vector<sim::RunKey> keys = expandSpec(spec);
    std::size_t group_keys = 0;
    std::size_t solo_keys = 0;
    for (const sim::RunKey &key : keys) {
        (key.kind == sim::RunKey::Kind::Group ? group_keys
                                              : solo_keys)++;
    }
    // 2 groups x 2 schemes x 2 thresholds x 2 seeds.
    EXPECT_EQ(group_keys, 16u);
    // 3 distinct (app, cores) pairs x 2 seeds; the threshold axis is
    // normalised away for solos.
    EXPECT_EQ(solo_keys, 6u);
}

TEST(Spec, SolosAxisExpandsWildcardAtSoloCores)
{
    ExperimentSpec spec = tinySpec();
    spec.schemes = {};
    spec.groups = {};
    spec.solos = {"*"};
    spec.solo_cores = 4;
    const std::vector<sim::RunKey> keys = expandSpec(spec);
    EXPECT_EQ(keys.size(), trace::allSpecApps().size());
    for (const sim::RunKey &key : keys) {
        EXPECT_EQ(key.kind, sim::RunKey::Kind::Solo);
        EXPECT_EQ(key.num_cores, 4u);
        EXPECT_EQ(key.scheme, "unmanaged");
    }
}

TEST(Spec, ValidateRejectsUnknownAxisNames)
{
    setThrowOnFatal(true);
    {
        ExperimentSpec spec = tinySpec();
        spec.schemes = {"fairshare", "turbo"};
        EXPECT_THROW(validateSpec(spec), FatalError);
    }
    {
        ExperimentSpec spec = tinySpec();
        spec.layout = "pie-chart";
        EXPECT_THROW(validateSpec(spec), FatalError);
    }
    {
        ExperimentSpec spec = tinySpec();
        spec.layout = "schemes";
        spec.baseline = "ucp"; // not in the schemes axis
        EXPECT_THROW(validateSpec(spec), FatalError);
    }
    {
        ExperimentSpec spec = tinySpec();
        spec.scale = "gigantic";
        EXPECT_THROW(validateSpec(spec), FatalError);
    }
    setThrowOnFatal(false);
}

// ---------------------------------------------------------------------------
// Canonical encoding

TEST(SpecEncoding, FormatParseRoundTripsDefaults)
{
    const ExperimentSpec spec;
    EXPECT_EQ(parseSpec(formatSpec(spec)), spec);
}

TEST(SpecEncoding, FormatParseRoundTripsEveryField)
{
    ExperimentSpec spec;
    spec.name = "fig99";
    spec.title = "A title with    spaces and: punctuation";
    spec.layout = "thresholds";
    spec.metric = "static_energy";
    spec.baseline = "0.1";
    spec.higher_better = false;
    spec.with_solo = false;
    spec.schemes = {"coop", "ucp"};
    spec.groups = {"G2-*", "G4-3", "G8-*"};
    spec.cores = {2, 8};
    // 1/3 and 0.1 are not exactly representable in binary64; the
    // encoding must still round-trip them bit-exactly.
    spec.thresholds = {0.0, 1.0 / 3.0, 0.1};
    spec.threshold_modes = {"paperliteral", "missratio"};
    spec.partitioners = {"greedy", "equalshare"};
    spec.repl = {"mru", "random"};
    spec.gating = {"drowsy"};
    spec.seeds = {0, 18446744073709551615ull};
    spec.scale = "paper";
    spec.solos = {"mcf", "*"};
    spec.solo_cores = 4;
    EXPECT_EQ(parseSpec(formatSpec(spec)), spec);
}

TEST(SpecEncoding, ParseRejectsUnknownKeysAndBadMagic)
{
    setThrowOnFatal(true);
    EXPECT_THROW(parseSpec("bogus v1\n"), FatalError);
    EXPECT_THROW(parseSpec("coopsim-spec v1\nschmes coop\n"),
                 FatalError);
    EXPECT_THROW(parseSpec("coopsim-spec v1\nthresholds banana\n"),
                 FatalError);
    setThrowOnFatal(false);
}

TEST(SpecEncoding, HandWrittenSpecsKeepDefaultsForOmittedKeys)
{
    const ExperimentSpec spec = parseSpec("coopsim-spec v1\n"
                                          "# comment lines are fine\n"
                                          "name quick\n"
                                          "groups G2-3\n");
    EXPECT_EQ(spec.name, "quick");
    EXPECT_EQ(spec.groups, std::vector<std::string>{"G2-3"});
    EXPECT_EQ(spec.metric, "speedup");   // default retained
    EXPECT_EQ(spec.scale, "bench");      // default retained
}

TEST(RunKeyEncoding, GroupAndSoloKeysRoundTrip)
{
    sim::RunOptions options;
    options.scale = sim::RunScale::Test;
    options.threshold = 1.0 / 3.0;
    options.threshold_mode = partition::ThresholdMode::PaperLiteral;
    options.partitioner = partition::Partitioner::GreedyUtility;
    options.repl = cache::ReplPolicy::Mru;
    options.gating = llc::GatingMode::Drowsy;
    options.seed = 1234567890123456789ull;

    const sim::RunKey group = sim::groupKey(
        "cpe", trace::groupByName("G4-3"), options);
    EXPECT_EQ(parseRunKey(formatRunKey(group)), group);

    const sim::RunKey solo = sim::soloKey("h264ref", 2, options);
    EXPECT_EQ(parseRunKey(formatRunKey(solo)), solo);
}

TEST(RunKeyEncoding, ParseRejectsMalformedLines)
{
    setThrowOnFatal(true);
    EXPECT_THROW(parseRunKey("run scheme=coop"), FatalError);
    EXPECT_THROW(parseRunKey("group scheme=warp"), FatalError);
    EXPECT_THROW(parseRunKey("group bogus"), FatalError);
    EXPECT_THROW(parseRunKey("group color=red"), FatalError);
    setThrowOnFatal(false);
}

// ---------------------------------------------------------------------------
// CLI parsing

TEST(Cli, RejectsUnknownAndDisallowedFlagsUniformly)
{
    setThrowOnFatal(true);
    {
        // The motivating typo: --thread= (no s) must not be silently
        // ignored.
        const char *argv[] = {"bench", "--thread=4"};
        EXPECT_THROW(
            parseCli(2, const_cast<char **>(argv), kBenchFlags, ""),
            FatalError);
    }
    {
        // A real flag the binary did not opt into is rejected too.
        const char *argv[] = {"bench", "--csv"};
        EXPECT_THROW(
            parseCli(2, const_cast<char **>(argv), kBenchFlags, ""),
            FatalError);
    }
    {
        // Positional arguments need the positional capability.
        const char *argv[] = {"bench", "G2-3"};
        EXPECT_THROW(
            parseCli(2, const_cast<char **>(argv), kBenchFlags, ""),
            FatalError);
    }
    setThrowOnFatal(false);
}

TEST(Cli, ParsesAllowedFlagsAndValidatesValues)
{
    const char *argv[] = {"cli",           "--scale=test",
                          "--threads=8",   "--scheme=ucp",
                          "--group=G4-2",  "--threshold=0.125",
                          "--seed=7",      "--csv",
                          "--spec=x.spec", "G2-9"};
    const CliOptions options =
        parseCli(10, const_cast<char **>(argv), kAllFlags, "");
    EXPECT_EQ(options.scale, sim::RunScale::Test);
    EXPECT_TRUE(options.scale_set);
    EXPECT_EQ(options.scale_name, "test");
    EXPECT_EQ(options.threads, 8u);
    EXPECT_EQ(options.scheme, "ucp");
    EXPECT_EQ(options.group, "G4-2");
    EXPECT_EQ(options.threshold.value(), 0.125);
    EXPECT_EQ(options.seed.value(), 7u);
    EXPECT_TRUE(options.csv);
    EXPECT_EQ(options.spec_path, "x.spec");
    ASSERT_EQ(options.positional.size(), 1u);
    EXPECT_EQ(options.positional[0], "G2-9");

    setThrowOnFatal(true);
    const char *bad_scale[] = {"cli", "--scale=warp9"};
    EXPECT_THROW(
        parseCli(2, const_cast<char **>(bad_scale), kAllFlags, ""),
        FatalError);
    const char *bad_threads[] = {"cli", "--threads=0"};
    EXPECT_THROW(
        parseCli(2, const_cast<char **>(bad_threads), kAllFlags, ""),
        FatalError);
    setThrowOnFatal(false);
}

TEST(Cli, ShardFlagParsesStrictlyAndRejectsBadSlices)
{
    {
        const char *argv[] = {"cli", "--shard=2/5"};
        const CliOptions options =
            parseCli(2, const_cast<char **>(argv), kAllFlags, "");
        EXPECT_TRUE(options.shard_set);
        EXPECT_EQ(options.shard_index, 2u);
        EXPECT_EQ(options.shard_count, 5u);
    }
    setThrowOnFatal(true);
    for (const char *value :
         {"--shard=2/2",     // index must be < count
          "--shard=5/2",     //
          "--shard=0/0",     // zero shards
          "--shard=0/70000", // above the 65536 cap
          "--shard=x/2",     // non-numeric index
          "--shard=0/y",     // non-numeric count
          "--shard=-1/2",    // negative (would wrap via strtoull)
          "--shard=02",      // missing slash
          "--shard=/2",      // empty index
          "--shard=0/",      // empty count
          "--shard="}) {
        const char *argv[] = {"cli", value};
        EXPECT_THROW(
            parseCli(2, const_cast<char **>(argv), kAllFlags, ""),
            FatalError)
            << value;
    }
    setThrowOnFatal(false);
}

TEST(Cli, SuperviseFlagsParseAndValidate)
{
    {
        const char *argv[] = {"cli", "--supervise", "--shards=8",
                              "--shard-timeout=2.5",
                              "--shard-retries=5"};
        const CliOptions options =
            parseCli(5, const_cast<char **>(argv), kAllFlags, "");
        EXPECT_TRUE(options.supervise);
        EXPECT_EQ(options.shards, 8u);
        EXPECT_EQ(options.shard_timeout_s, 2.5);
        EXPECT_EQ(options.shard_retries, 5u);
    }
    {
        // Defaults when not given.
        const char *argv[] = {"cli", "--supervise"};
        const CliOptions options =
            parseCli(2, const_cast<char **>(argv), kAllFlags, "");
        EXPECT_EQ(options.shards, 0u);
        EXPECT_EQ(options.shard_timeout_s, 900.0);
        EXPECT_EQ(options.shard_retries, 3u);
    }
    setThrowOnFatal(true);
    for (const char *value :
         {"--shards=0", "--shards=70000", "--shards=x",
          "--shard-timeout=-1", "--shard-timeout=abc",
          "--shard-retries=0", "--shard-retries=101"}) {
        const char *argv[] = {"cli", value};
        EXPECT_THROW(
            parseCli(2, const_cast<char **>(argv), kAllFlags, ""),
            FatalError)
            << value;
    }
    // A bench that did not opt into supervision rejects the flags.
    const char *argv[] = {"bench", "--supervise"};
    EXPECT_THROW(
        parseCli(2, const_cast<char **>(argv), kBenchFlags, ""),
        FatalError);
    setThrowOnFatal(false);
}

TEST(Cli, LenientModeSkipsFlagsOtherBinariesOwn)
{
    // reject_unknown=false: a parser that only owns --scale must
    // tolerate a command line carrying flags other binaries own.
    const char *argv[] = {"bench", "--threads=4", "--scale=test",
                          "--csv"};
    const CliOptions options = parseCli(
        4, const_cast<char **>(argv), kFlagScale, nullptr, false);
    EXPECT_EQ(options.scale, sim::RunScale::Test);
    EXPECT_EQ(options.threads, 0u); // --threads not opted into
}

// ---------------------------------------------------------------------------
// Executor drain + end-to-end

TEST(Experiment, ClearRunCacheDrainsThenInvalidates)
{
    const ExperimentSpec spec = tinySpec();
    const std::vector<sim::RunKey> keys = expandSpec(spec);
    ASSERT_FALSE(keys.empty());

    // clear() right after an unconsumed prefetch is the racy shape
    // the drain wait exists for: it must block until the queued runs
    // retire, then invalidate.
    sim::prefetch(keys);
    sim::clearRunCache();

    sim::prefetch(keys);
    const std::uint64_t cycles =
        sim::RunExecutor::instance().run(keys.front()).total_cycles;
    EXPECT_GT(cycles, 0u);

    // Recomputation after a second clear is deterministic. (The old
    // reference itself dangles after clear(), per the documented
    // contract, so only the copied value is compared.)
    sim::clearRunCache();
    const sim::RunResult &after =
        sim::RunExecutor::instance().run(keys.front());
    EXPECT_FALSE(after.apps.empty());
    EXPECT_EQ(after.total_cycles, cycles);
}

TEST(Experiment, ResultsViewMatchesRunnerShims)
{
    ExperimentSpec spec = tinySpec();
    spec.with_solo = true;
    const ExperimentResults results = runExperiment(spec);

    Cell cell;
    cell.group = "G2-10";
    const sim::RunResult &via_api = results.result(cell);

    sim::RunOptions options;
    options.scale = sim::RunScale::Test;
    const sim::RunResult &via_runner = sim::runGroup(
        "fairshare", trace::groupByName("G2-10"), options);
    // Same RunKey -> same memoised object.
    EXPECT_EQ(&via_api, &via_runner);
    EXPECT_DOUBLE_EQ(
        results.weightedSpeedup(cell),
        sim::groupWeightedSpeedup("fairshare",
                                  trace::groupByName("G2-10"),
                                  options));
}

TEST(Experiment, CustomSchemeRunsThroughTheExecutorByName)
{
    // Register a clone of FairShare under a new name: same factory,
    // different registry key. It must run end-to-end through the
    // executor and — being the same simulation — produce identical
    // numbers under a distinct memo entry.
    if (!schemeRegistry().contains("fairclone")) {
        registerScheme("fairclone", "FairClone",
                       [](const llc::LlcConfig &config,
                          mem::DramModel &dram) {
                           return llc::makeLlc(llc::Scheme::FairShare,
                                               config, dram);
                       });
    }

    ExperimentSpec spec = tinySpec();
    spec.schemes = {"fairshare", "fairclone"};
    const ExperimentResults results = runExperiment(spec);

    Cell fair;
    fair.group = "G2-10";
    fair.scheme = "fairshare";
    Cell clone;
    clone.group = "G2-10";
    clone.scheme = "fairclone";
    const sim::RunResult &a = results.result(fair);
    const sim::RunResult &b = results.result(clone);
    EXPECT_NE(&a, &b); // distinct cache entries...
    ASSERT_EQ(a.apps.size(), b.apps.size());
    for (std::size_t i = 0; i < a.apps.size(); ++i) {
        EXPECT_EQ(a.apps[i].ipc, b.apps[i].ipc); // ...same simulation
    }
    EXPECT_EQ(a.total_cycles, b.total_cycles);
}

TEST(Experiment, WorkerExceptionsBecomeRunFailuresNotPoolDeaths)
{
    // A scheme whose LLC factory throws: the worker catches at the
    // task boundary and the future rethrows a RunFailure naming the
    // key — the pool itself must survive.
    if (!schemeRegistry().contains("faulty")) {
        registerScheme("faulty", "Faulty",
                       [](const llc::LlcConfig &,
                          mem::DramModel &) -> std::unique_ptr<llc::BaseLlc> {
                           throw std::runtime_error("factory exploded");
                       });
    }

    sim::RunOptions options;
    options.scale = sim::RunScale::Test;
    sim::RunKey bad = sim::groupKey(
        "fairshare", trace::groupByName("G2-10"), options);
    bad.scheme = "faulty";

    auto recording = std::make_shared<store::ResultStore>();
    sim::RunExecutor executor(2);
    executor.attachStore(recording);
    try {
        executor.run(bad);
        FAIL() << "expected RunFailure";
    } catch (const sim::RunFailure &failure) {
        EXPECT_EQ(failure.key(), bad);
        const std::string what = failure.what();
        EXPECT_NE(what.find("factory exploded"), std::string::npos);
        EXPECT_NE(what.find(formatRunKey(bad)), std::string::npos);
    }
    EXPECT_EQ(executor.stats().failed_runs, 1u);
    // Nothing half-baked was recorded for the failed key.
    EXPECT_FALSE(recording->find(bad).has_value());

    // The pool is intact: a healthy run on the same executor works.
    sim::RunKey good = bad;
    good.scheme = "fairshare";
    const sim::RunResult &result = executor.run(good);
    EXPECT_FALSE(result.apps.empty());
    // Both tasks executed (the failed one counts as a simulation),
    // exactly one failed.
    EXPECT_EQ(executor.stats().simulations, 2u);
    EXPECT_EQ(executor.stats().failed_runs, 1u);
    EXPECT_TRUE(recording->find(good).has_value());

    // A consumed failure stays failed (memoised): rethrown, still
    // exactly one failed-run count.
    EXPECT_THROW(executor.run(bad), sim::RunFailure);
}
