/**
 * @file
 * Reproduces the paper's Figure 5: weighted speedup of the fourteen
 * two-application workloads under all five schemes, normalised to
 * Fair Share (geometric-mean AVG).
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    const auto options = coopbench::optionsFromArgs(argc, argv);
    coopbench::printNormalisedTable(
        "Figure 5: weighted speedup, two-application workloads",
        coopsim::trace::twoCoreGroups(), coopbench::speedupMetric,
        options, /*higher_better=*/true);
    return 0;
}
