/**
 * @file
 * Reproduces the paper's Figure 5: weighted speedup of the fourteen
 * two-application workloads under all five schemes, normalised to
 * Fair Share (geometric-mean AVG). The same table is reproducible
 * from a spec file: `coopsim_cli --spec=specs/fig05.spec`.
 */

#include <coopsim/experiment.hpp>

int
main(int argc, char **argv)
{
    namespace api = coopsim::api;
    const api::CliOptions cli = api::benchSetup(argc, argv);

    api::ExperimentSpec spec;
    spec.name = "fig05";
    spec.title =
        "Figure 5: weighted speedup, two-application workloads";
    spec.schemes = {"unmanaged", "fairshare", "cpe", "ucp", "coop"};
    spec.groups = {"G2-*"};
    spec.scale = cli.scale_name;
    api::printExperiment(spec);
    return 0;
}
