/**
 * @file
 * Reproduces Figure 11: impact of the takeover threshold T on the
 * weighted speedup of the two-application workloads, normalised to
 * T = 0 (UCP-like allocation). Expected: T <= 0.05 costs nothing;
 * T = 0.1 / 0.2 lose performance.
 */

#include <coopsim/experiment.hpp>

int
main(int argc, char **argv)
{
    namespace api = coopsim::api;
    const api::CliOptions cli = api::benchSetup(argc, argv);

    api::ExperimentSpec spec;
    spec.name = "fig11";
    spec.title = "Figure 11: takeover threshold vs weighted speedup";
    spec.layout = "thresholds";
    spec.baseline = "0";
    spec.schemes = {"coop"};
    spec.groups = {"G2-*"};
    spec.thresholds = {0.0, 0.01, 0.05, 0.1, 0.2};
    spec.scale = cli.scale_name;
    api::printExperiment(spec);
    return 0;
}
