/**
 * @file
 * Reproduces Figure 11: impact of the takeover threshold T on the
 * weighted speedup of the two-application workloads, normalised to
 * T = 0 (UCP-like allocation). Expected: T <= 0.05 costs nothing;
 * T = 0.1 / 0.2 lose performance.
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    const auto options = coopbench::optionsFromArgs(argc, argv);
    coopbench::printThresholdTable(
        "Figure 11: takeover threshold vs weighted speedup",
        [](const coopbench::WorkloadGroup &group,
           const coopbench::RunOptions &opts) {
            return coopsim::sim::groupWeightedSpeedup(
                coopsim::llc::Scheme::Cooperative, group, opts);
        },
        options);
    return 0;
}
