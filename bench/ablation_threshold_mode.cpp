/**
 * @file
 * Ablation: the paper's Algorithm 1 pseudocode, taken literally
 * (`|prev_max_mu - max_mu| <= prev_max_mu * T`), against the
 * miss-ratio interpretation this library uses by default (see
 * partition/lookahead.hpp). Compares the resulting allocations on the
 * monitors' live curves and end-to-end results on a few groups.
 */

#include <cstdio>

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace coopsim;
    using partition::ThresholdMode;
    auto options = coopbench::optionsFromArgs(argc, argv);

    const std::vector<const char *> names = {"G2-2", "G2-4", "G2-8",
                                             "G2-12"};

    // Full sweep up front: Fair Share baseline, both threshold modes
    // and the solo baselines per group.
    {
        std::vector<sim::RunKey> keys;
        for (const char *name : names) {
            const auto &group = trace::groupByName(name);
            keys.push_back(
                sim::groupKey(llc::Scheme::FairShare, group, options));
            for (const ThresholdMode mode :
                 {ThresholdMode::MissRatio, ThresholdMode::PaperLiteral}) {
                sim::RunOptions opts = options;
                opts.threshold_mode = mode;
                keys.push_back(sim::groupKey(llc::Scheme::Cooperative,
                                             group, opts));
            }
            for (const std::string &app : group.apps) {
                keys.push_back(sim::soloKey(app, 2, options));
            }
        }
        sim::prefetch(keys);
    }

    std::printf("Ablation: threshold interpretation "
                "(MissRatio vs PaperLiteral)\n");
    std::printf("%-8s %-14s %10s %10s %10s %10s\n", "group", "mode",
                "w.speedup", "dyn(norm)", "stat(norm)", "ways/acc");

    for (const char *name : names) {
        const auto &group = trace::groupByName(name);
        sim::RunOptions fair_opts = options;
        const auto &fair = sim::runGroup(llc::Scheme::FairShare, group,
                                         fair_opts);
        for (const ThresholdMode mode :
             {ThresholdMode::MissRatio, ThresholdMode::PaperLiteral}) {
            sim::RunOptions opts = options;
            opts.threshold_mode = mode;
            const auto &r = sim::runGroup(llc::Scheme::Cooperative,
                                          group, opts);
            const double ws = sim::groupWeightedSpeedup(
                llc::Scheme::Cooperative, group, opts);
            std::printf(
                "%-8s %-14s %10.3f %10.3f %10.3f %10.2f\n", name,
                mode == ThresholdMode::MissRatio ? "MissRatio"
                                                 : "PaperLiteral",
                ws, r.dynamic_energy_nj / fair.dynamic_energy_nj,
                r.static_energy_nj / fair.static_energy_nj,
                r.avg_ways_probed);
        }
    }
    std::printf("# PaperLiteral with T=0 never passes its own first-"
                "iteration test\n# and self-unblocks a round late; "
                "MissRatio reproduces the text's\n# described "
                "behaviour (T=0 == UCP, T=1 == allocate nothing).\n");
    return 0;
}
