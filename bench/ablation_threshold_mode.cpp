/**
 * @file
 * Ablation: the paper's Algorithm 1 pseudocode, taken literally
 * (`|prev_max_mu - max_mu| <= prev_max_mu * T`), against the
 * miss-ratio interpretation this library uses by default (see
 * partition/lookahead.hpp). Compares the resulting allocations on the
 * monitors' live curves and end-to-end results on a few groups.
 */

#include <cstdio>

#include <coopsim/experiment.hpp>

int
main(int argc, char **argv)
{
    namespace api = coopsim::api;
    const api::CliOptions cli = api::benchSetup(argc, argv);

    // Two specs so the cross-product stays exactly the keys read
    // below: Fair Share is mode-independent, so it rides in its own
    // single-mode spec instead of multiplying the mode axis.
    api::ExperimentSpec spec;
    spec.name = "ablation_threshold_mode";
    spec.layout = "none";
    spec.schemes = {"coop"};
    spec.groups = {"G2-2", "G2-4", "G2-8", "G2-12"};
    spec.threshold_modes = {"missratio", "paperliteral"};
    spec.scale = cli.scale_name;
    const api::ExperimentResults results = api::runExperiment(spec);

    api::ExperimentSpec ref_spec = spec;
    ref_spec.schemes = {"fairshare"};
    ref_spec.threshold_modes = {"missratio"};
    ref_spec.with_solo = false;
    const api::ExperimentResults ref = api::runExperiment(ref_spec);

    std::printf("Ablation: threshold interpretation "
                "(MissRatio vs PaperLiteral)\n");
    std::printf("%-8s %-14s %10s %10s %10s %10s\n", "group", "mode",
                "w.speedup", "dyn(norm)", "stat(norm)", "ways/acc");

    for (const auto &group : results.groups()) {
        api::Cell fair_cell;
        fair_cell.group = group.name;
        const auto &fair = ref.result(fair_cell);
        for (const std::string &mode :
             results.spec().threshold_modes) {
            api::Cell cell;
            cell.group = group.name;
            cell.threshold_mode = mode;
            const auto &r = results.result(cell);
            const double ws = results.weightedSpeedup(cell);
            std::printf(
                "%-8s %-14s %10.3f %10.3f %10.3f %10.2f\n",
                group.name.c_str(),
                mode == "missratio" ? "MissRatio" : "PaperLiteral", ws,
                r.dynamic_energy_nj / fair.dynamic_energy_nj,
                r.static_energy_nj / fair.static_energy_nj,
                r.avg_ways_probed);
        }
    }
    std::printf("# PaperLiteral with T=0 never passes its own first-"
                "iteration test\n# and self-unblocks a round late; "
                "MissRatio reproduces the text's\n# described "
                "behaviour (T=0 == UCP, T=1 == allocate nothing).\n");
    return 0;
}
