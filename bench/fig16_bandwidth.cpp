/**
 * @file
 * Reproduces Figure 16: LLC-to-memory bandwidth used to flush dirty
 * blocks, as a function of time since a partitioning decision.
 * Cooperative shows a short, tall early burst; UCP a lower, longer
 * plateau — and flushes more lines in total.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include <coopsim/experiment.hpp>

int
main(int argc, char **argv)
{
    namespace api = coopsim::api;
    const api::CliOptions cli = api::benchSetup(argc, argv);

    api::ExperimentSpec spec;
    spec.name = "fig16";
    spec.layout = "none";
    spec.with_solo = false;
    spec.schemes = {"ucp", "coop"};
    spec.groups = {"G2-*"};
    spec.scale = cli.scale_name;
    const api::ExperimentResults results = api::runExperiment(spec);

    // Aggregate the per-decision flush time series over all groups.
    std::vector<std::uint64_t> ucp_series;
    std::vector<std::uint64_t> coop_series;
    std::uint64_t ucp_lines = 0;
    std::uint64_t coop_lines = 0;
    coopsim::Tick bin = 1;
    for (const auto &group : results.groups()) {
        api::Cell ucp_cell;
        ucp_cell.group = group.name;
        ucp_cell.scheme = "ucp";
        api::Cell coop_cell;
        coop_cell.group = group.name;
        coop_cell.scheme = "coop";
        const auto &u = results.result(ucp_cell);
        const auto &c = results.result(coop_cell);
        bin = c.flush_series_bin;
        ucp_series.resize(
            std::max(ucp_series.size(), u.flush_series.size()), 0);
        coop_series.resize(
            std::max(coop_series.size(), c.flush_series.size()), 0);
        for (std::size_t i = 0; i < u.flush_series.size(); ++i) {
            ucp_series[i] += u.flush_series[i];
        }
        for (std::size_t i = 0; i < c.flush_series.size(); ++i) {
            coop_series[i] += c.flush_series[i];
        }
        ucp_lines += u.flushed_lines;
        coop_lines += c.flushed_lines;
    }

    std::printf("Figure 16: lines flushed vs cycles since a "
                "partitioning decision\n");
    std::printf("%-16s %12s %12s\n", "cycles", "UCP", "Cooperative");
    for (std::size_t i = 0; i < coop_series.size(); ++i) {
        std::printf("%-16llu %12llu %12llu\n",
                    static_cast<unsigned long long>(bin * (i + 1)),
                    static_cast<unsigned long long>(
                        i < ucp_series.size() ? ucp_series[i] : 0),
                    static_cast<unsigned long long>(coop_series[i]));
    }
    std::printf("# total lines flushed: UCP=%llu Cooperative=%llu "
                "(paper: 6536 vs 5102 per transition)\n",
                static_cast<unsigned long long>(ucp_lines),
                static_cast<unsigned long long>(coop_lines));
    return 0;
}
