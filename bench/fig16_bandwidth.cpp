/**
 * @file
 * Reproduces Figure 16: LLC-to-memory bandwidth used to flush dirty
 * blocks, as a function of time since a partitioning decision.
 * Cooperative shows a short, tall early burst; UCP a lower, longer
 * plateau — and flushes more lines in total. The same table is
 * reproducible from a spec file: `coopsim_cli --spec=specs/fig16.spec`.
 */

#include <coopsim/experiment.hpp>

int
main(int argc, char **argv)
{
    namespace api = coopsim::api;
    const api::CliOptions cli = api::benchSetup(argc, argv);

    api::ExperimentSpec spec;
    spec.name = "fig16";
    spec.title = "Figure 16: lines flushed vs cycles since a "
                 "partitioning decision";
    spec.layout = "bandwidth";
    spec.with_solo = false;
    spec.schemes = {"ucp", "coop"};
    spec.groups = {"G2-*"};
    spec.scale = cli.scale_name;
    api::printExperiment(spec);
    return 0;
}
