/**
 * @file
 * Microbenchmarks of the partitioning algorithms (google-benchmark).
 */

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "partition/lookahead.hpp"
#include "partition/transition_plan.hpp"

using namespace coopsim;
using namespace coopsim::partition;

namespace
{

std::vector<AppDemand>
randomDemands(std::uint32_t apps, std::uint32_t ways,
              std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<AppDemand> demands;
    for (std::uint32_t a = 0; a < apps; ++a) {
        AppDemand d;
        d.accesses = 10000.0;
        double misses = d.accesses;
        d.miss_curve.push_back(misses);
        for (std::uint32_t w = 0; w < ways; ++w) {
            misses -= rng.nextDouble() * 800.0;
            misses = std::max(misses, 0.0);
            d.miss_curve.push_back(misses);
        }
        demands.push_back(std::move(d));
    }
    return demands;
}

} // namespace

static void
BM_LookaheadPartition(benchmark::State &state)
{
    const auto apps = static_cast<std::uint32_t>(state.range(0));
    const auto ways = static_cast<std::uint32_t>(state.range(1));
    const auto demands = randomDemands(apps, ways, 42);
    LookaheadConfig config;
    config.threshold = 0.05;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            lookaheadPartition(demands, ways, config));
    }
}
BENCHMARK(BM_LookaheadPartition)
    ->Args({2, 8})
    ->Args({4, 16})
    ->Args({8, 32});

static void
BM_PlanTransition(benchmark::State &state)
{
    const auto cores = static_cast<std::uint32_t>(state.range(0));
    const auto ways = static_cast<std::uint32_t>(state.range(1));
    std::vector<std::vector<WayId>> owned(cores);
    for (WayId w = 0; w < ways; ++w) {
        owned[w % cores].push_back(w);
    }
    std::vector<std::uint32_t> target(cores, ways / cores);
    // Rotate one way around the cores to force transfers.
    target[0] += 1;
    target[cores - 1] -= 1;
    Rng rng(7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            planTransition(owned, {}, target, rng));
    }
}
BENCHMARK(BM_PlanTransition)->Args({2, 8})->Args({4, 16});
