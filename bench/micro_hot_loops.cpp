/**
 * @file
 * Hot-path microbenchmarks for the simulator itself (host throughput,
 * not simulated metrics), covering the three paths this repo's
 * performance work targets:
 *
 *  1. masked tag lookup / victim selection in SetAssocCache, which the
 *     bit-scan way iteration accelerates (a linear 0..63 scan is timed
 *     alongside as the reference the optimisation replaced), plus the
 *     banked variants: the slice-selection hash alone (mod and
 *     xor-fold, slice_hash_ns) and a hashed 4-slice lookup over the
 *     same total geometry (banked_lookup_ns; the CI hotpath-smoke leg
 *     asserts it stays within 1.5x of the monolithic lookup),
 *  2. UMON ATD accesses with a full (sample_period = 1) directory, the
 *     per-access cost the incremental recency ordering shaved,
 *  3. the event-loop driver itself: net arbitration + dispatch cost
 *     per step (run_step_ns) for the pre-batching per-op loop versus
 *     the batched-quantum loop, with an identical-sequence no-driver
 *     replay subtracted as the op-work baseline (see benchDriverCost),
 *  4. trace-replay op production: TraceFileStream's frame decode
 *     versus SyntheticStream generation over the identical op
 *     sequence, with an in-memory replay of the pre-decoded ops
 *     subtracted as the consumption baseline (replay_step_ns; the CI
 *     trace-smoke leg asserts it does not exceed run_step_ns),
 *  5. one complete bench-scale reference run (coop / G4-1) end to end
 *     under both driver modes — wall seconds, per-op cost, and the
 *     average quantum length actually achieved (quantum_avg_ops; the
 *     CI hotpath-smoke leg asserts it exceeds 1), with the two modes'
 *     results checked bit-identical — and
 *  6. end-to-end sweep throughput: the complete fig05-fig16 simulation
 *     key set executed serially on one thread versus through the
 *     parallel RunExecutor.
 *
 * Results are printed and written to BENCH_hotpath.json (overwritten
 * per run; the committed copy at the repo root is the recorded
 * measurement tracking the trajectory from PR to PR). The JSON also
 * records host metadata — core count, compiler, git revision — so
 * numbers recorded in different PRs are comparable. No
 * google-benchmark dependency: plain steady_clock loops, so this
 * always builds.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include <coopsim/experiment.hpp>

#include "cache/cache.hpp"
#include "common/rng.hpp"
#include "llc/slice_hash.hpp"
#include "sim/min_clock_tree.hpp"
#include "sim/stream_cache.hpp"
#include "sim/system.hpp"
#include "store/result_store.hpp"
#include "trace/generator.hpp"
#include "trace/spec_profiles.hpp"
#include "trace/workloads.hpp"
#include "tracefile/trace_stream.hpp"
#include "tracefile/trace_writer.hpp"
#include "umon/umon.hpp"

using namespace coopsim;
using Clock = std::chrono::steady_clock;

namespace
{

double
seconds(Clock::time_point t0, Clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Pre-bit-scan semantics: test every way position under the mask. */
cache::LookupResult
linearLookup(const cache::SetAssocCache &array, Addr addr,
             cache::WayMask mask)
{
    const SetId set = array.slicer().set(addr);
    const Addr tag = array.slicer().tag(addr);
    for (std::uint32_t w = 0; w < array.ways(); ++w) {
        if (!((mask >> w) & 1)) {
            continue;
        }
        const cache::CacheBlock &blk = array.block(set, w);
        if (blk.valid && blk.tag == tag) {
            return {true, static_cast<WayId>(w)};
        }
    }
    return {false, kNoWay};
}

struct LookupTimes
{
    double bitscan_ns = 0.0;
    double linear_ns = 0.0;
    double victim_ns = 0.0;
};

/** Times masked lookup (both implementations) and victim selection. */
LookupTimes
benchMaskedLookup(std::uint64_t &checksum)
{
    // 1 MiB, 16-way: the paper's LLC associativity at a bench-friendly
    // set count.
    cache::SetAssocCache array({1024ull * 16 * 64, 16, 64});
    Rng rng(7);

    // Fill ~3/4 of each set so lookups see a realistic mix of valid
    // and invalid ways.
    const std::uint32_t sets = array.numSets();
    for (SetId set = 0; set < sets; ++set) {
        for (std::uint32_t w = 0; w < 12; ++w) {
            const Addr addr = (rng.nextBelow(1u << 12) << 16) |
                              (static_cast<Addr>(set) << 6);
            const WayId way = array.victim(set, cache::fullMask(16));
            array.insert(addr, set, way,
                         static_cast<CoreId>(rng.nextBelow(2)), false);
        }
    }

    // One shared (addr, mask) stream so all three loops do identical
    // work. Masks are random non-empty partitions of the 16 ways, the
    // shape the way-partitioned LLC probes with.
    constexpr std::size_t kOps = 1u << 20;
    std::vector<Addr> addrs(kOps);
    std::vector<cache::WayMask> masks(kOps);
    for (std::size_t i = 0; i < kOps; ++i) {
        addrs[i] = (rng.nextBelow(1u << 12) << 16) |
                   (rng.nextBelow(sets) << 6);
        cache::WayMask mask = rng.nextBelow(1u << 16);
        masks[i] = mask ? mask : cache::fullMask(16);
    }

    LookupTimes times;
    {
        const auto t0 = Clock::now();
        for (std::size_t i = 0; i < kOps; ++i) {
            checksum += array.lookup(addrs[i], masks[i]).hit;
        }
        times.bitscan_ns = seconds(t0, Clock::now()) * 1e9 / kOps;
    }
    {
        const auto t0 = Clock::now();
        for (std::size_t i = 0; i < kOps; ++i) {
            checksum += linearLookup(array, addrs[i], masks[i]).hit;
        }
        times.linear_ns = seconds(t0, Clock::now()) * 1e9 / kOps;
    }
    {
        const auto t0 = Clock::now();
        for (std::size_t i = 0; i < kOps; ++i) {
            checksum += array.victim(array.slicer().set(addrs[i]),
                                     masks[i]);
        }
        times.victim_ns = seconds(t0, Clock::now()) * 1e9 / kOps;
    }
    return times;
}

struct SliceHashTimes
{
    double mod_ns = 0.0;
    double xor_ns = 0.0;
    double banked_lookup_ns = 0.0;
};

/**
 * Times the slice-selection hash stage and the full banked lookup it
 * fronts: the same 1 MiB / 16-way geometry as benchMaskedLookup, split
 * into 4 slices, each access paying one xor-fold bank() plus one
 * bank-local masked lookup. banked_lookup_ns vs
 * masked_lookup_bitscan_ns is therefore the per-access cost of banking
 * itself (hash + smaller per-slice set array); CI bounds the ratio.
 */
SliceHashTimes
benchSliceHash(std::uint64_t &checksum)
{
    constexpr std::uint32_t kBanks = 4;
    constexpr std::uint64_t kBankSets = 1024 / kBanks;
    constexpr std::size_t kOps = 1u << 20;
    const llc::SliceHash mod(llc::SliceHashKind::Mod, kBanks, 64,
                             kBankSets);
    const llc::SliceHash fold(llc::SliceHashKind::Xor, kBanks, 64,
                              kBankSets);

    // The same (addr, mask) stream shape as benchMaskedLookup, over
    // the banked set range.
    Rng rng(13);
    std::vector<Addr> addrs(kOps);
    std::vector<cache::WayMask> masks(kOps);
    for (std::size_t i = 0; i < kOps; ++i) {
        addrs[i] = (rng.nextBelow(1u << 12) << 16) |
                   (rng.nextBelow(kBankSets * kBanks) << 6);
        cache::WayMask mask = rng.nextBelow(1u << 16);
        masks[i] = mask ? mask : cache::fullMask(16);
    }

    SliceHashTimes times;
    {
        const auto t0 = Clock::now();
        for (std::size_t i = 0; i < kOps; ++i) {
            checksum += mod.bank(addrs[i]);
        }
        times.mod_ns = seconds(t0, Clock::now()) * 1e9 / kOps;
    }
    {
        const auto t0 = Clock::now();
        for (std::size_t i = 0; i < kOps; ++i) {
            checksum += fold.bank(addrs[i]);
        }
        times.xor_ns = seconds(t0, Clock::now()) * 1e9 / kOps;
    }

    // Four 256 KiB slices, each ~3/4 full like the monolithic array.
    std::vector<std::unique_ptr<cache::SetAssocCache>> banks;
    for (std::uint32_t b = 0; b < kBanks; ++b) {
        banks.push_back(std::make_unique<cache::SetAssocCache>(
            cache::CacheGeometry{kBankSets * 16 * 64, 16, 64}));
        for (SetId set = 0; set < kBankSets; ++set) {
            for (std::uint32_t w = 0; w < 12; ++w) {
                const Addr addr = (rng.nextBelow(1u << 12) << 16) |
                                  (static_cast<Addr>(set) << 6);
                const WayId way =
                    banks[b]->victim(set, cache::fullMask(16));
                banks[b]->insert(addr, set, way,
                                 static_cast<CoreId>(rng.nextBelow(2)),
                                 false);
            }
        }
    }
    {
        const auto t0 = Clock::now();
        for (std::size_t i = 0; i < kOps; ++i) {
            const std::uint32_t b = fold.bank(addrs[i]);
            checksum += banks[b]->lookup(addrs[i], masks[i]).hit;
        }
        times.banked_lookup_ns = seconds(t0, Clock::now()) * 1e9 / kOps;
    }
    return times;
}

/** Times UtilityMonitor::access with a full ATD (every set sampled). */
double
benchUmonAccess(std::uint64_t &checksum)
{
    umon::UmonConfig config;
    config.llc_sets = 1024;
    config.llc_ways = 16;
    config.sample_period = 1;
    umon::UtilityMonitor monitor(config);

    Rng rng(11);
    constexpr std::size_t kOps = 1u << 20;
    std::vector<Addr> addrs(kOps);
    for (std::size_t i = 0; i < kOps; ++i) {
        // ~2x the ATD capacity worth of distinct blocks: plenty of
        // hits at varied recency positions plus steady misses.
        addrs[i] = rng.nextBelow(2048u * 16) << 6;
    }

    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < kOps; ++i) {
        monitor.access(addrs[i]);
    }
    const double ns = seconds(t0, Clock::now()) * 1e9 / kOps;
    checksum += monitor.missCount();
    return ns;
}

// ---------------------------------------------------------------------------
// Driver arbitration + dispatch cost

struct DriverCost
{
    /** Whole-loop ns/step of each driver flavour. */
    double perop_loop_ns = 0.0;
    double batched_loop_ns = 0.0;
    /** Op production + execution alone (no arbitration, no per-op
     *  delivery): the part of each loop that is NOT the driver. */
    double baseline_ns = 0.0;
    double quantum_avg_ops = 0.0;

    /** Net per-step driver + dispatch cost of each flavour. */
    double peropNs() const { return perop_loop_ns - baseline_ns; }
    double batchedNs() const { return batched_loop_ns - baseline_ns; }
};

/**
 * Phase geometry shared by the two cost streams below: both walk the
 * identical LCG op sequence and the identical phase schedule, so the
 * driver loops built on them execute the same global step sequence —
 * they differ only in WHEN the phase/gap parameters are (re)computed
 * and how ops are delivered.
 */
constexpr std::uint64_t kDriverBenchPhaseInsts = 1u << 20;

/**
 * Op production with the pre-batching tree's per-op costs: every op
 * pays the phase selection (an integer division on the instruction
 * count), the geometric-gap setup (a log1p call — the seed generator
 * recomputed log1p(-p) on every draw), and a virtual delivery into
 * the core. These are exactly the per-op overheads this PR hoisted
 * (SyntheticStream's cached phase/CDF/log1p state, TraceCore's op
 * ring buffer), reproduced in isolation.
 */
class SeedCostStream final : public core::OpStream
{
  public:
    explicit SeedCostStream(std::uint64_t seed) : x_(seed) {}

    core::MemOp next() override
    {
        const std::uint64_t phase = insts_ / kDriverBenchPhaseInsts;
        const double p = (phase % 2 == 0) ? 0.01 : 0.03;
        gap_setup_ += std::log1p(-p);
        x_ = x_ * 6364136223846793005ull + 1442695040888963407ull;
        core::MemOp op;
        op.addr = x_;
        insts_ += 1 + (x_ & 63);
        return op;
    }

    /** Keeps the transcendental from being dead-code-eliminated. */
    double gapSetup() const { return gap_setup_; }

  private:
    std::uint64_t x_;
    std::uint64_t insts_ = 0;
    double gap_setup_ = 0.0;
};

/**
 * The same op sequence produced the shipped way: phase parameters are
 * cached and refreshed only when the instruction count crosses the
 * phase boundary, and ops are delivered in nextBatch() batches.
 */
class BatchedCostStream final : public core::OpStream
{
  public:
    explicit BatchedCostStream(std::uint64_t seed) : x_(seed)
    {
        refreshPhase();
    }

    core::MemOp next() override { return generate(); }

    std::size_t nextBatch(core::MemOp *out, std::size_t max) override
    {
        for (std::size_t i = 0; i < max; ++i) {
            out[i] = generate();
        }
        return max;
    }

    double gapSetup() const { return gap_setup_; }

  private:
    void refreshPhase()
    {
        const std::uint64_t phase = insts_ / kDriverBenchPhaseInsts;
        const double p = (phase % 2 == 0) ? 0.01 : 0.03;
        cached_log_ = std::log1p(-p);
        phase_switch_ = (phase + 1) * kDriverBenchPhaseInsts;
    }

    core::MemOp generate()
    {
        if (insts_ >= phase_switch_) {
            refreshPhase();
        }
        gap_setup_ += cached_log_;
        x_ = x_ * 6364136223846793005ull + 1442695040888963407ull;
        core::MemOp op;
        op.addr = x_;
        insts_ += 1 + (x_ & 63);
        return op;
    }

    std::uint64_t x_;
    std::uint64_t insts_ = 0;
    std::uint64_t phase_switch_ = 0;
    double cached_log_ = 0.0;
    double gap_setup_ = 0.0;
};

/** A core model reduced to the driver-facing surface of TraceCore:
 *  the clock advance per op is a cheap hash of the op. */
struct DriverBenchCore
{
    core::OpStream &stream;
    Cycle cycle = 0;
    std::array<core::MemOp, 64> buf{};
    std::size_t pos = 0;
    std::size_t len = 0;

    void apply(const core::MemOp &op)
    {
        // Advance shape of the real core model: width-limited
        // retirement of short gaps, punctuated by DRAM-latency stalls
        // on (roughly) every eighth op. This reproduces the measured
        // ~4-op average quantum of the paper's two-core runs.
        const std::uint64_t h = op.addr >> 32;
        cycle += 4 + (h & 7);
        if ((h & 0x700) == 0) {
            cycle += 160 + (h & 127);
        }
    }

    /** The seed tree's per-op dispatch: one out-of-line call into the
     *  core, one virtual OpStream::next() per op. */
    __attribute__((noinline)) void stepPerOp() { apply(stream.next()); }

    /** The batched dispatch: one out-of-line call per quantum, ops
     *  pulled from the ring buffer (one virtual call per 64). */
    __attribute__((noinline)) std::uint64_t stepQuantum(Cycle bound)
    {
        std::uint64_t ops = 0;
        do {
            if (pos == len) {
                len = stream.nextBatch(buf.data(), buf.size());
                pos = 0;
            }
            apply(buf[pos++]);
            ++ops;
        } while (cycle < bound);
        return ops;
    }
};

/**
 * The per-step driver + dispatch cost of System::run(), isolated.
 *
 * Three loops run the identical global op sequence (final clocks are
 * cross-checked):
 *
 *  - per-op: the pre-batching event loop — tree consult + update and
 *    an out-of-line core step with a virtual stream access (plus the
 *    seed generator's per-op phase division and log1p gap setup) for
 *    every single op;
 *  - batched: the shipped loop — arbitration once per second-minimum
 *    quantum, ops delivered from the ring buffer, phase/gap state
 *    cached;
 *  - baseline: op production + execution with no driver at all (each
 *    core's ops replayed straight), measuring the work that is NOT
 *    driver or dispatch.
 *
 * run_step_ns = batched − baseline and run_step_perop_ns = per-op −
 * baseline are therefore the net driver+dispatch cost per step of the
 * two designs — the acceptance numbers.
 */
DriverCost
benchDriverCost(std::uint64_t &checksum)
{
    constexpr std::uint32_t kCores = 2;
    constexpr Cycle kHorizon = 1u << 27;

    DriverCost times;
    Cycle perop_sum = 0;
    std::uint64_t perop_steps = 0;
    std::vector<std::uint64_t> steps_per_core(kCores, 0);
    {
        std::vector<SeedCostStream> streams;
        std::vector<DriverBenchCore> cores;
        for (std::uint32_t c = 0; c < kCores; ++c) {
            streams.emplace_back(0x9e3779b9ull * (c + 1));
        }
        for (std::uint32_t c = 0; c < kCores; ++c) {
            cores.push_back(DriverBenchCore{streams[c]});
        }
        std::vector<Cycle> clock(kCores, 0);
        sim::MinClockTree tree(clock);
        const auto t0 = Clock::now();
        for (;;) {
            const std::uint32_t c = tree.minIndex();
            if (clock[c] >= kHorizon) {
                break;
            }
            cores[c].stepPerOp();
            clock[c] = cores[c].cycle;
            tree.update(c, clock[c]);
            ++steps_per_core[c];
            ++perop_steps;
        }
        times.perop_loop_ns =
            seconds(t0, Clock::now()) * 1e9 /
            static_cast<double>(perop_steps);
        perop_sum = std::accumulate(clock.begin(), clock.end(), Cycle{0});
        checksum += streams[0].gapSetup() < 0.0 ? 1 : 0;
    }
    Cycle batched_sum = 0;
    std::uint64_t batched_steps = 0;
    std::uint64_t batched_quanta = 0;
    {
        std::vector<BatchedCostStream> streams;
        std::vector<DriverBenchCore> cores;
        for (std::uint32_t c = 0; c < kCores; ++c) {
            streams.emplace_back(0x9e3779b9ull * (c + 1));
        }
        for (std::uint32_t c = 0; c < kCores; ++c) {
            cores.push_back(DriverBenchCore{streams[c]});
        }
        std::vector<Cycle> clock(kCores, 0);
        sim::MinClockTree tree(clock);
        const auto t0 = Clock::now();
        for (;;) {
            const std::uint32_t c = tree.minIndex();
            if (clock[c] >= kHorizon) {
                break;
            }
            const sim::MinClockTree::Second second = tree.secondBest();
            const Cycle bound = c < second.index ? second.clock + 1
                                                 : second.clock;
            batched_steps +=
                cores[c].stepQuantum(std::min(bound, kHorizon));
            ++batched_quanta;
            clock[c] = cores[c].cycle;
            tree.update(c, clock[c]);
        }
        times.batched_loop_ns =
            seconds(t0, Clock::now()) * 1e9 /
            static_cast<double>(batched_steps);
        times.quantum_avg_ops =
            static_cast<double>(batched_steps) /
            static_cast<double>(batched_quanta);
        batched_sum =
            std::accumulate(clock.begin(), clock.end(), Cycle{0});
        checksum += streams[0].gapSetup() < 0.0 ? 1 : 0;
    }
    if (perop_sum != batched_sum || perop_steps != batched_steps) {
        std::fprintf(stderr,
                     "FATAL: per-op/batched driver loops diverged "
                     "(clock sums %llu vs %llu, steps %llu vs %llu)\n",
                     static_cast<unsigned long long>(perop_sum),
                     static_cast<unsigned long long>(batched_sum),
                     static_cast<unsigned long long>(perop_steps),
                     static_cast<unsigned long long>(batched_steps));
        std::exit(1);
    }
    Cycle baseline_sum = 0;
    {
        std::vector<BatchedCostStream> streams;
        std::vector<DriverBenchCore> cores;
        for (std::uint32_t c = 0; c < kCores; ++c) {
            streams.emplace_back(0x9e3779b9ull * (c + 1));
        }
        for (std::uint32_t c = 0; c < kCores; ++c) {
            cores.push_back(DriverBenchCore{streams[c]});
        }
        const auto t0 = Clock::now();
        for (std::uint32_t c = 0; c < kCores; ++c) {
            DriverBenchCore &core = cores[c];
            for (std::uint64_t i = 0; i < steps_per_core[c]; ++i) {
                if (core.pos == core.len) {
                    core.len = core.stream.nextBatch(core.buf.data(),
                                                     core.buf.size());
                    core.pos = 0;
                }
                core.apply(core.buf[core.pos++]);
            }
            baseline_sum += core.cycle;
        }
        times.baseline_ns =
            seconds(t0, Clock::now()) * 1e9 /
            static_cast<double>(perop_steps);
        checksum += streams[0].gapSetup() < 0.0 ? 1 : 0;
    }
    if (baseline_sum != perop_sum) {
        std::fprintf(stderr,
                     "FATAL: baseline replay diverged (clock sum %llu "
                     "vs %llu)\n",
                     static_cast<unsigned long long>(baseline_sum),
                     static_cast<unsigned long long>(perop_sum));
        std::exit(1);
    }
    checksum += perop_sum;
    return times;
}

// ---------------------------------------------------------------------------
// Trace replay decode cost

struct ReplayCost
{
    /** Whole-loop ns/op: decode-from-file vs generate-from-profile. */
    double replay_loop_ns = 0.0;
    double generate_loop_ns = 0.0;
    /** The op-consumption work alone (pre-decoded ops applied from
     *  memory): the part of both loops that is NOT production. */
    double baseline_ns = 0.0;

    /** Net per-op production cost of each source. */
    double replayNs() const { return replay_loop_ns - baseline_ns; }
    double generateNs() const { return generate_loop_ns - baseline_ns; }
};

/**
 * The per-op cost of TraceFileStream::nextBatch — the replacement for
 * SyntheticStream in a `trace:` replay run. ~1M gobmk ops are
 * recorded once (untimed), then three loops consume the identical
 * sequence through the 64-op batch interface TraceCore uses:
 *
 *  - replay: TraceFileStream decoding frames from the mapped file;
 *  - generate: SyntheticStream producing the same ops from the
 *    profile (what the non-replay run pays);
 *  - baseline: the ops pre-decoded into a vector and applied from
 *    memory, measuring the consumption side alone.
 *
 * replay_step_ns = replay − baseline is the net decode cost per op;
 * the CI trace-smoke leg asserts it stays at or below run_step_ns
 * (the driver's own per-step budget), i.e. replay does not become
 * the new hot-path bottleneck. All three checksums must agree — a
 * decode bug that survives the CRCs would show up here.
 */
ReplayCost
benchReplayCost(std::uint64_t &checksum)
{
    constexpr std::uint64_t kOps = 1u << 20;
    const trace::AppProfile &profile = trace::specProfile("gobmk");
    const trace::StreamGeometry geometry{512, 64};
    const std::uint64_t seed = 42;

    const std::string path = "BENCH_replay.gobmk.0.cooptrace";
    {
        tracefile::TraceHeader header;
        header.core = 0;
        header.num_cores = 1;
        header.seed = seed;
        header.llc_sets = geometry.llc_sets;
        header.block_bytes = geometry.block_bytes;
        header.workload = "BENCH_replay.gobmk";
        header.app = profile.name;
        header.scale = "bench";
        tracefile::TraceWriter writer(path, header);
        trace::SyntheticStream source(profile, geometry, 0, seed);
        core::MemOp buffer[64];
        for (std::uint64_t n = 0; n < kOps; n += 64) {
            source.nextBatch(buffer, 64);
            for (const core::MemOp &op : buffer) {
                writer.append(op);
            }
        }
        writer.finish();
    }

    const auto consume = [](const core::MemOp &op) {
        return op.addr + op.gap_insts +
               (op.type == AccessType::Write ? 1u : 0u);
    };

    ReplayCost times;
    std::uint64_t replay_sum = 0;
    {
        tracefile::TraceFileStream stream(path);
        core::MemOp buffer[64];
        const auto t0 = Clock::now();
        for (std::uint64_t n = 0; n < kOps; n += 64) {
            stream.nextBatch(buffer, 64);
            for (const core::MemOp &op : buffer) {
                replay_sum += consume(op);
            }
        }
        times.replay_loop_ns =
            seconds(t0, Clock::now()) * 1e9 / static_cast<double>(kOps);
    }
    std::uint64_t generate_sum = 0;
    {
        trace::SyntheticStream stream(profile, geometry, 0, seed);
        core::MemOp buffer[64];
        const auto t0 = Clock::now();
        for (std::uint64_t n = 0; n < kOps; n += 64) {
            stream.nextBatch(buffer, 64);
            for (const core::MemOp &op : buffer) {
                generate_sum += consume(op);
            }
        }
        times.generate_loop_ns =
            seconds(t0, Clock::now()) * 1e9 / static_cast<double>(kOps);
    }
    std::uint64_t baseline_sum = 0;
    {
        std::vector<core::MemOp> decoded(kOps);
        tracefile::TraceFileStream stream(path);
        for (std::uint64_t n = 0; n < kOps; n += 64) {
            stream.nextBatch(decoded.data() + n, 64);
        }
        const auto t0 = Clock::now();
        for (const core::MemOp &op : decoded) {
            baseline_sum += consume(op);
        }
        times.baseline_ns =
            seconds(t0, Clock::now()) * 1e9 / static_cast<double>(kOps);
    }
    if (replay_sum != generate_sum || replay_sum != baseline_sum) {
        std::fprintf(stderr,
                     "FATAL: replay/generate/baseline op streams "
                     "diverged (checksums %llu / %llu / %llu)\n",
                     static_cast<unsigned long long>(replay_sum),
                     static_cast<unsigned long long>(generate_sum),
                     static_cast<unsigned long long>(baseline_sum));
        std::exit(1);
    }
    std::remove(path.c_str());
    checksum += replay_sum;
    return times;
}

// ---------------------------------------------------------------------------
// Stream-memo cost (sim::StreamCache)

struct MemoCost
{
    /** Whole-loop ns/op of the first (generating) and second
     *  (replaying) pass through one memoized stream. */
    double cold_loop_ns = 0.0;
    double warm_loop_ns = 0.0;
    /** Consumption from pre-decoded memory, the non-production part. */
    double baseline_ns = 0.0;

    double coldNs() const { return cold_loop_ns - baseline_ns; }
    double warmNs() const { return warm_loop_ns - baseline_ns; }
};

/**
 * The per-op cost of the stream memo's two paths: the first open of a
 * key generates and encodes each segment on demand before decoding it
 * (stream_memo_cold_ns — generation plus the one-time encode tax),
 * and every later open replays the in-memory frames through the same
 * FrameDecoder TraceFileStream uses (stream_memo_warm_ns). The warm
 * path is the one every repeated run in a sweep pays, so main()
 * asserts it stays within 2x of replay_step_ns — memo replay must not
 * be meaningfully slower than file replay. The three checksums (cold,
 * warm, plain SyntheticStream) must agree: the memo is a transparent
 * cache, not a different stream.
 */
MemoCost
benchStreamMemo(std::uint64_t &checksum)
{
    constexpr std::uint64_t kOps = 1u << 20;
    const trace::AppProfile &profile = trace::specProfile("gobmk");
    const trace::StreamGeometry geometry{512, 64};

    sim::StreamCache &cache = sim::StreamCache::instance();
    sim::StreamCache::Key key;
    key.workload = "BENCH_memo.gobmk";
    key.slot = 0;
    key.seed = 42;
    key.scale = "bench";
    key.num_cores = 1;

    const auto consume = [](const core::MemOp &op) {
        return op.addr + op.gap_insts +
               (op.type == AccessType::Write ? 1u : 0u);
    };

    MemoCost times;
    std::uint64_t cold_sum = 0;
    {
        auto stream = cache.open(key, profile, geometry, key.seed);
        core::MemOp buffer[64];
        const auto t0 = Clock::now();
        for (std::uint64_t n = 0; n < kOps; n += 64) {
            stream->nextBatch(buffer, 64);
            for (const core::MemOp &op : buffer) {
                cold_sum += consume(op);
            }
        }
        times.cold_loop_ns =
            seconds(t0, Clock::now()) * 1e9 / static_cast<double>(kOps);
    }
    std::uint64_t warm_sum = 0;
    {
        auto stream = cache.open(key, profile, geometry, key.seed);
        core::MemOp buffer[64];
        const auto t0 = Clock::now();
        for (std::uint64_t n = 0; n < kOps; n += 64) {
            stream->nextBatch(buffer, 64);
            for (const core::MemOp &op : buffer) {
                warm_sum += consume(op);
            }
        }
        times.warm_loop_ns =
            seconds(t0, Clock::now()) * 1e9 / static_cast<double>(kOps);
    }
    std::uint64_t plain_sum = 0;
    {
        trace::SyntheticStream stream(profile, geometry, 0, key.seed);
        std::vector<core::MemOp> decoded(kOps);
        for (std::uint64_t n = 0; n < kOps; n += 64) {
            stream.nextBatch(decoded.data() + n, 64);
        }
        const auto t0 = Clock::now();
        for (const core::MemOp &op : decoded) {
            plain_sum += consume(op);
        }
        times.baseline_ns =
            seconds(t0, Clock::now()) * 1e9 / static_cast<double>(kOps);
    }
    if (cold_sum != warm_sum || cold_sum != plain_sum) {
        std::fprintf(stderr,
                     "FATAL: memo cold/warm/plain op streams diverged "
                     "(checksums %llu / %llu / %llu)\n",
                     static_cast<unsigned long long>(cold_sum),
                     static_cast<unsigned long long>(warm_sum),
                     static_cast<unsigned long long>(plain_sum));
        std::exit(1);
    }
    checksum += cold_sum;
    return times;
}

// ---------------------------------------------------------------------------
// End-to-end reference run (both driver modes)

struct SingleRun
{
    double batched_s = 0.0;
    double perop_s = 0.0;
    std::uint64_t steps = 0;
    double quantum_avg_ops = 0.0;
};

/**
 * One complete simulation — coop / G4-1 at bench scale, the fig08
 * configuration — run end to end under each driver mode. The two
 * results must be bit-identical (store::formatResult compares every
 * RunResult field exactly); the timing difference is the batching win
 * in situ, and the driver stats record the quantum length achieved.
 * Always bench scale, so recorded numbers are comparable across runs
 * regardless of --scale.
 */
SingleRun
benchSingleRun(std::uint64_t &checksum)
{
    const trace::WorkloadGroup &group = trace::groupByName("G4-1");
    sim::SystemConfig config =
        sim::makeSystemConfig(4, "coop", sim::RunScale::Bench);

    SingleRun times;
    std::string batched_line;
    std::string perop_line;
    {
        config.driver = sim::DriverMode::Batched;
        sim::System system(config, trace::groupProfiles(group));
        const auto t0 = Clock::now();
        const sim::RunResult result = system.run();
        times.batched_s = seconds(t0, Clock::now());
        times.steps = system.driverStats().steps;
        times.quantum_avg_ops = system.driverStats().avgQuantumOps();
        batched_line = store::formatResult(result);
        checksum += result.total_cycles;
    }
    {
        config.driver = sim::DriverMode::PerOp;
        sim::System system(config, trace::groupProfiles(group));
        const auto t0 = Clock::now();
        const sim::RunResult result = system.run();
        times.perop_s = seconds(t0, Clock::now());
        perop_line = store::formatResult(result);
    }
    if (batched_line != perop_line) {
        std::fprintf(stderr,
                     "FATAL: batched and per-op drivers disagree:\n"
                     "  batched: %s\n  per-op:  %s\n",
                     batched_line.c_str(), perop_line.c_str());
        std::exit(1);
    }
    return times;
}

/**
 * The same reference simulation under the composed sampling estimator
 * (setop: 1-in-4 set sampling + 32 op-sampling windows). The sampled
 * result is an estimate, not a bit-reproduction, so there is no
 * equality check here — accuracy is the differential suite's job
 * (tests/test_sampling.cpp); this measures the wall-clock the
 * estimators buy on one run. sampling_speedup = single_run_s /
 * sampled_run_s is the recorded acceptance number.
 */
double
benchSampledRun(std::uint64_t &checksum)
{
    const trace::WorkloadGroup &group = trace::groupByName("G4-1");
    sim::SystemConfig config =
        sim::makeSystemConfig(4, "coop", sim::RunScale::Bench);
    config.sampling.mode = sampling::Mode::SetOp;

    sim::System system(config, trace::groupProfiles(group));
    const auto t0 = Clock::now();
    const sim::RunResult result = system.run();
    const double sampled_s = seconds(t0, Clock::now());
    if (result.sample_windows == 0) {
        std::fprintf(stderr,
                     "FATAL: sampled run reported no windows\n");
        std::exit(1);
    }
    checksum += result.sample_windows;
    return sampled_s;
}

// ---------------------------------------------------------------------------
// Host metadata

const char *
compilerString()
{
#if defined(__clang__)
    return "clang " __VERSION__;
#elif defined(__GNUC__)
    return "gcc " __VERSION__;
#else
    return "unknown";
#endif
}

/** `git rev-parse --short HEAD`, or "unknown" outside a checkout. */
std::string
gitRevision()
{
    std::string rev = "unknown";
    if (FILE *pipe =
            popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
        char buf[64] = {};
        if (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
            buf[std::strcspn(buf, "\r\n")] = '\0';
            if (buf[0] != '\0') {
                rev = buf;
            }
        }
        pclose(pipe);
    }
    return rev;
}

/**
 * Every simulation key figs 5-16 request at @p scale: the five-scheme
 * sweep over the two- and four-core groups (figs 5-10 and 14-16), the
 * Cooperative threshold sweep (figs 11-13) and all weighted-speedup
 * solo baselines — two ExperimentSpecs, deduplicated.
 */
std::vector<sim::RunKey>
figSweepKeys(const std::string &scale)
{
    api::ExperimentSpec schemes_spec;
    schemes_spec.layout = "none";
    schemes_spec.schemes = {"unmanaged", "fairshare", "cpe", "ucp",
                            "coop"};
    schemes_spec.groups = {"G2-*", "G4-*"};
    schemes_spec.scale = scale;

    api::ExperimentSpec threshold_spec;
    threshold_spec.layout = "none";
    threshold_spec.schemes = {"coop"};
    threshold_spec.groups = {"G2-*"};
    threshold_spec.thresholds = {0.0, 0.01, 0.05, 0.1, 0.2};
    threshold_spec.with_solo = false;
    threshold_spec.scale = scale;

    std::unordered_set<sim::RunKey, sim::RunKeyHash> seen;
    std::vector<sim::RunKey> keys;
    for (const api::ExperimentSpec *spec :
         {&schemes_spec, &threshold_spec}) {
        for (sim::RunKey &key : api::expandSpec(*spec)) {
            if (seen.insert(key).second) {
                keys.push_back(std::move(key));
            }
        }
    }
    return keys;
}

struct SweepTimes
{
    std::size_t runs = 0;
    /** Serial with the stream memo disabled: every run regenerates
     *  every stream, the pre-memo cost. */
    double no_memo_s = 0.0;
    /** Serial with a cold memo: distinct streams generated once,
     *  everything else replayed. */
    double serial_s = 0.0;
    /** Serial with every stream already memoized — the steady state
     *  every repeated sweep (new scheme, another threshold, a
     *  --trace-cache warm start) runs in. */
    double warm_s = 0.0;
    double parallel_s = 0.0;

    /** The sweep-level win of stream memoization: pre-memo cost vs
     *  the replay-everything steady state. */
    double memoSpeedup() const
    {
        return warm_s > 0.0 ? no_memo_s / warm_s : 0.0;
    }
};

/**
 * Serial with the memo off, serial with a cold memo, serial again
 * with the memo warm, and the parallel RunExecutor, all on the full
 * key set. The four cycle totals must agree — memoized, regenerated
 * and pool-scheduled runs are the same simulations.
 */
SweepTimes
benchExecutorSweep(const std::string &scale, std::uint64_t &checksum)
{
    const std::vector<sim::RunKey> keys = figSweepKeys(scale);
    SweepTimes times;
    times.runs = keys.size();

    std::uint64_t no_memo_sum = 0;
    {
        sim::StreamCache::instance().configure({false, 0, ""});
        const auto t0 = Clock::now();
        for (const sim::RunKey &key : keys) {
            no_memo_sum += sim::executeRun(key).total_cycles;
        }
        times.no_memo_s = seconds(t0, Clock::now());
    }

    std::uint64_t serial_sum = 0;
    {
        sim::StreamCache::instance().configure({});
        sim::StreamCache::instance().clear();
        const auto t0 = Clock::now();
        for (const sim::RunKey &key : keys) {
            serial_sum += sim::executeRun(key).total_cycles;
        }
        times.serial_s = seconds(t0, Clock::now());
    }

    std::uint64_t warm_sum = 0;
    {
        const auto t0 = Clock::now();
        for (const sim::RunKey &key : keys) {
            warm_sum += sim::executeRun(key).total_cycles;
        }
        times.warm_s = seconds(t0, Clock::now());
    }

    std::uint64_t parallel_sum = 0;
    {
        auto &executor = sim::RunExecutor::instance();
        executor.clear();
        const auto t0 = Clock::now();
        executor.prefetch(keys);
        for (const sim::RunKey &key : keys) {
            parallel_sum += executor.run(key).total_cycles;
        }
        times.parallel_s = seconds(t0, Clock::now());
    }

    if (serial_sum != parallel_sum || serial_sum != no_memo_sum ||
        serial_sum != warm_sum) {
        std::fprintf(stderr,
                     "FATAL: no-memo/serial/warm/parallel cycle totals "
                     "differ (%llu / %llu / %llu / %llu)\n",
                     static_cast<unsigned long long>(no_memo_sum),
                     static_cast<unsigned long long>(serial_sum),
                     static_cast<unsigned long long>(warm_sum),
                     static_cast<unsigned long long>(parallel_sum));
        std::exit(1);
    }
    checksum += serial_sum;
    return times;
}

} // namespace

int
main(int argc, char **argv)
{
    // No kFlagStore: this bench times the executor itself, and a
    // store serving hits from disk would invalidate the serial vs.
    // parallel sweep comparison — reject the flag instead of
    // silently dropping it.
    const api::CliOptions cli =
        api::parseCli(argc, argv, api::kFlagScale | api::kFlagThreads,
                      "usage: micro_hot_loops [--scale=test|bench|"
                      "paper] [--full] [--threads=N]\n");
    const unsigned threads = api::applyCliThreads(cli);
    const unsigned host_cores = std::thread::hardware_concurrency();
    const char *scale_name = cli.scale_name.c_str();

    std::printf("# hot-path microbenchmarks (scale: %s, threads: %u, "
                "host cores: %u)\n",
                scale_name, threads, host_cores);

    std::uint64_t checksum = 0;
    const LookupTimes lookup = benchMaskedLookup(checksum);
    std::printf("masked lookup (bit-scan)   %8.2f ns/op\n",
                lookup.bitscan_ns);
    std::printf("masked lookup (linear ref) %8.2f ns/op\n",
                lookup.linear_ns);
    std::printf("masked victim (bit-scan)   %8.2f ns/op\n",
                lookup.victim_ns);

    const SliceHashTimes slice = benchSliceHash(checksum);
    std::printf("slice hash (mod)           %8.2f ns/op\n",
                slice.mod_ns);
    std::printf("slice hash (xor fold)      %8.2f ns/op\n",
                slice.xor_ns);
    std::printf("banked lookup (4 slices)   %8.2f ns/op\n",
                slice.banked_lookup_ns);

    const double umon_ns = benchUmonAccess(checksum);
    std::printf("UMON access (full ATD)     %8.2f ns/op\n", umon_ns);

    const DriverCost driver = benchDriverCost(checksum);
    std::printf("driver+dispatch (per-op)   %8.2f ns/step "
                "(loop %.2f - baseline %.2f)\n",
                driver.peropNs(), driver.perop_loop_ns,
                driver.baseline_ns);
    std::printf("driver+dispatch (batched)  %8.2f ns/step "
                "(%.2fx less, quantum avg %.2f ops)\n",
                driver.batchedNs(),
                driver.batchedNs() > 0.0
                    ? driver.peropNs() / driver.batchedNs()
                    : 0.0,
                driver.quantum_avg_ops);

    const ReplayCost replay = benchReplayCost(checksum);
    std::printf("op production (replay)     %8.2f ns/op "
                "(loop %.2f - baseline %.2f)\n",
                replay.replayNs(), replay.replay_loop_ns,
                replay.baseline_ns);
    std::printf("op production (generate)   %8.2f ns/op\n",
                replay.generateNs());

    const MemoCost memo = benchStreamMemo(checksum);
    std::printf("stream memo (cold)         %8.2f ns/op "
                "(generate + encode, loop %.2f - baseline %.2f)\n",
                memo.coldNs(), memo.cold_loop_ns, memo.baseline_ns);
    std::printf("stream memo (warm)         %8.2f ns/op "
                "(must stay within 2x replay %.2f)\n",
                memo.warmNs(), replay.replayNs());
    if (memo.warmNs() > 2.0 * replay.replayNs()) {
        std::fprintf(stderr,
                     "FATAL: warm memo replay %.2f ns/op exceeds 2x "
                     "trace-file replay %.2f ns/op\n",
                     memo.warmNs(), replay.replayNs());
        std::exit(1);
    }

    const SingleRun single = benchSingleRun(checksum);
    std::printf("single run coop/G4-1 bench: batched %.3fs, per-op "
                "%.3fs, %llu steps, quantum avg %.2f ops "
                "(bit-identical)\n",
                single.batched_s, single.perop_s,
                static_cast<unsigned long long>(single.steps),
                single.quantum_avg_ops);

    const double sampled_run_s = benchSampledRun(checksum);
    const double sampling_speedup =
        sampled_run_s > 0.0 ? single.batched_s / sampled_run_s : 0.0;
    std::printf("sampled run coop/G4-1 bench (setop): %.3fs, "
                "%.2fx vs exact\n",
                sampled_run_s, sampling_speedup);

    const SweepTimes sweep = benchExecutorSweep(cli.scale_name, checksum);
    const double speedup =
        sweep.parallel_s > 0.0 ? sweep.serial_s / sweep.parallel_s : 0.0;
    // The executor can only beat the serial loop when the host gives
    // its worker pool more than one core to spread across; a 1-core
    // host (or --threads=1) legitimately reports ~1x, and asserting a
    // parallel win there would fail the bench for the wrong reason.
    // The JSON records the host-derived expectation next to the
    // measurement so CI asserts against the right floor.
    const unsigned worker_cores = std::min(
        sim::RunExecutor::instance().threads(),
        host_cores > 0 ? host_cores : 1u);
    const double sweep_expected_min = worker_cores >= 2 ? 1.2 : 0.8;
    const char *sweep_note =
        worker_cores >= 2
            ? "parallel executor expected to beat the serial sweep"
            : "1 worker core: serial and executor sweeps are "
              "equivalent, speedup ~1.0 expected";
    std::printf("fig05-16 sweep: %zu runs, no-memo %.2fs, cold-memo "
                "%.2fs, warm-memo %.2fs (memo %.2fx), executor(%u "
                "threads) %.2fs, speedup %.2fx (expected >= %.2f; "
                "%s)\n",
                sweep.runs, sweep.no_memo_s, sweep.serial_s,
                sweep.warm_s, sweep.memoSpeedup(),
                sim::RunExecutor::instance().threads(), sweep.parallel_s,
                speedup, sweep_expected_min, sweep_note);
    std::printf("# checksum %llu\n",
                static_cast<unsigned long long>(checksum));

    FILE *json = std::fopen("BENCH_hotpath.json", "w");
    if (json != nullptr) {
        std::fprintf(
            json,
            "{\n"
            "  \"scale\": \"%s\",\n"
            "  \"host_cores\": %u,\n"
            "  \"compiler\": \"%s\",\n"
            "  \"git_rev\": \"%s\",\n"
            "  \"executor_threads\": %u,\n"
            "  \"masked_lookup_bitscan_ns\": %.3f,\n"
            "  \"masked_lookup_linear_ns\": %.3f,\n"
            "  \"masked_victim_ns\": %.3f,\n"
            "  \"slice_hash_mod_ns\": %.3f,\n"
            "  \"slice_hash_ns\": %.3f,\n"
            "  \"banked_lookup_ns\": %.3f,\n"
            "  \"umon_access_ns\": %.3f,\n"
            "  \"run_step_ns\": %.3f,\n"
            "  \"run_step_perop_ns\": %.3f,\n"
            "  \"run_step_baseline_ns\": %.3f,\n"
            "  \"replay_step_ns\": %.3f,\n"
            "  \"generate_step_ns\": %.3f,\n"
            "  \"stream_memo_cold_ns\": %.3f,\n"
            "  \"stream_memo_warm_ns\": %.3f,\n"
            "  \"single_run_s\": %.3f,\n"
            "  \"single_run_perop_s\": %.3f,\n"
            "  \"single_run_steps\": %llu,\n"
            "  \"quantum_avg_ops\": %.3f,\n"
            "  \"sampled_run_s\": %.3f,\n"
            "  \"sampling_speedup\": %.3f,\n"
            "  \"sweep_runs\": %zu,\n"
            "  \"sweep_no_memo_s\": %.3f,\n"
            "  \"sweep_memo_warm_s\": %.3f,\n"
            "  \"sweep_memo_speedup\": %.3f,\n"
            "  \"sweep_serial_s\": %.3f,\n"
            "  \"sweep_parallel_s\": %.3f,\n"
            "  \"sweep_speedup\": %.3f,\n"
            "  \"sweep_speedup_expected_min\": %.3f,\n"
            "  \"sweep_speedup_note\": \"%s\"\n"
            "}\n",
            scale_name, host_cores, compilerString(),
            gitRevision().c_str(),
            sim::RunExecutor::instance().threads(),
            lookup.bitscan_ns, lookup.linear_ns, lookup.victim_ns,
            slice.mod_ns, slice.xor_ns, slice.banked_lookup_ns,
            umon_ns, driver.batchedNs(), driver.peropNs(),
            driver.baseline_ns, replay.replayNs(), replay.generateNs(),
            memo.coldNs(), memo.warmNs(),
            single.batched_s, single.perop_s,
            static_cast<unsigned long long>(single.steps),
            single.quantum_avg_ops, sampled_run_s, sampling_speedup,
            sweep.runs, sweep.no_memo_s, sweep.warm_s,
            sweep.memoSpeedup(), sweep.serial_s,
            sweep.parallel_s, speedup, sweep_expected_min, sweep_note);
        std::fclose(json);
        std::printf("# wrote BENCH_hotpath.json\n");
    }
    return 0;
}
