/**
 * @file
 * Hot-path microbenchmarks for the simulator itself (host throughput,
 * not simulated metrics), covering the three paths this repo's
 * performance work targets:
 *
 *  1. masked tag lookup / victim selection in SetAssocCache, which the
 *     bit-scan way iteration accelerates (a linear 0..63 scan is timed
 *     alongside as the reference the optimisation replaced),
 *  2. UMON ATD accesses with a full (sample_period = 1) directory, the
 *     per-access cost the incremental recency ordering shaved, and
 *  3. end-to-end sweep throughput: the complete fig05-fig16 simulation
 *     key set executed serially on one thread versus through the
 *     parallel RunExecutor.
 *
 * Results are printed and written to BENCH_hotpath.json (overwritten
 * per run; the committed copy at the repo root is the recorded
 * measurement tracking the trajectory from PR to PR). No
 * google-benchmark dependency: plain steady_clock loops, so this
 * always builds.
 */

#include <chrono>
#include <cstdio>
#include <thread>
#include <unordered_set>
#include <vector>

#include <coopsim/experiment.hpp>

#include "cache/cache.hpp"
#include "common/rng.hpp"
#include "umon/umon.hpp"

using namespace coopsim;
using Clock = std::chrono::steady_clock;

namespace
{

double
seconds(Clock::time_point t0, Clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Pre-bit-scan semantics: test every way position under the mask. */
cache::LookupResult
linearLookup(const cache::SetAssocCache &array, Addr addr,
             cache::WayMask mask)
{
    const SetId set = array.slicer().set(addr);
    const Addr tag = array.slicer().tag(addr);
    for (std::uint32_t w = 0; w < array.ways(); ++w) {
        if (!((mask >> w) & 1)) {
            continue;
        }
        const cache::CacheBlock &blk = array.block(set, w);
        if (blk.valid && blk.tag == tag) {
            return {true, static_cast<WayId>(w)};
        }
    }
    return {false, kNoWay};
}

struct LookupTimes
{
    double bitscan_ns = 0.0;
    double linear_ns = 0.0;
    double victim_ns = 0.0;
};

/** Times masked lookup (both implementations) and victim selection. */
LookupTimes
benchMaskedLookup(std::uint64_t &checksum)
{
    // 1 MiB, 16-way: the paper's LLC associativity at a bench-friendly
    // set count.
    cache::SetAssocCache array({1024ull * 16 * 64, 16, 64});
    Rng rng(7);

    // Fill ~3/4 of each set so lookups see a realistic mix of valid
    // and invalid ways.
    const std::uint32_t sets = array.numSets();
    for (SetId set = 0; set < sets; ++set) {
        for (std::uint32_t w = 0; w < 12; ++w) {
            const Addr addr = (rng.nextBelow(1u << 12) << 16) |
                              (static_cast<Addr>(set) << 6);
            const WayId way = array.victim(set, cache::fullMask(16));
            array.insert(addr, set, way,
                         static_cast<CoreId>(rng.nextBelow(2)), false);
        }
    }

    // One shared (addr, mask) stream so all three loops do identical
    // work. Masks are random non-empty partitions of the 16 ways, the
    // shape the way-partitioned LLC probes with.
    constexpr std::size_t kOps = 1u << 20;
    std::vector<Addr> addrs(kOps);
    std::vector<cache::WayMask> masks(kOps);
    for (std::size_t i = 0; i < kOps; ++i) {
        addrs[i] = (rng.nextBelow(1u << 12) << 16) |
                   (rng.nextBelow(sets) << 6);
        cache::WayMask mask = rng.nextBelow(1u << 16);
        masks[i] = mask ? mask : cache::fullMask(16);
    }

    LookupTimes times;
    {
        const auto t0 = Clock::now();
        for (std::size_t i = 0; i < kOps; ++i) {
            checksum += array.lookup(addrs[i], masks[i]).hit;
        }
        times.bitscan_ns = seconds(t0, Clock::now()) * 1e9 / kOps;
    }
    {
        const auto t0 = Clock::now();
        for (std::size_t i = 0; i < kOps; ++i) {
            checksum += linearLookup(array, addrs[i], masks[i]).hit;
        }
        times.linear_ns = seconds(t0, Clock::now()) * 1e9 / kOps;
    }
    {
        const auto t0 = Clock::now();
        for (std::size_t i = 0; i < kOps; ++i) {
            checksum += array.victim(array.slicer().set(addrs[i]),
                                     masks[i]);
        }
        times.victim_ns = seconds(t0, Clock::now()) * 1e9 / kOps;
    }
    return times;
}

/** Times UtilityMonitor::access with a full ATD (every set sampled). */
double
benchUmonAccess(std::uint64_t &checksum)
{
    umon::UmonConfig config;
    config.llc_sets = 1024;
    config.llc_ways = 16;
    config.sample_period = 1;
    umon::UtilityMonitor monitor(config);

    Rng rng(11);
    constexpr std::size_t kOps = 1u << 20;
    std::vector<Addr> addrs(kOps);
    for (std::size_t i = 0; i < kOps; ++i) {
        // ~2x the ATD capacity worth of distinct blocks: plenty of
        // hits at varied recency positions plus steady misses.
        addrs[i] = rng.nextBelow(2048u * 16) << 6;
    }

    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < kOps; ++i) {
        monitor.access(addrs[i]);
    }
    const double ns = seconds(t0, Clock::now()) * 1e9 / kOps;
    checksum += monitor.missCount();
    return ns;
}

/**
 * Every simulation key figs 5-16 request at @p scale: the five-scheme
 * sweep over the two- and four-core groups (figs 5-10 and 14-16), the
 * Cooperative threshold sweep (figs 11-13) and all weighted-speedup
 * solo baselines — two ExperimentSpecs, deduplicated.
 */
std::vector<sim::RunKey>
figSweepKeys(const std::string &scale)
{
    api::ExperimentSpec schemes_spec;
    schemes_spec.layout = "none";
    schemes_spec.schemes = {"unmanaged", "fairshare", "cpe", "ucp",
                            "coop"};
    schemes_spec.groups = {"G2-*", "G4-*"};
    schemes_spec.scale = scale;

    api::ExperimentSpec threshold_spec;
    threshold_spec.layout = "none";
    threshold_spec.schemes = {"coop"};
    threshold_spec.groups = {"G2-*"};
    threshold_spec.thresholds = {0.0, 0.01, 0.05, 0.1, 0.2};
    threshold_spec.with_solo = false;
    threshold_spec.scale = scale;

    std::unordered_set<sim::RunKey, sim::RunKeyHash> seen;
    std::vector<sim::RunKey> keys;
    for (const api::ExperimentSpec *spec :
         {&schemes_spec, &threshold_spec}) {
        for (sim::RunKey &key : api::expandSpec(*spec)) {
            if (seen.insert(key).second) {
                keys.push_back(std::move(key));
            }
        }
    }
    return keys;
}

struct SweepTimes
{
    std::size_t runs = 0;
    double serial_s = 0.0;
    double parallel_s = 0.0;
};

/** Serial (one thread, no pool) vs RunExecutor on the full key set. */
SweepTimes
benchExecutorSweep(const std::string &scale, std::uint64_t &checksum)
{
    const std::vector<sim::RunKey> keys = figSweepKeys(scale);
    SweepTimes times;
    times.runs = keys.size();

    std::uint64_t serial_sum = 0;
    {
        const auto t0 = Clock::now();
        for (const sim::RunKey &key : keys) {
            serial_sum += sim::executeRun(key).total_cycles;
        }
        times.serial_s = seconds(t0, Clock::now());
    }

    std::uint64_t parallel_sum = 0;
    {
        auto &executor = sim::RunExecutor::instance();
        executor.clear();
        const auto t0 = Clock::now();
        executor.prefetch(keys);
        for (const sim::RunKey &key : keys) {
            parallel_sum += executor.run(key).total_cycles;
        }
        times.parallel_s = seconds(t0, Clock::now());
    }

    if (serial_sum != parallel_sum) {
        std::fprintf(stderr,
                     "FATAL: serial/parallel cycle totals differ "
                     "(%llu vs %llu)\n",
                     static_cast<unsigned long long>(serial_sum),
                     static_cast<unsigned long long>(parallel_sum));
        std::exit(1);
    }
    checksum += serial_sum;
    return times;
}

} // namespace

int
main(int argc, char **argv)
{
    // No kFlagStore: this bench times the executor itself, and a
    // store serving hits from disk would invalidate the serial vs.
    // parallel sweep comparison — reject the flag instead of
    // silently dropping it.
    const api::CliOptions cli =
        api::parseCli(argc, argv, api::kFlagScale | api::kFlagThreads,
                      "usage: micro_hot_loops [--scale=test|bench|"
                      "paper] [--full] [--threads=N]\n");
    const unsigned threads = api::applyCliThreads(cli);
    const unsigned host_cores = std::thread::hardware_concurrency();
    const char *scale_name = cli.scale_name.c_str();

    std::printf("# hot-path microbenchmarks (scale: %s, threads: %u, "
                "host cores: %u)\n",
                scale_name, threads, host_cores);

    std::uint64_t checksum = 0;
    const LookupTimes lookup = benchMaskedLookup(checksum);
    std::printf("masked lookup (bit-scan)   %8.2f ns/op\n",
                lookup.bitscan_ns);
    std::printf("masked lookup (linear ref) %8.2f ns/op\n",
                lookup.linear_ns);
    std::printf("masked victim (bit-scan)   %8.2f ns/op\n",
                lookup.victim_ns);

    const double umon_ns = benchUmonAccess(checksum);
    std::printf("UMON access (full ATD)     %8.2f ns/op\n", umon_ns);

    const SweepTimes sweep = benchExecutorSweep(cli.scale_name, checksum);
    const double speedup =
        sweep.parallel_s > 0.0 ? sweep.serial_s / sweep.parallel_s : 0.0;
    std::printf("fig05-16 sweep: %zu runs, serial %.2fs, "
                "executor(%u threads) %.2fs, speedup %.2fx\n",
                sweep.runs, sweep.serial_s,
                sim::RunExecutor::instance().threads(), sweep.parallel_s,
                speedup);
    std::printf("# checksum %llu\n",
                static_cast<unsigned long long>(checksum));

    FILE *json = std::fopen("BENCH_hotpath.json", "w");
    if (json != nullptr) {
        std::fprintf(
            json,
            "{\n"
            "  \"scale\": \"%s\",\n"
            "  \"host_cores\": %u,\n"
            "  \"executor_threads\": %u,\n"
            "  \"masked_lookup_bitscan_ns\": %.3f,\n"
            "  \"masked_lookup_linear_ns\": %.3f,\n"
            "  \"masked_victim_ns\": %.3f,\n"
            "  \"umon_access_ns\": %.3f,\n"
            "  \"sweep_runs\": %zu,\n"
            "  \"sweep_serial_s\": %.3f,\n"
            "  \"sweep_parallel_s\": %.3f,\n"
            "  \"sweep_speedup\": %.3f\n"
            "}\n",
            scale_name, host_cores,
            sim::RunExecutor::instance().threads(),
            lookup.bitscan_ns, lookup.linear_ns, lookup.victim_ns,
            umon_ns, sweep.runs, sweep.serial_s, sweep.parallel_s,
            speedup);
        std::fclose(json);
        std::printf("# wrote BENCH_hotpath.json\n");
    }
    return 0;
}
