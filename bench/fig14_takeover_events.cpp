/**
 * @file
 * Reproduces Figure 14: breakdown of the events that set takeover bits
 * while ways migrate between cores (donor/recipient x hit/miss), as a
 * fraction of all bit-setting events per workload group. The same
 * table is reproducible from a spec file:
 * `coopsim_cli --spec=specs/fig14.spec`.
 *
 * Groups whose allocation never redistributes at the bench scale show
 * no events (printed as "-"); the paper's expectation — donor hits +
 * recipient misses ~ two-thirds of events — holds on the groups that
 * do migrate.
 */

#include <coopsim/experiment.hpp>

int
main(int argc, char **argv)
{
    namespace api = coopsim::api;
    const api::CliOptions cli = api::benchSetup(argc, argv);

    api::ExperimentSpec spec;
    spec.name = "fig14";
    spec.title = "Figure 14: events setting takeover bits "
                 "(fractions per group)";
    spec.layout = "takeover";
    spec.with_solo = false;
    spec.schemes = {"coop"};
    spec.groups = {"G2-*"};
    spec.scale = cli.scale_name;
    api::printExperiment(spec);
    return 0;
}
