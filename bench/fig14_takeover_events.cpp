/**
 * @file
 * Reproduces Figure 14: breakdown of the events that set takeover bits
 * while ways migrate between cores (donor/recipient x hit/miss), as a
 * fraction of all bit-setting events per workload group.
 *
 * Groups whose allocation never redistributes at the bench scale show
 * no events (printed as "-"); the paper's expectation — donor hits +
 * recipient misses ~ two-thirds of events — holds on the groups that
 * do migrate.
 */

#include <cstdio>

#include <coopsim/experiment.hpp>

int
main(int argc, char **argv)
{
    namespace api = coopsim::api;
    const api::CliOptions cli = api::benchSetup(argc, argv);

    api::ExperimentSpec spec;
    spec.name = "fig14";
    spec.layout = "none";
    spec.with_solo = false;
    spec.schemes = {"coop"};
    spec.groups = {"G2-*"};
    spec.scale = cli.scale_name;
    const api::ExperimentResults results = api::runExperiment(spec);

    std::printf("Figure 14: events setting takeover bits "
                "(fractions per group)\n");
    std::printf("%-8s %10s %10s %10s %10s %10s\n", "group", "recipMiss",
                "recipHit", "donorMiss", "donorHit", "events");

    std::uint64_t tdh = 0;
    std::uint64_t tdm = 0;
    std::uint64_t trh = 0;
    std::uint64_t trm = 0;
    for (const auto &group : results.groups()) {
        api::Cell cell;
        cell.group = group.name;
        const auto &r = results.result(cell);
        const std::uint64_t total = r.donor_hits + r.donor_misses +
                                    r.recipient_hits +
                                    r.recipient_misses;
        tdh += r.donor_hits;
        tdm += r.donor_misses;
        trh += r.recipient_hits;
        trm += r.recipient_misses;
        if (total == 0) {
            std::printf("%-8s %10s %10s %10s %10s %10s\n",
                        group.name.c_str(), "-", "-", "-", "-", "0");
            continue;
        }
        const double d = static_cast<double>(total);
        std::printf("%-8s %10.3f %10.3f %10.3f %10.3f %10llu\n",
                    group.name.c_str(), r.recipient_misses / d,
                    r.recipient_hits / d, r.donor_misses / d,
                    r.donor_hits / d,
                    static_cast<unsigned long long>(total));
    }
    const std::uint64_t total = tdh + tdm + trh + trm;
    if (total > 0) {
        const double d = static_cast<double>(total);
        std::printf("%-8s %10.3f %10.3f %10.3f %10.3f %10llu\n", "AVG",
                    trm / d, trh / d, tdm / d, tdh / d,
                    static_cast<unsigned long long>(total));
        std::printf("# donor hits + recipient misses = %.3f "
                    "(paper: ~two-thirds)\n",
                    (tdh + trm) / d);
    }
    return 0;
}
