#include "bench_common.hpp"

#include <cstdio>

#include "common/stats.hpp"

namespace coopbench
{

using namespace coopsim;

const std::vector<Scheme> &
allSchemes()
{
    static const std::vector<Scheme> schemes = {
        Scheme::Unmanaged, Scheme::FairShare, Scheme::DynamicCpe,
        Scheme::Ucp, Scheme::Cooperative,
    };
    return schemes;
}

RunOptions
optionsFromArgs(int argc, char **argv)
{
    RunOptions options;
    options.scale = sim::scaleFromArgs(argc, argv);
    const unsigned threads = sim::applyThreadArgs(argc, argv);
    if (options.scale == sim::RunScale::Paper) {
        std::printf("# scale: paper (1B insts/app, 5M-cycle epochs)\n");
    } else if (options.scale == sim::RunScale::Test) {
        std::printf("# scale: test (tiny; use --full for paper "
                    "scale)\n");
    } else {
        std::printf("# scale: bench miniature (use --full for paper "
                    "scale)\n");
    }
    std::printf("# threads: %u (--threads=N / COOPSIM_THREADS)\n",
                threads);
    return options;
}

void
printNormalisedTable(const std::string &title,
                     const std::vector<WorkloadGroup> &groups,
                     const Metric &metric, const RunOptions &options,
                     bool higher_better, bool with_solo)
{
    // Enqueue the full (scheme x group) sweep — plus every solo run
    // when the metric needs the baselines — up front; the collection
    // loops below then only read memoised results while the executor
    // keeps all host cores busy.
    sim::prefetchGroups(allSchemes(), groups, options, with_solo);

    std::printf("%s\n", title.c_str());
    std::printf("# normalised to Fair Share; %s is better\n",
                higher_better ? "higher" : "lower");
    std::printf("%-8s", "group");
    for (const Scheme s : allSchemes()) {
        std::printf(" %12s", llc::schemeName(s));
    }
    std::printf("\n");

    std::vector<std::vector<double>> norms(allSchemes().size());
    for (const WorkloadGroup &group : groups) {
        const double baseline =
            metric(Scheme::FairShare, group, options);
        std::printf("%-8s", group.name.c_str());
        for (std::size_t i = 0; i < allSchemes().size(); ++i) {
            const double value =
                metric(allSchemes()[i], group, options);
            const double norm = sim::normalizeTo(value, baseline);
            norms[i].push_back(norm);
            std::printf(" %12.3f", norm);
        }
        std::printf("\n");
    }

    std::printf("%-8s", "AVG");
    for (std::size_t i = 0; i < allSchemes().size(); ++i) {
        std::printf(" %12.3f", stats::geomean(norms[i]));
    }
    std::printf("\n");
}

double
speedupMetric(Scheme scheme, const WorkloadGroup &group,
              const RunOptions &options)
{
    return sim::groupWeightedSpeedup(scheme, group, options);
}

double
dynamicEnergyMetric(Scheme scheme, const WorkloadGroup &group,
                    const RunOptions &options)
{
    return sim::runGroup(scheme, group, options).dynamic_energy_nj;
}

double
staticEnergyMetric(Scheme scheme, const WorkloadGroup &group,
                   const RunOptions &options)
{
    return sim::runGroup(scheme, group, options).static_energy_nj;
}

const std::vector<double> &
thresholdSweep()
{
    static const std::vector<double> sweep = {0.0, 0.01, 0.05, 0.1,
                                              0.2};
    return sweep;
}

void
printThresholdTable(
    const std::string &title,
    const std::function<double(const WorkloadGroup &,
                               const RunOptions &)> &metric,
    const RunOptions &base_options, bool with_solo)
{
    // Full sweep up front: every (group, T) cell — thresholdSweep()
    // opens with the T=0 baseline — and, for the speedup metric, the
    // solo baselines.
    {
        std::vector<sim::RunKey> keys;
        for (const WorkloadGroup &group : trace::twoCoreGroups()) {
            const auto num_cores =
                static_cast<std::uint32_t>(group.apps.size());
            for (const double t : thresholdSweep()) {
                RunOptions options = base_options;
                options.threshold = t;
                keys.push_back(sim::groupKey(
                    coopsim::llc::Scheme::Cooperative, group, options));
            }
            if (with_solo) {
                for (const std::string &app : group.apps) {
                    keys.push_back(
                        sim::soloKey(app, num_cores, base_options));
                }
            }
        }
        sim::prefetch(keys);
    }

    std::printf("%s\n", title.c_str());
    std::printf("# Cooperative Partitioning, normalised to T = 0\n");
    std::printf("%-8s", "group");
    for (const double t : thresholdSweep()) {
        std::printf("       T=%4.2f", t);
    }
    std::printf("\n");

    std::vector<std::vector<double>> norms(thresholdSweep().size());
    for (const WorkloadGroup &group : trace::twoCoreGroups()) {
        RunOptions zero = base_options;
        zero.threshold = 0.0;
        const double baseline = metric(group, zero);
        std::printf("%-8s", group.name.c_str());
        for (std::size_t i = 0; i < thresholdSweep().size(); ++i) {
            RunOptions options = base_options;
            options.threshold = thresholdSweep()[i];
            const double norm =
                sim::normalizeTo(metric(group, options), baseline);
            norms[i].push_back(norm);
            std::printf(" %12.3f", norm);
        }
        std::printf("\n");
    }
    std::printf("%-8s", "AVG");
    for (std::size_t i = 0; i < thresholdSweep().size(); ++i) {
        std::printf(" %12.3f", stats::geomean(norms[i]));
    }
    std::printf("\n");
}

} // namespace coopbench
