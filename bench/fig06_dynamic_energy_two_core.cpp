/**
 * @file
 * Reproduces Figure 6: dynamic energy consumption of the two-
 * application workloads, normalised to Fair Share. Expected shape:
 * Unmanaged ~2.0, UCP ~2.04 (monitor overhead), Cooperative lowest.
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    const auto options = coopbench::optionsFromArgs(argc, argv);
    coopbench::printNormalisedTable(
        "Figure 6: dynamic energy, two-application workloads",
        coopsim::trace::twoCoreGroups(),
        coopbench::dynamicEnergyMetric, options,
        /*higher_better=*/false, /*with_solo=*/false);
    return 0;
}
