/**
 * @file
 * Reproduces Figure 6: dynamic energy consumption of the two-
 * application workloads, normalised to Fair Share. Expected shape:
 * Unmanaged ~2.0, UCP ~2.04 (monitor overhead), Cooperative lowest.
 */

#include <coopsim/experiment.hpp>

int
main(int argc, char **argv)
{
    namespace api = coopsim::api;
    const api::CliOptions cli = api::benchSetup(argc, argv);

    api::ExperimentSpec spec;
    spec.name = "fig06";
    spec.title = "Figure 6: dynamic energy, two-application workloads";
    spec.metric = "dynamic_energy";
    spec.higher_better = false;
    spec.with_solo = false;
    spec.schemes = {"unmanaged", "fairshare", "cpe", "ucp", "coop"};
    spec.groups = {"G2-*"};
    spec.scale = cli.scale_name;
    api::printExperiment(spec);
    return 0;
}
