/**
 * @file
 * Reproduces Figure 7: static (leakage) energy of the two-application
 * workloads, normalised to Fair Share. Only the way-gating schemes
 * (Cooperative, Dynamic CPE) save static energy.
 */

#include <coopsim/experiment.hpp>

int
main(int argc, char **argv)
{
    namespace api = coopsim::api;
    const api::CliOptions cli = api::benchSetup(argc, argv);

    api::ExperimentSpec spec;
    spec.name = "fig07";
    spec.title = "Figure 7: static energy, two-application workloads";
    spec.metric = "static_energy";
    spec.higher_better = false;
    spec.with_solo = false;
    spec.schemes = {"unmanaged", "fairshare", "cpe", "ucp", "coop"};
    spec.groups = {"G2-*"};
    spec.scale = cli.scale_name;
    api::printExperiment(spec);
    return 0;
}
