/**
 * @file
 * Reproduces Figure 7: static (leakage) energy of the two-application
 * workloads, normalised to Fair Share. Only the way-gating schemes
 * (Cooperative, Dynamic CPE) save static energy.
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    const auto options = coopbench::optionsFromArgs(argc, argv);
    coopbench::printNormalisedTable(
        "Figure 7: static energy, two-application workloads",
        coopsim::trace::twoCoreGroups(),
        coopbench::staticEnergyMetric, options,
        /*higher_better=*/false, /*with_solo=*/false);
    return 0;
}
