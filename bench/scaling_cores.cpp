/**
 * @file
 * The N-core scaling sweep: weighted speedup of the generated 8- and
 * 16-application heterogeneous mixes (trace/workloads.hpp) under
 * Cooperative Partitioning, swept across the partitioner registry —
 * the paper's look-ahead allocator vs an equal split vs the greedy
 * hill-climb — and normalised to look-ahead. The same table is
 * reproducible from a spec file:
 * `coopsim_cli --spec=specs/scaling.spec`.
 *
 * This is the sweep the topology table and the tournament-tree event
 * loop exist for: the 8- and 16-core rows (8 MB/32-way and
 * 16 MB/64-way LLCs) extrapolate the paper's per-core scaling rule
 * beyond its 2/4-core evaluation.
 */

#include <coopsim/experiment.hpp>

int
main(int argc, char **argv)
{
    namespace api = coopsim::api;
    const api::CliOptions cli = api::benchSetup(argc, argv);

    api::ExperimentSpec spec;
    spec.name = "scaling";
    spec.title =
        "Scaling: weighted speedup of 8/16-core mixes by partitioner";
    spec.layout = "partitioners";
    spec.metric = "speedup";
    spec.baseline = "lookahead";
    spec.schemes = {"coop"};
    spec.groups = {"G8-*", "G16-*"};
    spec.cores = {8, 16};
    spec.partitioners = {"lookahead", "equalshare", "greedy"};
    spec.scale = cli.scale_name;
    api::printExperiment(spec);
    return 0;
}
