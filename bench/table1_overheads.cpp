/**
 * @file
 * Reproduces Table 1: hardware storage overheads of Cooperative
 * Partitioning (takeover bit vectors + RAP/WAP registers) for the
 * two-core and four-core configurations.
 *
 * Note: the paper lists 2048 sets of takeover vector per core for both
 * caches, although both its LLC organisations (2 MB/8-way/64 B and
 * 4 MB/16-way/64 B) have 4096 sets. This bench prints both the
 * geometry-derived numbers and the paper's stated ones.
 */

#include <cstdio>

#include "sim/system.hpp"

namespace
{

void
printConfig(const char *label, std::uint32_t cores, std::uint64_t sets,
            std::uint32_t ways)
{
    const std::uint64_t takeover = sets * cores;
    const std::uint64_t rap = static_cast<std::uint64_t>(ways) * cores;
    const std::uint64_t wap = rap;
    std::printf("%s (%u cores, %llu sets, %u ways)\n", label, cores,
                static_cast<unsigned long long>(sets), ways);
    std::printf("  %-22s %8llu bits (%llu * %u)\n",
                "Takeover bit vectors",
                static_cast<unsigned long long>(takeover),
                static_cast<unsigned long long>(sets), cores);
    std::printf("  %-22s %8llu bits (%u * %u)\n", "RAP",
                static_cast<unsigned long long>(rap), ways, cores);
    std::printf("  %-22s %8llu bits (%u * %u)\n", "WAP",
                static_cast<unsigned long long>(wap), ways, cores);
    std::printf("  %-22s %8llu bits\n", "Total",
                static_cast<unsigned long long>(takeover + rap + wap));
}

} // namespace

int
main()
{
    std::printf("Table 1: hardware overheads of Cooperative "
                "Partitioning\n\n");

    using coopsim::sim::makeSystemConfig;
    using coopsim::sim::RunScale;
    const auto two = makeSystemConfig(2, "coop", RunScale::Paper);
    const auto four = makeSystemConfig(4, "coop", RunScale::Paper);

    std::printf("-- geometry-derived --\n");
    printConfig("Two core", two.num_cores, two.llc.geometry.numSets(),
                two.llc.geometry.ways);
    printConfig("Four core", four.num_cores,
                four.llc.geometry.numSets(), four.llc.geometry.ways);

    std::printf("\n-- as stated in the paper (2048-set vectors) --\n");
    printConfig("Two core", 2, 2048, 8);
    printConfig("Four core", 4, 2048, 16);
    std::printf("\n# paper totals: 4128 (two-core), 8320 (four-core)\n");
    return 0;
}
