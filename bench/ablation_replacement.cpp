/**
 * @file
 * Ablation: replacement policy inside the partitions. The paper notes
 * way-aligned transfer makes victim choice "closer in performance to a
 * random choice of replacement block" — this bench quantifies LRU vs
 * Random vs MRU victims within each core's ways under Cooperative
 * Partitioning.
 */

#include <cstdio>

#include <coopsim/experiment.hpp>

int
main(int argc, char **argv)
{
    namespace api = coopsim::api;
    const api::CliOptions cli = api::benchSetup(argc, argv);

    api::ExperimentSpec spec;
    spec.name = "ablation_replacement";
    spec.layout = "none";
    spec.schemes = {"coop"};
    spec.groups = {"G2-2", "G2-3", "G2-8", "G2-12"};
    spec.repl = {"lru", "random", "mru"};
    spec.scale = cli.scale_name;
    const api::ExperimentResults results = api::runExperiment(spec);

    std::printf("Ablation: intra-partition replacement policy "
                "(Cooperative)\n");
    std::printf("%-8s %10s %10s %10s\n", "group", "LRU", "Random",
                "MRU");

    for (const auto &group : results.groups()) {
        std::printf("%-8s", group.name.c_str());
        for (const std::string &policy : results.spec().repl) {
            api::Cell cell;
            cell.group = group.name;
            cell.repl = policy;
            std::printf(" %10.3f", results.weightedSpeedup(cell));
        }
        std::printf("\n");
    }
    return 0;
}
