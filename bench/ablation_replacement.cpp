/**
 * @file
 * Ablation: replacement policy inside the partitions. The paper notes
 * way-aligned transfer makes victim choice "closer in performance to a
 * random choice of replacement block" — this bench quantifies LRU vs
 * Random vs MRU victims within each core's ways under Cooperative
 * Partitioning.
 */

#include <cstdio>

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace coopsim;
    const auto options = coopbench::optionsFromArgs(argc, argv);

    const std::vector<const char *> names = {"G2-2", "G2-3", "G2-8",
                                             "G2-12"};
    const std::vector<cache::ReplPolicy> policies = {
        cache::ReplPolicy::Lru, cache::ReplPolicy::Random,
        cache::ReplPolicy::Mru};

    // Full sweep up front: every policy per group plus solo baselines.
    {
        std::vector<sim::RunKey> keys;
        for (const char *name : names) {
            const auto &group = trace::groupByName(name);
            for (const cache::ReplPolicy policy : policies) {
                sim::RunOptions opts = options;
                opts.repl = policy;
                keys.push_back(sim::groupKey(llc::Scheme::Cooperative,
                                             group, opts));
            }
            for (const std::string &app : group.apps) {
                keys.push_back(sim::soloKey(app, 2, options));
            }
        }
        sim::prefetch(keys);
    }

    std::printf("Ablation: intra-partition replacement policy "
                "(Cooperative)\n");
    std::printf("%-8s %10s %10s %10s\n", "group", "LRU", "Random",
                "MRU");

    for (const char *name : names) {
        const auto &group = trace::groupByName(name);
        std::printf("%-8s", name);
        for (const cache::ReplPolicy policy : policies) {
            sim::RunOptions opts = options;
            opts.repl = policy;
            const sim::RunResult &r =
                sim::runGroup(llc::Scheme::Cooperative, group, opts);
            double ws = 0.0;
            for (std::size_t i = 0; i < group.apps.size(); ++i) {
                ws += r.apps[i].ipc /
                      sim::soloIpc(group.apps[i], 2, options);
            }
            std::printf(" %10.3f", ws);
        }
        std::printf("\n");
    }
    return 0;
}
