/**
 * @file
 * Microbenchmarks of the LLC access hot path under each scheme
 * (google-benchmark): simulator throughput, not simulated metrics.
 */

#include <benchmark/benchmark.h>

#include "llc/schemes.hpp"

using namespace coopsim;

namespace
{

llc::LlcConfig
benchConfig()
{
    llc::LlcConfig config;
    config.geometry = {512ull * 8 * 64, 8, 64};
    config.num_cores = 2;
    config.umon_sample_period = 4;
    return config;
}

void
runAccessLoop(benchmark::State &state, llc::Scheme scheme)
{
    mem::DramModel dram;
    const auto llc = llc::makeLlc(scheme, benchConfig(), dram);
    Rng rng(1);
    Cycle now = 0;
    for (auto _ : state) {
        const CoreId core = static_cast<CoreId>(rng.nextBelow(2));
        const Addr addr = (static_cast<Addr>(core + 1) << 40) |
                          (rng.nextBelow(1u << 15) << 6);
        now += 3;
        benchmark::DoNotOptimize(
            llc->access(core, addr, AccessType::Read, now));
    }
}

} // namespace

static void
BM_LlcUnmanaged(benchmark::State &state)
{
    runAccessLoop(state, llc::Scheme::Unmanaged);
}
BENCHMARK(BM_LlcUnmanaged);

static void
BM_LlcFairShare(benchmark::State &state)
{
    runAccessLoop(state, llc::Scheme::FairShare);
}
BENCHMARK(BM_LlcFairShare);

static void
BM_LlcUcp(benchmark::State &state)
{
    runAccessLoop(state, llc::Scheme::Ucp);
}
BENCHMARK(BM_LlcUcp);

static void
BM_LlcCooperative(benchmark::State &state)
{
    runAccessLoop(state, llc::Scheme::Cooperative);
}
BENCHMARK(BM_LlcCooperative);
