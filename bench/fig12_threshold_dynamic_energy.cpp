/**
 * @file
 * Reproduces Figure 12: impact of the takeover threshold T on dynamic
 * energy, normalised to T = 0. Larger T gates more ways and probes
 * fewer tags, so energy falls as T rises.
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    const auto options = coopbench::optionsFromArgs(argc, argv);
    coopbench::printThresholdTable(
        "Figure 12: takeover threshold vs dynamic energy",
        [](const coopbench::WorkloadGroup &group,
           const coopbench::RunOptions &opts) {
            return coopsim::sim::runGroup(
                       coopsim::llc::Scheme::Cooperative, group, opts)
                .dynamic_energy_nj;
        },
        options, /*with_solo=*/false);
    return 0;
}
