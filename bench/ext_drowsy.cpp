/**
 * @file
 * Extension bench (DESIGN.md §8): gated-Vdd vs drowsy static-energy
 * saving for Cooperative Partitioning.
 *
 * The paper uses gated-Vdd (non state-preserving) for unowned ways and
 * cites Kedzierski et al.'s drowsy alternative as composable future
 * work. Drowsy keeps a way's contents at ~25% of the leakage, so a way
 * that bounces off and back on before its lines are overwritten warms
 * up for free; gated-Vdd leaks nothing but always refills from DRAM.
 */

#include <cstdio>

#include <coopsim/experiment.hpp>

int
main(int argc, char **argv)
{
    namespace api = coopsim::api;
    const api::CliOptions cli = api::benchSetup(argc, argv);

    api::ExperimentSpec spec;
    spec.name = "ext_drowsy";
    spec.layout = "none";
    spec.schemes = {"coop"};
    spec.groups = {"G2-2", "G2-4", "G2-7", "G2-12"};
    spec.gating = {"gatedvdd", "drowsy"};
    spec.scale = cli.scale_name;
    const api::ExperimentResults results = api::runExperiment(spec);

    std::printf("Extension: gated-Vdd vs drowsy gating "
                "(Cooperative)\n");
    std::printf("%-8s %-10s %10s %12s %12s %10s\n", "group", "gating",
                "w.speedup", "dyn(mJ)", "stat(mJ)", "misses");

    for (const auto &group : results.groups()) {
        for (const std::string &mode : results.spec().gating) {
            api::Cell cell;
            cell.group = group.name;
            cell.gating = mode;
            const auto &r = results.result(cell);
            const double ws = results.weightedSpeedup(cell);
            std::uint64_t misses = 0;
            for (const auto &app : r.apps) {
                misses += app.llc_misses;
            }
            std::printf("%-8s %-10s %10.3f %12.4f %12.4f %10llu\n",
                        group.name.c_str(),
                        mode == "gatedvdd" ? "gatedVdd" : "drowsy", ws,
                        r.dynamic_energy_nj * 1e-6,
                        r.static_energy_nj * 1e-6,
                        static_cast<unsigned long long>(misses));
        }
    }
    std::printf("# drowsy trades residual leakage (~25%% per dark "
                "way) for fewer refill\n# misses when ways bounce "
                "off/on across phases.\n");
    return 0;
}
