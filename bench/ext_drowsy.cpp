/**
 * @file
 * Extension bench (DESIGN.md §8): gated-Vdd vs drowsy static-energy
 * saving for Cooperative Partitioning.
 *
 * The paper uses gated-Vdd (non state-preserving) for unowned ways and
 * cites Kedzierski et al.'s drowsy alternative as composable future
 * work. Drowsy keeps a way's contents at ~25% of the leakage, so a way
 * that bounces off and back on before its lines are overwritten warms
 * up for free; gated-Vdd leaks nothing but always refills from DRAM.
 */

#include <cstdio>

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace coopsim;
    const auto options = coopbench::optionsFromArgs(argc, argv);

    const std::vector<const char *> names = {"G2-2", "G2-4", "G2-7",
                                             "G2-12"};

    // Full sweep up front: both gating modes plus the solo baselines.
    {
        std::vector<sim::RunKey> keys;
        for (const char *name : names) {
            const auto &group = trace::groupByName(name);
            for (const llc::GatingMode mode :
                 {llc::GatingMode::GatedVdd, llc::GatingMode::Drowsy}) {
                sim::RunOptions opts = options;
                opts.gating = mode;
                keys.push_back(sim::groupKey(llc::Scheme::Cooperative,
                                             group, opts));
            }
            for (const std::string &app : group.apps) {
                keys.push_back(sim::soloKey(app, 2, options));
            }
        }
        sim::prefetch(keys);
    }

    std::printf("Extension: gated-Vdd vs drowsy gating "
                "(Cooperative)\n");
    std::printf("%-8s %-10s %10s %12s %12s %10s\n", "group", "gating",
                "w.speedup", "dyn(mJ)", "stat(mJ)", "misses");

    for (const char *name : names) {
        const auto &group = trace::groupByName(name);
        for (const llc::GatingMode mode :
             {llc::GatingMode::GatedVdd, llc::GatingMode::Drowsy}) {
            sim::RunOptions opts = options;
            opts.gating = mode;
            const sim::RunResult &r =
                sim::runGroup(llc::Scheme::Cooperative, group, opts);

            double ws = 0.0;
            for (std::size_t i = 0; i < group.apps.size(); ++i) {
                ws += r.apps[i].ipc /
                      sim::soloIpc(group.apps[i], 2, options);
            }
            std::uint64_t misses = 0;
            for (const auto &app : r.apps) {
                misses += app.llc_misses;
            }
            std::printf("%-8s %-10s %10.3f %12.4f %12.4f %10llu\n",
                        name,
                        mode == llc::GatingMode::GatedVdd ? "gatedVdd"
                                                          : "drowsy",
                        ws, r.dynamic_energy_nj * 1e-6,
                        r.static_energy_nj * 1e-6,
                        static_cast<unsigned long long>(misses));
        }
    }
    std::printf("# drowsy trades residual leakage (~25%% per dark "
                "way) for fewer refill\n# misses when ways bounce "
                "off/on across phases.\n");
    return 0;
}
