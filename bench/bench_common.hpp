/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries: argument
 * parsing, the scheme list, and table printers in the layout of the
 * paper's figures (one row per workload group, one column per scheme,
 * normalised to Fair Share, geometric-mean AVG row).
 */

#ifndef COOPSIM_BENCH_COMMON_HPP
#define COOPSIM_BENCH_COMMON_HPP

#include <functional>
#include <string>
#include <vector>

#include "sim/runner.hpp"

namespace coopbench
{

using coopsim::llc::Scheme;
using coopsim::sim::RunOptions;
using coopsim::sim::RunResult;
using coopsim::trace::WorkloadGroup;

/** The five schemes in the paper's legend order. */
const std::vector<Scheme> &allSchemes();

/** Parses --full / --scale=... and returns ready RunOptions. */
RunOptions optionsFromArgs(int argc, char **argv);

/** Metric extracted from one (scheme, group) run. */
using Metric = std::function<double(Scheme, const WorkloadGroup &,
                                    const RunOptions &)>;

/**
 * Prints a figure-style table: rows = groups (+ AVG geomean), columns
 * = schemes, every cell normalised to the FairShare column.
 *
 * @param title        Figure title line.
 * @param groups       Workload groups (G2-* or G4-*).
 * @param metric       Raw metric (normalisation applied here).
 * @param higher_better Annotates the direction in the header.
 * @param with_solo    Prefetch the per-app solo baselines too; only
 *                     the weighted-speedup metric reads them, so the
 *                     energy benches pass false and skip ~2 runs per
 *                     group of wasted simulation.
 */
void printNormalisedTable(const std::string &title,
                          const std::vector<WorkloadGroup> &groups,
                          const Metric &metric,
                          const RunOptions &options, bool higher_better,
                          bool with_solo = true);

/** Weighted-speedup metric (Equation 1). */
double speedupMetric(Scheme scheme, const WorkloadGroup &group,
                     const RunOptions &options);

/** The paper's dynamic-energy metric (tag side + monitors + drains). */
double dynamicEnergyMetric(Scheme scheme, const WorkloadGroup &group,
                           const RunOptions &options);

/** Static (leakage) energy metric. */
double staticEnergyMetric(Scheme scheme, const WorkloadGroup &group,
                          const RunOptions &options);

/**
 * Prints a threshold-sweep table (Figs 11-13): rows = groups, columns
 * = T values, normalised to T = 0, Cooperative only. @p with_solo as
 * in printNormalisedTable (true only for the speedup metric).
 */
void printThresholdTable(
    const std::string &title,
    const std::function<double(const WorkloadGroup &,
                               const RunOptions &)> &metric,
    const RunOptions &base_options, bool with_solo = true);

/** The T values of the paper's sensitivity study. */
const std::vector<double> &thresholdSweep();

} // namespace coopbench

#endif // COOPSIM_BENCH_COMMON_HPP
