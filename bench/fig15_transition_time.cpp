/**
 * @file
 * Reproduces Figure 15: average cycles to transfer one complete way
 * between cores — cooperative takeover vs UCP's lazy, recipient-miss-
 * driven movement (which the paper measures as the time to move one
 * block in every set). The paper's headline: Cooperative is ~5x
 * faster (10M vs 58M cycles at paper scale). The same table is
 * reproducible from a spec file: `coopsim_cli --spec=specs/fig15.spec`.
 */

#include <coopsim/experiment.hpp>

int
main(int argc, char **argv)
{
    namespace api = coopsim::api;
    const api::CliOptions cli = api::benchSetup(argc, argv);

    api::ExperimentSpec spec;
    spec.name = "fig15";
    spec.title = "Figure 15: cycles required to transfer a way";
    spec.layout = "transfers";
    spec.with_solo = false;
    spec.schemes = {"ucp", "coop"};
    spec.groups = {"G2-*"};
    spec.scale = cli.scale_name;
    api::printExperiment(spec);
    return 0;
}
