/**
 * @file
 * Reproduces Figure 15: average cycles to transfer one complete way
 * between cores — cooperative takeover vs UCP's lazy, recipient-miss-
 * driven movement (which the paper measures as the time to move one
 * block in every set). The paper's headline: Cooperative is ~5x
 * faster (10M vs 58M cycles at paper scale).
 */

#include <cstdio>
#include <vector>

#include <coopsim/experiment.hpp>

#include "common/stats.hpp"

int
main(int argc, char **argv)
{
    namespace api = coopsim::api;
    const api::CliOptions cli = api::benchSetup(argc, argv);

    api::ExperimentSpec spec;
    spec.name = "fig15";
    spec.layout = "none";
    spec.with_solo = false;
    spec.schemes = {"ucp", "coop"};
    spec.groups = {"G2-*"};
    spec.scale = cli.scale_name;
    const api::ExperimentResults results = api::runExperiment(spec);

    std::printf("Figure 15: cycles required to transfer a way\n");
    std::printf("%-8s %14s %14s %8s %8s\n", "group", "UCP",
                "Cooperative", "#ucp", "#coop");

    std::vector<double> ucp_all;
    std::vector<double> coop_all;
    for (const auto &group : results.groups()) {
        api::Cell ucp_cell;
        ucp_cell.group = group.name;
        ucp_cell.scheme = "ucp";
        api::Cell coop_cell;
        coop_cell.group = group.name;
        coop_cell.scheme = "coop";
        const auto &u = results.result(ucp_cell);
        const auto &c = results.result(coop_cell);
        if (u.completed_transfers > 0) {
            ucp_all.push_back(u.avg_transfer_cycles);
        }
        if (c.completed_transfers > 0) {
            coop_all.push_back(c.avg_transfer_cycles);
        }
        auto fmt = [](const coopsim::sim::RunResult &r) {
            return r.completed_transfers > 0 ? r.avg_transfer_cycles
                                             : 0.0;
        };
        std::printf("%-8s %14.0f %14.0f %8llu %8llu\n",
                    group.name.c_str(), fmt(u), fmt(c),
                    static_cast<unsigned long long>(
                        u.completed_transfers),
                    static_cast<unsigned long long>(
                        c.completed_transfers));
    }
    const double ucp_avg = coopsim::stats::mean(ucp_all);
    const double coop_avg = coopsim::stats::mean(coop_all);
    std::printf("%-8s %14.0f %14.0f\n", "AVG", ucp_avg, coop_avg);
    if (coop_avg > 0.0) {
        std::printf("# UCP / Cooperative transfer-time ratio: %.2fx "
                    "(paper: ~5.8x)\n",
                    ucp_avg / coop_avg);
    }
    return 0;
}
