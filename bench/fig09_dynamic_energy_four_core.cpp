/**
 * @file
 * Reproduces Figure 9: dynamic energy of the four-application
 * workloads, normalised to Fair Share (Unmanaged/UCP ~4x).
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    const auto options = coopbench::optionsFromArgs(argc, argv);
    coopbench::printNormalisedTable(
        "Figure 9: dynamic energy, four-application workloads",
        coopsim::trace::fourCoreGroups(),
        coopbench::dynamicEnergyMetric, options,
        /*higher_better=*/false, /*with_solo=*/false);
    return 0;
}
