/**
 * @file
 * Reproduces Figure 9: dynamic energy of the four-application
 * workloads, normalised to Fair Share (Unmanaged/UCP ~4x).
 */

#include <coopsim/experiment.hpp>

int
main(int argc, char **argv)
{
    namespace api = coopsim::api;
    const api::CliOptions cli = api::benchSetup(argc, argv);

    api::ExperimentSpec spec;
    spec.name = "fig09";
    spec.title = "Figure 9: dynamic energy, four-application workloads";
    spec.metric = "dynamic_energy";
    spec.higher_better = false;
    spec.with_solo = false;
    spec.schemes = {"unmanaged", "fairshare", "cpe", "ucp", "coop"};
    spec.groups = {"G4-*"};
    spec.scale = cli.scale_name;
    api::printExperiment(spec);
    return 0;
}
