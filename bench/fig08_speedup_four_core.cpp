/**
 * @file
 * Reproduces Figure 8: weighted speedup of the fourteen four-
 * application workloads (4 MB, 16-way LLC), normalised to Fair Share.
 */

#include <coopsim/experiment.hpp>

int
main(int argc, char **argv)
{
    namespace api = coopsim::api;
    const api::CliOptions cli = api::benchSetup(argc, argv);

    api::ExperimentSpec spec;
    spec.name = "fig08";
    spec.title =
        "Figure 8: weighted speedup, four-application workloads";
    spec.schemes = {"unmanaged", "fairshare", "cpe", "ucp", "coop"};
    spec.groups = {"G4-*"};
    spec.scale = cli.scale_name;
    api::printExperiment(spec);
    return 0;
}
