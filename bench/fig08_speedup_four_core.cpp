/**
 * @file
 * Reproduces Figure 8: weighted speedup of the fourteen four-
 * application workloads (4 MB, 16-way LLC), normalised to Fair Share.
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    const auto options = coopbench::optionsFromArgs(argc, argv);
    coopbench::printNormalisedTable(
        "Figure 8: weighted speedup, four-application workloads",
        coopsim::trace::fourCoreGroups(), coopbench::speedupMetric,
        options, /*higher_better=*/true);
    return 0;
}
