/**
 * @file
 * Reproduces Figure 10: static energy of the four-application
 * workloads, normalised to Fair Share.
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    const auto options = coopbench::optionsFromArgs(argc, argv);
    coopbench::printNormalisedTable(
        "Figure 10: static energy, four-application workloads",
        coopsim::trace::fourCoreGroups(),
        coopbench::staticEnergyMetric, options,
        /*higher_better=*/false, /*with_solo=*/false);
    return 0;
}
