/**
 * @file
 * Reproduces Figure 10: static energy of the four-application
 * workloads, normalised to Fair Share.
 */

#include <coopsim/experiment.hpp>

int
main(int argc, char **argv)
{
    namespace api = coopsim::api;
    const api::CliOptions cli = api::benchSetup(argc, argv);

    api::ExperimentSpec spec;
    spec.name = "fig10";
    spec.title = "Figure 10: static energy, four-application workloads";
    spec.metric = "static_energy";
    spec.higher_better = false;
    spec.with_solo = false;
    spec.schemes = {"unmanaged", "fairshare", "cpe", "ucp", "coop"};
    spec.groups = {"G4-*"};
    spec.scale = cli.scale_name;
    api::printExperiment(spec);
    return 0;
}
