/**
 * @file
 * Reproduces Figure 13: impact of the takeover threshold T on static
 * energy, normalised to T = 0.
 */

#include <coopsim/experiment.hpp>

int
main(int argc, char **argv)
{
    namespace api = coopsim::api;
    const api::CliOptions cli = api::benchSetup(argc, argv);

    api::ExperimentSpec spec;
    spec.name = "fig13";
    spec.title = "Figure 13: takeover threshold vs static energy";
    spec.layout = "thresholds";
    spec.metric = "static_energy";
    spec.baseline = "0";
    spec.higher_better = false;
    spec.with_solo = false;
    spec.schemes = {"coop"};
    spec.groups = {"G2-*"};
    spec.thresholds = {0.0, 0.01, 0.05, 0.1, 0.2};
    spec.scale = cli.scale_name;
    api::printExperiment(spec);
    return 0;
}
