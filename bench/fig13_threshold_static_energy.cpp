/**
 * @file
 * Reproduces Figure 13: impact of the takeover threshold T on static
 * energy, normalised to T = 0.
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    const auto options = coopbench::optionsFromArgs(argc, argv);
    coopbench::printThresholdTable(
        "Figure 13: takeover threshold vs static energy",
        [](const coopbench::WorkloadGroup &group,
           const coopbench::RunOptions &opts) {
            return coopsim::sim::runGroup(
                       coopsim::llc::Scheme::Cooperative, group, opts)
                .static_energy_nj;
        },
        options, /*with_solo=*/false);
    return 0;
}
