/**
 * @file
 * Reproduces Table 3: per-benchmark LLC misses per kilo-instruction
 * (MPKI), measured by running each synthetic benchmark alone on the
 * two-core LLC organisation, with its High/Medium/Low classification.
 */

#include <cstdio>

#include <coopsim/experiment.hpp>

#include "trace/spec_profiles.hpp"

int
main(int argc, char **argv)
{
    using namespace coopsim;
    namespace api = coopsim::api;
    const api::CliOptions cli = api::benchSetup(argc, argv);

    // Pure solo sweep: no group axis at all, just every Table 3
    // benchmark alone on the two-core geometry (identical runs to the
    // weighted-speedup denominators, so figures reuse them for free).
    api::ExperimentSpec spec;
    spec.name = "table3";
    spec.layout = "none";
    spec.with_solo = false;
    spec.schemes = {};
    spec.solos = {"*"};
    spec.solo_cores = 2;
    spec.scale = cli.scale_name;
    const api::ExperimentResults results = api::runExperiment(spec);

    std::printf("Table 3: workload classification by MPKI\n");
    std::printf("%-12s %10s %10s %8s %8s\n", "benchmark", "measured",
                "paper", "class", "match");

    const auto &apps = trace::allSpecApps();
    int matches = 0;
    for (const std::string &name : apps) {
        const sim::RunResult &r = results.soloResult(name, 2);
        const double mpki = r.apps[0].mpki;
        const auto cls = trace::classifyMpki(mpki);
        const auto paper_cls = trace::mpkiClassOf(name);
        const bool match = cls == paper_cls;
        matches += match ? 1 : 0;
        std::printf("%-12s %10.2f %10.2f %8s %8s\n", name.c_str(),
                    mpki, trace::specProfile(name).table3_mpki,
                    trace::mpkiClassName(cls), match ? "yes" : "NO");
    }
    std::printf("# class matches: %d / %zu\n", matches, apps.size());
    return 0;
}
