/**
 * @file
 * Reproduces Table 3: per-benchmark LLC misses per kilo-instruction
 * (MPKI), measured by running each synthetic benchmark alone on the
 * two-core LLC organisation, with its High/Medium/Low classification.
 */

#include <cstdio>

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace coopsim;
    const auto options = coopbench::optionsFromArgs(argc, argv);

    std::printf("Table 3: workload classification by MPKI\n");
    std::printf("%-12s %10s %10s %8s %8s\n", "benchmark", "measured",
                "paper", "class", "match");

    const auto &apps = trace::allSpecApps();

    // Every benchmark's solo run enqueued up front (identical to the
    // weighted-speedup denominators, so figures reuse them for free).
    {
        std::vector<sim::RunKey> keys;
        keys.reserve(apps.size());
        for (const std::string &name : apps) {
            keys.push_back(sim::soloKey(name, 2, options));
        }
        sim::prefetch(keys);
    }

    int matches = 0;
    for (const std::string &name : apps) {
        const sim::RunResult &r = sim::soloResult(name, 2, options);
        const double mpki = r.apps[0].mpki;
        const auto cls = trace::classifyMpki(mpki);
        const auto paper_cls = trace::mpkiClassOf(name);
        const bool match = cls == paper_cls;
        matches += match ? 1 : 0;
        std::printf("%-12s %10.2f %10.2f %8s %8s\n", name.c_str(),
                    mpki, trace::specProfile(name).table3_mpki,
                    trace::mpkiClassName(cls), match ? "yes" : "NO");
    }
    std::printf("# class matches: %d / %zu\n", matches, apps.size());
    return 0;
}
