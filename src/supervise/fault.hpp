/**
 * @file
 * Deterministic fault injection for shard supervision.
 *
 * The supervisor's recovery behaviour (retry on crash, kill-and-retry
 * on hang, re-run on a torn or corrupted shard store) is only
 * testable if failures can be provoked at exact, repeatable points.
 * The contract is one environment variable:
 *
 *     COOPSIM_FAULT=<kind>:<shard>:<attempt>
 *
 * with kinds `crash`, `hang`, `corrupt-store` and `partial-write`.
 * A shard worker arms the fault iff its own shard index and attempt
 * number (the supervisor exports COOPSIM_ATTEMPT; 1 when absent)
 * match the spec — so `crash:1:1` kills shard 1 exactly once and its
 * retry succeeds, fully deterministically, which is what lets CI
 * assert byte-identical recovery.
 *
 * Injection points are fixed:
 *  - `crash` / `hang` fire at the worker checkpoint
 *    (workerCheckpoint()), placed in the shard worker between
 *    computing its slice and saving the shard store;
 *  - `corrupt-store` / `partial-write` fire inside
 *    store::ResultStore save (consumeFault(); each fires at most
 *    once per arming).
 *
 * Nothing here is armed unless COOPSIM_FAULT is set and
 * armFaultsFromEnv() is called with a matching identity; the
 * supervisor itself and unsharded runs never arm faults.
 */

#ifndef COOPSIM_SUPERVISE_FAULT_HPP
#define COOPSIM_SUPERVISE_FAULT_HPP

#include <cstdint>
#include <string>

namespace coopsim::supervise
{

enum class FaultKind : std::uint8_t
{
    None,
    /** _Exit(kCrashExitCode) at the worker checkpoint. */
    Crash,
    /** Sleep forever at the worker checkpoint (until the
     *  supervisor's per-shard timeout kills the process). */
    Hang,
    /** Flip one CRC digit of the first line written by the next
     *  store save (the line fails its checksum on load). */
    CorruptStore,
    /** Truncate the next store save mid-line (a torn write that
     *  still renames into place). */
    PartialWrite,
};

/** Exit status a `crash` fault terminates the worker with. */
inline constexpr int kCrashExitCode = 43;

/** The fault contract variable, `<kind>:<shard>:<attempt>`. */
inline constexpr const char *kFaultEnv = "COOPSIM_FAULT";

/** Attempt number the supervisor exports to each worker (1-based;
 *  a worker run outside the supervisor counts as attempt 1). */
inline constexpr const char *kAttemptEnv = "COOPSIM_ATTEMPT";

/** One parsed COOPSIM_FAULT value. */
struct FaultSpec
{
    FaultKind kind = FaultKind::None;
    /** Shard index the fault targets. */
    unsigned shard = 0;
    /** 1-based attempt number the fault targets. */
    unsigned attempt = 1;

    bool operator==(const FaultSpec &) const = default;
};

/** Registry-style name of @p kind ("crash", "corrupt-store", ...). */
const char *faultKindName(FaultKind kind);

/** Strict parse of `<kind>:<shard>:<attempt>`; on failure returns
 *  false and fills @p error with a description. */
bool tryParseFaultSpec(const std::string &text, FaultSpec &out,
                       std::string &error);

/**
 * Shard-worker entry point: reads COOPSIM_FAULT (a malformed value is
 * a descriptive fatal — a typo'd fault spec must not silently run
 * fault-free) and arms its fault iff @p shard and @p attempt match.
 * Call once, as soon as the worker knows its identity.
 */
void armFaultsFromEnv(unsigned shard, unsigned attempt);

/** Arms @p kind directly (tests). */
void armFault(FaultKind kind);

/** Disarms any armed fault (tests, and process cleanup). */
void disarmFaults();

/** The currently armed fault kind (None when disarmed). */
FaultKind armedFault();

/** True — and disarms — iff @p kind is armed. The save-path faults
 *  consume themselves so they fire exactly once per arming. */
bool consumeFault(FaultKind kind);

/** The crash/hang injection point: `crash` terminates the process
 *  with kCrashExitCode, `hang` sleeps until killed; any other state
 *  is a no-op. */
void workerCheckpoint();

} // namespace coopsim::supervise

#endif // COOPSIM_SUPERVISE_FAULT_HPP
