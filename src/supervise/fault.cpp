#include "supervise/fault.hpp"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "api/parse_util.hpp"
#include "common/logging.hpp"

namespace coopsim::supervise
{

namespace
{

/** The one armed fault; workers arm at most one per process. */
FaultKind g_armed = FaultKind::None;

FaultKind
kindByName(const std::string &name)
{
    if (name == "crash") {
        return FaultKind::Crash;
    }
    if (name == "hang") {
        return FaultKind::Hang;
    }
    if (name == "corrupt-store") {
        return FaultKind::CorruptStore;
    }
    if (name == "partial-write") {
        return FaultKind::PartialWrite;
    }
    return FaultKind::None;
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::Crash:
        return "crash";
    case FaultKind::Hang:
        return "hang";
    case FaultKind::CorruptStore:
        return "corrupt-store";
    case FaultKind::PartialWrite:
        return "partial-write";
    case FaultKind::None:
        break;
    }
    return "none";
}

bool
tryParseFaultSpec(const std::string &text, FaultSpec &out,
                  std::string &error)
{
    const std::size_t first = text.find(':');
    const std::size_t second =
        first == std::string::npos ? std::string::npos
                                   : text.find(':', first + 1);
    if (second == std::string::npos ||
        text.find(':', second + 1) != std::string::npos) {
        error = "expected <kind>:<shard>:<attempt>, got '" + text + "'";
        return false;
    }
    const std::string kind_name = text.substr(0, first);
    const FaultKind kind = kindByName(kind_name);
    if (kind == FaultKind::None) {
        error = "unknown fault kind '" + kind_name +
                "' (known: crash, hang, corrupt-store, partial-write)";
        return false;
    }
    std::uint64_t shard = 0;
    std::uint64_t attempt = 0;
    if (!api::detail::tryParseUint(
            text.substr(first + 1, second - first - 1), shard)) {
        error = "invalid fault shard in '" + text + "'";
        return false;
    }
    if (!api::detail::tryParseUint(text.substr(second + 1), attempt) ||
        attempt < 1) {
        error = "invalid fault attempt in '" + text +
                "' (attempts are 1-based)";
        return false;
    }
    out.kind = kind;
    out.shard = static_cast<unsigned>(shard);
    out.attempt = static_cast<unsigned>(attempt);
    return true;
}

void
armFaultsFromEnv(unsigned shard, unsigned attempt)
{
    const char *env = std::getenv(kFaultEnv);
    if (env == nullptr || *env == '\0') {
        return;
    }
    FaultSpec spec;
    std::string error;
    if (!tryParseFaultSpec(env, spec, error)) {
        COOPSIM_FATAL("invalid ", kFaultEnv, " value: ", error);
    }
    if (spec.shard == shard && spec.attempt == attempt) {
        g_armed = spec.kind;
        COOPSIM_WARN("fault '", faultKindName(spec.kind),
                     "' armed for shard ", shard, " attempt ", attempt);
    }
}

void
armFault(FaultKind kind)
{
    g_armed = kind;
}

void
disarmFaults()
{
    g_armed = FaultKind::None;
}

FaultKind
armedFault()
{
    return g_armed;
}

bool
consumeFault(FaultKind kind)
{
    if (g_armed != kind) {
        return false;
    }
    g_armed = FaultKind::None;
    return true;
}

void
workerCheckpoint()
{
    if (g_armed == FaultKind::Crash) {
        // Skip atexit handlers and stack unwinding: a real crash does
        // not flush stores on the way out, and neither must this one.
        std::_Exit(kCrashExitCode);
    }
    if (g_armed == FaultKind::Hang) {
        for (;;) {
            std::this_thread::sleep_for(std::chrono::seconds(1));
        }
    }
}

} // namespace coopsim::supervise
