#include "supervise/supervisor.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/logging.hpp"

namespace coopsim::supervise
{

namespace
{

/** splitmix64 finaliser — the deterministic jitter source. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

unsigned
backoffDelayMs(const RetryPolicy &policy, unsigned shard,
               unsigned attempt)
{
    if (attempt <= 1) {
        return 0;
    }
    const unsigned doublings = std::min(attempt - 2, 20u);
    std::uint64_t delay =
        static_cast<std::uint64_t>(policy.base_delay_ms) << doublings;
    delay = std::min<std::uint64_t>(delay, policy.max_delay_ms);
    const std::uint64_t span = delay / 4;
    if (span > 0) {
        delay += mix64((static_cast<std::uint64_t>(shard) << 32) |
                       attempt) %
                 (span + 1);
    }
    return static_cast<unsigned>(
        std::min<std::uint64_t>(delay, policy.max_delay_ms));
}

ProcessResult
runProcess(const std::vector<std::string> &argv,
           const std::vector<std::string> &extra_env, double timeout_s,
           const std::string &log_path)
{
    using clock = std::chrono::steady_clock;
    ProcessResult result;
    COOPSIM_ASSERT(!argv.empty(), "runProcess needs a binary");

    const clock::time_point start = clock::now();
    const pid_t pid = ::fork();
    if (pid < 0) {
        COOPSIM_WARN("fork failed: ", std::strerror(errno));
        return result;
    }
    if (pid == 0) {
        // Child. Only async-signal-safe-ish work before exec: the
        // process group, the redirect, the env exports, the exec
        // itself. The new group lets the timeout kill reach any
        // grandchildren too — an orphaned helper keeping the log (or
        // a pipe) open would outlive the worker otherwise.
        ::setpgid(0, 0);
        if (!log_path.empty()) {
            const int fd =
                ::open(log_path.c_str(),
                       O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
            if (fd < 0) {
                // Never run with the parent's streams: worker output
                // on the supervisor's stdout would break the
                // bit-identical-table contract. Fail the attempt.
                std::fprintf(stderr, "cannot open log '%s': %s\n",
                             log_path.c_str(), std::strerror(errno));
                std::_Exit(126);
            }
            ::dup2(fd, STDOUT_FILENO);
            ::dup2(fd, STDERR_FILENO);
            ::close(fd);
        }
        for (const std::string &kv : extra_env) {
            // Leaked on purpose: putenv keeps the pointer, and exec
            // replaces the image anyway.
            ::putenv(::strdup(kv.c_str()));
        }
        std::vector<char *> args;
        args.reserve(argv.size() + 1);
        for (const std::string &arg : argv) {
            args.push_back(const_cast<char *>(arg.c_str()));
        }
        args.push_back(nullptr);
        ::execvp(args[0], args.data());
        std::fprintf(stderr, "exec '%s' failed: %s\n", args[0],
                     std::strerror(errno));
        std::_Exit(127);
    }

    // Parent: poll-reap so a hung worker can be killed at the
    // deadline (no SIGCHLD machinery to interfere with the caller).
    const bool has_timeout = timeout_s > 0.0;
    const clock::time_point deadline =
        start + std::chrono::duration_cast<clock::duration>(
                    std::chrono::duration<double>(
                        has_timeout ? timeout_s : 0.0));
    int status = 0;
    for (;;) {
        const pid_t reaped = ::waitpid(pid, &status, WNOHANG);
        if (reaped == pid) {
            break;
        }
        if (reaped < 0) {
            COOPSIM_WARN("waitpid failed: ", std::strerror(errno));
            result.wall_s = std::chrono::duration<double>(
                                clock::now() - start)
                                .count();
            return result;
        }
        if (has_timeout && clock::now() >= deadline) {
            // Kill the whole group (see setpgid above); the direct
            // kill is the fallback for the exec-raced window where
            // the group might not exist yet.
            ::kill(-pid, SIGKILL);
            ::kill(pid, SIGKILL);
            ::waitpid(pid, &status, 0);
            result.timed_out = true;
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    if (WIFEXITED(status)) {
        result.exit_code = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
        result.exit_code = 128 + WTERMSIG(status);
    }
    result.wall_s =
        std::chrono::duration<double>(clock::now() - start).count();
    return result;
}

// ---------------------------------------------------------------------------
// Supervision state machine

bool
SuperviseReport::allSucceeded() const
{
    for (const ShardReport &shard : shards) {
        if (!shard.succeeded) {
            return false;
        }
    }
    return true;
}

std::vector<unsigned>
SuperviseReport::failedShards() const
{
    std::vector<unsigned> failed;
    for (const ShardReport &shard : shards) {
        if (!shard.succeeded) {
            failed.push_back(shard.shard);
        }
    }
    return failed;
}

std::size_t
SuperviseReport::totalAttempts() const
{
    std::size_t total = 0;
    for (const ShardReport &shard : shards) {
        total += shard.attempts.size();
    }
    return total;
}

namespace
{

ShardReport
superviseOneShard(unsigned shard, const RetryPolicy &policy,
                  const LaunchFn &launch, const ValidateFn &validate,
                  const SleepFn &sleep_fn)
{
    ShardReport report;
    report.shard = shard;
    const unsigned max_attempts = std::max(policy.max_attempts, 1u);
    for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
        if (attempt > 1) {
            const unsigned delay =
                backoffDelayMs(policy, shard, attempt);
            if (sleep_fn) {
                sleep_fn(delay);
            } else if (delay > 0) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(delay));
            }
        }
        AttemptRecord record;
        record.attempt = attempt;
        const ProcessResult outcome = launch(shard, attempt);
        record.exit_code = outcome.exit_code;
        record.timed_out = outcome.timed_out;
        record.wall_s = outcome.wall_s;
        if (outcome.exit_code == 0 && !outcome.timed_out) {
            std::string why;
            if (!validate || validate(shard, why)) {
                report.attempts.push_back(record);
                report.succeeded = true;
                return report;
            }
            record.invalid_store = true;
            COOPSIM_WARN("shard ", shard, " attempt ", attempt,
                         " produced an invalid store: ", why);
        }
        report.attempts.push_back(record);
    }
    return report;
}

} // namespace

SuperviseReport
superviseShards(unsigned shard_count, const RetryPolicy &policy,
                const LaunchFn &launch, const ValidateFn &validate,
                const SleepFn &sleep_fn)
{
    SuperviseReport report;
    report.shards.resize(shard_count);
    // One monitor thread per shard: each spends its life blocked in
    // waitpid/sleep, so even large shard counts cost threads, not
    // CPU. Attempts of one shard stay sequential.
    std::vector<std::thread> monitors;
    monitors.reserve(shard_count);
    for (unsigned shard = 0; shard < shard_count; ++shard) {
        monitors.emplace_back([&, shard] {
            report.shards[shard] = superviseOneShard(
                shard, policy, launch, validate, sleep_fn);
        });
    }
    for (std::thread &monitor : monitors) {
        monitor.join();
    }
    return report;
}

void
printSuperviseReport(const SuperviseReport &report, std::FILE *out)
{
    std::size_t ok = 0;
    double wall = 0.0;
    for (const ShardReport &shard : report.shards) {
        ok += shard.succeeded ? 1 : 0;
        for (const AttemptRecord &attempt : shard.attempts) {
            wall += attempt.wall_s;
        }
    }
    std::fprintf(out,
                 "# supervise: %zu shards, %zu attempts, %zu ok, %zu "
                 "failed, worker wall %.2fs\n",
                 report.shards.size(), report.totalAttempts(), ok,
                 report.shards.size() - ok, wall);
    for (const ShardReport &shard : report.shards) {
        std::string detail;
        for (const AttemptRecord &attempt : shard.attempts) {
            char buf[96];
            const char *why = attempt.timed_out      ? "timeout"
                              : attempt.invalid_store ? "invalid-store"
                                                      : "exit";
            std::snprintf(buf, sizeof(buf), "%sattempt %u: %s=%d %.2fs",
                          detail.empty() ? "" : "; ", attempt.attempt,
                          why, attempt.exit_code, attempt.wall_s);
            detail += buf;
        }
        std::fprintf(out, "# supervise: shard %u: %s after %zu "
                          "attempt(s) [%s]\n",
                     shard.shard, shard.succeeded ? "ok" : "FAILED",
                     shard.attempts.size(), detail.c_str());
    }
}

} // namespace coopsim::supervise
