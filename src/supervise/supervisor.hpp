/**
 * @file
 * Process-level shard supervision: fork/exec one worker per shard,
 * watch exit status and wall-clock, retry with capped exponential
 * backoff, and report what happened.
 *
 * `coopsim_cli --spec F --shards=N --supervise --store=DIR` turns the
 * manual "run every --shard=I/N yourself" flow into a supervised one:
 * the parent re-execs its own binary once per shard, validates each
 * shard's store file after a clean exit (a worker that exits 0 but
 * leaves a torn or corrupted shard file is a failure too), and
 * retries failed, timed-out or invalid attempts up to a bounded
 * count. Exhausted shards are reported — the merge then proceeds
 * degraded with an explicit missing-keys summary instead of dying.
 *
 * The supervision loop is deliberately separated from process
 * spawning: superviseShards() drives any LaunchFn/ValidateFn, so
 * tests exercise the full retry/backoff/accounting state machine with
 * injected outcomes, while runProcess() is the real fork/exec/waitpid
 * runner (with SIGKILL on timeout) the CLI plugs in. Backoff delays
 * are deterministic — capped exponential plus a jitter derived from
 * (shard, attempt), never from a clock — so supervised runs are
 * reproducible end to end.
 *
 * The CLI forwards `--trace-cache=DIR` (and the other stream-memo
 * flags) to every worker it spawns, so the first attempt of each
 * shard spills its generated op streams and retried or later-shard
 * workers warm-start from the spill instead of regenerating — a
 * crashed worker's completed generation work survives into its
 * retry.
 */

#ifndef COOPSIM_SUPERVISE_SUPERVISOR_HPP
#define COOPSIM_SUPERVISE_SUPERVISOR_HPP

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace coopsim::supervise
{

/** Retry/backoff knobs of one supervised sweep. */
struct RetryPolicy
{
    /** Attempts per shard before it is reported failed (>= 1). */
    unsigned max_attempts = 3;
    /** Backoff before the 2nd attempt; doubles per further attempt. */
    unsigned base_delay_ms = 250;
    /** Cap on the backoff (jitter included). */
    unsigned max_delay_ms = 5000;
    /** Per-attempt wall-clock budget; <= 0 disables the timeout. */
    double shard_timeout_s = 900.0;
};

/**
 * Delay before @p attempt (1-based) of @p shard: 0 for the first
 * attempt, then base * 2^(attempt-2) capped at max_delay_ms, plus a
 * deterministic jitter in [0, delay/4] mixed from (shard, attempt) —
 * retries of different shards decorrelate without any randomness.
 * The total never exceeds max_delay_ms.
 */
unsigned backoffDelayMs(const RetryPolicy &policy, unsigned shard,
                        unsigned attempt);

/** Outcome of one spawned process. */
struct ProcessResult
{
    /** Exit status; 128+signal for signal deaths, -1 when the spawn
     *  itself failed. */
    int exit_code = -1;
    /** The per-attempt timeout fired and the process was SIGKILLed. */
    bool timed_out = false;
    /** Wall time from fork to reap, seconds. */
    double wall_s = 0.0;
};

/**
 * fork/exec @p argv (argv[0] is the binary; resolved via PATH) and
 * wait for it, SIGKILLing at @p timeout_s (<= 0 = no timeout). Each
 * entry of @p extra_env ("KEY=VALUE") is added to the child's
 * environment. When @p log_path is non-empty the child's stdout and
 * stderr are appended there — the supervisor's own streams stay
 * clean, which is what keeps supervised stdout bit-identical to an
 * unsharded run.
 */
ProcessResult runProcess(const std::vector<std::string> &argv,
                         const std::vector<std::string> &extra_env,
                         double timeout_s,
                         const std::string &log_path = "");

/** One attempt of one shard, as recorded for the report. */
struct AttemptRecord
{
    unsigned attempt = 0;
    int exit_code = -1;
    bool timed_out = false;
    /** Worker exited 0 but its shard store failed validation (torn
     *  write, corruption, missing keys). */
    bool invalid_store = false;
    double wall_s = 0.0;
};

/** Everything that happened to one shard. */
struct ShardReport
{
    unsigned shard = 0;
    bool succeeded = false;
    std::vector<AttemptRecord> attempts;
};

/** The whole supervised sweep. */
struct SuperviseReport
{
    std::vector<ShardReport> shards;

    bool allSucceeded() const;
    /** Indices of shards that exhausted their attempts. */
    std::vector<unsigned> failedShards() const;
    /** Attempts summed over every shard. */
    std::size_t totalAttempts() const;
};

/** Launches one attempt of one shard. */
using LaunchFn =
    std::function<ProcessResult(unsigned shard, unsigned attempt)>;

/** Post-exit validation of a shard's output; fills @p why on
 *  failure. An empty function accepts every clean exit. */
using ValidateFn =
    std::function<bool(unsigned shard, std::string &why)>;

/** Backoff sleep hook; tests inject a recorder, the CLI sleeps. */
using SleepFn = std::function<void(unsigned delay_ms)>;

/**
 * Runs every shard 0..count-1 through the launch/validate/retry
 * state machine, shards in parallel (one monitor thread each),
 * attempts of one shard sequential with backoffDelayMs() between
 * them. An attempt succeeds when launch() reports exit 0 without
 * timeout AND validate() (if given) accepts the shard's output;
 * anything else consumes one attempt. Shards never abort the sweep:
 * a shard that exhausts max_attempts is reported failed and the
 * remaining shards keep running.
 */
SuperviseReport superviseShards(unsigned shard_count,
                                const RetryPolicy &policy,
                                const LaunchFn &launch,
                                const ValidateFn &validate = {},
                                const SleepFn &sleep_fn = {});

/** Prints the per-shard attempt/retry/wall-time report to @p out
 *  (the CLI passes stderr, keeping stdout bit-identical). */
void printSuperviseReport(const SuperviseReport &report, std::FILE *out);

} // namespace coopsim::supervise

#endif // COOPSIM_SUPERVISE_SUPERVISOR_HPP
