#include "cache/replacement.hpp"

#include <bit>

#include "cache/cache.hpp"
#include "common/logging.hpp"

namespace coopsim::cache
{

ReplacementPolicy::ReplacementPolicy(ReplPolicy policy, std::uint64_t seed)
    : policy_(policy), rng_(seed)
{
}

WayId
ReplacementPolicy::victim(const std::uint64_t *set_lru,
                          std::uint32_t ways, std::uint64_t mask)
{
    COOPSIM_ASSERT(mask != 0, "victim selection over empty mask");
    mask &= fullMask(ways);

    if (policy_ == ReplPolicy::Random) {
        const auto count =
            static_cast<std::uint32_t>(std::popcount(mask));
        std::uint32_t pick =
            static_cast<std::uint32_t>(rng_.nextBelow(count));
        std::uint64_t m = mask;
        while (pick > 0) {
            m &= m - 1;
            --pick;
        }
        COOPSIM_ASSERT(m != 0, "random victim ran past mask");
        return lowestWay(m);
    }

    WayId best = kNoWay;
    std::uint64_t best_lru = 0;
    bool first = true;
    for (std::uint64_t m = mask; m != 0; m &= m - 1) {
        const WayId w = lowestWay(m);
        const std::uint64_t lru = set_lru[w];
        const bool better = first || (policy_ == ReplPolicy::Lru
                                          ? lru < best_lru
                                          : lru > best_lru);
        if (better) {
            best = w;
            best_lru = lru;
            first = false;
        }
    }
    COOPSIM_ASSERT(best != kNoWay, "no victim found in mask");
    return best;
}

} // namespace coopsim::cache
