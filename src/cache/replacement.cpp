#include "cache/replacement.hpp"

#include <bit>

#include "cache/cache.hpp"
#include "common/logging.hpp"

namespace coopsim::cache
{

ReplacementPolicy::ReplacementPolicy(ReplPolicy policy, std::uint64_t seed)
    : policy_(policy), rng_(seed)
{
}

WayId
ReplacementPolicy::victim(const CacheBlock *set_blocks, std::uint32_t ways,
                          std::uint64_t mask)
{
    COOPSIM_ASSERT(mask != 0, "victim selection over empty mask");

    if (policy_ == ReplPolicy::Random) {
        const auto count =
            static_cast<std::uint32_t>(std::popcount(mask));
        std::uint32_t pick =
            static_cast<std::uint32_t>(rng_.nextBelow(count));
        for (std::uint32_t w = 0; w < ways; ++w) {
            if ((mask >> w) & 1) {
                if (pick == 0) {
                    return w;
                }
                --pick;
            }
        }
        COOPSIM_PANIC("random victim ran past mask");
    }

    WayId best = kNoWay;
    std::uint64_t best_lru = 0;
    bool first = true;
    for (std::uint32_t w = 0; w < ways; ++w) {
        if (!((mask >> w) & 1)) {
            continue;
        }
        const std::uint64_t lru = set_blocks[w].lru;
        const bool better = first || (policy_ == ReplPolicy::Lru
                                          ? lru < best_lru
                                          : lru > best_lru);
        if (better) {
            best = w;
            best_lru = lru;
            first = false;
        }
    }
    COOPSIM_ASSERT(best != kNoWay, "no victim found in mask");
    return best;
}

} // namespace coopsim::cache
