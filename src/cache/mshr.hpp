/**
 * @file
 * Miss-status holding registers (MSHR).
 *
 * Bounds the number of overlapping outstanding misses a core can
 * sustain (the memory-level parallelism the OoO core model exploits)
 * and coalesces repeated misses to the same block while the fill is in
 * flight. The paper's configuration uses a 128-entry MSHR (Table 2).
 */

#ifndef COOPSIM_CACHE_MSHR_HPP
#define COOPSIM_CACHE_MSHR_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace coopsim::cache
{

/** Result of attempting to track a miss in the MSHR file. */
struct MshrOutcome
{
    /** True when the block already had an in-flight fill (coalesced). */
    bool coalesced = false;
    /** True when the file was full and the request must stall. */
    bool full = false;
    /** Completion cycle of the (new or existing) fill. */
    Cycle ready_at = 0;
};

/**
 * Fixed-capacity MSHR file.
 *
 * Entries retire lazily: any operation first releases entries whose
 * fill completed at or before the current cycle.
 */
class MshrFile
{
  public:
    explicit MshrFile(std::uint32_t entries);

    /**
     * Registers a miss on @p block_addr whose fill completes at
     * @p fill_done. If an entry for the block exists, coalesces and
     * returns its completion time. If the file is full, reports
     * `full = true` and the earliest cycle an entry frees up in
     * `ready_at`.
     */
    MshrOutcome allocate(Addr block_addr, Cycle now, Cycle fill_done);

    /** Number of live entries at @p now. */
    std::uint32_t occupancy(Cycle now);

    /** Earliest completion among live entries (kCycleMax when empty). */
    Cycle earliestReady(Cycle now);

    std::uint32_t capacity() const { return capacity_; }

  private:
    void retire(Cycle now);

    struct Entry
    {
        Addr block_addr;
        Cycle ready_at;
    };

    std::uint32_t capacity_;
    std::vector<Entry> entries_;
};

} // namespace coopsim::cache

#endif // COOPSIM_CACHE_MSHR_HPP
