#include "cache/mshr.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace coopsim::cache
{

MshrFile::MshrFile(std::uint32_t entries) : capacity_(entries)
{
    COOPSIM_ASSERT(entries > 0, "MSHR needs at least one entry");
    entries_.reserve(entries);
}

void
MshrFile::retire(Cycle now)
{
    std::erase_if(entries_,
                  [now](const Entry &e) { return e.ready_at <= now; });
}

MshrOutcome
MshrFile::allocate(Addr block_addr, Cycle now, Cycle fill_done)
{
    retire(now);

    for (const Entry &e : entries_) {
        if (e.block_addr == block_addr) {
            return {true, false, e.ready_at};
        }
    }

    if (entries_.size() >= capacity_) {
        Cycle earliest = kCycleMax;
        for (const Entry &e : entries_) {
            earliest = std::min(earliest, e.ready_at);
        }
        return {false, true, earliest};
    }

    entries_.push_back({block_addr, fill_done});
    return {false, false, fill_done};
}

std::uint32_t
MshrFile::occupancy(Cycle now)
{
    retire(now);
    return static_cast<std::uint32_t>(entries_.size());
}

Cycle
MshrFile::earliestReady(Cycle now)
{
    retire(now);
    Cycle earliest = kCycleMax;
    for (const Entry &e : entries_) {
        earliest = std::min(earliest, e.ready_at);
    }
    return earliest;
}

} // namespace coopsim::cache
