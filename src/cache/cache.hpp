/**
 * @file
 * Generic set-associative cache storage.
 *
 * SetAssocCache is the tag/state array shared by the private L1 model,
 * the shared LLC (src/llc) and the auxiliary tag directories used for
 * utility monitoring (src/umon). It stores tags, dirty bits, per-block
 * owner core and LRU state, and exposes way-mask-restricted lookup and
 * victim selection — the primitive on which way partitioning is built.
 *
 * Way masks are 64-bit bitmaps (bit w = way w), so associativity is
 * limited to 64, far above the paper's 16-way LLC.
 */

#ifndef COOPSIM_CACHE_CACHE_HPP
#define COOPSIM_CACHE_CACHE_HPP

#include <bit>
#include <cstdint>
#include <vector>

#include "cache/replacement.hpp"
#include "common/geometry.hpp"
#include "common/types.hpp"

namespace coopsim::cache
{

/** Bitmap over the ways of a set: bit w set means way w is included. */
using WayMask = std::uint64_t;

/** A mask covering ways [0, ways). */
constexpr WayMask
fullMask(std::uint32_t ways)
{
    return ways >= 64 ? ~WayMask{0} : ((WayMask{1} << ways) - 1);
}

/**
 * Index of the lowest set bit of a non-empty mask. The hot loops visit
 * only the ways actually present in a mask — `mask & (mask - 1)` clears
 * the bit just visited — instead of testing all 64 way positions.
 */
constexpr WayId
lowestWay(WayMask mask)
{
    return static_cast<WayId>(std::countr_zero(mask & -mask));
}

/**
 * State of one cache block (tag entry), as a value snapshot.
 *
 * Storage inside SetAssocCache is struct-of-arrays (one contiguous
 * array per field, sized per geometry), so the masked hot loops scan
 * dense tag/state words instead of striding over 24-byte records;
 * block() assembles this view on demand for inspection paths.
 */
struct CacheBlock
{
    Addr tag = 0;
    bool valid = false;
    bool dirty = false;
    /**
     * Core whose data this block holds. The paper adds two bits per tag
     * entry for this purpose (Section 2.5, replacement-policy overhead).
     */
    CoreId owner = kNoCore;
    /** LRU timestamp: larger is more recent. */
    std::uint64_t lru = 0;
};

/** Result of a masked lookup. */
struct LookupResult
{
    bool hit = false;
    WayId way = kNoWay;
};

/** Geometry of a set-associative cache. */
struct CacheGeometry
{
    std::uint64_t size_bytes = 0;
    std::uint32_t ways = 0;
    std::uint32_t block_bytes = 64;

    std::uint32_t numSets() const
    {
        return static_cast<std::uint32_t>(
            size_bytes / (static_cast<std::uint64_t>(ways) * block_bytes));
    }
};

/**
 * Tag/state array of a set-associative cache with mask-restricted
 * operations. Timing and policy live in the callers.
 */
class SetAssocCache
{
  public:
    /**
     * @param geometry Size/ways/block size; sets derived, must be a
     *                 power of two.
     * @param policy   Victim selection policy within the allowed mask.
     */
    explicit SetAssocCache(const CacheGeometry &geometry,
                           ReplPolicy policy = ReplPolicy::Lru,
                           std::uint64_t seed = 1);

    /**
     * Searches @p mask ways of the set for @p addr.
     * Does not update LRU state — callers decide (UMON needs raw probes).
     */
    LookupResult lookup(Addr addr, WayMask mask) const;

    /** Marks (set, way) as most recently used. */
    void touch(SetId set, WayId way);

    /**
     * Picks a victim way within @p mask: an invalid way if one exists,
     * otherwise per the replacement policy. @p mask must be non-empty.
     */
    WayId victim(SetId set, WayMask mask);

    /**
     * Installs @p addr in (set, way), overwriting whatever is there.
     * The block becomes valid and most recently used.
     */
    void insert(Addr addr, SetId set, WayId way, CoreId owner, bool dirty);

    /** Invalidates (set, way); returns the block state before. */
    CacheBlock invalidate(SetId set, WayId way);

    /** Value snapshot of (set, way), assembled from the SoA arrays.
     *  Prefer the *At accessors below on hot paths that read a single
     *  field. */
    CacheBlock block(SetId set, WayId way) const;

    // Single-field reads/writes against the SoA arrays.
    bool validAt(SetId set, WayId way) const
    {
        return (state_[index(set, way)] & kValidBit) != 0;
    }
    bool dirtyAt(SetId set, WayId way) const
    {
        return (state_[index(set, way)] & kDirtyBit) != 0;
    }
    CoreId ownerAt(SetId set, WayId way) const
    {
        return owner_[index(set, way)];
    }
    void setDirty(SetId set, WayId way, bool dirty)
    {
        std::uint8_t &state = state_[index(set, way)];
        state = dirty ? (state | kDirtyBit)
                      : (state & static_cast<std::uint8_t>(~kDirtyBit));
    }
    /** Re-tags (set, way)'s data to @p owner (UCP hit re-attribution). */
    void setOwner(SetId set, WayId way, CoreId owner)
    {
        owner_[index(set, way)] = owner;
    }

    /** Block-aligned address stored in (set, way); block must be valid. */
    Addr blockAddr(SetId set, WayId way) const;

    /** Number of valid blocks in @p set covered by @p mask. */
    std::uint32_t validCount(SetId set, WayMask mask) const;

    /** Number of valid blocks owned by @p core in @p set under @p mask. */
    std::uint32_t ownedCount(SetId set, WayMask mask, CoreId core) const;

    /** Least recently used valid way in @p mask, or kNoWay if none. */
    WayId lruValidWay(SetId set, WayMask mask) const;

    const AddrSlicer &slicer() const { return slicer_; }
    std::uint32_t numSets() const { return slicer_.numSets(); }
    std::uint32_t ways() const { return ways_; }

  private:
    /** state_ bit layout. */
    static constexpr std::uint8_t kValidBit = 1;
    static constexpr std::uint8_t kDirtyBit = 2;

    std::size_t index(SetId set, WayId way) const
    {
        return static_cast<std::size_t>(set) * ways_ + way;
    }

    AddrSlicer slicer_;
    std::uint32_t ways_;
    /**
     * Struct-of-arrays tag/metadata store, each array sized
     * sets x ways for the configured geometry. The masked lookup scans
     * tag_/state_ only (dense 8-byte tags plus 1-byte state, instead
     * of striding over 24-byte records); lru_ is touched by recency
     * updates and victim search; owner_ only by the partitioning
     * bookkeeping.
     */
    std::vector<Addr> tag_;
    std::vector<std::uint64_t> lru_;
    std::vector<std::uint8_t> state_;
    std::vector<CoreId> owner_;
    std::uint64_t lru_clock_ = 0;
    ReplacementPolicy repl_;
};

/** Outcome of an L1 access. */
struct L1Result
{
    bool hit = false;
    /** Dirty block evicted by the fill (valid only when writeback). */
    bool writeback = false;
    Addr writeback_addr = 0;
};

/**
 * Private first-level cache: write-back, write-allocate, LRU.
 *
 * L1 timing (2-cycle hit) is accounted by the core model; this class
 * tracks hit/miss state and evictions only.
 */
class L1Cache
{
  public:
    explicit L1Cache(const CacheGeometry &geometry);

    /**
     * Performs an access; on a miss the line is filled immediately
     * (the core model adds the miss latency separately).
     */
    L1Result access(Addr addr, AccessType type);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    SetAssocCache array_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace coopsim::cache

#endif // COOPSIM_CACHE_CACHE_HPP
