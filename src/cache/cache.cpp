#include "cache/cache.hpp"

#include "common/logging.hpp"

namespace coopsim::cache
{

SetAssocCache::SetAssocCache(const CacheGeometry &geometry,
                             ReplPolicy policy, std::uint64_t seed)
    : slicer_(geometry.numSets(), geometry.block_bytes),
      ways_(geometry.ways),
      tag_(static_cast<std::size_t>(geometry.numSets()) * geometry.ways),
      lru_(tag_.size(), 0),
      state_(tag_.size(), 0),
      owner_(tag_.size(), kNoCore),
      repl_(policy, seed)
{
    COOPSIM_ASSERT(geometry.ways > 0 && geometry.ways <= 64,
                   "associativity must be in [1, 64]");
    COOPSIM_ASSERT(geometry.size_bytes % (static_cast<std::uint64_t>(
                       geometry.ways) * geometry.block_bytes) == 0,
                   "cache size not divisible by way size");
}

LookupResult
SetAssocCache::lookup(Addr addr, WayMask mask) const
{
    const SetId set = slicer_.set(addr);
    const Addr tag = slicer_.tag(addr);
    const std::size_t base = index(set, 0);
    const Addr *tags = &tag_[base];
    const std::uint8_t *state = &state_[base];
    for (WayMask m = mask & fullMask(ways_); m != 0; m &= m - 1) {
        const WayId w = lowestWay(m);
        if ((state[w] & kValidBit) != 0 && tags[w] == tag) {
            return {true, w};
        }
    }
    return {false, kNoWay};
}

void
SetAssocCache::touch(SetId set, WayId way)
{
    lru_[index(set, way)] = ++lru_clock_;
}

WayId
SetAssocCache::victim(SetId set, WayMask mask)
{
    COOPSIM_ASSERT(mask != 0, "victim over empty mask");
    const std::size_t base = index(set, 0);
    const std::uint8_t *state = &state_[base];
    for (WayMask m = mask & fullMask(ways_); m != 0; m &= m - 1) {
        const WayId w = lowestWay(m);
        if ((state[w] & kValidBit) == 0) {
            return w;
        }
    }
    return repl_.victim(&lru_[base], ways_, mask);
}

void
SetAssocCache::insert(Addr addr, SetId set, WayId way, CoreId owner,
                      bool dirty)
{
    COOPSIM_ASSERT(way < ways_, "insert way out of range");
    const std::size_t i = index(set, way);
    tag_[i] = slicer_.tag(addr);
    state_[i] = static_cast<std::uint8_t>(kValidBit |
                                          (dirty ? kDirtyBit : 0));
    owner_[i] = owner;
    lru_[i] = ++lru_clock_;
}

CacheBlock
SetAssocCache::invalidate(SetId set, WayId way)
{
    const CacheBlock before = block(set, way);
    const std::size_t i = index(set, way);
    tag_[i] = 0;
    state_[i] = 0;
    owner_[i] = kNoCore;
    lru_[i] = 0;
    return before;
}

CacheBlock
SetAssocCache::block(SetId set, WayId way) const
{
    COOPSIM_ASSERT(way < ways_ && set < numSets(), "block out of range");
    const std::size_t i = index(set, way);
    CacheBlock blk;
    blk.tag = tag_[i];
    blk.valid = (state_[i] & kValidBit) != 0;
    blk.dirty = (state_[i] & kDirtyBit) != 0;
    blk.owner = owner_[i];
    blk.lru = lru_[i];
    return blk;
}

Addr
SetAssocCache::blockAddr(SetId set, WayId way) const
{
    COOPSIM_ASSERT(validAt(set, way), "blockAddr of invalid block");
    return slicer_.compose(tag_[index(set, way)], set);
}

std::uint32_t
SetAssocCache::validCount(SetId set, WayMask mask) const
{
    const std::uint8_t *state = &state_[index(set, 0)];
    std::uint32_t count = 0;
    for (WayMask m = mask & fullMask(ways_); m != 0; m &= m - 1) {
        if ((state[lowestWay(m)] & kValidBit) != 0) {
            ++count;
        }
    }
    return count;
}

std::uint32_t
SetAssocCache::ownedCount(SetId set, WayMask mask, CoreId core) const
{
    const std::size_t base = index(set, 0);
    const std::uint8_t *state = &state_[base];
    const CoreId *owner = &owner_[base];
    std::uint32_t count = 0;
    for (WayMask m = mask & fullMask(ways_); m != 0; m &= m - 1) {
        const WayId w = lowestWay(m);
        if ((state[w] & kValidBit) != 0 && owner[w] == core) {
            ++count;
        }
    }
    return count;
}

WayId
SetAssocCache::lruValidWay(SetId set, WayMask mask) const
{
    const std::size_t base = index(set, 0);
    const std::uint8_t *state = &state_[base];
    const std::uint64_t *lru = &lru_[base];
    WayId best = kNoWay;
    std::uint64_t best_lru = 0;
    for (WayMask m = mask & fullMask(ways_); m != 0; m &= m - 1) {
        const WayId w = lowestWay(m);
        if ((state[w] & kValidBit) == 0) {
            continue;
        }
        if (best == kNoWay || lru[w] < best_lru) {
            best = w;
            best_lru = lru[w];
        }
    }
    return best;
}

L1Cache::L1Cache(const CacheGeometry &geometry)
    : array_(geometry, ReplPolicy::Lru)
{
}

L1Result
L1Cache::access(Addr addr, AccessType type)
{
    const WayMask all = fullMask(array_.ways());
    const Addr aligned = array_.slicer().blockAlign(addr);
    const SetId set = array_.slicer().set(aligned);

    L1Result result;
    const LookupResult found = array_.lookup(aligned, all);
    if (found.hit) {
        ++hits_;
        array_.touch(set, found.way);
        if (isWrite(type)) {
            array_.setDirty(set, found.way, true);
        }
        result.hit = true;
        return result;
    }

    ++misses_;
    const WayId way = array_.victim(set, all);
    if (array_.validAt(set, way) && array_.dirtyAt(set, way)) {
        result.writeback = true;
        result.writeback_addr = array_.blockAddr(set, way);
    }
    array_.insert(aligned, set, way, 0, isWrite(type));
    return result;
}

} // namespace coopsim::cache
