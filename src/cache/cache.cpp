#include "cache/cache.hpp"

#include "common/logging.hpp"

namespace coopsim::cache
{

SetAssocCache::SetAssocCache(const CacheGeometry &geometry,
                             ReplPolicy policy, std::uint64_t seed)
    : slicer_(geometry.numSets(), geometry.block_bytes),
      ways_(geometry.ways),
      blocks_(static_cast<std::size_t>(geometry.numSets()) * geometry.ways),
      repl_(policy, seed)
{
    COOPSIM_ASSERT(geometry.ways > 0 && geometry.ways <= 64,
                   "associativity must be in [1, 64]");
    COOPSIM_ASSERT(geometry.size_bytes % (static_cast<std::uint64_t>(
                       geometry.ways) * geometry.block_bytes) == 0,
                   "cache size not divisible by way size");
}

LookupResult
SetAssocCache::lookup(Addr addr, WayMask mask) const
{
    const SetId set = slicer_.set(addr);
    const Addr tag = slicer_.tag(addr);
    const CacheBlock *base = &blocks_[index(set, 0)];
    for (WayMask m = mask & fullMask(ways_); m != 0; m &= m - 1) {
        const WayId w = lowestWay(m);
        const CacheBlock &blk = base[w];
        if (blk.valid && blk.tag == tag) {
            return {true, w};
        }
    }
    return {false, kNoWay};
}

void
SetAssocCache::touch(SetId set, WayId way)
{
    blocks_[index(set, way)].lru = ++lru_clock_;
}

WayId
SetAssocCache::victim(SetId set, WayMask mask)
{
    COOPSIM_ASSERT(mask != 0, "victim over empty mask");
    const CacheBlock *base = &blocks_[index(set, 0)];
    for (WayMask m = mask & fullMask(ways_); m != 0; m &= m - 1) {
        const WayId w = lowestWay(m);
        if (!base[w].valid) {
            return w;
        }
    }
    return repl_.victim(base, ways_, mask);
}

void
SetAssocCache::insert(Addr addr, SetId set, WayId way, CoreId owner,
                      bool dirty)
{
    COOPSIM_ASSERT(way < ways_, "insert way out of range");
    CacheBlock &blk = blocks_[index(set, way)];
    blk.tag = slicer_.tag(addr);
    blk.valid = true;
    blk.dirty = dirty;
    blk.owner = owner;
    blk.lru = ++lru_clock_;
}

CacheBlock
SetAssocCache::invalidate(SetId set, WayId way)
{
    CacheBlock &blk = blocks_[index(set, way)];
    const CacheBlock before = blk;
    blk = CacheBlock{};
    return before;
}

const CacheBlock &
SetAssocCache::block(SetId set, WayId way) const
{
    COOPSIM_ASSERT(way < ways_ && set < numSets(), "block out of range");
    return blocks_[index(set, way)];
}

CacheBlock &
SetAssocCache::blockMutable(SetId set, WayId way)
{
    COOPSIM_ASSERT(way < ways_ && set < numSets(), "block out of range");
    return blocks_[index(set, way)];
}

Addr
SetAssocCache::blockAddr(SetId set, WayId way) const
{
    const CacheBlock &blk = block(set, way);
    COOPSIM_ASSERT(blk.valid, "blockAddr of invalid block");
    return slicer_.compose(blk.tag, set);
}

std::uint32_t
SetAssocCache::validCount(SetId set, WayMask mask) const
{
    const CacheBlock *base = &blocks_[index(set, 0)];
    std::uint32_t count = 0;
    for (WayMask m = mask & fullMask(ways_); m != 0; m &= m - 1) {
        if (base[lowestWay(m)].valid) {
            ++count;
        }
    }
    return count;
}

std::uint32_t
SetAssocCache::ownedCount(SetId set, WayMask mask, CoreId core) const
{
    const CacheBlock *base = &blocks_[index(set, 0)];
    std::uint32_t count = 0;
    for (WayMask m = mask & fullMask(ways_); m != 0; m &= m - 1) {
        const CacheBlock &blk = base[lowestWay(m)];
        if (blk.valid && blk.owner == core) {
            ++count;
        }
    }
    return count;
}

WayId
SetAssocCache::lruValidWay(SetId set, WayMask mask) const
{
    const CacheBlock *base = &blocks_[index(set, 0)];
    WayId best = kNoWay;
    std::uint64_t best_lru = 0;
    for (WayMask m = mask & fullMask(ways_); m != 0; m &= m - 1) {
        const WayId w = lowestWay(m);
        if (!base[w].valid) {
            continue;
        }
        if (best == kNoWay || base[w].lru < best_lru) {
            best = w;
            best_lru = base[w].lru;
        }
    }
    return best;
}

L1Cache::L1Cache(const CacheGeometry &geometry)
    : array_(geometry, ReplPolicy::Lru)
{
}

L1Result
L1Cache::access(Addr addr, AccessType type)
{
    const WayMask all = fullMask(array_.ways());
    const Addr aligned = array_.slicer().blockAlign(addr);
    const SetId set = array_.slicer().set(aligned);

    L1Result result;
    const LookupResult found = array_.lookup(aligned, all);
    if (found.hit) {
        ++hits_;
        array_.touch(set, found.way);
        if (isWrite(type)) {
            array_.blockMutable(set, found.way).dirty = true;
        }
        result.hit = true;
        return result;
    }

    ++misses_;
    const WayId way = array_.victim(set, all);
    const CacheBlock &old = array_.block(set, way);
    if (old.valid && old.dirty) {
        result.writeback = true;
        result.writeback_addr = array_.blockAddr(set, way);
    }
    array_.insert(aligned, set, way, 0, isWrite(type));
    return result;
}

} // namespace coopsim::cache
