/**
 * @file
 * Victim selection policies for mask-restricted sets.
 *
 * The partitioning schemes need three flavours:
 *  - Lru:    classic least-recently-used within the allowed ways;
 *  - Random: uniform choice within the allowed ways (the paper notes
 *            way-aligned transfer is "closer in performance to a random
 *            choice of replacement block" — used in ablations);
 *  - Mru:    most-recently-used (anti-LRU, for adversarial tests).
 */

#ifndef COOPSIM_CACHE_REPLACEMENT_HPP
#define COOPSIM_CACHE_REPLACEMENT_HPP

#include <cstdint>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace coopsim::cache
{

/** Selects how victims are chosen among allowed, valid ways. */
enum class ReplPolicy : std::uint8_t
{
    Lru,
    Random,
    Mru,
};

/**
 * Stateless-per-set victim selector (the per-block LRU stamps live in
 * the cache's SoA lru array; Random keeps an Rng).
 */
class ReplacementPolicy
{
  public:
    explicit ReplacementPolicy(ReplPolicy policy, std::uint64_t seed);

    /**
     * Chooses a victim among the ways whose LRU stamps are
     * @p set_lru[0..ways), restricted to @p mask. All masked ways are
     * valid (callers prefer invalid ways before consulting the
     * policy).
     *
     * @param set_lru Pointer to the set's slice of the LRU-stamp array.
     * @param ways    Associativity.
     * @param mask    Allowed ways; must select at least one way.
     */
    WayId victim(const std::uint64_t *set_lru, std::uint32_t ways,
                 std::uint64_t mask);

    ReplPolicy kind() const { return policy_; }

  private:
    ReplPolicy policy_;
    Rng rng_;
};

} // namespace coopsim::cache

#endif // COOPSIM_CACHE_REPLACEMENT_HPP
