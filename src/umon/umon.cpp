#include "umon/umon.hpp"

#include "common/logging.hpp"

namespace coopsim::umon
{

UtilityMonitor::UtilityMonitor(const UmonConfig &config)
    : config_(config),
      slicer_(config.llc_sets, config.block_bytes),
      position_hits_(config.llc_ways, 0)
{
    COOPSIM_ASSERT(config.sample_period > 0, "zero sample period");
    COOPSIM_ASSERT(config.llc_sets % config.sample_period == 0,
                   "sample period must divide set count");
    const std::uint32_t sampled_sets =
        config.llc_sets / config.sample_period;
    atd_.assign(static_cast<std::size_t>(sampled_sets) * config.llc_ways,
                AtdEntry{});
}

void
UtilityMonitor::access(Addr addr)
{
    ++accesses_;
    const SetId set = slicer_.set(addr);
    if (!sampled(set)) {
        return;
    }
    ++sampled_refs_;

    const Addr tag = slicer_.tag(addr);
    AtdEntry *entries = atdSet(set / config_.sample_period);
    const std::uint32_t ways = config_.llc_ways;

    // The set's entries are a true-LRU recency stack (MRU first,
    // invalid entries at the tail), so the probe index of a hit IS its
    // recency position and the last valid entry IS the LRU victim —
    // one pass, no timestamp comparisons.
    for (std::uint32_t p = 0; p < ways; ++p) {
        AtdEntry &e = entries[p];
        if (!e.valid) {
            // Miss with a free slot: fill it and rotate to MRU.
            ++misses_;
            for (std::uint32_t i = p; i > 0; --i) {
                entries[i] = entries[i - 1];
            }
            entries[0] = {tag, true};
            return;
        }
        if (e.tag == tag) {
            ++position_hits_[p];
            for (std::uint32_t i = p; i > 0; --i) {
                entries[i] = entries[i - 1];
            }
            entries[0] = {tag, true};
            return;
        }
    }

    // Miss with a full set: the tail entry is the LRU victim.
    ++misses_;
    for (std::uint32_t i = ways - 1; i > 0; --i) {
        entries[i] = entries[i - 1];
    }
    entries[0] = {tag, true};
}

std::vector<double>
UtilityMonitor::missCurve() const
{
    const std::uint32_t ways = config_.llc_ways;
    const double scale = static_cast<double>(config_.sample_period);

    // Hits measured in the sampled ATD generalise to the whole cache
    // by multiplying by the sampling period; the *unsampled* misses are
    // approximated the same way. Using sampled counters uniformly keeps
    // the curve internally consistent.
    std::vector<double> curve(ways + 1, 0.0);
    double tail = static_cast<double>(misses_);
    curve[ways] = tail * scale;
    for (std::uint32_t w = ways; w-- > 0;) {
        tail += static_cast<double>(position_hits_[w]);
        curve[w] = tail * scale;
    }
    return curve;
}

void
UtilityMonitor::decay()
{
    for (auto &h : position_hits_) {
        h >>= 1;
    }
    misses_ >>= 1;
    accesses_ >>= 1;
    sampled_refs_ >>= 1;
}

void
UtilityMonitor::reset()
{
    for (auto &e : atd_) {
        e = AtdEntry{};
    }
    position_hits_.assign(position_hits_.size(), 0);
    misses_ = 0;
    accesses_ = 0;
    sampled_refs_ = 0;
}

} // namespace coopsim::umon
