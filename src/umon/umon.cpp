#include "umon/umon.hpp"

#include "common/logging.hpp"

namespace coopsim::umon
{

UtilityMonitor::UtilityMonitor(const UmonConfig &config)
    : config_(config),
      slicer_(config.llc_sets, config.block_bytes),
      position_hits_(config.llc_ways, 0)
{
    COOPSIM_ASSERT(config.sample_period > 0, "zero sample period");
    COOPSIM_ASSERT(config.llc_sets % config.sample_period == 0,
                   "sample period must divide set count");
    const std::uint32_t sampled_sets =
        config.llc_sets / config.sample_period;
    atd_.assign(static_cast<std::size_t>(sampled_sets) * config.llc_ways,
                AtdEntry{});
}

void
UtilityMonitor::access(Addr addr)
{
    ++accesses_;
    const SetId set = slicer_.set(addr);
    if (!sampled(set)) {
        return;
    }
    ++sampled_refs_;

    const Addr tag = slicer_.tag(addr);
    AtdEntry *entries = atdSet(set / config_.sample_period);
    const std::uint32_t ways = config_.llc_ways;

    // Probe, remembering the LRU victim in case of a miss.
    std::uint32_t hit_way = ways;
    std::uint32_t victim = 0;
    std::uint64_t victim_lru = kCycleMax;
    for (std::uint32_t w = 0; w < ways; ++w) {
        const AtdEntry &e = entries[w];
        if (e.valid && e.tag == tag) {
            hit_way = w;
            break;
        }
        if (!e.valid) {
            victim = w;
            victim_lru = 0;
        } else if (e.lru < victim_lru) {
            victim = w;
            victim_lru = e.lru;
        }
    }

    if (hit_way < ways) {
        // Recency position = number of entries more recent than this
        // one; MRU has position 0.
        std::uint32_t position = 0;
        for (std::uint32_t w = 0; w < ways; ++w) {
            if (w != hit_way && entries[w].valid &&
                entries[w].lru > entries[hit_way].lru) {
                ++position;
            }
        }
        ++position_hits_[position];
        entries[hit_way].lru = ++lru_clock_;
        return;
    }

    ++misses_;
    entries[victim] = {tag, true, ++lru_clock_};
}

std::vector<double>
UtilityMonitor::missCurve() const
{
    const std::uint32_t ways = config_.llc_ways;
    const double scale = static_cast<double>(config_.sample_period);

    // Hits measured in the sampled ATD generalise to the whole cache
    // by multiplying by the sampling period; the *unsampled* misses are
    // approximated the same way. Using sampled counters uniformly keeps
    // the curve internally consistent.
    std::vector<double> curve(ways + 1, 0.0);
    double tail = static_cast<double>(misses_);
    curve[ways] = tail * scale;
    for (std::uint32_t w = ways; w-- > 0;) {
        tail += static_cast<double>(position_hits_[w]);
        curve[w] = tail * scale;
    }
    return curve;
}

void
UtilityMonitor::decay()
{
    for (auto &h : position_hits_) {
        h >>= 1;
    }
    misses_ >>= 1;
    accesses_ >>= 1;
    sampled_refs_ >>= 1;
}

void
UtilityMonitor::reset()
{
    for (auto &e : atd_) {
        e = AtdEntry{};
    }
    position_hits_.assign(position_hits_.size(), 0);
    misses_ = 0;
    accesses_ = 0;
    sampled_refs_ = 0;
}

} // namespace coopsim::umon
