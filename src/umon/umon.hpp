/**
 * @file
 * Utility monitors (UMON) with dynamic set sampling.
 *
 * Re-implementation of the monitoring hardware from Qureshi & Patt,
 * "Utility-Based Cache Partitioning" (MICRO 2006), which the paper
 * adopts unchanged (Section 2.1): each core has an auxiliary tag
 * directory (ATD) covering a sampled subset of LLC sets with the full
 * LLC associativity and true-LRU replacement. Hit counters are kept per
 * recency position; by the LRU stack property, an access hitting at
 * stack position p would hit in any allocation of more than p ways.
 *
 * From the counters, missCurve() yields the expected number of misses
 * for every possible way allocation — the input to the look-ahead
 * partitioning algorithms in src/partition.
 */

#ifndef COOPSIM_UMON_UMON_HPP
#define COOPSIM_UMON_UMON_HPP

#include <cstdint>
#include <vector>

#include "common/geometry.hpp"
#include "common/types.hpp"

namespace coopsim::umon
{

/** Configuration of one per-core monitor. */
struct UmonConfig
{
    /** Number of sets of the monitored LLC. */
    std::uint32_t llc_sets = 2048;
    /** LLC associativity (ATD ways). */
    std::uint32_t llc_ways = 8;
    /** LLC block size. */
    std::uint32_t block_bytes = 64;
    /** Monitor every Nth set; 1 = full ATD. Must divide llc_sets. */
    std::uint32_t sample_period = 32;
};

/**
 * One core's utility monitor.
 */
class UtilityMonitor
{
  public:
    explicit UtilityMonitor(const UmonConfig &config);

    /**
     * Observes an LLC access (demand reference) by the owning core.
     * Only references to sampled sets update the ATD.
     */
    void access(Addr addr);

    /**
     * Expected misses for each allocation size, scaled back up by the
     * sampling factor.
     *
     * @return vector m of size ways+1: m[w] = expected misses had the
     *         core owned w ways. m[0] counts every reference as a miss;
     *         m is monotone non-increasing (LRU stack property).
     */
    std::vector<double> missCurve() const;

    /** Raw per-recency-position hit counters (position 0 = MRU). */
    const std::vector<std::uint64_t> &positionHits() const
    {
        return position_hits_;
    }

    std::uint64_t missCount() const { return misses_; }
    std::uint64_t accessCount() const { return accesses_; }

    /**
     * Halves every counter. Called at each partitioning epoch so the
     * curves track phase behaviour (as in the UCP paper).
     */
    void decay();

    /** Zeroes all counters and invalidates the ATD. */
    void reset();

    const UmonConfig &config() const { return config_; }

    /** True if @p set index is one of the sampled sets. */
    bool sampled(SetId set) const
    {
        return set % config_.sample_period == 0;
    }

  private:
    /**
     * One ATD entry. Entries of a sampled set are kept in recency
     * order — entries[0] is the MRU tag, invalid entries at the tail —
     * so a hit's recency position is simply its probe index and no LRU
     * timestamps or per-hit position scans are needed.
     */
    struct AtdEntry
    {
        Addr tag = 0;
        bool valid = false;
    };

    /** ATD entries of sampled set @p s_idx. */
    AtdEntry *atdSet(std::uint32_t s_idx)
    {
        return &atd_[static_cast<std::size_t>(s_idx) * config_.llc_ways];
    }

    UmonConfig config_;
    AddrSlicer slicer_;
    std::vector<AtdEntry> atd_;
    std::vector<std::uint64_t> position_hits_;
    std::uint64_t misses_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t sampled_refs_ = 0;
};

} // namespace coopsim::umon

#endif // COOPSIM_UMON_UMON_HPP
