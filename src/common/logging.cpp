#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace coopsim
{

namespace
{

std::atomic<bool> gThrowOnFatal{false};
std::atomic<bool> gQuiet{false};

} // namespace

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    if (gThrowOnFatal.load()) {
        throw FatalError(msg);
    }
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (!gQuiet.load()) {
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
    }
}

void
informImpl(const std::string &msg)
{
    if (!gQuiet.load()) {
        std::fprintf(stdout, "info: %s\n", msg.c_str());
    }
}

void
setThrowOnFatal(bool enable)
{
    gThrowOnFatal.store(enable);
}

bool
throwOnFatal()
{
    return gThrowOnFatal.load();
}

} // namespace detail

void
setThrowOnFatal(bool enable)
{
    detail::setThrowOnFatal(enable);
}

void
setQuiet(bool quiet)
{
    gQuiet.store(quiet);
}

} // namespace coopsim
