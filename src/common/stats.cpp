#include "common/stats.hpp"

#include <cmath>
#include <sstream>

#include "common/logging.hpp"

namespace coopsim::stats
{

void
Average::sample(double value, double weight)
{
    sum_ += value * weight;
    const double new_weight = weight_ + weight;
    if (weight > 0.0) {
        const double delta = value - wmean_;
        wmean_ += delta * (weight / new_weight);
        m2_ += weight * delta * (value - wmean_);
    }
    weight_ = new_weight;
    ++count_;
}

void
Average::reset()
{
    sum_ = 0.0;
    weight_ = 0.0;
    wmean_ = 0.0;
    m2_ = 0.0;
    count_ = 0;
}

double
Average::mean() const
{
    return weight_ > 0.0 ? sum_ / weight_ : 0.0;
}

double
Average::variance() const
{
    return weight_ > 0.0 && count_ > 1 ? m2_ / weight_ : 0.0;
}

double
Average::sampleVariance() const
{
    // Frequency-weight correction: with unit weights this is the
    // familiar m2 / (n - 1).
    if (count_ < 2 || weight_ <= 0.0) {
        return 0.0;
    }
    const double n = static_cast<double>(count_);
    const double denom = weight_ * (n - 1.0) / n;
    return denom > 0.0 ? m2_ / denom : 0.0;
}

double
Average::stdError() const
{
    if (count_ < 2) {
        return 0.0;
    }
    return std::sqrt(sampleVariance() /
                     static_cast<double>(count_));
}

Histogram::Histogram(std::size_t buckets) : counts_(buckets, 0) {}

void
Histogram::resize(std::size_t buckets)
{
    counts_.assign(buckets, 0);
    total_ = 0;
    weighted_ = 0.0;
}

void
Histogram::sample(std::size_t bucket, std::uint64_t by)
{
    COOPSIM_ASSERT(!counts_.empty(), "histogram with no buckets");
    if (bucket >= counts_.size()) {
        bucket = counts_.size() - 1;
    }
    counts_[bucket] += by;
    total_ += by;
    weighted_ += static_cast<double>(bucket) * static_cast<double>(by);
}

void
Histogram::reset()
{
    counts_.assign(counts_.size(), 0);
    total_ = 0;
    weighted_ = 0.0;
}

std::uint64_t
Histogram::count(std::size_t bucket) const
{
    COOPSIM_ASSERT(bucket < counts_.size(), "histogram bucket out of range");
    return counts_[bucket];
}

double
Histogram::mean() const
{
    return total_ > 0 ? weighted_ / static_cast<double>(total_) : 0.0;
}

TimeSeries::TimeSeries(Tick bin_width, std::size_t bins)
    : bin_width_(bin_width == 0 ? 1 : bin_width), counts_(bins, 0)
{
}

void
TimeSeries::configure(Tick bin_width, std::size_t bins)
{
    COOPSIM_ASSERT(bin_width > 0, "zero bin width");
    bin_width_ = bin_width;
    counts_.assign(bins, 0);
    total_ = 0;
}

void
TimeSeries::record(Tick offset, std::uint64_t count)
{
    if (counts_.empty()) {
        return;
    }
    std::size_t bin = static_cast<std::size_t>(offset / bin_width_);
    if (bin >= counts_.size()) {
        bin = counts_.size() - 1;
    }
    counts_[bin] += count;
    total_ += count;
}

void
TimeSeries::reset()
{
    counts_.assign(counts_.size(), 0);
    total_ = 0;
}

std::uint64_t
TimeSeries::bin(std::size_t i) const
{
    COOPSIM_ASSERT(i < counts_.size(), "time series bin out of range");
    return counts_[i];
}

StatGroup::StatGroup(std::string name) : name_(std::move(name)) {}

void
StatGroup::add(const std::string &key, double value)
{
    std::ostringstream os;
    os << value;
    entries_[key] = os.str();
}

void
StatGroup::add(const std::string &key, std::uint64_t value)
{
    entries_[key] = std::to_string(value);
}

std::string
StatGroup::format() const
{
    std::ostringstream os;
    for (const auto &[key, value] : entries_) {
        os << name_ << '.' << key << ' ' << value << '\n';
    }
    return os.str();
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty()) {
        return 0.0;
    }
    double log_sum = 0.0;
    for (double v : values) {
        COOPSIM_ASSERT(v > 0.0, "geomean of non-positive value");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty()) {
        return 0.0;
    }
    double sum = 0.0;
    for (double v : values) {
        sum += v;
    }
    return sum / static_cast<double>(values.size());
}

} // namespace coopsim::stats
