/**
 * @file
 * Statistics primitives: scalar counters, distributions, and binned
 * time series, grouped into named, dumpable StatGroups.
 *
 * The statistics layer is deliberately simple: everything is a double
 * or uint64_t updated inline by the simulation hot paths, with
 * formatting kept entirely out of the fast path.
 */

#ifndef COOPSIM_COMMON_STATS_HPP
#define COOPSIM_COMMON_STATS_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace coopsim::stats
{

/** Monotone event counter. */
class Counter
{
  public:
    void inc(std::uint64_t by = 1) { value_ += by; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Accumulates a weighted mean (e.g. ways probed per access) plus a
 * numerically stable running variance (West's weighted extension of
 * Welford's algorithm). mean() keeps the original sum/weight form so
 * results that were computed from it stay bit-identical; the Welford
 * mean is a separate accumulator used only by the variance terms.
 */
class Average
{
  public:
    void sample(double value, double weight = 1.0);
    void reset();
    double mean() const;
    double weight() const { return weight_; }
    std::uint64_t count() const { return count_; }

    /** Population variance (weighted; 0 with fewer than 2 samples). */
    double variance() const;
    /** Unbiased sample variance with frequency weights. */
    double sampleVariance() const;
    /** Standard error of the mean: sqrt(sampleVariance / count). */
    double stdError() const;

  private:
    double sum_ = 0.0;
    double weight_ = 0.0;
    double wmean_ = 0.0;
    double m2_ = 0.0;
    std::uint64_t count_ = 0;
};

/** Fixed-bin histogram over [0, buckets). Out-of-range clamps to last. */
class Histogram
{
  public:
    explicit Histogram(std::size_t buckets = 0);

    void resize(std::size_t buckets);
    void sample(std::size_t bucket, std::uint64_t by = 1);
    void reset();

    std::size_t buckets() const { return counts_.size(); }
    std::uint64_t count(std::size_t bucket) const;
    std::uint64_t total() const { return total_; }
    /** Mean bucket index of all samples (0 when empty). */
    double mean() const;

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    double weighted_ = 0.0;
};

/**
 * Events bucketed by simulation time — used for the paper's Figure 16
 * (flushed lines vs. cycles since a partitioning decision).
 */
class TimeSeries
{
  public:
    /** @param bin_width Cycles per bin. @param bins Number of bins. */
    TimeSeries(Tick bin_width = 1, std::size_t bins = 0);

    void configure(Tick bin_width, std::size_t bins);
    /** Records @p count events at @p offset cycles from the origin. */
    void record(Tick offset, std::uint64_t count = 1);
    void reset();

    Tick binWidth() const { return bin_width_; }
    std::size_t bins() const { return counts_.size(); }
    std::uint64_t bin(std::size_t i) const;
    std::uint64_t total() const { return total_; }

  private:
    Tick bin_width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/** A named collection of formatted statistics for dumping. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name);

    void add(const std::string &key, double value);
    void add(const std::string &key, std::uint64_t value);

    const std::string &name() const { return name_; }
    const std::map<std::string, std::string> &entries() const
    {
        return entries_;
    }

    /** Renders "group.key value" lines. */
    std::string format() const;

  private:
    std::string name_;
    std::map<std::string, std::string> entries_;
};

/** Geometric mean of a vector of strictly positive values. */
double geomean(const std::vector<double> &values);

/** Arithmetic mean (0 when empty). */
double mean(const std::vector<double> &values);

} // namespace coopsim::stats

#endif // COOPSIM_COMMON_STATS_HPP
