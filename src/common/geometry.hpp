/**
 * @file
 * Cache geometry helpers: power-of-two checks, address slicing.
 */

#ifndef COOPSIM_COMMON_GEOMETRY_HPP
#define COOPSIM_COMMON_GEOMETRY_HPP

#include <bit>
#include <cstdint>

#include "common/logging.hpp"
#include "common/types.hpp"

namespace coopsim
{

/** True iff @p v is a power of two (0 is not). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)); @p v must be non-zero. */
constexpr std::uint32_t
floorLog2(std::uint64_t v)
{
    return 63u - static_cast<std::uint32_t>(std::countl_zero(v));
}

/**
 * Slices addresses into (tag, set, block offset) for a power-of-two
 * set-associative cache.
 */
class AddrSlicer
{
  public:
    AddrSlicer(std::uint32_t num_sets, std::uint32_t block_bytes)
        : num_sets_(num_sets), block_bytes_(block_bytes)
    {
        COOPSIM_ASSERT(isPowerOfTwo(num_sets), "sets not power of two");
        COOPSIM_ASSERT(isPowerOfTwo(block_bytes), "block not power of two");
        block_bits_ = floorLog2(block_bytes);
        set_bits_ = floorLog2(num_sets);
    }

    SetId set(Addr addr) const
    {
        return static_cast<SetId>((addr >> block_bits_) & (num_sets_ - 1));
    }

    Addr tag(Addr addr) const
    {
        return addr >> (block_bits_ + set_bits_);
    }

    /** Canonical block-aligned address. */
    Addr blockAlign(Addr addr) const
    {
        return addr & ~static_cast<Addr>(block_bytes_ - 1);
    }

    /** Reconstructs the block address from (tag, set). */
    Addr compose(Addr tag, SetId set) const
    {
        return (tag << (block_bits_ + set_bits_)) |
               (static_cast<Addr>(set) << block_bits_);
    }

    std::uint32_t numSets() const { return num_sets_; }
    std::uint32_t blockBytes() const { return block_bytes_; }
    std::uint32_t setBits() const { return set_bits_; }
    std::uint32_t blockBits() const { return block_bits_; }

  private:
    std::uint32_t num_sets_;
    std::uint32_t block_bytes_;
    std::uint32_t block_bits_;
    std::uint32_t set_bits_;
};

} // namespace coopsim

#endif // COOPSIM_COMMON_GEOMETRY_HPP
