/**
 * @file
 * Error and status reporting in the gem5 style.
 *
 * panic()  — an internal invariant was violated: a bug in this library.
 *            Aborts so a debugger/core dump is available.
 * fatal()  — the user asked for something impossible (bad configuration,
 *            invalid arguments). Exits with status 1.
 * warn()   — something is suspicious but the simulation can continue.
 * inform() — plain status output.
 */

#ifndef COOPSIM_COMMON_LOGGING_HPP
#define COOPSIM_COMMON_LOGGING_HPP

#include <sstream>
#include <string>

namespace coopsim
{

namespace detail
{

/** Formats "a=1 b=2" style messages from a parameter pack. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Test hook: when set, fatal() throws instead of exiting. */
void setThrowOnFatal(bool enable);
bool throwOnFatal();

} // namespace detail

/** Thrown by fatal() when the test hook is enabled. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Enable/disable throwing fatal errors (used by the test suite). */
void setThrowOnFatal(bool enable);

/** Suppress or restore warn()/inform() output (quiet benches). */
void setQuiet(bool quiet);

} // namespace coopsim

#define COOPSIM_PANIC(...)                                                   \
    ::coopsim::detail::panicImpl(__FILE__, __LINE__,                         \
                                 ::coopsim::detail::concat(__VA_ARGS__))

#define COOPSIM_FATAL(...)                                                   \
    ::coopsim::detail::fatalImpl(__FILE__, __LINE__,                         \
                                 ::coopsim::detail::concat(__VA_ARGS__))

#define COOPSIM_WARN(...)                                                    \
    ::coopsim::detail::warnImpl(::coopsim::detail::concat(__VA_ARGS__))

#define COOPSIM_INFORM(...)                                                  \
    ::coopsim::detail::informImpl(::coopsim::detail::concat(__VA_ARGS__))

/** Invariant check that survives NDEBUG: used for architectural state. */
#define COOPSIM_ASSERT(cond, ...)                                            \
    do {                                                                     \
        if (!(cond)) {                                                       \
            COOPSIM_PANIC("assertion failed: ", #cond, " ", __VA_ARGS__);    \
        }                                                                    \
    } while (0)

#endif // COOPSIM_COMMON_LOGGING_HPP
