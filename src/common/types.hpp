/**
 * @file
 * Fundamental scalar types shared by every subsystem.
 *
 * The simulator uses explicit fixed-width types for anything that is an
 * architectural quantity (addresses, cycle counts, core identifiers) so
 * that overflow behaviour is well defined and intent is visible at use
 * sites.
 */

#ifndef COOPSIM_COMMON_TYPES_HPP
#define COOPSIM_COMMON_TYPES_HPP

#include <cstdint>
#include <limits>

namespace coopsim
{

/** Physical byte address. */
using Addr = std::uint64_t;

/** Simulated clock cycle. The simulation clock is global and monotone. */
using Cycle = std::uint64_t;

/** Number of cycles between two events. */
using Tick = std::uint64_t;

/** Index of a core within the CMP (0-based). */
using CoreId = std::uint32_t;

/** Index of a cache way within a set (0-based). */
using WayId = std::uint32_t;

/** Index of a cache set (0-based). */
using SetId = std::uint32_t;

/** Instruction count. */
using InstCount = std::uint64_t;

/** Sentinel: "no core". */
inline constexpr CoreId kNoCore = std::numeric_limits<CoreId>::max();

/** Sentinel: "no way". */
inline constexpr WayId kNoWay = std::numeric_limits<WayId>::max();

/** Sentinel: "never" / unreachable cycle. */
inline constexpr Cycle kCycleMax = std::numeric_limits<Cycle>::max();

/** Kind of memory access issued by a core. */
enum class AccessType : std::uint8_t
{
    Read,
    Write,
};

/** Outcome of a cache lookup. */
enum class AccessResult : std::uint8_t
{
    Hit,
    Miss,
};

/** Returns true if the access dirties the line it touches. */
constexpr bool
isWrite(AccessType type)
{
    return type == AccessType::Write;
}

} // namespace coopsim

#endif // COOPSIM_COMMON_TYPES_HPP
