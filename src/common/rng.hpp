/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component of the simulator (synthetic trace
 * generators, random replacement, random way selection in Algorithm 2)
 * draws from an explicitly seeded Rng instance so that whole simulations
 * are reproducible bit-for-bit from a single seed.
 *
 * The engine is xoshiro256** (Blackman & Vigna), implemented here to
 * avoid any dependence on the standard library's unspecified
 * distributions.
 */

#ifndef COOPSIM_COMMON_RNG_HPP
#define COOPSIM_COMMON_RNG_HPP

#include <cstdint>

#include "common/types.hpp"

namespace coopsim
{

/**
 * A small, fast, deterministic PRNG (xoshiro256**).
 */
class Rng
{
  public:
    /** Seeds the engine via SplitMix64 expansion of @p seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) — @p bound must be > 0. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p of returning true. */
    bool nextBool(double p);

    /**
     * Draws an index from a discrete cumulative distribution.
     *
     * @param cdf Monotone array of cumulative probabilities; the last
     *            entry should be 1.0 (values are clamped).
     * @param n   Number of entries.
     * @return index in [0, n).
     */
    std::uint32_t nextFromCdf(const double *cdf, std::uint32_t n);

    /** Geometric-like draw: number of failures before a success. */
    std::uint64_t nextGeometric(double p_success);

    /**
     * Cached-log variant for callers that draw many times with the
     * same @p p_success: @p log1p_neg_p must equal
     * std::log1p(-p_success) (ignored when p_success >= 1). Performs
     * the identical operations on the identical draw, so the result
     * is bit-identical to nextGeometric(p_success).
     */
    std::uint64_t nextGeometric(double p_success, double log1p_neg_p);

  private:
    std::uint64_t state_[4];
};

} // namespace coopsim

#endif // COOPSIM_COMMON_RNG_HPP
