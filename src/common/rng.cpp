#include "common/rng.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace coopsim
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_) {
        word = splitmix64(s);
    }
    // A zero state would be absorbing; splitmix64 can't produce all-zero
    // from any seed, but keep the guarantee explicit.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
        state_[0] = 1;
    }
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    COOPSIM_ASSERT(bound > 0, "nextBelow(0)");
    // Multiply-shift rejection-free mapping is fine for simulation use.
    __uint128_t wide = static_cast<__uint128_t>(next()) * bound;
    return static_cast<std::uint64_t>(wide >> 64);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

std::uint32_t
Rng::nextFromCdf(const double *cdf, std::uint32_t n)
{
    COOPSIM_ASSERT(n > 0, "empty cdf");
    const double u = nextDouble();
    for (std::uint32_t i = 0; i < n; ++i) {
        if (u < cdf[i]) {
            return i;
        }
    }
    return n - 1;
}

std::uint64_t
Rng::nextGeometric(double p_success)
{
    return nextGeometric(p_success, std::log1p(-p_success));
}

std::uint64_t
Rng::nextGeometric(double p_success, double log1p_neg_p)
{
    COOPSIM_ASSERT(p_success > 0.0 && p_success <= 1.0,
                   "geometric p out of range");
    if (p_success >= 1.0) {
        return 0;
    }
    const double u = nextDouble();
    return static_cast<std::uint64_t>(
        std::floor(std::log1p(-u) / log1p_neg_p));
}

} // namespace coopsim
