/**
 * @file
 * Set-sampled LLC: a decorator that simulates only the 1-in-S subset
 * of sets the paper's UMON ATD would sample (`set % S == 0`), over an
 * inner LLC built at 1/S the capacity.
 *
 * Addresses mapping to a sampled set are translated into the inner
 * array's (smaller) address space — the translation is bijective per
 * (tag, set) pair so the inner cache sees exactly the conflict
 * behaviour of the sampled sets. Addresses mapping elsewhere never
 * touch the cache model: they are replayed against the DRAM model at
 * the per-core miss and writeback rates the sampled sets measure
 * (integer credit counters, so the replication — like everything else
 * here — is deterministic). Synthetic misses therefore pay the *real*
 * current DRAM queueing delay, and DRAM keeps seeing the full-rate
 * request stream: when memory saturates, sampled cores throttle on
 * the same growing backlog exact cores do. A historical-average
 * latency estimate fails exactly there — the mean lags the growing
 * queue and the unsampled 1-1/S of the traffic stops exerting any
 * back-pressure at all.
 *
 * Statistics are NOT scaled here: the decorator reports the inner
 * (1/S-sized) counters raw, and sim::System::collect() scales them
 * back up, keeping the scale-up policy in one place next to the op-
 * sampling factors.
 */

#ifndef COOPSIM_SAMPLING_SET_SAMPLED_HPP
#define COOPSIM_SAMPLING_SET_SAMPLED_HPP

#include <functional>
#include <memory>
#include <vector>

#include "common/geometry.hpp"
#include "llc/shared_cache.hpp"
#include "mem/dram.hpp"

namespace coopsim::sampling
{

/** Builds the inner (reduced-geometry) LLC — the scheme factory with
 *  the banking decoration already applied (api::makeLlcByName). */
using InnerLlcFactory =
    std::function<std::unique_ptr<llc::Llc>(const llc::LlcConfig &)>;

class SetSampledLlc final : public llc::Llc
{
  public:
    /**
     * @param config  Full-size LLC configuration (the geometry the
     *                run's RunKey describes).
     * @param period  1-in-S set selection; a power of two that divides
     *                the set count (fatal otherwise — the inner array
     *                needs a power-of-two set count of its own).
     * @param dram    The run's memory model; unsampled misses and
     *                writebacks are replayed into it so it stays under
     *                the full-rate load.
     * @param factory Builds the inner LLC from the reduced config.
     */
    SetSampledLlc(const llc::LlcConfig &config, std::uint32_t period,
                  mem::DramModel &dram, const InnerLlcFactory &factory);

    llc::LlcAccess access(CoreId core, Addr addr, AccessType type,
                          Cycle now) override;

    void epoch(Cycle now) override { inner_->epoch(now); }
    double poweredWays() const override { return inner_->poweredWays(); }
    std::vector<std::uint32_t> allocation() const override
    {
        return inner_->allocation();
    }
    llc::Scheme scheme() const override { return inner_->scheme(); }
    void integrateStatic(Cycle now) override
    {
        inner_->integrateStatic(now);
    }
    void resetStats(Cycle now) override { inner_->resetStats(now); }

    /** The full-size configuration, not the inner one: callers asking
     *  the LLC for its geometry must see the run's real topology. */
    const llc::LlcConfig &config() const override { return config_; }
    const llc::CoreLlcStats &coreStats(CoreId core) const override
    {
        return inner_->coreStats(core);
    }
    const llc::TakeoverEventStats &takeoverEvents() const override
    {
        return inner_->takeoverEvents();
    }
    const stats::TimeSeries &flushSeries() const override
    {
        return inner_->flushSeries();
    }
    const std::vector<double> &transferDurations() const override
    {
        return inner_->transferDurations();
    }
    std::uint64_t flushedLines() const override
    {
        return inner_->flushedLines();
    }
    std::uint64_t epochsRun() const override
    {
        return inner_->epochsRun();
    }
    std::uint64_t repartitions() const override
    {
        return inner_->repartitions();
    }
    energy::EnergyTotals energyTotals() const override
    {
        return inner_->energyTotals();
    }
    double avgWaysProbed() const override
    {
        return inner_->avgWaysProbed();
    }
    std::uint32_t banks() const override { return inner_->banks(); }
    Cycle portAccess(Addr addr, Cycle now) override
    {
        return inner_->portAccess(addr, now);
    }
    void carryBacklog(Cycle from, Cycle delta) override
    {
        inner_->carryBacklog(from, delta);
    }
    std::uint64_t bankConflicts() const override
    {
        return inner_->bankConflicts();
    }
    std::uint64_t bankConflictCycles() const override
    {
        return inner_->bankConflictCycles();
    }

    /** 1-in-S selection period. */
    std::uint32_t period() const { return period_; }
    /** The inner (1/S-capacity) LLC, for tests. */
    const llc::Llc &inner() const { return *inner_; }

  private:
    /** Maps a sampled full-geometry address into the inner array. */
    Addr translate(Addr addr) const;

    llc::LlcConfig config_;
    std::uint32_t period_;
    std::uint32_t period_bits_;
    AddrSlicer slicer_;
    mem::DramModel &dram_;
    std::unique_ptr<llc::Llc> inner_;
    /**
     * Per-core fixed-denominator rate replicators: each unsampled
     * access adds the sampled miss (writeback) count; crossing the
     * sampled access count emits one synthetic DRAM request. The
     * credits survive resetStats: they are timing-model state (like
     * cache contents), not measurement counters.
     */
    std::vector<std::uint64_t> miss_credit_;
    std::vector<std::uint64_t> wb_credit_;
    /**
     * Cached per-core sampled-rate snapshot {accesses, misses,
     * writebacks}, refreshed from inner_->coreStats() once every
     * kSnapRefresh unsampled accesses. The banked inner cache merges
     * every bank x core counter on each coreStats() call, so querying
     * it per access would put an O(banks x cores) walk on the hot
     * path; the replicated rates drift slowly enough that a snapshot
     * a few dozen accesses stale is indistinguishable.
     */
    static constexpr std::uint32_t kSnapRefresh = 64;
    std::vector<std::uint64_t> snap_acc_;
    std::vector<std::uint64_t> snap_miss_;
    std::vector<std::uint64_t> snap_wb_;
    std::vector<std::uint32_t> snap_age_;
};

} // namespace coopsim::sampling

#endif // COOPSIM_SAMPLING_SET_SAMPLED_HPP
