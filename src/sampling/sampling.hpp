/**
 * @file
 * Statistical sampling estimators for the simulation itself.
 *
 * Two composable estimators trade exactness for wall-clock, with the
 * error carried as a per-metric confidence interval instead of being
 * silently absorbed:
 *
 *  - **Set sampling** (`set`): only addresses mapping to a 1/S subset
 *    of LLC sets are simulated in the shared cache — the same
 *    selection rule the paper's UMON ATD uses (`set % S == 0`).
 *    Accesses to unsampled sets are charged the running average
 *    latency of the sampled ones; counters are scaled back up by S at
 *    collection. Because the modelled array is 1/S the capacity, the
 *    cache also warms S× faster, so warmup shrinks by S (the same
 *    argument `applyScale` already uses when it miniaturises the
 *    set count per scale).
 *
 *  - **Op sampling** (`op`): SMARTS-style alternation of short detail
 *    windows (simulated exactly) and fast-forward gaps (an analytic
 *    clock jump at the last window's CPI, no ops generated, no LLC
 *    traffic). Per-window IPC samples feed a Welford accumulator;
 *    the reported CI is z * stderr plus a fixed relative allowance
 *    for the estimator's systematic bias (contention missed during
 *    another core's fast-forward gap).
 *
 * `setop` composes both. `exact` (the default everywhere) bypasses
 * all of this and is byte-identical to the pre-sampling simulator —
 * it plays the same reference role DriverMode::PerOp plays for the
 * batched driver. The mode and its two knobs are part of RunKey
 * identity, but are emitted only when non-default so existing key
 * and store lines stay byte-stable (the PR 8 `banks=` pattern).
 */

#ifndef COOPSIM_SAMPLING_SAMPLING_HPP
#define COOPSIM_SAMPLING_SAMPLING_HPP

#include <cmath>
#include <cstdint>

namespace coopsim::sampling
{

/** Which estimator(s) a run uses. Exact is the reference. */
enum class Mode : std::uint8_t
{
    Exact,
    Set,
    Op,
    SetOp,
};

constexpr bool
setSampled(Mode mode)
{
    return mode == Mode::Set || mode == Mode::SetOp;
}

constexpr bool
opSampled(Mode mode)
{
    return mode == Mode::Op || mode == Mode::SetOp;
}

/** Estimator knobs as they travel in RunKey / SystemConfig: 0 means
 *  "use the estimator default", so exact keys stay canonical. */
struct Params
{
    Mode mode = Mode::Exact;
    /** 1-in-S set selection; power of two, must divide the set count. */
    std::uint32_t set_period = 0;
    /** Number of measurement windows per app. */
    std::uint32_t op_windows = 0;

    bool operator==(const Params &) const = default;
};

/** Default 1/8 of sets: coarser than UMON's 1/32 because the main
 *  simulation, unlike the ATD, feeds partitioning decisions. */
inline constexpr std::uint32_t kDefaultSetPeriod = 4;
/** Default windows per app; with kDetailDivisor this simulates 1/16
 *  of the measured instructions in 32 detail windows. */
inline constexpr std::uint32_t kDefaultOpWindows = 32;
/** Detail fraction of each window period (1/16, SMARTS-like). */
inline constexpr std::uint64_t kDetailDivisor = 16;

/** z for the ~95% confidence level the CIs report. */
inline constexpr double kCiZ = 1.96;
/**
 * Relative bias allowances added to the statistical CI: systematic
 * error the window variance cannot see. Both scale with how starved
 * the estimator is:
 *
 *  - Set sampling's error is partitioning noise from deciding with
 *    1/S of the sets; it grows as the sampled array shrinks, so the
 *    allowance scales with sqrt(kSetRefSets / sampled_sets).
 *  - Op sampling's error is contention transient and in-flight stall
 *    debt at window boundaries; it grows as detail windows shrink
 *    toward the memory latency, so the allowance scales with
 *    sqrt(kOpRefDetailCycles / detail_cycles).
 *
 * The base constants are calibrated so every cell of the differential
 * suite in tests/test_sampling.cpp stays inside its reported CI with
 * margin.
 */
inline constexpr double kSetBiasRel = 0.06;
inline constexpr double kSetRefSets = 1024.0;
inline constexpr double kOpBiasRel = 0.12;
inline constexpr double kOpRefDetailCycles = 16384.0;

/**
 * Relative systematic allowance for a run's estimator configuration.
 *
 * @param set_period    1 = set sampling off.
 * @param fast_forward  True when op sampling skipped instructions.
 * @param sampled_sets  Sets the inner array actually modelled.
 * @param detail_cycles Length of one detail window in cycles.
 */
inline double
biasAllowance(std::uint32_t set_period, bool fast_forward,
              double sampled_sets, double detail_cycles)
{
    double rel = 0.0;
    if (set_period > 1 && sampled_sets > 0.0) {
        rel += kSetBiasRel * std::sqrt(kSetRefSets / sampled_sets);
    }
    if (fast_forward && detail_cycles > 0.0) {
        rel += kOpBiasRel * std::sqrt(kOpRefDetailCycles / detail_cycles);
    }
    return rel;
}

/** Params with defaults filled in, ready for System to act on. */
struct Resolved
{
    /** 1 = set sampling off. */
    std::uint32_t set_period = 1;
    /** 0 = no measurement windows (exact). */
    std::uint32_t windows = 0;
    /** Whether windows alternate with fast-forward gaps. */
    bool fast_forward = false;
};

inline Resolved
resolve(const Params &p)
{
    Resolved r;
    if (setSampled(p.mode)) {
        r.set_period = p.set_period != 0 ? p.set_period : kDefaultSetPeriod;
    }
    if (p.mode != Mode::Exact) {
        r.windows = p.op_windows != 0 ? p.op_windows : kDefaultOpWindows;
    }
    r.fast_forward = opSampled(p.mode);
    return r;
}

} // namespace coopsim::sampling

#endif // COOPSIM_SAMPLING_SAMPLING_HPP
