#include "sampling/set_sampled.hpp"

#include "common/logging.hpp"

namespace coopsim::sampling
{

SetSampledLlc::SetSampledLlc(const llc::LlcConfig &config,
                             std::uint32_t period, mem::DramModel &dram,
                             const InnerLlcFactory &factory)
    : config_(config), period_(period),
      slicer_(static_cast<std::uint32_t>(config.geometry.numSets()),
              config.geometry.block_bytes),
      dram_(dram),
      miss_credit_(config.num_cores, 0),
      wb_credit_(config.num_cores, 0),
      snap_acc_(config.num_cores, 0),
      snap_miss_(config.num_cores, 0),
      snap_wb_(config.num_cores, 0),
      snap_age_(config.num_cores, kSnapRefresh)
{
    const std::uint64_t sets = config.geometry.numSets();
    if (period_ < 2 || !isPowerOfTwo(period_)) {
        COOPSIM_FATAL("set sample period ", period_,
                      " must be a power of two >= 2");
    }
    if (sets % period_ != 0 || sets / period_ == 0) {
        COOPSIM_FATAL("set sample period ", period_, " does not divide ",
                      sets, " LLC sets");
    }
    period_bits_ = floorLog2(period_);

    llc::LlcConfig inner = config;
    inner.geometry.size_bytes = config.geometry.size_bytes / period_;
    if (inner.banks > 1 &&
        inner.geometry.numSets() % inner.banks != 0) {
        COOPSIM_FATAL("set sample period ", period_, " leaves ",
                      inner.geometry.numSets(),
                      " sets, not divisible over ", inner.banks,
                      " banks");
    }
    inner_ = factory(inner);
    COOPSIM_ASSERT(inner_ != nullptr, "inner LLC factory returned null");
}

Addr
SetSampledLlc::translate(Addr addr) const
{
    // Drop the low period_bits of the set field (zero for every
    // sampled address) and splice tag and reduced set back together
    // over the inner array's geometry. Bijective per (tag, set), so
    // the inner cache reproduces the sampled sets' conflict behaviour
    // exactly.
    const SetId set = slicer_.set(addr);
    const Addr tag = slicer_.tag(addr);
    const std::uint32_t inner_set_bits =
        slicer_.setBits() - period_bits_;
    const Addr inner_block =
        (tag << inner_set_bits) | (static_cast<Addr>(set) >> period_bits_);
    return (inner_block << slicer_.blockBits()) |
           (addr & (slicer_.blockBytes() - 1));
}

llc::LlcAccess
SetSampledLlc::access(CoreId core, Addr addr, AccessType type, Cycle now)
{
    const SetId set = slicer_.set(addr);
    if (set % period_ != 0) {
        // Unsampled set: the access still claims its bank port (slice
        // contention is load-dependent and must see the full-rate
        // stream), then replicates the sampled sets' per-core miss and
        // writeback rates with integer credits, so DRAM carries the
        // full-rate load too and a synthetic miss pays the real
        // queueing delay of the moment.
        const Cycle start = inner_->portAccess(addr, now);
        if (++snap_age_[core] >= kSnapRefresh || snap_acc_[core] == 0) {
            const llc::CoreLlcStats &cs = inner_->coreStats(core);
            snap_acc_[core] = cs.accesses.value();
            snap_miss_[core] = cs.misses.value();
            snap_wb_[core] = cs.writebacks.value();
            snap_age_[core] = 0;
        }
        const std::uint64_t acc = snap_acc_[core];
        if (acc == 0) {
            // Cold start: no sampled evidence yet for this core.
            return {true, false, start + config_.hit_latency, 0};
        }
        wb_credit_[core] += snap_wb_[core];
        if (wb_credit_[core] >= acc) {
            wb_credit_[core] -= acc;
            dram_.writeback(addr, start);
        }
        miss_credit_[core] += snap_miss_[core];
        if (miss_credit_[core] >= acc) {
            miss_credit_[core] -= acc;
            const Cycle done = dram_.access(addr, type, start);
            return {false, false, done, 0};
        }
        return {true, false, start + config_.hit_latency, 0};
    }
    return inner_->access(core, translate(addr), type, now);
}

} // namespace coopsim::sampling
