#include "partition/transition_plan.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace coopsim::partition
{

namespace
{

/** Removes and returns a random element of @p pool. */
WayId
takeRandom(std::vector<WayId> &pool, Rng &rng)
{
    COOPSIM_ASSERT(!pool.empty(), "taking from empty way pool");
    const std::size_t idx =
        static_cast<std::size_t>(rng.nextBelow(pool.size()));
    const WayId way = pool[idx];
    pool[idx] = pool.back();
    pool.pop_back();
    return way;
}

} // namespace

TransitionPlan
planTransition(const std::vector<std::vector<WayId>> &owned_ways,
               const std::vector<WayId> &off_ways,
               const std::vector<std::uint32_t> &new_alloc, Rng &rng)
{
    const std::size_t n = owned_ways.size();
    COOPSIM_ASSERT(new_alloc.size() == n,
                   "allocation/ownership size mismatch");

    // First pass of Algorithm 2: classify cores as donors or recipients.
    std::vector<std::uint32_t> donate(n, 0);
    std::vector<std::uint32_t> receive(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        const auto prev = static_cast<std::uint32_t>(owned_ways[i].size());
        if (prev < new_alloc[i]) {
            receive[i] = new_alloc[i] - prev;
        } else if (prev > new_alloc[i]) {
            donate[i] = prev - new_alloc[i];
        }
    }

    // Mutable pools of candidate ways per donor, in the paper's spirit
    // of "random way owned by core j".
    std::vector<std::vector<WayId>> donor_pool(owned_ways);
    std::vector<WayId> off_pool(off_ways);

    TransitionPlan plan;

    // Second pass: pair donors with recipients.
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n && receive[i] > 0; ++j) {
            if (i == j || donate[j] == 0) {
                continue;
            }
            const std::uint32_t donation = std::min(receive[i], donate[j]);
            for (std::uint32_t d = 0; d < donation; ++d) {
                const WayId w = takeRandom(donor_pool[j], rng);
                plan.transfers.push_back(
                    {w, static_cast<CoreId>(j), static_cast<CoreId>(i)});
            }
            receive[i] -= donation;
            donate[j] -= donation;
        }
    }

    // Third pass: surplus donations drain to off; residual demand is
    // served from the powered-off pool.
    for (std::size_t i = 0; i < n; ++i) {
        for (std::uint32_t d = 0; d < donate[i]; ++d) {
            const WayId w = takeRandom(donor_pool[i], rng);
            plan.drains.push_back({w, static_cast<CoreId>(i)});
        }
        donate[i] = 0;

        for (std::uint32_t r = 0; r < receive[i]; ++r) {
            COOPSIM_ASSERT(!off_pool.empty(),
                           "allocation exceeds donations + off ways");
            const WayId w = takeRandom(off_pool, rng);
            plan.power_ons.push_back({w, static_cast<CoreId>(i)});
        }
        receive[i] = 0;
    }

    return plan;
}

} // namespace coopsim::partition
