/**
 * @file
 * Algorithm 2 of the paper: given the previous and the newly decided
 * way allocations, plan which physical ways move between cores, which
 * are drained and powered off, and which are powered on — expressed as
 * the RAP/WAP register changes that initiate cooperative takeover.
 *
 * The planner is pure: it does not touch the cache. The Cooperative LLC
 * applies the plan to its permission registers and takeover vectors.
 */

#ifndef COOPSIM_PARTITION_TRANSITION_PLAN_HPP
#define COOPSIM_PARTITION_TRANSITION_PLAN_HPP

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace coopsim::partition
{

/** A way moving from one core to another via cooperative takeover. */
struct WayTransfer
{
    WayId way = kNoWay;
    CoreId donor = kNoCore;
    CoreId recipient = kNoCore;
};

/** A way a core must drain (flush dirty lines) before it powers off. */
struct WayDrain
{
    WayId way = kNoWay;
    CoreId donor = kNoCore;
};

/** A powered-off way granted to a core; usable immediately. */
struct WayPowerOn
{
    WayId way = kNoWay;
    CoreId recipient = kNoCore;
};

/** Output of Algorithm 2. */
struct TransitionPlan
{
    std::vector<WayTransfer> transfers;
    std::vector<WayDrain> drains;
    std::vector<WayPowerOn> power_ons;

    bool empty() const
    {
        return transfers.empty() && drains.empty() && power_ons.empty();
    }
};

/**
 * Plans the way movements realising a new allocation.
 *
 * @param owned_ways  owned_ways[c] = ways core c currently owns
 *                    (steady state: no way appears for two cores).
 * @param off_ways    Currently powered-off ways.
 * @param new_alloc   new_alloc[c] = way count core c should own next.
 * @param rng         Source for the random way choices the paper's
 *                    Algorithm 2 specifies.
 *
 * The plan satisfies: every core ends with exactly new_alloc[c] ways;
 * donors first feed recipients (transfers), surplus donations drain to
 * off, remaining recipient demand is served from powered-off ways.
 * Total demand beyond donations + off pool is a caller error.
 */
TransitionPlan planTransition(
    const std::vector<std::vector<WayId>> &owned_ways,
    const std::vector<WayId> &off_ways,
    const std::vector<std::uint32_t> &new_alloc, Rng &rng);

} // namespace coopsim::partition

#endif // COOPSIM_PARTITION_TRANSITION_PLAN_HPP
