/**
 * @file
 * Way-allocation algorithms: the UCP look-ahead allocator and the
 * paper's modified, thresholded variant (Algorithm 1).
 *
 * The allocator consumes one miss curve per competing application
 * (misses expected for each possible way allocation, from the utility
 * monitors in src/umon) and produces a way count per application.
 *
 * Threshold semantics
 * -------------------
 * The paper's pseudocode for Algorithm 1 is internally inconsistent:
 * taken literally (`|prev_max_mu - max_mu| < prev_max_mu * T`), a
 * threshold of 0 would never allocate any way, while the text states
 * that T = 0 "corresponds to an allocation of ways in the same manner
 * as UCP" and that T = 1 "would mean that no ways were ever allocated".
 * We therefore implement the semantics the text describes:
 *
 *   the winning application is granted its requested ways only when its
 *   marginal utility — the miss-*ratio* reduction per additional way —
 *   is at least T.
 *
 * With T = 0 every round allocates (exactly UCP look-ahead); with T = 1
 * a single way would have to remove 100% of an application's misses, so
 * nothing is ever allocated; T = 0.05 (the paper's default) requires a
 * 5% miss-ratio reduction per way. Applications that fail the test are
 * excluded from further competition; ways left over when no application
 * qualifies remain unallocated and can be power-gated.
 *
 * ThresholdMode::PaperLiteral implements the printed pseudocode
 * (with `<=` and a no-progress exclusion safeguard) for the ablation
 * bench `bench/ablation_threshold_mode`.
 */

#ifndef COOPSIM_PARTITION_LOOKAHEAD_HPP
#define COOPSIM_PARTITION_LOOKAHEAD_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace coopsim::partition
{

/** Interpretation of the threshold test (see file comment). */
enum class ThresholdMode : std::uint8_t
{
    /** Marginal miss-ratio gain per way must be >= T (default). */
    MissRatio,
    /** The pseudocode as printed in the paper, made terminating. */
    PaperLiteral,
};

/** One competing application's demand on the cache. */
struct AppDemand
{
    /**
     * miss_curve[w] = expected misses when owning w ways;
     * size = ways + 1, monotone non-increasing.
     */
    std::vector<double> miss_curve;
    /** Total accesses over the same window (normalises the threshold). */
    double accesses = 0.0;
};

/** Configuration of the allocator. */
struct LookaheadConfig
{
    /** Turn-off threshold T (Algorithm 1); 0 = plain UCP. */
    double threshold = 0.0;
    /** Threshold interpretation. */
    ThresholdMode mode = ThresholdMode::MissRatio;
    /**
     * Ways granted to every application before competition starts. The
     * paper's schemes keep every core runnable, so this defaults to 1.
     * Set to 0 to allow starving a core entirely (its LLC traffic then
     * bypasses the cache).
     */
    std::uint32_t min_ways_per_app = 1;
};

/** Result of a partitioning decision. */
struct Allocation
{
    /** Ways granted per application. */
    std::vector<std::uint32_t> ways;
    /** Ways granted to nobody (candidates for power gating). */
    std::uint32_t unallocated = 0;
};

/**
 * Runs the (optionally thresholded) look-ahead allocation.
 *
 * @param demands    One entry per competing application.
 * @param total_ways Ways available in the shared cache.
 * @param config     Threshold and floor settings.
 */
Allocation lookaheadPartition(const std::vector<AppDemand> &demands,
                              std::uint32_t total_ways,
                              const LookaheadConfig &config);

/**
 * Max marginal utility ("get_max_mu" in Algorithm 1): the best average
 * miss reduction per way over any extension of @p alloc by 1..balance
 * ways.
 *
 * @param curve   Miss curve of the application.
 * @param alloc   Ways currently granted.
 * @param balance Ways still unassigned.
 * @param blocks_req Out: the smallest extension achieving the maximum.
 * @return the maximum marginal utility (misses saved per way).
 */
double maxMarginalUtility(const std::vector<double> &curve,
                          std::uint32_t alloc, std::uint32_t balance,
                          std::uint32_t &blocks_req);

} // namespace coopsim::partition

#endif // COOPSIM_PARTITION_LOOKAHEAD_HPP
