/**
 * @file
 * The partitioner registry's algorithm catalogue: every way-allocation
 * policy a scheme can run at its epoch boundary, behind one dispatch
 * point. The paper evaluates only the (thresholded) UCP look-ahead
 * allocator; the extra algorithms make the partitioning decision an
 * experiment axis (`partitioner=` in specs and RunKeys) instead of a
 * hard-wired call:
 *
 *  - Lookahead:     Algorithm 1 — the thresholded look-ahead allocator
 *                   in lookahead.hpp. The paper's policy and the
 *                   default everywhere.
 *  - EqualShare:    ways / n per application, remainder to the lowest
 *                   core indices — the allocation FairShare hard-codes,
 *                   now available to the dynamic schemes as a
 *                   demand-blind control.
 *  - GreedyUtility: the classic greedy hill-climb (Qureshi & Patt's
 *                   baseline to look-ahead): grant one way at a time to
 *                   the application with the highest next-way marginal
 *                   utility. Cheaper than look-ahead but blind to
 *                   multi-way knees in the miss curves.
 *
 * All three are deterministic, pure functions of their inputs (the
 * executor's determinism invariant extends through them), and all
 * respect LookaheadConfig::min_ways_per_app. The thresholded
 * algorithms leave unprofitable ways unallocated, so gating-capable
 * schemes can power them off.
 */

#ifndef COOPSIM_PARTITION_PARTITIONER_HPP
#define COOPSIM_PARTITION_PARTITIONER_HPP

#include <cstdint>

#include "partition/lookahead.hpp"

namespace coopsim::partition
{

/** Which way-allocation algorithm an epoch decision runs. */
enum class Partitioner : std::uint8_t
{
    /** Thresholded UCP look-ahead (Algorithm 1); the paper's policy. */
    Lookahead,
    /** Static equal split; remainder to the lowest core indices. */
    EqualShare,
    /** One-way-at-a-time greedy hill-climb over marginal utility. */
    GreedyUtility,
};

/**
 * The equal split: total_ways / num_apps each, the remainder granted
 * one way apiece to the lowest application indices (the same counts as
 * FairShareLlc's round-robin way masks). Ignores the demands entirely;
 * never leaves a way unallocated. Asserts min_ways_per_app * num_apps
 * <= total_ways (like the other algorithms); the even split then
 * automatically clears the floor.
 */
Allocation equalSharePartition(std::uint32_t num_apps,
                               std::uint32_t total_ways,
                               const LookaheadConfig &config);

/**
 * Greedy hill-climb: repeatedly grants ONE way to the application with
 * the highest marginal utility for its next way, until the balance is
 * exhausted or nobody passes the threshold test. The test follows
 * config.mode with the same semantics as lookahead.hpp (MissRatio:
 * miss-ratio reduction per way >= T; PaperLiteral: the printed
 * pseudocode's |prev - mu| <= prev * T). Applications whose next way
 * saves no misses, or fails the MissRatio test, are excluded from
 * further competition; leftover ways are reported unallocated for
 * power gating.
 */
Allocation greedyUtilityPartition(const std::vector<AppDemand> &demands,
                                  std::uint32_t total_ways,
                                  const LookaheadConfig &config);

/**
 * Runs the decision algorithm @p partitioner selects. This is the one
 * call every scheme's epoch() makes; Partitioner::Lookahead reproduces
 * lookaheadPartition() exactly.
 */
Allocation decidePartition(Partitioner partitioner,
                           const std::vector<AppDemand> &demands,
                           std::uint32_t total_ways,
                           const LookaheadConfig &config);

} // namespace coopsim::partition

#endif // COOPSIM_PARTITION_PARTITIONER_HPP
