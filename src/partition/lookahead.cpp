#include "partition/lookahead.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace coopsim::partition
{

double
maxMarginalUtility(const std::vector<double> &curve, std::uint32_t alloc,
                   std::uint32_t balance, std::uint32_t &blocks_req)
{
    COOPSIM_ASSERT(!curve.empty(), "empty miss curve");
    const auto max_ways = static_cast<std::uint32_t>(curve.size() - 1);
    COOPSIM_ASSERT(alloc <= max_ways, "allocation beyond curve");

    double max_mu = 0.0;
    blocks_req = 0;
    const std::uint32_t limit =
        std::min(balance, max_ways - alloc);
    for (std::uint32_t j = 1; j <= limit; ++j) {
        const double mu =
            (curve[alloc] - curve[alloc + j]) / static_cast<double>(j);
        if (mu > max_mu) {
            max_mu = mu;
            blocks_req = j;
        }
    }
    return max_mu;
}

Allocation
lookaheadPartition(const std::vector<AppDemand> &demands,
                   std::uint32_t total_ways, const LookaheadConfig &config)
{
    const auto n = static_cast<std::uint32_t>(demands.size());
    COOPSIM_ASSERT(n > 0, "no applications to partition");
    COOPSIM_ASSERT(config.min_ways_per_app * n <= total_ways,
                   "minimum ways exceed the cache associativity");
    for (const AppDemand &d : demands) {
        COOPSIM_ASSERT(d.miss_curve.size() >= 2,
                       "miss curve must cover at least one way");
    }

    Allocation result;
    result.ways.assign(n, config.min_ways_per_app);
    std::uint32_t balance = total_ways - config.min_ways_per_app * n;

    std::vector<bool> excluded(n, false);
    double prev_max_mu = 0.0;

    while (balance > 0) {
        double best_mu = 0.0;
        std::uint32_t winner = n;
        std::uint32_t winner_req = 0;

        for (std::uint32_t i = 0; i < n; ++i) {
            if (excluded[i]) {
                continue;
            }
            std::uint32_t req = 0;
            const double mu = maxMarginalUtility(demands[i].miss_curve,
                                                 result.ways[i], balance,
                                                 req);
            if (req == 0) {
                // No extension helps this application at all.
                excluded[i] = true;
                continue;
            }
            if (mu > best_mu) {
                best_mu = mu;
                winner = i;
                winner_req = req;
            }
        }

        if (winner == n) {
            break; // nobody can benefit any more
        }

        bool grant = false;
        switch (config.mode) {
          case ThresholdMode::MissRatio: {
            // Benefit per way, as a fraction of the winner's accesses,
            // must meet the threshold.
            const double accesses = std::max(1.0, demands[winner].accesses);
            grant = (best_mu / accesses) >= config.threshold;
            break;
          }
          case ThresholdMode::PaperLiteral: {
            grant = std::fabs(prev_max_mu - best_mu) <=
                    prev_max_mu * config.threshold;
            break;
          }
        }
        prev_max_mu = best_mu;

        if (grant) {
            result.ways[winner] += winner_req;
            balance -= winner_req;
        } else if (config.mode == ThresholdMode::MissRatio) {
            // The candidate cannot justify more ways now; as allocations
            // only shrink its marginal utility, drop it for this round.
            excluded[winner] = true;
        }
        // PaperLiteral: a failed grant only updates prev_max_mu; the
        // next iteration re-evaluates the same winner with an unchanged
        // mu, so |prev - mu| = 0 and the test passes — the printed
        // pseudocode self-unblocks after one lagging iteration.
    }

    result.unallocated = balance;
    return result;
}

} // namespace coopsim::partition
