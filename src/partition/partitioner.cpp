#include "partition/partitioner.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace coopsim::partition
{

Allocation
equalSharePartition(std::uint32_t num_apps, std::uint32_t total_ways,
                    const LookaheadConfig &config)
{
    COOPSIM_ASSERT(num_apps > 0, "no applications to partition");
    COOPSIM_ASSERT(config.min_ways_per_app * num_apps <= total_ways,
                   "minimum ways exceed the cache associativity");
    // total_ways >= min * num_apps implies total_ways / num_apps >=
    // min, so the even split honours the floor by construction.
    Allocation result;
    result.ways.assign(num_apps, total_ways / num_apps);
    for (std::uint32_t i = 0; i < total_ways % num_apps; ++i) {
        ++result.ways[i];
    }
    return result;
}

Allocation
greedyUtilityPartition(const std::vector<AppDemand> &demands,
                       std::uint32_t total_ways,
                       const LookaheadConfig &config)
{
    const auto n = static_cast<std::uint32_t>(demands.size());
    COOPSIM_ASSERT(n > 0, "no applications to partition");
    COOPSIM_ASSERT(config.min_ways_per_app * n <= total_ways,
                   "minimum ways exceed the cache associativity");
    for (const AppDemand &d : demands) {
        COOPSIM_ASSERT(d.miss_curve.size() >= 2,
                       "miss curve must cover at least one way");
    }

    Allocation result;
    result.ways.assign(n, config.min_ways_per_app);
    std::uint32_t balance = total_ways - config.min_ways_per_app * n;

    std::vector<bool> excluded(n, false);
    double prev_max_mu = 0.0;
    while (balance > 0) {
        double best_mu = 0.0;
        std::uint32_t winner = n;
        for (std::uint32_t i = 0; i < n; ++i) {
            if (excluded[i]) {
                continue;
            }
            const std::vector<double> &curve = demands[i].miss_curve;
            const std::uint32_t alloc = result.ways[i];
            if (alloc + 1 >= curve.size()) {
                excluded[i] = true; // curve exhausted
                continue;
            }
            const double mu = curve[alloc] - curve[alloc + 1];
            if (mu <= 0.0) {
                // The next way saves nothing; as miss curves are
                // monotone, no later way will either.
                excluded[i] = true;
                continue;
            }
            if (mu > best_mu) {
                best_mu = mu;
                winner = i;
            }
        }
        if (winner == n) {
            break; // nobody can benefit any more
        }

        // Same threshold semantics as look-ahead (lookahead.hpp), so
        // the threshold_modes axis stays meaningful under greedy.
        bool grant = false;
        switch (config.mode) {
          case ThresholdMode::MissRatio: {
            const double accesses =
                std::max(1.0, demands[winner].accesses);
            grant = (best_mu / accesses) >= config.threshold;
            break;
          }
          case ThresholdMode::PaperLiteral: {
            grant = std::fabs(prev_max_mu - best_mu) <=
                    prev_max_mu * config.threshold;
            break;
          }
        }
        prev_max_mu = best_mu;

        if (grant) {
            ++result.ways[winner];
            --balance;
        } else if (config.mode == ThresholdMode::MissRatio) {
            // Granting only shrinks the winner's marginal utility, so
            // an app below threshold never recovers this round.
            excluded[winner] = true;
        }
        // PaperLiteral self-unblocks: a failed grant leaves the winner
        // and its mu unchanged, so |prev - mu| = 0 passes next round
        // (the same terminating behaviour as look-ahead's).
    }

    result.unallocated = balance;
    return result;
}

Allocation
decidePartition(Partitioner partitioner,
                const std::vector<AppDemand> &demands,
                std::uint32_t total_ways, const LookaheadConfig &config)
{
    switch (partitioner) {
      case Partitioner::Lookahead:
        return lookaheadPartition(demands, total_ways, config);
      case Partitioner::EqualShare:
        return equalSharePartition(
            static_cast<std::uint32_t>(demands.size()), total_ways,
            config);
      case Partitioner::GreedyUtility:
        return greedyUtilityPartition(demands, total_ways, config);
    }
    COOPSIM_PANIC("unknown partitioner");
}

} // namespace coopsim::partition
