/**
 * @file
 * The paper's Table 4 workload groups: fourteen two-application and
 * fourteen four-application mixes of the Table 3 benchmarks.
 */

#ifndef COOPSIM_TRACE_WORKLOADS_HPP
#define COOPSIM_TRACE_WORKLOADS_HPP

#include <string>
#include <vector>

#include "trace/spec_profiles.hpp"

namespace coopsim::trace
{

/** One workload group (a row of Table 4). */
struct WorkloadGroup
{
    std::string name;                   //!< e.g. "G2-3"
    std::vector<std::string> apps;      //!< benchmark names
};

/** All two-application groups, G2-1 .. G2-14. */
const std::vector<WorkloadGroup> &twoCoreGroups();

/** All four-application groups, G4-1 .. G4-14. */
const std::vector<WorkloadGroup> &fourCoreGroups();

/** Finds a group by name ("G2-7", "G4-13"); fatal() if unknown. */
const WorkloadGroup &groupByName(const std::string &name);

/** Resolves a group's profiles. */
std::vector<AppProfile> groupProfiles(const WorkloadGroup &group);

} // namespace coopsim::trace

#endif // COOPSIM_TRACE_WORKLOADS_HPP
