/**
 * @file
 * Workload groups: the paper's Table 4 mixes (fourteen two-application
 * and fourteen four-application groups of the Table 3 benchmarks) plus
 * generated 8- and 16-application heterogeneous mixes that scale the
 * evaluation beyond the paper's core counts.
 *
 * The generated groups are built deterministically from the Table 3
 * MPKI classification, two per tier and core count:
 *
 *  - G{8,16}-mem*: memory-heavy — high-MPKI apps first, padded from
 *    the medium tier;
 *  - G{8,16}-cpu*: cpu-heavy — low-MPKI (mostly L1-resident) apps;
 *  - G{8,16}-mix*: mixed — high/medium/low tiers interleaved.
 *
 * A 16-application mix cycles through its tier pool, so an app may
 * appear on several cores; co-running copies are distinct workloads
 * (each core's stream has its own address-space tag and seed), exactly
 * like running two instances of the same benchmark.
 */

#ifndef COOPSIM_TRACE_WORKLOADS_HPP
#define COOPSIM_TRACE_WORKLOADS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "trace/spec_profiles.hpp"

namespace coopsim::trace
{

/** One workload group (a row of Table 4 or a generated mix). */
struct WorkloadGroup
{
    std::string name;                   //!< e.g. "G2-3", "G8-mix1"
    std::vector<std::string> apps;      //!< benchmark names
};

/** All two-application groups, G2-1 .. G2-14. */
const std::vector<WorkloadGroup> &twoCoreGroups();

/** All four-application groups, G4-1 .. G4-14. */
const std::vector<WorkloadGroup> &fourCoreGroups();

/** The generated eight-application mixes, G8-mem1 .. G8-mix2. */
const std::vector<WorkloadGroup> &eightCoreGroups();

/** The generated sixteen-application mixes, G16-mem1 .. G16-mix2. */
const std::vector<WorkloadGroup> &sixteenCoreGroups();

/** The generated 32-application mixes, G32-mem1 .. G32-mix2 (the
 *  banked-topology rows). */
const std::vector<WorkloadGroup> &thirtyTwoCoreGroups();

/** The generated 64-application mixes, G64-mem1 .. G64-mix2. */
const std::vector<WorkloadGroup> &sixtyFourCoreGroups();

/**
 * Generates the heterogeneous @p num_apps-application mixes described
 * in the file comment (mem/cpu/mix, two variants each). Deterministic:
 * tier membership comes from mpkiClassOf() over the Table 3 apps in
 * table order, and variants differ only by a rotation offset into the
 * tier pools. Any num_apps >= 1 is accepted; 8, 16, 32 and 64 are the
 * pre-registered G8/G16/G32/G64 groups.
 */
std::vector<WorkloadGroup> heterogeneousMixes(std::uint32_t num_apps);

/** Finds a group by name ("G2-7", "G8-mix1"); fatal() if unknown. */
const WorkloadGroup &groupByName(const std::string &name);

/** Resolves a group's profiles. */
std::vector<AppProfile> groupProfiles(const WorkloadGroup &group);

} // namespace coopsim::trace

#endif // COOPSIM_TRACE_WORKLOADS_HPP
