/**
 * @file
 * Synthetic profiles standing in for the 19 SPEC CPU2006 C/C++
 * benchmarks of the paper's Table 3.
 *
 * Each profile is calibrated so that, when run solo on the paper's
 * two-core LLC organisation (2 MB, 8-way), its LLC misses per kilo
 * instruction land near the paper's Table 3 figure, and so that its
 * miss-vs-ways utility curve matches the qualitative behaviour the
 * paper describes (streamers gain nothing from extra ways; thrashers
 * such as gobmk/sjeng want many ways; astar/bzip2/gcc/povray change
 * appetite across phases; see `bench/table3_mpki`).
 */

#ifndef COOPSIM_TRACE_SPEC_PROFILES_HPP
#define COOPSIM_TRACE_SPEC_PROFILES_HPP

#include <string>
#include <vector>

#include "trace/generator.hpp"

namespace coopsim::trace
{

/** MPKI class from the paper's Table 3. */
enum class MpkiClass
{
    High,   //!< MPKI > 5
    Medium, //!< 1 < MPKI < 5
    Low,    //!< MPKI < 1
};

/** Profile of @p name; fatal() on unknown benchmark names. */
const AppProfile &specProfile(const std::string &name);

/** All 19 benchmark names, in Table 3 order. */
const std::vector<std::string> &allSpecApps();

/** The paper's Table 3 classification for @p name. */
MpkiClass mpkiClassOf(const std::string &name);

/** Class boundary helper: classifies a measured MPKI value. */
MpkiClass classifyMpki(double mpki);

/** Printable class name. */
const char *mpkiClassName(MpkiClass cls);

} // namespace coopsim::trace

#endif // COOPSIM_TRACE_SPEC_PROFILES_HPP
