#include "trace/workloads.hpp"

#include "common/logging.hpp"

namespace coopsim::trace
{

const std::vector<WorkloadGroup> &
twoCoreGroups()
{
    static const std::vector<WorkloadGroup> groups = {
        {"G2-1", {"soplex", "namd"}},
        {"G2-2", {"soplex", "milc"}},
        {"G2-3", {"gobmk", "h264ref"}},
        {"G2-4", {"lbm", "povray"}},
        {"G2-5", {"gobmk", "perlbench"}},
        {"G2-6", {"lbm", "bzip2"}},
        {"G2-7", {"lbm", "astar"}},
        {"G2-8", {"lbm", "soplex"}},
        {"G2-9", {"soplex", "dealII"}},
        {"G2-10", {"sjeng", "calculix"}},
        {"G2-11", {"sjeng", "xalan"}},
        {"G2-12", {"soplex", "gcc"}},
        {"G2-13", {"sjeng", "povray"}},
        {"G2-14", {"gobmk", "omnetpp"}},
    };
    return groups;
}

const std::vector<WorkloadGroup> &
fourCoreGroups()
{
    static const std::vector<WorkloadGroup> groups = {
        {"G4-1", {"gobmk", "gcc", "perlbench", "xalan"}},
        {"G4-2", {"sjeng", "lbm", "calculix", "omnetpp"}},
        {"G4-3", {"dealII", "sjeng", "soplex", "namd"}},
        {"G4-4", {"soplex", "sjeng", "h264ref", "astar"}},
        {"G4-5", {"lbm", "libquantum", "gromacs", "mcf"}},
        {"G4-6", {"gobmk", "libquantum", "namd", "perlbench"}},
        {"G4-7", {"lbm", "sjeng", "povray", "omnetpp"}},
        {"G4-8", {"lbm", "soplex", "h264ref", "dealII"}},
        {"G4-9", {"lbm", "xalan", "milc", "soplex"}},
        {"G4-10", {"sjeng", "povray", "milc", "gobmk"}},
        {"G4-11", {"gobmk", "libquantum", "h264ref", "gromacs"}},
        {"G4-12", {"soplex", "astar", "omnetpp", "milc"}},
        {"G4-13", {"soplex", "gcc", "libquantum", "xalan"}},
        {"G4-14", {"soplex", "bzip2", "astar", "milc"}},
    };
    return groups;
}

const WorkloadGroup &
groupByName(const std::string &name)
{
    for (const auto &g : twoCoreGroups()) {
        if (g.name == name) {
            return g;
        }
    }
    for (const auto &g : fourCoreGroups()) {
        if (g.name == name) {
            return g;
        }
    }
    COOPSIM_FATAL("unknown workload group: ", name);
}

std::vector<AppProfile>
groupProfiles(const WorkloadGroup &group)
{
    std::vector<AppProfile> profiles;
    profiles.reserve(group.apps.size());
    for (const std::string &app : group.apps) {
        profiles.push_back(specProfile(app));
    }
    return profiles;
}

} // namespace coopsim::trace
