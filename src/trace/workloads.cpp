#include "trace/workloads.hpp"

#include <algorithm>
#include <utility>

#include "common/logging.hpp"

namespace coopsim::trace
{

const std::vector<WorkloadGroup> &
twoCoreGroups()
{
    static const std::vector<WorkloadGroup> groups = {
        {"G2-1", {"soplex", "namd"}},
        {"G2-2", {"soplex", "milc"}},
        {"G2-3", {"gobmk", "h264ref"}},
        {"G2-4", {"lbm", "povray"}},
        {"G2-5", {"gobmk", "perlbench"}},
        {"G2-6", {"lbm", "bzip2"}},
        {"G2-7", {"lbm", "astar"}},
        {"G2-8", {"lbm", "soplex"}},
        {"G2-9", {"soplex", "dealII"}},
        {"G2-10", {"sjeng", "calculix"}},
        {"G2-11", {"sjeng", "xalan"}},
        {"G2-12", {"soplex", "gcc"}},
        {"G2-13", {"sjeng", "povray"}},
        {"G2-14", {"gobmk", "omnetpp"}},
    };
    return groups;
}

const std::vector<WorkloadGroup> &
fourCoreGroups()
{
    static const std::vector<WorkloadGroup> groups = {
        {"G4-1", {"gobmk", "gcc", "perlbench", "xalan"}},
        {"G4-2", {"sjeng", "lbm", "calculix", "omnetpp"}},
        {"G4-3", {"dealII", "sjeng", "soplex", "namd"}},
        {"G4-4", {"soplex", "sjeng", "h264ref", "astar"}},
        {"G4-5", {"lbm", "libquantum", "gromacs", "mcf"}},
        {"G4-6", {"gobmk", "libquantum", "namd", "perlbench"}},
        {"G4-7", {"lbm", "sjeng", "povray", "omnetpp"}},
        {"G4-8", {"lbm", "soplex", "h264ref", "dealII"}},
        {"G4-9", {"lbm", "xalan", "milc", "soplex"}},
        {"G4-10", {"sjeng", "povray", "milc", "gobmk"}},
        {"G4-11", {"gobmk", "libquantum", "h264ref", "gromacs"}},
        {"G4-12", {"soplex", "astar", "omnetpp", "milc"}},
        {"G4-13", {"soplex", "gcc", "libquantum", "xalan"}},
        {"G4-14", {"soplex", "bzip2", "astar", "milc"}},
    };
    return groups;
}

namespace
{

/** @p count names drawn cyclically from @p pool, starting at
 *  @p offset. Pools smaller than @p count repeat (see file comment on
 *  co-running copies). */
std::vector<std::string>
drawCyclic(const std::vector<std::string> &pool, std::uint32_t count,
           std::size_t offset)
{
    COOPSIM_ASSERT(!pool.empty(), "empty workload tier pool");
    std::vector<std::string> out;
    out.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        out.push_back(pool[(offset + i) % pool.size()]);
    }
    return out;
}

} // namespace

std::vector<WorkloadGroup>
heterogeneousMixes(std::uint32_t num_apps)
{
    COOPSIM_ASSERT(num_apps > 0, "mix with no applications");

    // Tier membership from the Table 3 MPKI classes, in table order.
    std::vector<std::string> high;
    std::vector<std::string> medium;
    std::vector<std::string> low;
    for (const std::string &app : allSpecApps()) {
        switch (mpkiClassOf(app)) {
          case MpkiClass::High:
            high.push_back(app);
            break;
          case MpkiClass::Medium:
            medium.push_back(app);
            break;
          case MpkiClass::Low:
            low.push_back(app);
            break;
        }
    }

    // mem pool: every high-MPKI app, then the medium tier as padding.
    std::vector<std::string> mem_pool = high;
    mem_pool.insert(mem_pool.end(), medium.begin(), medium.end());
    // cpu pool: the low tier only.
    const std::vector<std::string> &cpu_pool = low;
    // mix pool: tiers interleaved high, medium, low, high, ...
    std::vector<std::string> mix_pool;
    const std::size_t longest =
        std::max({high.size(), medium.size(), low.size()});
    for (std::size_t i = 0; i < longest; ++i) {
        for (const std::vector<std::string> *tier :
             {&high, &medium, &low}) {
            if (i < tier->size()) {
                mix_pool.push_back((*tier)[i]);
            }
        }
    }

    // Two variants per tier; the second starts deeper into the pool so
    // the mixes overlap without being permutations of each other.
    std::string prefix = "G";
    prefix += std::to_string(num_apps);
    prefix += "-";
    std::vector<WorkloadGroup> groups;
    for (const auto &[tier, pool] :
         {std::pair<const char *, const std::vector<std::string> &>{
              "mem", mem_pool},
          {"cpu", cpu_pool},
          {"mix", mix_pool}}) {
        for (std::uint32_t variant = 1; variant <= 2; ++variant) {
            const std::size_t offset =
                (variant - 1) * (pool.size() / 2);
            groups.push_back(
                {prefix + tier + std::to_string(variant),
                 drawCyclic(pool, num_apps, offset)});
        }
    }
    return groups;
}

const std::vector<WorkloadGroup> &
eightCoreGroups()
{
    static const std::vector<WorkloadGroup> groups =
        heterogeneousMixes(8);
    return groups;
}

const std::vector<WorkloadGroup> &
sixteenCoreGroups()
{
    static const std::vector<WorkloadGroup> groups =
        heterogeneousMixes(16);
    return groups;
}

const std::vector<WorkloadGroup> &
thirtyTwoCoreGroups()
{
    static const std::vector<WorkloadGroup> groups =
        heterogeneousMixes(32);
    return groups;
}

const std::vector<WorkloadGroup> &
sixtyFourCoreGroups()
{
    static const std::vector<WorkloadGroup> groups =
        heterogeneousMixes(64);
    return groups;
}

const WorkloadGroup &
groupByName(const std::string &name)
{
    for (const auto *groups :
         {&twoCoreGroups(), &fourCoreGroups(), &eightCoreGroups(),
          &sixteenCoreGroups(), &thirtyTwoCoreGroups(),
          &sixtyFourCoreGroups()}) {
        for (const auto &g : *groups) {
            if (g.name == name) {
                return g;
            }
        }
    }
    COOPSIM_FATAL("unknown workload group: ", name);
}

std::vector<AppProfile>
groupProfiles(const WorkloadGroup &group)
{
    std::vector<AppProfile> profiles;
    profiles.reserve(group.apps.size());
    for (const std::string &app : group.apps) {
        profiles.push_back(specProfile(app));
    }
    return profiles;
}

} // namespace coopsim::trace
