#include "trace/generator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hpp"

namespace coopsim::trace
{

double
AppProfile::expectedMissRatio(std::uint32_t ways) const
{
    auto phase_miss = [ways](const AppPhase &phase) {
        double miss = phase.pmf.miss_prob;
        for (std::uint32_t r = ways; r < kMaxRank; ++r) {
            miss += phase.pmf.rank[r];
        }
        return miss;
    };
    if (!hasPhases()) {
        return phase_miss(primary);
    }
    return 0.5 * (phase_miss(primary) + phase_miss(secondary));
}

std::array<double, kMaxRank + 1>
buildClassCdf(const RankPmf &pmf)
{
    COOPSIM_ASSERT(pmf.miss_prob >= 0.0 && pmf.miss_prob <= 1.0,
                   "miss_prob out of range");
    double assigned = pmf.miss_prob;
    for (std::uint32_t r = 0; r < kMaxRank; ++r) {
        COOPSIM_ASSERT(pmf.rank[r] >= 0.0, "negative rank probability");
        assigned += pmf.rank[r];
    }
    COOPSIM_ASSERT(assigned <= 1.0 + 1e-9, "rank pmf exceeds 1");

    // Unassigned mass is the hot re-reference traffic: it re-touches
    // rank 0 (hits under any non-zero allocation).
    const double hot = std::max(0.0, 1.0 - assigned);

    std::array<double, kMaxRank + 1> cdf{};
    cdf[0] = pmf.miss_prob;
    double acc = pmf.miss_prob + hot;
    for (std::uint32_t r = 0; r < kMaxRank; ++r) {
        acc += pmf.rank[r];
        cdf[r + 1] = acc;
    }
    cdf[kMaxRank] = 1.0;
    return cdf;
}

SyntheticStream::SyntheticStream(const AppProfile &profile,
                                 const StreamGeometry &geometry,
                                 std::uint32_t space, std::uint64_t seed)
    : profile_(profile),
      geometry_(geometry),
      slicer_(geometry.llc_sets, geometry.block_bytes),
      rng_(seed ^ (0x9e3779b97f4a7c15ull * (space + 1))),
      space_base_(static_cast<Addr>(space + 1) << 44),
      lists_(geometry.llc_sets),
      list_sizes_(geometry.llc_sets, 0)
{
    COOPSIM_ASSERT(profile.primary.apki > 0.0, "apki must be positive");
    cdf_primary_ = buildClassCdf(profile.primary.pmf);
    cdf_secondary_ = profile.hasPhases()
                         ? buildClassCdf(profile.secondary.pmf)
                         : cdf_primary_;
    refreshPhase();
}

void
SyntheticStream::refreshPhase()
{
    if (!profile_.hasPhases()) {
        active_phase_ = &profile_.primary;
        active_cdf_ = &cdf_primary_;
        phase_switch_insts_ = std::numeric_limits<InstCount>::max();
    } else {
        const InstCount phase_no =
            generated_insts_ / profile_.phase_insts;
        const bool in_primary = phase_no % 2 == 0;
        active_phase_ =
            in_primary ? &profile_.primary : &profile_.secondary;
        active_cdf_ = in_primary ? &cdf_primary_ : &cdf_secondary_;
        phase_switch_insts_ = (phase_no + 1) * profile_.phase_insts;
    }
    gap_p_ = std::min(1.0, active_phase_->apki / 1000.0);
    gap_log1p_ = gap_p_ < 1.0 ? std::log1p(-gap_p_) : 0.0;
}

const AppPhase &
SyntheticStream::currentPhase() const
{
    if (!profile_.hasPhases()) {
        return profile_.primary;
    }
    const InstCount phase_no = generated_insts_ / profile_.phase_insts;
    return (phase_no % 2 == 0) ? profile_.primary : profile_.secondary;
}

Addr
SyntheticStream::newBlock(SetId set)
{
    // Compose a fresh block that maps to @p set: the block number
    // provides the tag bits, the set index is forced.
    const Addr tag_part = next_block_++;
    const Addr addr =
        space_base_ |
        (tag_part << (slicer_.blockBits() + slicer_.setBits())) |
        (static_cast<Addr>(set) << slicer_.blockBits());
    return addr;
}

void
SyntheticStream::touch(SetId set, Addr addr)
{
    auto &list = lists_[set];
    std::uint8_t &size = list_sizes_[set];

    // Find the address (it may be absent for brand-new blocks).
    std::uint32_t pos = size;
    for (std::uint32_t i = 0; i < size; ++i) {
        if (list[i] == addr) {
            pos = i;
            break;
        }
    }
    if (pos == size && size < list.size()) {
        ++size;
        pos = size - 1;
    } else if (pos == size) {
        pos = static_cast<std::uint32_t>(list.size()) - 1;
    }
    // Shift [0, pos) down by one; place addr at rank 0.
    for (std::uint32_t i = pos; i > 0; --i) {
        list[i] = list[i - 1];
    }
    list[0] = addr;
}

core::MemOp
SyntheticStream::next()
{
    return generate();
}

std::size_t
SyntheticStream::nextBatch(core::MemOp *out, std::size_t max)
{
    for (std::size_t i = 0; i < max; ++i) {
        out[i] = generate();
    }
    return max;
}

core::MemOp
SyntheticStream::generate()
{
    // The phase decision the per-op code derived from a division is
    // served from the cache until the instruction count crosses the
    // precomputed phase end — same selection, amortised cost.
    if (generated_insts_ >= phase_switch_insts_) {
        refreshPhase();
    }
    const auto &cdf = *active_cdf_;

    // Gap between LLC accesses: geometric with mean 1000/apki - 1,
    // giving naturally bursty arrivals (the source of overlapping
    // misses the OoO model exploits).
    const InstCount gap = rng_.nextGeometric(gap_p_, gap_log1p_);

    // Pick the access class: 0 = new block, k = recency rank k-1.
    const auto cls = rng_.nextFromCdf(cdf.data(), kMaxRank + 1);

    Addr addr = 0;
    if (cls == 0) {
        const SetId set = static_cast<SetId>(
            rng_.nextBelow(geometry_.llc_sets));
        addr = newBlock(set);
        touch(set, addr);
    } else {
        const std::uint32_t rank = cls - 1;
        // Find a set whose list is deep enough; sample a few times and
        // fall back to a new block during cold start.
        addr = 0;
        for (int attempt = 0; attempt < 4 && addr == 0; ++attempt) {
            const SetId set = static_cast<SetId>(
                rng_.nextBelow(geometry_.llc_sets));
            if (list_sizes_[set] > rank) {
                addr = lists_[set][rank];
                touch(set, addr);
            }
        }
        if (addr == 0) {
            const SetId set = static_cast<SetId>(
                rng_.nextBelow(geometry_.llc_sets));
            addr = newBlock(set);
            touch(set, addr);
        }
    }

    core::MemOp op;
    op.gap_insts = gap;
    op.addr = addr;
    op.type = rng_.nextBool(profile_.write_fraction) ? AccessType::Write
                                                     : AccessType::Read;
    op.llc_level = true;
    generated_insts_ += gap + 1;
    return op;
}

} // namespace coopsim::trace
