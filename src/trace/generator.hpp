/**
 * @file
 * Synthetic workload generation.
 *
 * The paper drives its simulator with SPEC CPU2006 reference traces,
 * which are not redistributable. We substitute parameterised synthetic
 * streams whose LLC behaviour is controlled *by construction* (see
 * DESIGN.md, Substitutions): partitioning decisions depend only on each
 * application's miss-vs-ways utility curve, its access rate and its
 * write ratio, and the generator sets all three directly.
 *
 * Mechanism: the generator keeps, per LLC set, a recency list of the
 * blocks it has touched there. Each generated access either
 *  - touches a *new* block (probability `miss_prob`: streaming /
 *    compulsory-miss traffic that misses under any allocation), or
 *  - re-touches the block at recency rank r of a random set, drawn
 *    from the profile's rank distribution. Under LRU, a re-touch at
 *    rank r hits iff the application effectively holds > r ways in
 *    that set, so the rank pmf *is* the utility curve.
 *
 * Phase behaviour (the paper singles out astar, bzip2, gcc and povray
 * as changing their cache appetite) is modelled by alternating between
 * two phases with different rank distributions.
 */

#ifndef COOPSIM_TRACE_GENERATOR_HPP
#define COOPSIM_TRACE_GENERATOR_HPP

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/geometry.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/op_stream.hpp"

namespace coopsim::trace
{

/** Deepest recency rank the generator models (> max associativity). */
inline constexpr std::uint32_t kMaxRank = 24;

/** Distribution of one phase's accesses over recency ranks. */
struct RankPmf
{
    /** Probability of touching a brand-new block (always misses). */
    double miss_prob = 0.0;
    /** rank[r] = probability of re-touching recency rank r. The
     *  remainder (1 - miss_prob - sum) re-touches rank 0. */
    std::array<double, kMaxRank> rank{};
};

/** One execution phase of an application. */
struct AppPhase
{
    /** LLC accesses per kilo-instruction (post-L1 filtering). */
    double apki = 10.0;
    RankPmf pmf;
};

/** A complete synthetic application profile. */
struct AppProfile
{
    std::string name;
    /** Fraction of LLC accesses that are writes (L1 writebacks). */
    double write_fraction = 0.3;
    /** The paper's Table 3 MPKI figure, for reporting. */
    double table3_mpki = 0.0;
    AppPhase primary;
    /** Optional alternate phase; empty name on primary-only apps. */
    AppPhase secondary;
    /**
     * Instructions per phase at *paper scale* (5 M-cycle epochs);
     * 0 = no phase behaviour. The simulation driver rescales this with
     * the epoch length so a phase spans the same number of partitioning
     * epochs at every RunScale.
     */
    InstCount phase_insts = 0;

    bool hasPhases() const { return phase_insts != 0; }

    /**
     * Analytic miss probability when holding @p ways ways (the
     * expected utility curve, averaged over phases).
     */
    double expectedMissRatio(std::uint32_t ways) const;
};

/** Geometry the generator must agree on with the LLC. */
struct StreamGeometry
{
    std::uint32_t llc_sets = 4096;
    std::uint32_t block_bytes = 64;
};

/**
 * The synthetic operation stream (L1-filtered; see core/op_stream.hpp).
 */
class SyntheticStream final : public core::OpStream
{
  public:
    /**
     * @param profile  Application behaviour.
     * @param geometry Must match the LLC the stream will run against.
     * @param space    Address-space tag (distinct per co-running app,
     *                 as the paper's multiprogrammed workloads have
     *                 disjoint physical footprints).
     * @param seed     Determinism seed.
     */
    SyntheticStream(const AppProfile &profile,
                    const StreamGeometry &geometry, std::uint32_t space,
                    std::uint64_t seed);

    core::MemOp next() override;

    /**
     * Batch generation without per-op virtual dispatch: one call fills
     * the core model's op ring buffer (see OpStream::nextBatch). The
     * op sequence is identical to repeated next() calls.
     */
    std::size_t nextBatch(core::MemOp *out, std::size_t max) override;

    /** Instructions generated so far (gap + memory ops). */
    InstCount generatedInsts() const { return generated_insts_; }

  private:
    const AppPhase &currentPhase() const;
    core::MemOp generate();
    /** Re-derives the cached phase state from generated_insts_. */
    void refreshPhase();
    Addr newBlock(SetId set);
    /** Moves @p addr to rank 0 of @p set's recency list. */
    void touch(SetId set, Addr addr);

    AppProfile profile_;
    StreamGeometry geometry_;
    AddrSlicer slicer_;
    Rng rng_;
    Addr space_base_;
    std::uint64_t next_block_ = 0;

    /** Per-set recency lists, most recent first. */
    std::vector<std::array<Addr, kMaxRank + 1>> lists_;
    std::vector<std::uint8_t> list_sizes_;

    /** Cumulative class distribution: [new, rank0, rank1, ...]. */
    std::array<double, kMaxRank + 1> cdf_primary_{};
    std::array<double, kMaxRank + 1> cdf_secondary_{};

    /**
     * Cached phase selection: the per-op `generated_insts_ /
     * phase_insts` division is paid only when the instruction count
     * crosses phase_switch_insts_ (the precomputed end of the current
     * phase), not on every generated op.
     */
    const AppPhase *active_phase_ = nullptr;
    const std::array<double, kMaxRank + 1> *active_cdf_ = nullptr;
    InstCount phase_switch_insts_ = 0;
    /** Gap-draw parameters of the active phase: success probability
     *  and its cached log1p(-p) (the divisor of the geometric draw,
     *  constant per phase — no per-op transcendental). */
    double gap_p_ = 1.0;
    double gap_log1p_ = 0.0;

    InstCount generated_insts_ = 0;
};

/** Builds the per-class CDF of a phase (index 0 = new block). */
std::array<double, kMaxRank + 1> buildClassCdf(const RankPmf &pmf);

} // namespace coopsim::trace

#endif // COOPSIM_TRACE_GENERATOR_HPP
