#include "trace/spec_profiles.hpp"

#include <map>

#include "common/logging.hpp"

namespace coopsim::trace
{

namespace
{

/**
 * Adds @p mass over ranks [lo, hi] with geometric decay @p q per rank.
 * Real miss curves are convex — steep gains for the first ways, then a
 * long flat tail — which is what makes the paper's threshold meaningful
 * (it trims low-utility tail ways without hurting the steep head).
 */
void
decaySpread(RankPmf &pmf, std::uint32_t lo, std::uint32_t hi, double mass,
            double q)
{
    COOPSIM_ASSERT(lo <= hi && hi < kMaxRank, "bad rank range");
    COOPSIM_ASSERT(q > 0.0 && q <= 1.0, "decay factor out of range");
    double norm = 0.0;
    double w = 1.0;
    for (std::uint32_t r = lo; r <= hi; ++r) {
        norm += w;
        w *= q;
    }
    w = 1.0;
    for (std::uint32_t r = lo; r <= hi; ++r) {
        pmf.rank[r] += mass * w / norm;
        w *= q;
    }
}

/** One phase from a miss floor plus decayed reuse spans. */
struct Span
{
    std::uint32_t lo;
    std::uint32_t hi;
    double mass;
    double q;
};

AppPhase
shape(double miss_prob, std::initializer_list<Span> spans)
{
    AppPhase p;
    p.pmf.miss_prob = miss_prob;
    for (const Span &s : spans) {
        decaySpread(p.pmf, s.lo, s.hi, s.mass, s.q);
    }
    return p;
}

/**
 * Builds a profile whose *solo* MPKI on the paper's two-core LLC
 * (8 ways) equals the Table 3 figure: the access rate is derived from
 * the shape, apki = MPKI / missRatio(8 ways).
 */
AppProfile
calibrated(std::string name, double write_frac, double table3,
           AppPhase primary, AppPhase secondary = AppPhase{},
           InstCount period = 0)
{
    AppProfile profile;
    profile.name = std::move(name);
    profile.write_fraction = write_frac;
    profile.table3_mpki = table3;
    profile.primary = std::move(primary);
    profile.secondary = std::move(secondary);
    profile.phase_insts = period;

    const double mr8 = profile.expectedMissRatio(8);
    COOPSIM_ASSERT(mr8 > 0.0, "shape with zero miss ratio at 8 ways");
    const double apki = table3 / mr8;
    profile.primary.apki = apki;
    profile.secondary.apki = apki;
    return profile;
}

std::map<std::string, AppProfile>
buildProfiles()
{
    std::map<std::string, AppProfile> t;
    auto put = [&t](AppProfile p) { t.emplace(p.name, std::move(p)); };

    // Shape guide. Each app = a miss floor (streaming/capacity traffic
    // that misses under any allocation) + a *utility span* over ranks
    // 1..k-1 whose per-rank weights sit between ~0.055 and ~0.12 of
    // accesses + an implicit hot rank-0 remainder. The result is the
    // knee-shaped miss curve real applications have: the app wants k
    // ways, each worth more than the paper's default T = 0.05, and
    // nothing beyond. T = 0.1/0.2 cuts into the spans (Fig 11), T
    // <= 0.05 does not. Way appetites follow the paper's anecdotes:
    // gcc's big phase wants ~7 ways (Section 4.2), G2-2 leaves ~half
    // the cache off, G2-3 runs on ~2 active ways per access.

    // ---- High MPKI (> 5) -------------------------------------------------
    // gobmk: heavy traffic, shallow reuse; appetite drifts 3<->4 ways
    // across long phases (real curves wobble epoch to epoch, which is
    // what makes the paper's Figs 14/15 takeover traffic ubiquitous);
    // thrashes when unmanaged next to reuse-friendly apps.
    put(calibrated("gobmk", 0.25, 9.0,
                   shape(0.46, {{1, 2, 0.17, 0.90}}),
                   shape(0.46, {{1, 3, 0.24, 0.90}}), 45'000'000));
    // lbm: streamer — reuse confined to the hottest ranks (~2 ways).
    put(calibrated("lbm", 0.45, 20.1,
                   shape(0.62, {{1, 1, 0.10, 1.0}})));
    // sjeng: thrasher; appetite drifts 4<->3 ways.
    put(calibrated("sjeng", 0.20, 9.5,
                   shape(0.40, {{1, 3, 0.22, 0.90}}),
                   shape(0.40, {{1, 2, 0.16, 0.90}}), 55'000'000));
    // soplex: heavy traffic with real reuse, drifting 4<->5 ways.
    put(calibrated("soplex", 0.30, 18.0,
                   shape(0.45, {{1, 3, 0.24, 0.88}}),
                   shape(0.45, {{1, 4, 0.30, 0.90}}), 35'000'000));

    // ---- Medium MPKI (1..5) ----------------------------------------------
    // astar: phase-changing appetite, ~3 then ~6 ways; the big phase's
    // utilities clear T = 0.05, so Cooperative genuinely migrates ways
    // when astar's phase flips (Section 4.1).
    put(calibrated("astar", 0.30, 4.8,
                   shape(0.18, {{1, 2, 0.15, 0.90}}),
                   shape(0.25, {{1, 5, 0.32, 0.95}}), 40'000'000));
    // bzip2: phase-changing, but the big phase's per-way utility sits
    // just *below* T = 0.05: Cooperative holds its allocation steady
    // (and keeps its energy savings, Fig 6 discussion), UCP adapts,
    // CPE flaps and pays flush costs.
    put(calibrated("bzip2", 0.35, 3.2,
                   shape(0.15, {{1, 2, 0.14, 0.90}}),
                   shape(0.22, {{1, 2, 0.14, 0.90}, {3, 5, 0.02, 0.90}}),
                   30'000'000));
    // calculix: mostly L1-resident; ~2 ways.
    put(calibrated("calculix", 0.20, 1.1,
                   shape(0.12, {{1, 1, 0.10, 1.0}})));
    // gcc: phase-changing; the large phase truly wants ~7 ways
    // (Section 4.2: "gcc which obtains 7 ways on average").
    put(calibrated("gcc", 0.30, 4.92,
                   shape(0.15, {{1, 2, 0.13, 0.90}}),
                   shape(0.18, {{1, 6, 0.40, 0.95}}), 50'000'000));
    // libquantum: streamer, ~2 ways.
    put(calibrated("libquantum", 0.25, 3.4,
                   shape(0.33, {{1, 1, 0.10, 1.0}})));
    // mcf: pointer chasing; drifts 4<->5 ways.
    put(calibrated("mcf", 0.30, 4.8,
                   shape(0.25, {{1, 3, 0.22, 0.90}}),
                   shape(0.25, {{1, 4, 0.28, 0.90}}), 25'000'000));

    // ---- Low MPKI (< 1) --------------------------------------------------
    put(calibrated("dealII", 0.25, 0.8,
                   shape(0.10, {{1, 2, 0.16, 0.90}})));
    put(calibrated("gromacs", 0.20, 0.32,
                   shape(0.07, {{1, 1, 0.09, 1.0}})));
    put(calibrated("h264ref", 0.30, 0.89,
                   shape(0.12, {{1, 2, 0.15, 0.90}})));
    // milc: low access rate but streaming behaviour, ~2 ways.
    put(calibrated("milc", 0.35, 0.96,
                   shape(0.30, {{1, 1, 0.10, 1.0}})));
    put(calibrated("namd", 0.20, 0.25,
                   shape(0.07, {{1, 1, 0.09, 1.0}})));
    put(calibrated("omnetpp", 0.30, 0.26,
                   shape(0.06, {{1, 2, 0.12, 0.90}})));
    // perlbench: low traffic but rewards a large share (~6 ways).
    put(calibrated("perlbench", 0.30, 0.98,
                   shape(0.12, {{1, 5, 0.40, 0.93}})));
    // povray: tiny footprint, phase-changing; like bzip2, its larger
    // phase's utilities fall below T = 0.05 (Section 4.1).
    put(calibrated("povray", 0.20, 0.10,
                   shape(0.03, {{1, 1, 0.12, 1.0}}),
                   shape(0.04, {{1, 1, 0.12, 1.0}, {2, 4, 0.02, 0.90}}),
                   20'000'000));
    put(calibrated("xalan", 0.30, 0.60,
                   shape(0.10, {{1, 2, 0.15, 0.90}})));

    return t;
}

const std::map<std::string, AppProfile> &
profiles()
{
    static const std::map<std::string, AppProfile> table = buildProfiles();
    return table;
}

} // namespace

const AppProfile &
specProfile(const std::string &name)
{
    const auto &table = profiles();
    const auto it = table.find(name);
    if (it == table.end()) {
        COOPSIM_FATAL("unknown benchmark: ", name);
    }
    return it->second;
}

const std::vector<std::string> &
allSpecApps()
{
    static const std::vector<std::string> names = {
        // Table 3 order: High, Medium, Low.
        "gobmk", "lbm", "sjeng", "soplex",
        "astar", "bzip2", "calculix", "gcc", "libquantum", "mcf",
        "dealII", "gromacs", "h264ref", "milc", "namd", "omnetpp",
        "perlbench", "povray", "xalan",
    };
    return names;
}

MpkiClass
mpkiClassOf(const std::string &name)
{
    return classifyMpki(specProfile(name).table3_mpki);
}

MpkiClass
classifyMpki(double mpki)
{
    if (mpki > 5.0) {
        return MpkiClass::High;
    }
    if (mpki > 1.0) {
        return MpkiClass::Medium;
    }
    return MpkiClass::Low;
}

const char *
mpkiClassName(MpkiClass cls)
{
    switch (cls) {
      case MpkiClass::High:
        return "High";
      case MpkiClass::Medium:
        return "Medium";
      case MpkiClass::Low:
        return "Low";
    }
    return "?";
}

} // namespace coopsim::trace
