#include "tracefile/trace_stream.hpp"

#include "common/logging.hpp"

namespace coopsim::tracefile
{

TraceFileStream::TraceFileStream(std::string path) : path_(std::move(path))
{
    label_ = "trace file '" + path_ + "'";
    std::string error;
    if (!readTraceFile(path_, data_, logical_size_, error))
        COOPSIM_FATAL("trace file: ", error);
    std::size_t pos = 0;
    if (!decodeHeader(data_, pos, header_, error))
        COOPSIM_FATAL(label_, ": ", error);

    // Validate every frame's structure and CRC up front, in one
    // sequential pass over the freshly read file: corruption is fatal
    // at open — before any op reaches a simulation — and the hot
    // decode loop never touches a checksum again.
    std::uint64_t total_ops = 0;
    if (!validateFrames(data_, pos, logical_size_, total_ops, error))
        COOPSIM_FATAL(label_, ": ", error, " — the file is corrupt; "
                      "re-record it");
    decoder_.reset(data_.data(), pos, logical_size_, &label_);
}

std::size_t
TraceFileStream::nextBatch(core::MemOp *out, std::size_t max)
{
    const std::size_t produced = decoder_.decode(out, max);
    if (produced == 0)
        COOPSIM_FATAL("trace file '", path_, "' exhausted after ", delivered_,
                      " ops — the simulation wanted more than was recorded; "
                      "re-record with a larger instruction budget");
    delivered_ += produced;
    return produced;
}

core::MemOp
TraceFileStream::next()
{
    core::MemOp op;
    nextBatch(&op, 1);
    return op;
}

} // namespace coopsim::tracefile
