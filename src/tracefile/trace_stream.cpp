#include "tracefile/trace_stream.hpp"

#include <cstring>

#include "common/logging.hpp"
#include "store/result_store.hpp"

namespace coopsim::tracefile
{

TraceFileStream::TraceFileStream(std::string path) : path_(std::move(path))
{
    std::string error;
    if (!readTraceFile(path_, data_, logical_size_, error))
        COOPSIM_FATAL("trace file: ", error);
    if (!decodeHeader(data_, pos_, header_, error))
        COOPSIM_FATAL("trace file '", path_, "': ", error);

    // Validate every frame's structure and CRC up front, in one
    // sequential pass over the freshly read file: corruption is fatal
    // at open — before any op reaches a simulation — and the hot
    // decode loop never touches a checksum again.
    std::size_t p = pos_;
    std::size_t frame = 0;
    while (p < logical_size_) {
        std::uint64_t count = 0;
        if (!readVarint(data_, p, count) || p + 4 > logical_size_)
            COOPSIM_FATAL("trace file '", path_,
                          "': truncated header of frame ", frame);
        const auto *lp =
            reinterpret_cast<const unsigned char *>(data_.data() + p);
        const std::uint32_t payload_bytes =
            static_cast<std::uint32_t>(lp[0]) |
            (static_cast<std::uint32_t>(lp[1]) << 8) |
            (static_cast<std::uint32_t>(lp[2]) << 16) |
            (static_cast<std::uint32_t>(lp[3]) << 24);
        p += 4;
        if (p + payload_bytes + 4 > logical_size_)
            COOPSIM_FATAL("trace file '", path_,
                          "': truncated payload of frame ", frame,
                          " (wanted ", payload_bytes,
                          " bytes + CRC past byte ", p, ")");
        const std::uint32_t want =
            store::crc32(data_.data() + p, payload_bytes);
        const auto *cp = reinterpret_cast<const unsigned char *>(
            data_.data() + p + payload_bytes);
        const std::uint32_t got =
            static_cast<std::uint32_t>(cp[0]) |
            (static_cast<std::uint32_t>(cp[1]) << 8) |
            (static_cast<std::uint32_t>(cp[2]) << 16) |
            (static_cast<std::uint32_t>(cp[3]) << 24);
        if (want != got)
            COOPSIM_FATAL("trace file '", path_,
                          "': CRC mismatch in frame ", frame,
                          " (stored ", got, ", computed ", want,
                          ") — the file is corrupt; re-record it");
        p += payload_bytes + 4;
        ++frame;
    }
}

bool
TraceFileStream::enterFrame()
{
    if (pos_ >= logical_size_)
        return false;

    // Structure and CRC were verified at construction; this only
    // re-parses the two length fields to arm the op cursor.
    std::uint64_t count = 0;
    std::size_t p = pos_;
    readVarint(data_, p, count);
    const auto *lp = reinterpret_cast<const unsigned char *>(data_.data() + p);
    const std::uint32_t payload_bytes =
        static_cast<std::uint32_t>(lp[0]) |
        (static_cast<std::uint32_t>(lp[1]) << 8) |
        (static_cast<std::uint32_t>(lp[2]) << 16) |
        (static_cast<std::uint32_t>(lp[3]) << 24);
    p += 4;

    op_pos_ = p;
    payload_end_ = p + payload_bytes;
    frame_left_ = count;
    prev_addr_ = 0;
    pos_ = payload_end_ + 4;
    ++frames_;
    return true;
}

std::size_t
TraceFileStream::nextBatch(core::MemOp *out, std::size_t max)
{
    const char *base = data_.data();
    std::size_t produced = 0;
    while (produced < max) {
        if (frame_left_ == 0) {
            if (op_pos_ != payload_end_)
                COOPSIM_FATAL("trace file '", path_, "': frame ", frames_ - 1,
                              " has trailing bytes after its last op");
            if (!enterFrame())
                break;
            continue;
        }
        // Hot decode loop: one flags byte, a mostly-one-byte varint
        // gap, and a masked unconditional 8-byte delta load per op.
        // readTraceFile()'s kDecodeSlack padding keeps the wide loads
        // in bounds at the tail of the file.
        std::size_t q = op_pos_;
        const std::size_t payload_end = payload_end_;
        std::uint64_t prev_addr = prev_addr_;
        std::uint64_t left = frame_left_;
        while (produced < max && left > 0) {
            if (q >= payload_end)
                COOPSIM_FATAL("trace file '", path_, "': frame ", frames_ - 1,
                              " payload ended with ", left,
                              " ops still owed");
            const unsigned flags = static_cast<unsigned char>(base[q++]);
            const std::size_t len = flags >> 2;
            if (len > 8)
                COOPSIM_FATAL("trace file '", path_,
                              "': invalid op flags in frame ", frames_ - 1);
            std::uint64_t gap = static_cast<unsigned char>(base[q++]);
            if (gap >= 0x80) {
                gap &= 0x7f;
                unsigned shift = 7;
                std::uint8_t byte;
                do {
                    byte = static_cast<unsigned char>(base[q++]);
                    gap |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
                    shift += 7;
                } while ((byte & 0x80) != 0 && shift < 70);
            }
            std::uint64_t z;
            std::memcpy(&z, base + q, 8);
            z &= kLenMask[len];
            q += len;
            if (q > payload_end)
                COOPSIM_FATAL("trace file '", path_,
                              "': op encoding overruns frame ", frames_ - 1);
            prev_addr += static_cast<std::uint64_t>(zigzagDecode(z));
            core::MemOp &op = out[produced++];
            op.gap_insts = gap;
            op.addr = prev_addr;
            op.type = (flags & 2u) ? AccessType::Write
                                   : AccessType::Read;
            op.llc_level = (flags & 1u) != 0;
            --left;
        }
        op_pos_ = q;
        prev_addr_ = prev_addr;
        frame_left_ = left;
    }
    if (produced == 0)
        COOPSIM_FATAL("trace file '", path_, "' exhausted after ", delivered_,
                      " ops — the simulation wanted more than was recorded; "
                      "re-record with a larger instruction budget");
    delivered_ += produced;
    return produced;
}

core::MemOp
TraceFileStream::next()
{
    core::MemOp op;
    nextBatch(&op, 1);
    return op;
}

} // namespace coopsim::tracefile
