#include "tracefile/trace_writer.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <unistd.h>

#include "common/logging.hpp"

namespace coopsim::tracefile
{

TraceWriter::TraceWriter(std::string path, const TraceHeader &header)
    : path_(std::move(path)), tmp_path_(path_ + ".tmp")
{
    file_ = std::fopen(tmp_path_.c_str(), "wb");
    if (!file_)
        COOPSIM_FATAL("cannot open '", tmp_path_,
                      "' for writing: ", std::strerror(errno));
    const std::string encoded = encodeHeader(header);
    if (std::fwrite(encoded.data(), 1, encoded.size(), file_) !=
        encoded.size())
        COOPSIM_FATAL("short write of trace header to '", tmp_path_, "'");
    pending_.reserve(kFrameOps);
}

TraceWriter::~TraceWriter()
{
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
    if (!finished_)
        std::remove(tmp_path_.c_str());
}

void
TraceWriter::append(const core::MemOp &op)
{
    COOPSIM_ASSERT(!finished_, "append after finish on '", path_, "'");
    pending_.push_back(op);
    ++written_;
    if (pending_.size() >= kFrameOps)
        flushFrame();
}

void
TraceWriter::flushFrame()
{
    if (pending_.empty())
        return;
    const std::string frame = encodeFrame(pending_.data(), pending_.size());
    if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size())
        COOPSIM_FATAL("short write of trace frame to '", tmp_path_, "'");
    pending_.clear();
}

void
TraceWriter::finish()
{
    COOPSIM_ASSERT(!finished_, "double finish on '", path_, "'");
    flushFrame();
    if (std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0)
        COOPSIM_FATAL("cannot flush trace file '", tmp_path_,
                      "': ", std::strerror(errno));
    std::fclose(file_);
    file_ = nullptr;
    if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0)
        COOPSIM_FATAL("cannot rename '", tmp_path_, "' to '", path_,
                      "': ", std::strerror(errno));
    finished_ = true;
}

// ---------------------------------------------------------------------------

RecordingStream::RecordingStream(std::unique_ptr<core::OpStream> inner,
                                 std::unique_ptr<TraceWriter> writer)
    : inner_(std::move(inner)), writer_(std::move(writer))
{
}

RecordingStream::~RecordingStream() = default;

core::MemOp
RecordingStream::next()
{
    const core::MemOp op = inner_->next();
    if (writer_)
        writer_->append(op);
    ++delivered_;
    return op;
}

std::size_t
RecordingStream::nextBatch(core::MemOp *out, std::size_t max)
{
    const std::size_t got = inner_->nextBatch(out, max);
    if (writer_)
        for (std::size_t i = 0; i < got; ++i)
            writer_->append(out[i]);
    delivered_ += got;
    return got;
}

void
RecordingStream::extendTo(std::uint64_t target)
{
    core::MemOp buf[64];
    while (delivered_ < target) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(64, target - delivered_));
        nextBatch(buf, want);
    }
}

void
RecordingStream::finish()
{
    if (writer_)
        writer_->finish();
}

} // namespace coopsim::tracefile
