#include "tracefile/record.hpp"

#include <algorithm>
#include <filesystem>
#include <vector>

#include "api/registry.hpp"
#include "common/logging.hpp"
#include "sim/executor.hpp"
#include "sim/stream_cache.hpp"
#include "sim/system.hpp"
#include "trace/generator.hpp"
#include "tracefile/trace_workloads.hpp"
#include "tracefile/trace_writer.hpp"

namespace coopsim::tracefile
{

namespace
{

/** The spec's Group keys for @p group_name, in expansion order. */
std::vector<sim::RunKey>
groupKeysOf(const std::vector<sim::RunKey> &keys,
            const std::string &group_name)
{
    std::vector<sim::RunKey> out;
    for (const sim::RunKey &key : keys) {
        if (key.kind == sim::RunKey::Kind::Group &&
            key.name == group_name) {
            out.push_back(key);
        }
    }
    return out;
}

/**
 * The inner (generating) stream both recording passes tee from:
 * memo-backed when the stream cache is enabled, so the generator runs
 * once per distinct stream — pass 1's counting runs replay it for
 * every configuration and pass 2 replays it a final time into the
 * writer, making --record effectively single-pass — and a plain
 * SyntheticStream under --no-stream-memo.
 */
std::unique_ptr<core::OpStream>
makeInner(std::uint32_t c, const trace::AppProfile &profile,
          const trace::StreamGeometry &geometry, std::uint64_t seed,
          std::uint64_t run_seed, const std::string &scale,
          std::uint32_t num_cores)
{
    sim::StreamCache &cache = sim::StreamCache::instance();
    if (!cache.enabled()) {
        return std::make_unique<trace::SyntheticStream>(profile, geometry, c,
                                                        seed);
    }
    sim::StreamCache::Key key;
    key.workload = profile.name;
    key.slot = c;
    key.seed = run_seed;
    key.scale = scale;
    key.num_cores = num_cores;
    return cache.open(key, profile, geometry, seed);
}

} // namespace

std::size_t
recordSpec(const api::ExperimentSpec &spec, const std::string &dir)
{
    api::validateSpec(spec);
    if (spec.seeds.size() != 1) {
        COOPSIM_FATAL("--record needs a spec with exactly one seed "
                      "(a trace pins the generator seed); this spec "
                      "sweeps ", spec.seeds.size());
    }
    const std::vector<trace::WorkloadGroup> groups =
        api::resolveSpecGroups(spec);
    for (const trace::WorkloadGroup &group : groups) {
        if (isTraceWorkload(group.name)) {
            COOPSIM_FATAL("--record on the trace workload '", group.name,
                          "': replays cannot be re-recorded — record "
                          "from the synthetic group instead");
        }
    }

    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        COOPSIM_FATAL("cannot create trace directory '", dir,
                      "': ", ec.message());
    }

    const std::vector<sim::RunKey> all_keys = api::expandSpec(spec);
    std::size_t files_written = 0;

    for (const trace::WorkloadGroup &group : groups) {
        const std::vector<sim::RunKey> keys =
            groupKeysOf(all_keys, group.name);
        if (keys.empty()) {
            continue; // filtered out by the cores= axis
        }
        const auto num_cores =
            static_cast<std::uint32_t>(group.apps.size());

        // Pass 1: run every configuration of this group with a
        // counting tee to learn the deepest per-core consumption the
        // spec's cross-product reaches.
        std::vector<std::uint64_t> deepest(num_cores, 0);
        for (const sim::RunKey &key : keys) {
            sim::SystemConfig config = sim::runConfig(key);
            std::vector<RecordingStream *> counters(num_cores, nullptr);
            config.stream_factory =
                [&counters, &config, &spec, num_cores](
                    std::uint32_t c, const trace::AppProfile &profile,
                    const trace::StreamGeometry &geometry,
                    std::uint64_t seed)
                -> std::unique_ptr<core::OpStream> {
                auto tee = std::make_unique<RecordingStream>(
                    makeInner(c, profile, geometry, seed, config.seed,
                              spec.scale, num_cores),
                    nullptr);
                counters[c] = tee.get();
                return tee;
            };
            sim::System system(config, trace::groupProfiles(group));
            system.run();
            for (std::uint32_t c = 0; c < num_cores; ++c) {
                deepest[c] =
                    std::max(deepest[c], counters[c]->delivered());
            }
        }

        // Pass 2: re-generate each core's stream from the start and
        // capture it, with 25% (min one frame) of headroom so small
        // consumption differences — a new scheme, another partitioner
        // — replay from the same files instead of dying at the tail.
        sim::SystemConfig config = sim::runConfig(keys.front());
        std::vector<RecordingStream *> recorders(num_cores, nullptr);
        config.stream_factory =
            [&](std::uint32_t c, const trace::AppProfile &profile,
                const trace::StreamGeometry &geometry, std::uint64_t seed)
            -> std::unique_ptr<core::OpStream> {
            TraceHeader header;
            header.core = c;
            header.num_cores = num_cores;
            header.seed = config.seed;
            header.llc_sets = geometry.llc_sets;
            header.block_bytes = geometry.block_bytes;
            header.workload = group.name;
            header.app = profile.name;
            header.scale = spec.scale;
            const std::string path =
                (std::filesystem::path(dir) /
                 traceFileName(group.name, c))
                    .string();
            auto tee = std::make_unique<RecordingStream>(
                makeInner(c, profile, geometry, seed, config.seed,
                          spec.scale, num_cores),
                std::make_unique<TraceWriter>(path, header));
            recorders[c] = tee.get();
            return tee;
        };
        // The System constructor is the stream builder here — it owns
        // the profile phase rescaling and geometry handshake — but the
        // system is never run: the recording just drains each stream.
        sim::System system(config, trace::groupProfiles(group));
        for (std::uint32_t c = 0; c < num_cores; ++c) {
            const std::uint64_t margin = std::max<std::uint64_t>(
                deepest[c] / 4, kFrameOps);
            recorders[c]->extendTo(deepest[c] + margin);
            recorders[c]->finish();
            ++files_written;
        }
        COOPSIM_INFORM("recorded '", group.name, "' (", num_cores,
                       " cores, ", keys.size(), " configuration(s), ",
                       "deepest ", *std::max_element(deepest.begin(),
                                                     deepest.end()),
                       " ops)");
    }
    return files_written;
}

} // namespace coopsim::tracefile
