/**
 * @file
 * The `.cooptrace` binary trace format: one file per (workload, core)
 * holding that core's MemOp sequence, compressed and framed so replay
 * is cheap and corruption is loud.
 *
 * Layout:
 *
 *   [8-byte magic "cooptrc\n"] [u32 version]
 *   [u32 header payload bytes] [header payload] [u32 CRC-32(payload)]
 *   frame*                                        (until end of file)
 *
 * The header payload carries the recording identity — core index, core
 * count, run seed, stream geometry (LLC sets, block bytes), workload
 * name, app name, scale name — so replay can refuse a trace recorded
 * for a different simulation instead of silently diverging.
 *
 * Each frame is
 *
 *   [varint op count] [u32 payload bytes] [payload] [u32 CRC-32(payload)]
 *
 * and the payload encodes ops back to back as
 *
 *   [u8 flags: (delta_len << 2) | (is_write << 1) | llc_level]
 *   [varint gap_insts]
 *   [delta_len bytes: zigzag(addr - prev_addr), little-endian]
 *
 * with prev_addr starting at 0 for every frame, so frames decode
 * independently. Addresses move in small strides within an app's
 * footprint, so the zigzag delta usually fits 3-4 bytes where the raw
 * address needs 8; gap counts are geometric with a small mean, so the
 * varint usually fits 1-2 bytes. The CRC is the result store's
 * CRC-32 (store/result_store.hpp), covering exactly the payload: a
 * truncated or bit-flipped frame fails the check before any of its
 * ops are delivered.
 */

#ifndef COOPSIM_TRACEFILE_TRACE_FORMAT_HPP
#define COOPSIM_TRACEFILE_TRACE_FORMAT_HPP

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/op_stream.hpp"

namespace coopsim::tracefile
{

/** First 8 bytes of every trace file. */
inline constexpr char kTraceMagic[8] = {'c', 'o', 'o', 'p',
                                        't', 'r', 'c', '\n'};

/** Format version this tree writes and reads. */
inline constexpr std::uint32_t kTraceVersion = 1;

/** Trace files are `<workload>.<core>.cooptrace`. */
inline constexpr const char *kTraceExtension = ".cooptrace";

/** Ops per frame the writer emits (the last frame may be shorter). */
inline constexpr std::size_t kFrameOps = 4096;

// ---------------------------------------------------------------------------
// Codec primitives

/** Appends @p value as a LEB128 varint (7 bits per byte, high bit =
 *  continuation). */
void appendVarint(std::string &out, std::uint64_t value);

/**
 * Reads the varint at @p pos, advancing it. False when the buffer
 * ends mid-varint or the encoding exceeds 10 bytes.
 */
bool readVarint(const std::string &data, std::size_t &pos,
                std::uint64_t &value);

/** Bytes needed for the little-endian encoding of @p z (0 for zero). */
inline std::size_t
deltaLen(std::uint64_t z)
{
    if (z == 0)
        return 0;
    return (64u - static_cast<unsigned>(std::countl_zero(z)) + 7u) / 8u;
}

/** Low `8*len` bits set, for masking an unconditional 8-byte load. */
inline constexpr std::uint64_t kLenMask[9] = {
    0x0000000000000000ull, 0x00000000000000ffull, 0x000000000000ffffull,
    0x0000000000ffffffull, 0x00000000ffffffffull, 0x000000ffffffffffull,
    0x0000ffffffffffffull, 0x00ffffffffffffffull, 0xffffffffffffffffull,
};

/** Maps signed deltas to small unsigned values (0, -1, 1, -2, ...). */
constexpr std::uint64_t
zigzagEncode(std::int64_t value)
{
    return (static_cast<std::uint64_t>(value) << 1) ^
           static_cast<std::uint64_t>(value >> 63);
}

constexpr std::int64_t
zigzagDecode(std::uint64_t value)
{
    return static_cast<std::int64_t>(value >> 1) ^
           -static_cast<std::int64_t>(value & 1);
}

// ---------------------------------------------------------------------------
// Header

/** Recording identity carried by every trace file. */
struct TraceHeader
{
    /** Core index this stream fed (file suffix must agree). */
    std::uint32_t core = 0;
    /** Cores in the recorded system (= files in the trace set). */
    std::uint32_t num_cores = 0;
    /** The run seed (per-stream seeds derive as seed + core * 7919). */
    std::uint64_t seed = 0;
    /** Stream geometry the generator agreed on with the LLC. */
    std::uint32_t llc_sets = 0;
    std::uint32_t block_bytes = 0;
    /** Workload group name (without the "trace:" prefix). */
    std::string workload;
    /** The app profile this core ran. */
    std::string app;
    /** Scale-registry name the recording ran at. */
    std::string scale;

    bool operator==(const TraceHeader &) const = default;
};

/** Magic + version + length-prefixed payload + CRC trailer. */
std::string encodeHeader(const TraceHeader &header);

/**
 * Decodes the header at the start of @p data, leaving @p pos on the
 * first frame. False (with a reason in @p error) on bad magic, an
 * unsupported version, truncation, or a CRC mismatch.
 */
bool decodeHeader(const std::string &data, std::size_t &pos,
                  TraceHeader &out, std::string &error);

// ---------------------------------------------------------------------------
// Frames

/** Encodes @p count ops as one complete frame. */
std::string encodeFrame(const core::MemOp *ops, std::size_t count);

/** Outcome of decodeFrame(). */
enum class FrameStatus
{
    Ok,
    /** Clean end of file exactly at a frame boundary. */
    End,
    /** Truncated or CRC-mismatched frame; @p error says why. */
    Corrupt,
};

/**
 * Decodes the frame at @p pos into @p out (replacing its contents) and
 * advances @p pos past it. @p data must carry kDecodeSlack readable
 * bytes beyond the logical end (readTraceFile() pads; the slack lets
 * the delta decode issue one unconditional 8-byte load per op).
 */
FrameStatus decodeFrame(const std::string &data, std::size_t &pos,
                        std::vector<core::MemOp> &out,
                        std::string &error);

/**
 * Padding bytes the decoders require past the logical end: enough for
 * one worst-case op overrun (flags byte + 10-byte varint + 8-byte
 * wide load) so a crafted frame whose last op runs past its payload
 * is caught by a bounds check, never by an out-of-bounds read.
 */
inline constexpr std::size_t kDecodeSlack = 24;

/**
 * Reads the file at @p path into @p data with kDecodeSlack zero bytes
 * appended (the logical size is returned via @p size). False with a
 * reason in @p error when the file cannot be opened or read.
 */
bool readTraceFile(const std::string &path, std::string &data,
                   std::size_t &size, std::string &error);

/**
 * Validates the structure and CRC of every frame in
 * [@p pos, @p logical) in one sequential pass, accumulating the total
 * op count into @p ops. False (with the offending frame named in
 * @p error) on truncation or a checksum mismatch; the caller decides
 * whether that is fatal (replay) or merely a stale cache entry to
 * regenerate (warm start).
 */
bool validateFrames(const std::string &data, std::size_t pos,
                    std::size_t logical, std::uint64_t &ops,
                    std::string &error);

/**
 * Incremental decoder over a run of already-validated frames.
 *
 * The hot loop shared by TraceFileStream and the in-memory stream
 * memo: one flags byte, a mostly-one-byte varint gap, and a masked
 * unconditional 8-byte delta load per op. The buffer must carry
 * kDecodeSlack readable bytes past @p logical and its frames must
 * have passed validateFrames(); any inconsistency found here is a
 * (should-be-unreachable) fatal naming @p label.
 */
class FrameDecoder
{
  public:
    /**
     * Arms the decoder on the frame at @p begin. @p label must outlive
     * the decoder; it names the buffer in corruption fatals.
     */
    void reset(const char *base, std::size_t begin, std::size_t logical,
               const std::string *label);

    /**
     * Decodes up to @p max ops into @p out, crossing frame boundaries
     * as needed. Returns 0 only at the clean end of the buffer.
     */
    std::size_t decode(core::MemOp *out, std::size_t max);

  private:
    /** Arms the op cursor on the frame at pos_; false at clean end. */
    bool enterFrame();

    const char *base_ = nullptr;
    const std::string *label_ = nullptr;
    std::size_t logical_ = 0;
    /** Byte offset of the next frame header. */
    std::size_t pos_ = 0;
    /** Op cursor inside the current frame's payload. */
    std::size_t op_pos_ = 0;
    std::size_t payload_end_ = 0;
    std::uint64_t frame_left_ = 0;
    std::uint64_t prev_addr_ = 0;
    std::uint64_t frames_ = 0;
};

} // namespace coopsim::tracefile

#endif // COOPSIM_TRACEFILE_TRACE_FORMAT_HPP
