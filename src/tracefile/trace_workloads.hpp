/**
 * @file
 * Trace-backed workloads: makes a directory of `.cooptrace` files a
 * first-class workload source.
 *
 * registerTraceDir() scans a directory for complete
 * `<workload>.<core>.cooptrace` sets and registers each as the
 * workload group `trace:<workload>` in api::workloadRegistry(), so
 * specs, RunKeys and sharded/supervised sweeps address replays with
 * ordinary workload names (`groups=trace:G2-3`). Incomplete or
 * corrupt sets warn and are skipped — like the result store's loadDir
 * — so one bad file cannot take down a sweep over the good ones.
 *
 * replayFactory() is the sim::StreamFactory the executor installs for
 * such groups: each core gets a TraceFileStream over its file, after
 * the recorded identity (core, seed, geometry, scale, app) is checked
 * against what the simulation is about to assume. A mismatch is a
 * descriptive fatal — replaying a trace under the wrong seed or
 * geometry would silently produce plausible-looking wrong numbers.
 */

#ifndef COOPSIM_TRACEFILE_TRACE_WORKLOADS_HPP
#define COOPSIM_TRACEFILE_TRACE_WORKLOADS_HPP

#include <cstdint>
#include <string>

#include "sim/system.hpp"
#include "tracefile/trace_format.hpp"

namespace coopsim::tracefile
{

/** Workload names with this prefix resolve to recorded traces. */
inline constexpr const char *kTracePrefix = "trace:";

/** True when @p name is a `trace:<workload>` name. */
bool isTraceWorkload(const std::string &name);

/** `<workload>.<core>.cooptrace` (no directory). */
std::string traceFileName(const std::string &workload, std::uint32_t core);

/**
 * Scans @p dir and registers every complete trace set as
 * `trace:<workload>`. Returns how many workloads were registered.
 * Scanning the same directory again is a no-op; a malformed set
 * (missing core files, mismatched or corrupt headers) warns and is
 * skipped. Fatal only when @p dir itself cannot be read.
 */
std::size_t registerTraceDir(const std::string &dir);

/** registerTraceDir(COOPSIM_TRACE_DIR) if the variable is set (once;
 *  later calls are no-ops). Hooked into api::warmAllRegistries() so
 *  executor threads and supervised shard workers see trace workloads
 *  without any CLI plumbing. */
void registerFromEnvironment();

/** Path of the file backing core @p core of the registered trace
 *  workload @p name ("trace:..."). Fatal when @p name is unknown. */
const std::string &traceFilePath(const std::string &name,
                                 std::uint32_t core);

/** Header recorded for core @p core of @p name (fatal if unknown). */
const TraceHeader &traceHeaderOf(const std::string &name,
                                 std::uint32_t core);

/**
 * The stream factory replaying the registered workload @p name
 * ("trace:...") for a run with @p run_seed at @p scale. Each core's
 * stream validates the recorded identity before serving ops.
 */
sim::StreamFactory replayFactory(const std::string &name,
                                 std::uint64_t run_seed,
                                 sim::RunScale scale);

} // namespace coopsim::tracefile

#endif // COOPSIM_TRACEFILE_TRACE_WORKLOADS_HPP
