#include "tracefile/trace_workloads.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <set>
#include <vector>

#include "api/registry.hpp"
#include "common/logging.hpp"
#include "sim/stream_cache.hpp"
#include "tracefile/trace_stream.hpp"

namespace coopsim::tracefile
{

namespace
{

namespace fs = std::filesystem;

/** One registered trace workload: per-core files and their headers. */
struct TraceSet
{
    std::vector<std::string> paths;   // indexed by core
    std::vector<TraceHeader> headers; // indexed by core
};

struct TraceTable
{
    std::map<std::string, TraceSet> sets; // keyed by "trace:<workload>"
    std::set<std::string> scanned_dirs;
};

TraceTable &
table()
{
    static TraceTable t;
    return t;
}

/**
 * Reads just the header of @p path (the header is tiny; only the
 * first few hundred bytes are fetched). False with a reason on any
 * open/format problem — the scan warns and skips, never dies.
 */
bool
tryReadHeader(const std::string &path, TraceHeader &out, std::string &error)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        error = "cannot open";
        return false;
    }
    char buf[4096];
    std::string data(buf, std::fread(buf, 1, sizeof(buf), f));
    std::fclose(f);
    data.append(kDecodeSlack, '\0');
    std::size_t pos = 0;
    return decodeHeader(data, pos, out, error);
}

/**
 * Splits a `<workload>.<core>.cooptrace` filename. False when the
 * name does not have that shape.
 */
bool
parseTraceFileName(const std::string &filename, std::string &workload,
                   std::uint32_t &core)
{
    const std::string ext = kTraceExtension;
    if (filename.size() <= ext.size() ||
        filename.compare(filename.size() - ext.size(), ext.size(), ext) !=
            0) {
        return false;
    }
    const std::string stem =
        filename.substr(0, filename.size() - ext.size());
    const std::size_t dot = stem.rfind('.');
    if (dot == std::string::npos || dot == 0 || dot + 1 >= stem.size()) {
        return false;
    }
    const std::string core_str = stem.substr(dot + 1);
    char *end = nullptr;
    const unsigned long n = std::strtoul(core_str.c_str(), &end, 10);
    if (end == core_str.c_str() || *end != '\0' || n > 0xffffffffull) {
        return false;
    }
    workload = stem.substr(0, dot);
    core = static_cast<std::uint32_t>(n);
    return true;
}

const TraceSet &
setOf(const std::string &name)
{
    const auto it = table().sets.find(name);
    if (it == table().sets.end()) {
        COOPSIM_FATAL("unknown trace workload '", name,
                      "' (was its directory registered via --trace-dir "
                      "or COOPSIM_TRACE_DIR?)");
    }
    return it->second;
}

} // namespace

bool
isTraceWorkload(const std::string &name)
{
    return name.rfind(kTracePrefix, 0) == 0;
}

std::string
traceFileName(const std::string &workload, std::uint32_t core)
{
    return workload + "." + std::to_string(core) + kTraceExtension;
}

std::size_t
registerTraceDir(const std::string &dir)
{
    if (!table().scanned_dirs.insert(fs::absolute(dir).string()).second) {
        return 0; // already scanned
    }
    std::error_code ec;
    fs::directory_iterator it(dir, ec);
    if (ec) {
        COOPSIM_FATAL("cannot read trace directory '", dir,
                      "': ", ec.message());
    }

    // Collect candidate files per workload first, then validate each
    // set as a whole.
    struct Candidate
    {
        std::map<std::uint32_t, std::string> files; // core -> path
    };
    std::map<std::string, Candidate> candidates;
    for (const fs::directory_entry &entry : it) {
        if (!entry.is_regular_file()) {
            continue;
        }
        std::string workload;
        std::uint32_t core = 0;
        if (!parseTraceFileName(entry.path().filename().string(), workload,
                                core)) {
            continue;
        }
        candidates[workload].files[core] = entry.path().string();
    }

    std::size_t registered = 0;
    for (auto &[workload, candidate] : candidates) {
        const std::string name = kTracePrefix + workload;
        if (table().sets.count(name) != 0) {
            COOPSIM_WARN("trace workload '", name,
                         "' already registered from another directory; "
                         "skipping the copy in '", dir, "'");
            continue;
        }

        TraceSet set;
        bool ok = true;
        for (const auto &[core, path] : candidate.files) {
            TraceHeader header;
            std::string error;
            if (!tryReadHeader(path, header, error)) {
                COOPSIM_WARN("skipping trace workload '", workload, "': '",
                             path, "': ", error);
                ok = false;
                break;
            }
            if (header.core != core) {
                COOPSIM_WARN("skipping trace workload '", workload, "': '",
                             path, "' claims core ", header.core,
                             " but is named for core ", core);
                ok = false;
                break;
            }
            if (header.workload != workload) {
                COOPSIM_WARN("skipping trace workload '", workload, "': '",
                             path, "' was recorded for workload '",
                             header.workload, "'");
                ok = false;
                break;
            }
            set.paths.push_back(path);
            set.headers.push_back(header);
        }
        if (!ok) {
            continue;
        }
        const std::uint32_t num_cores = set.headers.front().num_cores;
        if (set.headers.size() != num_cores) {
            COOPSIM_WARN("skipping trace workload '", workload, "': found ",
                         set.headers.size(), " core file(s), header says ",
                         num_cores, " cores were recorded");
            continue;
        }
        bool consistent = true;
        for (std::size_t i = 0; i < set.headers.size(); ++i) {
            // Map iteration gave ascending core order; equality with
            // the slot index makes the set exactly cores 0..n-1.
            consistent =
                consistent &&
                set.headers[i].core == static_cast<std::uint32_t>(i);
        }
        if (!consistent) {
            COOPSIM_WARN("skipping trace workload '", workload,
                         "': core files are not a contiguous 0..",
                         num_cores - 1, " set");
            continue;
        }
        for (const TraceHeader &h : set.headers) {
            consistent = consistent && h.num_cores == num_cores &&
                         h.seed == set.headers.front().seed &&
                         h.scale == set.headers.front().scale &&
                         h.llc_sets == set.headers.front().llc_sets &&
                         h.block_bytes == set.headers.front().block_bytes;
        }
        if (!consistent) {
            COOPSIM_WARN("skipping trace workload '", workload,
                         "': its core files disagree about the recorded "
                         "seed, scale, core count or geometry");
            continue;
        }

        trace::WorkloadGroup group;
        group.name = name;
        for (const TraceHeader &h : set.headers) {
            group.apps.push_back(h.app);
        }
        api::registerWorkload(group);
        table().sets.emplace(name, std::move(set));
        ++registered;
    }
    return registered;
}

void
registerFromEnvironment()
{
    static bool done = false;
    if (done) {
        return;
    }
    done = true;
    if (const char *dir = std::getenv("COOPSIM_TRACE_DIR")) {
        if (*dir != '\0') {
            registerTraceDir(dir);
        }
    }
}

const std::string &
traceFilePath(const std::string &name, std::uint32_t core)
{
    const TraceSet &set = setOf(name);
    COOPSIM_ASSERT(core < set.paths.size(), "trace workload '", name,
                   "' has no core ", core);
    return set.paths[core];
}

const TraceHeader &
traceHeaderOf(const std::string &name, std::uint32_t core)
{
    const TraceSet &set = setOf(name);
    COOPSIM_ASSERT(core < set.headers.size(), "trace workload '", name,
                   "' has no core ", core);
    return set.headers[core];
}

sim::StreamFactory
replayFactory(const std::string &name, std::uint64_t run_seed,
              sim::RunScale scale)
{
    // Resolve (and fatal on an unknown name) now, at run-construction
    // time, not from inside a worker thread mid-sweep.
    const TraceSet &set = setOf(name);
    const std::string scale_key = api::scaleKeyOf(scale);
    return [name, run_seed, scale_key,
            &set](std::uint32_t c, const trace::AppProfile &profile,
                  const trace::StreamGeometry &geometry,
                  std::uint64_t stream_seed)
               -> std::unique_ptr<core::OpStream> {
        COOPSIM_ASSERT(c < set.paths.size(), "trace workload '", name,
                       "' has no core ", c);
        const TraceHeader &header = set.headers[c];
        if (header.seed + c * 7919 != stream_seed) {
            COOPSIM_FATAL("trace workload '", name, "' core ", c,
                          " was recorded with seed ", header.seed,
                          " but this run uses seed ", run_seed,
                          "; re-record or set seeds=", header.seed);
        }
        if (header.scale != scale_key) {
            COOPSIM_FATAL("trace workload '", name, "' core ", c,
                          " was recorded at scale=", header.scale,
                          " but this run uses scale=", scale_key);
        }
        if (header.llc_sets != geometry.llc_sets ||
            header.block_bytes != geometry.block_bytes) {
            COOPSIM_FATAL(
                "trace workload '", name, "' core ", c,
                " was recorded for geometry ", header.llc_sets, "x",
                header.block_bytes, "B but this run uses ",
                geometry.llc_sets, "x", geometry.block_bytes,
                "B — the trace belongs to a different topology row");
        }
        if (header.app != profile.name) {
            COOPSIM_FATAL("trace workload '", name, "' core ", c,
                          " recorded app '", header.app,
                          "' but the registry resolved '", profile.name,
                          "'");
        }
        sim::StreamCache &cache = sim::StreamCache::instance();
        if (!cache.enabled()) {
            return std::make_unique<TraceFileStream>(set.paths[c]);
        }
        // Memoized replay: the file is read and CRC-validated once
        // per process, however many runs of the sweep replay it.
        sim::StreamCache::Key key;
        key.workload = std::string(kTracePrefix) + name;
        key.slot = c;
        key.seed = run_seed;
        key.scale = scale_key;
        key.num_cores = header.num_cores;
        return cache.openTraceFile(key, set.paths[c], header);
    };
}

} // namespace coopsim::tracefile
