/**
 * @file
 * `--record=DIR`: captures a spec's workloads as `.cooptrace` sets.
 *
 * A stream is a pure per-(workload, scale, seed) sequence — no scheme
 * or partitioner feedback — so one recording of each group serves the
 * whole spec cross-product. What does vary by scheme/partitioner is
 * how far into the sequence a run consumes (contention decides which
 * core lags and how long the tail runs), so recordSpec first runs the
 * spec's configurations with a counting tee to learn the deepest
 * per-core consumption, then captures that many ops plus margin with
 * the real writers.
 */

#ifndef COOPSIM_TRACEFILE_RECORD_HPP
#define COOPSIM_TRACEFILE_RECORD_HPP

#include <string>

#include "api/spec.hpp"

namespace coopsim::tracefile
{

/**
 * Records every workload group of @p spec into @p dir (created if
 * missing) as `<workload>.<core>.cooptrace` files. Serial — recording
 * is a capture tool, not a sweep. Fatal when the spec sweeps several
 * seeds (a trace pins one), names `trace:` groups (re-recording a
 * replay is a no-op wearing a trench coat), or on any I/O error.
 * Returns the number of trace files written.
 */
std::size_t recordSpec(const api::ExperimentSpec &spec,
                       const std::string &dir);

} // namespace coopsim::tracefile

#endif // COOPSIM_TRACEFILE_RECORD_HPP
