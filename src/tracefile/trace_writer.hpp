/**
 * @file
 * Writing `.cooptrace` files: TraceWriter frames and flushes one
 * core's op sequence, RecordingStream tees an existing OpStream
 * through a writer (or just counts, for the sizing pass).
 *
 * The writer uses the store's write-tmp + fsync + rename idiom
 * (store/result_store.cpp): a crashed recording leaves at most a
 * `.tmp` orphan, never a truncated `.cooptrace` that replay would
 * then have to reject.
 */

#ifndef COOPSIM_TRACEFILE_TRACE_WRITER_HPP
#define COOPSIM_TRACEFILE_TRACE_WRITER_HPP

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/op_stream.hpp"
#include "tracefile/trace_format.hpp"

namespace coopsim::tracefile
{

/**
 * Streams one core's MemOps into a `.cooptrace` file, framing every
 * kFrameOps ops. Fatal on any I/O error: a recording that cannot be
 * persisted completely is worthless.
 */
class TraceWriter
{
  public:
    /** Opens `<path>.tmp` and writes the header immediately. */
    TraceWriter(std::string path, const TraceHeader &header);

    /** Removes the `.tmp` orphan if finish() was never reached. */
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void append(const core::MemOp &op);

    /** Flushes the tail frame, fsyncs, and renames tmp into place. */
    void finish();

    std::uint64_t written() const { return written_; }
    const std::string &path() const { return path_; }

  private:
    void flushFrame();

    std::string path_;
    std::string tmp_path_;
    std::FILE *file_ = nullptr;
    std::vector<core::MemOp> pending_;
    std::uint64_t written_ = 0;
    bool finished_ = false;
};

/**
 * An OpStream wrapper that forwards another stream's ops while
 * recording them. With a null writer it only counts — the record
 * pass uses that mode first to size each core's trace, then a second
 * pass with real writers captures exactly what replay will need.
 */
class RecordingStream final : public core::OpStream
{
  public:
    RecordingStream(std::unique_ptr<core::OpStream> inner,
                    std::unique_ptr<TraceWriter> writer);
    ~RecordingStream() override;

    core::MemOp next() override;
    std::size_t nextBatch(core::MemOp *out, std::size_t max) override;

    /** Pulls the inner stream until at least @p target ops flowed. */
    void extendTo(std::uint64_t target);

    /** Finalises the underlying writer (no-op in counting mode). */
    void finish();

    std::uint64_t delivered() const { return delivered_; }

  private:
    std::unique_ptr<core::OpStream> inner_;
    std::unique_ptr<TraceWriter> writer_;
    std::uint64_t delivered_ = 0;
};

} // namespace coopsim::tracefile

#endif // COOPSIM_TRACEFILE_TRACE_WRITER_HPP
