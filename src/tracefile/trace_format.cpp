#include "tracefile/trace_format.hpp"

#include <bit>
#include <cstdio>
#include <cstring>

#include "common/logging.hpp"
#include "store/result_store.hpp"

namespace coopsim::tracefile
{

namespace
{

inline void
appendU32(std::string &out, std::uint32_t value)
{
    char buf[4];
    buf[0] = static_cast<char>(value & 0xff);
    buf[1] = static_cast<char>((value >> 8) & 0xff);
    buf[2] = static_cast<char>((value >> 16) & 0xff);
    buf[3] = static_cast<char>((value >> 24) & 0xff);
    out.append(buf, 4);
}

inline bool
readU32(const std::string &data, std::size_t &pos, std::uint32_t &value)
{
    if (pos + 4 > data.size())
        return false;
    const auto *p = reinterpret_cast<const unsigned char *>(data.data() + pos);
    value = static_cast<std::uint32_t>(p[0]) |
            (static_cast<std::uint32_t>(p[1]) << 8) |
            (static_cast<std::uint32_t>(p[2]) << 16) |
            (static_cast<std::uint32_t>(p[3]) << 24);
    pos += 4;
    return true;
}

inline void
appendString(std::string &out, const std::string &s)
{
    appendVarint(out, s.size());
    out.append(s);
}

inline bool
readString(const std::string &data, std::size_t &pos, std::string &out)
{
    std::uint64_t len = 0;
    if (!readVarint(data, pos, len))
        return false;
    if (pos + len > data.size())
        return false;
    out.assign(data, pos, static_cast<std::size_t>(len));
    pos += static_cast<std::size_t>(len);
    return true;
}

} // namespace

void
appendVarint(std::string &out, std::uint64_t value)
{
    while (value >= 0x80) {
        out.push_back(static_cast<char>((value & 0x7f) | 0x80));
        value >>= 7;
    }
    out.push_back(static_cast<char>(value));
}

bool
readVarint(const std::string &data, std::size_t &pos, std::uint64_t &value)
{
    std::uint64_t result = 0;
    for (unsigned shift = 0; shift < 70; shift += 7) {
        if (pos >= data.size())
            return false;
        const auto byte =
            static_cast<unsigned char>(data[pos++]);
        result |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0) {
            value = result;
            return true;
        }
    }
    return false; // > 10 bytes: not a valid encoding of a u64
}

// ---------------------------------------------------------------------------
// Header

std::string
encodeHeader(const TraceHeader &header)
{
    std::string payload;
    appendVarint(payload, header.core);
    appendVarint(payload, header.num_cores);
    appendVarint(payload, header.seed);
    appendVarint(payload, header.llc_sets);
    appendVarint(payload, header.block_bytes);
    appendString(payload, header.workload);
    appendString(payload, header.app);
    appendString(payload, header.scale);

    std::string out;
    out.append(kTraceMagic, sizeof(kTraceMagic));
    appendU32(out, kTraceVersion);
    appendU32(out, static_cast<std::uint32_t>(payload.size()));
    out.append(payload);
    appendU32(out, store::crc32(payload.data(), payload.size()));
    return out;
}

bool
decodeHeader(const std::string &data, std::size_t &pos, TraceHeader &out,
             std::string &error)
{
    if (data.size() < sizeof(kTraceMagic) + 4) {
        error = "file too short for a trace header";
        return false;
    }
    if (std::memcmp(data.data(), kTraceMagic, sizeof(kTraceMagic)) != 0) {
        error = "bad magic (not a .cooptrace file)";
        return false;
    }
    pos = sizeof(kTraceMagic);
    std::uint32_t version = 0;
    if (!readU32(data, pos, version)) {
        error = "truncated version field";
        return false;
    }
    if (version != kTraceVersion) {
        error = "unsupported trace version " + std::to_string(version) +
                " (this build reads version " +
                std::to_string(kTraceVersion) + ")";
        return false;
    }
    std::uint32_t payload_bytes = 0;
    if (!readU32(data, pos, payload_bytes)) {
        error = "truncated header length field";
        return false;
    }
    if (pos + payload_bytes + 4 > data.size()) {
        error = "truncated header payload";
        return false;
    }
    const std::size_t payload_start = pos;
    const std::uint32_t want =
        store::crc32(data.data() + payload_start, payload_bytes);
    std::size_t crc_pos = payload_start + payload_bytes;
    std::uint32_t got = 0;
    readU32(data, crc_pos, got);
    if (want != got) {
        char buf[64];
        std::snprintf(buf, sizeof(buf),
                      "header CRC mismatch (stored %08x, computed %08x)",
                      got, want);
        error = buf;
        return false;
    }

    const std::string payload(data, payload_start, payload_bytes);
    std::size_t p = 0;
    std::uint64_t core = 0, num_cores = 0, seed = 0, sets = 0, block = 0;
    TraceHeader header;
    if (!readVarint(payload, p, core) || !readVarint(payload, p, num_cores) ||
        !readVarint(payload, p, seed) || !readVarint(payload, p, sets) ||
        !readVarint(payload, p, block) ||
        !readString(payload, p, header.workload) ||
        !readString(payload, p, header.app) ||
        !readString(payload, p, header.scale)) {
        error = "malformed header payload";
        return false;
    }
    header.core = static_cast<std::uint32_t>(core);
    header.num_cores = static_cast<std::uint32_t>(num_cores);
    header.seed = seed;
    header.llc_sets = static_cast<std::uint32_t>(sets);
    header.block_bytes = static_cast<std::uint32_t>(block);
    out = header;
    pos = crc_pos;
    return true;
}

// ---------------------------------------------------------------------------
// Frames

std::string
encodeFrame(const core::MemOp *ops, std::size_t count)
{
    // Encode through raw pointer writes into a worst-case-sized
    // buffer — one capacity check per frame instead of several per op
    // (this is the stream memo's cold-path inner loop). Worst case
    // per op: 1 flags byte + a 10-byte gap varint + an 8-byte delta;
    // the unconditional 8-byte delta store stays inside that budget.
    constexpr std::size_t kMaxOpBytes = 19;
    std::string payload;
    payload.resize(count * kMaxOpBytes);
    char *const base = payload.data();
    char *p = base;
    std::uint64_t prev_addr = 0;
    for (std::size_t i = 0; i < count; ++i) {
        const core::MemOp &op = ops[i];
        const std::int64_t delta =
            static_cast<std::int64_t>(op.addr - prev_addr);
        const std::uint64_t z = zigzagEncode(delta);
        const std::size_t len = deltaLen(z);
        const unsigned flags =
            (static_cast<unsigned>(len) << 2) |
            (op.type == AccessType::Write ? 2u : 0u) |
            (op.llc_level ? 1u : 0u);
        *p++ = static_cast<char>(flags);
        std::uint64_t gap = op.gap_insts;
        while (gap >= 0x80) {
            *p++ = static_cast<char>(gap | 0x80);
            gap >>= 7;
        }
        *p++ = static_cast<char>(gap);
        std::memcpy(p, &z, 8); // little-endian hosts only
        p += len;
        prev_addr = op.addr;
    }
    payload.resize(static_cast<std::size_t>(p - base));

    std::string out;
    appendVarint(out, count);
    appendU32(out, static_cast<std::uint32_t>(payload.size()));
    out.append(payload);
    appendU32(out, store::crc32(payload.data(), payload.size()));
    return out;
}

FrameStatus
decodeFrame(const std::string &data, std::size_t &pos,
            std::vector<core::MemOp> &out, std::string &error)
{
    out.clear();
    const std::size_t logical_end = data.size() - kDecodeSlack;
    if (pos >= logical_end)
        return FrameStatus::End;

    std::uint64_t count = 0;
    std::size_t p = pos;
    if (!readVarint(data, p, count) || p > logical_end) {
        error = "truncated frame op count";
        return FrameStatus::Corrupt;
    }
    std::uint32_t payload_bytes = 0;
    if (p + 4 > logical_end || !readU32(data, p, payload_bytes)) {
        error = "truncated frame length field";
        return FrameStatus::Corrupt;
    }
    const std::size_t payload_start = p;
    const std::size_t payload_end = payload_start + payload_bytes;
    if (payload_end + 4 > logical_end) {
        error = "truncated frame payload (expected " +
                std::to_string(payload_bytes) + " bytes + CRC)";
        return FrameStatus::Corrupt;
    }
    const std::uint32_t want =
        store::crc32(data.data() + payload_start, payload_bytes);
    std::size_t crc_pos = payload_end;
    std::uint32_t got = 0;
    readU32(data, crc_pos, got);
    if (want != got) {
        char buf[64];
        std::snprintf(buf, sizeof(buf),
                      "frame CRC mismatch (stored %08x, computed %08x)", got,
                      want);
        error = buf;
        return FrameStatus::Corrupt;
    }

    out.resize(static_cast<std::size_t>(count));
    const char *base = data.data();
    std::size_t q = payload_start;
    std::uint64_t prev_addr = 0;
    for (std::size_t i = 0; i < count; ++i) {
        if (q >= payload_end) {
            error = "frame payload ended before op " + std::to_string(i) +
                    " of " + std::to_string(count);
            return FrameStatus::Corrupt;
        }
        const unsigned flags = static_cast<unsigned char>(base[q++]);
        const std::size_t len = flags >> 2;
        if (len > 8) {
            error = "invalid delta length in op flags";
            return FrameStatus::Corrupt;
        }
        std::uint64_t gap = 0;
        if (!readVarint(data, q, gap) || q + len > payload_end) {
            error = "truncated op encoding inside frame payload";
            return FrameStatus::Corrupt;
        }
        // The kDecodeSlack file padding keeps this unconditional load
        // in bounds even for the last op of the last frame.
        std::uint64_t z;
        std::memcpy(&z, base + q, 8);
        z &= kLenMask[len];
        q += len;
        prev_addr += static_cast<std::uint64_t>(zigzagDecode(z));
        core::MemOp &op = out[i];
        op.gap_insts = gap;
        op.addr = prev_addr;
        op.type = (flags & 2u) ? AccessType::Write
                               : AccessType::Read;
        op.llc_level = (flags & 1u) != 0;
    }
    if (q != payload_end) {
        error = "frame payload has " + std::to_string(payload_end - q) +
                " trailing bytes after the last op";
        return FrameStatus::Corrupt;
    }
    pos = crc_pos;
    return FrameStatus::Ok;
}

bool
validateFrames(const std::string &data, std::size_t pos, std::size_t logical,
               std::uint64_t &ops, std::string &error)
{
    ops = 0;
    std::size_t p = pos;
    std::size_t frame = 0;
    while (p < logical) {
        std::uint64_t count = 0;
        if (!readVarint(data, p, count) || p + 4 > logical) {
            error = "truncated header of frame " + std::to_string(frame);
            return false;
        }
        std::uint32_t payload_bytes = 0;
        readU32(data, p, payload_bytes);
        if (p + payload_bytes + 4 > logical) {
            error = "truncated payload of frame " + std::to_string(frame) +
                    " (wanted " + std::to_string(payload_bytes) +
                    " bytes + CRC past byte " + std::to_string(p) + ")";
            return false;
        }
        const std::uint32_t want = store::crc32(data.data() + p, payload_bytes);
        std::size_t crc_pos = p + payload_bytes;
        std::uint32_t got = 0;
        readU32(data, crc_pos, got);
        if (want != got) {
            char buf[96];
            std::snprintf(buf, sizeof(buf),
                          "CRC mismatch in frame %zu (stored %08x, "
                          "computed %08x)",
                          frame, got, want);
            error = buf;
            return false;
        }
        ops += count;
        p = crc_pos;
        ++frame;
    }
    return true;
}

void
FrameDecoder::reset(const char *base, std::size_t begin, std::size_t logical,
                    const std::string *label)
{
    base_ = base;
    label_ = label;
    logical_ = logical;
    pos_ = begin;
    op_pos_ = 0;
    payload_end_ = 0;
    frame_left_ = 0;
    prev_addr_ = 0;
    frames_ = 0;
}

bool
FrameDecoder::enterFrame()
{
    if (pos_ >= logical_)
        return false;

    // Structure and CRC were verified by validateFrames(); this only
    // re-parses the two length fields to arm the op cursor.
    std::uint64_t count = 0;
    std::size_t p = pos_;
    std::uint8_t byte;
    unsigned shift = 0;
    do {
        byte = static_cast<unsigned char>(base_[p++]);
        count |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        shift += 7;
    } while ((byte & 0x80) != 0 && shift < 70);
    const auto *lp = reinterpret_cast<const unsigned char *>(base_ + p);
    const std::uint32_t payload_bytes =
        static_cast<std::uint32_t>(lp[0]) |
        (static_cast<std::uint32_t>(lp[1]) << 8) |
        (static_cast<std::uint32_t>(lp[2]) << 16) |
        (static_cast<std::uint32_t>(lp[3]) << 24);
    p += 4;

    op_pos_ = p;
    payload_end_ = p + payload_bytes;
    frame_left_ = count;
    prev_addr_ = 0;
    pos_ = payload_end_ + 4;
    ++frames_;
    return true;
}

std::size_t
FrameDecoder::decode(core::MemOp *out, std::size_t max)
{
    const char *base = base_;
    std::size_t produced = 0;
    while (produced < max) {
        if (frame_left_ == 0) {
            if (op_pos_ != payload_end_)
                COOPSIM_FATAL(*label_, ": frame ", frames_ - 1,
                              " has trailing bytes after its last op");
            if (!enterFrame())
                break;
            continue;
        }
        // Hot decode loop: one flags byte, a mostly-one-byte varint
        // gap, and a masked unconditional 8-byte delta load per op.
        // The buffer's kDecodeSlack padding keeps the wide loads in
        // bounds at the tail.
        std::size_t q = op_pos_;
        const std::size_t payload_end = payload_end_;
        std::uint64_t prev_addr = prev_addr_;
        std::uint64_t left = frame_left_;
        while (produced < max && left > 0) {
            if (q >= payload_end)
                COOPSIM_FATAL(*label_, ": frame ", frames_ - 1,
                              " payload ended with ", left,
                              " ops still owed");
            const unsigned flags = static_cast<unsigned char>(base[q++]);
            const std::size_t len = flags >> 2;
            if (len > 8)
                COOPSIM_FATAL(*label_, ": invalid op flags in frame ",
                              frames_ - 1);
            std::uint64_t gap = static_cast<unsigned char>(base[q++]);
            if (gap >= 0x80) {
                gap &= 0x7f;
                unsigned shift = 7;
                std::uint8_t byte;
                do {
                    byte = static_cast<unsigned char>(base[q++]);
                    gap |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
                    shift += 7;
                } while ((byte & 0x80) != 0 && shift < 70);
            }
            std::uint64_t z;
            std::memcpy(&z, base + q, 8);
            z &= kLenMask[len];
            q += len;
            if (q > payload_end)
                COOPSIM_FATAL(*label_, ": op encoding overruns frame ",
                              frames_ - 1);
            prev_addr += static_cast<std::uint64_t>(zigzagDecode(z));
            core::MemOp &op = out[produced++];
            op.gap_insts = gap;
            op.addr = prev_addr;
            op.type = (flags & 2u) ? AccessType::Write
                                   : AccessType::Read;
            op.llc_level = (flags & 1u) != 0;
            --left;
        }
        op_pos_ = q;
        prev_addr_ = prev_addr;
        frame_left_ = left;
    }
    return produced;
}

bool
readTraceFile(const std::string &path, std::string &data, std::size_t &size,
              std::string &error)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        error = "cannot open '" + path + "' for reading";
        return false;
    }
    data.clear();
    char buf[1 << 16];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        data.append(buf, got);
    const bool ok = std::ferror(f) == 0;
    std::fclose(f);
    if (!ok) {
        error = "read error on '" + path + "'";
        return false;
    }
    size = data.size();
    data.append(kDecodeSlack, '\0');
    return true;
}

} // namespace coopsim::tracefile
