#include "tracefile/trace_format.hpp"

#include <bit>
#include <cstdio>
#include <cstring>

#include "store/result_store.hpp"

namespace coopsim::tracefile
{

namespace
{

inline void
appendU32(std::string &out, std::uint32_t value)
{
    char buf[4];
    buf[0] = static_cast<char>(value & 0xff);
    buf[1] = static_cast<char>((value >> 8) & 0xff);
    buf[2] = static_cast<char>((value >> 16) & 0xff);
    buf[3] = static_cast<char>((value >> 24) & 0xff);
    out.append(buf, 4);
}

inline bool
readU32(const std::string &data, std::size_t &pos, std::uint32_t &value)
{
    if (pos + 4 > data.size())
        return false;
    const auto *p = reinterpret_cast<const unsigned char *>(data.data() + pos);
    value = static_cast<std::uint32_t>(p[0]) |
            (static_cast<std::uint32_t>(p[1]) << 8) |
            (static_cast<std::uint32_t>(p[2]) << 16) |
            (static_cast<std::uint32_t>(p[3]) << 24);
    pos += 4;
    return true;
}

inline void
appendString(std::string &out, const std::string &s)
{
    appendVarint(out, s.size());
    out.append(s);
}

inline bool
readString(const std::string &data, std::size_t &pos, std::string &out)
{
    std::uint64_t len = 0;
    if (!readVarint(data, pos, len))
        return false;
    if (pos + len > data.size())
        return false;
    out.assign(data, pos, static_cast<std::size_t>(len));
    pos += static_cast<std::size_t>(len);
    return true;
}

} // namespace

void
appendVarint(std::string &out, std::uint64_t value)
{
    while (value >= 0x80) {
        out.push_back(static_cast<char>((value & 0x7f) | 0x80));
        value >>= 7;
    }
    out.push_back(static_cast<char>(value));
}

bool
readVarint(const std::string &data, std::size_t &pos, std::uint64_t &value)
{
    std::uint64_t result = 0;
    for (unsigned shift = 0; shift < 70; shift += 7) {
        if (pos >= data.size())
            return false;
        const auto byte =
            static_cast<unsigned char>(data[pos++]);
        result |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0) {
            value = result;
            return true;
        }
    }
    return false; // > 10 bytes: not a valid encoding of a u64
}

// ---------------------------------------------------------------------------
// Header

std::string
encodeHeader(const TraceHeader &header)
{
    std::string payload;
    appendVarint(payload, header.core);
    appendVarint(payload, header.num_cores);
    appendVarint(payload, header.seed);
    appendVarint(payload, header.llc_sets);
    appendVarint(payload, header.block_bytes);
    appendString(payload, header.workload);
    appendString(payload, header.app);
    appendString(payload, header.scale);

    std::string out;
    out.append(kTraceMagic, sizeof(kTraceMagic));
    appendU32(out, kTraceVersion);
    appendU32(out, static_cast<std::uint32_t>(payload.size()));
    out.append(payload);
    appendU32(out, store::crc32(payload.data(), payload.size()));
    return out;
}

bool
decodeHeader(const std::string &data, std::size_t &pos, TraceHeader &out,
             std::string &error)
{
    if (data.size() < sizeof(kTraceMagic) + 4) {
        error = "file too short for a trace header";
        return false;
    }
    if (std::memcmp(data.data(), kTraceMagic, sizeof(kTraceMagic)) != 0) {
        error = "bad magic (not a .cooptrace file)";
        return false;
    }
    pos = sizeof(kTraceMagic);
    std::uint32_t version = 0;
    if (!readU32(data, pos, version)) {
        error = "truncated version field";
        return false;
    }
    if (version != kTraceVersion) {
        error = "unsupported trace version " + std::to_string(version) +
                " (this build reads version " +
                std::to_string(kTraceVersion) + ")";
        return false;
    }
    std::uint32_t payload_bytes = 0;
    if (!readU32(data, pos, payload_bytes)) {
        error = "truncated header length field";
        return false;
    }
    if (pos + payload_bytes + 4 > data.size()) {
        error = "truncated header payload";
        return false;
    }
    const std::size_t payload_start = pos;
    const std::uint32_t want =
        store::crc32(data.data() + payload_start, payload_bytes);
    std::size_t crc_pos = payload_start + payload_bytes;
    std::uint32_t got = 0;
    readU32(data, crc_pos, got);
    if (want != got) {
        char buf[64];
        std::snprintf(buf, sizeof(buf),
                      "header CRC mismatch (stored %08x, computed %08x)",
                      got, want);
        error = buf;
        return false;
    }

    const std::string payload(data, payload_start, payload_bytes);
    std::size_t p = 0;
    std::uint64_t core = 0, num_cores = 0, seed = 0, sets = 0, block = 0;
    TraceHeader header;
    if (!readVarint(payload, p, core) || !readVarint(payload, p, num_cores) ||
        !readVarint(payload, p, seed) || !readVarint(payload, p, sets) ||
        !readVarint(payload, p, block) ||
        !readString(payload, p, header.workload) ||
        !readString(payload, p, header.app) ||
        !readString(payload, p, header.scale)) {
        error = "malformed header payload";
        return false;
    }
    header.core = static_cast<std::uint32_t>(core);
    header.num_cores = static_cast<std::uint32_t>(num_cores);
    header.seed = seed;
    header.llc_sets = static_cast<std::uint32_t>(sets);
    header.block_bytes = static_cast<std::uint32_t>(block);
    out = header;
    pos = crc_pos;
    return true;
}

// ---------------------------------------------------------------------------
// Frames

std::string
encodeFrame(const core::MemOp *ops, std::size_t count)
{
    std::string payload;
    payload.reserve(count * 6);
    std::uint64_t prev_addr = 0;
    for (std::size_t i = 0; i < count; ++i) {
        const core::MemOp &op = ops[i];
        const std::int64_t delta =
            static_cast<std::int64_t>(op.addr - prev_addr);
        const std::uint64_t z = zigzagEncode(delta);
        const std::size_t len = deltaLen(z);
        const unsigned flags =
            (static_cast<unsigned>(len) << 2) |
            (op.type == AccessType::Write ? 2u : 0u) |
            (op.llc_level ? 1u : 0u);
        payload.push_back(static_cast<char>(flags));
        appendVarint(payload, op.gap_insts);
        char bytes[8];
        std::memcpy(bytes, &z, 8); // little-endian hosts only
        payload.append(bytes, len);
        prev_addr = op.addr;
    }

    std::string out;
    appendVarint(out, count);
    appendU32(out, static_cast<std::uint32_t>(payload.size()));
    out.append(payload);
    appendU32(out, store::crc32(payload.data(), payload.size()));
    return out;
}

FrameStatus
decodeFrame(const std::string &data, std::size_t &pos,
            std::vector<core::MemOp> &out, std::string &error)
{
    out.clear();
    const std::size_t logical_end = data.size() - kDecodeSlack;
    if (pos >= logical_end)
        return FrameStatus::End;

    std::uint64_t count = 0;
    std::size_t p = pos;
    if (!readVarint(data, p, count) || p > logical_end) {
        error = "truncated frame op count";
        return FrameStatus::Corrupt;
    }
    std::uint32_t payload_bytes = 0;
    if (p + 4 > logical_end || !readU32(data, p, payload_bytes)) {
        error = "truncated frame length field";
        return FrameStatus::Corrupt;
    }
    const std::size_t payload_start = p;
    const std::size_t payload_end = payload_start + payload_bytes;
    if (payload_end + 4 > logical_end) {
        error = "truncated frame payload (expected " +
                std::to_string(payload_bytes) + " bytes + CRC)";
        return FrameStatus::Corrupt;
    }
    const std::uint32_t want =
        store::crc32(data.data() + payload_start, payload_bytes);
    std::size_t crc_pos = payload_end;
    std::uint32_t got = 0;
    readU32(data, crc_pos, got);
    if (want != got) {
        char buf[64];
        std::snprintf(buf, sizeof(buf),
                      "frame CRC mismatch (stored %08x, computed %08x)", got,
                      want);
        error = buf;
        return FrameStatus::Corrupt;
    }

    out.resize(static_cast<std::size_t>(count));
    const char *base = data.data();
    std::size_t q = payload_start;
    std::uint64_t prev_addr = 0;
    for (std::size_t i = 0; i < count; ++i) {
        if (q >= payload_end) {
            error = "frame payload ended before op " + std::to_string(i) +
                    " of " + std::to_string(count);
            return FrameStatus::Corrupt;
        }
        const unsigned flags = static_cast<unsigned char>(base[q++]);
        const std::size_t len = flags >> 2;
        if (len > 8) {
            error = "invalid delta length in op flags";
            return FrameStatus::Corrupt;
        }
        std::uint64_t gap = 0;
        if (!readVarint(data, q, gap) || q + len > payload_end) {
            error = "truncated op encoding inside frame payload";
            return FrameStatus::Corrupt;
        }
        // The kDecodeSlack file padding keeps this unconditional load
        // in bounds even for the last op of the last frame.
        std::uint64_t z;
        std::memcpy(&z, base + q, 8);
        z &= kLenMask[len];
        q += len;
        prev_addr += static_cast<std::uint64_t>(zigzagDecode(z));
        core::MemOp &op = out[i];
        op.gap_insts = gap;
        op.addr = prev_addr;
        op.type = (flags & 2u) ? AccessType::Write
                               : AccessType::Read;
        op.llc_level = (flags & 1u) != 0;
    }
    if (q != payload_end) {
        error = "frame payload has " + std::to_string(payload_end - q) +
                " trailing bytes after the last op";
        return FrameStatus::Corrupt;
    }
    pos = crc_pos;
    return FrameStatus::Ok;
}

bool
readTraceFile(const std::string &path, std::string &data, std::size_t &size,
              std::string &error)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        error = "cannot open '" + path + "' for reading";
        return false;
    }
    data.clear();
    char buf[1 << 16];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        data.append(buf, got);
    const bool ok = std::ferror(f) == 0;
    std::fclose(f);
    if (!ok) {
        error = "read error on '" + path + "'";
        return false;
    }
    size = data.size();
    data.append(kDecodeSlack, '\0');
    return true;
}

} // namespace coopsim::tracefile
