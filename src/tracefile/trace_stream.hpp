/**
 * @file
 * TraceFileStream: replays a `.cooptrace` file as a core::OpStream.
 *
 * The whole file is read up front (one allocation, no I/O in the hot
 * loop) and nextBatch() decodes ops directly into the caller's
 * buffer — for TraceCore that is the 64-entry op ring — with no
 * generator and no intermediate frame buffer in the loop. Every
 * frame's structure and CRC are verified once at construction, so a
 * truncated or corrupt file is fatal at open with a descriptive
 * message and the decode loop (the shared tracefile::FrameDecoder)
 * never touches a checksum; exhaustion of the trace before the
 * simulation's instruction budget is equally fatal rather than
 * feeding garbage ops.
 */

#ifndef COOPSIM_TRACEFILE_TRACE_STREAM_HPP
#define COOPSIM_TRACEFILE_TRACE_STREAM_HPP

#include <cstdint>
#include <string>

#include "core/op_stream.hpp"
#include "tracefile/trace_format.hpp"

namespace coopsim::tracefile
{

class TraceFileStream final : public core::OpStream
{
  public:
    /** Loads and validates @p path (fatal on open/format errors). */
    explicit TraceFileStream(std::string path);

    core::MemOp next() override;

    /**
     * Fills @p out with up to @p max ops, crossing frame boundaries
     * as needed. Never returns 0: running dry means TraceCore still
     * wanted ops the trace does not have, which is a fatal naming
     * the file and the op count it did deliver.
     */
    std::size_t nextBatch(core::MemOp *out, std::size_t max) override;

    const TraceHeader &header() const { return header_; }
    std::uint64_t deliveredOps() const { return delivered_; }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
    /** "trace file '<path>'", held for FrameDecoder fatals. */
    std::string label_;
    std::string data_;
    std::size_t logical_size_ = 0;
    TraceHeader header_;
    FrameDecoder decoder_;
    std::uint64_t delivered_ = 0;
};

} // namespace coopsim::tracefile

#endif // COOPSIM_TRACEFILE_TRACE_STREAM_HPP
