/**
 * @file
 * The operation-stream interface between workload generators and the
 * core model.
 *
 * A stream yields an infinite sequence of memory operations, each
 * preceded by a number of non-memory instructions. Streams may be
 * raw (addresses to run through the private L1) or L1-filtered
 * (`llc_level = true`), in which case the core model sends them
 * directly to the shared LLC — the synthetic SPEC profiles generate
 * L1-filtered streams because the paper's mechanisms all live at the
 * LLC (see DESIGN.md).
 *
 * A stream is a pure sequence: the ops produced depend only on the
 * stream's construction parameters, never on when or in what batch
 * sizes the consumer drains them. Both the batched driver (which
 * buffers ops ahead of execution) and `sim::StreamCache` (which
 * records one run's sequence and replays it into every other run
 * with the same stream identity) rely on this; a stream whose output
 * depended on consumption timing would break bit-identity under
 * either.
 */

#ifndef COOPSIM_CORE_OP_STREAM_HPP
#define COOPSIM_CORE_OP_STREAM_HPP

#include <cstddef>

#include "common/types.hpp"

namespace coopsim::core
{

/** One memory operation with its leading instruction gap. */
struct MemOp
{
    /** Non-memory instructions retired before this operation. */
    InstCount gap_insts = 0;
    /** Byte address accessed. */
    Addr addr = 0;
    AccessType type = AccessType::Read;
    /** True when the address stream is already L1-filtered. */
    bool llc_level = false;
};

/** Infinite generator of memory operations. */
class OpStream
{
  public:
    virtual ~OpStream() = default;

    /** Produces the next operation. Streams never end. */
    virtual MemOp next() = 0;

    /**
     * Fills out[0, max) with the next @p max operations and returns
     * the count produced (always @p max for the infinite streams in
     * this tree; a finite replay stream may return less).
     *
     * The core model consumes operations through this interface so one
     * virtual dispatch covers a whole batch. Generation must not depend
     * on consumption timing: a stream is a pure sequence, and the core
     * buffers ops ahead of executing them. The default forwards to
     * next(); generators override it with a non-virtual inner loop.
     */
    virtual std::size_t nextBatch(MemOp *out, std::size_t max)
    {
        for (std::size_t i = 0; i < max; ++i) {
            out[i] = next();
        }
        return max;
    }
};

} // namespace coopsim::core

#endif // COOPSIM_CORE_OP_STREAM_HPP
