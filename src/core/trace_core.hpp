/**
 * @file
 * Approximate out-of-order core model.
 *
 * Substitutes for the paper's Marss-x86 4-wide, 7-stage OoO core
 * (Table 2). The model captures the properties the evaluation depends
 * on — the rate at which each core presents accesses to the shared LLC
 * and the stall cycles caused by LLC/DRAM latency under bounded
 * memory-level parallelism — without simulating the x86 front end:
 *
 *  - non-memory instructions retire at the issue width;
 *  - memory operations access the private L1 (2-cycle, pipelined and
 *    hence hidden on hits) unless the stream is L1-filtered;
 *  - misses go to the shared LLC and enter an outstanding-miss window;
 *    the core stalls when the miss window exceeds the MSHR capacity or
 *    when the oldest outstanding miss falls out of the reorder-buffer
 *    window (ROB-occupancy stall — the classic analytic OoO model);
 *  - dirty L1 victims are written back to the LLC.
 */

#ifndef COOPSIM_CORE_TRACE_CORE_HPP
#define COOPSIM_CORE_TRACE_CORE_HPP

#include <array>
#include <deque>

#include "cache/cache.hpp"
#include "common/logging.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "core/op_stream.hpp"
#include "llc/shared_cache.hpp"

namespace coopsim::core
{

/** Core model parameters (paper Table 2). */
struct CoreConfig
{
    /** Issue/retire width. */
    std::uint32_t width = 4;
    /** Reorder buffer entries. */
    std::uint32_t rob = 128;
    /** Private data cache. */
    cache::CacheGeometry l1{32ull << 10, 4, 64};
    /** L1 hit latency (pipelined; exposed only on dependence stalls,
     *  which the base CPI of the workload profiles absorbs). */
    Tick l1_latency = 2;
    /** Outstanding LLC misses the core can sustain (L1 MSHRs). */
    std::uint32_t mshr_entries = 16;
};

/** Per-core performance counters. */
struct CoreStats
{
    stats::Counter l1_hits;
    stats::Counter l1_misses;
    stats::Counter llc_reads;
    stats::Counter llc_writes;
};

/**
 * One simulated core executing an operation stream.
 */
class TraceCore
{
  public:
    /**
     * @param id     Core identifier (used for LLC attribution).
     * @param config Core parameters.
     * @param llc    The shared LLC this core accesses on L1 misses.
     * @param stream Workload generator feeding the core.
     */
    TraceCore(CoreId id, const CoreConfig &config, llc::Llc &llc,
              OpStream &stream);

    /**
     * Executes one operation bundle (gap instructions + one memory
     * operation), advancing the core's local clock.
     */
    void step();

    /**
     * Executes operation bundles back to back until the local clock
     * reaches @p cycle_bound or the retired-instruction count reaches
     * @p inst_bound, and returns the number of bundles executed.
     *
     * Always executes at least one bundle (the driver only dispatches
     * a quantum to the arbitration winner, which the per-op loop would
     * have stepped unconditionally), and both bounds are checked after
     * each bundle — exactly the post-step checks of the per-op driver,
     * so a quantum ends on the same bundle the per-op loop would have
     * re-arbitrated or quota-marked on. State after
     * stepQuantum(bound, insts) is bit-identical to calling step() in
     * a loop with those exit checks.
     */
    std::uint64_t stepQuantum(Cycle cycle_bound, InstCount inst_bound);

    /**
     * Fast-forward jump for op sampling (src/sampling/): advances the
     * retired count by @p insts and the clock by @p cycles without
     * consuming ops or touching the memory hierarchy — the op stream
     * stays where it is, so the next detail window resumes on the op
     * the last one stopped before. Outstanding fills ride across the
     * jump with their remaining latency intact — in-flight stall debt
     * belongs to the next detail window.
     */
    void fastForward(InstCount insts, Cycle cycles);

    /** Local clock. Advances monotonically with step(). */
    Cycle cycle() const { return cycle_; }

    /** Instructions retired since construction. */
    InstCount retired() const { return retired_; }

    /**
     * Starts the measurement window here: IPC and instruction quotas
     * are computed from this point (used after cache warm-up).
     */
    void startMeasurement();

    /** Instructions retired inside the measurement window. */
    InstCount measuredInsts() const { return retired_ - measure_insts_; }

    /** Cycles elapsed inside the measurement window. */
    Cycle measuredCycles() const { return cycle_ - measure_cycle_; }

    /**
     * Records the moment the core reached its instruction quota; IPC
     * is reported over [measurement start, quota].
     */
    void markQuotaReached();
    bool quotaMarked() const { return quota_cycle_ != kCycleMax; }

    /** IPC over the measurement window (up to the quota if marked). */
    double ipc() const;

    CoreId id() const { return id_; }
    const CoreStats &stats() const { return stats_; }

  private:
    /** Ops fetched per virtual OpStream::nextBatch() call. */
    static constexpr std::size_t kOpBatch = 64;

    void retireGap(InstCount gap);
    void drainWindowTo(InstCount inst_horizon);
    void issueLlcAccess(Addr addr, AccessType type);
    /** One operation bundle (the body shared by step/stepQuantum). */
    void executeOp(const MemOp &op);
    /** Next op from the ring buffer, refilling it when drained. */
    const MemOp &nextOp()
    {
        if (op_pos_ == op_len_) {
            op_len_ = stream_.nextBatch(op_buf_.data(), kOpBatch);
            COOPSIM_ASSERT(op_len_ > 0, "op stream ended");
            op_pos_ = 0;
        }
        return op_buf_[op_pos_++];
    }

    CoreId id_;
    CoreConfig config_;
    llc::Llc &llc_;
    OpStream &stream_;
    cache::L1Cache l1_;

    /**
     * Ring buffer of pre-generated operations: the stream pays one
     * virtual dispatch (and one generator-loop setup) per kOpBatch
     * ops instead of per op. Safe because streams are pure sequences
     * (see OpStream::nextBatch).
     */
    std::array<MemOp, kOpBatch> op_buf_{};
    std::size_t op_pos_ = 0;
    std::size_t op_len_ = 0;

    Cycle cycle_ = 0;
    InstCount retired_ = 0;
    /** Fractional-cycle accumulator for width-limited retirement. */
    std::uint64_t width_carry_ = 0;

    /** Outstanding LLC requests: (instruction number, data ready). */
    struct Outstanding
    {
        InstCount inst_no;
        Cycle ready;
    };
    std::deque<Outstanding> window_;

    InstCount measure_insts_ = 0;
    Cycle measure_cycle_ = 0;
    InstCount quota_insts_ = 0;
    Cycle quota_cycle_ = kCycleMax;

    CoreStats stats_;
};

} // namespace coopsim::core

#endif // COOPSIM_CORE_TRACE_CORE_HPP
