#include "core/trace_core.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace coopsim::core
{

TraceCore::TraceCore(CoreId id, const CoreConfig &config,
                     llc::Llc &llc, OpStream &stream)
    : id_(id), config_(config), llc_(llc), stream_(stream),
      l1_(config.l1)
{
    COOPSIM_ASSERT(config.width > 0, "zero-width core");
    COOPSIM_ASSERT(config.rob > 0, "empty ROB");
    COOPSIM_ASSERT(config.mshr_entries > 0, "no MSHRs");
}

void
TraceCore::drainWindowTo(InstCount inst_horizon)
{
    // Retire completed requests; stall on any outstanding request whose
    // instruction has fallen more than a ROB's worth behind.
    while (!window_.empty()) {
        const Outstanding &oldest = window_.front();
        if (oldest.ready <= cycle_) {
            window_.pop_front();
            continue;
        }
        if (inst_horizon >= oldest.inst_no + config_.rob) {
            cycle_ = std::max(cycle_, oldest.ready);
            window_.pop_front();
            continue;
        }
        break;
    }
}

void
TraceCore::retireGap(InstCount gap)
{
    // ROB-limited: the gap cannot retire past outstanding misses that
    // would fall out of the window.
    drainWindowTo(retired_ + gap);
    retired_ += gap;
    // Width-limited retirement with a fractional carry.
    width_carry_ += gap;
    cycle_ += width_carry_ / config_.width;
    width_carry_ %= config_.width;
}

void
TraceCore::issueLlcAccess(Addr addr, AccessType type)
{
    if (type == AccessType::Write) {
        stats_.llc_writes.inc();
    } else {
        stats_.llc_reads.inc();
    }
    const llc::LlcAccess res = llc_.access(id_, addr, type, cycle_);

    // Track the fill as an outstanding request subject to MSHR limits.
    if (window_.size() >= config_.mshr_entries) {
        // Structural stall: wait for the oldest fill.
        cycle_ = std::max(cycle_, window_.front().ready);
        window_.pop_front();
    }
    if (res.ready_at > cycle_) {
        window_.push_back({retired_, res.ready_at});
    }
}

void
TraceCore::executeOp(const MemOp &op)
{
    retireGap(op.gap_insts);

    // The memory instruction itself.
    retireGap(1);

    if (op.llc_level) {
        issueLlcAccess(op.addr, op.type);
        return;
    }

    const cache::L1Result l1 = l1_.access(op.addr, op.type);
    if (l1.hit) {
        stats_.l1_hits.inc();
        // Pipelined L1 hit: latency hidden at this abstraction level.
        return;
    }
    stats_.l1_misses.inc();
    if (l1.writeback) {
        // Dirty victim updates the LLC; the core does not wait for it.
        llc_.access(id_, l1.writeback_addr, AccessType::Write, cycle_);
        stats_.llc_writes.inc();
    }
    issueLlcAccess(op.addr, op.type);
}

void
TraceCore::step()
{
    executeOp(nextOp());
}

std::uint64_t
TraceCore::stepQuantum(Cycle cycle_bound, InstCount inst_bound)
{
    std::uint64_t ops = 0;
    do {
        executeOp(nextOp());
        ++ops;
    } while (cycle_ < cycle_bound && retired_ < inst_bound);
    return ops;
}

void
TraceCore::fastForward(InstCount insts, Cycle cycles)
{
    // Outstanding fills ride across the jump: their remaining latency
    // is stall debt the next detail window still owes (dropping them
    // would forgive every miss in flight at a window boundary — at
    // high core counts, where fill latencies exceed the window
    // length, that forgives most misses the window issued). Position
    // within the ROB is preserved by advancing inst_no with the jump.
    for (Outstanding &o : window_) {
        if (o.ready > cycle_) {
            o.ready += cycles;
        }
        o.inst_no += insts;
    }
    retired_ += insts;
    cycle_ += cycles;
}

void
TraceCore::startMeasurement()
{
    measure_insts_ = retired_;
    measure_cycle_ = cycle_;
    quota_cycle_ = kCycleMax;
    quota_insts_ = 0;
}

void
TraceCore::markQuotaReached()
{
    if (quota_cycle_ == kCycleMax) {
        quota_cycle_ = cycle_;
        quota_insts_ = retired_;
    }
}

double
TraceCore::ipc() const
{
    const Cycle end_cycle =
        quota_cycle_ != kCycleMax ? quota_cycle_ : cycle_;
    const InstCount end_insts =
        quota_cycle_ != kCycleMax ? quota_insts_ : retired_;
    const Cycle cycles = end_cycle - measure_cycle_;
    if (cycles == 0) {
        return 0.0;
    }
    return static_cast<double>(end_insts - measure_insts_) /
           static_cast<double>(cycles);
}

} // namespace coopsim::core
