/**
 * @file
 * StreamCache: the process-wide op-stream memo.
 *
 * Every cell of a sweep used to regenerate its synthetic streams from
 * scratch at ~74 ns/op, even though a 231-run fig05 sweep shares a
 * handful of distinct streams across schemes, partitioners, banking
 * and sampling modes. The cache generates each distinct stream once,
 * encodes it into immutable in-memory `.cooptrace` frames (the same
 * codec the trace-file subsystem uses — no file round-trip), and
 * replays it everywhere else through tracefile::FrameDecoder at
 * ~4 ns/op.
 *
 * Keying: (workload, app-slot, seed, scale, num_cores). `workload` is
 * the app profile occupying the slot (or "trace:<group>" for
 * file-backed sets), NOT the group name: SyntheticStream content
 * depends only on the profile, the slot's address-space index, the
 * derived seed and the scaled geometry, so two groups sharing an app
 * at the same slot replay one buffer — and a solo run shares its
 * group's slot-0 stream outright.
 *
 * Concurrency follows RunExecutor's RunKey memo: an entry is a
 * shared_future, the first opener builds it, every other opener
 * (across executor threads) waits and replays. Buffers grow lazily in
 * fixed-size segments under a per-entry lock, so a run that needs
 * more ops than any before it extends the shared buffer in place
 * while shorter runs replay concurrently.
 *
 * The memo is host machinery, not simulation identity: it is wired
 * through the SystemConfig::stream_factory hook, RunKey never sees
 * it, and memoized results are bit-identical to generator-backed ones
 * (record→replay losslessness is covered by the tracefile tests; the
 * stream-memo tests re-check it differentially end to end).
 */

#ifndef COOPSIM_SIM_STREAM_CACHE_HPP
#define COOPSIM_SIM_STREAM_CACHE_HPP

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "sim/system.hpp"
#include "tracefile/trace_format.hpp"

namespace coopsim::sim
{

namespace detail
{
struct StreamEntry;
}

class StreamCache
{
  public:
    /** Identity of one memoized stream. */
    struct Key
    {
        /** App profile name; "trace:<group>" for file-backed sets. */
        std::string workload;
        /** Core slot the stream feeds (= its address-space index). */
        std::uint32_t slot = 0;
        /** The run seed (per-stream seeds derive as seed + slot*7919). */
        std::uint64_t seed = 0;
        /** Scale-registry name (phase lengths scale with the epoch). */
        std::string scale;
        /** Topology row the run selected (fixes the LLC geometry). */
        std::uint32_t num_cores = 0;

        bool operator==(const Key &) const = default;
    };

    struct KeyHash
    {
        std::size_t operator()(const Key &key) const;
    };

    /** Host-side knobs; see configure(). */
    struct Config
    {
        /** False (--no-stream-memo) restores per-run generation. */
        bool enabled = true;
        /** Resident-buffer budget; 0 means defaultBudgetBytes(). */
        std::size_t budget_bytes = 0;
        /** Non-empty (--trace-cache=DIR): spill generated streams to
         *  `.cooptrace` files in DIR at exit and warm-start from them,
         *  so supervised shard workers stop regenerating shared
         *  streams per process. */
        std::string spill_dir;
    };

    /** Cumulative counters, printed as the `# streams:` stderr line. */
    struct Stats
    {
        /** Entries built by running a generator. */
        std::uint64_t streams_generated = 0;
        /** open() calls served from an existing entry. */
        std::uint64_t streams_replayed = 0;
        /** Entries dropped by the LRU to stay under budget. */
        std::uint64_t streams_evicted = 0;
        /** Entries materialized from disk (--trace-cache warm starts
         *  and --trace-dir replay files). */
        std::uint64_t streams_loaded = 0;
    };

    /** The process-wide instance (same pattern as RunExecutor). */
    static StreamCache &instance();

    /** Default budget: one Bench-scale stream (~4 MB) per core of the
     *  largest topology row — enough that no fig sweep ever evicts. */
    static std::size_t defaultBudgetBytes();

    /** Installs CLI configuration; existing entries are kept. */
    void configure(const Config &config);
    Config config() const;
    bool enabled() const;

    /**
     * The StreamFactory executeRun() installs for synthetic (non
     * trace:) workloads: routes every per-core stream request of a
     * run through open() under (profile, slot, @p run_seed, @p scale,
     * @p topology_cores).
     */
    StreamFactory factory(std::uint64_t run_seed, RunScale scale,
                          std::uint32_t topology_cores);

    /**
     * Opens the memoized stream for @p key, building it from a
     * SyntheticStream(profile, geometry, slot, stream_seed) on first
     * use. The returned stream replays from op 0 and extends the
     * shared buffer on demand; identity mismatches between @p key and
     * an existing entry are descriptive fatals (they would mean two
     * different op sequences under one key).
     */
    std::unique_ptr<core::OpStream> open(const Key &key,
                                         const trace::AppProfile &profile,
                                         const trace::StreamGeometry &geometry,
                                         std::uint64_t stream_seed);

    /**
     * Opens the memoized replay of the trace file at @p path (read,
     * CRC-validated and header-checked against @p expected once per
     * process, however many runs replay it). File-backed entries
     * cannot be extended: exhaustion is fatal, exactly as for a
     * direct TraceFileStream.
     */
    std::unique_ptr<core::OpStream>
    openTraceFile(const Key &key, const std::string &path,
                  const tracefile::TraceHeader &expected);

    Stats stats() const;

    /** Prints the `# streams:` line to @p out once (idempotent); a
     *  no-op while every counter is zero. */
    void printStats(std::FILE *out);

    /** Resident (budget-accounted) encoded bytes and entry count. */
    std::size_t residentBytes() const;
    std::size_t residentStreams() const;

    /** Drops every entry (streams already handed out keep working). */
    void clear();

    /** Zeroes the counters and re-arms printStats() (tests/benches). */
    void resetStats();

    /** Spills dirty generator-backed entries to the configured
     *  --trace-cache directory now (also runs at process exit). */
    void spillNow();

  private:
    using EntryPtr = std::shared_ptr<detail::StreamEntry>;
    using EntryFuture = std::shared_future<EntryPtr>;

    struct Slot
    {
        EntryFuture future;
        /** Monotonic LRU clock value of the last open()/extension. */
        std::uint64_t touch = 0;
    };

    StreamCache() = default;

    EntryPtr getOrCreate(const Key &key,
                         const std::function<EntryPtr()> &build,
                         bool &created);

    /** Budget accounting hook for lazy segment extension: re-finds
     *  @p entry under the cache lock (it may have been evicted) and,
     *  if still resident, charges @p delta and evicts over budget. */
    void noteExtend(detail::StreamEntry *entry, std::size_t delta);

    /** Evicts ready LRU entries (never @p keep) until under budget.
     *  Caller holds mu_. */
    void evictOverBudget(const detail::StreamEntry *keep);

    std::size_t budgetBytes() const; // caller holds mu_

    std::string spillPath(const Key &key) const;
    /** Loads a spill file into @p entry; false (after a warning for
     *  anything but a missing file) when it should be regenerated. */
    bool tryWarmStart(detail::StreamEntry &entry, const std::string &path);

    friend struct detail::StreamEntry;

    mutable std::mutex mu_;
    Config config_;
    std::unordered_map<Key, Slot, KeyHash> entries_;
    std::uint64_t touch_clock_ = 0;
    std::size_t resident_bytes_ = 0;
    Stats stats_;
    bool stats_printed_ = false;
    bool exit_hook_registered_ = false;
};

} // namespace coopsim::sim

#endif // COOPSIM_SIM_STREAM_CACHE_HPP
