#include "sim/system.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <optional>

#include <cmath>

#include "api/registry.hpp"
#include "common/logging.hpp"
#include "sampling/set_sampled.hpp"
#include "sim/min_clock_tree.hpp"

namespace coopsim::sim
{

namespace
{

/**
 * Applies the scale preset.
 *
 * Reduced scales shrink instructions, epochs AND the LLC set count by
 * the same factor, keeping the associativity (the partitioning
 * dimension) untouched. This keeps the run a faithful miniature: the
 * fixed costs of a reconfiguration (one line per set per moved way,
 * covering every set to complete a takeover) stay in the same
 * proportion to the work executed as at paper scale. Way counts,
 * utility curves and MPKI are scale-invariant by construction.
 */
void
applyScale(SystemConfig &config, RunScale scale)
{
    auto resize_sets = [&config](std::uint64_t sets) {
        cache::CacheGeometry &g = config.llc.geometry;
        g.size_bytes = sets * g.ways * g.block_bytes;
    };
    switch (scale) {
      case RunScale::Paper:
        config.insts_per_app = 1'000'000'000;
        config.epoch_cycles = 5'000'000;
        config.warmup_insts = 2'000'000;
        config.llc.stale_transition_cycles = 20'000'000;
        break;
      case RunScale::Bench:
        config.insts_per_app = 8'000'000;
        config.epoch_cycles = 300'000;
        config.warmup_insts = 1'200'000;
        config.llc.flush_series_bin = 30'000;
        config.llc.umon_sample_period = 4;
        config.llc.stale_transition_cycles = 1'200'000;
        resize_sets(512);
        break;
      case RunScale::Test:
        config.insts_per_app = 400'000;
        config.epoch_cycles = 60'000;
        config.warmup_insts = 100'000;
        config.llc.flush_series_bin = 10'000;
        config.llc.umon_sample_period = 2;
        config.llc.stale_transition_cycles = 240'000;
        resize_sets(128);
        break;
    }
}

} // namespace

const std::vector<Topology> &
topologyTable()
{
    static const std::vector<Topology> table = {
        {2, 2ull << 20, 8, 15},   // paper Table 2
        {4, 4ull << 20, 16, 20},  // paper Table 2
        {8, 8ull << 20, 32, 25},  // extrapolated (1 MB, 4 ways/core)
        {16, 16ull << 20, 64, 30},
        // Banked rows: associativity saturates at the 64-bit mask
        // width, so capacity keeps scaling at 1 MB/core by slicing the
        // LLC into banks (each bank keeps the full 64 ways).
        {32, 32ull << 20, 64, 35, 2},
        {64, 64ull << 20, 64, 40, 4},
    };
    return table;
}

SystemConfig
makeSystemConfig(std::uint32_t num_cores, const std::string &scheme,
                 RunScale scale)
{
    if (num_cores == 0) {
        COOPSIM_FATAL("system with no cores");
    }
    const std::vector<Topology> &table = topologyTable();
    const Topology *row = nullptr;
    for (const Topology &t : table) {
        if (t.max_cores >= num_cores) {
            row = &t;
            break;
        }
    }
    if (row == nullptr) {
        COOPSIM_FATAL("no topology for ", num_cores,
                      " cores (largest table row serves ",
                      table.back().max_cores, ")");
    }
    // Way partitioning happens per slice: every bank keeps the row's
    // full way count, so the constraint is per-slice ways vs. total
    // cores regardless of how many banks the row splits into.
    if (row->llc_ways < num_cores) {
        COOPSIM_FATAL("topology row for ", row->max_cores,
                      " cores provides ", row->llc_ways,
                      " ways per slice (", row->banks,
                      " bank(s)): way partitioning needs per-slice "
                      "ways >= the ", num_cores, " cores sharing it");
    }

    SystemConfig config;
    config.scheme = scheme;
    config.num_cores = num_cores;
    config.llc.geometry = {row->llc_bytes, row->llc_ways, 64};
    config.llc.num_cores = num_cores;
    config.llc.hit_latency = row->hit_latency;
    config.llc.banks = row->banks;
    applyScale(config, scale);
    return config;
}

System::System(const SystemConfig &config,
               std::vector<trace::AppProfile> apps)
    : config_(config), profiles_(std::move(apps)), dram_(config.dram)
{
    if (profiles_.size() != config_.num_cores) {
        COOPSIM_FATAL("config expects ", config_.num_cores,
                      " applications, got ", profiles_.size());
    }
    llc::LlcConfig lc = config_.llc;
    lc.num_cores = config_.num_cores;
    lc.seed = config_.seed;
    sampling_ = sampling::resolve(config_.sampling);
    if (sampling_.set_period > 1) {
        llc_ = std::make_unique<sampling::SetSampledLlc>(
            lc, sampling_.set_period, dram_,
            [this](const llc::LlcConfig &inner) {
                return api::makeLlcByName(config_.scheme, inner, dram_);
            });
    } else {
        llc_ = api::makeLlcByName(config_.scheme, lc, dram_);
    }

    // Stream geometry stays the FULL set count even when the LLC is
    // set-sampled: the op streams must be byte-identical to the exact
    // run's so the estimator samples the same workload.
    trace::StreamGeometry sg;
    sg.llc_sets = lc.geometry.numSets();
    sg.block_bytes = lc.geometry.block_bytes;

    // Profiles state phase lengths at paper scale; keep phases spanning
    // the same number of epochs at reduced scales.
    const double phase_factor =
        static_cast<double>(config_.epoch_cycles) / 5'000'000.0;

    for (std::uint32_t c = 0; c < config_.num_cores; ++c) {
        trace::AppProfile scaled = profiles_[c];
        if (scaled.phase_insts != 0) {
            scaled.phase_insts = std::max<InstCount>(
                1, static_cast<InstCount>(
                       static_cast<double>(scaled.phase_insts) *
                       phase_factor));
        }
        const std::uint64_t stream_seed = config_.seed + c * 7919;
        if (config_.stream_factory) {
            streams_.push_back(
                config_.stream_factory(c, scaled, sg, stream_seed));
            COOPSIM_ASSERT(streams_.back() != nullptr,
                           "stream factory returned no stream for core ", c);
        } else {
            streams_.push_back(std::make_unique<trace::SyntheticStream>(
                scaled, sg, c, stream_seed));
        }
        cores_.push_back(std::make_unique<core::TraceCore>(
            c, config_.core, *llc_, *streams_[c]));
    }
}

System::~System() = default;

RunResult
System::run()
{
    const std::uint32_t n = config_.num_cores;
    const bool batched = config_.driver == DriverMode::Batched;
    constexpr InstCount kNoInstBound =
        std::numeric_limits<InstCount>::max();
    constexpr Cycle kNoCycleBound = std::numeric_limits<Cycle>::max();
    driver_stats_ = DriverStats{};

    // The global-order event loop picks the laggard core before every
    // quantum, so min_core() dominates the per-op driver. Core clocks
    // are mirrored into a dense local array (no unique_ptr chase per
    // comparison) and only the stepped core's mirror is refreshed. The
    // ubiquitous two-core configuration reduces to a single compare;
    // larger systems keep the minimum in a tournament tree (O(log n)
    // per update, ties to the lowest index — bit-identical to a linear
    // scan).
    std::vector<Cycle> clock(n);
    for (std::uint32_t c = 0; c < n; ++c) {
        clock[c] = cores_[c]->cycle();
    }
    // The tree exists only when it is consulted; the 1/2-core paths
    // never touch it (and must not — it would go stale).
    std::optional<MinClockTree> tree;
    if (n > 2) {
        tree.emplace(clock);
    }
    auto min_core = [&]() -> std::uint32_t {
        if (n == 2) {
            return clock[1] < clock[0] ? 1u : 0u;
        }
        if (n == 1) {
            return 0u;
        }
        return tree->minIndex();
    };
    // Per-op reference driver: one bundle per arbitration.
    auto step = [&](std::uint32_t c) {
        cores_[c]->step();
        clock[c] = cores_[c]->cycle();
        if (tree) {
            tree->update(c, clock[c]);
        }
        driver_stats_.quanta += 1;
        driver_stats_.steps += 1;
    };
    // Batched driver: the arbitration winner c may run without
    // re-consulting the clock structure for as long as the per-op
    // arbiter would keep picking it — while its clock stays strictly
    // below the runner-up's, or equal when c has the lower index (the
    // scan's tie rule). Folding the tie rule into a half-open bound
    // gives one comparison per op: run while clock[c] < bound.
    auto quantum_bound = [&](std::uint32_t c) -> Cycle {
        if (n == 1) {
            return kCycleMax; // no contender; epochs bound the quantum
        }
        Cycle second;
        std::uint32_t second_index;
        if (n == 2) {
            second_index = c ^ 1u;
            second = clock[second_index];
        } else {
            const MinClockTree::Second runner_up = tree->secondBest();
            second = runner_up.clock;
            second_index = runner_up.index;
        }
        return (c < second_index && second != kCycleMax) ? second + 1
                                                         : second;
    };
    auto step_quantum = [&](std::uint32_t c, Cycle bound,
                            InstCount inst_bound) {
        driver_stats_.steps +=
            cores_[c]->stepQuantum(bound, inst_bound);
        driver_stats_.quanta += 1;
        clock[c] = cores_[c]->cycle();
        if (tree) {
            tree->update(c, clock[c]);
        }
    };

    // ---- Warm-up: run until every core retired warmup_insts. ------------
    // A set-sampled run warms a 1/S-capacity array, which fills S×
    // faster, so warm-up shrinks by the same factor — the argument
    // applyScale already applies when it miniaturises the set count.
    const InstCount warmup_insts =
        sampling_.set_period > 1
            ? std::max<InstCount>(
                  1, config_.warmup_insts / sampling_.set_period)
            : config_.warmup_insts;
    bool warm = warmup_insts == 0;
    while (!warm) {
        const std::uint32_t c = min_core();
        if (batched) {
            // Only c's warm status can change inside its quantum.
            // While any *other* core is still cold the per-op loop
            // cannot exit, so the quantum may run to its clock bound;
            // once every other core is warm it must stop exactly at
            // the step where c crosses the threshold — the per-op
            // loop's exit point.
            bool others_warm = true;
            for (std::uint32_t o = 0; o < n && others_warm; ++o) {
                others_warm =
                    o == c || cores_[o]->retired() >= warmup_insts;
            }
            step_quantum(c, quantum_bound(c),
                         others_warm ? warmup_insts : kNoInstBound);
        } else {
            step(c);
        }
        warm = true;
        for (std::uint32_t o = 0; o < n; ++o) {
            warm = warm && cores_[o]->retired() >= warmup_insts;
        }
    }
    Cycle now = 0;
    for (std::uint32_t c = 0; c < n; ++c) {
        now = std::max(now, cores_[c]->cycle());
        cores_[c]->startMeasurement();
    }
    llc_->resetStats(now);
    dram_.resetStats();

    // ---- Measurement: run to the per-app quota; keep contending. --------
    Cycle next_epoch =
        ((now / config_.epoch_cycles) + 1) * config_.epoch_cycles;
    std::uint32_t done = 0;
    std::vector<bool> finished(n, false);
    // Absolute retired-instruction quota targets: stepQuantum's
    // instruction bound stops a quantum on exactly the bundle where
    // measuredInsts() crosses insts_per_app, so the quota mark below
    // records the same (cycle, instruction) point the per-op loop's
    // post-step check would have.
    std::vector<InstCount> quota_target(n);
    for (std::uint32_t c = 0; c < n; ++c) {
        quota_target[c] = cores_[c]->retired() + config_.insts_per_app;
    }

    // ---- Sampling windows (src/sampling/): when the run samples,
    // the measurement phase is cut into windows on the GLOBAL clock —
    // detail regions every core simulates exactly, alternating with
    // fast-forward gaps every core jumps over analytically (clock
    // advanced to the next detail region, retired instructions
    // extrapolated at the closed window's IPC; no ops generated, no
    // LLC traffic). Anchoring the schedule on shared cycle boundaries
    // keeps all cores in detail simultaneously, so the contention a
    // detail window observes (DRAM queueing, shared-LLC interference)
    // is representative — per-core instruction windows would let one
    // core measure while its rivals skip, biasing IPC high. Set-only
    // runs keep ff at 0 and use the windows purely as variance
    // samples. The window period derives from the warmup CPI (a pure
    // function of simulated state, so the schedule is deterministic
    // and identical across driver modes).
    window_ipc_.assign(n, stats::Average{});
    detail_insts_.assign(n, 0);
    sample_windows_ = 0;
    const bool windows = sampling_.windows > 0;
    const bool ff_enabled = windows && sampling_.fast_forward;
    // Epoch-aligned anchor: the window schedule tiles each epoch the
    // same way, so detail coverage per epoch is uniform.
    const Cycle anchor =
        (now / config_.epoch_cycles) * config_.epoch_cycles;
    Cycle period_cycles = 1;
    Cycle detail_cycles = 1;
    std::vector<InstCount> win_start_insts(n, 0);
    std::vector<Cycle> win_start_cycle(n, 0);
    std::vector<Cycle> detail_end(n, kNoCycleBound);
    // Once every core has closed the window ending at gap_boundary,
    // the shared contention state (DRAM queues, LLC bank ports) is
    // shifted over the fast-forward gap — see carryBacklog().
    Cycle gap_boundary = 0;
    std::uint32_t gap_jumpers = 0;
    if (windows) {
        double cpi_est = 0.0;
        for (std::uint32_t c = 0; c < n; ++c) {
            cpi_est += static_cast<double>(cores_[c]->cycle()) /
                       static_cast<double>(
                           std::max<InstCount>(1, cores_[c]->retired()));
        }
        cpi_est /= static_cast<double>(n);
        const double expected_cycles =
            static_cast<double>(config_.insts_per_app) * cpi_est;
        // The period is locked to an integer divisor of the epoch so
        // every partitioning epoch contains the same number of detail
        // regions: a free-running period lets whole epochs fall into
        // fast-forward gaps, and an epoch whose UMON counters saw no
        // traffic reads every app as idle — the takeover logic then
        // strips ways from exactly the fast apps the estimator is
        // supposed to measure.
        const double target_per_epoch =
            sampling_.windows *
            static_cast<double>(config_.epoch_cycles) /
            std::max(1.0, expected_cycles);
        const Cycle per_epoch = std::max<Cycle>(
            1, std::min<Cycle>(
                   config_.epoch_cycles / 16,
                   static_cast<Cycle>(std::llround(target_per_epoch))));
        period_cycles =
            std::max<Cycle>(16, config_.epoch_cycles / per_epoch);
        detail_cycles =
            ff_enabled
                ? std::max<Cycle>(1,
                                  period_cycles / sampling::kDetailDivisor)
                : period_cycles;
        detail_cycles_ = ff_enabled ? detail_cycles : 0;
        for (std::uint32_t c = 0; c < n; ++c) {
            win_start_insts[c] = cores_[c]->retired();
            win_start_cycle[c] = cores_[c]->cycle();
            // First detail end strictly ahead of this core's clock
            // (a core may start mid-window; the partial stretch to
            // the next boundary is simulated in detail).
            const Cycle pos = cores_[c]->cycle() - anchor;
            Cycle first_end =
                anchor + (pos / period_cycles) * period_cycles +
                detail_cycles;
            if (first_end <= cores_[c]->cycle()) {
                first_end += period_cycles;
            }
            detail_end[c] = first_end;
        }
    }

    while (done < n) {
        const std::uint32_t c = min_core();

        // The epoch boundary fires when global time (the minimum core
        // clock) crosses it; every other core is already past it.
        if (clock[c] >= next_epoch) {
            llc_->epoch(next_epoch);
            next_epoch += config_.epoch_cycles;
            continue;
        }

        if (batched) {
            const InstCount inst_bound =
                finished[c] ? kNoInstBound : quota_target[c];
            Cycle cycle_bound = std::min(quantum_bound(c), next_epoch);
            if (windows) {
                cycle_bound = std::min(cycle_bound, detail_end[c]);
            }
            step_quantum(c, cycle_bound, inst_bound);
        } else {
            step(c);
        }
        if (windows && cores_[c]->cycle() >= detail_end[c]) {
            const InstCount w_insts =
                cores_[c]->retired() - win_start_insts[c];
            const Cycle w_cycles =
                cores_[c]->cycle() - win_start_cycle[c];
            detail_insts_[c] += w_insts;
            if (!finished[c] && w_insts > 0 && w_cycles > 0) {
                window_ipc_[c].sample(static_cast<double>(w_insts) /
                                      static_cast<double>(w_cycles));
                ++sample_windows_;
            }
            const double ipc_w =
                w_cycles > 0 && w_insts > 0
                    ? static_cast<double>(w_insts) /
                          static_cast<double>(w_cycles)
                    : 1.0;
            if (ff_enabled) {
                // The boundary this core just crossed. When the last
                // core closes it, no further access can be issued
                // before the gap, so the queue backlog pending at the
                // boundary is carried over to the next detail region
                // — without this every window starts against drained
                // queues and measures a transient, biasing IPC high
                // exactly where contention matters most.
                const Cycle boundary = detail_end[c];
                if (boundary != gap_boundary) {
                    gap_boundary = boundary;
                    gap_jumpers = 0;
                }
                if (++gap_jumpers == n && period_cycles > detail_cycles) {
                    const Cycle gap = period_cycles - detail_cycles;
                    dram_.carryBacklog(boundary, gap);
                    llc_->carryBacklog(boundary, gap);
                }
                // Jump the clock to the next detail-region start and
                // extrapolate the skipped instructions at the closed
                // window's IPC. A core short of quota caps the
                // extrapolation so the jump lands exactly on the
                // quota boundary instead of crossing it (the analytic
                // mirror of the quantum's instruction bound).
                const Cycle pos = cores_[c]->cycle() - anchor;
                const Cycle next_start =
                    anchor + (pos / period_cycles + 1) * period_cycles;
                Cycle jump = next_start - cores_[c]->cycle();
                auto ff_n = static_cast<InstCount>(std::llround(
                    static_cast<double>(jump) * ipc_w));
                if (!finished[c] &&
                    quota_target[c] - cores_[c]->retired() < ff_n) {
                    ff_n = quota_target[c] - cores_[c]->retired();
                    jump = std::max<Cycle>(
                        1, static_cast<Cycle>(std::llround(
                               static_cast<double>(ff_n) / ipc_w)));
                }
                cores_[c]->fastForward(ff_n, jump);
                clock[c] = cores_[c]->cycle();
                if (tree) {
                    tree->update(c, clock[c]);
                }
            }
            // Next detail end strictly ahead of the (possibly jumped)
            // clock: the containing window's end, or — when the clock
            // sits in a fast-forward gap (a quota-capped jump) — the
            // next window's; the gap remainder is then simulated in
            // detail, which only adds accuracy.
            const Cycle pos = cores_[c]->cycle() - anchor;
            Cycle next_end =
                anchor + (pos / period_cycles) * period_cycles +
                detail_cycles;
            if (next_end <= cores_[c]->cycle()) {
                next_end += period_cycles;
            }
            detail_end[c] = next_end;
            win_start_insts[c] = cores_[c]->retired();
            win_start_cycle[c] = cores_[c]->cycle();
        }
        if (!finished[c] &&
            cores_[c]->measuredInsts() >= config_.insts_per_app) {
            cores_[c]->markQuotaReached();
            finished[c] = true;
            ++done;
        }
    }

    // Account the final partial detail windows so collect()'s op
    // scale factors cover every simulated instruction, and record the
    // phase totals (quota + post-quota) those factors divide.
    if (windows) {
        phase_insts_.assign(n, 0);
        for (std::uint32_t c = 0; c < n; ++c) {
            detail_insts_[c] += cores_[c]->retired() - win_start_insts[c];
            phase_insts_[c] = cores_[c]->retired() -
                              (quota_target[c] - config_.insts_per_app);
        }
    }

    return collect();
}

RunResult
System::collect()
{
    const std::uint32_t n = config_.num_cores;
    RunResult result;
    Cycle end = 0;
    for (std::uint32_t c = 0; c < n; ++c) {
        end = std::max(end, cores_[c]->cycle());
    }
    llc_->integrateStatic(end);
    result.total_cycles = end;

    // ---- Sampling scale-up (src/sampling/sampling.hpp): a set-
    // sampled LLC saw 1/S of the traffic, an op-sampled run simulated
    // only the detail fraction of each window, so counters scale by S
    // and by measured/detail instructions respectively. Means and
    // decision counts (avg ways probed, transfer length, epochs,
    // repartitions) are left alone. Exact runs take every factor = 1.
    const double set_scale =
        sampling_.set_period > 1
            ? static_cast<double>(sampling_.set_period)
            : 1.0;
    std::vector<double> op_scale(n, 1.0);
    double op_scale_total = 1.0;
    if (sampling_.windows > 0) {
        std::uint64_t measured_total = 0;
        std::uint64_t detail_total = 0;
        for (std::uint32_t c = 0; c < n; ++c) {
            const std::uint64_t phase = phase_insts_[c];
            if (detail_insts_[c] > 0 && phase > 0) {
                op_scale[c] = static_cast<double>(phase) /
                              static_cast<double>(detail_insts_[c]);
            }
            measured_total += phase;
            detail_total += detail_insts_[c];
        }
        if (detail_total > 0) {
            op_scale_total = static_cast<double>(measured_total) /
                             static_cast<double>(detail_total);
        }
    }
    const double run_scale = set_scale * op_scale_total;
    const auto scaled = [](std::uint64_t v, double f) {
        return f == 1.0 ? v
                        : static_cast<std::uint64_t>(std::llround(
                              static_cast<double>(v) * f));
    };
    const double bias_rel = sampling::biasAllowance(
        sampling_.set_period, sampling_.fast_forward,
        static_cast<double>(config_.llc.geometry.numSets()) /
            static_cast<double>(sampling_.set_period),
        static_cast<double>(detail_cycles_));

    for (std::uint32_t c = 0; c < n; ++c) {
        AppResult app;
        app.name = profiles_[c].name;
        app.ipc = cores_[c]->ipc();
        app.insts = cores_[c]->measuredInsts();
        app.cycles = cores_[c]->measuredCycles();
        const auto &cs = llc_->coreStats(c);
        const double app_scale = set_scale * op_scale[c];
        app.llc_accesses = scaled(cs.accesses.value(), app_scale);
        app.llc_hits = scaled(cs.hits.value(), app_scale);
        app.llc_misses = scaled(cs.misses.value(), app_scale);
        app.mpki = app.insts > 0
                       ? 1000.0 * static_cast<double>(app.llc_misses) /
                             static_cast<double>(app.insts)
                       : 0.0;
        if (sampling_.windows > 0) {
            app.ipc_ci = sampling::kCiZ * window_ipc_[c].stdError() +
                         bias_rel * app.ipc;
        }
        result.apps.push_back(std::move(app));
    }
    result.sample_windows = sample_windows_;

    // Access-driven totals scale by the full run factor; capacity-
    // driven flush totals scale by the set factor only (a 1/S array
    // holds 1/S of the lines a repartition can flush, and op sampling
    // does not shrink the array). Static energy scales by S alone:
    // the 1/S array leaks 1/S as much over the same wall-cycles.
    const energy::EnergyTotals totals = llc_->energyTotals();
    result.dynamic_energy_nj = totals.dynamicPaper() * run_scale;
    result.data_energy_nj = totals.data_nj * run_scale;
    result.static_energy_nj = totals.static_nj * set_scale;
    result.avg_ways_probed = llc_->avgWaysProbed();

    const auto &ev = llc_->takeoverEvents();
    result.donor_hits = scaled(ev.donor_hits.value(), run_scale);
    result.donor_misses = scaled(ev.donor_misses.value(), run_scale);
    result.recipient_hits = scaled(ev.recipient_hits.value(), run_scale);
    result.recipient_misses =
        scaled(ev.recipient_misses.value(), run_scale);

    const auto &durations = llc_->transferDurations();
    result.completed_transfers = durations.size();
    if (!durations.empty()) {
        // Left fold in container order, like the hand-rolled loop it
        // replaced — the mean stays bit-identical.
        const double sum =
            std::accumulate(durations.begin(), durations.end(), 0.0);
        result.avg_transfer_cycles =
            sum / static_cast<double>(durations.size());
    }
    result.flushed_lines = scaled(llc_->flushedLines(), set_scale);
    result.repartitions = llc_->repartitions();
    result.epochs = llc_->epochsRun();

    const auto &series = llc_->flushSeries();
    result.flush_series_bin = series.binWidth();
    for (std::size_t b = 0; b < series.bins(); ++b) {
        result.flush_series.push_back(scaled(series.bin(b), set_scale));
    }

    // DRAM read/writeback counts are already at the full set rate even
    // under set sampling (the decorator replays unsampled misses and
    // writebacks into the memory model), so they scale by the op
    // factor alone. Flushes come only from the inner 1/S array.
    result.dram_reads =
        scaled(dram_.stats().reads.value(), op_scale_total);
    result.dram_writebacks =
        scaled(dram_.stats().writebacks.value(), op_scale_total);
    result.dram_flushes =
        scaled(dram_.stats().flushes.value(), set_scale);

    // Like the DRAM counters, port conflicts see the full-rate stream
    // under set sampling (every access claims its bank port), so the
    // op factor is the only scale-up they need.
    result.bank_conflicts =
        scaled(llc_->bankConflicts(), op_scale_total);
    result.bank_conflict_cycles =
        scaled(llc_->bankConflictCycles(), op_scale_total);
    return result;
}

} // namespace coopsim::sim
