#include "sim/system.hpp"

#include <algorithm>
#include <optional>

#include "api/registry.hpp"
#include "common/logging.hpp"
#include "sim/min_clock_tree.hpp"

namespace coopsim::sim
{

namespace
{

/**
 * Applies the scale preset.
 *
 * Reduced scales shrink instructions, epochs AND the LLC set count by
 * the same factor, keeping the associativity (the partitioning
 * dimension) untouched. This keeps the run a faithful miniature: the
 * fixed costs of a reconfiguration (one line per set per moved way,
 * covering every set to complete a takeover) stay in the same
 * proportion to the work executed as at paper scale. Way counts,
 * utility curves and MPKI are scale-invariant by construction.
 */
void
applyScale(SystemConfig &config, RunScale scale)
{
    auto resize_sets = [&config](std::uint64_t sets) {
        cache::CacheGeometry &g = config.llc.geometry;
        g.size_bytes = sets * g.ways * g.block_bytes;
    };
    switch (scale) {
      case RunScale::Paper:
        config.insts_per_app = 1'000'000'000;
        config.epoch_cycles = 5'000'000;
        config.warmup_insts = 2'000'000;
        config.llc.stale_transition_cycles = 20'000'000;
        break;
      case RunScale::Bench:
        config.insts_per_app = 8'000'000;
        config.epoch_cycles = 300'000;
        config.warmup_insts = 1'200'000;
        config.llc.flush_series_bin = 30'000;
        config.llc.umon_sample_period = 4;
        config.llc.stale_transition_cycles = 1'200'000;
        resize_sets(512);
        break;
      case RunScale::Test:
        config.insts_per_app = 400'000;
        config.epoch_cycles = 60'000;
        config.warmup_insts = 100'000;
        config.llc.flush_series_bin = 10'000;
        config.llc.umon_sample_period = 2;
        config.llc.stale_transition_cycles = 240'000;
        resize_sets(128);
        break;
    }
}

} // namespace

const std::vector<Topology> &
topologyTable()
{
    static const std::vector<Topology> table = {
        {2, 2ull << 20, 8, 15},   // paper Table 2
        {4, 4ull << 20, 16, 20},  // paper Table 2
        {8, 8ull << 20, 32, 25},  // extrapolated (1 MB, 4 ways/core)
        {16, 16ull << 20, 64, 30},
    };
    return table;
}

SystemConfig
makeSystemConfig(std::uint32_t num_cores, const std::string &scheme,
                 RunScale scale)
{
    if (num_cores == 0) {
        COOPSIM_FATAL("system with no cores");
    }
    const std::vector<Topology> &table = topologyTable();
    const Topology *row = nullptr;
    for (const Topology &t : table) {
        if (t.max_cores >= num_cores) {
            row = &t;
            break;
        }
    }
    if (row == nullptr) {
        COOPSIM_FATAL("no topology for ", num_cores,
                      " cores (largest table row serves ",
                      table.back().max_cores, ")");
    }
    COOPSIM_ASSERT(row->llc_ways >= num_cores,
                   "topology row with fewer ways than cores");

    SystemConfig config;
    config.scheme = scheme;
    config.num_cores = num_cores;
    config.llc.geometry = {row->llc_bytes, row->llc_ways, 64};
    config.llc.num_cores = num_cores;
    config.llc.hit_latency = row->hit_latency;
    applyScale(config, scale);
    return config;
}

System::System(const SystemConfig &config,
               std::vector<trace::AppProfile> apps)
    : config_(config), profiles_(std::move(apps)), dram_(config.dram)
{
    if (profiles_.size() != config_.num_cores) {
        COOPSIM_FATAL("config expects ", config_.num_cores,
                      " applications, got ", profiles_.size());
    }
    llc::LlcConfig lc = config_.llc;
    lc.num_cores = config_.num_cores;
    lc.seed = config_.seed;
    llc_ = api::makeLlcByName(config_.scheme, lc, dram_);

    trace::StreamGeometry sg;
    sg.llc_sets = lc.geometry.numSets();
    sg.block_bytes = lc.geometry.block_bytes;

    // Profiles state phase lengths at paper scale; keep phases spanning
    // the same number of epochs at reduced scales.
    const double phase_factor =
        static_cast<double>(config_.epoch_cycles) / 5'000'000.0;

    for (std::uint32_t c = 0; c < config_.num_cores; ++c) {
        trace::AppProfile scaled = profiles_[c];
        if (scaled.phase_insts != 0) {
            scaled.phase_insts = std::max<InstCount>(
                1, static_cast<InstCount>(
                       static_cast<double>(scaled.phase_insts) *
                       phase_factor));
        }
        streams_.push_back(std::make_unique<trace::SyntheticStream>(
            scaled, sg, c, config_.seed + c * 7919));
        cores_.push_back(std::make_unique<core::TraceCore>(
            c, config_.core, *llc_, *streams_[c]));
    }
}

System::~System() = default;

RunResult
System::run()
{
    const std::uint32_t n = config_.num_cores;

    // The global-order event loop picks the laggard core before every
    // step, so min_core() dominates the driver. Core clocks are mirrored
    // into a dense local array (no unique_ptr chase per comparison) and
    // only the stepped core's mirror is refreshed. The ubiquitous
    // two-core configuration reduces to a single compare; larger
    // systems keep the minimum in a tournament tree (O(log n) per
    // step, ties to the lowest index — bit-identical to a linear scan).
    std::vector<Cycle> clock(n);
    for (std::uint32_t c = 0; c < n; ++c) {
        clock[c] = cores_[c]->cycle();
    }
    // The tree exists only when it is consulted; the 1/2-core paths
    // never touch it (and must not — it would go stale).
    std::optional<MinClockTree> tree;
    if (n > 2) {
        tree.emplace(clock);
    }
    auto min_core = [&]() -> std::uint32_t {
        if (n == 2) {
            return clock[1] < clock[0] ? 1u : 0u;
        }
        if (n == 1) {
            return 0u;
        }
        return tree->minIndex();
    };
    auto step = [&](std::uint32_t c) {
        cores_[c]->step();
        clock[c] = cores_[c]->cycle();
        if (tree) {
            tree->update(c, clock[c]);
        }
    };

    // ---- Warm-up: run until every core retired warmup_insts. ------------
    bool warm = config_.warmup_insts == 0;
    while (!warm) {
        step(min_core());
        warm = true;
        for (std::uint32_t c = 0; c < n; ++c) {
            warm = warm && cores_[c]->retired() >= config_.warmup_insts;
        }
    }
    Cycle now = 0;
    for (std::uint32_t c = 0; c < n; ++c) {
        now = std::max(now, cores_[c]->cycle());
        cores_[c]->startMeasurement();
    }
    llc_->resetStats(now);
    dram_.resetStats();

    // ---- Measurement: run to the per-app quota; keep contending. --------
    Cycle next_epoch =
        ((now / config_.epoch_cycles) + 1) * config_.epoch_cycles;
    std::uint32_t done = 0;
    std::vector<bool> finished(n, false);

    while (done < n) {
        const std::uint32_t c = min_core();

        // The epoch boundary fires when global time (the minimum core
        // clock) crosses it; every other core is already past it.
        if (clock[c] >= next_epoch) {
            llc_->epoch(next_epoch);
            next_epoch += config_.epoch_cycles;
            continue;
        }

        step(c);
        if (!finished[c] &&
            cores_[c]->measuredInsts() >= config_.insts_per_app) {
            cores_[c]->markQuotaReached();
            finished[c] = true;
            ++done;
        }
    }

    // ---- Collect. --------------------------------------------------------
    RunResult result;
    Cycle end = 0;
    for (std::uint32_t c = 0; c < n; ++c) {
        end = std::max(end, cores_[c]->cycle());
    }
    llc_->integrateStatic(end);
    result.total_cycles = end;

    for (std::uint32_t c = 0; c < n; ++c) {
        AppResult app;
        app.name = profiles_[c].name;
        app.ipc = cores_[c]->ipc();
        app.insts = cores_[c]->measuredInsts();
        app.cycles = cores_[c]->measuredCycles();
        const auto &cs = llc_->coreStats(c);
        app.llc_accesses = cs.accesses.value();
        app.llc_hits = cs.hits.value();
        app.llc_misses = cs.misses.value();
        app.mpki = app.insts > 0
                       ? 1000.0 * static_cast<double>(app.llc_misses) /
                             static_cast<double>(app.insts)
                       : 0.0;
        result.apps.push_back(std::move(app));
    }

    const auto &totals = llc_->energy().totals();
    result.dynamic_energy_nj = totals.dynamicPaper();
    result.data_energy_nj = totals.data_nj;
    result.static_energy_nj = totals.static_nj;
    result.avg_ways_probed = llc_->energy().avgWaysProbed();

    const auto &ev = llc_->takeoverEvents();
    result.donor_hits = ev.donor_hits.value();
    result.donor_misses = ev.donor_misses.value();
    result.recipient_hits = ev.recipient_hits.value();
    result.recipient_misses = ev.recipient_misses.value();

    const auto &durations = llc_->transferDurations();
    result.completed_transfers = durations.size();
    if (!durations.empty()) {
        double sum = 0.0;
        for (const double d : durations) {
            sum += d;
        }
        result.avg_transfer_cycles =
            sum / static_cast<double>(durations.size());
    }
    result.flushed_lines = llc_->flushedLines();
    result.repartitions = llc_->repartitions();
    result.epochs = llc_->epochsRun();

    const auto &series = llc_->flushSeries();
    result.flush_series_bin = series.binWidth();
    for (std::size_t b = 0; b < series.bins(); ++b) {
        result.flush_series.push_back(series.bin(b));
    }

    result.dram_reads = dram_.stats().reads.value();
    result.dram_writebacks = dram_.stats().writebacks.value();
    result.dram_flushes = dram_.stats().flushes.value();
    return result;
}

} // namespace coopsim::sim
