#include "sim/system.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <optional>

#include "api/registry.hpp"
#include "common/logging.hpp"
#include "sim/min_clock_tree.hpp"

namespace coopsim::sim
{

namespace
{

/**
 * Applies the scale preset.
 *
 * Reduced scales shrink instructions, epochs AND the LLC set count by
 * the same factor, keeping the associativity (the partitioning
 * dimension) untouched. This keeps the run a faithful miniature: the
 * fixed costs of a reconfiguration (one line per set per moved way,
 * covering every set to complete a takeover) stay in the same
 * proportion to the work executed as at paper scale. Way counts,
 * utility curves and MPKI are scale-invariant by construction.
 */
void
applyScale(SystemConfig &config, RunScale scale)
{
    auto resize_sets = [&config](std::uint64_t sets) {
        cache::CacheGeometry &g = config.llc.geometry;
        g.size_bytes = sets * g.ways * g.block_bytes;
    };
    switch (scale) {
      case RunScale::Paper:
        config.insts_per_app = 1'000'000'000;
        config.epoch_cycles = 5'000'000;
        config.warmup_insts = 2'000'000;
        config.llc.stale_transition_cycles = 20'000'000;
        break;
      case RunScale::Bench:
        config.insts_per_app = 8'000'000;
        config.epoch_cycles = 300'000;
        config.warmup_insts = 1'200'000;
        config.llc.flush_series_bin = 30'000;
        config.llc.umon_sample_period = 4;
        config.llc.stale_transition_cycles = 1'200'000;
        resize_sets(512);
        break;
      case RunScale::Test:
        config.insts_per_app = 400'000;
        config.epoch_cycles = 60'000;
        config.warmup_insts = 100'000;
        config.llc.flush_series_bin = 10'000;
        config.llc.umon_sample_period = 2;
        config.llc.stale_transition_cycles = 240'000;
        resize_sets(128);
        break;
    }
}

} // namespace

const std::vector<Topology> &
topologyTable()
{
    static const std::vector<Topology> table = {
        {2, 2ull << 20, 8, 15},   // paper Table 2
        {4, 4ull << 20, 16, 20},  // paper Table 2
        {8, 8ull << 20, 32, 25},  // extrapolated (1 MB, 4 ways/core)
        {16, 16ull << 20, 64, 30},
        // Banked rows: associativity saturates at the 64-bit mask
        // width, so capacity keeps scaling at 1 MB/core by slicing the
        // LLC into banks (each bank keeps the full 64 ways).
        {32, 32ull << 20, 64, 35, 2},
        {64, 64ull << 20, 64, 40, 4},
    };
    return table;
}

SystemConfig
makeSystemConfig(std::uint32_t num_cores, const std::string &scheme,
                 RunScale scale)
{
    if (num_cores == 0) {
        COOPSIM_FATAL("system with no cores");
    }
    const std::vector<Topology> &table = topologyTable();
    const Topology *row = nullptr;
    for (const Topology &t : table) {
        if (t.max_cores >= num_cores) {
            row = &t;
            break;
        }
    }
    if (row == nullptr) {
        COOPSIM_FATAL("no topology for ", num_cores,
                      " cores (largest table row serves ",
                      table.back().max_cores, ")");
    }
    // Way partitioning happens per slice: every bank keeps the row's
    // full way count, so the constraint is per-slice ways vs. total
    // cores regardless of how many banks the row splits into.
    if (row->llc_ways < num_cores) {
        COOPSIM_FATAL("topology row for ", row->max_cores,
                      " cores provides ", row->llc_ways,
                      " ways per slice (", row->banks,
                      " bank(s)): way partitioning needs per-slice "
                      "ways >= the ", num_cores, " cores sharing it");
    }

    SystemConfig config;
    config.scheme = scheme;
    config.num_cores = num_cores;
    config.llc.geometry = {row->llc_bytes, row->llc_ways, 64};
    config.llc.num_cores = num_cores;
    config.llc.hit_latency = row->hit_latency;
    config.llc.banks = row->banks;
    applyScale(config, scale);
    return config;
}

System::System(const SystemConfig &config,
               std::vector<trace::AppProfile> apps)
    : config_(config), profiles_(std::move(apps)), dram_(config.dram)
{
    if (profiles_.size() != config_.num_cores) {
        COOPSIM_FATAL("config expects ", config_.num_cores,
                      " applications, got ", profiles_.size());
    }
    llc::LlcConfig lc = config_.llc;
    lc.num_cores = config_.num_cores;
    lc.seed = config_.seed;
    llc_ = api::makeLlcByName(config_.scheme, lc, dram_);

    trace::StreamGeometry sg;
    sg.llc_sets = lc.geometry.numSets();
    sg.block_bytes = lc.geometry.block_bytes;

    // Profiles state phase lengths at paper scale; keep phases spanning
    // the same number of epochs at reduced scales.
    const double phase_factor =
        static_cast<double>(config_.epoch_cycles) / 5'000'000.0;

    for (std::uint32_t c = 0; c < config_.num_cores; ++c) {
        trace::AppProfile scaled = profiles_[c];
        if (scaled.phase_insts != 0) {
            scaled.phase_insts = std::max<InstCount>(
                1, static_cast<InstCount>(
                       static_cast<double>(scaled.phase_insts) *
                       phase_factor));
        }
        const std::uint64_t stream_seed = config_.seed + c * 7919;
        if (config_.stream_factory) {
            streams_.push_back(
                config_.stream_factory(c, scaled, sg, stream_seed));
            COOPSIM_ASSERT(streams_.back() != nullptr,
                           "stream factory returned no stream for core ", c);
        } else {
            streams_.push_back(std::make_unique<trace::SyntheticStream>(
                scaled, sg, c, stream_seed));
        }
        cores_.push_back(std::make_unique<core::TraceCore>(
            c, config_.core, *llc_, *streams_[c]));
    }
}

System::~System() = default;

RunResult
System::run()
{
    const std::uint32_t n = config_.num_cores;
    const bool batched = config_.driver == DriverMode::Batched;
    constexpr InstCount kNoInstBound =
        std::numeric_limits<InstCount>::max();
    driver_stats_ = DriverStats{};

    // The global-order event loop picks the laggard core before every
    // quantum, so min_core() dominates the per-op driver. Core clocks
    // are mirrored into a dense local array (no unique_ptr chase per
    // comparison) and only the stepped core's mirror is refreshed. The
    // ubiquitous two-core configuration reduces to a single compare;
    // larger systems keep the minimum in a tournament tree (O(log n)
    // per update, ties to the lowest index — bit-identical to a linear
    // scan).
    std::vector<Cycle> clock(n);
    for (std::uint32_t c = 0; c < n; ++c) {
        clock[c] = cores_[c]->cycle();
    }
    // The tree exists only when it is consulted; the 1/2-core paths
    // never touch it (and must not — it would go stale).
    std::optional<MinClockTree> tree;
    if (n > 2) {
        tree.emplace(clock);
    }
    auto min_core = [&]() -> std::uint32_t {
        if (n == 2) {
            return clock[1] < clock[0] ? 1u : 0u;
        }
        if (n == 1) {
            return 0u;
        }
        return tree->minIndex();
    };
    // Per-op reference driver: one bundle per arbitration.
    auto step = [&](std::uint32_t c) {
        cores_[c]->step();
        clock[c] = cores_[c]->cycle();
        if (tree) {
            tree->update(c, clock[c]);
        }
        driver_stats_.quanta += 1;
        driver_stats_.steps += 1;
    };
    // Batched driver: the arbitration winner c may run without
    // re-consulting the clock structure for as long as the per-op
    // arbiter would keep picking it — while its clock stays strictly
    // below the runner-up's, or equal when c has the lower index (the
    // scan's tie rule). Folding the tie rule into a half-open bound
    // gives one comparison per op: run while clock[c] < bound.
    auto quantum_bound = [&](std::uint32_t c) -> Cycle {
        if (n == 1) {
            return kCycleMax; // no contender; epochs bound the quantum
        }
        Cycle second;
        std::uint32_t second_index;
        if (n == 2) {
            second_index = c ^ 1u;
            second = clock[second_index];
        } else {
            const MinClockTree::Second runner_up = tree->secondBest();
            second = runner_up.clock;
            second_index = runner_up.index;
        }
        return (c < second_index && second != kCycleMax) ? second + 1
                                                         : second;
    };
    auto step_quantum = [&](std::uint32_t c, Cycle bound,
                            InstCount inst_bound) {
        driver_stats_.steps +=
            cores_[c]->stepQuantum(bound, inst_bound);
        driver_stats_.quanta += 1;
        clock[c] = cores_[c]->cycle();
        if (tree) {
            tree->update(c, clock[c]);
        }
    };

    // ---- Warm-up: run until every core retired warmup_insts. ------------
    bool warm = config_.warmup_insts == 0;
    while (!warm) {
        const std::uint32_t c = min_core();
        if (batched) {
            // Only c's warm status can change inside its quantum.
            // While any *other* core is still cold the per-op loop
            // cannot exit, so the quantum may run to its clock bound;
            // once every other core is warm it must stop exactly at
            // the step where c crosses the threshold — the per-op
            // loop's exit point.
            bool others_warm = true;
            for (std::uint32_t o = 0; o < n && others_warm; ++o) {
                others_warm =
                    o == c ||
                    cores_[o]->retired() >= config_.warmup_insts;
            }
            step_quantum(c, quantum_bound(c),
                         others_warm ? config_.warmup_insts
                                     : kNoInstBound);
        } else {
            step(c);
        }
        warm = true;
        for (std::uint32_t o = 0; o < n; ++o) {
            warm = warm && cores_[o]->retired() >= config_.warmup_insts;
        }
    }
    Cycle now = 0;
    for (std::uint32_t c = 0; c < n; ++c) {
        now = std::max(now, cores_[c]->cycle());
        cores_[c]->startMeasurement();
    }
    llc_->resetStats(now);
    dram_.resetStats();

    // ---- Measurement: run to the per-app quota; keep contending. --------
    Cycle next_epoch =
        ((now / config_.epoch_cycles) + 1) * config_.epoch_cycles;
    std::uint32_t done = 0;
    std::vector<bool> finished(n, false);
    // Absolute retired-instruction quota targets: stepQuantum's
    // instruction bound stops a quantum on exactly the bundle where
    // measuredInsts() crosses insts_per_app, so the quota mark below
    // records the same (cycle, instruction) point the per-op loop's
    // post-step check would have.
    std::vector<InstCount> quota_target(n);
    for (std::uint32_t c = 0; c < n; ++c) {
        quota_target[c] = cores_[c]->retired() + config_.insts_per_app;
    }

    while (done < n) {
        const std::uint32_t c = min_core();

        // The epoch boundary fires when global time (the minimum core
        // clock) crosses it; every other core is already past it.
        if (clock[c] >= next_epoch) {
            llc_->epoch(next_epoch);
            next_epoch += config_.epoch_cycles;
            continue;
        }

        if (batched) {
            step_quantum(c, std::min(quantum_bound(c), next_epoch),
                         finished[c] ? kNoInstBound : quota_target[c]);
        } else {
            step(c);
        }
        if (!finished[c] &&
            cores_[c]->measuredInsts() >= config_.insts_per_app) {
            cores_[c]->markQuotaReached();
            finished[c] = true;
            ++done;
        }
    }

    return collect();
}

RunResult
System::collect()
{
    const std::uint32_t n = config_.num_cores;
    RunResult result;
    Cycle end = 0;
    for (std::uint32_t c = 0; c < n; ++c) {
        end = std::max(end, cores_[c]->cycle());
    }
    llc_->integrateStatic(end);
    result.total_cycles = end;

    for (std::uint32_t c = 0; c < n; ++c) {
        AppResult app;
        app.name = profiles_[c].name;
        app.ipc = cores_[c]->ipc();
        app.insts = cores_[c]->measuredInsts();
        app.cycles = cores_[c]->measuredCycles();
        const auto &cs = llc_->coreStats(c);
        app.llc_accesses = cs.accesses.value();
        app.llc_hits = cs.hits.value();
        app.llc_misses = cs.misses.value();
        app.mpki = app.insts > 0
                       ? 1000.0 * static_cast<double>(app.llc_misses) /
                             static_cast<double>(app.insts)
                       : 0.0;
        result.apps.push_back(std::move(app));
    }

    const energy::EnergyTotals totals = llc_->energyTotals();
    result.dynamic_energy_nj = totals.dynamicPaper();
    result.data_energy_nj = totals.data_nj;
    result.static_energy_nj = totals.static_nj;
    result.avg_ways_probed = llc_->avgWaysProbed();

    const auto &ev = llc_->takeoverEvents();
    result.donor_hits = ev.donor_hits.value();
    result.donor_misses = ev.donor_misses.value();
    result.recipient_hits = ev.recipient_hits.value();
    result.recipient_misses = ev.recipient_misses.value();

    const auto &durations = llc_->transferDurations();
    result.completed_transfers = durations.size();
    if (!durations.empty()) {
        // Left fold in container order, like the hand-rolled loop it
        // replaced — the mean stays bit-identical.
        const double sum =
            std::accumulate(durations.begin(), durations.end(), 0.0);
        result.avg_transfer_cycles =
            sum / static_cast<double>(durations.size());
    }
    result.flushed_lines = llc_->flushedLines();
    result.repartitions = llc_->repartitions();
    result.epochs = llc_->epochsRun();

    const auto &series = llc_->flushSeries();
    result.flush_series_bin = series.binWidth();
    for (std::size_t b = 0; b < series.bins(); ++b) {
        result.flush_series.push_back(series.bin(b));
    }

    result.dram_reads = dram_.stats().reads.value();
    result.dram_writebacks = dram_.stats().writebacks.value();
    result.dram_flushes = dram_.stats().flushes.value();

    result.bank_conflicts = llc_->bankConflicts();
    result.bank_conflict_cycles = llc_->bankConflictCycles();
    return result;
}

} // namespace coopsim::sim
