/**
 * @file
 * The top-level simulated system: N cores with private L1s, a shared
 * partitioned LLC, a banked DRAM, and the interleaved event loop that
 * the paper's methodology implies (Section 3): cores advance in global
 * cycle order; partitioning decisions fire every epoch; statistics are
 * collected from the end of warm-up until each application reaches its
 * instruction quota; applications keep running (and contending) until
 * the last one finishes, exactly as the paper describes.
 */

#ifndef COOPSIM_SIM_SYSTEM_HPP
#define COOPSIM_SIM_SYSTEM_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "core/trace_core.hpp"
#include "llc/schemes.hpp"
#include "mem/dram.hpp"
#include "sampling/sampling.hpp"
#include "trace/generator.hpp"

namespace coopsim::sim
{

/** Scale presets: paper-faithful or a proportionally shrunk run. */
enum class RunScale
{
    /** Fast runs for tests/benches: 6 M instructions per app, 300 k-
     *  cycle epochs (same epoch:instruction ratio as the paper). */
    Bench,
    /** The paper's scale: 1 B instructions per app, 5 M-cycle epochs.
     *  Hours of host time; selectable via --full on every bench. */
    Paper,
    /** Tiny runs for unit tests. */
    Test,
};

/**
 * How System::run() drives the cores.
 *
 * Batched is the production path: the laggard core runs a bounded
 * quantum (up to the runner-up clock / the next epoch boundary) per
 * arbitration, so the min-clock structure is consulted once per
 * quantum instead of once per op. PerOp is the reference
 * one-op-per-arbitration loop it replaced — retained because the two
 * are bit-identical by construction and tests/benches hold the batched
 * path to that (see docs/ARCHITECTURE.md, "The intra-run hot path").
 */
enum class DriverMode : std::uint8_t
{
    Batched,
    PerOp,
};

/**
 * Builds core @p c's op stream. The profile passed in already carries
 * the scale-adjusted phase lengths, and @p seed is the per-stream seed
 * (run seed + c * 7919) — a factory that ignores both (e.g. trace
 * replay) must validate them against what it serves instead.
 */
using StreamFactory = std::function<std::unique_ptr<core::OpStream>(
    std::uint32_t c, const trace::AppProfile &profile,
    const trace::StreamGeometry &geometry, std::uint64_t seed)>;

/** Complete configuration of one simulation. */
struct SystemConfig
{
    /** Registry name of the LLC management scheme (api::schemeRegistry;
     *  built-ins: "unmanaged", "fairshare", "ucp", "cpe", "coop"). */
    std::string scheme = "coop";
    std::uint32_t num_cores = 2;
    llc::LlcConfig llc;
    mem::DramConfig dram;
    core::CoreConfig core;
    /** Partitioning/monitoring epoch (paper: 5 M cycles). */
    Tick epoch_cycles = 5'000'000;
    /** Instruction quota per application. */
    InstCount insts_per_app = 1'000'000'000;
    /** Cache/branch warm-up before measurement starts. */
    InstCount warmup_insts = 2'000'000;
    std::uint64_t seed = 42;
    /**
     * Event-loop flavour. NOT part of the simulation identity (RunKey
     * carries no driver field): both modes produce bit-identical
     * results, and the property tests in tests/test_hotpath.cpp keep
     * them that way.
     */
    DriverMode driver = DriverMode::Batched;
    /**
     * Where ops come from. Empty (the default) builds the synthetic
     * SPEC-profile generator; the tracefile layer installs a factory
     * that replays recorded `.cooptrace` streams, and `--record` one
     * that tees the generator through a TraceWriter. Like `driver`,
     * NOT part of the simulation identity: a replayed stream must
     * reproduce the generated one bit for bit (the tracefile tests
     * hold it to that), so RunKey carries no stream field.
     */
    StreamFactory stream_factory;
    /**
     * Statistical sampling estimator (src/sampling/). Unlike `driver`
     * this IS part of the simulation identity — sampled results are
     * estimates with a confidence interval, not bit-reproductions of
     * the exact run — so RunKey carries the mode and both knobs.
     */
    sampling::Params sampling;
};

/**
 * One row of the topology table: the LLC organisation a core count
 * runs on. The 2- and 4-core rows are the paper's Table 2; the larger
 * rows extrapolate its scaling rule (double capacity and associativity
 * per doubling of cores, +5 cycles of hit latency per step), keeping
 * 1 MB and 4 ways of LLC per core through 16 cores. The 32- and
 * 64-core rows go banked instead: associativity holds at 64 (the
 * CoreMask/WayMask width) and capacity keeps scaling at 1 MB per core
 * by splitting the LLC into slice-hashed banks.
 */
struct Topology
{
    /** Largest core count this row serves (lookups round up). */
    std::uint32_t max_cores;
    std::uint64_t llc_bytes;
    std::uint32_t llc_ways;
    Tick hit_latency;
    /** LLC bank (slice) count; 1 = monolithic. */
    std::uint32_t banks = 1;
};

/** The topology table, ascending in max_cores (2, 4, 8, 16, 32, 64). */
const std::vector<Topology> &topologyTable();

/**
 * Builds the configuration of an @p num_cores-core system: LLC
 * geometry and hit latency come from the topology table row covering
 * @p num_cores (the smallest row with max_cores >= num_cores, so a
 * 3-core system runs on the 4-core organisation). Fatal when the
 * table has no row that large; asserts ways >= cores. @p scheme is a
 * scheme-registry name.
 */
SystemConfig makeSystemConfig(std::uint32_t num_cores,
                              const std::string &scheme, RunScale scale);

/** Per-application results of a run. */
struct AppResult
{
    std::string name;
    double ipc = 0.0;
    InstCount insts = 0;
    Cycle cycles = 0;
    std::uint64_t llc_accesses = 0;
    std::uint64_t llc_hits = 0;
    std::uint64_t llc_misses = 0;
    /** LLC misses per kilo-instruction over the measured window. */
    double mpki = 0.0;
    /** Half-width of the ~95% confidence interval on ipc (0 for an
     *  exact run: the value is not an estimate). */
    double ipc_ci = 0.0;
};

/** Whole-run results. */
struct RunResult
{
    std::vector<AppResult> apps;
    Cycle total_cycles = 0;

    // Energy (LLC), as the paper splits it. dynamic_energy_nj is the
    // scheme-dependent ("tag side") dynamic energy the paper's figures
    // report; data_energy_nj is the scheme-independent data-way term.
    double dynamic_energy_nj = 0.0;
    double data_energy_nj = 0.0;
    double static_energy_nj = 0.0;
    double avg_ways_probed = 0.0;

    // Reconfiguration behaviour (paper Section 5).
    std::uint64_t donor_hits = 0;
    std::uint64_t donor_misses = 0;
    std::uint64_t recipient_hits = 0;
    std::uint64_t recipient_misses = 0;
    double avg_transfer_cycles = 0.0;
    std::uint64_t completed_transfers = 0;
    std::uint64_t flushed_lines = 0;
    std::uint64_t repartitions = 0;
    std::uint64_t epochs = 0;
    /** Flush traffic vs. time since a decision (Fig 16). */
    std::vector<std::uint64_t> flush_series;
    Tick flush_series_bin = 0;

    // DRAM-side totals.
    std::uint64_t dram_reads = 0;
    std::uint64_t dram_writebacks = 0;
    std::uint64_t dram_flushes = 0;

    // Bank contention (banked LLC only; zero for monolithic runs).
    std::uint64_t bank_conflicts = 0;
    std::uint64_t bank_conflict_cycles = 0;

    // Statistical sampling (zero for exact runs): total measurement
    // windows the per-app CIs were computed from.
    std::uint64_t sample_windows = 0;
};

/**
 * Host-side accounting of the event loop (not simulated state): how
 * many arbitration quanta the driver dispatched and how many operation
 * bundles they covered. avgQuantumOps() > 1 is the evidence that the
 * batched path actually batched (the CI hotpath-smoke leg greps it out
 * of BENCH_hotpath.json).
 */
struct DriverStats
{
    std::uint64_t quanta = 0;
    std::uint64_t steps = 0;

    double avgQuantumOps() const
    {
        return quanta > 0 ? static_cast<double>(steps) /
                                static_cast<double>(quanta)
                          : 0.0;
    }
};

/**
 * One complete simulated system.
 */
class System
{
  public:
    /**
     * @param config Configuration (num_cores must equal apps.size()).
     * @param apps   One profile per core.
     */
    System(const SystemConfig &config,
           std::vector<trace::AppProfile> apps);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Runs warm-up + measurement to completion and collects results. */
    RunResult run();

    /** Event-loop accounting of the last run() (host-side only). */
    const DriverStats &driverStats() const { return driver_stats_; }

    /** The LLC (for inspection in tests and examples). */
    llc::Llc &llc() { return *llc_; }
    const llc::Llc &llc() const { return *llc_; }

    const SystemConfig &config() const { return config_; }

  private:
    RunResult collect();

    SystemConfig config_;
    std::vector<trace::AppProfile> profiles_;
    mem::DramModel dram_;
    std::unique_ptr<llc::Llc> llc_;
    std::vector<std::unique_ptr<core::OpStream>> streams_;
    std::vector<std::unique_ptr<core::TraceCore>> cores_;
    DriverStats driver_stats_;

    // Sampling state (see src/sampling/sampling.hpp). sampling_ is the
    // resolved estimator configuration; the vectors accumulate per-core
    // measurement-phase detail instructions and per-window IPC samples
    // that collect() turns into scale factors and confidence intervals.
    sampling::Resolved sampling_;
    std::vector<stats::Average> window_ipc_;
    std::vector<InstCount> detail_insts_;
    /** Instructions retired per core over the whole measurement phase
     *  (including post-quota contention), the numerator of the op
     *  scale factor. */
    std::vector<InstCount> phase_insts_;
    std::uint64_t sample_windows_ = 0;
    /** Detail-window length in cycles (0 when not fast-forwarding);
     *  feeds the scale-aware bias allowance in collect(). */
    Cycle detail_cycles_ = 0;
};

} // namespace coopsim::sim

#endif // COOPSIM_SIM_SYSTEM_HPP
