/**
 * @file
 * High-level experiment runner on top of the parallel RunExecutor.
 *
 * The paper's figures reuse the same simulations many times (the same
 * 14 workloads under 5 schemes feed Figures 5, 6 and 7, for example).
 * The runGroup/soloIpc helpers are thin, memoised wrappers over
 * sim::RunExecutor: each distinct simulation is paid for once per
 * process, and a bench that calls prefetch*() with its whole sweep up
 * front runs the sweep on all host cores (--threads=N /
 * COOPSIM_THREADS; default hardware_concurrency).
 *
 * Schemes are addressed by registry name ("coop", "ucp", ... or any
 * custom registration); new code should describe whole sweeps
 * declaratively with api::ExperimentSpec (coopsim/experiment.hpp) and
 * reach for these helpers only for one-off runs. The scheme-enum
 * overloads and the per-flag argument parsers (scaleFromArgs/
 * threadsFromArgs/applyThreadArgs) that used to live here were shims
 * over the string-keyed api layer; they are gone — use registry names
 * and api::parseCli/applyCliThreads.
 */

#ifndef COOPSIM_SIM_RUNNER_HPP
#define COOPSIM_SIM_RUNNER_HPP

#include <string>
#include <vector>

#include "sim/executor.hpp"
#include "sim/metrics.hpp"
#include "sim/system.hpp"
#include "trace/workloads.hpp"

namespace coopsim::sim
{

/** Options shared by the experiment helpers. */
struct RunOptions
{
    RunScale scale = RunScale::Bench;
    /** Cooperative turn-off threshold T (Fig 11-13 sweeps). */
    double threshold = 0.05;
    partition::ThresholdMode threshold_mode =
        partition::ThresholdMode::MissRatio;
    /** Epoch way-allocation algorithm (scaling_cores sweep). */
    partition::Partitioner partitioner =
        partition::Partitioner::Lookahead;
    /** Intra-partition victim policy (ablation_replacement). */
    cache::ReplPolicy repl = cache::ReplPolicy::Lru;
    /** Static-saving mechanism for unowned ways (ext_drowsy). */
    llc::GatingMode gating = llc::GatingMode::GatedVdd;
    std::uint64_t seed = 42;
};

/** The RunKey identifying runGroup(scheme, group, options). @p scheme
 *  is a scheme-registry name. */
RunKey groupKey(const std::string &scheme,
                const trace::WorkloadGroup &group,
                const RunOptions &options = {});

/** The RunKey identifying soloIpc(app, num_cores, options). */
RunKey soloKey(const std::string &app, std::uint32_t num_cores,
               const RunOptions &options = {});

/**
 * Runs workload @p group under the scheme registered as @p scheme on
 * the appropriate system (two-core for G2-*, four-core for G4-*).
 * Results are memoised; the reference stays valid until
 * clearRunCache().
 */
const RunResult &runGroup(const std::string &scheme,
                          const trace::WorkloadGroup &group,
                          const RunOptions &options = {});

/**
 * IPC of @p app running alone with the whole LLC (the denominator of
 * weighted speedup). @p num_cores selects which system's geometry the
 * solo run uses (2 or 4). Memoised.
 */
double soloIpc(const std::string &app, std::uint32_t num_cores,
               const RunOptions &options = {});

/** Full result of the solo run behind soloIpc() (Table 3 wants MPKI). */
const RunResult &soloResult(const std::string &app,
                            std::uint32_t num_cores,
                            const RunOptions &options = {});

/** Weighted speedup of @p group under @p scheme (Equation 1). */
double groupWeightedSpeedup(const std::string &scheme,
                            const trace::WorkloadGroup &group,
                            const RunOptions &options = {});

/**
 * Enqueues simulations for background execution on the executor pool
 * and returns immediately; later runGroup/soloIpc calls collect the
 * memoised results. prefetchGroups() also enqueues the solo runs of
 * every app in every group (the weighted-speedup denominators).
 */
void prefetch(const std::vector<RunKey> &keys);
void prefetchGroups(const std::vector<std::string> &schemes,
                    const std::vector<trace::WorkloadGroup> &groups,
                    const RunOptions &options, bool with_solo = true);

/** Empties the memoisation cache (tests). */
void clearRunCache();

} // namespace coopsim::sim

#endif // COOPSIM_SIM_RUNNER_HPP
