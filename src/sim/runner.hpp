/**
 * @file
 * High-level experiment runner with in-process memoisation.
 *
 * The paper's figures reuse the same simulations many times (the same
 * 14 workloads under 5 schemes feed Figures 5, 6 and 7, for example).
 * The runner caches RunResults by configuration so each bench binary
 * pays for every distinct simulation once.
 */

#ifndef COOPSIM_SIM_RUNNER_HPP
#define COOPSIM_SIM_RUNNER_HPP

#include <string>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/system.hpp"
#include "trace/workloads.hpp"

namespace coopsim::sim
{

/** Options shared by the experiment helpers. */
struct RunOptions
{
    RunScale scale = RunScale::Bench;
    /** Cooperative turn-off threshold T (Fig 11-13 sweeps). */
    double threshold = 0.05;
    partition::ThresholdMode threshold_mode =
        partition::ThresholdMode::MissRatio;
    std::uint64_t seed = 42;
};

/**
 * Runs workload @p group under @p scheme on the appropriate system
 * (two-core for G2-*, four-core for G4-*). Results are memoised.
 */
const RunResult &runGroup(llc::Scheme scheme,
                          const trace::WorkloadGroup &group,
                          const RunOptions &options = {});

/**
 * IPC of @p app running alone with the whole LLC (the denominator of
 * weighted speedup). @p num_cores selects which system's geometry the
 * solo run uses (2 or 4). Memoised.
 */
double soloIpc(const std::string &app, std::uint32_t num_cores,
               const RunOptions &options = {});

/** Weighted speedup of @p group under @p scheme (Equation 1). */
double groupWeightedSpeedup(llc::Scheme scheme,
                            const trace::WorkloadGroup &group,
                            const RunOptions &options = {});

/** Empties the memoisation cache (tests). */
void clearRunCache();

/** Parses --full / --scale=paper style bench arguments. */
RunScale scaleFromArgs(int argc, char **argv);

} // namespace coopsim::sim

#endif // COOPSIM_SIM_RUNNER_HPP
