#include "sim/report.hpp"

#include <sstream>

namespace coopsim::sim
{

stats::StatGroup
toStatGroup(const RunResult &result, const std::string &name)
{
    stats::StatGroup group(name);
    group.add("total_cycles", result.total_cycles);
    group.add("dynamic_energy_nj", result.dynamic_energy_nj);
    group.add("data_energy_nj", result.data_energy_nj);
    group.add("static_energy_nj", result.static_energy_nj);
    group.add("avg_ways_probed", result.avg_ways_probed);
    group.add("epochs", result.epochs);
    group.add("repartitions", result.repartitions);
    group.add("completed_transfers", result.completed_transfers);
    group.add("avg_transfer_cycles", result.avg_transfer_cycles);
    group.add("flushed_lines", result.flushed_lines);
    group.add("takeover_donor_hits", result.donor_hits);
    group.add("takeover_donor_misses", result.donor_misses);
    group.add("takeover_recipient_hits", result.recipient_hits);
    group.add("takeover_recipient_misses", result.recipient_misses);
    group.add("dram_reads", result.dram_reads);
    group.add("dram_writebacks", result.dram_writebacks);
    group.add("dram_flushes", result.dram_flushes);
    for (std::size_t i = 0; i < result.apps.size(); ++i) {
        const AppResult &app = result.apps[i];
        const std::string prefix =
            "core" + std::to_string(i) + "." + app.name + ".";
        group.add(prefix + "ipc", app.ipc);
        group.add(prefix + "insts", app.insts);
        group.add(prefix + "cycles", app.cycles);
        group.add(prefix + "mpki", app.mpki);
        group.add(prefix + "llc_accesses", app.llc_accesses);
        group.add(prefix + "llc_hits", app.llc_hits);
        group.add(prefix + "llc_misses", app.llc_misses);
    }
    return group;
}

std::string
formatRunResult(const RunResult &result, const std::string &name)
{
    return toStatGroup(result, name).format();
}

std::string
csvHeader()
{
    return "scheme,workload,weighted_speedup,dynamic_energy_nj,"
           "static_energy_nj,avg_ways_probed,total_cycles,"
           "repartitions,flushed_lines";
}

std::string
csvRow(const std::string &scheme, const std::string &workload,
       const RunResult &result, double weighted_speedup)
{
    std::ostringstream os;
    os << scheme << ',' << workload << ',' << weighted_speedup << ','
       << result.dynamic_energy_nj << ',' << result.static_energy_nj
       << ',' << result.avg_ways_probed << ',' << result.total_cycles
       << ',' << result.repartitions << ',' << result.flushed_lines;
    return os.str();
}

} // namespace coopsim::sim
