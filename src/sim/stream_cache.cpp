#include "sim/stream_cache.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <unistd.h>
#include <vector>

#include "api/registry.hpp"
#include "common/logging.hpp"
#include "trace/generator.hpp"

namespace coopsim::sim
{

namespace
{

/**
 * Frames per lazily generated segment: 8 × kFrameOps = 32768 ops
 * (~200 KB encoded). Segment boundaries are deterministic — always a
 * whole number of full frames past whatever was already encoded — so
 * the bytes a stream memoizes never depend on which run, thread or
 * batch size pulled it first.
 */
constexpr std::size_t kSegmentFrames = 8;

std::uint64_t
mixHash(std::uint64_t h, std::uint64_t v)
{
    // splitmix64 finalizer; the same mixer RunKeyHash uses.
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
}

} // namespace

namespace detail
{

/** One frame-encoded chunk of a memoized stream, immutable once
 *  published (readers hold it by shared_ptr across eviction). */
struct StreamSegment
{
    /** Whole frames plus kDecodeSlack readable padding. */
    std::string data;
    /** Frame bytes (excluding the padding). */
    std::size_t logical = 0;
    std::uint64_t first_op = 0;
    std::uint64_t ops = 0;
};

struct StreamEntry
{
    StreamCache::Key key;
    /** Identity block, validated against every opener (and against a
     *  warm-start file); also the header a spill file gets. */
    tracefile::TraceHeader header;
    /** "memoized stream '<workload>' slot N", for decoder fatals. */
    std::string label;
    /** Recreates the positioned generator after warm start or entry
     *  recreation; null for file-backed (trace:) entries. */
    std::function<std::unique_ptr<core::OpStream>()> rebuild;
    /** Source file of a trace:-backed entry (for exhaustion fatals). */
    std::string source_path;
    /** Bytes loaded from disk at creation, accounted by the winner
     *  (immutable after build, unlike the segments). */
    std::size_t initial_bytes = 0;
    /** True when the entry was materialized from a disk file. */
    bool from_disk = false;

    std::mutex mu;
    std::vector<std::shared_ptr<const StreamSegment>> segments;
    /** Ops across all segments. */
    std::uint64_t encoded_ops = 0;
    /** Ops that came from a spill file (spill skips clean entries). */
    std::uint64_t disk_ops = 0;
    /** The retained generator, positioned just past encoded_ops. */
    std::unique_ptr<core::OpStream> generator;
    std::uint64_t generator_ops = 0;

    /** Bytes charged against the cache budget. Guarded by the CACHE
     *  lock, not mu: it must stay consistent with resident_bytes_. */
    std::size_t accounted_bytes = 0;

    std::shared_ptr<const StreamSegment> segmentAt(std::size_t index,
                                                   StreamCache &cache);
};

std::shared_ptr<const StreamSegment>
StreamEntry::segmentAt(std::size_t index, StreamCache &cache)
{
    std::lock_guard<std::mutex> lock(mu);
    if (index < segments.size())
        return segments[index];
    COOPSIM_ASSERT(index == segments.size(),
                   "stream segment requested out of order");

    if (!rebuild) {
        // File-backed entries end where the file ends, with the same
        // diagnosis a direct TraceFileStream would give.
        COOPSIM_FATAL("trace file '", source_path, "' exhausted after ",
                      encoded_ops,
                      " ops — the simulation wanted more than was recorded; "
                      "re-record with a larger instruction budget");
    }
    if (!generator) {
        // First extension after a warm start (or after the generator
        // was dropped): rebuild it and skip the already-encoded
        // prefix. Generation is deterministic, so the resumed stream
        // continues exactly where the encoded ops end.
        generator = rebuild();
        core::MemOp scratch[256];
        while (generator_ops < encoded_ops) {
            const std::size_t want = static_cast<std::size_t>(
                std::min<std::uint64_t>(256, encoded_ops - generator_ops));
            generator_ops += generator->nextBatch(scratch, want);
        }
        COOPSIM_ASSERT(generator_ops == encoded_ops,
                       "memoized stream over-skipped its encoded prefix");
    }

    auto segment = std::make_shared<StreamSegment>();
    segment->first_op = encoded_ops;
    std::vector<core::MemOp> ops(tracefile::kFrameOps);
    for (std::size_t f = 0; f < kSegmentFrames; ++f) {
        std::size_t got = 0;
        while (got < tracefile::kFrameOps) {
            got += generator->nextBatch(ops.data() + got,
                                        tracefile::kFrameOps - got);
        }
        segment->data += tracefile::encodeFrame(ops.data(),
                                                tracefile::kFrameOps);
    }
    segment->ops = kSegmentFrames * tracefile::kFrameOps;
    segment->logical = segment->data.size();
    segment->data.append(tracefile::kDecodeSlack, '\0');

    generator_ops += segment->ops;
    encoded_ops += segment->ops;
    const std::size_t delta = segment->data.size();
    segments.push_back(segment);
    cache.noteExtend(this, delta);
    return segment;
}

namespace
{

/**
 * The replay half of the memo: walks an entry's segments through one
 * FrameDecoder per segment (frames decode independently, so crossing
 * a segment boundary just re-arms the decoder), pulling new segments
 * from the entry's generator on demand. Holds the entry and the
 * current segment by shared_ptr, so replay keeps working even if the
 * LRU evicts the entry mid-run.
 */
class MemoReplayStream final : public core::OpStream
{
  public:
    MemoReplayStream(std::shared_ptr<StreamEntry> entry, StreamCache &cache)
        : entry_(std::move(entry)), cache_(cache)
    {
    }

    std::size_t
    nextBatch(core::MemOp *out, std::size_t max) override
    {
        std::size_t produced = 0;
        while (produced < max) {
            if (!segment_) {
                segment_ = entry_->segmentAt(segment_index_, cache_);
                decoder_.reset(segment_->data.data(), 0, segment_->logical,
                               &entry_->label);
            }
            const std::size_t got =
                decoder_.decode(out + produced, max - produced);
            if (got == 0) {
                // Clean end of this segment; the next segmentAt()
                // call extends the entry (or fatals on a file-backed
                // entry that has nothing more to give).
                ++segment_index_;
                segment_.reset();
                continue;
            }
            produced += got;
        }
        return produced;
    }

    core::MemOp
    next() override
    {
        core::MemOp op;
        nextBatch(&op, 1);
        return op;
    }

  private:
    std::shared_ptr<StreamEntry> entry_;
    StreamCache &cache_;
    std::shared_ptr<const StreamSegment> segment_;
    std::size_t segment_index_ = 0;
    tracefile::FrameDecoder decoder_;
};

} // namespace

} // namespace detail

// ---------------------------------------------------------------------------
// StreamCache

std::size_t
StreamCache::KeyHash::operator()(const Key &key) const
{
    std::uint64_t h = std::hash<std::string>{}(key.workload);
    h = mixHash(h, key.slot);
    h = mixHash(h, key.seed);
    h = mixHash(h, std::hash<std::string>{}(key.scale));
    h = mixHash(h, key.num_cores);
    return static_cast<std::size_t>(h);
}

StreamCache &
StreamCache::instance()
{
    static StreamCache cache;
    // Registered after the static above is constructed, so the hook
    // runs before its destructor: spill and stats see live entries.
    static const int hook = [] {
        std::atexit([] {
            StreamCache &c = instance();
            c.spillNow();
            c.printStats(stderr);
        });
        return 0;
    }();
    (void)hook;
    return cache;
}

std::size_t
StreamCache::defaultBudgetBytes()
{
    return (4ull << 20) * topologyTable().back().max_cores;
}

void
StreamCache::configure(const Config &config)
{
    if (!config.spill_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(config.spill_dir, ec);
        if (ec) {
            COOPSIM_FATAL("--trace-cache: cannot create directory '",
                          config.spill_dir, "': ", ec.message());
        }
    }
    std::lock_guard<std::mutex> lock(mu_);
    config_ = config;
    evictOverBudget(nullptr);
}

StreamCache::Config
StreamCache::config() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return config_;
}

bool
StreamCache::enabled() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return config_.enabled;
}

std::size_t
StreamCache::budgetBytes() const
{
    return config_.budget_bytes != 0 ? config_.budget_bytes
                                     : defaultBudgetBytes();
}

StreamFactory
StreamCache::factory(std::uint64_t run_seed, RunScale scale,
                     std::uint32_t topology_cores)
{
    const std::string scale_key = api::scaleKeyOf(scale);
    return [run_seed, scale_key, topology_cores](
               std::uint32_t c, const trace::AppProfile &profile,
               const trace::StreamGeometry &geometry,
               std::uint64_t stream_seed) -> std::unique_ptr<core::OpStream> {
        Key key;
        key.workload = profile.name;
        key.slot = c;
        key.seed = run_seed;
        key.scale = scale_key;
        key.num_cores = topology_cores;
        return instance().open(key, profile, geometry, stream_seed);
    };
}

StreamCache::EntryPtr
StreamCache::getOrCreate(const Key &key,
                         const std::function<EntryPtr()> &build,
                         bool &created)
{
    std::shared_ptr<std::packaged_task<EntryPtr()>> task;
    EntryFuture future;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            it->second.touch = ++touch_clock_;
            created = false;
            future = it->second.future;
        } else {
            task = std::make_shared<std::packaged_task<EntryPtr()>>(build);
            future = task->get_future().share();
            entries_.emplace(key, Slot{future, ++touch_clock_});
            created = true;
        }
    }
    if (task) {
        (*task)(); // build outside the cache lock; losers wait on the future
        EntryPtr entry = future.get();
        std::lock_guard<std::mutex> lock(mu_);
        // clear() may have raced the build; only account a slot that
        // still maps this key to this entry.
        auto it = entries_.find(key);
        if (it != entries_.end() &&
            it->second.future.wait_for(std::chrono::seconds(0)) ==
                std::future_status::ready &&
            it->second.future.get() == entry) {
            entry->accounted_bytes = entry->initial_bytes;
            resident_bytes_ += entry->initial_bytes;
            evictOverBudget(entry.get());
        }
    }
    return future.get();
}

void
StreamCache::noteExtend(detail::StreamEntry *entry, std::size_t delta)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(entry->key);
    if (it == entries_.end() ||
        it->second.future.wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready ||
        it->second.future.get().get() != entry) {
        // Evicted (or cleared) while a surviving reader extended it:
        // the entry is no longer budget-accounted, nothing to charge.
        return;
    }
    it->second.touch = ++touch_clock_;
    entry->accounted_bytes += delta;
    resident_bytes_ += delta;
    evictOverBudget(entry);
}

void
StreamCache::evictOverBudget(const detail::StreamEntry *keep)
{
    const std::size_t budget = budgetBytes();
    while (resident_bytes_ > budget) {
        auto victim = entries_.end();
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (it->second.future.wait_for(std::chrono::seconds(0)) !=
                std::future_status::ready)
                continue; // still being built; its bytes aren't counted
            if (it->second.future.get().get() == keep)
                continue;
            if (victim == entries_.end() ||
                it->second.touch < victim->second.touch)
                victim = it;
        }
        if (victim == entries_.end())
            break; // nothing evictable (e.g. only `keep` is resident)
        resident_bytes_ -= victim->second.future.get()->accounted_bytes;
        entries_.erase(victim);
        ++stats_.streams_evicted;
    }
}

std::unique_ptr<core::OpStream>
StreamCache::open(const Key &key, const trace::AppProfile &profile,
                  const trace::StreamGeometry &geometry,
                  std::uint64_t stream_seed)
{
    bool created = false;
    EntryPtr entry = getOrCreate(
        key,
        [&]() -> EntryPtr {
            auto e = std::make_shared<detail::StreamEntry>();
            e->key = key;
            e->header.core = key.slot;
            e->header.num_cores = key.num_cores;
            e->header.seed = key.seed;
            e->header.llc_sets = geometry.llc_sets;
            e->header.block_bytes = geometry.block_bytes;
            e->header.workload = key.workload;
            e->header.app = profile.name;
            e->header.scale = key.scale;
            e->label = "memoized stream '" + key.workload + "' slot " +
                       std::to_string(key.slot);
            e->rebuild = [profile, geometry, slot = key.slot, stream_seed]() {
                return std::make_unique<trace::SyntheticStream>(
                    profile, geometry, slot, stream_seed);
            };
            std::string spill;
            {
                std::lock_guard<std::mutex> lock(mu_);
                if (!config_.spill_dir.empty())
                    spill = spillPath(key);
            }
            if (!spill.empty() && tryWarmStart(*e, spill))
                e->from_disk = true;
            return e;
        },
        created);

    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!created)
            ++stats_.streams_replayed;
        else if (entry->from_disk)
            ++stats_.streams_loaded;
        else
            ++stats_.streams_generated;
    }

    // The key matched, so the identity block must too; a mismatch
    // means two different op sequences landed on one memo key.
    if (entry->header.seed + key.slot * 7919 != stream_seed)
        COOPSIM_FATAL(entry->label, ": seed mismatch (memoized for run seed ",
                      entry->header.seed, ", asked to serve stream seed ",
                      stream_seed, ")");
    if (entry->header.app != profile.name)
        COOPSIM_FATAL(entry->label, ": app mismatch (memoized '",
                      entry->header.app, "', asked for '", profile.name,
                      "') — distinct profiles share a registry name");
    if (entry->header.llc_sets != geometry.llc_sets ||
        entry->header.block_bytes != geometry.block_bytes)
        COOPSIM_FATAL(entry->label, ": geometry mismatch (memoized ",
                      entry->header.llc_sets, " sets x ",
                      entry->header.block_bytes, " B blocks, asked for ",
                      geometry.llc_sets, " x ", geometry.block_bytes, ")");

    return std::make_unique<detail::MemoReplayStream>(std::move(entry), *this);
}

std::unique_ptr<core::OpStream>
StreamCache::openTraceFile(const Key &key, const std::string &path,
                           const tracefile::TraceHeader &expected)
{
    bool created = false;
    EntryPtr entry = getOrCreate(
        key,
        [&]() -> EntryPtr {
            auto e = std::make_shared<detail::StreamEntry>();
            e->key = key;
            e->source_path = path;
            e->label = "trace file '" + path + "'";

            std::string data, error;
            std::size_t logical = 0;
            if (!tracefile::readTraceFile(path, data, logical, error))
                COOPSIM_FATAL("trace file: ", error);
            std::size_t pos = 0;
            if (!tracefile::decodeHeader(data, pos, e->header, error))
                COOPSIM_FATAL(e->label, ": ", error);
            if (e->header != expected)
                COOPSIM_FATAL(e->label, ": header changed on disk since the "
                              "trace directory was scanned — re-run after "
                              "the recording finishes");
            std::uint64_t ops = 0;
            if (!tracefile::validateFrames(data, pos, logical, ops, error))
                COOPSIM_FATAL(e->label, ": ", error,
                              " — the file is corrupt; re-record it");

            auto segment = std::make_shared<detail::StreamSegment>();
            segment->logical = logical - pos;
            segment->data = data.substr(pos); // keeps the slack padding
            segment->ops = ops;
            e->segments.push_back(segment);
            e->encoded_ops = ops;
            e->disk_ops = ops;
            e->initial_bytes = segment->data.size();
            e->from_disk = true;
            return e;
        },
        created);

    std::lock_guard<std::mutex> lock(mu_);
    if (created)
        ++stats_.streams_loaded;
    else
        ++stats_.streams_replayed;
    return std::make_unique<detail::MemoReplayStream>(std::move(entry), *this);
}

std::string
StreamCache::spillPath(const Key &key) const
{
    // Deliberately unparseable by registerTraceDir()'s
    // `<workload>.<core>.cooptrace` scan: the spill directory can
    // double as a --trace-dir without these files being mistaken for
    // recorded trace sets.
    return config_.spill_dir + "/" + key.workload + ".s" +
           std::to_string(key.slot) + ".seed" + std::to_string(key.seed) +
           "." + key.scale + ".c" + std::to_string(key.num_cores) +
           tracefile::kTraceExtension;
}

bool
StreamCache::tryWarmStart(detail::StreamEntry &entry, const std::string &path)
{
    std::error_code ec;
    if (!std::filesystem::exists(path, ec))
        return false;

    std::string data, error;
    std::size_t logical = 0;
    if (!tracefile::readTraceFile(path, data, logical, error)) {
        COOPSIM_WARN("stream cache: ", error, "; regenerating");
        return false;
    }
    std::size_t pos = 0;
    tracefile::TraceHeader header;
    if (!tracefile::decodeHeader(data, pos, header, error)) {
        COOPSIM_WARN("stream cache: '", path, "': ", error, "; regenerating");
        return false;
    }
    if (header != entry.header) {
        COOPSIM_WARN("stream cache: '", path,
                     "' was cached for a different identity; regenerating");
        return false;
    }
    std::uint64_t ops = 0;
    if (!tracefile::validateFrames(data, pos, logical, ops, error)) {
        COOPSIM_WARN("stream cache: '", path, "': ", error, "; regenerating");
        return false;
    }
    if (ops == 0)
        return false;

    auto segment = std::make_shared<detail::StreamSegment>();
    segment->logical = logical - pos;
    segment->data = data.substr(pos);
    segment->ops = ops;
    entry.segments.push_back(segment);
    entry.encoded_ops = ops;
    entry.disk_ops = ops;
    entry.initial_bytes = segment->data.size();
    return true;
}

void
StreamCache::spillNow()
{
    std::vector<EntryPtr> dirty;
    std::string dir;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (config_.spill_dir.empty())
            return;
        dir = config_.spill_dir;
        for (const auto &[key, slot] : entries_) {
            if (slot.future.wait_for(std::chrono::seconds(0)) !=
                std::future_status::ready)
                continue;
            dirty.push_back(slot.future.get());
        }
    }
    for (const EntryPtr &entry : dirty) {
        std::lock_guard<std::mutex> lock(entry->mu);
        if (!entry->rebuild)
            continue; // trace:-backed; the source file already exists
        if (entry->encoded_ops == 0 || entry->encoded_ops <= entry->disk_ops)
            continue; // nothing beyond what the spill file already holds

        std::string path;
        {
            std::lock_guard<std::mutex> cache_lock(mu_);
            path = spillPath(entry->key);
        }
        const std::string tmp = path + ".tmp";
        std::FILE *f = std::fopen(tmp.c_str(), "wb");
        if (!f) {
            COOPSIM_WARN("stream cache: cannot write '", tmp, "'");
            continue;
        }
        const std::string header = tracefile::encodeHeader(entry->header);
        bool ok = std::fwrite(header.data(), 1, header.size(), f) ==
                  header.size();
        for (const auto &segment : entry->segments) {
            ok = ok && std::fwrite(segment->data.data(), 1, segment->logical,
                                   f) == segment->logical;
        }
        ok = ok && std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
        ok = (std::fclose(f) == 0) && ok;
        if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
            COOPSIM_WARN("stream cache: failed to spill '", path, "'");
            std::remove(tmp.c_str());
            continue;
        }
        entry->disk_ops = entry->encoded_ops;
    }
}

StreamCache::Stats
StreamCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
StreamCache::printStats(std::FILE *out)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (stats_printed_)
        return;
    const Stats &s = stats_;
    if (s.streams_generated == 0 && s.streams_replayed == 0 &&
        s.streams_evicted == 0 && s.streams_loaded == 0)
        return;
    stats_printed_ = true;
    std::fprintf(out, "# streams: generated=%llu replayed=%llu evicted=%llu",
                 static_cast<unsigned long long>(s.streams_generated),
                 static_cast<unsigned long long>(s.streams_replayed),
                 static_cast<unsigned long long>(s.streams_evicted));
    if (s.streams_loaded != 0)
        std::fprintf(out, " loaded=%llu",
                     static_cast<unsigned long long>(s.streams_loaded));
    std::fprintf(out, "\n");
}

std::size_t
StreamCache::residentBytes() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return resident_bytes_;
}

std::size_t
StreamCache::residentStreams() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

void
StreamCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    resident_bytes_ = 0;
}

void
StreamCache::resetStats()
{
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = Stats{};
    stats_printed_ = false;
}

} // namespace coopsim::sim
