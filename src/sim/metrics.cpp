#include "sim/metrics.hpp"

#include "common/logging.hpp"

namespace coopsim::sim
{

double
weightedSpeedup(const RunResult &shared,
                const std::vector<double> &alone_ipcs)
{
    COOPSIM_ASSERT(shared.apps.size() == alone_ipcs.size(),
                   "weightedSpeedup size mismatch");
    double total = 0.0;
    for (std::size_t i = 0; i < alone_ipcs.size(); ++i) {
        COOPSIM_ASSERT(alone_ipcs[i] > 0.0, "non-positive alone IPC");
        total += shared.apps[i].ipc / alone_ipcs[i];
    }
    return total;
}

double
normalizeTo(double value, double baseline)
{
    COOPSIM_ASSERT(baseline > 0.0, "normalising to a zero baseline");
    return value / baseline;
}

std::vector<double>
normalizeSeries(const std::vector<double> &values,
                const std::vector<double> &baseline)
{
    COOPSIM_ASSERT(values.size() == baseline.size(),
                   "normalizeSeries size mismatch");
    std::vector<double> out;
    out.reserve(values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
        out.push_back(normalizeTo(values[i], baseline[i]));
    }
    return out;
}

} // namespace coopsim::sim
