#include "sim/executor.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "api/registry.hpp"
#include "api/spec.hpp"
#include "common/logging.hpp"
#include "sim/stream_cache.hpp"
#include "store/result_store.hpp"
#include "trace/workloads.hpp"
#include "tracefile/trace_workloads.hpp"

namespace coopsim::sim
{

namespace
{

/** splitmix64 finaliser: cheap, well-mixed combiner step. */
std::uint64_t
mix(std::uint64_t h, std::uint64_t v)
{
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h ^= (h >> 30);
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= (h >> 27);
    return h;
}

unsigned
defaultThreadCount()
{
    if (const char *env = std::getenv("COOPSIM_THREADS")) {
        char *end = nullptr;
        const unsigned long n = std::strtoul(env, &end, 10);
        // Same contract as --threads=N: garbage or an out-of-range
        // count is a descriptive fatal, never a silent fallback to
        // hardware_concurrency (a sweep sized by a typo'd variable
        // would otherwise oversubscribe or serialise the host).
        if (end == env || *end != '\0' || n < 1 || n > 1024) {
            COOPSIM_FATAL("invalid COOPSIM_THREADS value '", env,
                          "' (expected an integer in [1, 1024])");
        }
        return static_cast<unsigned>(n);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

/** Consumed once, by the first RunExecutor::instance() construction. */
unsigned g_initial_threads = 0;

} // namespace

SystemConfig
runConfig(const RunKey &key)
{
    SystemConfig config =
        makeSystemConfig(key.num_cores, key.scheme, key.scale);
    config.llc.threshold = key.threshold;
    config.llc.threshold_mode = key.threshold_mode;
    config.llc.partitioner = key.partitioner;
    config.llc.repl = key.repl;
    config.llc.gating = key.gating;
    // banks = 0 keeps the topology row's bank count; an explicit
    // override replaces it (BankedLlc validates power-of-two-ness).
    if (key.banks != 0) {
        config.llc.banks = key.banks;
    }
    config.llc.slice_hash = key.slice_hash;
    config.seed = key.seed;
    config.sampling.mode = key.sampling;
    config.sampling.set_period = key.set_sample_period;
    config.sampling.op_windows = key.op_sample_windows;
    return config;
}

std::size_t
RunKeyHash::operator()(const RunKey &key) const
{
    std::uint64_t h = 0x243f6a8885a308d3ull;
    h = mix(h, static_cast<std::uint64_t>(key.kind));
    h = mix(h, key.scheme.size());
    for (const char c : key.scheme) {
        h = mix(h, static_cast<std::uint64_t>(c));
    }
    for (const char c : key.name) {
        h = mix(h, static_cast<std::uint64_t>(c));
    }
    h = mix(h, key.num_cores);
    h = mix(h, static_cast<std::uint64_t>(key.scale));
    // Fold -0.0 to +0.0: the defaulted operator== treats them as equal,
    // so they must hash identically (hash/equality container contract).
    const double threshold =
        key.threshold == 0.0 ? 0.0 : key.threshold;
    std::uint64_t threshold_bits;
    static_assert(sizeof(threshold_bits) == sizeof(threshold));
    std::memcpy(&threshold_bits, &threshold, sizeof(threshold_bits));
    h = mix(h, threshold_bits);
    h = mix(h, static_cast<std::uint64_t>(key.threshold_mode));
    h = mix(h, static_cast<std::uint64_t>(key.partitioner));
    h = mix(h, static_cast<std::uint64_t>(key.repl));
    h = mix(h, static_cast<std::uint64_t>(key.gating));
    h = mix(h, key.seed);
    h = mix(h, key.banks);
    h = mix(h, static_cast<std::uint64_t>(key.slice_hash));
    h = mix(h, static_cast<std::uint64_t>(key.sampling));
    h = mix(h, key.set_sample_period);
    h = mix(h, key.op_sample_windows);
    return static_cast<std::size_t>(h);
}

RunFailure::RunFailure(RunKey key, const std::string &reason)
    : std::runtime_error("run failed: " + api::formatRunKey(key) +
                         ": " + reason),
      key_(std::move(key))
{
}

RunResult
executeRun(const RunKey &key)
{
    if (key.kind == RunKey::Kind::Group) {
        // Registry resolution (not trace::groupByName) so trace-backed
        // groups registered under "trace:<name>" run like any other.
        const trace::WorkloadGroup &group =
            api::workloadRegistry().get(key.name);
        const auto num_cores =
            static_cast<std::uint32_t>(group.apps.size());
        SystemConfig config = runConfig(key);
        COOPSIM_ASSERT(config.num_cores == num_cores,
                       "group size does not match system");
        if (tracefile::isTraceWorkload(key.name)) {
            config.stream_factory =
                tracefile::replayFactory(key.name, key.seed, key.scale);
        } else if (StreamCache::instance().enabled()) {
            config.stream_factory = StreamCache::instance().factory(
                key.seed, key.scale, num_cores);
        }
        System system(config, trace::groupProfiles(group));
        return system.run();
    }

    // Solo: the app owns the whole (unmanaged) LLC of the system it
    // will later share. The stream memo keys on key.num_cores — the
    // topology the solo's geometry came from — so the solo replays
    // the exact buffer its group generated for slot 0 (the per-stream
    // seed derivation makes them the same op sequence).
    SystemConfig config = runConfig(key);
    config.num_cores = 1;
    config.llc.num_cores = 1;
    if (StreamCache::instance().enabled()) {
        config.stream_factory = StreamCache::instance().factory(
            key.seed, key.scale, key.num_cores);
    }
    System system(config, {trace::specProfile(key.name)});
    return system.run();
}

// ---------------------------------------------------------------------------
// RunExecutor

RunExecutor::RunExecutor(unsigned threads)
    : configured_threads_(threads > 0 ? threads : defaultThreadCount())
{
    // The pool starts lazily, on the first submission that actually
    // needs a simulation — a sweep served entirely from the attached
    // result store never spawns a thread.
}

RunExecutor::~RunExecutor()
{
    stopWorkers();
}

RunExecutor &
RunExecutor::instance()
{
    // Construct the trace tables and api registries (function-local
    // statics executeRun reads — System's constructor resolves the
    // scheme name through api::schemeRegistry()) before the pool:
    // statics are destroyed in reverse construction order, so the
    // executor's destructor — which joins workers that may still be
    // inside a run at process exit — must come first, while those
    // tables are still alive. The stream memo is constructed here for
    // the same reason: workers replay memoized streams mid-run.
    api::warmAllRegistries();
    StreamCache::instance();
    static RunExecutor executor(g_initial_threads);
    return executor;
}

void
RunExecutor::requestInitialThreads(unsigned threads)
{
    g_initial_threads = threads;
}

void
RunExecutor::startWorkers(unsigned threads)
{
    workers_.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
        workers_.emplace_back([this] { workerLoop(); });
    }
}

void
RunExecutor::stopWorkers()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread &worker : workers_) {
        worker.join();
    }
    workers_.clear();
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = false;
}

void
RunExecutor::setThreads(unsigned threads)
{
    const unsigned target = threads > 0 ? threads : defaultThreadCount();
    configured_threads_ = target;
    if (workers_.empty() || target == workers_.size()) {
        // Not yet started (stays lazy at the new size) or already
        // at size.
        return;
    }
    // Workers finish their current run and exit; queued work is kept
    // and picked up by the new pool.
    stopWorkers();
    startWorkers(target);
}

unsigned
RunExecutor::threads() const
{
    return configured_threads_;
}

unsigned
RunExecutor::activeWorkers() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<unsigned>(workers_.size());
}

void
RunExecutor::ensureWorkersStarted()
{
    if (workers_.empty()) {
        startWorkers(configured_threads_);
    }
}

void
RunExecutor::attachStore(std::shared_ptr<store::ResultStore> result_store)
{
    std::lock_guard<std::mutex> lock(mutex_);
    store_ = std::move(result_store);
}

std::shared_ptr<store::ResultStore>
RunExecutor::attachedStore() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return store_;
}

RunExecutor::Stats
RunExecutor::stats() const
{
    Stats stats;
    stats.simulations = simulations_.load(std::memory_order_relaxed);
    stats.store_hits = store_hits_.load(std::memory_order_relaxed);
    stats.failed_runs = failed_runs_.load(std::memory_order_relaxed);
    return stats;
}

void
RunExecutor::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (stop_) {
            return;
        }
        std::function<void()> task = std::move(queue_.front());
        queue_.pop_front();
        ++busy_;
        lock.unlock();
        task();
        lock.lock();
        --busy_;
        drain_cv_.notify_all();
    }
}

RunExecutor::Future
RunExecutor::submit(const RunKey &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
        return it->second;
    }

    // Disk-backed store lookup: a stored key becomes a ready future —
    // nothing is queued and the pool is not started.
    if (store_ != nullptr) {
        if (std::optional<RunResult> hit = store_->find(key)) {
            std::promise<ResultPtr> promise;
            promise.set_value(
                std::make_shared<const RunResult>(std::move(*hit)));
            Future future = promise.get_future().share();
            cache_.emplace(key, future);
            store_hits_.fetch_add(1, std::memory_order_relaxed);
            return future;
        }
    }

    auto task = std::make_shared<std::packaged_task<ResultPtr()>>(
        [this, key, result_store = store_]() -> ResultPtr {
            simulations_.fetch_add(1, std::memory_order_relaxed);
            // Task-boundary failure contract: any exception from the
            // simulation becomes a RunFailure naming the key, stored
            // on this run's future by the packaged_task machinery —
            // the worker thread survives, other runs proceed, and
            // nothing is recorded into the store for the failed key.
            try {
                auto result =
                    std::make_shared<const RunResult>(executeRun(key));
                if (result_store != nullptr) {
                    result_store->put(key, *result);
                }
                return result;
            } catch (const RunFailure &) {
                failed_runs_.fetch_add(1, std::memory_order_relaxed);
                throw;
            } catch (const std::exception &e) {
                failed_runs_.fetch_add(1, std::memory_order_relaxed);
                throw RunFailure(key, e.what());
            } catch (...) {
                failed_runs_.fetch_add(1, std::memory_order_relaxed);
                throw RunFailure(key, "unknown exception");
            }
        });
    Future future = task->get_future().share();
    cache_.emplace(key, future);
    queue_.emplace_back([task] { (*task)(); });
    ensureWorkersStarted();
    cv_.notify_one();
    return future;
}

void
RunExecutor::prefetch(const std::vector<RunKey> &keys)
{
    for (const RunKey &key : keys) {
        submit(key);
    }
}

const RunResult &
RunExecutor::run(const RunKey &key)
{
    Future future = submit(key);

    // Help drain the queue while waiting: with every worker busy on
    // other runs of the sweep, the blocked caller contributes a core
    // instead of idling (and a zero-worker pool still makes progress).
    using namespace std::chrono_literals;
    while (future.wait_for(0s) != std::future_status::ready) {
        std::function<void()> task;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!queue_.empty()) {
                task = std::move(queue_.front());
                queue_.pop_front();
                ++busy_;
            }
        }
        if (task) {
            task();
            std::lock_guard<std::mutex> lock(mutex_);
            --busy_;
            drain_cv_.notify_all();
        } else {
            future.wait();
        }
    }
    return *future.get();
}

void
RunExecutor::clear()
{
    // Drain first: wait until no task is queued and no worker (or
    // helping caller) is inside a run, so nothing can complete into —
    // or be submitted against — the cache being cleared. See the
    // header contract: callers must not race clear() with concurrent
    // prefetch()/run() from other threads.
    std::unique_lock<std::mutex> lock(mutex_);
    drain_cv_.wait(lock,
                   [this] { return queue_.empty() && busy_ == 0; });
    COOPSIM_ASSERT(queue_.empty() && busy_ == 0,
                   "clear() raced a concurrent submission; the "
                   "executor must be drained before the cache is "
                   "cleared");
    cache_.clear();
}

} // namespace coopsim::sim
