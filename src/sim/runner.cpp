#include "sim/runner.hpp"

#include <cstdlib>
#include <cstring>

#include "common/logging.hpp"

namespace coopsim::sim
{

RunKey
groupKey(llc::Scheme scheme, const trace::WorkloadGroup &group,
         const RunOptions &options)
{
    RunKey key;
    key.kind = RunKey::Kind::Group;
    key.scheme = scheme;
    key.name = group.name;
    key.num_cores = static_cast<std::uint32_t>(group.apps.size());
    key.scale = options.scale;
    key.threshold = options.threshold;
    key.threshold_mode = options.threshold_mode;
    key.repl = options.repl;
    key.gating = options.gating;
    key.seed = options.seed;
    return key;
}

RunKey
soloKey(const std::string &app, std::uint32_t num_cores,
        const RunOptions &options)
{
    // Solo runs are scheme-independent (always the unmanaged LLC), so
    // the scheme-only option fields are normalised away: a threshold
    // sweep reuses one solo run per (app, geometry, scale, seed, repl).
    RunKey key;
    key.kind = RunKey::Kind::Solo;
    key.scheme = llc::Scheme::Unmanaged;
    key.name = app;
    key.num_cores = num_cores;
    key.scale = options.scale;
    key.threshold = 0.0;
    key.threshold_mode = partition::ThresholdMode::MissRatio;
    key.repl = options.repl;
    key.gating = llc::GatingMode::GatedVdd;
    key.seed = options.seed;
    return key;
}

const RunResult &
runGroup(llc::Scheme scheme, const trace::WorkloadGroup &group,
         const RunOptions &options)
{
    return RunExecutor::instance().run(groupKey(scheme, group, options));
}

const RunResult &
soloResult(const std::string &app, std::uint32_t num_cores,
           const RunOptions &options)
{
    return RunExecutor::instance().run(soloKey(app, num_cores, options));
}

double
soloIpc(const std::string &app, std::uint32_t num_cores,
        const RunOptions &options)
{
    return soloResult(app, num_cores, options).apps.at(0).ipc;
}

double
groupWeightedSpeedup(llc::Scheme scheme,
                     const trace::WorkloadGroup &group,
                     const RunOptions &options)
{
    // Enqueue the shared run and every solo denominator before
    // collecting anything, so even a cold call overlaps them.
    const auto num_cores = static_cast<std::uint32_t>(group.apps.size());
    std::vector<RunKey> keys;
    keys.reserve(group.apps.size() + 1);
    keys.push_back(groupKey(scheme, group, options));
    for (const std::string &app : group.apps) {
        keys.push_back(soloKey(app, num_cores, options));
    }
    prefetch(keys);

    const RunResult &shared = runGroup(scheme, group, options);
    std::vector<double> alone;
    alone.reserve(group.apps.size());
    for (const std::string &app : group.apps) {
        alone.push_back(soloIpc(app, num_cores, options));
    }
    return weightedSpeedup(shared, alone);
}

void
prefetch(const std::vector<RunKey> &keys)
{
    RunExecutor::instance().prefetch(keys);
}

void
prefetchGroups(const std::vector<llc::Scheme> &schemes,
               const std::vector<trace::WorkloadGroup> &groups,
               const RunOptions &options, bool with_solo)
{
    std::vector<RunKey> keys;
    for (const trace::WorkloadGroup &group : groups) {
        for (const llc::Scheme scheme : schemes) {
            keys.push_back(groupKey(scheme, group, options));
        }
        if (with_solo) {
            const auto num_cores =
                static_cast<std::uint32_t>(group.apps.size());
            for (const std::string &app : group.apps) {
                keys.push_back(soloKey(app, num_cores, options));
            }
        }
    }
    prefetch(keys);
}

void
clearRunCache()
{
    RunExecutor::instance().clear();
}

RunScale
scaleFromArgs(int argc, char **argv)
{
    // Scan every argument (last flag wins) so an invalid --scale= is
    // fatal regardless of where it sits relative to a valid one.
    RunScale scale = RunScale::Bench;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--full") == 0 ||
            std::strcmp(argv[i], "--scale=paper") == 0) {
            scale = RunScale::Paper;
        } else if (std::strcmp(argv[i], "--scale=bench") == 0) {
            scale = RunScale::Bench;
        } else if (std::strcmp(argv[i], "--scale=test") == 0) {
            scale = RunScale::Test;
        } else if (std::strncmp(argv[i], "--scale=", 8) == 0) {
            COOPSIM_FATAL("unrecognised scale '", argv[i] + 8,
                          "' (expected test, bench or paper)");
        }
    }
    return scale;
}

unsigned
threadsFromArgs(int argc, char **argv)
{
    // Last flag wins, matching scaleFromArgs; every value is
    // validated.
    unsigned threads = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--threads=", 10) == 0) {
            const char *value = argv[i] + 10;
            char *end = nullptr;
            const unsigned long n = std::strtoul(value, &end, 10);
            if (end == value || *end != '\0' || n < 1 || n > 1024) {
                COOPSIM_FATAL("invalid --threads value '", value,
                              "' (expected an integer in [1, 1024])");
            }
            threads = static_cast<unsigned>(n);
        }
    }
    return threads;
}

unsigned
applyThreadArgs(int argc, char **argv)
{
    const unsigned requested = threadsFromArgs(argc, argv);
    if (requested > 0) {
        // Before the first instance() this sizes the pool directly —
        // no default-sized pool is spawned only to be torn down.
        RunExecutor::requestInitialThreads(requested);
    }
    RunExecutor &executor = RunExecutor::instance();
    if (requested > 0) {
        executor.setThreads(requested); // no-op if already that size
    }
    return executor.threads();
}

} // namespace coopsim::sim
