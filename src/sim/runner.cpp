#include "sim/runner.hpp"

#include <cstring>
#include <map>
#include <sstream>

#include "common/logging.hpp"

namespace coopsim::sim
{

namespace
{

std::string
keyOf(llc::Scheme scheme, const std::string &group,
      const RunOptions &options)
{
    std::ostringstream os;
    os << llc::schemeName(scheme) << '|' << group << '|'
       << static_cast<int>(options.scale) << '|' << options.threshold
       << '|' << static_cast<int>(options.threshold_mode) << '|'
       << options.seed;
    return os.str();
}

std::map<std::string, RunResult> &
runCache()
{
    static std::map<std::string, RunResult> cache;
    return cache;
}

std::map<std::string, double> &
soloCache()
{
    static std::map<std::string, double> cache;
    return cache;
}

SystemConfig
configFor(llc::Scheme scheme, std::uint32_t num_cores,
          const RunOptions &options)
{
    SystemConfig config = num_cores <= 2
                              ? makeTwoCoreConfig(scheme, options.scale)
                              : makeFourCoreConfig(scheme, options.scale);
    config.llc.threshold = options.threshold;
    config.llc.threshold_mode = options.threshold_mode;
    config.seed = options.seed;
    return config;
}

} // namespace

const RunResult &
runGroup(llc::Scheme scheme, const trace::WorkloadGroup &group,
         const RunOptions &options)
{
    const std::string key = keyOf(scheme, group.name, options);
    auto &cache = runCache();
    const auto it = cache.find(key);
    if (it != cache.end()) {
        return it->second;
    }

    const auto num_cores =
        static_cast<std::uint32_t>(group.apps.size());
    SystemConfig config = configFor(scheme, num_cores, options);
    COOPSIM_ASSERT(config.num_cores == num_cores,
                   "group size does not match system");

    System system(config, trace::groupProfiles(group));
    return cache.emplace(key, system.run()).first->second;
}

double
soloIpc(const std::string &app, std::uint32_t num_cores,
        const RunOptions &options)
{
    std::ostringstream os;
    os << app << '|' << num_cores << '|'
       << static_cast<int>(options.scale) << '|' << options.seed;
    auto &cache = soloCache();
    const auto it = cache.find(os.str());
    if (it != cache.end()) {
        return it->second;
    }

    // "Running in isolation": the app owns the whole (unmanaged) LLC of
    // the system it will later share.
    SystemConfig config =
        configFor(llc::Scheme::Unmanaged, num_cores, options);
    config.num_cores = 1;
    config.llc.num_cores = 1;

    System system(config, {trace::specProfile(app)});
    const RunResult result = system.run();
    const double ipc = result.apps.at(0).ipc;
    cache.emplace(os.str(), ipc);
    return ipc;
}

double
groupWeightedSpeedup(llc::Scheme scheme,
                     const trace::WorkloadGroup &group,
                     const RunOptions &options)
{
    const RunResult &shared = runGroup(scheme, group, options);
    std::vector<double> alone;
    alone.reserve(group.apps.size());
    for (const std::string &app : group.apps) {
        alone.push_back(soloIpc(
            app, static_cast<std::uint32_t>(group.apps.size()), options));
    }
    return weightedSpeedup(shared, alone);
}

void
clearRunCache()
{
    runCache().clear();
    soloCache().clear();
}

RunScale
scaleFromArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--full") == 0 ||
            std::strcmp(argv[i], "--scale=paper") == 0) {
            return RunScale::Paper;
        }
        if (std::strcmp(argv[i], "--scale=test") == 0) {
            return RunScale::Test;
        }
    }
    return RunScale::Bench;
}

} // namespace coopsim::sim
