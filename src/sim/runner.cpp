#include "sim/runner.hpp"

#include "api/registry.hpp"
#include "common/logging.hpp"

namespace coopsim::sim
{

RunKey
groupKey(const std::string &scheme, const trace::WorkloadGroup &group,
         const RunOptions &options)
{
    // Validate eagerly: a typo'd scheme should die here, at the call
    // site, not inside a worker thread mid-sweep.
    api::schemeRegistry().get(scheme);
    RunKey key;
    key.kind = RunKey::Kind::Group;
    key.scheme = scheme;
    key.name = group.name;
    key.num_cores = static_cast<std::uint32_t>(group.apps.size());
    key.scale = options.scale;
    key.threshold = options.threshold;
    key.threshold_mode = options.threshold_mode;
    key.partitioner = options.partitioner;
    key.repl = options.repl;
    key.gating = options.gating;
    key.seed = options.seed;
    return key;
}

RunKey
soloKey(const std::string &app, std::uint32_t num_cores,
        const RunOptions &options)
{
    // Solo runs are scheme-independent (always the unmanaged LLC), so
    // the scheme-only option fields are normalised away: a threshold
    // or partitioner sweep reuses one solo run per (app, geometry,
    // scale, seed, repl).
    RunKey key;
    key.kind = RunKey::Kind::Solo;
    key.scheme = "unmanaged";
    key.name = app;
    key.num_cores = num_cores;
    key.scale = options.scale;
    key.threshold = 0.0;
    key.threshold_mode = partition::ThresholdMode::MissRatio;
    key.partitioner = partition::Partitioner::Lookahead;
    key.repl = options.repl;
    key.gating = llc::GatingMode::GatedVdd;
    key.seed = options.seed;
    return key;
}

const RunResult &
runGroup(const std::string &scheme, const trace::WorkloadGroup &group,
         const RunOptions &options)
{
    return RunExecutor::instance().run(groupKey(scheme, group, options));
}

const RunResult &
soloResult(const std::string &app, std::uint32_t num_cores,
           const RunOptions &options)
{
    return RunExecutor::instance().run(soloKey(app, num_cores, options));
}

double
soloIpc(const std::string &app, std::uint32_t num_cores,
        const RunOptions &options)
{
    return soloResult(app, num_cores, options).apps.at(0).ipc;
}

double
groupWeightedSpeedup(const std::string &scheme,
                     const trace::WorkloadGroup &group,
                     const RunOptions &options)
{
    // Enqueue the shared run and every solo denominator before
    // collecting anything, so even a cold call overlaps them.
    const auto num_cores = static_cast<std::uint32_t>(group.apps.size());
    std::vector<RunKey> keys;
    keys.reserve(group.apps.size() + 1);
    keys.push_back(groupKey(scheme, group, options));
    for (const std::string &app : group.apps) {
        keys.push_back(soloKey(app, num_cores, options));
    }
    prefetch(keys);

    const RunResult &shared = runGroup(scheme, group, options);
    std::vector<double> alone;
    alone.reserve(group.apps.size());
    for (const std::string &app : group.apps) {
        alone.push_back(soloIpc(app, num_cores, options));
    }
    return weightedSpeedup(shared, alone);
}

void
prefetch(const std::vector<RunKey> &keys)
{
    RunExecutor::instance().prefetch(keys);
}

void
prefetchGroups(const std::vector<std::string> &schemes,
               const std::vector<trace::WorkloadGroup> &groups,
               const RunOptions &options, bool with_solo)
{
    std::vector<RunKey> keys;
    for (const trace::WorkloadGroup &group : groups) {
        for (const std::string &scheme : schemes) {
            keys.push_back(groupKey(scheme, group, options));
        }
        if (with_solo) {
            const auto num_cores =
                static_cast<std::uint32_t>(group.apps.size());
            for (const std::string &app : group.apps) {
                keys.push_back(soloKey(app, num_cores, options));
            }
        }
    }
    prefetch(keys);
}

void
clearRunCache()
{
    RunExecutor::instance().clear();
}

} // namespace coopsim::sim
