/**
 * @file
 * Index-tracking tournament tree over the per-core clocks.
 *
 * The global-order event loop in System::run() picks the laggard core
 * before every step. A linear scan is O(n) per step, which makes the
 * driver itself the bottleneck once n grows past the paper's 2/4
 * cores. This tree keeps the minimum under single-leaf updates in
 * O(log n): each internal node caches the index of the minimum clock
 * in its subtree, and a step only refreshes the stepped core's leaf
 * and its root path.
 *
 * The answer is bit-identical to the linear scan's: ties resolve to
 * the lowest core index, because the comparison keeps the left child
 * (the lower index range) unless the right child is strictly smaller.
 * tests/test_topology.cpp property-checks this against the scan for
 * 1..17 cores under randomised clock sequences.
 *
 * secondBest() additionally exposes the runner-up — the minimum over
 * every core except the current winner, same lowest-index tie rule.
 * It is the bound of the batched driver quantum: the winner can be
 * stepped in a tight loop, without touching the tree, for as long as
 * its clock keeps it the arbitration winner against that runner-up.
 * The runner-up is found among the winners of the sibling subtrees
 * along the winner's root path (every other core lies in exactly one
 * of those subtrees, and each cached winner is already the
 * lowest-index minimum of its subtree).
 */

#ifndef COOPSIM_SIM_MIN_CLOCK_TREE_HPP
#define COOPSIM_SIM_MIN_CLOCK_TREE_HPP

#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/logging.hpp"
#include "common/types.hpp"

namespace coopsim::sim
{

class MinClockTree
{
  public:
    /** Builds the tree over @p clocks (one entry per core). */
    explicit MinClockTree(const std::vector<Cycle> &clocks)
        : n_(static_cast<std::uint32_t>(clocks.size())),
          leaves_(std::bit_ceil(n_ > 0 ? n_ : 1u)),
          clock_(leaves_, kCycleMax),
          winner_(2 * leaves_, 0)
    {
        COOPSIM_ASSERT(n_ > 0, "tournament tree with no cores");
        for (std::uint32_t c = 0; c < n_; ++c) {
            clock_[c] = clocks[c];
        }
        // Leaves occupy winner_[leaves_ .. 2*leaves_); padded leaves
        // carry kCycleMax so they never win against a real core (a
        // real clock equal to kCycleMax still wins as the left child).
        for (std::uint32_t i = 0; i < leaves_; ++i) {
            winner_[leaves_ + i] = i;
        }
        for (std::uint32_t i = leaves_ - 1; i >= 1; --i) {
            winner_[i] = pick(winner_[2 * i], winner_[2 * i + 1]);
        }
    }

    /** Refreshes core @p index's clock and its root path. */
    void update(std::uint32_t index, Cycle clock)
    {
        COOPSIM_ASSERT(index < n_, "core index out of range");
        clock_[index] = clock;
        for (std::uint32_t i = (leaves_ + index) / 2; i >= 1; i /= 2) {
            winner_[i] = pick(winner_[2 * i], winner_[2 * i + 1]);
        }
    }

    /** Index of the minimum clock; lowest index on ties. */
    std::uint32_t minIndex() const { return winner_[1]; }

    /** The runner-up of the arbitration (see file comment). */
    struct Second
    {
        /** Core index, or kNoSecond on single-core trees. */
        std::uint32_t index;
        /** Its clock; kCycleMax when there is no second core. */
        Cycle clock;
    };

    /** Sentinel index returned when the tree holds a single core. */
    static constexpr std::uint32_t kNoSecond =
        std::numeric_limits<std::uint32_t>::max();

    /**
     * Minimum clock over every core except minIndex(), ties to the
     * lowest index — exactly what a linear scan skipping the winner
     * would return. O(log n).
     */
    Second secondBest() const
    {
        Second best{kNoSecond, kCycleMax};
        for (std::uint32_t i = leaves_ + winner_[1]; i > 1; i /= 2) {
            const std::uint32_t cand = winner_[i ^ 1u];
            const Cycle cand_clock = clock_[cand];
            if (cand_clock < best.clock ||
                (cand_clock == best.clock && cand < best.index)) {
                best = {cand, cand_clock};
            }
        }
        return best;
    }

    Cycle clock(std::uint32_t index) const { return clock_[index]; }
    std::uint32_t size() const { return n_; }

  private:
    /** Left child wins ties, so lower indices win equal clocks. */
    std::uint32_t pick(std::uint32_t left, std::uint32_t right) const
    {
        return clock_[right] < clock_[left] ? right : left;
    }

    std::uint32_t n_;
    std::uint32_t leaves_;
    std::vector<Cycle> clock_;
    std::vector<std::uint32_t> winner_;
};

} // namespace coopsim::sim

#endif // COOPSIM_SIM_MIN_CLOCK_TREE_HPP
