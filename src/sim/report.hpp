/**
 * @file
 * Result reporting: renders RunResults as gem5-style stat dumps and
 * as CSV rows for downstream plotting.
 */

#ifndef COOPSIM_SIM_REPORT_HPP
#define COOPSIM_SIM_REPORT_HPP

#include <string>

#include "common/stats.hpp"
#include "sim/system.hpp"

namespace coopsim::sim
{

/**
 * Flattens a RunResult into a named stat group
 * ("<name>.<key> <value>" lines via StatGroup::format()).
 */
stats::StatGroup toStatGroup(const RunResult &result,
                             const std::string &name);

/** Renders the full "key value" dump. */
std::string formatRunResult(const RunResult &result,
                            const std::string &name);

/** Header line for csvRow(), comma-separated. */
std::string csvHeader();

/**
 * One CSV row per run: identity columns (scheme, workload) followed by
 * the headline metrics, matching csvHeader().
 */
std::string csvRow(const std::string &scheme,
                   const std::string &workload, const RunResult &result,
                   double weighted_speedup);

} // namespace coopsim::sim

#endif // COOPSIM_SIM_REPORT_HPP
