/**
 * @file
 * Parallel simulation executor.
 *
 * The paper's figures are sweeps over (scheme x workload-group x
 * threshold x seed) of completely independent full-system simulations.
 * RunExecutor runs those simulations on a host thread pool behind a
 * future-based memo cache, so
 *
 *  - every distinct simulation is paid for exactly once per process,
 *    no matter how many figures request it (and no matter from which
 *    thread), and
 *  - a bench that enqueues its whole sweep up front (prefetch()) keeps
 *    every host core busy instead of walking the sweep serially.
 *
 * Determinism invariant: a simulation's result is a pure function of
 * its RunKey. Every System instance owns all of its mutable state —
 * cores, private L1s, LLC (with its own Rng seeded from the config),
 * DRAM model and synthetic trace streams (seeded `seed + core * 7919`)
 * — and the library keeps no global mutable state on the simulation
 * path, so concurrent Systems never share anything and results are
 * bit-identical for 1 thread and N threads. test_executor.cpp asserts
 * this; keep it true when adding scheme state (seed anything random
 * from LlcConfig::seed, never from a global).
 */

#ifndef COOPSIM_SIM_EXECUTOR_HPP
#define COOPSIM_SIM_EXECUTOR_HPP

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sim/system.hpp"

namespace coopsim::store
{
class ResultStore;
}

namespace coopsim::sim
{

/**
 * Identity of one full-system simulation. Two runs with equal keys are
 * the same simulation (see the determinism invariant above), which is
 * what makes the key usable as a memo-cache index.
 */
struct RunKey
{
    enum class Kind : std::uint8_t
    {
        /** A Table 4 workload group sharing the LLC under a scheme. */
        Group,
        /** One app alone on the whole (unmanaged) LLC of an
         *  @p num_cores-core system — the weighted-speedup baseline. */
        Solo,
    };

    Kind kind = Kind::Group;
    /** Scheme-registry name ("coop", "ucp", ... or a custom
     *  registration); the string key is what lets extensions run
     *  through the executor without growing an enum. */
    std::string scheme = "coop";
    /** Group name ("G2-3", "G8-mix1") or solo app name ("h264ref"). */
    std::string name;
    /** Topology selector: the core count whose table row (2/4/8/16)
     *  sizes the LLC (solo runs shrink the core count to one but keep
     *  the geometry of the system they will later share). */
    std::uint32_t num_cores = 2;
    RunScale scale = RunScale::Bench;
    double threshold = 0.05;
    partition::ThresholdMode threshold_mode =
        partition::ThresholdMode::MissRatio;
    /** Epoch way-allocation algorithm (partitioner registry). */
    partition::Partitioner partitioner =
        partition::Partitioner::Lookahead;
    cache::ReplPolicy repl = cache::ReplPolicy::Lru;
    llc::GatingMode gating = llc::GatingMode::GatedVdd;
    std::uint64_t seed = 42;
    /** LLC bank override: 0 keeps the topology row's bank count
     *  (monolithic through 16 cores, banked above); a power of two
     *  forces that many slices. */
    std::uint32_t banks = 0;
    /** Slice-selection hash (only consulted when the LLC is banked,
     *  or forced over one bank by the Xor kind). */
    llc::SliceHashKind slice_hash = llc::SliceHashKind::Mod;
    /** Statistical sampling estimator; Exact is the reference and is
     *  omitted from formatted key lines so pre-sampling lines stay
     *  byte-stable. */
    sampling::Mode sampling = sampling::Mode::Exact;
    /** 1-in-S set selection (0 = estimator default; ignored unless
     *  the mode set-samples). */
    std::uint32_t set_sample_period = 0;
    /** Measurement windows per app (0 = estimator default; ignored
     *  when the mode is Exact). */
    std::uint32_t op_sample_windows = 0;

    bool operator==(const RunKey &) const = default;
};

/** FNV-style combiner over every RunKey field. */
struct RunKeyHash
{
    std::size_t operator()(const RunKey &key) const;
};

/**
 * The SystemConfig @p key describes: topology + scale via
 * makeSystemConfig, then the key's LLC knobs and seed. The record
 * mode and the replay factory need exactly this mapping, which is why
 * it is public — executeRun() is `System(runConfig(key), ...).run()`
 * plus workload resolution.
 */
SystemConfig runConfig(const RunKey &key);

/** Runs the simulation @p key describes (pure; no caching). */
RunResult executeRun(const RunKey &key);

/**
 * The failed-run state of a future: any exception escaping a
 * simulation inside a worker task (or a helping caller) is caught at
 * the task boundary and rethrown as a RunFailure naming the offending
 * RunKey, stored on that run's future. The pool is never taken down —
 * other queued runs proceed — and nothing is recorded into the
 * attached store for the failed key. Callers observe the failure when
 * they collect the result: run() (and future.get()) rethrow it.
 */
class RunFailure : public std::runtime_error
{
  public:
    RunFailure(RunKey key, const std::string &reason);

    /** The run that failed. */
    const RunKey &key() const { return key_; }

  private:
    RunKey key_;
};

/**
 * Thread-pool executor with a future-based memo cache and an optional
 * disk-backed result store behind it.
 *
 * Worker count resolution, in priority order: setThreads() (the
 * --threads=N flag), the COOPSIM_THREADS environment variable, then
 * std::thread::hardware_concurrency().
 *
 * The pool starts lazily: no worker thread is spawned until a
 * submission actually needs a simulation. With a store attached
 * (attachStore()), a key already on disk becomes a ready future at
 * submit() time — a fully warmed sweep runs zero simulations and
 * never starts the pool.
 */
class RunExecutor
{
  public:
    /** Run-count accounting since construction (the stat the
     *  warm-store acceptance check reads). */
    struct Stats
    {
        /** Simulations actually executed (memo/store misses),
         *  including ones that subsequently failed. */
        std::uint64_t simulations = 0;
        /** Submissions served from the attached result store. */
        std::uint64_t store_hits = 0;
        /** Simulations that ended in a RunFailure instead of a
         *  result (their futures rethrow; nothing is stored). */
        std::uint64_t failed_runs = 0;
    };

    /** @param threads Worker count; 0 resolves the default above. */
    explicit RunExecutor(unsigned threads = 0);
    ~RunExecutor();

    RunExecutor(const RunExecutor &) = delete;
    RunExecutor &operator=(const RunExecutor &) = delete;

    /** The process-wide executor used by the sim::runGroup family. */
    static RunExecutor &instance();

    /**
     * Worker count the first instance() construction uses (0 = the
     * default resolution). Lets api::applyCliThreads() build the pool at
     * the requested size directly instead of spawning a full
     * hardware_concurrency pool only to tear it down; once the
     * process-wide executor exists this is a no-op — use setThreads().
     */
    static void requestInitialThreads(unsigned threads);

    /**
     * Enqueues every not-yet-cached key for background execution and
     * returns immediately. Benches call this with their full sweep
     * before collecting any result.
     */
    void prefetch(const std::vector<RunKey> &keys);

    /**
     * Result of the simulation @p key describes, running it (or waiting
     * for its in-flight run) if needed. While waiting, the calling
     * thread helps drain the queue instead of idling. The reference
     * stays valid until clear().
     */
    const RunResult &run(const RunKey &key);

    /**
     * Drains the executor (waits until the queue is empty and no
     * worker or helping caller is inside a run), asserts the drained
     * state, then empties the memo cache.
     *
     * Contract: clear() must not race with concurrent prefetch()/run()
     * calls from other threads — results handed out before clear()
     * dangle afterwards, and a submission racing the drain would be
     * executed into a cache the caller just invalidated. The executor
     * asserts the queue is still empty at clearing time to catch such
     * misuse.
     */
    void clear();

    /** Stops, joins and respawns the pool with @p threads workers
     *  (0 = resolve the default). Pending work is carried over; when
     *  the pool has not started yet only the configured size changes
     *  (it stays lazy). */
    void setThreads(unsigned threads);

    /** Configured worker count (what the pool starts with). */
    unsigned threads() const;

    /** Worker threads actually spawned: 0 until the first submission
     *  that needs a simulation, so a fully store-served sweep reports
     *  0 here while threads() still reports the configured size. */
    unsigned activeWorkers() const;

    /**
     * Attaches the disk-backed result store consulted on every
     * submission: a stored key is served as a ready future (counted
     * in Stats::store_hits) without enqueueing work or starting the
     * pool, and every simulation that does run is recorded back into
     * the store on completion. Pass nullptr to detach. Admin call —
     * do not race concurrent prefetch()/run().
     */
    void attachStore(std::shared_ptr<store::ResultStore> result_store);

    /** The attached result store (null when none). */
    std::shared_ptr<store::ResultStore> attachedStore() const;

    /** Run-count counters (cumulative; never reset by clear()). */
    Stats stats() const;

  private:
    using ResultPtr = std::shared_ptr<const RunResult>;
    using Future = std::shared_future<ResultPtr>;

    Future submit(const RunKey &key);
    void workerLoop();
    /** Spawns the pool at the configured size if it is not running.
     *  Called with mutex_ held. */
    void ensureWorkersStarted();
    void startWorkers(unsigned threads);
    void stopWorkers();

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    /** Signalled whenever a task completes (clear() drains on it). */
    std::condition_variable drain_cv_;
    std::deque<std::function<void()>> queue_;
    std::unordered_map<RunKey, Future, RunKeyHash> cache_;
    std::vector<std::thread> workers_;
    /** Tasks currently executing (workers + helping callers). */
    unsigned busy_ = 0;
    bool stop_ = false;
    /** Size the pool spawns at (lazily, on first queued work). */
    unsigned configured_threads_ = 0;
    /** Disk-backed store consulted before enqueueing (may be null). */
    std::shared_ptr<store::ResultStore> store_;
    std::atomic<std::uint64_t> simulations_{0};
    std::atomic<std::uint64_t> store_hits_{0};
    std::atomic<std::uint64_t> failed_runs_{0};
};

} // namespace coopsim::sim

#endif // COOPSIM_SIM_EXECUTOR_HPP
