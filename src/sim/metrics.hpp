/**
 * @file
 * Evaluation metrics (paper Section 3.3) and normalisation helpers.
 */

#ifndef COOPSIM_SIM_METRICS_HPP
#define COOPSIM_SIM_METRICS_HPP

#include <vector>

#include "sim/system.hpp"

namespace coopsim::sim
{

/**
 * Weighted speedup: sum over applications of IPC_shared / IPC_alone
 * (Equation 1 of the paper).
 *
 * @param shared Result of the co-scheduled run.
 * @param alone_ipcs IPC of each application running in isolation, in
 *        the same order as shared.apps.
 */
double weightedSpeedup(const RunResult &shared,
                       const std::vector<double> &alone_ipcs);

/** value / baseline, guarding against a zero baseline. */
double normalizeTo(double value, double baseline);

/**
 * Per-scheme series normalised to a baseline scheme, as every figure
 * in the paper reports ("Normalised to Fair Share").
 */
std::vector<double> normalizeSeries(const std::vector<double> &values,
                                    const std::vector<double> &baseline);

} // namespace coopsim::sim

#endif // COOPSIM_SIM_METRICS_HPP
