#include "store/result_store.hpp"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include <fcntl.h>
#include <unistd.h>

#include "api/parse_util.hpp"
#include "api/spec.hpp"
#include "common/logging.hpp"
#include "supervise/fault.hpp"

namespace coopsim::store
{

using api::detail::fmtDouble;
using api::detail::splitWords;
using api::detail::tryParseDouble;
using api::detail::tryParseUint;

namespace
{

/** Splits on @p sep; the empty string yields no tokens (so an empty
 *  list round-trips), but "a;;b" yields an empty middle token, which
 *  the callers reject. */
std::vector<std::string>
splitOn(const std::string &text, char sep)
{
    std::vector<std::string> tokens;
    if (text.empty()) {
        return tokens;
    }
    std::size_t start = 0;
    for (;;) {
        const std::size_t pos = text.find(sep, start);
        if (pos == std::string::npos) {
            tokens.push_back(text.substr(start));
            return tokens;
        }
        tokens.push_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

} // namespace

std::string
shardFileName(unsigned index, unsigned count)
{
    return "shard-" + std::to_string(index) + "of" +
           std::to_string(count) + kStoreExtension;
}

// ---------------------------------------------------------------------------
// Line checksums

namespace
{

/** The `\t#crc32=` trailer marker; '#' keeps pre-CRC parsers from
 *  mistaking the trailer for result fields. */
constexpr const char *kCrcMarker = "#crc32=";
constexpr std::size_t kCrcHexDigits = 8;

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t n = 0; n < 256; ++n) {
        std::uint32_t c = n;
        for (int bit = 0; bit < 8; ++bit) {
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        }
        table[n] = c;
    }
    return table;
}

} // namespace

std::uint32_t
crc32(const char *data, std::size_t len)
{
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    std::uint32_t crc = 0xffffffffu;
    for (std::size_t i = 0; i < len; ++i) {
        crc = table[(crc ^ static_cast<unsigned char>(data[i])) & 0xffu] ^
              (crc >> 8);
    }
    return crc ^ 0xffffffffu;
}

std::uint32_t
crc32(const std::string &data)
{
    return crc32(data.data(), data.size());
}

std::string
withCrcSuffix(const std::string &body)
{
    char hex[kCrcHexDigits + 1];
    std::snprintf(hex, sizeof(hex), "%08x", crc32(body));
    return body + "\t" + kCrcMarker + hex;
}

LineCheck
splitCrcSuffix(const std::string &line, std::string &body)
{
    const std::size_t marker_len = std::strlen(kCrcMarker);
    const std::size_t suffix_len = 1 + marker_len + kCrcHexDigits;
    if (line.size() < suffix_len ||
        line[line.size() - suffix_len] != '\t' ||
        line.compare(line.size() - suffix_len + 1, marker_len,
                     kCrcMarker) != 0) {
        body = line;
        return LineCheck::Legacy;
    }
    body = line.substr(0, line.size() - suffix_len);
    char hex[kCrcHexDigits + 1];
    std::snprintf(hex, sizeof(hex), "%08x", crc32(body));
    return line.compare(line.size() - kCrcHexDigits, kCrcHexDigits,
                        hex) == 0
               ? LineCheck::Ok
               : LineCheck::Mismatch;
}

// ---------------------------------------------------------------------------
// RunResult line encoding

std::string
formatResult(const sim::RunResult &result)
{
    std::string out;
    auto field = [&out](const char *name, const std::string &value) {
        out += out.empty() ? "" : " ";
        out += name;
        out += "=";
        out += value;
    };
    auto u = [](std::uint64_t value) { return std::to_string(value); };

    field("cycles", u(result.total_cycles));
    field("dyn_nj", fmtDouble(result.dynamic_energy_nj));
    field("data_nj", fmtDouble(result.data_energy_nj));
    field("static_nj", fmtDouble(result.static_energy_nj));
    field("probed", fmtDouble(result.avg_ways_probed));
    field("donor_hits", u(result.donor_hits));
    field("donor_misses", u(result.donor_misses));
    field("recip_hits", u(result.recipient_hits));
    field("recip_misses", u(result.recipient_misses));
    field("xfer_avg", fmtDouble(result.avg_transfer_cycles));
    field("xfers", u(result.completed_transfers));
    field("flushed", u(result.flushed_lines));
    field("reparts", u(result.repartitions));
    field("epochs", u(result.epochs));
    field("flush_bin", u(result.flush_series_bin));
    {
        std::string series;
        for (const std::uint64_t value : result.flush_series) {
            series += series.empty() ? "" : ",";
            series += u(value);
        }
        field("flush_series", series);
    }
    field("dram_reads", u(result.dram_reads));
    field("dram_wb", u(result.dram_writebacks));
    field("dram_flush", u(result.dram_flushes));
    {
        std::string apps;
        for (const sim::AppResult &app : result.apps) {
            apps += apps.empty() ? "" : ";";
            apps += app.name;
            for (const std::string &part :
                 {fmtDouble(app.ipc), u(app.insts), u(app.cycles),
                  u(app.llc_accesses), u(app.llc_hits),
                  u(app.llc_misses), fmtDouble(app.mpki)}) {
                apps += ":";
                apps += part;
            }
        }
        field("apps", apps);
    }
    field("bank_conflicts", u(result.bank_conflicts));
    field("bank_conflict_cycles", u(result.bank_conflict_cycles));
    // Sampling fields are appended only for sampled runs, so every
    // exact result line stays byte-identical to the pre-sampling
    // encoding (same contract as the bank pair above).
    if (result.sample_windows > 0) {
        field("samp_windows", u(result.sample_windows));
        std::string cis;
        for (const sim::AppResult &app : result.apps) {
            cis += cis.empty() ? "" : ";";
            cis += fmtDouble(app.ipc_ci);
        }
        field("samp_ci", cis);
    }
    return out;
}

bool
tryParseResult(const std::string &text, sim::RunResult &out)
{
    const std::vector<std::string> words = splitWords(text);
    std::size_t i = 0;
    std::string value;
    // Fields are parsed in the exact formatResult() order: a missing,
    // reordered or unknown field is a parse failure, so a truncated
    // line can never load as a plausible-but-wrong result.
    auto next = [&](const char *name) -> bool {
        if (i >= words.size()) {
            return false;
        }
        const std::string &word = words[i];
        const std::size_t len = std::strlen(name);
        if (word.size() < len + 1 || word.compare(0, len, name) != 0 ||
            word[len] != '=') {
            return false;
        }
        value = word.substr(len + 1);
        ++i;
        return true;
    };
    auto takeU = [&](const char *name, std::uint64_t &dst) {
        return next(name) && tryParseUint(value, dst);
    };
    auto takeD = [&](const char *name, double &dst) {
        return next(name) && tryParseDouble(value, dst);
    };

    sim::RunResult result;
    if (!takeU("cycles", result.total_cycles) ||
        !takeD("dyn_nj", result.dynamic_energy_nj) ||
        !takeD("data_nj", result.data_energy_nj) ||
        !takeD("static_nj", result.static_energy_nj) ||
        !takeD("probed", result.avg_ways_probed) ||
        !takeU("donor_hits", result.donor_hits) ||
        !takeU("donor_misses", result.donor_misses) ||
        !takeU("recip_hits", result.recipient_hits) ||
        !takeU("recip_misses", result.recipient_misses) ||
        !takeD("xfer_avg", result.avg_transfer_cycles) ||
        !takeU("xfers", result.completed_transfers) ||
        !takeU("flushed", result.flushed_lines) ||
        !takeU("reparts", result.repartitions) ||
        !takeU("epochs", result.epochs) ||
        !takeU("flush_bin", result.flush_series_bin)) {
        return false;
    }
    if (!next("flush_series")) {
        return false;
    }
    for (const std::string &token : splitOn(value, ',')) {
        std::uint64_t bin = 0;
        if (!tryParseUint(token, bin)) {
            return false;
        }
        result.flush_series.push_back(bin);
    }
    if (!takeU("dram_reads", result.dram_reads) ||
        !takeU("dram_wb", result.dram_writebacks) ||
        !takeU("dram_flush", result.dram_flushes)) {
        return false;
    }
    if (!next("apps")) {
        return false;
    }
    for (const std::string &record : splitOn(value, ';')) {
        const std::vector<std::string> parts = splitOn(record, ':');
        if (parts.size() != 8 || parts[0].empty()) {
            return false;
        }
        sim::AppResult app;
        app.name = parts[0];
        if (!tryParseDouble(parts[1], app.ipc) ||
            !tryParseUint(parts[2], app.insts) ||
            !tryParseUint(parts[3], app.cycles) ||
            !tryParseUint(parts[4], app.llc_accesses) ||
            !tryParseUint(parts[5], app.llc_hits) ||
            !tryParseUint(parts[6], app.llc_misses) ||
            !tryParseDouble(parts[7], app.mpki)) {
            return false;
        }
        result.apps.push_back(std::move(app));
    }
    // Bank-contention fields: optional as a trailing pair, so result
    // lines written before banking existed still load (as zero).
    if (i < words.size()) {
        if (!takeU("bank_conflicts", result.bank_conflicts) ||
            !takeU("bank_conflict_cycles",
                   result.bank_conflict_cycles)) {
            return false;
        }
    }
    // Sampling fields: a second optional trailing group, nested after
    // the bank pair, so both pre-banking and pre-sampling lines load.
    if (i < words.size()) {
        if (!takeU("samp_windows", result.sample_windows) ||
            result.sample_windows == 0 || !next("samp_ci")) {
            return false;
        }
        const std::vector<std::string> cis = splitOn(value, ';');
        if (cis.size() != result.apps.size()) {
            return false;
        }
        for (std::size_t a = 0; a < cis.size(); ++a) {
            if (!tryParseDouble(cis[a], result.apps[a].ipc_ci)) {
                return false;
            }
        }
    }
    if (i != words.size()) {
        return false; // trailing garbage
    }
    out = std::move(result);
    return true;
}

sim::RunResult
parseResult(const std::string &text)
{
    sim::RunResult result;
    if (!tryParseResult(text, result)) {
        COOPSIM_FATAL("invalid result encoding '", text, "'");
    }
    return result;
}

std::string
formatStoreLine(const sim::RunKey &key, const sim::RunResult &result)
{
    return api::formatRunKey(key) + "\t" + formatResult(result);
}

bool
tryParseStoreLine(const std::string &line, sim::RunKey &key,
                  sim::RunResult &result)
{
    const std::size_t tab = line.find('\t');
    if (tab == std::string::npos) {
        return false;
    }
    return api::tryParseRunKey(line.substr(0, tab), key) &&
           tryParseResult(line.substr(tab + 1), result);
}

// ---------------------------------------------------------------------------
// ResultStore

void
ResultStore::put(const sim::RunKey &key, const sim::RunResult &result)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
        entries_[it->second].second = result;
        return;
    }
    index_.emplace(key, entries_.size());
    entries_.emplace_back(key, result);
}

std::optional<sim::RunResult>
ResultStore::find(const sim::RunKey &key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
        return std::nullopt;
    }
    return entries_[it->second].second;
}

std::size_t
ResultStore::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::vector<sim::RunKey>
ResultStore::keys() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<sim::RunKey> keys;
    keys.reserve(entries_.size());
    for (const auto &[key, result] : entries_) {
        keys.push_back(key);
    }
    return keys;
}

void
ResultStore::merge(const ResultStore &other)
{
    std::vector<std::pair<sim::RunKey, sim::RunResult>> copy;
    {
        std::lock_guard<std::mutex> lock(other.mutex_);
        copy = other.entries_;
    }
    for (const auto &[key, result] : copy) {
        put(key, result);
    }
}

std::size_t
ResultStore::loadFile(const std::string &path)
{
    return loadFileOutcome(path).loaded;
}

ResultStore::FileOutcome
ResultStore::loadFileOutcome(const std::string &path)
{
    FileOutcome outcome;
    std::ifstream file(path);
    if (!file) {
        COOPSIM_WARN("cannot open result store file '", path,
                     "'; skipped");
        outcome.open_failed = true;
        return outcome;
    }
    std::string line;
    if (!std::getline(file, line) || line != kStoreMagic) {
        COOPSIM_WARN(path, ": not a coopsim result store (expected '",
                     kStoreMagic, "' header); skipped");
        outcome.bad_magic = true;
        return outcome;
    }
    std::size_t skipped = 0;
    std::size_t legacy = 0;
    std::size_t lineno = 1;
    std::string body;
    while (std::getline(file, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#') {
            continue;
        }
        ++outcome.candidates;
        const LineCheck check = splitCrcSuffix(line, body);
        if (check == LineCheck::Mismatch) {
            COOPSIM_WARN(path, ":", lineno,
                         ": store line fails its CRC32; skipped");
            ++skipped;
            continue;
        }
        sim::RunKey key;
        sim::RunResult result;
        if (!tryParseStoreLine(body, key, result)) {
            COOPSIM_WARN(path, ":", lineno,
                         ": corrupt or truncated store line skipped");
            ++skipped;
            continue;
        }
        if (check == LineCheck::Legacy) {
            ++legacy;
        }
        put(key, result);
        ++outcome.loaded;
    }
    if (legacy > 0) {
        COOPSIM_WARN(path, ": ", legacy,
                     " pre-CRC store line(s) loaded without checksum "
                     "protection (re-save to upgrade)");
    }
    lines_loaded_.fetch_add(outcome.loaded, std::memory_order_relaxed);
    lines_skipped_.fetch_add(skipped, std::memory_order_relaxed);
    lines_legacy_.fetch_add(legacy, std::memory_order_relaxed);
    return outcome;
}

std::size_t
ResultStore::loadDir(const std::string &dir)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) {
        return 0;
    }
    std::vector<std::string> paths;
    for (const fs::directory_entry &entry : fs::directory_iterator(dir)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == kStoreExtension) {
            paths.push_back(entry.path().string());
        }
    }
    std::sort(paths.begin(), paths.end());
    std::size_t loaded = 0;
    for (const std::string &path : paths) {
        const FileOutcome outcome = loadFileOutcome(path);
        loaded += outcome.loaded;
        // Quarantine a file that contributed nothing despite holding
        // content: renamed out of the *.coopstore glob so one
        // poisoned shard file cannot warn-spam every later load —
        // and stays on disk for post-mortems. A legitimately empty
        // store (magic only) is left alone.
        const bool poisoned =
            outcome.bad_magic ||
            (outcome.candidates > 0 && outcome.loaded == 0);
        if (poisoned && !outcome.open_failed) {
            const std::string quarantined = path + ".quarantined";
            fs::rename(path, quarantined, ec);
            if (ec) {
                COOPSIM_WARN("cannot quarantine '", path, "': ",
                             ec.message());
            } else {
                COOPSIM_WARN(path, ": no valid store lines; "
                             "quarantined as '", quarantined, "'");
            }
            files_quarantined_.fetch_add(1, std::memory_order_relaxed);
        }
    }
    return loaded;
}

ResultStore::Stats
ResultStore::stats() const
{
    Stats stats;
    stats.lines_loaded = lines_loaded_.load(std::memory_order_relaxed);
    stats.lines_skipped =
        lines_skipped_.load(std::memory_order_relaxed);
    stats.lines_legacy = lines_legacy_.load(std::memory_order_relaxed);
    stats.files_quarantined =
        files_quarantined_.load(std::memory_order_relaxed);
    return stats;
}

void
ResultStore::save(const std::string &path) const
{
    std::string error;
    if (!trySave(path, error)) {
        COOPSIM_FATAL(error);
    }
}

bool
ResultStore::trySave(const std::string &path, std::string &error) const
{
    namespace fs = std::filesystem;
    std::vector<std::string> lines;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        lines.reserve(entries_.size());
        for (const auto &[key, result] : entries_) {
            lines.push_back(formatStoreLine(key, result));
        }
    }
    // Sorted lines make the file content a function of the entry set
    // alone, not of the (parallel, nondeterministic) completion order.
    // Sorting happens before the CRC suffix is appended so the order
    // is defined by the key encoding, never by checksum bytes.
    std::sort(lines.begin(), lines.end());

    std::string content = kStoreMagic;
    content += "\n";
    for (const std::string &line : lines) {
        content += withCrcSuffix(line);
        content += "\n";
    }

    // Deterministic fault injection (supervise/fault.hpp): each fires
    // at most once per arming, at this exact point, so tests can
    // assert the loader's exact skip counts and the supervisor's
    // retry-on-invalid-shard behaviour.
    if (supervise::consumeFault(supervise::FaultKind::CorruptStore) &&
        !lines.empty()) {
        // Flip the last CRC digit of the first entry line: the line
        // still parses structurally but fails its checksum.
        const std::size_t pos = content.find('\n') + 1;
        const std::size_t crc_end =
            content.find('\n', pos) - 1;
        content[crc_end] = content[crc_end] == '0' ? '1' : '0';
    }
    if (supervise::consumeFault(supervise::FaultKind::PartialWrite)) {
        // A torn write: half the content, cut mid-line, but still
        // renamed into place as if the writer died after the rename
        // was queued.
        content.resize(content.size() / 2);
    }

    const fs::path target(path);
    std::error_code ec;
    if (target.has_parent_path()) {
        fs::create_directories(target.parent_path(), ec);
        if (ec) {
            error = "cannot create store directory '" +
                    target.parent_path().string() +
                    "': " + ec.message();
            return false;
        }
    }
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                          0644);
    if (fd < 0) {
        error = "cannot write store file '" + tmp +
                "': " + std::strerror(errno);
        return false;
    }
    std::size_t written = 0;
    while (written < content.size()) {
        const ssize_t n = ::write(fd, content.data() + written,
                                  content.size() - written);
        if (n < 0) {
            error = "write to store file '" + tmp +
                    "' failed: " + std::strerror(errno) +
                    " (partial temp file left at '" + tmp + "')";
            ::close(fd);
            return false;
        }
        written += static_cast<std::size_t>(n);
    }
    // fsync before rename: the rename must never publish a file whose
    // data is still only in the page cache — a power cut after an
    // unsynced rename is exactly the torn store this layer defends
    // against.
    if (::fsync(fd) != 0) {
        error = "fsync of store file '" + tmp +
                "' failed: " + std::strerror(errno) +
                " (temp file left at '" + tmp + "')";
        ::close(fd);
        return false;
    }
    if (::close(fd) != 0) {
        error = "close of store file '" + tmp +
                "' failed: " + std::strerror(errno) +
                " (temp file left at '" + tmp + "')";
        return false;
    }
    fs::rename(tmp, target, ec);
    if (ec) {
        // The flushed temp file holds every result; losing the
        // rename must not lose the data, so say exactly where it is.
        error = "cannot rename '" + tmp + "' over '" + path +
                "': " + ec.message() +
                " (results preserved in '" + tmp + "')";
        return false;
    }
    // Best-effort directory fsync so the rename itself is durable.
    if (target.has_parent_path()) {
        const int dir_fd =
            ::open(target.parent_path().c_str(),
                   O_RDONLY | O_DIRECTORY | O_CLOEXEC);
        if (dir_fd >= 0) {
            ::fsync(dir_fd);
            ::close(dir_fd);
        }
    }
    return true;
}

} // namespace coopsim::store
