/**
 * @file
 * Disk-backed, RunKey-addressed result store.
 *
 * The paper's figures are cross-products over (scheme x workload group
 * x threshold x seed); distributing that run-key space across
 * processes or hosts only works if completed simulations can be
 * persisted, shipped and folded back together. A ResultStore is that
 * persistence layer:
 *
 *  - each entry is one line, `formatRunKey(k) '\t' formatResult(r)` —
 *    the canonical RunKey encoding (api/spec.hpp) is the merge key, so
 *    any two stores produced by any two hosts can be combined;
 *  - files are written atomically (write to `<path>.tmp`, then
 *    rename), so a reader never observes a half-written store and a
 *    crashed writer leaves the previous file intact;
 *  - loading merges with last-writer-wins dedup (later files/lines
 *    replace earlier entries for the same key), and corrupt or
 *    truncated lines are skipped with a warning instead of poisoning
 *    the store;
 *  - sim::RunExecutor::attachStore() serves cache hits from a store
 *    before any simulation is enqueued and records every completed
 *    run back into it, turning repeated sweeps into O(cache misses).
 *
 * The result encoding round-trips every field of sim::RunResult
 * bit-exactly (doubles via the shortest-exact fmtDouble encoding), so
 * a figure table rendered from stored results is bit-identical to one
 * rendered from fresh simulations. App names must not contain
 * whitespace, ':' or ';' (the built-in SPEC benchmark names never do).
 *
 * Thread-safety: put()/find()/size() are safe to call concurrently
 * (executor workers record results while the submitting thread probes
 * for hits). Loading, saving and merging are administrative and must
 * not race mutation.
 */

#ifndef COOPSIM_STORE_RESULT_STORE_HPP
#define COOPSIM_STORE_RESULT_STORE_HPP

#include <cstddef>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/executor.hpp"

namespace coopsim::store
{

/** First line of every store file. */
inline constexpr const char *kStoreMagic = "coopsim-store v1";

/** Store files are `<name>.coopstore`; loadDir() reads every one. */
inline constexpr const char *kStoreExtension = ".coopstore";

/** The file an unsharded or merged sweep persists to. */
inline constexpr const char *kMergedFileName = "results.coopstore";

/** The file `--shard=I/N` persists its slice to ("shard-0of2.coopstore"). */
std::string shardFileName(unsigned index, unsigned count);

/** Canonical single-line encoding of every RunResult field (doubles
 *  round-trip bit-exactly). */
std::string formatResult(const sim::RunResult &result);

/** Strict parse of formatResult() output; false on any malformed,
 *  reordered, truncated or trailing content. */
bool tryParseResult(const std::string &text, sim::RunResult &out);

/** tryParseResult or fatal. */
sim::RunResult parseResult(const std::string &text);

/** One store line: `formatRunKey(key) '\t' formatResult(result)`. */
std::string formatStoreLine(const sim::RunKey &key,
                            const sim::RunResult &result);

/** Splits and parses one store line; false when either half is
 *  malformed (unknown registry names included). */
bool tryParseStoreLine(const std::string &line, sim::RunKey &key,
                       sim::RunResult &result);

/**
 * An in-memory map of RunKey -> RunResult with the disk format above.
 * Entries keep insertion order internally; save() emits lines sorted
 * by their key encoding so identical contents produce identical files
 * regardless of completion order.
 */
class ResultStore
{
  public:
    /** Inserts or replaces (last-writer-wins) the entry for @p key. */
    void put(const sim::RunKey &key, const sim::RunResult &result);

    /** Copy of the stored result for @p key, if any. */
    std::optional<sim::RunResult> find(const sim::RunKey &key) const;

    bool contains(const sim::RunKey &key) const
    {
        return find(key).has_value();
    }

    std::size_t size() const;

    /** Stored keys, in insertion order. */
    std::vector<sim::RunKey> keys() const;

    /** Folds @p other into this store; @p other wins on shared keys. */
    void merge(const ResultStore &other);

    /**
     * Merges one store file into this store (last-writer-wins against
     * existing entries). Returns the number of entries loaded. A
     * missing file, a file without the magic header, and corrupt or
     * truncated lines are skipped with a warning — a crash mid-append
     * never poisons the surviving entries.
     */
    std::size_t loadFile(const std::string &path);

    /** loadFile() on every `*.coopstore` in @p dir, in lexical
     *  filename order (later files win). Missing dir loads nothing. */
    std::size_t loadDir(const std::string &dir);

    /**
     * Atomically writes the whole store to @p path: the content goes
     * to `<path>.tmp` first and is renamed over @p path only after a
     * successful flush. Parent directories are created as needed.
     */
    void save(const std::string &path) const;

  private:
    mutable std::mutex mutex_;
    /** Insertion-ordered entries; index_ maps key -> position. */
    std::vector<std::pair<sim::RunKey, sim::RunResult>> entries_;
    std::unordered_map<sim::RunKey, std::size_t, sim::RunKeyHash> index_;
};

} // namespace coopsim::store

#endif // COOPSIM_STORE_RESULT_STORE_HPP
