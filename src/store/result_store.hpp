/**
 * @file
 * Disk-backed, RunKey-addressed result store.
 *
 * The paper's figures are cross-products over (scheme x workload group
 * x threshold x seed); distributing that run-key space across
 * processes or hosts only works if completed simulations can be
 * persisted, shipped and folded back together. A ResultStore is that
 * persistence layer:
 *
 *  - each entry is one line, `formatRunKey(k) '\t' formatResult(r)
 *    '\t' #crc32=XXXXXXXX` — the canonical RunKey encoding
 *    (api/spec.hpp) is the merge key, so any two stores produced by
 *    any two hosts can be combined, and the CRC32 suffix detects
 *    torn or bit-flipped lines that still parse structurally (lines
 *    written before the CRC era load with a warning, counted in
 *    Stats::lines_legacy);
 *  - files are written durably and atomically (write to `<path>.tmp`,
 *    fsync, then rename), so a reader never observes a half-written
 *    store and a crashed writer leaves the previous file intact;
 *    trySave() is the non-fatal variant the atexit save uses — a
 *    failed write or rename (ENOSPC, read-only fs) reports the
 *    preserved temp file instead of losing results or exiting;
 *  - loading merges with last-writer-wins dedup (later files/lines
 *    replace earlier entries for the same key), corrupt or truncated
 *    lines are skipped with a warning instead of poisoning the store
 *    (counted in Stats::lines_skipped), and loadDir() quarantines
 *    files that yield zero valid lines (renamed to
 *    `<file>.quarantined` so they stop matching the store glob);
 *  - sim::RunExecutor::attachStore() serves cache hits from a store
 *    before any simulation is enqueued and records every completed
 *    run back into it, turning repeated sweeps into O(cache misses).
 *
 * The result encoding round-trips every field of sim::RunResult
 * bit-exactly (doubles via the shortest-exact fmtDouble encoding), so
 * a figure table rendered from stored results is bit-identical to one
 * rendered from fresh simulations. App names must not contain
 * whitespace, ':' or ';' (the built-in SPEC benchmark names never do).
 *
 * Thread-safety: put()/find()/size() are safe to call concurrently
 * (executor workers record results while the submitting thread probes
 * for hits). Loading, saving and merging are administrative and must
 * not race mutation.
 */

#ifndef COOPSIM_STORE_RESULT_STORE_HPP
#define COOPSIM_STORE_RESULT_STORE_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/executor.hpp"

namespace coopsim::store
{

/** First line of every store file. */
inline constexpr const char *kStoreMagic = "coopsim-store v1";

/** Store files are `<name>.coopstore`; loadDir() reads every one. */
inline constexpr const char *kStoreExtension = ".coopstore";

/** The file an unsharded or merged sweep persists to. */
inline constexpr const char *kMergedFileName = "results.coopstore";

/** The file `--shard=I/N` persists its slice to ("shard-0of2.coopstore"). */
std::string shardFileName(unsigned index, unsigned count);

/** CRC-32 (IEEE 802.3, the zlib polynomial) of @p data. */
std::uint32_t crc32(const std::string &data);

/** Range overload: the same CRC-32 without building a string — the
 *  trace codec checksums frame payloads in place with it. */
std::uint32_t crc32(const char *data, std::size_t len);

/** `<body>\t#crc32=XXXXXXXX` — the suffixed store line save() emits;
 *  the checksum covers exactly @p body. */
std::string withCrcSuffix(const std::string &body);

/** Classification of one store line's checksum trailer. */
enum class LineCheck
{
    /** CRC suffix present and matching; @p body holds the line
     *  without it. */
    Ok,
    /** No CRC suffix (a pre-CRC store); the whole line is the body
     *  and loads normally, counted as legacy. */
    Legacy,
    /** CRC suffix present but wrong — the line is corrupt even if it
     *  would still parse. */
    Mismatch,
};

/** Splits and verifies the `\t#crc32=` trailer of @p line. */
LineCheck splitCrcSuffix(const std::string &line, std::string &body);

/** Canonical single-line encoding of every RunResult field (doubles
 *  round-trip bit-exactly). */
std::string formatResult(const sim::RunResult &result);

/** Strict parse of formatResult() output; false on any malformed,
 *  reordered, truncated or trailing content. */
bool tryParseResult(const std::string &text, sim::RunResult &out);

/** tryParseResult or fatal. */
sim::RunResult parseResult(const std::string &text);

/** One store line: `formatRunKey(key) '\t' formatResult(result)`. */
std::string formatStoreLine(const sim::RunKey &key,
                            const sim::RunResult &result);

/** Splits and parses one store line; false when either half is
 *  malformed (unknown registry names included). */
bool tryParseStoreLine(const std::string &line, sim::RunKey &key,
                       sim::RunResult &result);

/**
 * An in-memory map of RunKey -> RunResult with the disk format above.
 * Entries keep insertion order internally; save() emits lines sorted
 * by their key encoding so identical contents produce identical files
 * regardless of completion order.
 */
class ResultStore
{
  public:
    /** Load-health counters, cumulative over every loadFile/loadDir
     *  call on this store (the CLI surfaces them on stderr). */
    struct Stats
    {
        /** Entry lines loaded successfully. */
        std::uint64_t lines_loaded = 0;
        /** Corrupt, truncated or CRC-mismatched lines skipped. */
        std::uint64_t lines_skipped = 0;
        /** Pre-CRC lines loaded (old stores; still trusted). */
        std::uint64_t lines_legacy = 0;
        /** Files loadDir() renamed to `.quarantined` because no line
         *  in them was valid (bad magic or all lines corrupt). */
        std::uint64_t files_quarantined = 0;
    };

    /** Inserts or replaces (last-writer-wins) the entry for @p key. */
    void put(const sim::RunKey &key, const sim::RunResult &result);

    /** Copy of the stored result for @p key, if any. */
    std::optional<sim::RunResult> find(const sim::RunKey &key) const;

    bool contains(const sim::RunKey &key) const
    {
        return find(key).has_value();
    }

    std::size_t size() const;

    /** Stored keys, in insertion order. */
    std::vector<sim::RunKey> keys() const;

    /** Folds @p other into this store; @p other wins on shared keys. */
    void merge(const ResultStore &other);

    /**
     * Merges one store file into this store (last-writer-wins against
     * existing entries). Returns the number of entries loaded. A
     * missing file, a file without the magic header, and corrupt or
     * truncated lines are skipped with a warning — a crash mid-append
     * never poisons the surviving entries.
     */
    std::size_t loadFile(const std::string &path);

    /**
     * loadFile() on every `*.coopstore` in @p dir, in lexical
     * filename order (later files win). Missing dir loads nothing.
     * A file that yields zero valid lines despite having candidate
     * lines (or lacks the magic header) is quarantined: renamed to
     * `<file>.quarantined` — out of the store glob, so a poisoned
     * shard file cannot re-trip every later load or be clobbered
     * silently — and counted in Stats::files_quarantined.
     */
    std::size_t loadDir(const std::string &dir);

    /**
     * Atomically and durably writes the whole store to @p path: the
     * content goes to `<path>.tmp` first and is renamed over @p path
     * only after a successful write + fsync. Parent directories are
     * created as needed. Fatal on failure (see trySave()).
     */
    void save(const std::string &path) const;

    /**
     * save() without the fatal: returns false and fills @p error on
     * any write/flush/rename failure. When the data reached the temp
     * file but could not be renamed into place (ENOSPC on the target,
     * read-only directory), the temp file is left on disk and named
     * in @p error so the results remain recoverable — the atexit
     * store save reports this loudly instead of dying or silently
     * losing the sweep.
     */
    bool trySave(const std::string &path, std::string &error) const;

    /** Cumulative load-health counters. */
    Stats stats() const;

  private:
    /** Per-file outcome loadDir() bases its quarantine decision on. */
    struct FileOutcome
    {
        std::size_t loaded = 0;
        /** Non-comment, non-blank lines seen. */
        std::size_t candidates = 0;
        bool open_failed = false;
        bool bad_magic = false;
    };

    FileOutcome loadFileOutcome(const std::string &path);

    mutable std::mutex mutex_;
    /** Insertion-ordered entries; index_ maps key -> position. */
    std::vector<std::pair<sim::RunKey, sim::RunResult>> entries_;
    std::unordered_map<sim::RunKey, std::size_t, sim::RunKeyHash> index_;
    std::atomic<std::uint64_t> lines_loaded_{0};
    std::atomic<std::uint64_t> lines_skipped_{0};
    std::atomic<std::uint64_t> lines_legacy_{0};
    std::atomic<std::uint64_t> files_quarantined_{0};
};

} // namespace coopsim::store

#endif // COOPSIM_STORE_RESULT_STORE_HPP
