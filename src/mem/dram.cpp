#include "mem/dram.hpp"

#include <algorithm>

#include "common/geometry.hpp"
#include "common/logging.hpp"

namespace coopsim::mem
{

DramModel::DramModel(const DramConfig &config)
    : config_(config),
      bank_ready_(config.banks, 0),
      inflight_(config.max_outstanding, 0)
{
    COOPSIM_ASSERT(config.banks > 0, "DRAM needs at least one bank");
    COOPSIM_ASSERT(config.max_outstanding > 0, "outstanding window empty");
    COOPSIM_ASSERT(isPowerOfTwo(config.block_bytes),
                   "block size must be a power of two");
}

std::uint32_t
DramModel::bankOf(Addr addr) const
{
    // Bank-interleave on block-granular address bits.
    const std::uint32_t block_bits = floorLog2(config_.block_bytes);
    return static_cast<std::uint32_t>((addr >> block_bits) % config_.banks);
}

Cycle
DramModel::schedule(Addr addr, Cycle now)
{
    // The outstanding-request window: when full, a new request cannot
    // start before the oldest in-flight request completes.
    Cycle start = now;
    const Cycle oldest = inflight_[inflight_head_];
    start = std::max(start, oldest);

    // Bank conflict: wait for the bank to free up.
    const std::uint32_t bank = bankOf(addr);
    start = std::max(start, bank_ready_[bank]);

    const Cycle done = start + config_.access_latency;
    bank_ready_[bank] = start + config_.bank_occupancy;

    inflight_[inflight_head_] = done;
    inflight_head_ = (inflight_head_ + 1) % inflight_.size();

    stats_.queue_delay.sample(static_cast<double>(start - now));
    return done;
}

Cycle
DramModel::access(Addr addr, AccessType type, Cycle now)
{
    if (type == AccessType::Write) {
        stats_.writes.inc();
    } else {
        stats_.reads.inc();
    }
    return schedule(addr, now);
}

void
DramModel::writeback(Addr addr, Cycle now)
{
    stats_.writebacks.inc();
    schedule(addr, now);
}

Cycle
DramModel::flush(Addr addr, Cycle now)
{
    stats_.flushes.inc();
    return schedule(addr, now);
}

void
DramModel::resetStats()
{
    stats_ = DramStats{};
}

void
DramModel::carryBacklog(Cycle from, Cycle delta)
{
    for (Cycle &ready : bank_ready_) {
        if (ready > from) {
            ready += delta;
        }
    }
    for (Cycle &done : inflight_) {
        if (done > from) {
            done += delta;
        }
    }
}

} // namespace coopsim::mem
