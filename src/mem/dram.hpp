/**
 * @file
 * Banked DRAM timing model.
 *
 * Models the paper's memory system (Table 2): 8 DRAM banks, a 400-cycle
 * access latency, a bounded number of outstanding requests (64) and bus
 * queueing delays. The model is analytic rather than event-driven: each
 * request is assigned a completion cycle when issued, accounting for
 * bank occupancy and the outstanding-request window.
 *
 * Demand accesses (LLC misses) and writebacks/flushes share the banks,
 * so heavy flushing during cache reconfiguration delays demand traffic —
 * the effect behind the paper's Figure 16 discussion.
 */

#ifndef COOPSIM_MEM_DRAM_HPP
#define COOPSIM_MEM_DRAM_HPP

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace coopsim::mem
{

/** Configuration of the DRAM model. */
struct DramConfig
{
    /** Number of independent banks. */
    std::uint32_t banks = 8;
    /** End-to-end latency of an unloaded access, in cycles. */
    Tick access_latency = 400;
    /** Cycles a bank stays busy per request (row activation/precharge). */
    Tick bank_occupancy = 40;
    /** Maximum in-flight requests before new ones queue. */
    std::uint32_t max_outstanding = 64;
    /** Block size, used only to slice bank-index bits. */
    std::uint32_t block_bytes = 64;
};

/** Running totals for DRAM traffic. */
struct DramStats
{
    stats::Counter reads;          //!< Demand fills.
    stats::Counter writes;         //!< Demand writes (fills for stores).
    stats::Counter writebacks;     //!< Evicted dirty lines.
    stats::Counter flushes;        //!< Dirty lines flushed by partitioning.
    stats::Average queue_delay;    //!< Mean cycles spent queueing.
};

/**
 * Analytic banked DRAM model.
 *
 * Issue order must be non-decreasing in time: the simulation driver
 * advances cores in global cycle order, which guarantees this.
 */
class DramModel
{
  public:
    explicit DramModel(const DramConfig &config = DramConfig{});

    /**
     * Issues a demand access (fill for a read or write miss).
     *
     * @param addr Block address (used for bank selection).
     * @param type Read or Write demand.
     * @param now  Issue cycle.
     * @return Cycle at which the data is available at the LLC.
     */
    Cycle access(Addr addr, AccessType type, Cycle now);

    /**
     * Issues a writeback of an evicted dirty block. Occupies a bank but
     * the issuing core does not wait for completion.
     */
    void writeback(Addr addr, Cycle now);

    /**
     * Issues a flush caused by cache repartitioning (cooperative
     * takeover or CPE-style bulk flushing). Counted separately from
     * ordinary writebacks so the benches can report flush traffic.
     *
     * @return Cycle at which the flush completes (CPE stalls on this).
     */
    Cycle flush(Addr addr, Cycle now);

    const DramStats &stats() const { return stats_; }
    const DramConfig &config() const { return config_; }

    /** Resets statistics (not timing state). */
    void resetStats();

    /**
     * Op-sampling support: the simulation clock is about to jump over
     * a fast-forward gap of @p delta cycles starting at @p from, with
     * no requests issued inside it. Timing state still pending at
     * @p from (bank busy-until times, in-flight completions) moves
     * forward by @p delta so the backlog the next detail window sees
     * is the one this window left behind, not a drained queue. State
     * already idle at @p from stays put.
     */
    void carryBacklog(Cycle from, Cycle delta);

  private:
    /** Common path: schedules a request, returns its completion cycle. */
    Cycle schedule(Addr addr, Cycle now);

    std::uint32_t bankOf(Addr addr) const;

    DramConfig config_;
    /** Cycle at which each bank is next free. */
    std::vector<Cycle> bank_ready_;
    /** Ring of completion cycles of the most recent in-flight requests. */
    std::vector<Cycle> inflight_;
    std::size_t inflight_head_ = 0;
    DramStats stats_;
};

} // namespace coopsim::mem

#endif // COOPSIM_MEM_DRAM_HPP
