#include "api/registry.hpp"

#include "llc/banked.hpp"
#include "llc/schemes.hpp"
#include "sim/system.hpp"
#include "trace/spec_profiles.hpp"
#include "tracefile/trace_workloads.hpp"

namespace coopsim::api
{

namespace
{

/** Built-in scheme table: registry key, legend label, enum. */
struct BuiltinScheme
{
    const char *key;
    const char *label;
    llc::Scheme scheme;
};

constexpr BuiltinScheme kBuiltinSchemes[] = {
    {"unmanaged", "Unmanaged", llc::Scheme::Unmanaged},
    {"fairshare", "FairShare", llc::Scheme::FairShare},
    {"ucp", "UCP", llc::Scheme::Ucp},
    {"cpe", "DynamicCPE", llc::Scheme::DynamicCpe},
    {"coop", "Cooperative", llc::Scheme::Cooperative},
};

/** Trailing-* glob: "G2-*" matches "G2-7"; anything else is exact. */
bool
matchesPattern(const std::string &name, const std::string &pattern)
{
    if (!pattern.empty() && pattern.back() == '*') {
        return name.compare(0, pattern.size() - 1, pattern, 0,
                            pattern.size() - 1) == 0;
    }
    return name == pattern;
}

} // namespace

Registry<SchemeEntry> &
schemeRegistry()
{
    static Registry<SchemeEntry> registry = [] {
        Registry<SchemeEntry> r("scheme");
        for (const BuiltinScheme &b : kBuiltinSchemes) {
            const llc::Scheme scheme = b.scheme;
            r.add(b.key,
                  SchemeEntry{b.label,
                              [scheme](const llc::LlcConfig &config,
                                       mem::DramModel &dram) {
                                  return llc::makeLlc(scheme, config,
                                                      dram);
                              }});
        }
        return r;
    }();
    return registry;
}

void
registerScheme(const std::string &name, const std::string &label,
               LlcFactory factory)
{
    schemeRegistry().add(name, SchemeEntry{label, std::move(factory)});
}

const std::string &
schemeLabel(const std::string &name)
{
    return schemeRegistry().get(name).label;
}

std::unique_ptr<llc::Llc>
makeLlcByName(const std::string &name, const llc::LlcConfig &config,
              mem::DramModel &dram)
{
    const SchemeEntry &entry = schemeRegistry().get(name);
    // Banked wrapping is needed for real bank counts and for the Xor
    // hash (which exercises the hash stage even over one bank). The
    // banks <= 1 + Mod default stays the direct monolithic path, with
    // zero wrapper overhead and byte-identical behaviour.
    if (config.banks > 1 ||
        config.slice_hash == llc::SliceHashKind::Xor) {
        return std::make_unique<llc::BankedLlc>(config, dram,
                                                entry.factory);
    }
    return entry.factory(config, dram);
}

// ---------------------------------------------------------------------------
// Small value axes

Registry<cache::ReplPolicy> &
replPolicyRegistry()
{
    static Registry<cache::ReplPolicy> registry = [] {
        Registry<cache::ReplPolicy> r("replacement policy");
        r.add("lru", cache::ReplPolicy::Lru);
        r.add("random", cache::ReplPolicy::Random);
        r.add("mru", cache::ReplPolicy::Mru);
        return r;
    }();
    return registry;
}

Registry<llc::GatingMode> &
gatingModeRegistry()
{
    static Registry<llc::GatingMode> registry = [] {
        Registry<llc::GatingMode> r("gating mode");
        r.add("gatedvdd", llc::GatingMode::GatedVdd);
        r.add("drowsy", llc::GatingMode::Drowsy);
        return r;
    }();
    return registry;
}

Registry<partition::ThresholdMode> &
thresholdModeRegistry()
{
    static Registry<partition::ThresholdMode> registry = [] {
        Registry<partition::ThresholdMode> r("threshold mode");
        r.add("missratio", partition::ThresholdMode::MissRatio);
        r.add("paperliteral", partition::ThresholdMode::PaperLiteral);
        return r;
    }();
    return registry;
}

Registry<partition::Partitioner> &
partitionerRegistry()
{
    static Registry<partition::Partitioner> registry = [] {
        Registry<partition::Partitioner> r("partitioner");
        r.add("lookahead", partition::Partitioner::Lookahead);
        r.add("equalshare", partition::Partitioner::EqualShare);
        r.add("greedy", partition::Partitioner::GreedyUtility);
        return r;
    }();
    return registry;
}

Registry<sim::RunScale> &
scaleRegistry()
{
    static Registry<sim::RunScale> registry = [] {
        Registry<sim::RunScale> r("scale");
        r.add("test", sim::RunScale::Test);
        r.add("bench", sim::RunScale::Bench);
        r.add("paper", sim::RunScale::Paper);
        return r;
    }();
    return registry;
}

Registry<llc::SliceHashKind> &
sliceHashRegistry()
{
    static Registry<llc::SliceHashKind> registry = [] {
        Registry<llc::SliceHashKind> r("slice hash");
        r.add("mod", llc::SliceHashKind::Mod);
        r.add("xor", llc::SliceHashKind::Xor);
        return r;
    }();
    return registry;
}

Registry<sampling::Mode> &
samplingRegistry()
{
    static Registry<sampling::Mode> registry = [] {
        Registry<sampling::Mode> r("sampling mode");
        r.add("exact", sampling::Mode::Exact);
        r.add("set", sampling::Mode::Set);
        r.add("op", sampling::Mode::Op);
        r.add("setop", sampling::Mode::SetOp);
        return r;
    }();
    return registry;
}

namespace
{

/** Inverse lookup over a small registry (linear; fatal if absent). */
template <typename T>
std::string
keyOfValue(Registry<T> &registry, T value, const char *kind)
{
    for (const std::string &name : registry.names()) {
        if (*registry.find(name) == value) {
            return name;
        }
    }
    COOPSIM_FATAL(kind, " enum value ", static_cast<int>(value),
                  " has no registry name");
}

} // namespace

std::string
replPolicyKeyOf(cache::ReplPolicy policy)
{
    return keyOfValue(replPolicyRegistry(), policy,
                      "replacement policy");
}

std::string
gatingModeKeyOf(llc::GatingMode mode)
{
    return keyOfValue(gatingModeRegistry(), mode, "gating mode");
}

std::string
thresholdModeKeyOf(partition::ThresholdMode mode)
{
    return keyOfValue(thresholdModeRegistry(), mode, "threshold mode");
}

std::string
partitionerKeyOf(partition::Partitioner partitioner)
{
    return keyOfValue(partitionerRegistry(), partitioner, "partitioner");
}

std::string
scaleKeyOf(sim::RunScale scale)
{
    return keyOfValue(scaleRegistry(), scale, "scale");
}

std::string
sliceHashKeyOf(llc::SliceHashKind kind)
{
    return keyOfValue(sliceHashRegistry(), kind, "slice hash");
}

std::string
samplingKeyOf(sampling::Mode mode)
{
    return keyOfValue(samplingRegistry(), mode, "sampling mode");
}

// ---------------------------------------------------------------------------
// Workloads

Registry<trace::WorkloadGroup> &
workloadRegistry()
{
    static Registry<trace::WorkloadGroup> registry = [] {
        Registry<trace::WorkloadGroup> r("workload group");
        for (const auto *groups :
             {&trace::twoCoreGroups(), &trace::fourCoreGroups(),
              &trace::eightCoreGroups(), &trace::sixteenCoreGroups(),
              &trace::thirtyTwoCoreGroups(),
              &trace::sixtyFourCoreGroups()}) {
            for (const trace::WorkloadGroup &g : *groups) {
                r.add(g.name, g);
            }
        }
        return r;
    }();
    return registry;
}

void
registerWorkload(const trace::WorkloadGroup &group)
{
    workloadRegistry().add(group.name, group);
}

void
warmAllRegistries()
{
    trace::twoCoreGroups();
    trace::fourCoreGroups();
    trace::eightCoreGroups();
    trace::sixteenCoreGroups();
    trace::thirtyTwoCoreGroups();
    trace::sixtyFourCoreGroups();
    trace::specProfile(trace::allSpecApps().front());
    schemeRegistry();
    replPolicyRegistry();
    gatingModeRegistry();
    thresholdModeRegistry();
    partitionerRegistry();
    scaleRegistry();
    sliceHashRegistry();
    samplingRegistry();
    workloadRegistry();
    // Trace workloads named by COOPSIM_TRACE_DIR join the registry
    // here, so executor threads and forked shard workers resolve
    // `trace:` groups without any per-call-site plumbing.
    tracefile::registerFromEnvironment();
}

std::vector<trace::WorkloadGroup>
resolveWorkloads(const std::string &pattern)
{
    Registry<trace::WorkloadGroup> &registry = workloadRegistry();
    std::vector<trace::WorkloadGroup> groups;
    for (const std::string &name : registry.names()) {
        if (matchesPattern(name, pattern)) {
            groups.push_back(*registry.find(name));
        }
    }
    if (groups.empty()) {
        // Exact-name misses get the full unknown-name diagnostic.
        groups.push_back(registry.get(pattern));
    }
    return groups;
}

} // namespace coopsim::api
