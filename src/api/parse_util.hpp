/**
 * @file
 * Strict numeric parsing/formatting shared by the spec encoding
 * (api/spec.cpp) and the command-line parser (api/cli.cpp): one
 * implementation so the two surfaces cannot drift.
 */

#ifndef COOPSIM_API_PARSE_UTIL_HPP
#define COOPSIM_API_PARSE_UTIL_HPP

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hpp"

namespace coopsim::api::detail
{

/** Whole-string strtod; false on empty input, trailing garbage or
 *  overflow to infinity (a corrupt "1e999" must not load as inf). */
inline bool
tryParseDouble(const std::string &text, double &out)
{
    char *end = nullptr;
    errno = 0;
    const double value = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0') {
        return false;
    }
    if (errno == ERANGE && std::isinf(value)) {
        return false;
    }
    out = value;
    return true;
}

/** Whole-string strtoull; false on empty input, garbage, a negative
 *  sign (strtoull would silently wrap it) or overflow. */
inline bool
tryParseUint(const std::string &text, std::uint64_t &out)
{
    if (text.empty() || text[0] == '-') {
        return false;
    }
    char *end = nullptr;
    errno = 0;
    const unsigned long long value =
        std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
        return false;
    }
    out = value;
    return true;
}

/** Whitespace-separated tokens of @p text (spec axes, store lines). */
inline std::vector<std::string>
splitWords(const std::string &text)
{
    std::vector<std::string> words;
    std::istringstream stream(text);
    std::string word;
    while (stream >> word) {
        words.push_back(word);
    }
    return words;
}

/** Whole-string strtod; fatal (naming @p what) on trailing garbage. */
inline double
parseDouble(const std::string &text, const char *what)
{
    double value = 0.0;
    if (!tryParseDouble(text, value)) {
        COOPSIM_FATAL("invalid ", what, " value '", text, "'");
    }
    return value;
}

/** Whole-string strtoull; fatal (naming @p what) on garbage. */
inline std::uint64_t
parseUint(const std::string &text, const char *what)
{
    std::uint64_t value = 0;
    if (!tryParseUint(text, value)) {
        COOPSIM_FATAL("invalid ", what, " value '", text, "'");
    }
    return value;
}

/** Shortest decimal encoding that parses back to exactly @p value. */
inline std::string
fmtDouble(double value)
{
    char buf[64];
    for (const int precision : {15, 16, 17}) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
        if (std::strtod(buf, nullptr) == value) {
            break;
        }
    }
    return buf;
}

} // namespace coopsim::api::detail

#endif // COOPSIM_API_PARSE_UTIL_HPP
