/**
 * @file
 * Strict numeric parsing/formatting shared by the spec encoding
 * (api/spec.cpp) and the command-line parser (api/cli.cpp): one
 * implementation so the two surfaces cannot drift.
 */

#ifndef COOPSIM_API_PARSE_UTIL_HPP
#define COOPSIM_API_PARSE_UTIL_HPP

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/logging.hpp"

namespace coopsim::api::detail
{

/** Whole-string strtod; fatal (naming @p what) on trailing garbage. */
inline double
parseDouble(const std::string &text, const char *what)
{
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0') {
        COOPSIM_FATAL("invalid ", what, " value '", text, "'");
    }
    return value;
}

/** Whole-string strtoull; fatal (naming @p what) on garbage. */
inline std::uint64_t
parseUint(const std::string &text, const char *what)
{
    char *end = nullptr;
    const unsigned long long value =
        std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0') {
        COOPSIM_FATAL("invalid ", what, " value '", text, "'");
    }
    return value;
}

/** Shortest decimal encoding that parses back to exactly @p value. */
inline std::string
fmtDouble(double value)
{
    char buf[64];
    for (const int precision : {15, 16, 17}) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
        if (std::strtod(buf, nullptr) == value) {
            break;
        }
    }
    return buf;
}

} // namespace coopsim::api::detail

#endif // COOPSIM_API_PARSE_UTIL_HPP
