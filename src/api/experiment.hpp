/**
 * @file
 * ExperimentResults: the view over a completed (or in-flight)
 * ExperimentSpec, plus the figure-style table renderers.
 *
 * Constructing an ExperimentResults expands the spec into its RunKey
 * cross-product and enqueues every run on the process-wide
 * sim::RunExecutor, so all host cores work the sweep while the caller
 * formats whatever cells are ready. Cells are addressed by a Cell
 * override set on top of the spec's first axis values, so the common
 * case — "the result of scheme S on group G" — is one line.
 *
 * printTable()/printExperiment() subsume the old bench_common
 * printers: rows = workload groups (+ geometric-mean AVG row),
 * columns = the spec's varying axis, every cell normalised to the
 * spec's baseline column. `coopsim_cli --spec <file>` is exactly
 * printExperiment(parseSpecFile(file)).
 */

#ifndef COOPSIM_API_EXPERIMENT_HPP
#define COOPSIM_API_EXPERIMENT_HPP

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "api/spec.hpp"

namespace coopsim::api
{

class ExperimentResults;

/**
 * Addresses one cell of an experiment: any field left at its default
 * is taken from the spec (the first value of the corresponding axis).
 */
struct Cell
{
    std::string group;
    std::string scheme;
    std::optional<double> threshold;
    std::string threshold_mode;
    std::string partitioner;
    std::string repl;
    std::string gating;
    std::optional<std::uint64_t> seed;
    /** LLC bank count (0 = topology default). */
    std::optional<std::uint32_t> banks;
    /** Slice-hash registry name ("mod", "xor"). */
    std::string slice_hash;
    /** Sampling-mode registry name ("exact", "set", "op", "setop"). */
    std::string sampling;
};

/** A named per-cell metric ("speedup", "dynamic_energy", ...). */
using MetricFn =
    std::function<double(const ExperimentResults &, const Cell &)>;

/** The metric table; "speedup", "dynamic_energy" and "static_energy"
 *  are pre-registered. */
Registry<MetricFn> &metricRegistry();

/** Registers a custom metric constructible by name in spec files. */
void registerMetric(const std::string &name, MetricFn fn);

/**
 * The results view of one ExperimentSpec.
 */
class ExperimentResults
{
  public:
    /** Validates @p spec, expands it and prefetches every run. */
    explicit ExperimentResults(ExperimentSpec spec);

    const ExperimentSpec &spec() const { return spec_; }
    /** The resolved workload groups, in table-row order. */
    const std::vector<trace::WorkloadGroup> &groups() const
    {
        return groups_;
    }
    /** The expanded RunKeys, in prefetch order. */
    const std::vector<sim::RunKey> &keys() const { return keys_; }

    /** The RunKey @p cell resolves to under this spec. */
    sim::RunKey keyFor(const Cell &cell) const;

    /** The (memoised) result of @p cell; blocks until ready. */
    const sim::RunResult &result(const Cell &cell) const;
    const sim::RunResult &result(const sim::RunKey &key) const;

    /** The solo-baseline run of @p app on the @p cores-core system
     *  (repl/seed/scale taken from @p cell / the spec). */
    const sim::RunResult &soloResult(const std::string &app,
                                     std::uint32_t cores,
                                     const Cell &cell = {}) const;
    double soloIpc(const std::string &app, std::uint32_t cores,
                   const Cell &cell = {}) const;

    /** Weighted speedup (Equation 1) of @p cell. */
    double weightedSpeedup(const Cell &cell) const;

    /**
     * Half-width of the weighted-speedup confidence interval of
     * @p cell: the per-app IPC CIs of the shared and solo runs
     * (populated by the sampling estimators; zero for exact runs)
     * propagated linearly through Equation 1 — the estimator biases
     * are correlated across apps, so quadrature would understate.
     */
    double weightedSpeedupCi(const Cell &cell) const;

    /** Evaluates the metric registered as @p name on @p cell. */
    double metric(const std::string &name, const Cell &cell) const;

    /** CI half-width of the metric @p name on @p cell ("speedup"
     *  propagates the sampled IPC CIs; other metrics report 0). */
    double metricCi(const std::string &name, const Cell &cell) const;

  private:
    ExperimentSpec spec_;
    std::vector<trace::WorkloadGroup> groups_;
    std::vector<sim::RunKey> keys_;
};

/** Expands, prefetches and returns the results view of @p spec. */
ExperimentResults runExperiment(const ExperimentSpec &spec);

/**
 * Renders the spec's table: layout "schemes" prints one column per
 * scheme normalised to the baseline scheme; layout "thresholds" one
 * column per threshold normalised to the baseline threshold. Both end
 * with a geometric-mean AVG row. @p metric overrides the spec's named
 * metric (custom benches); the default resolves spec.metric through
 * the metric registry. With @p show_ci the normalised layouts print
 * each cell as `value±ci` (the sampling estimators' confidence
 * interval propagated through the normalisation); exact sweeps print
 * ±0.000.
 */
void printTable(const ExperimentResults &results,
                const MetricFn &metric = {}, bool show_ci = false);

/** runExperiment + printTable: the `coopsim_cli --spec` entry point. */
void printExperiment(const ExperimentSpec &spec, bool show_ci = false);

} // namespace coopsim::api

#endif // COOPSIM_API_EXPERIMENT_HPP
