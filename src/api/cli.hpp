/**
 * @file
 * The one command-line parser every coopsim binary shares.
 *
 * Each binary states which flags it accepts (a bitmask); the parser
 * validates values and rejects any `--` argument it does not know or
 * the binary did not opt into — a typo like `--thread=4` is a fatal
 * error, not a silently ignored no-op. This replaces the hand-rolled
 * per-flag scanners that used to live in sim/runner.cpp and
 * examples/coopsim_cli.cpp (scaleFromArgs/threadsFromArgs/takeValue).
 */

#ifndef COOPSIM_API_CLI_HPP
#define COOPSIM_API_CLI_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/system.hpp"

namespace coopsim::store
{
class ResultStore;
}

namespace coopsim::api
{

/** Flags a binary can opt into (bitmask for parseCli). */
enum CliFlag : unsigned
{
    kFlagScale = 1u << 0,      //!< --scale=test|bench|paper, --full
    kFlagThreads = 1u << 1,    //!< --threads=N
    kFlagSpec = 1u << 2,       //!< --spec=FILE
    kFlagScheme = 1u << 3,     //!< --scheme=NAME
    kFlagGroup = 1u << 4,      //!< --group=G2-3
    kFlagThreshold = 1u << 5,  //!< --threshold=T
    kFlagSeed = 1u << 6,       //!< --seed=N
    kFlagCsv = 1u << 7,        //!< --csv
    kFlagStore = 1u << 8,      //!< --store=DIR (result-store directory)
    kFlagShard = 1u << 9,      //!< --shard=I/N (slice of the sweep)
    kFlagMerge = 1u << 10,     //!< --merge (fold shard stores, render)
    kFlagPositional = 1u << 11, //!< bare (non --) arguments
    /** --supervise, --shards=N, --shard-timeout=S, --shard-retries=K
     *  (the fault-tolerant shard supervisor). */
    kFlagSupervise = 1u << 12,
    kFlagRecord = 1u << 13,    //!< --record=DIR (capture trace files)
    kFlagTraceDir = 1u << 14,  //!< --trace-dir=DIR (trace: workloads)
    kFlagSampling = 1u << 15,  //!< --sampling=exact|set|op|setop
    kFlagCi = 1u << 16,        //!< --ci (print value±ci table cells)
    /** --no-stream-memo, --stream-cache-mb=N, --trace-cache=DIR (the
     *  process-wide op-stream memo, sim::StreamCache). */
    kFlagStreamMemo = 1u << 17,
};

/** The fig/table benches: scale + threads + result store + memo. */
inline constexpr unsigned kBenchFlags =
    kFlagScale | kFlagThreads | kFlagStore | kFlagStreamMemo;
/** Examples taking a positional group name. */
inline constexpr unsigned kExampleFlags =
    kBenchFlags | kFlagPositional;
/** Everything (coopsim_cli); derived from the last enumerator so a
 *  new flag is included automatically. */
inline constexpr unsigned kAllFlags = (kFlagStreamMemo << 1) - 1;

/** Parsed command line. */
struct CliOptions
{
    sim::RunScale scale = sim::RunScale::Bench;
    /** Scale-registry name of @ref scale (spec-file plumbing). */
    std::string scale_name = "bench";
    /** True when --scale/--full appeared (so `--spec` runs know
     *  whether to override the spec file's own scale). */
    bool scale_set = false;
    /** Requested worker count; 0 = default resolution. */
    unsigned threads = 0;
    std::string spec_path;
    std::string scheme = "coop";
    std::string group = "G2-3";
    std::optional<double> threshold;
    std::optional<std::uint64_t> seed;
    bool csv = false;
    /** Result-store directory (--store=DIR); empty = no store. */
    std::string store_dir;
    /** --shard=I/N slice of the expanded RunKey list. */
    unsigned shard_index = 0;
    unsigned shard_count = 1;
    bool shard_set = false;
    /** --merge: fold the shard stores in store_dir into one and
     *  render the table from it. */
    bool merge = false;
    /** --supervise: fork one worker per shard, retry failures, merge. */
    bool supervise = false;
    /** --shards=N: shard count the supervisor splits the sweep into. */
    unsigned shards = 0;
    /** --shard-timeout=S: per-attempt wall-clock budget in seconds
     *  (0 disables the timeout). */
    double shard_timeout_s = 900.0;
    /** --shard-retries=K: attempts per shard before it is reported
     *  failed. */
    unsigned shard_retries = 3;
    /** --record=DIR: record the spec's workloads as `.cooptrace`
     *  files into DIR instead of rendering a table; empty = off. */
    std::string record_dir;
    /** --trace-dir=DIR: register DIR's trace sets as `trace:<name>`
     *  workloads before the spec resolves; empty = none. */
    std::string trace_dir;
    /** --sampling=NAME: sampling-mode registry name that overrides
     *  the spec file's sampling axis. */
    std::string sampling_name = "exact";
    /** True when --sampling appeared. */
    bool sampling_set = false;
    /** --ci: render normalised table cells as value±ci. */
    bool show_ci = false;
    /** --no-stream-memo: regenerate every run's streams (escape
     *  hatch; memoized and regenerated runs are bit-identical). */
    bool no_stream_memo = false;
    /** --stream-cache-mb=N: memo budget in MiB; 0 = topology default
     *  (StreamCache::defaultBudgetBytes). */
    unsigned stream_cache_mb = 0;
    /** --trace-cache=DIR: spill memoized streams to `.cooptrace`
     *  files in DIR at exit and warm-start from them; empty = off. */
    std::string trace_cache_dir;
    std::vector<std::string> positional;
};

/**
 * Parses @p argv against the @p allowed flag mask.
 *
 * `--help` prints @p usage and exits 0. Any other `--` argument that
 * is not an allowed flag — unknown, misspelled, or simply not opted
 * into by this binary — is fatal; so is a malformed value of an
 * allowed flag. When @p reject_unknown is false the parser instead
 * skips arguments it does not own (for parsers that only own a
 * subset of a longer command line).
 */
CliOptions parseCli(int argc, char **argv, unsigned allowed,
                    const char *usage, bool reject_unknown = true);

/**
 * Applies the parsed thread request to the process-wide executor and
 * returns its final worker count.
 */
unsigned applyCliThreads(const CliOptions &options);

/**
 * Applies the parsed stream-memo request (--no-stream-memo,
 * --stream-cache-mb, --trace-cache) to the process-wide
 * sim::StreamCache. Combining --no-stream-memo with either tuning
 * flag is fatal. benchSetup() calls this.
 */
void applyCliStreamMemo(const CliOptions &options);

/** Prints the standard "# scale: ..." / "# threads: ..." preamble the
 *  benches emit before their tables. */
void printPreamble(const CliOptions &options, unsigned threads);

/**
 * Opens the result store for a --store=DIR run: loads every
 * `*.coopstore` file in the directory (last file wins per key),
 * attaches the store to the process-wide executor, and registers an
 * at-exit save of the merged store to `DIR/results.coopstore` plus a
 * run-count report (printRunStats) on stderr. Returns nullptr — and
 * does nothing — when the options carry no --store directory.
 * benchSetup() calls this, so every bench is store-aware.
 */
std::shared_ptr<store::ResultStore>
attachCliStore(const CliOptions &options);

/** Prints the executor's run-count stat line
 *  ("# runs: simulations=N store_hits=M") to stderr, keeping stdout
 *  bit-identical between store-backed and fresh runs. */
void printRunStats();

/** Prints the store's load-health counters (skipped/legacy lines,
 *  quarantined files) to stderr — only when any are non-zero, so a
 *  clean run's stderr is unchanged. */
void printStoreHealth(const store::ResultStore &result_store);

/** parseCli + applyCliThreads + printPreamble + attachCliStore: the
 *  lines every bench main() opens with. */
CliOptions benchSetup(int argc, char **argv,
                      unsigned allowed = kBenchFlags);

} // namespace coopsim::api

#endif // COOPSIM_API_CLI_HPP
