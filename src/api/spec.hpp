/**
 * @file
 * ExperimentSpec: a declarative description of a full experiment.
 *
 * Every figure and table of the paper is a sweep over some subset of
 * the axes (scheme x workload group x threshold x threshold mode x
 * partitioner x replacement policy x gating mode x seed) at one
 * scale, rendered as a normalised table. An ExperimentSpec names those axes by their
 * registry keys (api/registry.hpp); expandSpec() turns the spec into
 * the cross-product of RunKeys the executor prefetches.
 *
 * Specs and RunKeys both have a stable canonical text encoding with an
 * exact parse/format round-trip (parseSpec(formatSpec(s)) == s):
 *
 *  - `coopsim_cli --spec <file>` runs any figure from a spec file;
 *  - the RunKey line format is the merge key for the planned
 *    disk-backed result store (ROADMAP "Sharded sweeps").
 *
 * Doubles are encoded with %.17g, which round-trips every IEEE-754
 * binary64 value exactly.
 */

#ifndef COOPSIM_API_SPEC_HPP
#define COOPSIM_API_SPEC_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "sim/executor.hpp"
#include "trace/workloads.hpp"

namespace coopsim::api
{

/**
 * One experiment: the sweep axes plus how to present the result
 * table. All names are registry keys; groups may use a trailing-*
 * glob ("G2-*" = all fourteen two-core groups).
 */
struct ExperimentSpec
{
    /** Identifier ("fig05"); used in filenames and logs. */
    std::string name;
    /** Table heading ("Figure 5: weighted speedup, ..."). */
    std::string title;

    /**
     * Table layout:
     *  - "schemes": rows = groups, columns = schemes, normalised to
     *    the baseline scheme (Figures 5-10);
     *  - "thresholds": columns = threshold values, normalised to the
     *    baseline threshold (Figures 11-13);
     *  - "partitioners": columns = partitioner names, normalised to
     *    the baseline partitioner (the N-core scaling sweep);
     *  - "takeover": the Figure 14 takeover-event breakdown of the
     *    first scheme;
     *  - "transfers": the Figure 15 way-transfer-time comparison of
     *    the first two schemes;
     *  - "bandwidth": the Figure 16 flush-traffic time series of the
     *    first two schemes;
     *  - "none": no built-in renderer (custom printers / single-cell
     *    mode).
     */
    std::string layout = "schemes";
    /** Cell metric: a metric-registry name ("speedup",
     *  "dynamic_energy", "static_energy"). */
    std::string metric = "speedup";
    /** Normalisation column: a scheme name under the "schemes"
     *  layout, a threshold value text under "thresholds". */
    std::string baseline = "fairshare";
    /** Direction annotation in the table header. */
    bool higher_better = true;
    /** Prefetch each group's per-app solo baselines (needed by the
     *  weighted-speedup metric only). */
    bool with_solo = true;

    // --- sweep axes (cross-product) ------------------------------------
    std::vector<std::string> schemes = {"coop"};
    /** Group names or globs, expanded via the workload registry. */
    std::vector<std::string> groups;
    /**
     * Core-count filter over the resolved groups: when non-empty, only
     * groups with that many applications survive (so `groups G2-* G4-*
     * G8-*` + `cores 8` slices a sweep by topology without editing the
     * group lists). Fatal when the filter empties a non-empty axis.
     */
    std::vector<std::uint32_t> cores;
    std::vector<double> thresholds = {0.05};
    std::vector<std::string> threshold_modes = {"missratio"};
    /** Epoch way-allocation algorithms (partitioner registry). */
    std::vector<std::string> partitioners = {"lookahead"};
    std::vector<std::string> repl = {"lru"};
    std::vector<std::string> gating = {"gatedvdd"};
    std::vector<std::uint64_t> seeds = {42};
    /** LLC bank counts; 0 = the topology row's default (monolithic
     *  through 16 cores, banked 32/64-core rows). */
    std::vector<std::uint32_t> banks = {0};
    /** Slice-hash registry names ("mod", "xor"). */
    std::vector<std::string> slice_hashes = {"mod"};
    /** Sampling-mode registry names ("exact", "set", "op", "setop");
     *  an axis so one spec can sweep estimator against reference. */
    std::vector<std::string> sampling = {"exact"};
    /** Sampling knobs (scalars, applied to every sampled key; 0 = the
     *  estimator defaults in sampling/sampling.hpp). */
    std::uint32_t set_sample_period = 0;
    std::uint32_t op_sample_windows = 0;
    /** Scale-registry name: "test", "bench" or "paper". */
    std::string scale = "bench";
    /** Extra standalone solo runs (Table 3): app names or "*" for
     *  every Table 3 benchmark, run on @ref solo_cores geometry. */
    std::vector<std::string> solos;
    std::uint32_t solo_cores = 2;

    bool operator==(const ExperimentSpec &) const = default;
};

/** Validates every name in @p spec against its registry (fatal with
 *  the offending name otherwise). */
void validateSpec(const ExperimentSpec &spec);

/** The workload groups the spec's group names/globs resolve to. */
std::vector<trace::WorkloadGroup>
resolveSpecGroups(const ExperimentSpec &spec);

/**
 * Expands @p spec into the cross-product of RunKeys: one Group key
 * per (group x scheme x threshold x threshold_mode x partitioner x
 * repl x gating x seed), followed by the deduplicated Solo keys
 * (per-app baselines when with_solo, plus the explicit solos axis).
 * Deterministic order.
 */
std::vector<sim::RunKey> expandSpec(const ExperimentSpec &spec);

/**
 * Deterministic shard of an expanded key list: the keys at positions
 * index, index + count, index + 2*count, ... (round-robin, so every
 * shard gets a balanced mix of group and solo runs). The union over
 * index = 0..count-1 is exactly @p keys; fatal when index >= count or
 * count is 0. This is the `coopsim_cli --shard=I/N` slice.
 */
std::vector<sim::RunKey> shardKeys(const std::vector<sim::RunKey> &keys,
                                   unsigned index, unsigned count);

/** Canonical multi-line text encoding (every field, fixed order). */
std::string formatSpec(const ExperimentSpec &spec);

/**
 * Parses the canonical encoding. Unknown keys and malformed values
 * are fatal; omitted keys keep their defaults, so hand-written spec
 * files only state what they change. parseSpec(formatSpec(s)) == s.
 */
ExperimentSpec parseSpec(const std::string &text);

/** Reads and parses a spec file (fatal on I/O errors). */
ExperimentSpec parseSpecFile(const std::string &path);

/** Canonical single-line RunKey encoding (the result-store merge
 *  key), e.g. "group scheme=coop name=G2-3 cores=2 scale=bench
 *  threshold=0.05 tmode=missratio partitioner=lookahead repl=lru
 *  gating=gatedvdd seed=42". */
std::string formatRunKey(const sim::RunKey &key);

/** Parses formatRunKey() output; parseRunKey(formatRunKey(k)) == k. */
sim::RunKey parseRunKey(const std::string &line);

/** Non-fatal parseRunKey: false on malformed input or unknown
 *  registry names (the result-store loader skips such lines). */
bool tryParseRunKey(const std::string &line, sim::RunKey &out);

} // namespace coopsim::api

#endif // COOPSIM_API_SPEC_HPP
