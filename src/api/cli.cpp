#include "api/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "api/parse_util.hpp"
#include "api/registry.hpp"
#include "common/logging.hpp"
#include "sim/executor.hpp"
#include "sim/stream_cache.hpp"
#include "store/result_store.hpp"

namespace coopsim::api
{

using detail::parseDouble;
using detail::parseUint;

namespace
{

/** True when @p arg is "--key=..." ; @p value gets the suffix. */
bool
takeValue(const char *arg, const char *key, std::string &value)
{
    const std::size_t len = std::strlen(key);
    if (std::strncmp(arg, key, len) == 0) {
        value = arg + len;
        return true;
    }
    return false;
}

} // namespace

CliOptions
parseCli(int argc, char **argv, unsigned allowed, const char *usage,
         bool reject_unknown)
{
    CliOptions options;
    std::string value;
    // Last flag wins throughout, and every occurrence is validated,
    // matching the historical scaleFromArgs/threadsFromArgs contract.
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--", 2) != 0) {
            if (allowed & kFlagPositional) {
                options.positional.push_back(arg);
                continue;
            }
            if (reject_unknown) {
                COOPSIM_FATAL("unexpected argument '", arg,
                              "' (try --help)");
            }
            continue;
        }
        if (reject_unknown && std::strcmp(arg, "--help") == 0) {
            std::printf("%s", usage != nullptr ? usage : "");
            std::exit(0);
        }
        if ((allowed & kFlagScale) && std::strcmp(arg, "--full") == 0) {
            options.scale = sim::RunScale::Paper;
            options.scale_name = "paper";
            options.scale_set = true;
        } else if ((allowed & kFlagScale) &&
                   takeValue(arg, "--scale=", value)) {
            options.scale = scaleRegistry().get(value);
            options.scale_name = value;
            options.scale_set = true;
        } else if ((allowed & kFlagThreads) &&
                   takeValue(arg, "--threads=", value)) {
            const std::uint64_t n = parseUint(value, "--threads");
            if (n < 1 || n > 1024) {
                COOPSIM_FATAL("invalid --threads value '", value,
                              "' (expected an integer in [1, 1024])");
            }
            options.threads = static_cast<unsigned>(n);
        } else if ((allowed & kFlagSpec) &&
                   takeValue(arg, "--spec=", value)) {
            options.spec_path = value;
        } else if ((allowed & kFlagScheme) &&
                   takeValue(arg, "--scheme=", value)) {
            schemeRegistry().get(value);
            options.scheme = value;
        } else if ((allowed & kFlagGroup) &&
                   takeValue(arg, "--group=", value)) {
            options.group = value;
        } else if ((allowed & kFlagThreshold) &&
                   takeValue(arg, "--threshold=", value)) {
            options.threshold = parseDouble(value, "--threshold");
        } else if ((allowed & kFlagSeed) &&
                   takeValue(arg, "--seed=", value)) {
            options.seed = parseUint(value, "--seed");
        } else if ((allowed & kFlagCsv) &&
                   std::strcmp(arg, "--csv") == 0) {
            options.csv = true;
        } else if ((allowed & kFlagStore) &&
                   takeValue(arg, "--store=", value)) {
            if (value.empty()) {
                COOPSIM_FATAL("--store requires a directory path");
            }
            options.store_dir = value;
        } else if ((allowed & kFlagShard) &&
                   takeValue(arg, "--shard=", value)) {
            const std::size_t slash = value.find('/');
            if (slash == std::string::npos) {
                COOPSIM_FATAL("invalid --shard value '", value,
                              "' (expected I/N, e.g. 0/2)");
            }
            const std::uint64_t index =
                parseUint(value.substr(0, slash), "--shard index");
            const std::uint64_t count =
                parseUint(value.substr(slash + 1), "--shard count");
            if (count < 1 || count > 65536 || index >= count) {
                COOPSIM_FATAL("invalid --shard value '", value,
                              "' (need 0 <= I < N <= 65536)");
            }
            options.shard_index = static_cast<unsigned>(index);
            options.shard_count = static_cast<unsigned>(count);
            options.shard_set = true;
        } else if ((allowed & kFlagMerge) &&
                   std::strcmp(arg, "--merge") == 0) {
            options.merge = true;
        } else if ((allowed & kFlagSupervise) &&
                   std::strcmp(arg, "--supervise") == 0) {
            options.supervise = true;
        } else if ((allowed & kFlagSupervise) &&
                   takeValue(arg, "--shards=", value)) {
            const std::uint64_t n = parseUint(value, "--shards");
            if (n < 1 || n > 65536) {
                COOPSIM_FATAL("invalid --shards value '", value,
                              "' (expected an integer in [1, 65536])");
            }
            options.shards = static_cast<unsigned>(n);
        } else if ((allowed & kFlagSupervise) &&
                   takeValue(arg, "--shard-timeout=", value)) {
            const double seconds =
                parseDouble(value, "--shard-timeout");
            if (seconds < 0.0) {
                COOPSIM_FATAL("invalid --shard-timeout value '", value,
                              "' (seconds; 0 disables the timeout)");
            }
            options.shard_timeout_s = seconds;
        } else if ((allowed & kFlagRecord) &&
                   takeValue(arg, "--record=", value)) {
            if (value.empty()) {
                COOPSIM_FATAL("--record requires a directory path");
            }
            options.record_dir = value;
        } else if ((allowed & kFlagTraceDir) &&
                   takeValue(arg, "--trace-dir=", value)) {
            if (value.empty()) {
                COOPSIM_FATAL("--trace-dir requires a directory path");
            }
            options.trace_dir = value;
        } else if ((allowed & kFlagSampling) &&
                   takeValue(arg, "--sampling=", value)) {
            samplingRegistry().get(value); // fatal on unknown name
            options.sampling_name = value;
            options.sampling_set = true;
        } else if ((allowed & kFlagCi) &&
                   std::strcmp(arg, "--ci") == 0) {
            options.show_ci = true;
        } else if ((allowed & kFlagStreamMemo) &&
                   std::strcmp(arg, "--no-stream-memo") == 0) {
            options.no_stream_memo = true;
        } else if ((allowed & kFlagStreamMemo) &&
                   takeValue(arg, "--stream-cache-mb=", value)) {
            const std::uint64_t n = parseUint(value, "--stream-cache-mb");
            if (n < 1 || n > 1048576) {
                COOPSIM_FATAL("invalid --stream-cache-mb value '", value,
                              "' (expected MiB in [1, 1048576])");
            }
            options.stream_cache_mb = static_cast<unsigned>(n);
        } else if ((allowed & kFlagStreamMemo) &&
                   takeValue(arg, "--trace-cache=", value)) {
            if (value.empty()) {
                COOPSIM_FATAL("--trace-cache requires a directory path");
            }
            options.trace_cache_dir = value;
        } else if ((allowed & kFlagSupervise) &&
                   takeValue(arg, "--shard-retries=", value)) {
            const std::uint64_t n = parseUint(value, "--shard-retries");
            if (n < 1 || n > 100) {
                COOPSIM_FATAL("invalid --shard-retries value '", value,
                              "' (expected an integer in [1, 100])");
            }
            options.shard_retries = static_cast<unsigned>(n);
        } else if (reject_unknown) {
            COOPSIM_FATAL("unknown flag '", arg, "' (try --help)");
        }
    }
    return options;
}

unsigned
applyCliThreads(const CliOptions &options)
{
    if (options.threads > 0) {
        // Before the first instance() this sizes the pool directly —
        // no default-sized pool is spawned only to be torn down.
        sim::RunExecutor::requestInitialThreads(options.threads);
    }
    sim::RunExecutor &executor = sim::RunExecutor::instance();
    if (options.threads > 0) {
        executor.setThreads(options.threads); // no-op if already sized
    }
    return executor.threads();
}

void
applyCliStreamMemo(const CliOptions &options)
{
    if (options.no_stream_memo &&
        (options.stream_cache_mb > 0 || !options.trace_cache_dir.empty())) {
        COOPSIM_FATAL("--no-stream-memo disables the stream memo; it "
                      "cannot be combined with --stream-cache-mb or "
                      "--trace-cache");
    }
    sim::StreamCache::Config config;
    config.enabled = !options.no_stream_memo;
    config.budget_bytes =
        static_cast<std::size_t>(options.stream_cache_mb) << 20;
    config.spill_dir = options.trace_cache_dir;
    sim::StreamCache::instance().configure(config);
}

void
printPreamble(const CliOptions &options, unsigned threads)
{
    if (options.scale == sim::RunScale::Paper) {
        std::printf("# scale: paper (1B insts/app, 5M-cycle epochs)\n");
    } else if (options.scale == sim::RunScale::Test) {
        std::printf("# scale: test (tiny; use --full for paper "
                    "scale)\n");
    } else {
        std::printf("# scale: bench miniature (use --full for paper "
                    "scale)\n");
    }
    std::printf("# threads: %u (--threads=N / COOPSIM_THREADS)\n",
                threads);
}

// ---------------------------------------------------------------------------
// Result-store session (--store=DIR)

namespace
{

std::shared_ptr<store::ResultStore> g_cli_store;
std::string g_cli_store_path;

/**
 * Registered with atexit() after the executor singleton exists, so it
 * runs before the executor's destructor: the save sees every result a
 * consumed future has recorded (in-flight runs that never completed
 * simply stay unrecorded).
 *
 * The save is the non-fatal trySave(): an atexit handler must never
 * re-enter exit() via COOPSIM_FATAL, and a full disk or lost rename
 * at shutdown should cost a loud stderr report naming the preserved
 * temp file — not the silent loss of a multi-hour sweep.
 */
void
saveCliStore()
{
    if (g_cli_store == nullptr) {
        return;
    }
    std::string error;
    if (!g_cli_store->trySave(g_cli_store_path, error)) {
        std::fprintf(stderr,
                     "error: store save failed at exit: %s\n",
                     error.c_str());
    } else {
        std::fprintf(stderr, "# store: saved %zu results to %s\n",
                     g_cli_store->size(), g_cli_store_path.c_str());
    }
    printRunStats();
}

} // namespace

void
printRunStats()
{
    const sim::RunExecutor::Stats stats =
        sim::RunExecutor::instance().stats();
    std::fprintf(stderr, "# runs: simulations=%llu store_hits=%llu\n",
                 static_cast<unsigned long long>(stats.simulations),
                 static_cast<unsigned long long>(stats.store_hits));
    if (stats.failed_runs > 0) {
        std::fprintf(stderr, "# runs: failed=%llu\n",
                     static_cast<unsigned long long>(stats.failed_runs));
    }
    // Idempotent: the cache's own exit hook prints nothing after this.
    sim::StreamCache::instance().printStats(stderr);
}

void
printStoreHealth(const store::ResultStore &result_store)
{
    const store::ResultStore::Stats stats = result_store.stats();
    if (stats.lines_skipped > 0 || stats.files_quarantined > 0 ||
        stats.lines_legacy > 0) {
        std::fprintf(
            stderr,
            "# store: health lines_skipped=%llu lines_legacy=%llu "
            "files_quarantined=%llu\n",
            static_cast<unsigned long long>(stats.lines_skipped),
            static_cast<unsigned long long>(stats.lines_legacy),
            static_cast<unsigned long long>(stats.files_quarantined));
    }
}

std::shared_ptr<store::ResultStore>
attachCliStore(const CliOptions &options)
{
    if (options.store_dir.empty()) {
        return nullptr;
    }
    auto result_store = std::make_shared<store::ResultStore>();
    const std::size_t loaded = result_store->loadDir(options.store_dir);
    std::fprintf(stderr, "# store: loaded %zu results from %s\n",
                 loaded, options.store_dir.c_str());
    printStoreHealth(*result_store);
    sim::RunExecutor::instance().attachStore(result_store);
    const bool register_handler = g_cli_store == nullptr;
    g_cli_store = result_store;
    g_cli_store_path =
        options.store_dir + "/" + store::kMergedFileName;
    if (register_handler) {
        std::atexit(saveCliStore);
    }
    return result_store;
}

CliOptions
benchSetup(int argc, char **argv, unsigned allowed)
{
    const CliOptions options = parseCli(
        argc, argv, allowed,
        "usage: bench [--scale=test|bench|paper] [--full] "
        "[--threads=N] [--store=DIR] [--no-stream-memo] "
        "[--stream-cache-mb=N] [--trace-cache=DIR]\n");
    applyCliStreamMemo(options);
    printPreamble(options, applyCliThreads(options));
    attachCliStore(options);
    return options;
}

} // namespace coopsim::api
