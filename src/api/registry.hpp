/**
 * @file
 * String-keyed registries: the name -> value/factory tables behind the
 * declarative experiment API.
 *
 * Every axis of an ExperimentSpec (scheme, replacement policy, gating
 * mode, threshold mode, scale, workload group) is addressed by a short
 * canonical name — the same names the spec text encoding and the
 * command-line flags use. The registries own those names:
 *
 *  - the built-in values are pre-registered (schemes "unmanaged",
 *    "fairshare", "ucp", "cpe", "coop"; policies "lru", "random",
 *    "mru"; and so on);
 *  - extensions register additional entries at startup
 *    (registerScheme() turns examples/custom_policy.cpp into a
 *    registration call instead of a fork of the runner);
 *  - lookups by unknown name are fatal with the list of known names,
 *    so a typo in a spec file or flag fails loudly.
 *
 * Thread-safety: registration is expected at startup, before any
 * simulation is enqueued; lookups afterwards are read-only and safe
 * from the executor's worker threads.
 */

#ifndef COOPSIM_API_REGISTRY_HPP
#define COOPSIM_API_REGISTRY_HPP

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cache/replacement.hpp"
#include "common/logging.hpp"
#include "llc/shared_cache.hpp"
#include "partition/partitioner.hpp"
#include "sampling/sampling.hpp"
#include "trace/workloads.hpp"

namespace coopsim::sim
{
enum class RunScale;
}

namespace coopsim::api
{

/**
 * Ordered name -> value table. Entries keep registration order (so
 * names() is deterministic and tables print in legend order); lookups
 * are linear — every registry here holds a handful of entries.
 */
template <typename T>
class Registry
{
  public:
    /** @param kind Noun used in error messages ("scheme", ...). */
    explicit Registry(std::string kind) : kind_(std::move(kind)) {}

    /** Registers @p value under @p name; fatal on a duplicate name. */
    void add(const std::string &name, T value)
    {
        if (find(name) != nullptr) {
            COOPSIM_FATAL("duplicate ", kind_, " registration '", name,
                          "'");
        }
        entries_.emplace_back(name, std::move(value));
    }

    /** The entry registered as @p name, or nullptr. */
    const T *find(const std::string &name) const
    {
        for (const auto &[key, value] : entries_) {
            if (key == name) {
                return &value;
            }
        }
        return nullptr;
    }

    /** The entry registered as @p name; fatal (listing the known
     *  names) when absent. */
    const T &get(const std::string &name) const
    {
        if (const T *value = find(name)) {
            return *value;
        }
        std::string known;
        for (const auto &[key, value] : entries_) {
            known += known.empty() ? "" : ", ";
            known += key;
        }
        COOPSIM_FATAL("unknown ", kind_, " '", name, "' (known: ",
                      known, ")");
    }

    bool contains(const std::string &name) const
    {
        return find(name) != nullptr;
    }

    /** Registered names, in registration order. */
    std::vector<std::string> names() const
    {
        std::vector<std::string> result;
        result.reserve(entries_.size());
        for (const auto &[key, value] : entries_) {
            result.push_back(key);
        }
        return result;
    }

  private:
    std::string kind_;
    std::vector<std::pair<std::string, T>> entries_;
};

// ---------------------------------------------------------------------------
// Schemes

/** Builds the LLC an entry's scheme describes. */
using LlcFactory = std::function<std::unique_ptr<llc::BaseLlc>(
    const llc::LlcConfig &, mem::DramModel &)>;

/** One registered LLC management scheme. */
struct SchemeEntry
{
    /** Display label (the paper's legend name, e.g. "Cooperative"). */
    std::string label;
    LlcFactory factory;
};

/** The scheme table; the five built-ins are pre-registered under
 *  "unmanaged", "fairshare", "ucp", "cpe" and "coop". */
Registry<SchemeEntry> &schemeRegistry();

/** Registers a custom scheme constructible by @p name. */
void registerScheme(const std::string &name, const std::string &label,
                    LlcFactory factory);

/** Display label of the scheme registered as @p name (fatal if
 *  unknown). */
const std::string &schemeLabel(const std::string &name);

/**
 * Constructs the LLC registered as @p name (fatal if unknown). With
 * config.banks > 1 — or the Xor slice hash, which needs the hash
 * stage even over one bank — the scheme is instantiated per bank
 * behind a BankedLlc; otherwise the scheme instance is returned
 * directly (the monolithic path, byte-identical to the pre-banking
 * behaviour).
 */
std::unique_ptr<llc::Llc> makeLlcByName(const std::string &name,
                                        const llc::LlcConfig &config,
                                        mem::DramModel &dram);

// ---------------------------------------------------------------------------
// Small value axes

Registry<cache::ReplPolicy> &replPolicyRegistry();
Registry<llc::GatingMode> &gatingModeRegistry();
Registry<partition::ThresholdMode> &thresholdModeRegistry();
/** The epoch way-allocation algorithms ("lookahead", "equalshare",
 *  "greedy"; see partition/partitioner.hpp). */
Registry<partition::Partitioner> &partitionerRegistry();
Registry<sim::RunScale> &scaleRegistry();
/** The slice-selection hashes ("mod", "xor"; llc/slice_hash.hpp). */
Registry<llc::SliceHashKind> &sliceHashRegistry();
/** The sampling estimators ("exact", "set", "op", "setop";
 *  sampling/sampling.hpp). */
Registry<sampling::Mode> &samplingRegistry();

/** Canonical names of the built-in enum values (the inverse of the
 *  registries above, for RunKey formatting). */
std::string replPolicyKeyOf(cache::ReplPolicy policy);
std::string gatingModeKeyOf(llc::GatingMode mode);
std::string thresholdModeKeyOf(partition::ThresholdMode mode);
std::string partitionerKeyOf(partition::Partitioner partitioner);
std::string scaleKeyOf(sim::RunScale scale);
std::string sliceHashKeyOf(llc::SliceHashKind kind);
std::string samplingKeyOf(sampling::Mode mode);

// ---------------------------------------------------------------------------
// Workloads

/** The workload-group table, pre-registered with every Table 4 group
 *  (G2-1..G2-14, G4-1..G4-14). Custom groups may be added. */
Registry<trace::WorkloadGroup> &workloadRegistry();

/** Registers a custom workload group under its own name. */
void registerWorkload(const trace::WorkloadGroup &group);

/**
 * Expands one group name or glob over the registry: "G2-3" resolves
 * to that group, "G2-*" to every group whose name matches. Fatal when
 * nothing matches.
 */
std::vector<trace::WorkloadGroup>
resolveWorkloads(const std::string &pattern);

// ---------------------------------------------------------------------------
// Warm-up

/**
 * Constructs every function-local-static table a simulation resolves
 * through — the trace group/profile tables and all of the registries
 * above — so they exist before any thread pool or forked worker needs
 * them. RunExecutor::instance() calls this before building the pool
 * (statics are destroyed in reverse construction order, so the
 * executor's destructor must run while the tables are still alive),
 * and the shard supervisor calls it before fork/exec so parent and
 * workers share one warm-up path instead of copy-pasted call lists.
 */
void warmAllRegistries();

} // namespace coopsim::api

#endif // COOPSIM_API_REGISTRY_HPP
