#include "api/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hpp"
#include "common/stats.hpp"
#include "sim/metrics.hpp"

namespace coopsim::api
{

namespace
{

/** First value of an axis, or fatal when the axis is empty and a cell
 *  did not override it. */
template <typename T>
const T &
firstOf(const std::vector<T> &axis, const char *what)
{
    if (axis.empty()) {
        COOPSIM_FATAL("cell does not specify a ", what,
                      " and the spec's ", what, " axis is empty");
    }
    return axis.front();
}

/** Resolves a sampling-mode name onto @p key with the same knob
 *  canonicalisation expandSpec() uses, so cell-addressed keys hash
 *  identically to the prefetched ones. */
void
applySampling(const ExperimentSpec &spec, const std::string &name,
              sim::RunKey &key)
{
    const sampling::Mode mode = samplingRegistry().get(name);
    key.sampling = mode;
    key.set_sample_period =
        sampling::setSampled(mode) ? spec.set_sample_period : 0;
    key.op_sample_windows =
        mode != sampling::Mode::Exact ? spec.op_sample_windows : 0;
}

} // namespace

Registry<MetricFn> &
metricRegistry()
{
    static Registry<MetricFn> registry = [] {
        Registry<MetricFn> r("metric");
        r.add("speedup",
              [](const ExperimentResults &results, const Cell &cell) {
                  return results.weightedSpeedup(cell);
              });
        r.add("dynamic_energy",
              [](const ExperimentResults &results, const Cell &cell) {
                  return results.result(cell).dynamic_energy_nj;
              });
        r.add("static_energy",
              [](const ExperimentResults &results, const Cell &cell) {
                  return results.result(cell).static_energy_nj;
              });
        return r;
    }();
    return registry;
}

void
registerMetric(const std::string &name, MetricFn fn)
{
    metricRegistry().add(name, std::move(fn));
}

ExperimentResults::ExperimentResults(ExperimentSpec spec)
    : spec_(std::move(spec))
{
    validateSpec(spec_);
    if (spec_.layout != "none") {
        metricRegistry().get(spec_.metric);
    }
    groups_ = resolveSpecGroups(spec_);
    keys_ = expandSpec(spec_);
    sim::RunExecutor::instance().prefetch(keys_);
}

sim::RunKey
ExperimentResults::keyFor(const Cell &cell) const
{
    sim::RunKey key;
    key.kind = sim::RunKey::Kind::Group;
    key.scheme = !cell.scheme.empty()
                     ? cell.scheme
                     : firstOf(spec_.schemes, "scheme");
    key.name = cell.group;
    key.num_cores = static_cast<std::uint32_t>(
        workloadRegistry().get(cell.group).apps.size());
    key.scale = scaleRegistry().get(spec_.scale);
    key.threshold = cell.threshold.value_or(
        firstOf(spec_.thresholds, "threshold"));
    key.threshold_mode = thresholdModeRegistry().get(
        !cell.threshold_mode.empty()
            ? cell.threshold_mode
            : firstOf(spec_.threshold_modes, "threshold mode"));
    key.partitioner = partitionerRegistry().get(
        !cell.partitioner.empty()
            ? cell.partitioner
            : firstOf(spec_.partitioners, "partitioner"));
    key.repl = replPolicyRegistry().get(
        !cell.repl.empty() ? cell.repl
                           : firstOf(spec_.repl, "replacement policy"));
    key.gating = gatingModeRegistry().get(
        !cell.gating.empty() ? cell.gating
                             : firstOf(spec_.gating, "gating mode"));
    key.seed = cell.seed.value_or(firstOf(spec_.seeds, "seed"));
    key.banks = cell.banks.value_or(firstOf(spec_.banks, "banks"));
    key.slice_hash = sliceHashRegistry().get(
        !cell.slice_hash.empty()
            ? cell.slice_hash
            : firstOf(spec_.slice_hashes, "slice hash"));
    applySampling(spec_, !cell.sampling.empty()
                             ? cell.sampling
                             : firstOf(spec_.sampling, "sampling mode"),
                  key);
    return key;
}

const sim::RunResult &
ExperimentResults::result(const Cell &cell) const
{
    return result(keyFor(cell));
}

const sim::RunResult &
ExperimentResults::result(const sim::RunKey &key) const
{
    return sim::RunExecutor::instance().run(key);
}

const sim::RunResult &
ExperimentResults::soloResult(const std::string &app,
                              std::uint32_t cores,
                              const Cell &cell) const
{
    sim::RunKey key;
    key.kind = sim::RunKey::Kind::Solo;
    key.scheme = "unmanaged";
    key.name = app;
    key.num_cores = cores;
    key.scale = scaleRegistry().get(spec_.scale);
    key.threshold = 0.0;
    key.threshold_mode = partition::ThresholdMode::MissRatio;
    key.partitioner = partition::Partitioner::Lookahead;
    key.repl = replPolicyRegistry().get(
        !cell.repl.empty() ? cell.repl
                           : firstOf(spec_.repl, "replacement policy"));
    key.gating = llc::GatingMode::GatedVdd;
    key.seed = cell.seed.value_or(firstOf(spec_.seeds, "seed"));
    // Solos inherit the sweep's sampling mode (see expandSpec), so a
    // sampled sweep never blocks on exact-speed baselines.
    applySampling(spec_, !cell.sampling.empty()
                             ? cell.sampling
                             : firstOf(spec_.sampling, "sampling mode"),
                  key);
    return result(key);
}

double
ExperimentResults::soloIpc(const std::string &app, std::uint32_t cores,
                           const Cell &cell) const
{
    return soloResult(app, cores, cell).apps.at(0).ipc;
}

double
ExperimentResults::weightedSpeedup(const Cell &cell) const
{
    const trace::WorkloadGroup &group =
        workloadRegistry().get(cell.group);
    const auto cores = static_cast<std::uint32_t>(group.apps.size());
    const sim::RunResult &shared = result(cell);
    std::vector<double> alone;
    alone.reserve(group.apps.size());
    for (const std::string &app : group.apps) {
        alone.push_back(soloIpc(app, cores, cell));
    }
    return sim::weightedSpeedup(shared, alone);
}

double
ExperimentResults::weightedSpeedupCi(const Cell &cell) const
{
    const trace::WorkloadGroup &group =
        workloadRegistry().get(cell.group);
    const auto cores = static_cast<std::uint32_t>(group.apps.size());
    const sim::RunResult &shared = result(cell);
    // Per-app speedup s_i = shared_i / alone_i. The IPC CIs are
    // dominated by the estimators' systematic allowance, which is
    // *correlated* across the shared run's apps (every app is measured
    // through the same sampled sets and the same detail windows), so
    // the propagation is fully linear rather than in quadrature:
    // ci(s_i) = s_i * (ci_sh/sh + ci_al/al), and the sum over apps
    // (Equation 1 is a sum) takes the plain sum of the per-app CIs.
    // Quadrature would divide by a sqrt(n) the correlated errors
    // never earn.
    double sum = 0.0;
    for (std::size_t i = 0; i < group.apps.size(); ++i) {
        const sim::AppResult &app = shared.apps.at(i);
        const sim::RunResult &solo =
            soloResult(group.apps[i], cores, cell);
        const sim::AppResult &alone = solo.apps.at(0);
        if (app.ipc <= 0.0 || alone.ipc <= 0.0) {
            continue;
        }
        const double s = app.ipc / alone.ipc;
        sum += s * (app.ipc_ci / app.ipc + alone.ipc_ci / alone.ipc);
    }
    return sum;
}

double
ExperimentResults::metric(const std::string &name,
                          const Cell &cell) const
{
    return metricRegistry().get(name)(*this, cell);
}

double
ExperimentResults::metricCi(const std::string &name,
                            const Cell &cell) const
{
    // IPC is the only per-app quantity the estimators attach a CI to,
    // so only the speedup metric can propagate one; energy and other
    // counter metrics report a zero half-width.
    if (name == "speedup") {
        return weightedSpeedupCi(cell);
    }
    return 0.0;
}

ExperimentResults
runExperiment(const ExperimentSpec &spec)
{
    return ExperimentResults(spec);
}

// ---------------------------------------------------------------------------
// Table rendering

namespace
{

/**
 * Shared body of the normalised column layouts (schemes, thresholds,
 * partitioners): one row per group with every cell normalised to that
 * row's baseline cell, closed by a geometric-mean AVG row. The layout
 * printers keep only their header lines and the Cell field their
 * column axis sets.
 */
void
printNormalisedRows(
    const ExperimentResults &results, const MetricFn &metric,
    bool show_ci, int group_width, std::size_t columns,
    const std::function<Cell(const std::string &)> &baseline_cell,
    const std::function<Cell(const std::string &, std::size_t)> &cell_at)
{
    // CI of a normalised cell v/b: the relative half-widths of value
    // and baseline add in quadrature; the AVG row's geometric mean
    // divides the root-sum-square of the relative CIs by the row
    // count. Exact runs carry zero CIs, so the ± columns print 0.000.
    const std::string &metric_name = results.spec().metric;
    auto cell_ci = [&](const Cell &cell) {
        return show_ci ? results.metricCi(metric_name, cell) : 0.0;
    };
    std::vector<std::vector<double>> norms(columns);
    std::vector<std::vector<double>> rel_cis(columns);
    for (const trace::WorkloadGroup &group : results.groups()) {
        const Cell base_cell = baseline_cell(group.name);
        const double baseline = metric(results, base_cell);
        const double baseline_ci = cell_ci(base_cell);
        std::printf("%-*s", group_width, group.name.c_str());
        for (std::size_t i = 0; i < columns; ++i) {
            const Cell cell = cell_at(group.name, i);
            const double value = metric(results, cell);
            const double norm = sim::normalizeTo(value, baseline);
            norms[i].push_back(norm);
            if (!show_ci) {
                std::printf(" %12.3f", norm);
                continue;
            }
            double rel = 0.0;
            if (value != 0.0 && baseline != 0.0) {
                const double rv = cell_ci(cell) / value;
                const double rb = baseline_ci / baseline;
                rel = std::sqrt(rv * rv + rb * rb);
            }
            rel_cis[i].push_back(rel);
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.3f±%.3f", norm,
                          std::fabs(norm) * rel);
            std::printf(" %14s", buf);
        }
        std::printf("\n");
    }
    std::printf("%-*s", group_width, "AVG");
    for (std::size_t i = 0; i < columns; ++i) {
        const double gm = stats::geomean(norms[i]);
        if (!show_ci) {
            std::printf(" %12.3f", gm);
            continue;
        }
        double sum_sq = 0.0;
        for (const double rel : rel_cis[i]) {
            sum_sq += rel * rel;
        }
        const double gm_rel =
            rel_cis[i].empty()
                ? 0.0
                : std::sqrt(sum_sq) /
                      static_cast<double>(rel_cis[i].size());
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.3f±%.3f", gm,
                      std::fabs(gm) * gm_rel);
        std::printf(" %14s", buf);
    }
    std::printf("\n");
}

void
printSchemeTable(const ExperimentResults &results,
                 const MetricFn &metric, bool show_ci)
{
    const ExperimentSpec &spec = results.spec();
    const int col = show_ci ? 14 : 12;
    std::printf("%s\n", spec.title.c_str());
    std::printf("# normalised to %s; %s is better\n",
                schemeLabel(spec.baseline).c_str(),
                spec.higher_better ? "higher" : "lower");
    std::printf("%-8s", "group");
    for (const std::string &scheme : spec.schemes) {
        std::printf(" %*s", col, schemeLabel(scheme).c_str());
    }
    std::printf("\n");

    printNormalisedRows(
        results, metric, show_ci, 8, spec.schemes.size(),
        [&spec](const std::string &group) {
            Cell cell;
            cell.group = group;
            cell.scheme = spec.baseline;
            return cell;
        },
        [&spec](const std::string &group, std::size_t i) {
            Cell cell;
            cell.group = group;
            cell.scheme = spec.schemes[i];
            return cell;
        });
}

void
printThresholdTable(const ExperimentResults &results,
                    const MetricFn &metric, bool show_ci)
{
    const ExperimentSpec &spec = results.spec();
    const double baseline_t = std::strtod(spec.baseline.c_str(), nullptr);

    std::printf("%s\n", spec.title.c_str());
    std::printf("# %s, normalised to T = %s\n",
                schemeLabel(spec.schemes.empty() ? "coop"
                                                 : spec.schemes.front())
                    .c_str(),
                spec.baseline.c_str());
    std::printf("%-8s", "group");
    for (const double t : spec.thresholds) {
        std::printf("%s       T=%4.2f", show_ci ? "  " : "", t);
    }
    std::printf("\n");

    printNormalisedRows(
        results, metric, show_ci, 8, spec.thresholds.size(),
        [baseline_t](const std::string &group) {
            Cell cell;
            cell.group = group;
            cell.threshold = baseline_t;
            return cell;
        },
        [&spec](const std::string &group, std::size_t i) {
            Cell cell;
            cell.group = group;
            cell.threshold = spec.thresholds[i];
            return cell;
        });
}

void
printPartitionerTable(const ExperimentResults &results,
                      const MetricFn &metric, bool show_ci)
{
    const ExperimentSpec &spec = results.spec();
    const int col = show_ci ? 14 : 12;
    std::printf("%s\n", spec.title.c_str());
    std::printf("# normalised to %s; %s is better\n",
                spec.baseline.c_str(),
                spec.higher_better ? "higher" : "lower");
    std::printf("%-10s", "group");
    for (const std::string &partitioner : spec.partitioners) {
        std::printf(" %*s", col, partitioner.c_str());
    }
    std::printf("\n");

    printNormalisedRows(
        results, metric, show_ci, 10, spec.partitioners.size(),
        [&spec](const std::string &group) {
            Cell cell;
            cell.group = group;
            cell.partitioner = spec.baseline;
            return cell;
        },
        [&spec](const std::string &group, std::size_t i) {
            Cell cell;
            cell.group = group;
            cell.partitioner = spec.partitioners[i];
            return cell;
        });
}

/** The Figure 14 breakdown: events that set takeover bits while ways
 *  migrate (donor/recipient x hit/miss), for the first scheme. */
void
printTakeoverTable(const ExperimentResults &results)
{
    const ExperimentSpec &spec = results.spec();
    std::printf("%s\n", spec.title.c_str());
    std::printf("%-8s %10s %10s %10s %10s %10s\n", "group", "recipMiss",
                "recipHit", "donorMiss", "donorHit", "events");

    std::uint64_t tdh = 0;
    std::uint64_t tdm = 0;
    std::uint64_t trh = 0;
    std::uint64_t trm = 0;
    for (const auto &group : results.groups()) {
        Cell cell;
        cell.group = group.name;
        const auto &r = results.result(cell);
        const std::uint64_t total = r.donor_hits + r.donor_misses +
                                    r.recipient_hits +
                                    r.recipient_misses;
        tdh += r.donor_hits;
        tdm += r.donor_misses;
        trh += r.recipient_hits;
        trm += r.recipient_misses;
        if (total == 0) {
            std::printf("%-8s %10s %10s %10s %10s %10s\n",
                        group.name.c_str(), "-", "-", "-", "-", "0");
            continue;
        }
        const double d = static_cast<double>(total);
        std::printf("%-8s %10.3f %10.3f %10.3f %10.3f %10llu\n",
                    group.name.c_str(), r.recipient_misses / d,
                    r.recipient_hits / d, r.donor_misses / d,
                    r.donor_hits / d,
                    static_cast<unsigned long long>(total));
    }
    const std::uint64_t total = tdh + tdm + trh + trm;
    if (total > 0) {
        const double d = static_cast<double>(total);
        std::printf("%-8s %10.3f %10.3f %10.3f %10.3f %10llu\n", "AVG",
                    trm / d, trh / d, tdm / d, tdh / d,
                    static_cast<unsigned long long>(total));
        std::printf("# donor hits + recipient misses = %.3f "
                    "(paper: ~two-thirds)\n",
                    (tdh + trm) / d);
    }
}

/** The Figure 15 comparison: average cycles to transfer one complete
 *  way, first scheme of the axis vs second. */
void
printTransferTable(const ExperimentResults &results)
{
    const ExperimentSpec &spec = results.spec();
    const std::string &left = spec.schemes.at(0);
    const std::string &right = spec.schemes.at(1);
    std::printf("%s\n", spec.title.c_str());
    std::printf("%-8s %14s %14s %8s %8s\n", "group",
                schemeLabel(left).c_str(), schemeLabel(right).c_str(),
                ("#" + left).c_str(), ("#" + right).c_str());

    std::vector<double> left_all;
    std::vector<double> right_all;
    for (const auto &group : results.groups()) {
        Cell left_cell;
        left_cell.group = group.name;
        left_cell.scheme = left;
        Cell right_cell;
        right_cell.group = group.name;
        right_cell.scheme = right;
        const auto &u = results.result(left_cell);
        const auto &c = results.result(right_cell);
        if (u.completed_transfers > 0) {
            left_all.push_back(u.avg_transfer_cycles);
        }
        if (c.completed_transfers > 0) {
            right_all.push_back(c.avg_transfer_cycles);
        }
        auto fmt = [](const sim::RunResult &r) {
            return r.completed_transfers > 0 ? r.avg_transfer_cycles
                                             : 0.0;
        };
        std::printf("%-8s %14.0f %14.0f %8llu %8llu\n",
                    group.name.c_str(), fmt(u), fmt(c),
                    static_cast<unsigned long long>(
                        u.completed_transfers),
                    static_cast<unsigned long long>(
                        c.completed_transfers));
    }
    const double left_avg = stats::mean(left_all);
    const double right_avg = stats::mean(right_all);
    std::printf("%-8s %14.0f %14.0f\n", "AVG", left_avg, right_avg);
    if (right_avg > 0.0) {
        // The paper's reference number applies to its own comparison
        // (UCP vs Cooperative) only.
        const bool paper_pair = left == "ucp" && right == "coop";
        std::printf("# %s / %s transfer-time ratio: %.2fx%s\n",
                    schemeLabel(left).c_str(),
                    schemeLabel(right).c_str(), left_avg / right_avg,
                    paper_pair ? " (paper: ~5.8x)" : "");
    }
}

/** The Figure 16 time series: flush traffic vs cycles since a
 *  partitioning decision, first scheme of the axis vs second. */
void
printBandwidthTable(const ExperimentResults &results)
{
    const ExperimentSpec &spec = results.spec();
    const std::string &left = spec.schemes.at(0);
    const std::string &right = spec.schemes.at(1);

    // Aggregate the per-decision flush time series over all groups.
    std::vector<std::uint64_t> left_series;
    std::vector<std::uint64_t> right_series;
    std::uint64_t left_lines = 0;
    std::uint64_t right_lines = 0;
    Tick bin = 1;
    for (const auto &group : results.groups()) {
        Cell left_cell;
        left_cell.group = group.name;
        left_cell.scheme = left;
        Cell right_cell;
        right_cell.group = group.name;
        right_cell.scheme = right;
        const auto &u = results.result(left_cell);
        const auto &c = results.result(right_cell);
        bin = c.flush_series_bin;
        left_series.resize(
            std::max(left_series.size(), u.flush_series.size()), 0);
        right_series.resize(
            std::max(right_series.size(), c.flush_series.size()), 0);
        for (std::size_t i = 0; i < u.flush_series.size(); ++i) {
            left_series[i] += u.flush_series[i];
        }
        for (std::size_t i = 0; i < c.flush_series.size(); ++i) {
            right_series[i] += c.flush_series[i];
        }
        left_lines += u.flushed_lines;
        right_lines += c.flushed_lines;
    }

    std::printf("%s\n", spec.title.c_str());
    std::printf("%-16s %12s %12s\n", "cycles",
                schemeLabel(left).c_str(), schemeLabel(right).c_str());
    for (std::size_t i = 0; i < right_series.size(); ++i) {
        std::printf("%-16llu %12llu %12llu\n",
                    static_cast<unsigned long long>(bin * (i + 1)),
                    static_cast<unsigned long long>(
                        i < left_series.size() ? left_series[i] : 0),
                    static_cast<unsigned long long>(right_series[i]));
    }
    // The paper's per-transition totals apply to its own comparison
    // (UCP vs Cooperative) only.
    const bool paper_pair = left == "ucp" && right == "coop";
    std::printf("# total lines flushed: %s=%llu %s=%llu%s\n",
                schemeLabel(left).c_str(),
                static_cast<unsigned long long>(left_lines),
                schemeLabel(right).c_str(),
                static_cast<unsigned long long>(right_lines),
                paper_pair ? " (paper: 6536 vs 5102 per transition)"
                           : "");
}

} // namespace

void
printTable(const ExperimentResults &results, const MetricFn &metric,
           bool show_ci)
{
    const ExperimentSpec &spec = results.spec();
    const MetricFn &fn =
        metric ? metric : metricRegistry().get(spec.metric);
    if (spec.layout == "schemes") {
        printSchemeTable(results, fn, show_ci);
    } else if (spec.layout == "thresholds") {
        printThresholdTable(results, fn, show_ci);
    } else if (spec.layout == "partitioners") {
        printPartitionerTable(results, fn, show_ci);
    } else if (spec.layout == "takeover") {
        printTakeoverTable(results);
    } else if (spec.layout == "transfers") {
        printTransferTable(results);
    } else if (spec.layout == "bandwidth") {
        printBandwidthTable(results);
    } else {
        COOPSIM_FATAL("spec '", spec.name, "' has layout '",
                      spec.layout,
                      "', which has no built-in table renderer");
    }
}

void
printExperiment(const ExperimentSpec &spec, bool show_ci)
{
    const ExperimentResults results = runExperiment(spec);
    printTable(results, {}, show_ci);

    // Bank-contention summary on stderr (stats channel, like the
    // executor counters): only when a banked run actually queued, so
    // monolithic sweeps keep their stderr byte-identical.
    std::uint64_t conflicts = 0;
    std::uint64_t conflict_cycles = 0;
    // Sampling summary (same channel, same only-when-present rule):
    // total measurement windows and the worst per-app relative CI.
    std::uint64_t windows = 0;
    double max_rel_ci = 0.0;
    for (const sim::RunKey &key : results.keys()) {
        const sim::RunResult &result = results.result(key);
        conflicts += result.bank_conflicts;
        conflict_cycles += result.bank_conflict_cycles;
        windows += result.sample_windows;
        if (result.sample_windows > 0) {
            for (const sim::AppResult &app : result.apps) {
                if (app.ipc > 0.0) {
                    max_rel_ci =
                        std::max(max_rel_ci, app.ipc_ci / app.ipc);
                }
            }
        }
    }
    if (conflicts > 0) {
        std::fprintf(stderr,
                     "# banks: conflicts=%llu conflict_cycles=%llu\n",
                     static_cast<unsigned long long>(conflicts),
                     static_cast<unsigned long long>(conflict_cycles));
    }
    if (windows > 0) {
        std::fprintf(stderr,
                     "# sampling: windows=%llu max_rel_ci=%.4f\n",
                     static_cast<unsigned long long>(windows),
                     max_rel_ci);
    }
}

} // namespace coopsim::api
