#include "api/experiment.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/logging.hpp"
#include "common/stats.hpp"
#include "sim/metrics.hpp"

namespace coopsim::api
{

namespace
{

/** First value of an axis, or fatal when the axis is empty and a cell
 *  did not override it. */
template <typename T>
const T &
firstOf(const std::vector<T> &axis, const char *what)
{
    if (axis.empty()) {
        COOPSIM_FATAL("cell does not specify a ", what,
                      " and the spec's ", what, " axis is empty");
    }
    return axis.front();
}

} // namespace

Registry<MetricFn> &
metricRegistry()
{
    static Registry<MetricFn> registry = [] {
        Registry<MetricFn> r("metric");
        r.add("speedup",
              [](const ExperimentResults &results, const Cell &cell) {
                  return results.weightedSpeedup(cell);
              });
        r.add("dynamic_energy",
              [](const ExperimentResults &results, const Cell &cell) {
                  return results.result(cell).dynamic_energy_nj;
              });
        r.add("static_energy",
              [](const ExperimentResults &results, const Cell &cell) {
                  return results.result(cell).static_energy_nj;
              });
        return r;
    }();
    return registry;
}

void
registerMetric(const std::string &name, MetricFn fn)
{
    metricRegistry().add(name, std::move(fn));
}

ExperimentResults::ExperimentResults(ExperimentSpec spec)
    : spec_(std::move(spec))
{
    validateSpec(spec_);
    if (spec_.layout != "none") {
        metricRegistry().get(spec_.metric);
    }
    groups_ = resolveSpecGroups(spec_);
    keys_ = expandSpec(spec_);
    sim::RunExecutor::instance().prefetch(keys_);
}

sim::RunKey
ExperimentResults::keyFor(const Cell &cell) const
{
    sim::RunKey key;
    key.kind = sim::RunKey::Kind::Group;
    key.scheme = !cell.scheme.empty()
                     ? cell.scheme
                     : firstOf(spec_.schemes, "scheme");
    key.name = cell.group;
    key.num_cores = static_cast<std::uint32_t>(
        workloadRegistry().get(cell.group).apps.size());
    key.scale = scaleRegistry().get(spec_.scale);
    key.threshold = cell.threshold.value_or(
        firstOf(spec_.thresholds, "threshold"));
    key.threshold_mode = thresholdModeRegistry().get(
        !cell.threshold_mode.empty()
            ? cell.threshold_mode
            : firstOf(spec_.threshold_modes, "threshold mode"));
    key.repl = replPolicyRegistry().get(
        !cell.repl.empty() ? cell.repl
                           : firstOf(spec_.repl, "replacement policy"));
    key.gating = gatingModeRegistry().get(
        !cell.gating.empty() ? cell.gating
                             : firstOf(spec_.gating, "gating mode"));
    key.seed = cell.seed.value_or(firstOf(spec_.seeds, "seed"));
    return key;
}

const sim::RunResult &
ExperimentResults::result(const Cell &cell) const
{
    return result(keyFor(cell));
}

const sim::RunResult &
ExperimentResults::result(const sim::RunKey &key) const
{
    return sim::RunExecutor::instance().run(key);
}

const sim::RunResult &
ExperimentResults::soloResult(const std::string &app,
                              std::uint32_t cores,
                              const Cell &cell) const
{
    sim::RunKey key;
    key.kind = sim::RunKey::Kind::Solo;
    key.scheme = "unmanaged";
    key.name = app;
    key.num_cores = cores;
    key.scale = scaleRegistry().get(spec_.scale);
    key.threshold = 0.0;
    key.threshold_mode = partition::ThresholdMode::MissRatio;
    key.repl = replPolicyRegistry().get(
        !cell.repl.empty() ? cell.repl
                           : firstOf(spec_.repl, "replacement policy"));
    key.gating = llc::GatingMode::GatedVdd;
    key.seed = cell.seed.value_or(firstOf(spec_.seeds, "seed"));
    return result(key);
}

double
ExperimentResults::soloIpc(const std::string &app, std::uint32_t cores,
                           const Cell &cell) const
{
    return soloResult(app, cores, cell).apps.at(0).ipc;
}

double
ExperimentResults::weightedSpeedup(const Cell &cell) const
{
    const trace::WorkloadGroup &group =
        workloadRegistry().get(cell.group);
    const auto cores = static_cast<std::uint32_t>(group.apps.size());
    const sim::RunResult &shared = result(cell);
    std::vector<double> alone;
    alone.reserve(group.apps.size());
    for (const std::string &app : group.apps) {
        alone.push_back(soloIpc(app, cores, cell));
    }
    return sim::weightedSpeedup(shared, alone);
}

double
ExperimentResults::metric(const std::string &name,
                          const Cell &cell) const
{
    return metricRegistry().get(name)(*this, cell);
}

ExperimentResults
runExperiment(const ExperimentSpec &spec)
{
    return ExperimentResults(spec);
}

// ---------------------------------------------------------------------------
// Table rendering

namespace
{

void
printSchemeTable(const ExperimentResults &results,
                 const MetricFn &metric)
{
    const ExperimentSpec &spec = results.spec();
    std::printf("%s\n", spec.title.c_str());
    std::printf("# normalised to %s; %s is better\n",
                schemeLabel(spec.baseline).c_str(),
                spec.higher_better ? "higher" : "lower");
    std::printf("%-8s", "group");
    for (const std::string &scheme : spec.schemes) {
        std::printf(" %12s", schemeLabel(scheme).c_str());
    }
    std::printf("\n");

    std::vector<std::vector<double>> norms(spec.schemes.size());
    for (const trace::WorkloadGroup &group : results.groups()) {
        Cell baseline_cell;
        baseline_cell.group = group.name;
        baseline_cell.scheme = spec.baseline;
        const double baseline = metric(results, baseline_cell);
        std::printf("%-8s", group.name.c_str());
        for (std::size_t i = 0; i < spec.schemes.size(); ++i) {
            Cell cell;
            cell.group = group.name;
            cell.scheme = spec.schemes[i];
            const double norm =
                sim::normalizeTo(metric(results, cell), baseline);
            norms[i].push_back(norm);
            std::printf(" %12.3f", norm);
        }
        std::printf("\n");
    }

    std::printf("%-8s", "AVG");
    for (std::size_t i = 0; i < spec.schemes.size(); ++i) {
        std::printf(" %12.3f", stats::geomean(norms[i]));
    }
    std::printf("\n");
}

void
printThresholdTable(const ExperimentResults &results,
                    const MetricFn &metric)
{
    const ExperimentSpec &spec = results.spec();
    const double baseline_t = std::strtod(spec.baseline.c_str(), nullptr);

    std::printf("%s\n", spec.title.c_str());
    std::printf("# %s, normalised to T = %s\n",
                schemeLabel(spec.schemes.empty() ? "coop"
                                                 : spec.schemes.front())
                    .c_str(),
                spec.baseline.c_str());
    std::printf("%-8s", "group");
    for (const double t : spec.thresholds) {
        std::printf("       T=%4.2f", t);
    }
    std::printf("\n");

    std::vector<std::vector<double>> norms(spec.thresholds.size());
    for (const trace::WorkloadGroup &group : results.groups()) {
        Cell baseline_cell;
        baseline_cell.group = group.name;
        baseline_cell.threshold = baseline_t;
        const double baseline = metric(results, baseline_cell);
        std::printf("%-8s", group.name.c_str());
        for (std::size_t i = 0; i < spec.thresholds.size(); ++i) {
            Cell cell;
            cell.group = group.name;
            cell.threshold = spec.thresholds[i];
            const double norm =
                sim::normalizeTo(metric(results, cell), baseline);
            norms[i].push_back(norm);
            std::printf(" %12.3f", norm);
        }
        std::printf("\n");
    }
    std::printf("%-8s", "AVG");
    for (std::size_t i = 0; i < spec.thresholds.size(); ++i) {
        std::printf(" %12.3f", stats::geomean(norms[i]));
    }
    std::printf("\n");
}

} // namespace

void
printTable(const ExperimentResults &results, const MetricFn &metric)
{
    const ExperimentSpec &spec = results.spec();
    const MetricFn &fn =
        metric ? metric : metricRegistry().get(spec.metric);
    if (spec.layout == "schemes") {
        printSchemeTable(results, fn);
    } else if (spec.layout == "thresholds") {
        printThresholdTable(results, fn);
    } else {
        COOPSIM_FATAL("spec '", spec.name, "' has layout '",
                      spec.layout,
                      "', which has no built-in table renderer");
    }
}

void
printExperiment(const ExperimentSpec &spec)
{
    const ExperimentResults results = runExperiment(spec);
    printTable(results, {});
}

} // namespace coopsim::api
